//===-- interp/Explore.cpp ------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Stateless depth-first search over schedules, in the style of
// Flanagan–Godefroid dynamic partial-order reduction: the interpreter
// is deterministic given a Schedule, so a path through the choice tree
// is re-executed from scratch each run, guided by a persistent stack of
// choice nodes. After every execution the trace is analysed for
// conflicting step pairs; the persistent/backtrack sets they seed are
// the only places the search branches (full enumeration branches
// everywhere, and the litmus tests pin its exact counts against
// closed-form interleaving math).
//
// A step's footprint is its slice of the event trace (granule accesses,
// lock transitions, cast queries) plus the Schedule::note() side
// channel for mutations the trace cannot see — most importantly the
// thread-exit access-bit erasure, which is exactly what separates the
// overlapping (racy) from non-overlapping (clean) interleavings of the
// paper's semantics.
//
//===----------------------------------------------------------------------===//

#include "interp/Explore.h"

#include <algorithm>
#include <cassert>
#include <set>

using namespace sharc;
using namespace sharc::interp;

namespace {

//===----------------------------------------------------------------------===//
// Footprints and the conflict relation
//===----------------------------------------------------------------------===//

/// One footprint element. Kind encodes the dependence class:
///   0 read, 1 write (incl. implicit), 2 lock op, 3 cond op,
///   4 heap scan (sharing-cast oneref inspection reads every
///     pointer-holding cell, so it depends on every write).
struct FpItem {
  uint64_t A = 0;
  uint8_t Kind = 0;
  bool operator<(const FpItem &O) const {
    return A != O.A ? A < O.A : Kind < O.Kind;
  }
  bool operator==(const FpItem &O) const { return A == O.A && Kind == O.Kind; }
};

using Footprint = std::vector<FpItem>; // sorted, unique

void normalize(Footprint &F) {
  std::sort(F.begin(), F.end());
  F.erase(std::unique(F.begin(), F.end()), F.end());
}

bool hasWrite(const Footprint &F) {
  for (const FpItem &I : F)
    if (I.Kind == 1)
      return true;
  return false;
}

bool hasScan(const Footprint &F) {
  for (const FpItem &I : F)
    if (I.Kind == 4)
      return true;
  return false;
}

/// Two steps conflict when reordering them could change anything the
/// semantics observes: same granule with at least one write, operations
/// on the same lock, operations on the same condition variable, or a
/// heap scan against any write.
bool conflict(const Footprint &A, const Footprint &B) {
  if ((hasScan(A) && hasWrite(B)) || (hasScan(B) && hasWrite(A)))
    return true;
  size_t I = 0, J = 0;
  while (I != A.size() && J != B.size()) {
    if (A[I].A < B[J].A) {
      ++I;
      continue;
    }
    if (B[J].A < A[I].A) {
      ++J;
      continue;
    }
    // Same address: compare every kind pair at this address.
    size_t I2 = I, J2 = J;
    while (I2 != A.size() && A[I2].A == A[I].A)
      ++I2;
    while (J2 != B.size() && B[J2].A == B[J].A)
      ++J2;
    for (size_t X = I; X != I2; ++X)
      for (size_t Y = J; Y != J2; ++Y) {
        uint8_t KA = A[X].Kind, KB = B[Y].Kind;
        if (KA == 2 && KB == 2)
          return true; // lock / lock
        if (KA == 3 && KB == 3)
          return true; // cond / cond
        if (KA <= 1 && KB <= 1 && (KA == 1 || KB == 1))
          return true; // data with >= 1 write
      }
    I = I2;
    J = J2;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// The exploration schedule
//===----------------------------------------------------------------------===//

/// One node of the persistent DFS stack: a choice point, the options it
/// offered, the pick of the current path, and the exploration state
/// (Done, Backtrack, Sleep) that survives across runs.
struct Node {
  ChoiceKind Kind = ChoiceKind::ThreadPick;
  std::vector<unsigned> Enabled; ///< Trace tids, machine order.
  unsigned Pick = 0;             ///< Trace tid of the current branch.
  std::set<unsigned> Done;       ///< Branches fully explored.
  std::set<unsigned> Backtrack;  ///< DPOR persistent set.
  /// Sleep set: tids whose subtree is already covered elsewhere, with
  /// the footprint of their step for the independence filter.
  std::vector<std::pair<unsigned, Footprint>> Sleep;
  Footprint Fp;        ///< Footprint of the executed step (this run).
  size_t TraceOff = 0; ///< Trace length when the step began (this run).
  unsigned PrevTid = 0;           ///< ThreadPick of the previous step.
  unsigned PreemptionsBefore = 0; ///< Preemptions on the path up to here.
};

bool contains(const std::vector<unsigned> &V, unsigned X) {
  return std::find(V.begin(), V.end(), X) != V.end();
}

size_t indexOf(const std::vector<unsigned> &V, unsigned X) {
  return static_cast<size_t>(std::find(V.begin(), V.end(), X) - V.begin());
}

class ExploreSchedule : public Schedule {
public:
  enum class EndReason : uint8_t { None, Sleep, Bound, Diverged };

  ExploreSchedule(const ExploreOptions &Opts, ExploreStats &Stats)
      : Opts(Opts), Stats(Stats) {}

  std::vector<Node> Nodes;

  void beginRun(std::vector<TraceEvent> *T) {
    Trace = T;
    Depth = 0;
    LastTP = -1;
    ClosedTP = -1;
    PendingNotes.clear();
    End = EndReason::None;
  }

  void endRun() { closeFootprint(); }

  EndReason endReason() const { return End; }

  bool wantsNotes() const override { return true; }

  void note(SchedNote K, unsigned TraceTid, uint64_t Addr) override {
    (void)TraceTid;
    switch (K) {
    case SchedNote::BlockedLock:
      PendingNotes.push_back(FpItem{Addr, 2});
      break;
    case SchedNote::CondWait:
    case SchedNote::CondWake:
      PendingNotes.push_back(FpItem{Addr, 3});
      break;
    case SchedNote::ImplicitWrite:
      PendingNotes.push_back(FpItem{Addr, 1});
      break;
    }
  }

  size_t choose(const ChoicePoint &CP) override {
    if (End != EndReason::None)
      return Abort;
    std::vector<unsigned> Opt(CP.Options, CP.Options + CP.NumOptions);
    if (CP.Kind == ChoiceKind::ThreadPick)
      closeFootprint();

    if (Depth < Nodes.size()) {
      // Replaying the DFS prefix: the pick is predetermined. The
      // machine is deterministic, so the offer must match what this
      // node saw last run — anything else is an interpreter
      // determinism bug and poisons every conclusion.
      Node &N = Nodes[Depth];
      if (N.Kind != CP.Kind || N.Enabled != Opt) {
        Stats.InternalError = true;
        End = EndReason::Diverged;
        return Abort;
      }
      if (CP.Kind == ChoiceKind::ThreadPick) {
        N.TraceOff = Trace->size();
        LastTP = static_cast<int>(Depth);
      }
      ++Depth;
      return indexOf(N.Enabled, N.Pick);
    }

    // A fresh node: extend the path.
    int Parent = LastTP;
    Nodes.emplace_back();
    Node &N = Nodes.back();
    N.Kind = CP.Kind;
    N.Enabled = std::move(Opt);

    if (CP.Kind == ChoiceKind::CondSignalPick) {
      // Wake-up order is enumerated exhaustively (waiter lists are
      // tiny); DPOR and the preemption bound do not apply.
      N.Pick = N.Enabled[0];
      N.Backtrack.insert(N.Enabled.begin(), N.Enabled.end());
      ++Depth;
      return 0;
    }

    N.PrevTid = Parent >= 0 ? Nodes[Parent].Pick : 0;
    N.PreemptionsBefore =
        Parent >= 0 ? Nodes[Parent].PreemptionsBefore +
                          preemptCost(Nodes[Parent], Nodes[Parent].Pick)
                    : 0;
    if (Opts.UseSleepSets && Parent >= 0) {
      // Godefroid sleep inheritance: after executing the parent's
      // step, only sleepers independent of it stay asleep.
      for (const auto &[Tid, Fp] : Nodes[Parent].Sleep)
        if (Tid != Nodes[Parent].Pick && !conflict(Fp, Nodes[Parent].Fp))
          N.Sleep.push_back({Tid, Fp});
    }

    std::set<unsigned> SleepTids;
    for (const auto &[Tid, Fp] : N.Sleep)
      SleepTids.insert(Tid);
    bool AnyAwake = false, Found = false;
    unsigned Chosen = 0;
    for (unsigned T : N.Enabled) {
      if (SleepTids.count(T))
        continue;
      AnyAwake = true;
      if (N.PreemptionsBefore + preemptCost(N, T) > Opts.PreemptionBound) {
        ++Stats.PreemptPruned;
        Stats.BoundHit = true;
        continue;
      }
      Chosen = T;
      Found = true;
      break;
    }
    if (!Found) {
      // Every enabled thread is asleep (this execution is redundant)
      // or over the preemption bound (this execution is cut). Either
      // way the node never executes; drop it and stop the run.
      End = AnyAwake ? EndReason::Bound : EndReason::Sleep;
      Nodes.pop_back();
      return Abort;
    }
    N.Pick = Chosen;
    N.Backtrack.insert(Chosen);
    N.TraceOff = Trace->size();
    LastTP = static_cast<int>(Nodes.size()) - 1;
    ++Depth;
    return indexOf(N.Enabled, Chosen);
  }

  /// Seeds backtrack points from this run's conflicts: for each step,
  /// find the most recent earlier step of another thread it conflicts
  /// with and make sure this thread gets (or the whole enabled set
  /// gets) explored there. Convergence over re-executions yields the
  /// full persistent-set exploration.
  void dporUpdate() {
    std::vector<size_t> TPs;
    for (size_t I = 0; I != Nodes.size(); ++I)
      if (Nodes[I].Kind == ChoiceKind::ThreadPick)
        TPs.push_back(I);
    for (size_t II = 1; II < TPs.size(); ++II) {
      Node &NI = Nodes[TPs[II]];
      for (size_t JJ = II; JJ-- > 0;) {
        Node &NJ = Nodes[TPs[JJ]];
        if (NJ.Pick == NI.Pick)
          continue;
        if (!conflict(NJ.Fp, NI.Fp))
          continue;
        if (contains(NJ.Enabled, NI.Pick))
          NJ.Backtrack.insert(NI.Pick);
        else
          NJ.Backtrack.insert(NJ.Enabled.begin(), NJ.Enabled.end());
        break; // most recent conflicting step only
      }
    }
  }

  /// Advances the DFS to the next unexplored branch. \returns false
  /// when the tree is exhausted.
  bool backtrack() {
    while (!Nodes.empty()) {
      Node &N = Nodes.back();
      N.Done.insert(N.Pick);
      if (N.Kind == ChoiceKind::ThreadPick && Opts.UseSleepSets)
        N.Sleep.push_back({N.Pick, N.Fp});
      std::set<unsigned> SleepTids;
      for (const auto &[Tid, Fp] : N.Sleep)
        SleepTids.insert(Tid);
      bool Found = false;
      unsigned Next = 0;
      for (unsigned T : N.Enabled) {
        if (N.Done.count(T))
          continue;
        if (N.Kind == ChoiceKind::ThreadPick) {
          if (Opts.UseDpor && !N.Backtrack.count(T))
            continue;
          if (Opts.UseSleepSets && SleepTids.count(T))
            continue;
          if (N.PreemptionsBefore + preemptCost(N, T) >
              Opts.PreemptionBound) {
            ++Stats.PreemptPruned;
            Stats.BoundHit = true;
            continue;
          }
        }
        Next = T;
        Found = true;
        break;
      }
      if (Found) {
        N.Pick = Next;
        N.Backtrack.insert(Next);
        return true;
      }
      if (N.Kind == ChoiceKind::ThreadPick) {
        uint64_t Unexplored = 0;
        for (unsigned T : N.Enabled)
          if (!N.Done.count(T))
            ++Unexplored;
        Stats.BranchesPruned += Unexplored;
      }
      Nodes.pop_back();
    }
    return false;
  }

  Witness buildWitness() const {
    Witness W;
    W.Choices.reserve(Nodes.size());
    for (const Node &N : Nodes) {
      Witness::Choice C;
      C.Kind = N.Kind;
      C.Tid = N.Pick;
      C.NumOptions = static_cast<uint32_t>(N.Enabled.size());
      W.Choices.push_back(C);
    }
    return W;
  }

private:
  unsigned preemptCost(const Node &N, unsigned Pick) const {
    // CHESS-style: switching away from a thread that could have kept
    // running is a preemption; running on, or switching after the
    // previous thread blocked/exited, is free.
    return N.PrevTid != 0 && N.PrevTid != Pick &&
                   contains(N.Enabled, N.PrevTid)
               ? 1
               : 0;
  }

  /// Folds the trace slice and pending notes of the step that just
  /// finished into its node's footprint. Idempotent per step: mid-run
  /// choice points and endRun() may both try to close the same node.
  void closeFootprint() {
    if (LastTP < 0 || LastTP == ClosedTP) {
      PendingNotes.clear();
      return;
    }
    Node &N = Nodes[static_cast<size_t>(LastTP)];
    Footprint Fp = std::move(PendingNotes);
    PendingNotes.clear();
    for (size_t I = N.TraceOff; I < Trace->size(); ++I) {
      const TraceEvent &E = (*Trace)[I];
      switch (E.K) {
      case TraceEvent::Kind::Read:
        Fp.push_back(FpItem{E.Addr, 0});
        break;
      case TraceEvent::Kind::Write:
      case TraceEvent::Kind::PtrStore:
        Fp.push_back(FpItem{E.Addr, 1});
        break;
      case TraceEvent::Kind::LockAcquire:
      case TraceEvent::Kind::LockRelease:
        Fp.push_back(FpItem{E.Addr, 2});
        break;
      case TraceEvent::Kind::CastQuery:
        Fp.push_back(FpItem{0, 4});
        break;
      case TraceEvent::Kind::SpawnEdge:
      case TraceEvent::Kind::ThreadStart:
      case TraceEvent::Kind::ThreadExit:
        // Spawn edges happen within the parent's step; the exit's
        // access-bit erasure arrives via note(ImplicitWrite).
        break;
      }
    }
    normalize(Fp);
    N.Fp = std::move(Fp);
    ClosedTP = LastTP;
  }

  const ExploreOptions &Opts;
  ExploreStats &Stats;
  std::vector<TraceEvent> *Trace = nullptr;
  size_t Depth = 0;
  int LastTP = -1;   ///< Node index of the step in flight.
  int ClosedTP = -1; ///< Last node whose footprint closed (this run).
  Footprint PendingNotes;
  EndReason End = EndReason::None;
};

} // namespace

//===----------------------------------------------------------------------===//
// Public API
//===----------------------------------------------------------------------===//

ExploreVerdict interp::classifyResult(const InterpResult &R) {
  ExploreVerdict V;
  // An out-of-steps run carries one engine-appended RuntimeError
  // ("step budget exhausted"), always last. That is an artifact of
  // truncation, not program behaviour — the OutOfSteps flag already
  // classifies it — so it stays out of the violation mask.
  size_t N = R.Violations.size();
  if (R.OutOfSteps && N != 0 &&
      R.Violations.back().K == Violation::Kind::RuntimeError)
    --N;
  for (size_t I = 0; I != N; ++I)
    V.KindsMask |= 1u << static_cast<unsigned>(R.Violations[I].K);
  V.Deadlocked = R.Deadlocked;
  V.OutOfSteps = R.OutOfSteps;
  V.Completed = R.Completed;
  return V;
}

std::string ExploreVerdict::describe() const {
  if (clean())
    return Completed ? "clean" : "clean(halted)";
  static const char *Names[] = {"read-conflict", "write-conflict",
                                "lock-violation", "cast-error",
                                "runtime-error"};
  std::string Out;
  for (unsigned I = 0; I != 5; ++I)
    if (KindsMask & (1u << I)) {
      if (!Out.empty())
        Out += '+';
      Out += Names[I];
    }
  if (Deadlocked)
    Out += "+deadlock";
  if (OutOfSteps)
    Out += "+out-of-steps";
  return Out;
}

ExploreResult interp::explore(minic::Program &Prog,
                              const checker::Instrumentation &Instr,
                              const ExploreOptions &Opts) {
  ExploreResult R;
  Interp I(Prog, Instr);
  ExploreSchedule ES(Opts, R.Stats);
  std::set<ExploreVerdict> Seen;
  std::set<ExploreVerdict> Witnessed;
  uint64_t Executions = 0;
  bool FirstRun = true;

  for (;;) {
    if (Executions >= Opts.MaxRuns ||
        R.Stats.StepsTotal >= Opts.MaxTotalSteps) {
      R.Stats.BudgetExhausted = true;
      break;
    }
    std::vector<TraceEvent> Trace;
    InterpOptions IO;
    IO.Seed = 1; // unused: every decision flows through the schedule
    IO.MaxSteps = Opts.MaxStepsPerRun;
    IO.EntryPoint = Opts.EntryPoint;
    IO.Sched = &ES;
    IO.Trace = &Trace;
    ES.beginRun(&Trace);
    InterpResult Run = I.run(IO);
    ES.endRun();
    ++Executions;
    R.Stats.StepsTotal += Run.Stats.Steps;
    R.Stats.MaxDepth = std::max<uint64_t>(R.Stats.MaxDepth, ES.Nodes.size());

    if (ES.endReason() == ExploreSchedule::EndReason::Diverged)
      break; // InternalError already set; nothing here can be trusted.

    if (Run.ScheduleAborted) {
      if (ES.endReason() == ExploreSchedule::EndReason::Sleep)
        ++R.Stats.SleepBlocked;
      else
        ++R.Stats.BoundedRuns;
    } else {
      ++R.Stats.Runs;
      if (FirstRun) {
        R.FirstRunStats = Run.Stats;
        FirstRun = false;
      }
      ExploreVerdict V = classifyResult(Run);
      Seen.insert(V);
      // A schedule cut by the per-run step budget is a truncated leaf:
      // the subtree past the cut was never visited (a spinning thread
      // that never yields also never produces the conflicting steps
      // DPOR would branch on), so the enumeration cannot claim
      // completeness however cleanly the search converges.
      if (Run.OutOfSteps)
        R.Stats.BudgetExhausted = true;
      if (V.violating() && !Witnessed.count(V)) {
        Witnessed.insert(V);
        R.Witnesses.push_back({V, ES.buildWitness()});
        if (R.Witnesses.size() == 1)
          R.FirstViolation = std::move(Run);
      }
    }

    // Race analysis runs on pruned prefixes too: the prefix with the
    // new branch pick is an execution DPOR has not analysed yet.
    if (Opts.UseDpor)
      ES.dporUpdate();
    if (!ES.backtrack())
      break; // every inequivalent schedule enumerated
  }

  R.Verdicts.assign(Seen.begin(), Seen.end());
  return R;
}
