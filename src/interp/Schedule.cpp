//===-- interp/Schedule.cpp -----------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Schedule.h"

#include <cstdio>
#include <sstream>

using namespace sharc;
using namespace sharc::interp;

//===----------------------------------------------------------------------===//
// Witness text format
//===----------------------------------------------------------------------===//
//
//   sharc-witness-v1
//   choices <N>
//   t <tid> <numOptions>      (one line per choice; t = thread pick,
//   c <tid> <numOptions>       c = cond-signal pick)
//   end
//
// The trailing "end" line is mandatory: a file that stops mid-stream
// (crash, truncation) fails to parse instead of replaying a prefix.

std::string Witness::serialize() const {
  std::string Out = "sharc-witness-v1\n";
  Out += "choices " + std::to_string(Choices.size()) + "\n";
  char Buf[64];
  for (const Choice &C : Choices) {
    std::snprintf(Buf, sizeof(Buf), "%c %u %u\n",
                  C.Kind == ChoiceKind::ThreadPick ? 't' : 'c', C.Tid,
                  C.NumOptions);
    Out += Buf;
  }
  Out += "end\n";
  return Out;
}

bool Witness::parse(const std::string &Text, std::string &Error) {
  Choices.clear();
  std::istringstream In(Text);
  std::string Line;
  if (!std::getline(In, Line) || Line != "sharc-witness-v1") {
    Error = "missing sharc-witness-v1 header";
    return false;
  }
  if (!std::getline(In, Line)) {
    Error = "truncated witness: missing choice count";
    return false;
  }
  unsigned long long Count = 0;
  if (std::sscanf(Line.c_str(), "choices %llu", &Count) != 1) {
    Error = "malformed choice count line: '" + Line + "'";
    return false;
  }
  for (unsigned long long I = 0; I != Count; ++I) {
    if (!std::getline(In, Line)) {
      Error = "truncated witness: " + std::to_string(Choices.size()) +
              " of " + std::to_string(Count) + " choices present";
      return false;
    }
    char KindCh = 0;
    unsigned Tid = 0, NumOptions = 0;
    if (std::sscanf(Line.c_str(), "%c %u %u", &KindCh, &Tid, &NumOptions) !=
            3 ||
        (KindCh != 't' && KindCh != 'c')) {
      Error = "malformed choice line: '" + Line + "'";
      return false;
    }
    Choice C;
    C.Kind = KindCh == 't' ? ChoiceKind::ThreadPick
                           : ChoiceKind::CondSignalPick;
    C.Tid = Tid;
    C.NumOptions = NumOptions;
    Choices.push_back(C);
  }
  if (!std::getline(In, Line) || Line != "end") {
    Error = "truncated witness: missing end line";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// ReplaySchedule
//===----------------------------------------------------------------------===//

size_t ReplaySchedule::choose(const ChoicePoint &CP) {
  if (Diverged)
    return Abort;
  if (Next >= W.Choices.size()) {
    Diverged = true;
    Error = "run requested more choices than the witness records (" +
            std::to_string(W.Choices.size()) + ")";
    return Abort;
  }
  const Witness::Choice &C = W.Choices[Next];
  if (C.Kind != CP.Kind) {
    Diverged = true;
    Error = "choice " + std::to_string(Next) + " kind mismatch";
    return Abort;
  }
  if (C.NumOptions != CP.NumOptions) {
    Diverged = true;
    Error = "choice " + std::to_string(Next) + " offers " +
            std::to_string(CP.NumOptions) + " options, witness recorded " +
            std::to_string(C.NumOptions);
    return Abort;
  }
  for (size_t I = 0; I != CP.NumOptions; ++I) {
    if (CP.Options[I] == C.Tid) {
      ++Next;
      return I;
    }
  }
  Diverged = true;
  Error = "choice " + std::to_string(Next) + ": tid " +
          std::to_string(C.Tid) + " is not runnable here";
  return Abort;
}
