//===-- interp/Schedule.h - Scheduler choice-point API ----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every nondeterministic decision the interpreter makes flows through
/// one abstract object, a Schedule (DESIGN.md §14):
///
///   - ThreadPick: which runnable thread executes the next step;
///   - CondSignalPick: which waiter a cond_signal wakes when more than
///     one thread is parked on the condition variable.
///
/// Options are presented as trace tids (unique per thread, never
/// reused), in the machine's deterministic creation order, and the
/// Schedule answers with an index into that list. Three drivers exist:
///
///   - RandomSchedule reproduces the historical seeded scheduler bit
///     for bit: one xorshift64* draw per ThreadPick (even when only one
///     thread is runnable — the legacy loop drew unconditionally) and
///     FIFO wake-up for CondSignalPick with no draw at all, so every
///     fuzz determinism digest recorded before this refactor still
///     matches.
///   - ReplaySchedule follows a recorded Witness and flags divergence
///     instead of guessing, making a counterexample a first-class,
///     bit-exact test input.
///   - ExploreSchedule (Explore.cpp) drives the DPOR depth-first
///     search.
///
/// The note() side channel reports scheduler-relevant effects that are
/// invisible in the event trace (blocked lock attempts, cond parking
/// and wake-ups, and the implicit cell writes of frame death, free,
/// access-set clearing, and thread-exit bit erasure). The explorer
/// folds them into step footprints so its conflict relation sees every
/// mutation that can change a verdict; the other schedules ignore them
/// (wantsNotes() gates the calls so the default path pays one branch).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_INTERP_SCHEDULE_H
#define SHARC_INTERP_SCHEDULE_H

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace sharc {
namespace interp {

/// The kinds of nondeterministic decision the interpreter exposes.
enum class ChoiceKind : uint8_t {
  ThreadPick,     ///< Which runnable thread steps next.
  CondSignalPick, ///< Which waiter a cond_signal wakes.
};

/// One decision to make. Options lists the candidate trace tids in the
/// machine's deterministic order (thread creation order for
/// ThreadPick, wait-queue order for CondSignalPick).
struct ChoicePoint {
  ChoiceKind Kind = ChoiceKind::ThreadPick;
  const unsigned *Options = nullptr;
  size_t NumOptions = 0;
};

/// Trace-invisible effects reported through Schedule::note().
enum class SchedNote : uint8_t {
  BlockedLock,   ///< A lock acquisition blocked; Addr is the lock.
  CondWait,      ///< A thread parked on a condition; Addr is the cond.
  CondWake,      ///< cond_signal/broadcast fired; Addr is the cond.
  ImplicitWrite, ///< A cell mutated outside storeCell (frame death,
                 ///< free, access-set clearing, thread-exit bit
                 ///< erasure); Addr is the cell.
};

/// Abstract source of scheduling decisions.
class Schedule {
public:
  /// Returned by choose() to stop the run; the interpreter sets
  /// InterpResult::ScheduleAborted and returns without another step.
  static constexpr size_t Abort = ~size_t(0);

  virtual ~Schedule() = default;

  /// \returns an index into CP.Options, or Abort.
  virtual size_t choose(const ChoicePoint &CP) = 0;

  /// True when this schedule wants note() calls; the interpreter skips
  /// them entirely otherwise.
  virtual bool wantsNotes() const { return false; }

  /// Reports a trace-invisible effect of the current step (see
  /// SchedNote). Only called when wantsNotes() is true.
  virtual void note(SchedNote K, unsigned TraceTid, uint64_t Addr) {
    (void)K;
    (void)TraceTid;
    (void)Addr;
  }
};

/// The historical seeded scheduler, factored behind the API. Same
/// seed, same run — including the exact xorshift64* stream the
/// pre-refactor interpreter consumed, which the fuzz determinism
/// digests pin.
class RandomSchedule : public Schedule {
public:
  explicit RandomSchedule(uint64_t Seed) : Rng(Seed) {}

  size_t choose(const ChoicePoint &CP) override {
    if (CP.Kind == ChoiceKind::CondSignalPick)
      return 0; // legacy FIFO wake-up; no draw.
    // The legacy loop drew once per step unconditionally.
    return static_cast<size_t>(nextRandom() %
                               (CP.NumOptions ? CP.NumOptions : 1));
  }

private:
  uint64_t nextRandom() {
    // xorshift64*.
    Rng ^= Rng >> 12;
    Rng ^= Rng << 25;
    Rng ^= Rng >> 27;
    return Rng * 0x2545F4914F6CDD1Dull;
  }

  uint64_t Rng;
};

/// A recorded schedule: the exact sequence of decisions of one run.
/// Each entry stores the chosen trace tid plus the kind and option
/// count of its choice point, so replay can verify it is walking the
/// same tree instead of silently diverging.
struct Witness {
  struct Choice {
    ChoiceKind Kind = ChoiceKind::ThreadPick;
    unsigned Tid = 0;       ///< Chosen trace tid.
    uint32_t NumOptions = 0; ///< Option count at the choice point.
  };
  std::vector<Choice> Choices;

  /// Compact text form (DESIGN.md §14.3): a version header, the choice
  /// count, one line per choice, and a mandatory trailing "end" line
  /// that makes truncation detectable.
  std::string serialize() const;

  /// Parses serialize() output. \returns false and sets Error on any
  /// malformation, including a missing "end" line (truncated file).
  bool parse(const std::string &Text, std::string &Error);
};

/// Replays a Witness decision for decision. Any divergence — a choice
/// point of the wrong kind, a different option count, a chosen tid
/// that is not on offer, or more choice points than the witness holds
/// — aborts the run and records why, rather than guessing.
class ReplaySchedule : public Schedule {
public:
  explicit ReplaySchedule(const Witness &W) : W(W) {}

  size_t choose(const ChoicePoint &CP) override;

  bool diverged() const { return Diverged; }
  /// True when the run consumed the whole witness without divergence.
  bool complete() const { return !Diverged && Next == W.Choices.size(); }
  const std::string &divergence() const { return Error; }

private:
  const Witness &W;
  size_t Next = 0;
  bool Diverged = false;
  std::string Error;
};

} // namespace interp
} // namespace sharc

#endif // SHARC_INTERP_SCHEDULE_H
