//===-- interp/Interp.cpp -------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "interp/Interp.h"

#include "interp/Schedule.h"
#include "obs/Sink.h"

#include <algorithm>
#include <cassert>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <tuple>

using namespace sharc;
using namespace sharc::interp;
using namespace sharc::minic;
using sharc::checker::AccessCheck;

// The obs event vocabulary embeds TraceEvent::Kind as a prefix so the
// two streams convert by cast. A reorder on either side must keep this
// table true (the fuzzer's trace oracle also pins it at runtime).
#define SHARC_CHECK_KIND(K)                                                    \
  static_assert(static_cast<int>(obs::EventKind::K) ==                         \
                static_cast<int>(TraceEvent::Kind::K))
SHARC_CHECK_KIND(Read);
SHARC_CHECK_KIND(Write);
SHARC_CHECK_KIND(LockAcquire);
SHARC_CHECK_KIND(LockRelease);
SHARC_CHECK_KIND(SpawnEdge);
SHARC_CHECK_KIND(ThreadStart);
SHARC_CHECK_KIND(ThreadExit);
SHARC_CHECK_KIND(PtrStore);
SHARC_CHECK_KIND(CastQuery);
#undef SHARC_CHECK_KIND
static_assert(static_cast<int>(obs::LastInterpKind) ==
              static_cast<int>(TraceEvent::Kind::CastQuery));

// Violation kinds likewise embed into obs::ConflictKind by cast.
static_assert(static_cast<int>(obs::ConflictKind::ReadConflict) ==
              static_cast<int>(Violation::Kind::ReadConflict));
static_assert(static_cast<int>(obs::ConflictKind::WriteConflict) ==
              static_cast<int>(Violation::Kind::WriteConflict));
static_assert(static_cast<int>(obs::ConflictKind::LockViolation) ==
              static_cast<int>(Violation::Kind::LockViolation));
static_assert(static_cast<int>(obs::ConflictKind::CastError) ==
              static_cast<int>(Violation::Kind::CastError));
static_assert(static_cast<int>(obs::ConflictKind::RuntimeError) ==
              static_cast<int>(Violation::Kind::RuntimeError));

std::string Violation::format(const std::string &FileName) const {
  const char *KindName = "violation";
  switch (K) {
  case Kind::ReadConflict:
    KindName = "read conflict";
    break;
  case Kind::WriteConflict:
    KindName = "write conflict";
    break;
  case Kind::LockViolation:
    KindName = "lock violation";
    break;
  case Kind::CastError:
    KindName = "sharing cast error";
    break;
  case Kind::RuntimeError:
    KindName = "runtime error";
    break;
  }
  char Buf[512];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%s(0x%llx):\n", KindName,
                static_cast<unsigned long long>(Address));
  Out += Buf;
  std::snprintf(Buf, sizeof(Buf), "  who(%u)  %s @ %s: %u\n", WhoTid,
                WhoLValue.c_str(), FileName.c_str(), WhoLine);
  Out += Buf;
  if (LastTid != 0) {
    std::snprintf(Buf, sizeof(Buf), "  last(%u) %s @ %s: %u\n", LastTid,
                  LastLValue.c_str(), FileName.c_str(), LastLine);
    Out += Buf;
  }
  if (!Detail.empty()) {
    Out += "  ";
    Out += Detail;
    Out += '\n';
  }
  return Out;
}

namespace {

using Addr = uint64_t;

/// One memory cell of the operational semantics: value, pointerness (for
/// the oneref heap inspection), reader/writer thread sets, last-access
/// provenance for reports.
struct Cell {
  int64_t V = 0;
  bool IsPtr = false;
  uint64_t Readers = 0;
  uint64_t Writers = 0;
  uint16_t LastTid = 0;
  const Expr *LastExpr = nullptr;
  uint32_t LastLine = 0;
};

struct ObjectInfo {
  uint64_t Size = 0;
  bool Freed = false;
};

/// An entry on a frame's control stack.
struct Task {
  enum class K : uint8_t {
    Stmt,
    Block,
    Loop,    ///< while: re-evaluate the condition
    ForCond, ///< for: evaluate the condition, run body + step if true
    ForStep, ///< for: evaluate the step, then back to ForCond
  } Kind = K::Stmt;
  const Stmt *S = nullptr;
  size_t Index = 0;
};

/// \returns true for the control-stack markers that delimit a loop (what
/// break/continue unwind to).
static bool isLoopMarker(Task::K Kind) {
  return Kind == Task::K::Loop || Kind == Task::K::ForStep;
}

struct Frame {
  const FuncDecl *F = nullptr;
  std::map<const VarDecl *, Addr> Locals;
  std::vector<Task> Control;
  /// Where the return value goes in the *caller* frame.
  const Expr *DestLV = nullptr;
  const VarDecl *DestVar = nullptr;
};

struct ThreadCtx {
  unsigned Tid = 0;
  /// Trace-unique id (never reused, unlike Tid which is recycled).
  unsigned TraceTid = 0;
  enum class St : uint8_t {
    Runnable,
    BlockedLock,
    WaitingCond,
    Done,
    Failed
  } State = St::Runnable;
  Addr BlockLock = 0;
  Addr WaitCond = 0;
  Addr ReacquireLock = 0;
  std::vector<Frame> Frames;
  std::vector<Addr> AccessLog;
  std::vector<Addr> HeldLocks;
  std::vector<Addr> HeldSharedLocks; ///< rwlock read holds

  //===--- profiling (InterpOptions::Profile) -------------------------------
  /// Step count when this thread first blocked on its pending lock
  /// acquisition; 0 while not waiting. Survives wake/re-block cycles so
  /// the wait covers the whole contended acquisition.
  uint64_t BlockStartStep = 0;
  /// Line of the cond_wait call, attributed to the wakeup reacquire.
  uint32_t ReacquireLine = 0;
  /// Open lock holds: (lock, acquire step, acquirer line).
  struct ProfHold {
    Addr Lock = 0;
    uint64_t Step = 0;
    uint32_t Line = 0;
  };
  std::vector<ProfHold> ProfHolds;
};

/// The whole machine state for one run.
class Machine {
public:
  Machine(Program &Prog, const checker::Instrumentation &Instr,
          const InterpOptions &Options)
      : Prog(Prog), Instr(Instr), Options(Options),
        OwnedRandom(Options.Seed),
        Sched(Options.Sched ? Options.Sched : &OwnedRandom),
        WantNotes(Sched->wantsNotes()),
        Profiling(Options.Profile && Options.Sink != nullptr) {}

  InterpResult run();

private:
  InterpResult runImpl();
  //===--- memory ----------------------------------------------------------
  Addr alloc(uint64_t SizeCells);
  void freeObject(ThreadCtx &T, Addr A, const Expr *At);
  uint64_t sizeInCells(const TypeNode *T) const;
  uint64_t fieldOffset(const StructDecl *S, const VarDecl *Field) const;
  uint64_t countPtrCells(int64_t Value) const;
  void clearObjectSets(const ThreadCtx &T, Addr A);

  //===--- threads and scheduling -------------------------------------------
  unsigned allocateTid();
  ThreadCtx &spawnThread(const FuncDecl *F, int64_t Arg, bool HasArg);
  void threadExit(ThreadCtx &T);
  void step(ThreadCtx &T);
  void wakeLockWaiters(Addr Lock);

  //===--- execution ---------------------------------------------------------
  void dispatchStmt(ThreadCtx &T, Frame &F, const Stmt *S);
  void dispatchTask(ThreadCtx &T, Frame &F, Task Tk);
  void returnFromFrame(ThreadCtx &T, int64_t Value, bool IsPtr);
  /// \returns false if the call blocked and the task must be retried.
  bool execCall(ThreadCtx &T, Frame &F, const CallExpr *Call,
                const Expr *DestLV, const VarDecl *DestVar);
  bool execBuiltin(ThreadCtx &T, const FuncDecl *F,
                   const std::vector<int64_t> &Args, const CallExpr *Call);
  Addr localAddr(ThreadCtx &T, Frame &F, const VarDecl *Var);

  //===--- expressions --------------------------------------------------------
  int64_t evalExpr(ThreadCtx &T, Frame &F, const Expr *E);
  Addr evalLValue(ThreadCtx &T, Frame &F, const Expr *E);
  void runChecks(ThreadCtx &T, Frame &F, const Expr *Node, Addr A);
  void storeCell(ThreadCtx &T, Addr A, int64_t V, bool IsPtr,
                 const Expr *Node);
  int64_t readCell(ThreadCtx &T, Addr A, const Expr *Node);
  Addr addrOfVar(ThreadCtx &T, Frame &F, const VarDecl *Var);

  //===--- checks -------------------------------------------------------------
  /// Writes a cell without counting a semantic access: used for the
  /// implicit stores (parameter copies, spawn arguments, frame death,
  /// free) so pointer-slot mutations still reach the trace while
  /// Stats.TotalAccesses keeps its meaning.
  void setCellRaw(ThreadCtx &T, Addr A, int64_t V, bool IsPtr);
  /// True when any consumer wants the event stream; gates the implicit
  /// PtrStore bookkeeping so disabled runs skip it entirely.
  bool tracing() const { return Options.Trace || Options.Sink; }

  void emit(TraceEvent::Kind K, const ThreadCtx &T, uint64_t A,
            int64_t V = 0) {
    if (Options.Trace)
      Options.Trace->push_back(TraceEvent{K, T.TraceTid, A, V});
    if (Options.Sink)
      Options.Sink->event(obs::Event{static_cast<obs::EventKind>(K),
                                     T.TraceTid, A, V, 0});
  }

  /// Publishes a Conflict event for a just-recorded violation. Null T
  /// means the machine itself (thread limit, deadlock, step budget);
  /// those carry tid 0.
  void emitConflict(const Violation &V, const ThreadCtx *T) {
    if (!Options.Sink)
      return;
    obs::Event Ev;
    Ev.K = obs::EventKind::Conflict;
    Ev.Tid = T ? T->TraceTid : 0;
    Ev.Addr = V.Address;
    Ev.Value = static_cast<int64_t>(V.LastTid);
    Ev.Extra = obs::makeConflictExtra(
        static_cast<obs::ConflictKind>(V.K), V.WhoLine, V.LastLine);
    Options.Sink->event(Ev);
  }

  //===--- profiling ---------------------------------------------------------
  /// Counts one check at \p Node's site. Null \p Node is the "<implicit>"
  /// pseudo-site (parameter copies, returns into declared variables) so
  /// profile totals still equal the run's final stats exactly.
  void profRecord(obs::CheckKind K, const ThreadCtx &T, const Expr *Node,
                  uint64_t Bytes) {
    if (!Profiling)
      return;
    ++ProfOps;
    auto &Agg = ProfSites[std::make_tuple(T.TraceTid, uint8_t(K), Node)];
    ++Agg.Count;
    Agg.Bytes += Bytes;
  }
  void profLockBlocked(ThreadCtx &T, Addr Lock, uint32_t Line);
  void profLockAcquired(ThreadCtx &T, Addr Lock, uint32_t Line);
  void profLockReleased(ThreadCtx &T, Addr Lock);
  void publishProfile();

  //===--- sharc-live --------------------------------------------------------
  /// Publishes a mid-run LiveSnapshot to Options.Live (DESIGN.md §13).
  /// Called from the scheduler every LivePollSteps steps; the driver
  /// publishes the final, trace-exact snapshot itself after the run.
  void publishLive();

  void chkRead(ThreadCtx &T, Addr A, const Expr *Node);
  void chkWrite(ThreadCtx &T, Addr A, const Expr *Node);
  void chkLock(ThreadCtx &T, Frame &F, const AccessCheck &Check, Addr A,
               const Expr *Node);
  void report(Violation::Kind K, ThreadCtx &T, Addr A, const Expr *Node,
              const Cell *Last = nullptr, std::string Detail = "");
  /// Under Policy::Quarantine, cells that already reported once stop
  /// firing (the location has been demoted to racy-equivalent). The
  /// policy-byte compare keeps the other policies at zero added cost.
  bool isCellQuarantined(Addr A) const {
    return Options.Guard.OnViolation == guard::Policy::Quarantine &&
           QuarCells.count(A) != 0;
  }

  bool exprIsPointer(const Expr *E) const {
    return E->ExprType && (E->ExprType->isPointer() || E->ExprType->isFunc());
  }

  /// Reports a trace-invisible effect to the schedule (Schedule.h);
  /// free when the schedule does not listen.
  void schedNote(SchedNote K, const ThreadCtx &T, uint64_t A) {
    if (WantNotes)
      Sched->note(K, T.TraceTid, A);
  }

  Program &Prog;
  const checker::Instrumentation &Instr;
  InterpOptions Options;
  /// Fallback decision source when Options.Sched is null: the
  /// historical seeded scheduler (bit-exact; see Schedule.h).
  RandomSchedule OwnedRandom;
  Schedule *Sched;
  const bool WantNotes;
  /// The schedule asked to stop (Schedule::Abort). Mid-step requests
  /// (cond_signal picks) finish the step first; the run loop checks
  /// before every step.
  bool SchedAbort = false;

  std::vector<Cell> Mem;
  std::map<Addr, ObjectInfo> Objects;
  std::map<const VarDecl *, Addr> Globals;
  std::map<const Expr *, Addr> StringCache;
  std::map<Addr, unsigned> LockOwner;
  /// rwlock reader counts (the writer side reuses LockOwner).
  std::map<Addr, unsigned> ReaderCount;
  std::map<Addr, std::vector<unsigned>> CondWaiters;
  std::deque<ThreadCtx> Threads;
  std::vector<unsigned> FreeTids;
  unsigned NextTid = 1;
  unsigned NextTraceTid = 1;
  uint64_t NextSpawnToken = 0;
  /// Function "addresses" for function pointer values.
  std::map<const FuncDecl *, int64_t> FuncIds;
  std::map<int64_t, const FuncDecl *> FuncById;

  //===--- profiling state ---------------------------------------------------
  const bool Profiling;
  struct SiteAgg {
    uint64_t Count = 0;
    uint64_t Bytes = 0;
  };
  /// Keyed by (trace tid, check kind, site node); sites sharing a
  /// file:line merge at publish time so the record stream is
  /// deterministic regardless of AST pointer values.
  std::map<std::tuple<unsigned, uint8_t, const Expr *>, SiteAgg> ProfSites;
  struct LockAgg {
    uint64_t Acquires = 0;
    uint64_t Contended = 0;
    uint64_t WaitSteps = 0;
    uint64_t HoldSteps = 0;
    uint64_t WaitHist[obs::NumHistBuckets] = {};
    uint64_t HoldHist[obs::NumHistBuckets] = {};
  };
  /// Keyed by (trace tid, lock address, acquirer line).
  std::map<std::tuple<unsigned, Addr, uint32_t>, LockAgg> ProfLocks;
  uint64_t ProfOps = 0;

  //===--- failure semantics (sharc-guard) -----------------------------------
  static constexpr unsigned NumViolationKinds = 5;
  /// Policy::Abort saw a violation; the scheduler stops before its next
  /// step.
  bool PolicyHalt = false;
  /// Cells demoted by Policy::Quarantine.
  std::set<Addr> QuarCells;
  /// Dedup keys (kind, address, who-line) — populated only when
  /// GuardConfig::MaxReportsPerKind is nonzero.
  std::set<std::tuple<uint8_t, Addr, uint32_t>> SeenViolations;
  uint64_t RetainedPerKind[NumViolationKinds] = {};

  InterpResult Result;
};

constexpr int64_t FuncIdBase = int64_t(1) << 48;

//===----------------------------------------------------------------------===//
// Memory
//===----------------------------------------------------------------------===//

uint64_t Machine::sizeInCells(const TypeNode *T) const {
  if (!T)
    return 1;
  switch (T->Kind) {
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Bool:
  case TypeKind::Void:
  case TypeKind::Mutex:
  case TypeKind::Cond:
  case TypeKind::Pointer:
  case TypeKind::Func:
    return 1;
  case TypeKind::Array:
    return static_cast<uint64_t>(T->ArraySize > 0 ? T->ArraySize : 1) *
           sizeInCells(T->Pointee);
  case TypeKind::Struct: {
    uint64_t Size = 0;
    if (T->Struct)
      for (const VarDecl *Field : T->Struct->Fields)
        Size += sizeInCells(Field->DeclType);
    return Size ? Size : 1;
  }
  }
  return 1;
}

uint64_t Machine::fieldOffset(const StructDecl *S,
                              const VarDecl *Field) const {
  uint64_t Offset = 0;
  for (const VarDecl *F : S->Fields) {
    if (F == Field)
      return Offset;
    Offset += sizeInCells(F->DeclType);
  }
  return Offset;
}

Addr Machine::alloc(uint64_t SizeCells) {
  if (SizeCells == 0)
    SizeCells = 1;
  Addr A = Mem.size();
  Mem.resize(Mem.size() + SizeCells);
  Objects[A] = ObjectInfo{SizeCells, false};
  return A;
}

void Machine::clearObjectSets(const ThreadCtx &T, Addr A) {
  auto It = Objects.find(A);
  if (It == Objects.end()) {
    // Interior pointer: find the containing object.
    It = Objects.upper_bound(A);
    if (It == Objects.begin())
      return;
    --It;
    if (A >= It->first + It->second.Size)
      return;
  }
  for (Addr C = It->first; C != It->first + It->second.Size; ++C) {
    Mem[C].Readers = 0;
    Mem[C].Writers = 0;
    Mem[C].LastTid = 0;
    Mem[C].LastExpr = nullptr;
    schedNote(SchedNote::ImplicitWrite, T, C);
  }
}

void Machine::freeObject(ThreadCtx &T, Addr A, const Expr *At) {
  if (A == 0)
    return;
  auto It = Objects.find(A);
  if (It == Objects.end() || It->second.Freed) {
    report(Violation::Kind::RuntimeError, T, A, At, nullptr,
           "free of invalid or already-freed pointer");
    return;
  }
  // "When heap memory is deallocated with free(), it is no longer
  // considered to be accessed by any thread."
  for (Addr C = It->first; C != It->first + It->second.Size; ++C) {
    if (Mem[C].IsPtr)
      emit(TraceEvent::Kind::PtrStore, T, C, 0);
    Mem[C] = Cell{};
    schedNote(SchedNote::ImplicitWrite, T, C);
  }
  It->second.Freed = true;
}

uint64_t Machine::countPtrCells(int64_t Value) const {
  uint64_t Count = 0;
  for (const Cell &C : Mem)
    if (C.IsPtr && C.V == Value)
      ++Count;
  return Count;
}

//===----------------------------------------------------------------------===//
// Checks and reports
//===----------------------------------------------------------------------===//

void Machine::report(Violation::Kind K, ThreadCtx &T, Addr A,
                     const Expr *Node, const Cell *Last,
                     std::string Detail) {
  Violation V;
  V.K = K;
  V.Address = A;
  V.WhoTid = T.Tid;
  if (Node) {
    V.WhoLValue = Node->spelling();
    V.WhoLine = Node->Loc.Line;
  }
  if (Last && Last->LastTid) {
    V.LastTid = Last->LastTid;
    if (Last->LastExpr)
      V.LastLValue = Last->LastExpr->spelling();
    V.LastLine = Last->LastLine;
  }
  V.Detail = std::move(Detail);

  // Every violation is counted and published to the obs stream; dedup
  // and the per-kind cap only govern what Violations retains. With the
  // default config (no cap) retention is unconditional, preserving the
  // interpreter's historical behaviour byte for byte.
  ++Result.TotalViolations;
  bool Retain = true;
  if (Options.Guard.MaxReportsPerKind != 0) {
    unsigned Idx = static_cast<unsigned>(K) % NumViolationKinds;
    if (!SeenViolations
             .insert(std::make_tuple(static_cast<uint8_t>(K), A, V.WhoLine))
             .second)
      Retain = false;
    else if (RetainedPerKind[Idx] >= Options.Guard.MaxReportsPerKind)
      Retain = false;
    else
      ++RetainedPerKind[Idx];
  }
  if (Retain)
    Result.Violations.push_back(V);
  emitConflict(V, &T);

  switch (Options.Guard.OnViolation) {
  case guard::Policy::Abort:
    // Halt the whole run at the first violation (the paper's fail-fast
    // semantics, mirrored from the native runtime's abort policy). The
    // scheduler loop notices PolicyHalt before the next step.
    PolicyHalt = true;
    T.State = ThreadCtx::St::Failed;
    return;
  case guard::Policy::Continue:
    break;
  case guard::Policy::Quarantine:
    // Demote the offending location so this one bad site cannot re-fire
    // forever: reader/writer history is discarded and the cell joins the
    // quarantine set the checks consult.
    switch (K) {
    case Violation::Kind::ReadConflict:
    case Violation::Kind::WriteConflict:
      Mem[A].Readers = 0;
      Mem[A].Writers = 0;
      Mem[A].LastTid = 0;
      Mem[A].LastExpr = nullptr;
      QuarCells.insert(A);
      break;
    case Violation::Kind::LockViolation:
      QuarCells.insert(A);
      break;
    case Violation::Kind::CastError:
      clearObjectSets(T, A);
      break;
    case Violation::Kind::RuntimeError:
      break;
    }
    break;
  }
  if (Options.FailStop)
    T.State = ThreadCtx::St::Failed;
}

void Machine::chkRead(ThreadCtx &T, Addr A, const Expr *Node) {
  ++Result.Stats.DynamicChecks;
  Cell &C = Mem[A];
  uint64_t Bit = uint64_t(1) << T.Tid;
  if ((C.Writers & ~Bit) != 0 && !isCellQuarantined(A))
    report(Violation::Kind::ReadConflict, T, A, Node, &C);
  if ((C.Readers & Bit) == 0 && (C.Writers & Bit) == 0)
    T.AccessLog.push_back(A);
  C.Readers |= Bit;
  C.LastTid = static_cast<uint16_t>(T.Tid);
  C.LastExpr = Node;
  C.LastLine = Node ? Node->Loc.Line : 0;
}

void Machine::chkWrite(ThreadCtx &T, Addr A, const Expr *Node) {
  ++Result.Stats.DynamicChecks;
  Cell &C = Mem[A];
  uint64_t Bit = uint64_t(1) << T.Tid;
  if (((C.Readers | C.Writers) & ~Bit) != 0 && !isCellQuarantined(A))
    report(Violation::Kind::WriteConflict, T, A, Node, &C);
  if ((C.Readers & Bit) == 0 && (C.Writers & Bit) == 0)
    T.AccessLog.push_back(A);
  C.Writers |= Bit;
  C.LastTid = static_cast<uint16_t>(T.Tid);
  C.LastExpr = Node;
  C.LastLine = Node ? Node->Loc.Line : 0;
}

void Machine::chkLock(ThreadCtx &T, Frame &F, const AccessCheck &Check,
                      Addr A, const Expr *Node) {
  ++Result.Stats.LockChecks;
  profRecord(obs::CheckKind::LockCheck, T, Node, 0);
  // Resolve the lock value. A field lock (locked(mut)) is read from the
  // access's instance; other lock expressions evaluate directly.
  int64_t LockValue = 0;
  if (Check.LockBase) {
    auto *Name = cast<NameExpr>(Check.LockExpr);
    const VarDecl *LockField = Name->Var;
    int64_t Instance = 0;
    if (Check.LockBase->ExprType && Check.LockBase->ExprType->isPointer())
      Instance = evalExpr(T, F, Check.LockBase);
    else
      Instance = static_cast<int64_t>(evalLValue(T, F, Check.LockBase));
    if (Instance == 0) {
      report(Violation::Kind::RuntimeError, T, A, Node, nullptr,
             "null instance while resolving lock");
      return;
    }
    Addr LockCell = static_cast<Addr>(Instance) +
                    fieldOffset(LockField->Parent, LockField);
    LockValue = Mem[LockCell].V;
  } else {
    LockValue = evalExpr(T, F, Check.LockExpr);
  }
  Addr Lock = static_cast<Addr>(LockValue);
  for (Addr Held : T.HeldLocks)
    if (Held == Lock)
      return;
  if (Check.K == AccessCheck::Kind::LockShared)
    for (Addr Held : T.HeldSharedLocks)
      if (Held == Lock)
        return;
  if (isCellQuarantined(A))
    return;
  report(Violation::Kind::LockViolation, T, A, Node, nullptr,
         Check.K == AccessCheck::Kind::LockShared
             ? "required lock is not held (shared or exclusive)"
             : "required lock is not held");
}

void Machine::runChecks(ThreadCtx &T, Frame &F, const Expr *Node, Addr A) {
  const auto *Checks = Instr.checksFor(Node);
  if (!Checks)
    return;
  for (const AccessCheck &Check : *Checks) {
    switch (Check.K) {
    case AccessCheck::Kind::Read:
      chkRead(T, A, Node);
      break;
    case AccessCheck::Kind::Write:
      chkWrite(T, A, Node);
      break;
    case AccessCheck::Kind::Lock:
    case AccessCheck::Kind::LockShared:
      chkLock(T, F, Check, A, Node);
      break;
    }
  }
}

//===----------------------------------------------------------------------===//
// Cells
//===----------------------------------------------------------------------===//

int64_t Machine::readCell(ThreadCtx &T, Addr A, const Expr *Node) {
  ++Result.Stats.TotalAccesses;
  ++Result.Stats.Reads;
  profRecord(obs::CheckKind::DynamicRead, T, Node, 8);
  emit(TraceEvent::Kind::Read, T, A);
  return Mem[A].V;
}

void Machine::storeCell(ThreadCtx &T, Addr A, int64_t V, bool IsPtr,
                        const Expr *Node) {
  ++Result.Stats.TotalAccesses;
  ++Result.Stats.Writes;
  profRecord(obs::CheckKind::DynamicWrite, T, Node, 8);
  emit(TraceEvent::Kind::Write, T, A);
  if (tracing() && (IsPtr || Mem[A].IsPtr))
    emit(TraceEvent::Kind::PtrStore, T, A, IsPtr ? V : 0);
  Mem[A].V = V;
  Mem[A].IsPtr = IsPtr;
}

void Machine::setCellRaw(ThreadCtx &T, Addr A, int64_t V, bool IsPtr) {
  if (tracing() && (IsPtr || Mem[A].IsPtr))
    emit(TraceEvent::Kind::PtrStore, T, A, IsPtr ? V : 0);
  Mem[A].V = V;
  Mem[A].IsPtr = IsPtr;
  schedNote(SchedNote::ImplicitWrite, T, A);
}

Addr Machine::addrOfVar(ThreadCtx &T, Frame &F, const VarDecl *Var) {
  if (Var->Storage == StorageKind::Global) {
    auto It = Globals.find(Var);
    assert(It != Globals.end() && "unallocated global");
    return It->second;
  }
  return localAddr(T, F, Var);
}

Addr Machine::localAddr(ThreadCtx &T, Frame &F, const VarDecl *Var) {
  (void)T;
  auto It = F.Locals.find(Var);
  if (It != F.Locals.end())
    return It->second;
  Addr A = alloc(sizeInCells(Var->DeclType));
  F.Locals[Var] = A;
  return A;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Addr Machine::evalLValue(ThreadCtx &T, Frame &F, const Expr *E) {
  switch (E->Kind) {
  case ExprKind::Name: {
    auto *Name = cast<NameExpr>(E);
    assert(Name->Var && "l-value name must be a variable");
    return addrOfVar(T, F, Name->Var);
  }
  case ExprKind::Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    assert(Unary->Op == UnaryOp::Deref && "not an l-value unary");
    int64_t P = evalExpr(T, F, Unary->Sub);
    if (P == 0) {
      report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
             "null pointer dereference");
      T.State = ThreadCtx::St::Failed;
      return 0;
    }
    return static_cast<Addr>(P);
  }
  case ExprKind::Member: {
    auto *Member = cast<MemberExpr>(E);
    int64_t Base;
    if (Member->IsArrow) {
      Base = evalExpr(T, F, Member->Base);
      if (Base == 0) {
        report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
               "null pointer dereference");
        T.State = ThreadCtx::St::Failed;
        return 0;
      }
    } else {
      Base = static_cast<int64_t>(evalLValue(T, F, Member->Base));
    }
    return static_cast<Addr>(Base) +
           fieldOffset(Member->Field->Parent, Member->Field);
  }
  case ExprKind::Index: {
    auto *Index = cast<IndexExpr>(E);
    const TypeNode *BaseType = Index->Base->ExprType;
    int64_t Base;
    if (BaseType && BaseType->isArray())
      Base = static_cast<int64_t>(evalLValue(T, F, Index->Base));
    else
      Base = evalExpr(T, F, Index->Base);
    int64_t Idx = evalExpr(T, F, Index->Idx);
    if (Base == 0) {
      report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
             "null pointer subscript");
      T.State = ThreadCtx::St::Failed;
      return 0;
    }
    uint64_t ElemSize =
        BaseType && BaseType->Pointee ? sizeInCells(BaseType->Pointee) : 1;
    return static_cast<Addr>(Base + Idx * static_cast<int64_t>(ElemSize));
  }
  default:
    report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
           "expression is not an l-value");
    T.State = ThreadCtx::St::Failed;
    return 0;
  }
}

int64_t Machine::evalExpr(ThreadCtx &T, Frame &F, const Expr *E) {
  if (T.State == ThreadCtx::St::Failed)
    return 0;
  switch (E->Kind) {
  case ExprKind::IntLit:
    return cast<IntLitExpr>(E)->Value;
  case ExprKind::BoolLit:
    return cast<BoolLitExpr>(E)->Value ? 1 : 0;
  case ExprKind::NullLit:
    return 0;
  case ExprKind::StrLit: {
    auto It = StringCache.find(E);
    if (It != StringCache.end())
      return static_cast<int64_t>(It->second);
    const std::string &S = cast<StrLitExpr>(E)->Value;
    Addr A = alloc(S.size() + 1);
    for (size_t I = 0; I != S.size(); ++I)
      Mem[A + I].V = static_cast<unsigned char>(S[I]);
    StringCache[E] = A;
    return static_cast<int64_t>(A);
  }
  case ExprKind::Name: {
    auto *Name = cast<NameExpr>(E);
    if (Name->Func) {
      auto It = FuncIds.find(Name->Func);
      if (It == FuncIds.end()) {
        int64_t Id = FuncIdBase + static_cast<int64_t>(FuncIds.size()) + 1;
        FuncIds[Name->Func] = Id;
        FuncById[Id] = Name->Func;
        return Id;
      }
      return It->second;
    }
    Addr A = addrOfVar(T, F, Name->Var);
    runChecks(T, F, E, A);
    return readCell(T, A, E);
  }
  case ExprKind::Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    switch (Unary->Op) {
    case UnaryOp::Deref: {
      Addr A = evalLValue(T, F, E);
      if (T.State == ThreadCtx::St::Failed)
        return 0;
      runChecks(T, F, E, A);
      return readCell(T, A, E);
    }
    case UnaryOp::AddrOf:
      return static_cast<int64_t>(evalLValue(T, F, Unary->Sub));
    case UnaryOp::Not:
      return evalExpr(T, F, Unary->Sub) == 0 ? 1 : 0;
    case UnaryOp::Neg:
      return -evalExpr(T, F, Unary->Sub);
    }
    return 0;
  }
  case ExprKind::Binary: {
    auto *Binary = cast<BinaryExpr>(E);
    if (Binary->Op == BinaryOp::And)
      return evalExpr(T, F, Binary->Lhs) != 0 &&
             evalExpr(T, F, Binary->Rhs) != 0;
    if (Binary->Op == BinaryOp::Or)
      return evalExpr(T, F, Binary->Lhs) != 0 ||
             evalExpr(T, F, Binary->Rhs) != 0;
    int64_t L = evalExpr(T, F, Binary->Lhs);
    int64_t R = evalExpr(T, F, Binary->Rhs);
    switch (Binary->Op) {
    case BinaryOp::Add:
    case BinaryOp::Sub: {
      // Scale pointer arithmetic by the element size in cells.
      const TypeNode *LT = Binary->Lhs->ExprType;
      if (LT && LT->isPointer() && LT->Pointee) {
        int64_t Scale = static_cast<int64_t>(sizeInCells(LT->Pointee));
        R *= Scale;
      }
      return Binary->Op == BinaryOp::Add ? L + R : L - R;
    }
    case BinaryOp::Mul:
      return L * R;
    case BinaryOp::Div:
      if (R == 0) {
        report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
               "division by zero");
        T.State = ThreadCtx::St::Failed;
        return 0;
      }
      return L / R;
    case BinaryOp::Rem:
      if (R == 0) {
        report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
               "remainder by zero");
        T.State = ThreadCtx::St::Failed;
        return 0;
      }
      return L % R;
    case BinaryOp::Eq:
      return L == R;
    case BinaryOp::Ne:
      return L != R;
    case BinaryOp::Lt:
      return L < R;
    case BinaryOp::Le:
      return L <= R;
    case BinaryOp::Gt:
      return L > R;
    case BinaryOp::Ge:
      return L >= R;
    default:
      return 0;
    }
  }
  case ExprKind::Assign: {
    auto *Assign = cast<AssignExpr>(E);
    if (isa<CallExpr>(Assign->Rhs)) {
      report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
             "call results may only be assigned at statement level");
      T.State = ThreadCtx::St::Failed;
      return 0;
    }
    int64_t V = evalExpr(T, F, Assign->Rhs);
    if (T.State == ThreadCtx::St::Failed)
      return 0;
    Addr A = evalLValue(T, F, Assign->Lhs);
    if (T.State == ThreadCtx::St::Failed)
      return 0;
    runChecks(T, F, Assign->Lhs, A);
    storeCell(T, A, V, exprIsPointer(Assign->Rhs), Assign->Lhs);
    return V;
  }
  case ExprKind::Member:
  case ExprKind::Index: {
    Addr A = evalLValue(T, F, E);
    if (T.State == ThreadCtx::St::Failed)
      return 0;
    runChecks(T, F, E, A);
    return readCell(T, A, E);
  }
  case ExprKind::Scast: {
    auto *Scast = cast<ScastExpr>(E);
    ++Result.Stats.SharingCasts;
    profRecord(obs::CheckKind::SharingCast, T, Scast->Src, 0);
    Addr SrcAddr = evalLValue(T, F, Scast->Src);
    if (T.State == ThreadCtx::St::Failed)
      return 0;
    runChecks(T, F, Scast->Src, SrcAddr);
    int64_t Obj = readCell(T, SrcAddr, Scast->Src);
    if (Obj != 0) {
      // oneref (Figure 6): the cast reference must be the only one.
      uint64_t Refs = countPtrCells(Obj);
      emit(TraceEvent::Kind::CastQuery, T, static_cast<uint64_t>(Obj),
           static_cast<int64_t>(Refs));
      if (Refs > 1) {
        report(Violation::Kind::CastError, T, static_cast<Addr>(Obj),
               Scast->Src, nullptr,
               "object has " + std::to_string(Refs) +
                   " references; a sharing cast requires exactly one");
      }
    }
    // Null the source so no alias under the old mode survives, and clear
    // the object's reader/writer history.
    storeCell(T, SrcAddr, 0, /*IsPtr=*/true, Scast->Src);
    if (Obj != 0)
      clearObjectSets(T, static_cast<Addr>(Obj));
    return Obj;
  }
  case ExprKind::New: {
    auto *New = cast<NewExpr>(E);
    int64_t Count = 1;
    if (New->Count)
      Count = evalExpr(T, F, New->Count);
    if (Count < 1)
      Count = 1;
    return static_cast<int64_t>(
        alloc(static_cast<uint64_t>(Count) * sizeInCells(New->ElemType)));
  }
  case ExprKind::Sizeof:
    return static_cast<int64_t>(
        sizeInCells(cast<SizeofExpr>(E)->OfType));
  case ExprKind::Call:
    report(Violation::Kind::RuntimeError, T, 0, E, nullptr,
           "calls may only appear as statements, assignments, or "
           "initializers");
    T.State = ThreadCtx::St::Failed;
    return 0;
  }
  return 0;
}

//===----------------------------------------------------------------------===//
// Lock profiling
//===----------------------------------------------------------------------===//

void Machine::profLockBlocked(ThreadCtx &T, Addr Lock, uint32_t Line) {
  if (!Profiling)
    return;
  // First block of this acquisition starts the wait clock; re-blocks
  // after losing a wakeup race extend the same wait.
  if (T.BlockStartStep == 0)
    T.BlockStartStep = Result.Stats.Steps;
  // LockWait is an obs-only event kind (never in the Trace vector).
  obs::Event Ev;
  Ev.K = obs::EventKind::LockWait;
  Ev.Tid = T.TraceTid;
  Ev.Addr = Lock;
  Ev.Extra = Line;
  Options.Sink->event(Ev);
}

void Machine::profLockAcquired(ThreadCtx &T, Addr Lock, uint32_t Line) {
  if (!Profiling)
    return;
  uint64_t Wait = 0;
  bool Contended = false;
  if (T.BlockStartStep != 0) {
    Wait = Result.Stats.Steps - T.BlockStartStep;
    Contended = true;
    T.BlockStartStep = 0;
  }
  LockAgg &L = ProfLocks[std::make_tuple(T.TraceTid, Lock, Line)];
  ++L.Acquires;
  if (Contended)
    ++L.Contended;
  L.WaitSteps += Wait;
  ++L.WaitHist[obs::histBucket(Wait)];
  T.ProfHolds.push_back(ThreadCtx::ProfHold{Lock, Result.Stats.Steps, Line});
}

void Machine::profLockReleased(ThreadCtx &T, Addr Lock) {
  if (!Profiling)
    return;
  for (auto It = T.ProfHolds.rbegin(); It != T.ProfHolds.rend(); ++It) {
    if (It->Lock != Lock)
      continue;
    uint64_t Held = Result.Stats.Steps - It->Step;
    LockAgg &L = ProfLocks[std::make_tuple(T.TraceTid, Lock, It->Line)];
    L.HoldSteps += Held;
    ++L.HoldHist[obs::histBucket(Held)];
    T.ProfHolds.erase(std::next(It).base());
    return;
  }
}

//===----------------------------------------------------------------------===//
// Calls, builtins, threads
//===----------------------------------------------------------------------===//

bool Machine::execBuiltin(ThreadCtx &T, const FuncDecl *F,
                          const std::vector<int64_t> &Args,
                          const CallExpr *Call) {
  const std::string &Name = F->Name;
  if (Name == "mutex_lock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    unsigned &Owner = LockOwner[Lock];
    if (Owner == 0) {
      Owner = T.Tid;
      T.HeldLocks.push_back(Lock);
      emit(TraceEvent::Kind::LockAcquire, T, Lock);
      profLockAcquired(T, Lock, Call->Loc.Line);
      return true;
    }
    if (Owner == T.Tid) {
      report(Violation::Kind::RuntimeError, T, Lock, Call, nullptr,
             "recursive lock acquisition");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    T.State = ThreadCtx::St::BlockedLock;
    T.BlockLock = Lock;
    schedNote(SchedNote::BlockedLock, T, Lock);
    profLockBlocked(T, Lock, Call->Loc.Line);
    return false;
  }
  if (Name == "mutex_unlock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    unsigned &Owner = LockOwner[Lock];
    if (Owner != T.Tid) {
      report(Violation::Kind::RuntimeError, T, Lock, Call, nullptr,
             "unlock of a mutex not held by this thread");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    Owner = 0;
    for (auto It = T.HeldLocks.begin(); It != T.HeldLocks.end(); ++It)
      if (*It == Lock) {
        T.HeldLocks.erase(It);
        break;
      }
    profLockReleased(T, Lock);
    emit(TraceEvent::Kind::LockRelease, T, Lock);
    wakeLockWaiters(Lock);
    return true;
  }
  if (Name == "cond_wait") {
    Addr Cond = static_cast<Addr>(Args[0]);
    Addr Lock = static_cast<Addr>(Args[1]);
    unsigned &Owner = LockOwner[Lock];
    if (Owner != T.Tid) {
      report(Violation::Kind::RuntimeError, T, Lock, Call, nullptr,
             "cond_wait without holding the mutex");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    Owner = 0;
    for (auto It = T.HeldLocks.begin(); It != T.HeldLocks.end(); ++It)
      if (*It == Lock) {
        T.HeldLocks.erase(It);
        break;
      }
    profLockReleased(T, Lock);
    emit(TraceEvent::Kind::LockRelease, T, Lock);
    wakeLockWaiters(Lock);
    T.State = ThreadCtx::St::WaitingCond;
    T.WaitCond = Cond;
    T.ReacquireLock = Lock;
    T.ReacquireLine = Call->Loc.Line;
    CondWaiters[Cond].push_back(T.Tid);
    schedNote(SchedNote::CondWait, T, Cond);
    return true; // consumed; the thread resumes after signal + reacquire
  }
  if (Name == "cond_signal" || Name == "cond_broadcast") {
    Addr Cond = static_cast<Addr>(Args[0]);
    auto &Waiters = CondWaiters[Cond];
    if (Waiters.empty())
      return true;
    schedNote(SchedNote::CondWake, T, Cond);
    if (Name == "cond_signal") {
      // Which waiter wakes is a genuine scheduling decision: route it
      // through the choice-point API so replay is bit-exact and the
      // explorer can branch on it. RandomSchedule answers 0, the
      // historical FIFO wake-up, so seeded runs are unchanged.
      std::vector<unsigned> OptionTids(Waiters.size());
      for (size_t I = 0; I != Waiters.size(); ++I) {
        OptionTids[I] = 0;
        for (const ThreadCtx &W : Threads)
          if (W.Tid == Waiters[I] && W.State == ThreadCtx::St::WaitingCond)
            OptionTids[I] = W.TraceTid;
      }
      ChoicePoint CP{ChoiceKind::CondSignalPick, OptionTids.data(),
                     OptionTids.size()};
      size_t Idx = Sched->choose(CP);
      if (Idx >= OptionTids.size()) {
        // Abort (or out of range): stop before the next step; wake the
        // FIFO head so this step still terminates cleanly.
        SchedAbort = true;
        Idx = 0;
      }
      unsigned Tid = Waiters[Idx];
      for (ThreadCtx &W : Threads)
        if (W.Tid == Tid && W.State == ThreadCtx::St::WaitingCond) {
          W.State = ThreadCtx::St::Runnable;
          W.WaitCond = 0;
          // W.ReacquireLock already holds the mutex to re-take.
        }
      Waiters.erase(Waiters.begin() + Idx);
      return true;
    }
    // Broadcast wakes everyone; no decision to make.
    for (unsigned Tid : Waiters)
      for (ThreadCtx &W : Threads)
        if (W.Tid == Tid && W.State == ThreadCtx::St::WaitingCond) {
          W.State = ThreadCtx::St::Runnable;
          W.WaitCond = 0;
        }
    Waiters.clear();
    return true;
  }
  if (Name == "rwlock_rdlock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    if (LockOwner[Lock] != 0) { // a writer holds it
      T.State = ThreadCtx::St::BlockedLock;
      T.BlockLock = Lock;
      schedNote(SchedNote::BlockedLock, T, Lock);
      profLockBlocked(T, Lock, Call->Loc.Line);
      return false;
    }
    ++ReaderCount[Lock];
    T.HeldSharedLocks.push_back(Lock);
    emit(TraceEvent::Kind::LockAcquire, T, Lock);
    profLockAcquired(T, Lock, Call->Loc.Line);
    return true;
  }
  if (Name == "rwlock_rdunlock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    auto It = std::find(T.HeldSharedLocks.begin(), T.HeldSharedLocks.end(),
                        Lock);
    if (It == T.HeldSharedLocks.end()) {
      report(Violation::Kind::RuntimeError, T, Lock, Call, nullptr,
             "rwlock_rdunlock without a shared hold");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    T.HeldSharedLocks.erase(It);
    profLockReleased(T, Lock);
    emit(TraceEvent::Kind::LockRelease, T, Lock);
    if (--ReaderCount[Lock] == 0)
      wakeLockWaiters(Lock); // a writer may proceed
    return true;
  }
  if (Name == "rwlock_wrlock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    if (LockOwner[Lock] != 0 || ReaderCount[Lock] != 0) {
      T.State = ThreadCtx::St::BlockedLock;
      T.BlockLock = Lock;
      schedNote(SchedNote::BlockedLock, T, Lock);
      profLockBlocked(T, Lock, Call->Loc.Line);
      return false;
    }
    LockOwner[Lock] = T.Tid;
    T.HeldLocks.push_back(Lock);
    emit(TraceEvent::Kind::LockAcquire, T, Lock);
    profLockAcquired(T, Lock, Call->Loc.Line);
    return true;
  }
  if (Name == "rwlock_wrunlock") {
    Addr Lock = static_cast<Addr>(Args[0]);
    if (LockOwner[Lock] != T.Tid) {
      report(Violation::Kind::RuntimeError, T, Lock, Call, nullptr,
             "rwlock_wrunlock without the exclusive hold");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    LockOwner[Lock] = 0;
    for (auto It = T.HeldLocks.begin(); It != T.HeldLocks.end(); ++It)
      if (*It == Lock) {
        T.HeldLocks.erase(It);
        break;
      }
    profLockReleased(T, Lock);
    emit(TraceEvent::Kind::LockRelease, T, Lock);
    wakeLockWaiters(Lock);
    return true;
  }
  if (Name == "print_int") {
    Result.Output += std::to_string(Args[0]);
    Result.Output += '\n';
    return true;
  }
  if (Name == "print_str") {
    Addr A = static_cast<Addr>(Args[0]);
    for (uint64_t I = 0; A + I < Mem.size() && Mem[A + I].V != 0 && I < 4096;
         ++I)
      Result.Output += static_cast<char>(Mem[A + I].V);
    Result.Output += '\n';
    return true;
  }
  report(Violation::Kind::RuntimeError, T, 0, Call, nullptr,
         "unknown builtin '" + Name + "'");
  T.State = ThreadCtx::St::Failed;
  return true;
}

bool Machine::execCall(ThreadCtx &T, Frame &F, const CallExpr *Call,
                       const Expr *DestLV, const VarDecl *DestVar) {
  const FuncDecl *Callee = nullptr;
  if (auto *Name = dyn_cast<NameExpr>(Call->Callee)) {
    Callee = Name->Func;
  }
  if (!Callee) {
    // Indirect call through a function pointer value.
    int64_t Id = evalExpr(T, F, Call->Callee);
    if (T.State == ThreadCtx::St::Failed)
      return true;
    auto It = FuncById.find(Id);
    if (It == FuncById.end()) {
      report(Violation::Kind::RuntimeError, T, static_cast<Addr>(Id), Call,
             nullptr, "call through invalid function pointer");
      T.State = ThreadCtx::St::Failed;
      return true;
    }
    Callee = It->second;
  }

  std::vector<int64_t> Args;
  Args.reserve(Call->Args.size());
  for (const Expr *Arg : Call->Args) {
    Args.push_back(evalExpr(T, F, Arg));
    if (T.State == ThreadCtx::St::Failed)
      return true;
  }

  if (Callee->IsBuiltin)
    return execBuiltin(T, Callee, Args, Call);

  Frame NewFrame;
  NewFrame.F = Callee;
  NewFrame.DestLV = DestLV;
  NewFrame.DestVar = DestVar;
  NewFrame.Control.push_back(Task{Task::K::Stmt, Callee->Body, 0});
  T.Frames.push_back(std::move(NewFrame));
  Frame &Pushed = T.Frames.back();
  for (size_t I = 0; I != Callee->Params.size() && I != Args.size(); ++I) {
    Addr A = localAddr(T, Pushed, Callee->Params[I]);
    setCellRaw(T, A, Args[I], Callee->Params[I]->DeclType->isPointer());
  }
  return true;
}

void Machine::returnFromFrame(ThreadCtx &T, int64_t Value, bool IsPtr) {
  Frame Old = std::move(T.Frames.back());
  T.Frames.pop_back();
  // Locals die with the frame (the semantics zeroes a thread's cells at
  // exit; frames do the same so oneref never counts dead slots).
  for (auto &[Var, A] : Old.Locals) {
    auto It = Objects.find(A);
    if (It != Objects.end()) {
      for (Addr C = It->first; C != It->first + It->second.Size; ++C) {
        if (Mem[C].IsPtr)
          emit(TraceEvent::Kind::PtrStore, T, C, 0);
        Mem[C] = Cell{};
        schedNote(SchedNote::ImplicitWrite, T, C);
      }
      It->second.Freed = true;
    }
  }
  if (T.Frames.empty()) {
    threadExit(T);
    return;
  }
  Frame &Caller = T.Frames.back();
  if (Old.DestVar) {
    Addr A = localAddr(T, Caller, Old.DestVar);
    storeCell(T, A, Value, IsPtr, nullptr);
  } else if (Old.DestLV) {
    Addr A = evalLValue(T, Caller, Old.DestLV);
    if (T.State == ThreadCtx::St::Failed)
      return;
    runChecks(T, Caller, Old.DestLV, A);
    storeCell(T, A, Value, IsPtr, Old.DestLV);
  }
}

unsigned Machine::allocateTid() {
  if (!FreeTids.empty()) {
    unsigned Tid = FreeTids.back();
    FreeTids.pop_back();
    return Tid;
  }
  if (NextTid >= 63)
    return 0;
  return NextTid++;
}

ThreadCtx &Machine::spawnThread(const FuncDecl *F, int64_t Arg, bool HasArg) {
  Threads.emplace_back();
  ThreadCtx &T = Threads.back();
  T.Tid = allocateTid();
  T.TraceTid = NextTraceTid++;
  ++Result.Stats.ThreadsSpawned;
  if (T.Tid == 0) {
    Violation V;
    V.K = Violation::Kind::RuntimeError;
    V.Detail = "thread limit (62 concurrent) exceeded";
    Result.Violations.push_back(V);
    emitConflict(Result.Violations.back(), &T);
    T.State = ThreadCtx::St::Failed;
    return T;
  }
  Frame NewFrame;
  NewFrame.F = F;
  NewFrame.Control.push_back(Task{Task::K::Stmt, F->Body, 0});
  T.Frames.push_back(std::move(NewFrame));
  if (HasArg && !F->Params.empty()) {
    Addr A = localAddr(T, T.Frames.back(), F->Params[0]);
    setCellRaw(T, A, Arg, F->Params[0]->DeclType->isPointer());
  }
  return T;
}

void Machine::threadExit(ThreadCtx &T) {
  // "When a thread ends, the bits recording its accesses are cleared."
  // The clears are invisible in the trace but decide verdicts ("no race
  // if executions do not overlap"), so the schedule hears about every
  // one: the explorer must treat an exit as conflicting with the cells
  // the thread touched, or it would prune the overlapping/
  // non-overlapping distinction away.
  uint64_t Bit = uint64_t(1) << T.Tid;
  for (Addr A : T.AccessLog) {
    if (A < Mem.size()) {
      Mem[A].Readers &= ~Bit;
      Mem[A].Writers &= ~Bit;
      schedNote(SchedNote::ImplicitWrite, T, A);
    }
  }
  T.AccessLog.clear();
  T.State = ThreadCtx::St::Done;
  emit(TraceEvent::Kind::ThreadExit, T, 0);
  FreeTids.push_back(T.Tid);
}

void Machine::wakeLockWaiters(Addr Lock) {
  for (ThreadCtx &T : Threads)
    if (T.State == ThreadCtx::St::BlockedLock && T.BlockLock == Lock) {
      T.State = ThreadCtx::St::Runnable;
      T.BlockLock = 0;
    }
}

//===----------------------------------------------------------------------===//
// Statement dispatch
//===----------------------------------------------------------------------===//

void Machine::dispatchStmt(ThreadCtx &T, Frame &F, const Stmt *S) {
  switch (S->Kind) {
  case StmtKind::Block:
    F.Control.push_back(Task{Task::K::Block, S, 0});
    return;
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    int64_t Cond = evalExpr(T, F, If->Cond);
    if (T.State == ThreadCtx::St::Failed)
      return;
    if (Cond != 0)
      F.Control.push_back(Task{Task::K::Stmt, If->Then, 0});
    else if (If->Else)
      F.Control.push_back(Task{Task::K::Stmt, If->Else, 0});
    return;
  }
  case StmtKind::While:
    F.Control.push_back(Task{Task::K::Loop, S, 0});
    return;
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    F.Control.push_back(Task{Task::K::ForCond, S, 0});
    if (For->Init)
      F.Control.push_back(Task{Task::K::Stmt, For->Init, 0});
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    int64_t Value = 0;
    bool IsPtr = false;
    if (Ret->Value) {
      Value = evalExpr(T, F, Ret->Value);
      IsPtr = exprIsPointer(Ret->Value);
      if (T.State == ThreadCtx::St::Failed)
        return;
    }
    returnFromFrame(T, Value, IsPtr);
    return;
  }
  case StmtKind::Break: {
    while (!F.Control.empty()) {
      Task Top = F.Control.back();
      F.Control.pop_back();
      if (isLoopMarker(Top.Kind))
        return;
    }
    return;
  }
  case StmtKind::Continue: {
    // Unwind to the loop marker but keep it: a while re-tests its
    // condition; a for runs its step first.
    while (!F.Control.empty() && !isLoopMarker(F.Control.back().Kind))
      F.Control.pop_back();
    return;
  }
  case StmtKind::ExprStmt: {
    const Expr *E = cast<ExprStmt>(S)->E;
    if (auto *Call = dyn_cast<CallExpr>(E)) {
      if (!execCall(T, F, Call, nullptr, nullptr))
        F.Control.push_back(Task{Task::K::Stmt, S, 0}); // blocked: retry
      return;
    }
    if (auto *Assign = dyn_cast<AssignExpr>(E)) {
      if (auto *Call = dyn_cast<CallExpr>(Assign->Rhs)) {
        if (!execCall(T, F, Call, Assign->Lhs, nullptr))
          F.Control.push_back(Task{Task::K::Stmt, S, 0});
        return;
      }
    }
    evalExpr(T, F, E);
    return;
  }
  case StmtKind::DeclStmt: {
    auto *Decl = cast<DeclStmt>(S);
    Addr A = localAddr(T, F, Decl->Var);
    if (!Decl->Init) {
      setCellRaw(T, A, 0, Decl->Var->DeclType->isPointer());
      return;
    }
    if (auto *Call = dyn_cast<CallExpr>(Decl->Init)) {
      if (!execCall(T, F, Call, nullptr, Decl->Var))
        F.Control.push_back(Task{Task::K::Stmt, S, 0});
      return;
    }
    int64_t V = evalExpr(T, F, Decl->Init);
    if (T.State == ThreadCtx::St::Failed)
      return;
    storeCell(T, A, V, Decl->Var->DeclType->isPointer(), nullptr);
    return;
  }
  case StmtKind::Spawn: {
    auto *Spawn = cast<SpawnStmt>(S);
    int64_t Arg = 0;
    bool HasArg = false;
    if (Spawn->Arg) {
      Arg = evalExpr(T, F, Spawn->Arg);
      HasArg = true;
      if (T.State == ThreadCtx::St::Failed)
        return;
    }
    if (Spawn->Callee) {
      // Model the spawn happens-before edge as a release of a fresh
      // token by the parent that the child acquires before its first
      // event (the detectors already understand lock edges).
      uint64_t Token = TraceTokenBase + ++NextSpawnToken;
      emit(TraceEvent::Kind::SpawnEdge, T, Token);
      ThreadCtx &Child = spawnThread(Spawn->Callee, Arg, HasArg);
      emit(TraceEvent::Kind::ThreadStart, Child, Token);
    }
    return;
  }
  case StmtKind::Free: {
    auto *Free = cast<FreeStmt>(S);
    int64_t P = evalExpr(T, F, Free->Ptr);
    if (T.State == ThreadCtx::St::Failed)
      return;
    freeObject(T, static_cast<Addr>(P), Free->Ptr);
    return;
  }
  }
}

void Machine::dispatchTask(ThreadCtx &T, Frame &F, Task Tk) {
  switch (Tk.Kind) {
  case Task::K::Stmt:
    dispatchStmt(T, F, Tk.S);
    return;
  case Task::K::Block: {
    auto *Block = cast<BlockStmt>(Tk.S);
    if (Tk.Index < Block->Body.size()) {
      F.Control.push_back(Task{Task::K::Block, Tk.S, Tk.Index + 1});
      F.Control.push_back(Task{Task::K::Stmt, Block->Body[Tk.Index], 0});
    }
    return;
  }
  case Task::K::Loop: {
    auto *While = cast<WhileStmt>(Tk.S);
    int64_t Cond = evalExpr(T, F, While->Cond);
    if (T.State == ThreadCtx::St::Failed)
      return;
    if (Cond != 0) {
      F.Control.push_back(Task{Task::K::Loop, Tk.S, 0});
      F.Control.push_back(Task{Task::K::Stmt, While->Body, 0});
    }
    return;
  }
  case Task::K::ForCond: {
    auto *For = cast<ForStmt>(Tk.S);
    int64_t Cond = 1;
    if (For->Cond) {
      Cond = evalExpr(T, F, For->Cond);
      if (T.State == ThreadCtx::St::Failed)
        return;
    }
    if (Cond != 0) {
      F.Control.push_back(Task{Task::K::ForStep, Tk.S, 0});
      F.Control.push_back(Task{Task::K::Stmt, For->Body, 0});
    }
    return;
  }
  case Task::K::ForStep: {
    auto *For = cast<ForStmt>(Tk.S);
    if (For->Step) {
      evalExpr(T, F, For->Step);
      if (T.State == ThreadCtx::St::Failed)
        return;
    }
    F.Control.push_back(Task{Task::K::ForCond, Tk.S, 0});
    return;
  }
  }
}

void Machine::step(ThreadCtx &T) {
  if (T.ReacquireLock != 0) {
    unsigned &Owner = LockOwner[T.ReacquireLock];
    if (Owner != 0 && Owner != T.Tid) {
      T.State = ThreadCtx::St::BlockedLock;
      T.BlockLock = T.ReacquireLock;
      schedNote(SchedNote::BlockedLock, T, T.ReacquireLock);
      profLockBlocked(T, T.ReacquireLock, T.ReacquireLine);
      return;
    }
    Owner = T.Tid;
    T.HeldLocks.push_back(T.ReacquireLock);
    emit(TraceEvent::Kind::LockAcquire, T, T.ReacquireLock);
    profLockAcquired(T, T.ReacquireLock, T.ReacquireLine);
    T.ReacquireLock = 0;
    T.ReacquireLine = 0;
    return;
  }
  if (T.Frames.empty()) {
    threadExit(T);
    return;
  }
  Frame &F = T.Frames.back();
  if (F.Control.empty()) {
    returnFromFrame(T, 0, false);
    return;
  }
  Task Tk = F.Control.back();
  F.Control.pop_back();
  dispatchTask(T, F, Tk);
}

//===----------------------------------------------------------------------===//
// Run loop
//===----------------------------------------------------------------------===//

InterpResult Machine::run() {
  InterpResult R = runImpl();
  // Profile records publish after every event of the run, mirroring the
  // compiled runtime where threads drain their tables at retirement.
  publishProfile();
  return R;
}

void Machine::publishProfile() {
  if (!Profiling)
    return;
  // Merge the AST-pointer-keyed aggregates under (tid, kind, line,
  // lvalue) so distinct nodes on one line coalesce and the record
  // stream is deterministic regardless of AST pointer values.
  std::map<std::tuple<unsigned, uint8_t, uint32_t, std::string>, SiteAgg>
      Merged;
  for (const auto &[Key, Agg] : ProfSites) {
    const Expr *Node = std::get<2>(Key);
    SiteAgg &M = Merged[std::make_tuple(
        std::get<0>(Key), std::get<1>(Key), Node ? Node->Loc.Line : 0,
        Node ? Node->spelling() : std::string())];
    M.Count += Agg.Count;
    M.Bytes += Agg.Bytes;
  }
  for (const auto &[Key, Agg] : Merged) {
    obs::SiteProfileRecord R;
    R.Tid = std::get<0>(Key);
    R.Kind = static_cast<obs::CheckKind>(std::get<1>(Key));
    R.Line = std::get<2>(Key);
    R.LValue = std::get<3>(Key);
    if (R.Line != 0 || !R.LValue.empty())
      R.File = Options.SourceName;
    R.Count = Agg.Count;
    R.Bytes = Agg.Bytes;
    Options.Sink->siteProfile(R);
  }
  for (const auto &[Key, Agg] : ProfLocks) {
    obs::LockProfileRecord R;
    R.Tid = std::get<0>(Key);
    R.Lock = std::get<1>(Key);
    R.Line = std::get<2>(Key);
    if (R.Line != 0)
      R.File = Options.SourceName;
    R.Acquires = Agg.Acquires;
    R.Contended = Agg.Contended;
    R.WaitCycles = Agg.WaitSteps;
    R.HoldCycles = Agg.HoldSteps;
    std::memcpy(R.WaitHist, Agg.WaitHist, sizeof(R.WaitHist));
    std::memcpy(R.HoldHist, Agg.HoldHist, sizeof(R.HoldHist));
    Options.Sink->lockProfile(R);
  }
  // One machine-wide overhead record: the interpreter does not sample
  // cycles (its clock is the scheduler step), so only the bookkeeping
  // volume is reported.
  obs::SelfOverheadRecord O;
  O.Tid = 0;
  O.Ops = ProfOps;
  O.TableBytes =
      ProfSites.size() * (sizeof(SiteAgg) + 48) + ProfLocks.size() * sizeof(LockAgg);
  Options.Sink->selfOverhead(O);
}

void Machine::publishLive() {
  live::LiveSnapshot S;
  // The same mapping the driver uses for the trace's final stats sample
  // (toStatsSnapshot), applied to the in-flight Result — so counters a
  // scraper watches converge on exactly the trace's final values.
  S.Stats = toStatsSnapshot(Result);
  S.TotalViolations = Result.TotalViolations;
  S.Policy = Options.Guard.OnViolation;
  S.WatchdogMillis = Options.Guard.WatchdogMillis;
  if (Profiling) {
    // Wait/hold units are scheduler steps, the interpreter's only clock.
    for (const auto &Entry : ProfLocks) {
      const LockAgg &Agg = Entry.second;
      S.LockAcquires += Agg.Acquires;
      S.LockContended += Agg.Contended;
      S.LockWaitUnits += Agg.WaitSteps;
      S.LockHoldUnits += Agg.HoldSteps;
    }
  }
  for (const ThreadCtx &T : Threads)
    if (T.State != ThreadCtx::St::Done && T.State != ThreadCtx::St::Failed)
      ++S.ThreadsLive;
  S.ThreadsSpawned = Result.Stats.ThreadsSpawned;
  S.Steps = Result.Stats.Steps;
  S.Running = true;
  Options.Live->update(S);
}

InterpResult Machine::runImpl() {
  if (Options.Trace)
    Options.Trace->clear();
  Mem.resize(1); // address 0 is the null cell, never used.

  for (VarDecl *G : Prog.Globals)
    Globals[G] = alloc(sizeInCells(G->DeclType));

  const FuncDecl *Entry = Prog.findFunc(Options.EntryPoint);
  if (!Entry)
    Entry = Prog.findFunc("main");
  if (!Entry)
    Entry = Prog.findFunc("main_fn");
  if (!Entry || !Entry->Body) {
    Violation V;
    V.K = Violation::Kind::RuntimeError;
    V.Detail = "no entry point '" + Options.EntryPoint + "'";
    ++Result.TotalViolations;
    Result.Violations.push_back(V);
    emitConflict(Result.Violations.back(), nullptr);
    return std::move(Result);
  }
  ThreadCtx &Main = spawnThread(Entry, 0, false);
  emit(TraceEvent::Kind::ThreadStart, Main, 0);

  std::vector<size_t> Runnable;
  std::vector<unsigned> RunnableTids;
  while (Result.Stats.Steps < Options.MaxSteps) {
    Runnable.clear();
    RunnableTids.clear();
    bool AnyLive = false;
    for (size_t I = 0; I != Threads.size(); ++I) {
      ThreadCtx &T = Threads[I];
      switch (T.State) {
      case ThreadCtx::St::Runnable:
        Runnable.push_back(I);
        RunnableTids.push_back(T.TraceTid);
        AnyLive = true;
        break;
      case ThreadCtx::St::BlockedLock:
      case ThreadCtx::St::WaitingCond:
        AnyLive = true;
        break;
      case ThreadCtx::St::Done:
      case ThreadCtx::St::Failed:
        break;
      }
    }
    if (Runnable.empty()) {
      if (!AnyLive) {
        bool AnyFailed = false;
        for (const ThreadCtx &T : Threads)
          if (T.State == ThreadCtx::St::Failed)
            AnyFailed = true;
        Result.Completed = !AnyFailed;
      } else {
        Result.Deadlocked = true;
        Violation V;
        V.K = Violation::Kind::RuntimeError;
        // Structured stall report: name every blocked thread, what it
        // waits on, and (for locks) which thread holds it.
        std::string D = "deadlock: all live threads are blocked";
        for (const ThreadCtx &T : Threads) {
          if (T.State == ThreadCtx::St::BlockedLock) {
            D += "; tid " + std::to_string(T.Tid) + " waits on lock " +
                 std::to_string(T.BlockLock);
            auto Holder = LockOwner.find(T.BlockLock);
            if (Holder != LockOwner.end())
              D += " held by tid " + std::to_string(Holder->second);
          } else if (T.State == ThreadCtx::St::WaitingCond) {
            D += "; tid " + std::to_string(T.Tid) + " waits on cond " +
                 std::to_string(T.WaitCond);
          }
        }
        V.Detail = std::move(D);
        ++Result.TotalViolations;
        Result.Violations.push_back(V);
        emitConflict(Result.Violations.back(), nullptr);
      }
      return std::move(Result);
    }
    ChoicePoint CP{ChoiceKind::ThreadPick, RunnableTids.data(),
                   RunnableTids.size()};
    size_t Idx = Sched->choose(CP);
    if (Idx >= Runnable.size()) {
      // Schedule::Abort (or an out-of-range answer, treated the same):
      // the run stops here and proves nothing about the program.
      Result.ScheduleAborted = true;
      return std::move(Result);
    }
    size_t Pick = Runnable[Idx];
    ++Result.Stats.Steps;
    if (Options.Live) [[unlikely]] {
      if (Options.LivePollSteps == 0 ||
          Result.Stats.Steps % Options.LivePollSteps == 0)
        publishLive();
    }
    if (Options.CrashAtStep != 0 &&
        Result.Stats.Steps >= Options.CrashAtStep) {
      // Fault injection (SHARC_FAULT=crash:N): die by SIGSEGV mid-run so
      // tests can pin that the crash hooks leave a readable trace.
      std::raise(SIGSEGV);
    }
    step(Threads[Pick]);
    if (PolicyHalt) {
      Result.PolicyHalted = true;
      return std::move(Result);
    }
    if (SchedAbort) {
      Result.ScheduleAborted = true;
      return std::move(Result);
    }
  }
  Result.OutOfSteps = true;
  Violation V;
  V.K = Violation::Kind::RuntimeError;
  V.Detail = "step budget exhausted (possible livelock)";
  ++Result.TotalViolations;
  Result.Violations.push_back(V);
  emitConflict(Result.Violations.back(), nullptr);
  return std::move(Result);
}

} // namespace

rt::StatsSnapshot interp::toStatsSnapshot(const InterpResult &R) {
  constexpr uint64_t CellBytes = 8;
  rt::StatsSnapshot S;
  S.DynamicReads = R.Stats.Reads;
  S.DynamicWrites = R.Stats.Writes;
  S.DynamicReadBytes = R.Stats.Reads * CellBytes;
  S.DynamicWriteBytes = R.Stats.Writes * CellBytes;
  S.LockChecks = R.Stats.LockChecks;
  S.SharingCasts = R.Stats.SharingCasts;
  S.ReadConflicts = R.count(Violation::Kind::ReadConflict);
  S.WriteConflicts = R.count(Violation::Kind::WriteConflict);
  S.LockViolations = R.count(Violation::Kind::LockViolation);
  S.CastErrors = R.count(Violation::Kind::CastError);
  return S;
}

InterpResult Interp::run(const InterpOptions &Options) {
  Machine M(Prog, Instr, Options);
  return M.run();
}
