//===-- interp/Interp.h - Operational semantics interpreter -----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes instrumented MiniC programs under the paper's operational
/// semantics (Figures 5 and 6):
///
///   - memory is a map from cell addresses to values with per-cell reader
///     and writer sets (thread-id bitmasks) and last-access provenance;
///   - chkread/chkwrite enforce the n-readers-or-1-writer discipline on
///     dynamic cells; lock-held checks guard locked cells;
///   - sharing casts perform the oneref check by heap inspection, exactly
///     as in Figure 6 (|{b : M(b).value = a}| = 1, over pointer-holding
///     cells), then null the source and clear the object's access sets;
///   - threads are interleaved by a seeded scheduler, one statement-level
///     step at a time; runs are deterministic per seed and replayable, so
///     property tests can sweep schedules;
///   - a thread that fails a check in FailStop mode transitions to the
///     semantics' `fail` state and blocks; in Report mode the violation is
///     recorded and execution continues (the production tool's behaviour);
///   - thread exit clears the thread's bits from every cell it touched
///     ("no race if executions do not overlap").
///
/// Restrictions (documented in DESIGN.md): calls to user-defined functions
/// must appear as a whole statement, `x = f(...)`, or a declaration
/// initializer (A-normal style), because expression evaluation is atomic
/// within one scheduler step.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_INTERP_INTERP_H
#define SHARC_INTERP_INTERP_H

#include "checker/Instrumentation.h"
#include "minic/AST.h"
#include "rt/Guard.h"
#include "rt/LiveStats.h"
#include "rt/Stats.h"

#include <cstdint>
#include <deque>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace sharc {
namespace obs {
class Sink;
} // namespace obs

namespace interp {

class Schedule;

/// A detected sharing-strategy violation, rendered in the paper's report
/// format.
struct Violation {
  enum class Kind : uint8_t {
    ReadConflict,
    WriteConflict,
    LockViolation,
    CastError,
    RuntimeError, ///< Null deref, use-after-free, deadlock, ...
  };
  Kind K = Kind::ReadConflict;
  uint64_t Address = 0;
  unsigned WhoTid = 0;
  std::string WhoLValue;
  uint32_t WhoLine = 0;
  unsigned LastTid = 0;
  std::string LastLValue;
  uint32_t LastLine = 0;
  std::string Detail;

  std::string format(const std::string &FileName) const;
};

/// One entry of the schedule/memory trace a run can record (see
/// InterpOptions::Trace). The trace is a total order of the events that
/// matter to external analyses: every cell access, every lock transition,
/// the spawn happens-before edges, and every pointer-slot mutation
/// (including the implicit ones: parameter copies, frame death, free).
/// Replaying it drives the race detectors and reference-counting engines
/// through exactly the interleaving the scheduler chose, which is what
/// the differential fuzzing oracles in src/fuzz/ compare against.
struct TraceEvent {
  enum class Kind : uint8_t {
    Read,        ///< Cell read; Addr is the cell address.
    Write,       ///< Cell write; Addr is the cell address.
    LockAcquire, ///< Mutex/rwlock acquired (shared or exclusive).
    LockRelease, ///< Mutex/rwlock released.
    SpawnEdge,   ///< Parent half of a spawn edge; Addr is a fresh token.
    ThreadStart, ///< First event of a thread; Addr is the spawn token
                 ///< (0 for the entry thread).
    ThreadExit,  ///< Thread reached done (or failed).
    PtrStore,    ///< A pointer-holding slot changed: Addr = slot,
                 ///< Value = new pointer value (0 when cleared).
    CastQuery,   ///< Sharing cast oneref query: Addr = object address,
                 ///< Value = the interpreter's reference count.
  };
  Kind K = Kind::Read;
  unsigned Tid = 0; ///< Trace tid: unique per thread, never reused.
  uint64_t Addr = 0;
  int64_t Value = 0;

  bool operator==(const TraceEvent &O) const {
    return K == O.K && Tid == O.Tid && Addr == O.Addr && Value == O.Value;
  }
};

/// Spawn tokens live far above any real cell address.
constexpr uint64_t TraceTokenBase = uint64_t(1) << 40;

/// Interpreter options.
struct InterpOptions {
  uint64_t Seed = 1;          ///< Scheduler seed; same seed, same run.
  /// When non-null, every nondeterministic decision (thread pick per
  /// step, cond_signal wake-up order) is delegated here instead of the
  /// built-in seeded scheduler (see Schedule.h). Null — the default —
  /// uses an internal RandomSchedule(Seed), which reproduces the
  /// historical behaviour bit for bit.
  Schedule *Sched = nullptr;
  uint64_t MaxSteps = 1u << 22; ///< Step budget before reporting livelock.
  bool FailStop = false;      ///< Figure 5 `fail` semantics.
  std::string EntryPoint = "main";
  /// When non-null, the run appends its schedule/memory trace here.
  /// The vector is cleared first. Null (the default) records nothing
  /// and costs nothing.
  std::vector<TraceEvent> *Trace = nullptr;
  /// When non-null, every trace event is also published here as an
  /// obs::Event (plus obs-only kinds: Conflict records for each
  /// violation). The sink sees the same total order the Trace vector
  /// records. Null (the default) publishes nothing and costs nothing.
  obs::Sink *Sink = nullptr;
  /// Per-site cost profiling (sharc-prof): aggregate every dynamic,
  /// lock, and cast check per file:line site during the run and publish
  /// SiteProfile / LockProfile / SelfOverhead records to Sink when it
  /// ends, so interpreter runs profile identically to compiled ones.
  /// Requires Sink. Lock wait and hold durations are measured in
  /// scheduler steps (the interpreter's only clock); LockWait events
  /// mark blocking acquisitions.
  bool Profile = false;
  /// Source file name stamped into profile records (interpreter sites
  /// are file:line positions in the MiniC source).
  std::string SourceName;
  /// Failure semantics (sharc-guard), mirroring the native runtime's
  /// GuardConfig. The default — Policy::Continue, no per-kind cap —
  /// reproduces the interpreter's historical behaviour exactly (fuzz
  /// determinism digests depend on it). Policy::Abort halts the run at
  /// the first violation (Completed stays false); Policy::Quarantine
  /// demotes offending cells so they stop re-firing. Uses only the
  /// header-only part of rt/Guard.h; no sharc_rt link is required.
  guard::GuardConfig Guard;
  /// Fault injection: raise SIGSEGV when the scheduler reaches this step
  /// (1-based; 0 = off). Wired from SHARC_FAULT=crash:N by the driver to
  /// test crash-safe trace flushing.
  uint64_t CrashAtStep = 0;
  /// sharc-live (DESIGN.md §13): when non-null the scheduler publishes a
  /// LiveSnapshot here every LivePollSteps steps so the driver's stats
  /// endpoint can serve a mid-run view. Uses only the header-only
  /// rt/LiveStats.h layer; no sharc_rt link is required. Null (the
  /// default) costs one predictable branch per scheduler step.
  live::StatsHub *Live = nullptr;
  uint64_t LivePollSteps = 1024;
};

/// Execution statistics, used by tests and the driver's summary.
struct InterpStats {
  uint64_t Steps = 0;
  uint64_t TotalAccesses = 0;
  uint64_t Reads = 0;  ///< Cell reads (Reads + Writes == TotalAccesses).
  uint64_t Writes = 0; ///< Cell writes.
  uint64_t DynamicChecks = 0;
  uint64_t LockChecks = 0;
  uint64_t SharingCasts = 0;
  uint64_t ThreadsSpawned = 0;
};

/// Result of one run.
struct InterpResult {
  bool Completed = false;   ///< All threads reached done.
  bool Deadlocked = false;  ///< No runnable thread remained.
  bool OutOfSteps = false;  ///< MaxSteps exhausted.
  bool PolicyHalted = false; ///< Policy::Abort stopped the run.
  /// The Schedule returned Abort (witness divergence, exploration
  /// pruning); the run stopped early and proves nothing.
  bool ScheduleAborted = false;
  std::vector<Violation> Violations;
  /// Every violation detected, including ones dropped from Violations by
  /// dedup/per-kind capping (equal to Violations.size() when
  /// GuardConfig::MaxReportsPerKind is 0).
  uint64_t TotalViolations = 0;
  std::string Output; ///< print_int / print_str output.
  InterpStats Stats;

  bool hasConflicts() const {
    for (const Violation &V : Violations)
      if (V.K != Violation::Kind::RuntimeError)
        return true;
    return false;
  }
  unsigned count(Violation::Kind K) const {
    unsigned N = 0;
    for (const Violation &V : Violations)
      if (V.K == K)
        ++N;
    return N;
  }
};

/// The interpreter. Construct once per program; run() may be called
/// repeatedly with different options (state is reset each run).
class Interp {
public:
  Interp(minic::Program &Prog, const checker::Instrumentation &Instr)
      : Prog(Prog), Instr(Instr) {}

  InterpResult run(const InterpOptions &Options = InterpOptions());

private:
  minic::Program &Prog;
  const checker::Instrumentation &Instr;
};

/// Projects an interpreter result onto the runtime's counter schema so
/// one metrics pipeline (obs::statsToJson, trace stats samples) serves
/// both execution engines. Mapping notes: the interpreter checks every
/// cell access, so Reads/Writes land in DynamicReads/DynamicWrites
/// (byte counts use the 8-byte cell size); RuntimeError violations have
/// no snapshot counter and are excluded from the conflict fields.
rt::StatsSnapshot toStatsSnapshot(const InterpResult &R);

} // namespace interp
} // namespace sharc

#endif // SHARC_INTERP_INTERP_H
