//===-- interp/Explore.h - Systematic schedule exploration ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-explore (DESIGN.md §14): stateless depth-first enumeration of
/// the interpreter's schedules via deterministic re-execution, with
///
///   - dynamic partial-order reduction (persistent/backtrack sets keyed
///     on conflicting granule accesses, lock operations and condition
///     operations),
///   - sleep sets (redundant branches inherited from fully explored
///     siblings are cut before they execute a single step), and
///   - an optional preemption bound for graceful degradation on larger
///     programs (CHESS-style; exceeding it flags the exploration as
///     bounded, never silently).
///
/// Runs are classified into verdict equivalence classes (which
/// violation kinds fired, deadlock, step exhaustion); the first run of
/// each violating class is captured as a replayable Witness. Budgets
/// (runs and total steps) make the search safe on programs whose
/// schedule space does not converge — exhaustion is reported loudly in
/// the stats and by the driver's distinct exit code.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_INTERP_EXPLORE_H
#define SHARC_INTERP_EXPLORE_H

#include "interp/Interp.h"
#include "interp/Schedule.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sharc {
namespace interp {

struct ExploreOptions {
  /// Maximum preemptions per schedule; ~0u explores unbounded.
  unsigned PreemptionBound = ~0u;
  /// Schedule budget: executions (complete + pruned) before giving up.
  uint64_t MaxRuns = 1u << 16;
  /// Step budget per schedule (mirrors InterpOptions::MaxSteps).
  uint64_t MaxStepsPerRun = 1u << 16;
  /// Total step budget across the whole exploration.
  uint64_t MaxTotalSteps = uint64_t(1) << 24;
  /// Dynamic partial-order reduction: only branch where conflicting
  /// steps justify it. Off = full enumeration of every enabled pick at
  /// every state (the litmus tests pin its exact counts).
  bool UseDpor = true;
  /// Sleep sets (only meaningful with UseDpor).
  bool UseSleepSets = true;
  std::string EntryPoint = "main";
};

/// Counters for src/obs consumption (schedules explored / pruned);
/// mirrored into obs::ExploreCounters by the driver.
struct ExploreStats {
  uint64_t Runs = 0;           ///< Complete schedules executed.
  uint64_t SleepBlocked = 0;   ///< Executions cut by sleep sets.
  uint64_t BoundedRuns = 0;    ///< Executions cut by the preemption bound.
  uint64_t BranchesPruned = 0; ///< Enabled picks DPOR never had to take.
  uint64_t PreemptPruned = 0;  ///< Picks dropped by the preemption bound.
  uint64_t StepsTotal = 0;     ///< Interpreter steps across all runs.
  uint64_t MaxDepth = 0;       ///< Longest schedule, in choice points.
  bool BoundHit = false;        ///< The preemption bound cut something:
                                ///< the exploration is incomplete.
  bool BudgetExhausted = false; ///< MaxRuns/MaxTotalSteps ran out, or a
                                ///< schedule was truncated by
                                ///< MaxStepsPerRun (its subtree is
                                ///< unexplored).
  bool InternalError = false;   ///< A replayed prefix diverged — a
                                ///< determinism bug; results untrusted.
};

/// One verdict equivalence class: what a schedule observed, ignoring
/// how it interleaved to get there.
struct ExploreVerdict {
  uint32_t KindsMask = 0; ///< Bit per Violation::Kind seen.
  bool Deadlocked = false;
  bool OutOfSteps = false;
  bool Completed = false;

  bool clean() const { return KindsMask == 0 && !Deadlocked && !OutOfSteps; }
  bool violating() const { return KindsMask != 0; }
  bool operator<(const ExploreVerdict &O) const {
    if (KindsMask != O.KindsMask)
      return KindsMask < O.KindsMask;
    if (Deadlocked != O.Deadlocked)
      return Deadlocked < O.Deadlocked;
    if (OutOfSteps != O.OutOfSteps)
      return OutOfSteps < O.OutOfSteps;
    return Completed < O.Completed;
  }
  bool operator==(const ExploreVerdict &O) const {
    return KindsMask == O.KindsMask && Deadlocked == O.Deadlocked &&
           OutOfSteps == O.OutOfSteps && Completed == O.Completed;
  }
  std::string describe() const;
};

/// Projects one interpreter run onto its verdict class. Shared with the
/// fuzzer's 8th oracle so random runs and explored runs classify
/// identically.
ExploreVerdict classifyResult(const InterpResult &R);

struct ExploreResult {
  /// Every verdict class observed, sorted and unique.
  std::vector<ExploreVerdict> Verdicts;
  /// First witness per violating verdict class, in discovery order.
  std::vector<std::pair<ExploreVerdict, Witness>> Witnesses;
  /// Full result of the first violating run (for reports); meaningful
  /// only when anyViolation().
  InterpResult FirstViolation;
  /// Stats of the first complete run (oracle gating).
  InterpStats FirstRunStats;
  ExploreStats Stats;

  bool anyViolation() const { return !Witnesses.empty(); }
  /// True when every inequivalent schedule was enumerated: no budget
  /// exhaustion, no preemption-bound cut, no internal error.
  bool complete() const {
    return !Stats.BudgetExhausted && !Stats.BoundHit &&
           !Stats.InternalError;
  }
  bool verdictSeen(const ExploreVerdict &V) const {
    for (const ExploreVerdict &E : Verdicts)
      if (E == V)
        return true;
    return false;
  }
};

/// Enumerates schedules of \p Prog. The program must already be
/// checked/instrumented (same contract as Interp).
ExploreResult explore(minic::Program &Prog,
                      const checker::Instrumentation &Instr,
                      const ExploreOptions &Opts = ExploreOptions());

} // namespace interp
} // namespace sharc

#endif // SHARC_INTERP_EXPLORE_H
