//===-- rt/AccessSite.h - Static access-site descriptors --------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An AccessSite describes one instrumented read or write in the program
/// text: the l-value spelling and its source position. Instrumented code
/// passes a pointer to a static AccessSite on every check so that conflict
/// reports can render the paper's "who(2) S->sdata @ file.c:15" lines
/// without any per-access allocation.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_ACCESSSITE_H
#define SHARC_RT_ACCESSSITE_H

namespace sharc {
namespace rt {

/// A static descriptor of one instrumented access in the source program.
/// Instances are expected to have static storage duration; the runtime
/// stores raw pointers to them in shadow diagnostics cells.
struct AccessSite {
  const char *LValue = "?"; ///< Spelling of the accessed l-value.
  const char *File = "?";   ///< Source file name.
  int Line = 0;             ///< 1-based source line.
};

/// Convenience macro creating a function-local static AccessSite for the
/// current source position.
#define SHARC_SITE(LVALUE)                                                     \
  ([]() -> const ::sharc::rt::AccessSite * {                                   \
    static const ::sharc::rt::AccessSite Site{LVALUE, __FILE__, __LINE__};     \
    return &Site;                                                              \
  }())

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_ACCESSSITE_H
