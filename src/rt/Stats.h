//===-- rt/Stats.h - Runtime statistics -------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Counters the runtime maintains for the evaluation harness: how many
/// accesses hit the dynamic checker, how much metadata memory (shadow
/// pages, count table, logs) is live, and how many conflicts were found.
/// The paper's Table 1 columns "Pagefaults" and "% dynamic Accesses" are
/// derived from these.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_STATS_H
#define SHARC_RT_STATS_H

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace sharc {
namespace rt {

/// A plain snapshot of RuntimeStats, safe to copy and compare.
struct StatsSnapshot {
  uint64_t DynamicReads = 0;
  uint64_t DynamicWrites = 0;
  uint64_t DynamicReadBytes = 0;
  uint64_t DynamicWriteBytes = 0;
  uint64_t LockChecks = 0;
  uint64_t RcBarriers = 0;
  uint64_t Collections = 0;
  uint64_t SharingCasts = 0;
  uint64_t ReadConflicts = 0;
  uint64_t WriteConflicts = 0;
  uint64_t LockViolations = 0;
  uint64_t CastErrors = 0;
  uint64_t ShadowBytes = 0;
  uint64_t RcTableBytes = 0;
  uint64_t LogBytes = 0;
  uint64_t HeapPayloadBytes = 0;
  uint64_t PeakHeapPayloadBytes = 0;

  bool operator==(const StatsSnapshot &) const = default;

  /// Per-field saturating difference, for before/after annotation-tuning
  /// comparisons (`sharc-trace metrics --delta`). Saturation keeps a
  /// swapped argument order from producing absurd wrapped counters.
  StatsSnapshot operator-(const StatsSnapshot &O) const {
    auto Sub = [](uint64_t A, uint64_t B) { return A > B ? A - B : 0; };
    StatsSnapshot D;
    D.DynamicReads = Sub(DynamicReads, O.DynamicReads);
    D.DynamicWrites = Sub(DynamicWrites, O.DynamicWrites);
    D.DynamicReadBytes = Sub(DynamicReadBytes, O.DynamicReadBytes);
    D.DynamicWriteBytes = Sub(DynamicWriteBytes, O.DynamicWriteBytes);
    D.LockChecks = Sub(LockChecks, O.LockChecks);
    D.RcBarriers = Sub(RcBarriers, O.RcBarriers);
    D.Collections = Sub(Collections, O.Collections);
    D.SharingCasts = Sub(SharingCasts, O.SharingCasts);
    D.ReadConflicts = Sub(ReadConflicts, O.ReadConflicts);
    D.WriteConflicts = Sub(WriteConflicts, O.WriteConflicts);
    D.LockViolations = Sub(LockViolations, O.LockViolations);
    D.CastErrors = Sub(CastErrors, O.CastErrors);
    D.ShadowBytes = Sub(ShadowBytes, O.ShadowBytes);
    D.RcTableBytes = Sub(RcTableBytes, O.RcTableBytes);
    D.LogBytes = Sub(LogBytes, O.LogBytes);
    D.HeapPayloadBytes = Sub(HeapPayloadBytes, O.HeapPayloadBytes);
    D.PeakHeapPayloadBytes =
        Sub(PeakHeapPayloadBytes, O.PeakHeapPayloadBytes);
    return D;
  }

  uint64_t totalConflicts() const {
    return ReadConflicts + WriteConflicts + LockViolations + CastErrors;
  }
  uint64_t dynamicAccesses() const { return DynamicReads + DynamicWrites; }
  uint64_t dynamicAccessBytes() const {
    return DynamicReadBytes + DynamicWriteBytes;
  }
  uint64_t metadataBytes() const {
    return ShadowBytes + RcTableBytes + LogBytes;
  }
};

/// Atomic counters updated by the runtime. Hot-path counters are bumped
/// with relaxed ordering; exactness across simultaneous snapshots is not
/// required.
struct RuntimeStats {
  std::atomic<uint64_t> DynamicReads{0};
  std::atomic<uint64_t> DynamicWrites{0};
  std::atomic<uint64_t> DynamicReadBytes{0};
  std::atomic<uint64_t> DynamicWriteBytes{0};
  std::atomic<uint64_t> LockChecks{0};
  std::atomic<uint64_t> RcBarriers{0};
  std::atomic<uint64_t> Collections{0};
  std::atomic<uint64_t> SharingCasts{0};
  std::atomic<uint64_t> ReadConflicts{0};
  std::atomic<uint64_t> WriteConflicts{0};
  std::atomic<uint64_t> LockViolations{0};
  std::atomic<uint64_t> CastErrors{0};
  std::atomic<uint64_t> ShadowBytes{0};
  std::atomic<uint64_t> RcTableBytes{0};
  std::atomic<uint64_t> LogBytes{0};
  std::atomic<uint64_t> HeapPayloadBytes{0};
  std::atomic<uint64_t> PeakHeapPayloadBytes{0};

  StatsSnapshot snapshot() const {
    StatsSnapshot S;
    S.DynamicReads = DynamicReads.load(std::memory_order_relaxed);
    S.DynamicWrites = DynamicWrites.load(std::memory_order_relaxed);
    S.DynamicReadBytes = DynamicReadBytes.load(std::memory_order_relaxed);
    S.DynamicWriteBytes = DynamicWriteBytes.load(std::memory_order_relaxed);
    S.LockChecks = LockChecks.load(std::memory_order_relaxed);
    S.RcBarriers = RcBarriers.load(std::memory_order_relaxed);
    S.Collections = Collections.load(std::memory_order_relaxed);
    S.SharingCasts = SharingCasts.load(std::memory_order_relaxed);
    S.ReadConflicts = ReadConflicts.load(std::memory_order_relaxed);
    S.WriteConflicts = WriteConflicts.load(std::memory_order_relaxed);
    S.LockViolations = LockViolations.load(std::memory_order_relaxed);
    S.CastErrors = CastErrors.load(std::memory_order_relaxed);
    S.ShadowBytes = ShadowBytes.load(std::memory_order_relaxed);
    S.RcTableBytes = RcTableBytes.load(std::memory_order_relaxed);
    S.LogBytes = LogBytes.load(std::memory_order_relaxed);
    S.HeapPayloadBytes = HeapPayloadBytes.load(std::memory_order_relaxed);
    S.PeakHeapPayloadBytes =
        PeakHeapPayloadBytes.load(std::memory_order_relaxed);
    return S;
  }

  /// Tracks a high-water mark for payload bytes.
  void addHeapPayload(int64_t Delta) {
    uint64_t Now = HeapPayloadBytes.fetch_add(static_cast<uint64_t>(Delta),
                                              std::memory_order_relaxed) +
                   static_cast<uint64_t>(Delta);
    uint64_t Peak = PeakHeapPayloadBytes.load(std::memory_order_relaxed);
    while (Now > Peak && !PeakHeapPayloadBytes.compare_exchange_weak(
                             Peak, Now, std::memory_order_relaxed))
      ;
  }
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_STATS_H
