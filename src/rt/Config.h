//===-- rt/Config.h - Runtime configuration ---------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Configuration knobs for the SharC runtime. Defaults correspond to the
/// configuration evaluated in the paper: 16-byte granules with one shadow
/// byte each (supporting 8n-1 = 7 concurrent threads), diagnostics on, and
/// the adapted Levanoni-Petrank reference-counting algorithm.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_CONFIG_H
#define SHARC_RT_CONFIG_H

#include "rt/Guard.h"

#include <cstddef>
#include <cstdint>
#include <string>

namespace sharc {
namespace obs {
class Sink;
} // namespace obs

namespace rt {

/// Which reference-counting engine maintains sharing-cast counts.
enum class RcMode : uint8_t {
  /// No reference counting; scast count checks are skipped. Used as the
  /// "uninstrumented" end of ablation benchmarks.
  None,
  /// Atomically update the count table on every counted pointer write.
  /// This is the naive scheme the paper measures at "over 60%" overhead.
  Atomic,
  /// The paper's adaptation of Levanoni & Petrank's concurrent algorithm:
  /// per-thread unsynchronized logs with dirty bits, double-buffered by
  /// epoch, with the thread that needs a count acting as the collector.
  LevanoniPetrank,
};

/// Runtime configuration, fixed at Runtime::init() time.
struct RuntimeConfig {
  /// log2 of the granule size tracked by one shadow cell. The paper uses
  /// 16-byte granules (shift 4). bench_granularity sweeps this.
  unsigned GranuleShift = 4;

  /// Number of shadow bytes per granule. Supports 8*N-1 thread ids; the
  /// paper finds N=1 (7 threads) sufficient for its benchmarks.
  unsigned ShadowBytesPerGranule = 1;

  /// Record last-accessor provenance per granule so conflict reports can
  /// name the previous access ("last(1) lvalue @ file:line"). Costs one
  /// pointer-sized diag cell per granule; disable for overhead benches.
  bool DiagMode = true;

  /// Reference-counting engine.
  RcMode Rc = RcMode::LevanoniPetrank;

  /// Capacity (entries, power of two) of the open-addressing reference
  /// count table. Entries are never removed, mirroring the paper's
  /// tolerance of "bogus" non-pointer values flowing into counted slots.
  size_t RcTableCapacity = 1u << 20;

  /// Abort the process on the first conflict instead of recording it and
  /// continuing. Tests and benches keep this off. Kept for source
  /// compatibility: Runtime::init() folds it into Guard.OnViolation
  /// (AbortOnError == Guard.OnViolation = Policy::Abort).
  bool AbortOnError = false;

  /// Failure semantics: violation policy, per-kind report cap, and the
  /// stall watchdog (DESIGN.md §12). Runtime::init() additionally honors
  /// SHARC_POLICY from the environment, which overrides OnViolation.
  guard::GuardConfig Guard;

  /// Maximum number of distinct conflict reports retained (deduplicated by
  /// site and granule). Further conflicts only bump counters.
  size_t MaxReports = 256;

  /// Observability sink. When non-null the runtime publishes structured
  /// events (accesses, lock transitions, sharing casts, conflicts, stats
  /// samples) to it; the sink must be thread-safe (obs::Collector) and
  /// outlive the runtime. Null (the default) costs one predictable
  /// branch on the paths that would publish.
  obs::Sink *Obs = nullptr;

  /// Per-site cost profiling (sharc-prof, DESIGN.md §11). Requires Obs:
  /// each retiring thread drains its site table into SiteProfile /
  /// LockProfile / SelfOverhead records on the sink. Off (the default)
  /// costs one predictable branch on the check paths — the ci.sh
  /// overhead gate pins the disabled-path regression under 2%.
  bool Profile = false;

  /// log2 of the TSC sampling interval when profiling: one in
  /// 2^ProfileSampleShift profiled operations is timed. 0 times every
  /// operation (tests); the default keeps timing cost ~1/64 of ops.
  unsigned ProfileSampleShift = 6;

  /// sharc-live (DESIGN.md §13): "HOST:PORT" to serve the in-process
  /// stats endpoint on (port 0 = ephemeral); empty (the default) means
  /// no listener thread is ever started and the engines' publish paths
  /// see a null hub — zero cost, same discipline as Obs and Profile.
  /// Runtime::init() additionally honors SHARC_STATS_ADDR from the
  /// environment, which overrides this field.
  std::string StatsAddr;

  unsigned granuleSize() const { return 1u << GranuleShift; }
  unsigned maxThreads() const { return 8 * ShadowBytesPerGranule - 1; }
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_CONFIG_H
