//===-- rt/RefCount.cpp ---------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/RefCount.h"

using namespace sharc::rt;

RefCountEngine::RefCountEngine(const RuntimeConfig &Config,
                               RuntimeStats &Stats, ThreadRegistry &Registry)
    : Config(Config), Stats(Stats), Registry(Registry),
      Table(Config.RcTableCapacity) {}

void RefCountEngine::storePtr(uintptr_t *Slot, uintptr_t New,
                              ThreadState &TS) {
  switch (Config.Rc) {
  case RcMode::None:
    std::atomic_ref<uintptr_t>(*Slot).store(New, std::memory_order_release);
    return;
  case RcMode::Atomic: {
    Stats.RcBarriers.fetch_add(1, std::memory_order_relaxed);
    uintptr_t Old = std::atomic_ref<uintptr_t>(*Slot).exchange(
        New, std::memory_order_acq_rel);
    if (Old)
      Table.add(Old, -1);
    if (New)
      Table.add(New, +1);
    return;
  }
  case RcMode::LevanoniPetrank:
    Stats.RcBarriers.fetch_add(1, std::memory_order_relaxed);
    storeLevanoniPetrank(Slot, New, TS);
    return;
  }
}

void RefCountEngine::storeLevanoniPetrank(uintptr_t *Slot, uintptr_t New,
                                          ThreadState &TS) {
  // Announce that we are mid-barrier in epoch E, then re-check that the
  // epoch did not flip under us; the collector waits for all threads to
  // leave the old epoch before processing its logs.
  uint32_t E;
  while (true) {
    E = Epoch.load(std::memory_order_acquire);
    TS.InBarrier.store(E + 1, std::memory_order_seq_cst);
    if (Epoch.load(std::memory_order_seq_cst) == E)
      break;
    TS.InBarrier.store(0, std::memory_order_release);
  }

  uintptr_t Old =
      std::atomic_ref<uintptr_t>(*Slot).load(std::memory_order_acquire);
  // Log only the first update of a slot per epoch ("an entry is only added
  // the first time a reference is updated").
  if (!Dirty.testAndSet(reinterpret_cast<uintptr_t>(Slot), E & 1))
    TS.RcLogs[E & 1].push(reinterpret_cast<uintptr_t>(Slot), Old);
  std::atomic_ref<uintptr_t>(*Slot).store(New, std::memory_order_release);

  TS.InBarrier.store(0, std::memory_order_release);
}

void RefCountEngine::collect(ThreadState &TS) {
  (void)TS;
  if (Config.Rc != RcMode::LevanoniPetrank)
    return;
  std::lock_guard<std::mutex> Lock(CollectorMutex);
  collectLocked();
}

void RefCountEngine::collectLocked() {
  Stats.Collections.fetch_add(1, std::memory_order_relaxed);

  // Hold the registry's structural lock for the whole collection so the
  // set of thread states is stable across all passes. Threads trying to
  // register/exit block briefly; threads running barriers do not.
  auto StructureLock = Registry.lockStructure();

  // Flip the epoch: mutators start using the other set of logs and dirty
  // bits ("the collector thread arranges for each thread to use the other
  // set of logs ... and waits for any pending updates to complete").
  uint32_t OldEpoch = Epoch.load(std::memory_order_acquire);
  uint32_t OldIndex = OldEpoch & 1;
  uint32_t NewIndex = OldIndex ^ 1;
  Epoch.store(OldEpoch + 1, std::memory_order_seq_cst);

  // Handshake: wait for every thread that was mid-barrier in the old epoch.
  Registry.forEachStateUnlocked([&](ThreadState &S) {
    while (S.InBarrier.load(std::memory_order_acquire) == OldEpoch + 1)
      ;
  });

  // Pass 1: decrement the counts of all overwritten values.
  Registry.forEachStateUnlocked([&](ThreadState &S) {
    S.RcLogs[OldIndex].forEach([&](const RcLogEntry &Entry) {
      if (Entry.Old)
        Table.add(Entry.Old, -1);
    });
  });

  // Pass 2: increment the count of each logged slot's current value. If
  // the slot has been dirtied again in the live epoch, its current value is
  // unstable; instead increment the value recorded as overwritten in the
  // live logs (it will be decremented when those logs are processed).
  Registry.forEachStateUnlocked([&](ThreadState &S) {
    S.RcLogs[OldIndex].forEach([&](const RcLogEntry &Entry) {
      uintptr_t Current = 0;
      if (Dirty.isDirty(Entry.Slot, NewIndex)) {
        bool Found = false;
        Registry.forEachStateUnlocked([&](ThreadState &S2) {
          if (!Found)
            Found = S2.RcLogs[NewIndex].findOldFor(Entry.Slot, Current);
        });
        if (!Found)
          Current = loadPtr(reinterpret_cast<uintptr_t *>(Entry.Slot));
      } else {
        Current = loadPtr(reinterpret_cast<uintptr_t *>(Entry.Slot));
      }
      if (Current)
        Table.add(Current, +1);
    });
  });

  // Drain old logs and dirty bits.
  Registry.forEachStateUnlocked(
      [&](ThreadState &S) { S.RcLogs[OldIndex].clear(); });
  Dirty.clearEpoch(OldIndex);
  Registry.purgeRetiredUnlocked();

  if (PostCollectHook)
    PostCollectHook(PostCollectCtx);
}

int64_t RefCountEngine::getRefCount(uintptr_t Value, ThreadState &TS) {
  if (Value == 0)
    return 0;
  switch (Config.Rc) {
  case RcMode::None:
    return 0;
  case RcMode::Atomic:
    return Table.get(Value);
  case RcMode::LevanoniPetrank: {
    collect(TS);
    return Table.get(Value);
  }
  }
  return 0;
}
