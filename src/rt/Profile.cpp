//===-- rt/Profile.cpp ----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Profile.h"

#include "obs/Sink.h"

#include <cstring>

using namespace sharc::rt;

namespace {

size_t hashKey(const AccessSite *Site, uint8_t Kind) {
  // Fibonacci hash of the site pointer, with the kind folded in.
  uintptr_t P = reinterpret_cast<uintptr_t>(Site) >> 3;
  return (P * 0x9e3779b97f4a7c15ull) ^ (size_t(Kind) << 1);
}

} // namespace

ThreadProfile::Slot &ThreadProfile::findSlot(const AccessSite *Site,
                                             obs::CheckKind Kind) {
  if ((UsedSlots + 1) * 4 > Slots.size() * 3)
    grow();
  size_t Mask = Slots.size() - 1;
  size_t H = hashKey(Site, uint8_t(Kind)) & Mask;
  while (true) {
    Slot &S = Slots[H];
    if (!S.Used) {
      S.Used = true;
      S.Site = Site;
      S.Kind = uint8_t(Kind);
      ++UsedSlots;
      return S;
    }
    if (S.Site == Site && S.Kind == uint8_t(Kind))
      return S;
    H = (H + 1) & Mask;
  }
}

void ThreadProfile::grow() {
  std::vector<Slot> Old = std::move(Slots);
  Slots.assign(Old.size() * 2, Slot());
  UsedSlots = 0;
  size_t Mask = Slots.size() - 1;
  for (const Slot &S : Old) {
    if (!S.Used)
      continue;
    size_t H = hashKey(S.Site, S.Kind) & Mask;
    while (Slots[H].Used)
      H = (H + 1) & Mask;
    Slots[H] = S;
    ++UsedSlots;
  }
}

size_t ThreadProfile::findLock(const void *Lock, const AccessSite *Site) {
  for (size_t I = 0; I < LockStats.size(); ++I)
    if (LockStats[I].Lock == Lock && LockStats[I].Site == Site)
      return I;
  LockSlot L;
  L.Lock = Lock;
  L.Site = Site;
  LockStats.push_back(L);
  return LockStats.size() - 1;
}

void ThreadProfile::lockAcquired(const void *Lock, const AccessSite *Site,
                                 uint64_t WaitCycles, bool Contended) {
  size_t Idx = findLock(Lock, Site);
  LockSlot &L = LockStats[Idx];
  ++L.Acquires;
  if (Contended)
    ++L.Contended;
  L.WaitCycles += WaitCycles;
  ++L.WaitHist[obs::histBucket(WaitCycles)];
  Holds.push_back(Hold{Lock, readTsc(), Idx});
}

uint64_t ThreadProfile::lockReleased(const void *Lock) {
  // Innermost hold of this lock (locks do not recurse, but shared and
  // exclusive holds of distinct locks interleave freely).
  for (auto It = Holds.rbegin(); It != Holds.rend(); ++It) {
    if (It->Lock != Lock)
      continue;
    uint64_t HoldCycles = readTsc() - It->Start;
    LockSlot &L = LockStats[It->Idx];
    L.HoldCycles += HoldCycles;
    ++L.HoldHist[obs::histBucket(HoldCycles)];
    Holds.erase(std::next(It).base());
    return HoldCycles;
  }
  return 0;
}

void ThreadProfile::drainTo(obs::Sink &Sink, uint32_t Tid) {
  uint64_t DrainStart = readTsc();
  uint64_t TableBytes = tableBytes();

  for (const Slot &S : Slots) {
    if (!S.Used)
      continue;
    obs::SiteProfileRecord R;
    R.Tid = Tid;
    R.Kind = obs::CheckKind(S.Kind);
    if (S.Site) {
      R.Line = S.Site->Line > 0 ? uint32_t(S.Site->Line) : 0;
      if (S.Site->File && std::strcmp(S.Site->File, "?") != 0)
        R.File = S.Site->File;
      if (S.Site->LValue && std::strcmp(S.Site->LValue, "?") != 0)
        R.LValue = S.Site->LValue;
    }
    R.Count = S.Count;
    R.Bytes = S.Bytes;
    R.Cycles = S.Cycles;
    R.Samples = S.Samples;
    Sink.siteProfile(R);
  }
  Slots.assign(64, Slot());
  UsedSlots = 0;

  for (const LockSlot &L : LockStats) {
    obs::LockProfileRecord R;
    R.Tid = Tid;
    R.Lock = reinterpret_cast<uintptr_t>(L.Lock);
    if (L.Site) {
      R.Line = L.Site->Line > 0 ? uint32_t(L.Site->Line) : 0;
      if (L.Site->File && std::strcmp(L.Site->File, "?") != 0)
        R.File = L.Site->File;
    }
    R.Acquires = L.Acquires;
    R.Contended = L.Contended;
    R.WaitCycles = L.WaitCycles;
    R.HoldCycles = L.HoldCycles;
    std::memcpy(R.WaitHist, L.WaitHist, sizeof(R.WaitHist));
    std::memcpy(R.HoldHist, L.HoldHist, sizeof(R.HoldHist));
    Sink.lockProfile(R);
  }
  LockStats.clear();
  Holds.clear();

  obs::SelfOverheadRecord O;
  O.Tid = Tid;
  O.Ops = Ops;
  O.Cycles = SelfCycles;
  O.Samples = SelfSamples;
  O.DrainCycles = readTsc() - DrainStart;
  O.TableBytes = TableBytes;
  Sink.selfOverhead(O);

  Ops = 0;
  SelfCycles = 0;
  SelfSamples = 0;
}
