//===-- rt/ShadowMemory.cpp -----------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/ShadowMemory.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace sharc::rt;

/// Last-accessor provenance for one granule, maintained best-effort when
/// DiagMode is on. Reports read it to render the "last(N) ..." line.
struct ShadowMemory::DiagCell {
  std::atomic<const AccessSite *> LastSite{nullptr};
  std::atomic<uint8_t> LastTid{0};
  std::atomic<uint8_t> LastWasWrite{0};
};

/// Shadow for one 4 KiB page of application address space. Cells is a raw
/// byte array holding one little-endian shadow word of
/// Config.ShadowBytesPerGranule bytes per granule.
struct ShadowMemory::Page {
  uintptr_t Base = 0;
  std::atomic<Page *> Next{nullptr};
  std::unique_ptr<uint8_t[]> Cells;
  std::unique_ptr<DiagCell[]> Diags;
};

static size_t hashPage(uintptr_t PageBase) {
  uint64_t H = static_cast<uint64_t>(PageBase) >> 12;
  H *= 0x9E3779B97F4A7C15ull;
  return static_cast<size_t>(H >> 48);
}

ShadowMemory::ShadowMemory(const RuntimeConfig &Config, RuntimeStats &Stats,
                           ReportSink &Sink)
    : Config(Config), Stats(Stats), Sink(Sink) {
  assert(Config.GranuleShift >= 2 && Config.GranuleShift <= PageShift &&
         "granule must be between 4 bytes and one page");
  [[maybe_unused]] unsigned N = Config.ShadowBytesPerGranule;
  assert((N == 1 || N == 2 || N == 4 || N == 8) &&
         "shadow word must be 1, 2, 4 or 8 bytes");
  GranulesPerPage = PageBytes >> Config.GranuleShift;
  Buckets = std::make_unique<std::atomic<Page *>[]>(NumBuckets);
  for (size_t I = 0; I != NumBuckets; ++I)
    Buckets[I].store(nullptr, std::memory_order_relaxed);
}

ShadowMemory::~ShadowMemory() {
  for (size_t I = 0; I != NumBuckets; ++I) {
    Page *P = Buckets[I].load(std::memory_order_relaxed);
    while (P) {
      Page *Next = P->Next.load(std::memory_order_relaxed);
      delete P;
      P = Next;
    }
  }
}

ShadowMemory::Page *ShadowMemory::lookupPage(uintptr_t PageBase) const {
  size_t Bucket = hashPage(PageBase) & (NumBuckets - 1);
  for (Page *P = Buckets[Bucket].load(std::memory_order_acquire); P;
       P = P->Next.load(std::memory_order_acquire))
    if (P->Base == PageBase)
      return P;
  return nullptr;
}

ShadowMemory::Page *ShadowMemory::getOrCreatePage(uintptr_t PageBase) {
  size_t Bucket = hashPage(PageBase) & (NumBuckets - 1);
  std::atomic<Page *> &Head = Buckets[Bucket];
  for (Page *P = Head.load(std::memory_order_acquire); P;
       P = P->Next.load(std::memory_order_acquire))
    if (P->Base == PageBase)
      return P;

  auto NewPage = std::make_unique<Page>();
  NewPage->Base = PageBase;
  size_t CellBytes = GranulesPerPage * Config.ShadowBytesPerGranule;
  NewPage->Cells = std::make_unique<uint8_t[]>(CellBytes);
  std::memset(NewPage->Cells.get(), 0, CellBytes);
  size_t DiagBytes = 0;
  if (Config.DiagMode) {
    NewPage->Diags = std::make_unique<DiagCell[]>(GranulesPerPage);
    DiagBytes = GranulesPerPage * sizeof(DiagCell);
  }

  Page *Raw = NewPage.get();
  Page *Expected = Head.load(std::memory_order_acquire);
  while (true) {
    // Re-scan the new portion of the chain for a racing insert of the same
    // page before trying to prepend.
    for (Page *P = Expected; P; P = P->Next.load(std::memory_order_acquire))
      if (P->Base == PageBase)
        return P;
    Raw->Next.store(Expected, std::memory_order_relaxed);
    if (Head.compare_exchange_weak(Expected, Raw, std::memory_order_release,
                                   std::memory_order_acquire)) {
      Stats.ShadowBytes.fetch_add(CellBytes + DiagBytes + sizeof(Page),
                                  std::memory_order_relaxed);
      NewPage.release();
      return Raw;
    }
  }
}

namespace {

/// Iterates the granules overlapping [Addr, Addr+Size), invoking
/// Fn(PageBase, GranuleIndexInPage, GranuleAddr) for each.
template <typename FnT>
void forEachGranule(uintptr_t Addr, size_t Size, unsigned GranuleShift,
                    unsigned PageShift, FnT Fn) {
  if (Size == 0)
    Size = 1;
  uintptr_t GranuleSize = uintptr_t(1) << GranuleShift;
  uintptr_t First = Addr & ~(GranuleSize - 1);
  uintptr_t Last = (Addr + Size - 1) & ~(GranuleSize - 1);
  for (uintptr_t G = First;; G += GranuleSize) {
    uintptr_t PageBase = G & ~((uintptr_t(1) << PageShift) - 1);
    size_t Index = (G - PageBase) >> GranuleShift;
    Fn(PageBase, Index, G);
    if (G == Last)
      break;
  }
}

template <typename WordT> WordT loadWord(uint8_t *Cells, size_t Index) {
  return std::atomic_ref<WordT>(reinterpret_cast<WordT *>(Cells)[Index])
      .load(std::memory_order_acquire);
}

} // namespace

template <typename WordT>
bool ShadowMemory::checkAccessImpl(uintptr_t Addr, size_t Size, bool IsWrite,
                                   ThreadState &TS, const AccessSite *Site) {
  const WordT WriterBit = 1;
  const WordT OwnBit = WordT(1) << TS.Tid;
  bool Ok = true;

  forEachGranule(
      Addr, Size, Config.GranuleShift, PageShift,
      [&](uintptr_t PageBase, size_t Index, uintptr_t GranuleAddr) {
        Page *P = getOrCreatePage(PageBase);
        auto *Words = reinterpret_cast<WordT *>(P->Cells.get());
        std::atomic_ref<WordT> Cell(Words[Index]);

        WordT Cur = Cell.load(std::memory_order_acquire);
        bool Conflict = false;
        bool FirstAccess = false;
        while (true) {
          WordT Others = Cur & ~(OwnBit | WriterBit);
          if (IsWrite) {
            // chkwrite: no other readers, no other writer.
            Conflict = Others != 0;
          } else {
            // chkread: no other writer. A writer exists iff bit 0 is set;
            // its identity is the unique other bit.
            Conflict = (Cur & WriterBit) != 0 && Others != 0;
          }
          WordT Desired;
          if (Conflict) {
            // Claim the granule anyway so one bug yields one report per
            // site rather than a storm.
            Desired = IsWrite ? (WriterBit | OwnBit) : (Cur | OwnBit);
          } else {
            Desired = IsWrite ? (Cur | WriterBit | OwnBit) : (Cur | OwnBit);
          }
          FirstAccess = (Cur & OwnBit) == 0;
          if (Desired == Cur)
            break;
          if (Cell.compare_exchange_weak(Cur, Desired,
                                         std::memory_order_acq_rel,
                                         std::memory_order_acquire))
            break;
          // Cur reloaded by compare_exchange; retry the full check.
        }

        if (Conflict) {
          if (Config.Guard.OnViolation == guard::Policy::Quarantine &&
              isGranuleQuarantined(GranuleAddr)) {
            // Demoted to racy-equivalent: the access proceeds unchecked.
            Conflict = false;
          } else {
            Ok = false;
            reportConflict(IsWrite, GranuleAddr, TS, Site, P, Index);
          }
        }
        if (FirstAccess)
          TS.AccessLog.push_back(GranuleAddr);
        if (P->Diags) {
          DiagCell &D = P->Diags[Index];
          D.LastSite.store(Site, std::memory_order_relaxed);
          D.LastTid.store(static_cast<uint8_t>(TS.Tid),
                          std::memory_order_relaxed);
          D.LastWasWrite.store(IsWrite ? 1 : 0, std::memory_order_relaxed);
        }
      });
  return Ok;
}

void ShadowMemory::reportConflict(bool IsWrite, uintptr_t Addr,
                                  ThreadState &TS, const AccessSite *Site,
                                  Page *P, size_t GranuleIndex) {
  ConflictReport Report;
  Report.Kind = IsWrite ? ReportKind::WriteConflict : ReportKind::ReadConflict;
  Report.Address = Addr;
  Report.WhoTid = TS.Tid;
  Report.WhoSite = Site;
  if (P->Diags) {
    DiagCell &D = P->Diags[GranuleIndex];
    Report.LastSite = D.LastSite.load(std::memory_order_relaxed);
    Report.LastTid = D.LastTid.load(std::memory_order_relaxed);
    Report.LastWasWrite = D.LastWasWrite.load(std::memory_order_relaxed) != 0;
  }
  if (IsWrite)
    Stats.WriteConflicts.fetch_add(1, std::memory_order_relaxed);
  else
    Stats.ReadConflicts.fetch_add(1, std::memory_order_relaxed);
  if (guard::onViolation(Config.Guard, Report, Sink) ==
      guard::Verdict::Quarantine)
    quarantineGranule(Addr);
}

bool ShadowMemory::isGranuleQuarantined(uintptr_t GranuleAddr) {
  std::lock_guard<std::mutex> Lock(QuarantineMutex);
  return QuarantinedGranules.count(GranuleAddr) != 0;
}

void ShadowMemory::quarantineGranule(uintptr_t GranuleAddr) {
  std::lock_guard<std::mutex> Lock(QuarantineMutex);
  QuarantinedGranules.insert(GranuleAddr);
}

bool ShadowMemory::checkRead(const void *Addr, size_t Size, ThreadState &TS,
                             const AccessSite *Site) {
  Stats.DynamicReads.fetch_add(1, std::memory_order_relaxed);
  Stats.DynamicReadBytes.fetch_add(Size ? Size : 1,
                                   std::memory_order_relaxed);
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  switch (Config.ShadowBytesPerGranule) {
  case 1:
    return checkAccessImpl<uint8_t>(A, Size, /*IsWrite=*/false, TS, Site);
  case 2:
    return checkAccessImpl<uint16_t>(A, Size, false, TS, Site);
  case 4:
    return checkAccessImpl<uint32_t>(A, Size, false, TS, Site);
  default:
    return checkAccessImpl<uint64_t>(A, Size, false, TS, Site);
  }
}

bool ShadowMemory::checkWrite(const void *Addr, size_t Size, ThreadState &TS,
                              const AccessSite *Site) {
  Stats.DynamicWrites.fetch_add(1, std::memory_order_relaxed);
  Stats.DynamicWriteBytes.fetch_add(Size ? Size : 1,
                                    std::memory_order_relaxed);
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  switch (Config.ShadowBytesPerGranule) {
  case 1:
    return checkAccessImpl<uint8_t>(A, Size, /*IsWrite=*/true, TS, Site);
  case 2:
    return checkAccessImpl<uint16_t>(A, Size, true, TS, Site);
  case 4:
    return checkAccessImpl<uint32_t>(A, Size, true, TS, Site);
  default:
    return checkAccessImpl<uint64_t>(A, Size, true, TS, Site);
  }
}

template <typename WordT>
void ShadowMemory::clearRangeImpl(uintptr_t Addr, size_t Size) {
  forEachGranule(Addr, Size, Config.GranuleShift, PageShift,
                 [&](uintptr_t PageBase, size_t Index, uintptr_t) {
                   Page *P = lookupPage(PageBase);
                   if (!P)
                     return;
                   auto *Words = reinterpret_cast<WordT *>(P->Cells.get());
                   std::atomic_ref<WordT>(Words[Index])
                       .store(0, std::memory_order_release);
                   if (P->Diags) {
                     P->Diags[Index].LastSite.store(
                         nullptr, std::memory_order_relaxed);
                     P->Diags[Index].LastTid.store(0,
                                                   std::memory_order_relaxed);
                   }
                 });
}

void ShadowMemory::clearRange(const void *Addr, size_t Size) {
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  switch (Config.ShadowBytesPerGranule) {
  case 1:
    return clearRangeImpl<uint8_t>(A, Size);
  case 2:
    return clearRangeImpl<uint16_t>(A, Size);
  case 4:
    return clearRangeImpl<uint32_t>(A, Size);
  default:
    return clearRangeImpl<uint64_t>(A, Size);
  }
}

template <typename WordT>
void ShadowMemory::clearThreadBitsImpl(ThreadState &TS) {
  const WordT WriterBit = 1;
  const WordT OwnBit = WordT(1) << TS.Tid;
  for (uintptr_t GranuleAddr : TS.AccessLog) {
    uintptr_t PageBase = GranuleAddr & ~(uintptr_t(PageBytes) - 1);
    Page *P = lookupPage(PageBase);
    if (!P)
      continue;
    size_t Index = (GranuleAddr - PageBase) >> Config.GranuleShift;
    auto *Words = reinterpret_cast<WordT *>(P->Cells.get());
    std::atomic_ref<WordT> Cell(Words[Index]);
    WordT Cur = Cell.load(std::memory_order_acquire);
    while (true) {
      WordT Desired;
      if ((Cur & WriterBit) != 0 && (Cur & ~WriterBit) == OwnBit)
        Desired = 0; // We were the sole writer; reset the granule.
      else
        Desired = Cur & ~OwnBit;
      if (Desired == Cur)
        break;
      if (Cell.compare_exchange_weak(Cur, Desired, std::memory_order_acq_rel,
                                     std::memory_order_acquire))
        break;
    }
  }
  TS.AccessLog.clear();
}

void ShadowMemory::clearThreadBits(ThreadState &TS) {
  switch (Config.ShadowBytesPerGranule) {
  case 1:
    return clearThreadBitsImpl<uint8_t>(TS);
  case 2:
    return clearThreadBitsImpl<uint16_t>(TS);
  case 4:
    return clearThreadBitsImpl<uint32_t>(TS);
  default:
    return clearThreadBitsImpl<uint64_t>(TS);
  }
}

uint64_t ShadowMemory::peekWord(const void *Addr) const {
  uintptr_t A = reinterpret_cast<uintptr_t>(Addr);
  uintptr_t PageBase = A & ~(uintptr_t(PageBytes) - 1);
  Page *P = lookupPage(PageBase);
  if (!P)
    return 0;
  size_t Index = (A - PageBase) >> Config.GranuleShift;
  switch (Config.ShadowBytesPerGranule) {
  case 1:
    return loadWord<uint8_t>(P->Cells.get(), Index);
  case 2:
    return loadWord<uint16_t>(P->Cells.get(), Index);
  case 4:
    return loadWord<uint32_t>(P->Cells.get(), Index);
  default:
    return loadWord<uint64_t>(P->Cells.get(), Index);
  }
}
