//===-- rt/Sharc.h - Umbrella header for the SharC runtime ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Convenience umbrella: include this to get the whole native SharC
/// runtime API (Runtime lifecycle, annotations, checked accesses, casts).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_SHARC_H
#define SHARC_RT_SHARC_H

#include "rt/Annotations.h"
#include "rt/Config.h"
#include "rt/Guard.h"
#include "rt/Report.h"
#include "rt/Runtime.h"
#include "rt/Stats.h"

#endif // SHARC_RT_SHARC_H
