//===-- rt/Guard.cpp ------------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
//
// Process-global half of sharc-guard (DESIGN.md §12): the central
// violation dispatcher, the SHARC_FAULT= fault plan, and the crash-hook
// machinery that keeps .strc traces readable across abnormal deaths.
//
//===----------------------------------------------------------------------===//

#include "rt/Guard.h"

#include "rt/Report.h"

#include <atomic>
#include <csignal>
#include <cstdarg>
#include <cstdio>

using namespace sharc;
using namespace sharc::guard;

//===----------------------------------------------------------------------===//
// Policy dispatch
//===----------------------------------------------------------------------===//

namespace {
// Abort is the historical behaviour of the config-less failure paths
// (RcTable exhaustion); Runtime::init() aligns this with the effective
// runtime policy.
std::atomic<Policy> GlobalPolicy{Policy::Abort};
} // namespace

void guard::setGlobalPolicy(Policy P) {
  GlobalPolicy.store(P, std::memory_order_relaxed);
}

Policy guard::globalPolicy() {
  return GlobalPolicy.load(std::memory_order_relaxed);
}

Verdict guard::onViolation(const GuardConfig &Config,
                           const rt::ConflictReport &Report,
                           rt::ReportSink &Sink) {
  Sink.report(Report);
  switch (Config.OnViolation) {
  case Policy::Abort:
    std::fprintf(stderr, "%s", Report.format().c_str());
    std::fflush(stderr);
    runCrashHooks(0);
    std::abort();
  case Policy::Continue:
    return Verdict::Proceed;
  case Policy::Quarantine:
    return Verdict::Quarantine;
  }
  return Verdict::Proceed;
}

//===----------------------------------------------------------------------===//
// Fault injection
//===----------------------------------------------------------------------===//

namespace {
FaultConfig ActiveFaults;
std::atomic<uint64_t> OomCountdown{0};
std::atomic<bool> ThreadRegArmed{false};
std::atomic<bool> LockTimeoutArmed{false};
std::atomic<bool> EnvFaultsParsed{false};

bool parseCount(const std::string &Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (C < '0' || C > '9')
      return false;
    Value = Value * 10 + static_cast<unsigned>(C - '0');
  }
  Out = Value;
  return true;
}
} // namespace

bool guard::parseFaults(const char *Spec, FaultConfig &Out,
                        std::string &Error) {
  Out = FaultConfig();
  if (!Spec || !*Spec)
    return true;
  std::string Text(Spec);
  size_t Pos = 0;
  while (Pos <= Text.size()) {
    size_t Comma = Text.find(',', Pos);
    std::string Tok = Text.substr(
        Pos, Comma == std::string::npos ? std::string::npos : Comma - Pos);
    Pos = Comma == std::string::npos ? Text.size() + 1 : Comma + 1;
    if (Tok.empty()) {
      Error = "empty fault directive";
      return false;
    }
    // Splits "name:arg" directives; returns nullptr when Tok is not one.
    auto Arg = [&Tok](const char *Name) -> const char * {
      size_t N = std::strlen(Name);
      if (Tok.size() > N + 1 && Tok.compare(0, N, Name) == 0 && Tok[N] == ':')
        return Tok.c_str() + N + 1;
      return nullptr;
    };
    if (Tok == "thread-reg") {
      Out.FailThreadReg = true;
      continue;
    }
    if (Tok == "lock-timeout") {
      Out.LockTimeout = true;
      continue;
    }
    if (Tok == "worker-stall") {
      Out.WorkerStallMillis = 5;
      continue;
    }
    if (Tok == "worker-crash") {
      Out.WorkerCrashAfter = 200;
      continue;
    }
    if (Tok == "logger-wedge") {
      Out.LoggerWedgeMillis = 50;
      continue;
    }
    if (const char *A = Arg("oom")) {
      if (!parseCount(A, Out.OomAtAlloc) || Out.OomAtAlloc == 0) {
        Error = "oom:N needs a positive allocation index: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("torn-write")) {
      if (!parseCount(A, Out.TornWriteBytes)) {
        Error = "torn-write:K needs a byte count: '" + Tok + "'";
        return false;
      }
      Out.HasTornWrite = true;
      continue;
    }
    if (const char *A = Arg("crash")) {
      if (!parseCount(A, Out.CrashAtStep) || Out.CrashAtStep == 0) {
        Error = "crash:N needs a positive step index: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("conn-reset")) {
      if (!parseCount(A, Out.ConnResetEvery) || Out.ConnResetEvery == 0) {
        Error = "conn-reset:N needs a positive submit period: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("slow-peer")) {
      if (!parseCount(A, Out.SlowPeerMicros) || Out.SlowPeerMicros == 0 ||
          Out.SlowPeerMicros > 1000000) {
        Error = "slow-peer:U needs a delay in 1..1000000 us: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("worker-stall")) {
      if (!parseCount(A, Out.WorkerStallMillis) ||
          Out.WorkerStallMillis == 0 || Out.WorkerStallMillis > 10000) {
        Error = "worker-stall:M needs a stall in 1..10000 ms: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("worker-crash")) {
      if (!parseCount(A, Out.WorkerCrashAfter) || Out.WorkerCrashAfter == 0) {
        Error =
            "worker-crash:K needs a positive request count: '" + Tok + "'";
        return false;
      }
      continue;
    }
    if (const char *A = Arg("logger-wedge")) {
      if (!parseCount(A, Out.LoggerWedgeMillis) ||
          Out.LoggerWedgeMillis == 0 || Out.LoggerWedgeMillis > 10000) {
        Error = "logger-wedge:M needs a wedge in 1..10000 ms: '" + Tok + "'";
        return false;
      }
      continue;
    }
    Error = "unknown fault directive '" + Tok + "'";
    return false;
  }
  return true;
}

void guard::setFaults(const FaultConfig &F) {
  ActiveFaults = F;
  OomCountdown.store(F.OomAtAlloc, std::memory_order_relaxed);
  ThreadRegArmed.store(F.FailThreadReg, std::memory_order_relaxed);
  LockTimeoutArmed.store(F.LockTimeout, std::memory_order_relaxed);
}

const FaultConfig &guard::faults() { return ActiveFaults; }

void guard::initFaultsFromEnv() {
  if (EnvFaultsParsed.exchange(true))
    return;
  const char *Spec = std::getenv("SHARC_FAULT");
  if (!Spec || !*Spec)
    return;
  FaultConfig F;
  std::string Error;
  if (!parseFaults(Spec, F, Error))
    fatalInternal("bad SHARC_FAULT spec: %s", Error.c_str());
  setFaults(F);
}

bool guard::faultTickOom() {
  uint64_t Cur = OomCountdown.load(std::memory_order_relaxed);
  while (Cur != 0)
    if (OomCountdown.compare_exchange_weak(Cur, Cur - 1,
                                           std::memory_order_relaxed))
      return Cur == 1;
  return false;
}

bool guard::faultThreadReg() {
  return ThreadRegArmed.exchange(false, std::memory_order_relaxed);
}

bool guard::faultLockTimeout() {
  return LockTimeoutArmed.exchange(false, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Crash-safe observability
//===----------------------------------------------------------------------===//

namespace {
constexpr int MaxCrashHooks = 8;
struct HookEntry {
  CrashHook Fn = nullptr;
  void *Ctx = nullptr;
};
HookEntry Hooks[MaxCrashHooks];
std::atomic<int> NumHooks{0};
std::atomic<bool> HooksRan{false};
std::atomic<bool> HandlersInstalled{false};

// SA_RESETHAND restores the default disposition on entry, so re-raising
// at the end kills the process by the original signal (correct exit
// status for wait()/ctest) after the hooks flushed their traces.
void crashSignalHandler(int Signal) {
  guard::runCrashHooks(Signal);
  std::raise(Signal);
}
} // namespace

void guard::addCrashHook(CrashHook Fn, void *Ctx) {
  int I = NumHooks.load(std::memory_order_relaxed);
  if (I >= MaxCrashHooks)
    return;
  Hooks[I] = HookEntry{Fn, Ctx};
  NumHooks.store(I + 1, std::memory_order_release);
}

void guard::installCrashHandlers() {
  if (HandlersInstalled.exchange(true))
    return;
  const int Signals[] = {SIGSEGV, SIGBUS, SIGFPE, SIGILL, SIGABRT};
  for (int Sig : Signals) {
    struct sigaction SA;
    std::memset(&SA, 0, sizeof(SA));
    SA.sa_handler = crashSignalHandler;
    sigemptyset(&SA.sa_mask);
    SA.sa_flags = SA_RESETHAND;
    sigaction(Sig, &SA, nullptr);
  }
}

void guard::runCrashHooks(int Signal) {
  if (HooksRan.exchange(true))
    return;
  // Newest-first: the most recently registered hook owns the most
  // recently opened trace.
  int N = NumHooks.load(std::memory_order_acquire);
  for (int I = N - 1; I >= 0; --I)
    if (Hooks[I].Fn)
      Hooks[I].Fn(Signal, Hooks[I].Ctx);
}

void guard::fatalInternal(const char *Fmt, ...) {
  std::va_list Args;
  va_start(Args, Fmt);
  std::fprintf(stderr, "sharc: fatal: ");
  std::vfprintf(stderr, Fmt, Args);
  std::fputc('\n', stderr);
  va_end(Args);
  runCrashHooks(0);
  std::fflush(nullptr);
  std::_Exit(3);
}
