//===-- rt/Report.h - Conflict reports --------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structured conflict reports in the format of the paper's Section 2.1:
///
///   read conflict(0x75324464):
///     who(2)  S->sdata @ pipeline_test.c: 15
///     last(1) nextS->sdata @ pipeline_test.c: 27
///
/// Reports are collected by a ReportSink owned by the Runtime; tests
/// assert on structured fields, tools render them with format().
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_REPORT_H
#define SHARC_RT_REPORT_H

#include "rt/AccessSite.h"

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_set>
#include <vector>

namespace sharc {
namespace obs {
class Sink;
} // namespace obs

namespace rt {

/// Kinds of sharing-strategy violations the runtime detects.
enum class ReportKind : uint8_t {
  ReadConflict,   ///< Racy read of a dynamic-mode location.
  WriteConflict,  ///< Racy write of a dynamic-mode location.
  LockViolation,  ///< Access to a locked-mode location without its lock.
  CastError,      ///< Sharing cast of an object with other live references.
  LiveAfterCast,  ///< Warning: pointer definitely live after being nulled.
  StallTimeout,   ///< Watchdog: a lock wait or cast drain exceeded its budget.
  ResourceExhausted, ///< OOM / capacity failure routed through the guard.
};

constexpr size_t NumReportKinds = 7;

/// One detected violation.
struct ConflictReport {
  ReportKind Kind = ReportKind::ReadConflict;
  uintptr_t Address = 0;
  /// Who performed the violating access.
  unsigned WhoTid = 0;
  const AccessSite *WhoSite = nullptr;
  /// Last recorded accessor of the granule (0 / nullptr if unknown, e.g.
  /// when DiagMode is off).
  unsigned LastTid = 0;
  const AccessSite *LastSite = nullptr;
  bool LastWasWrite = false;

  /// Renders the report in the paper's format.
  std::string format() const;
};

/// Thread-safe collector of ConflictReports with per-(site, granule)
/// deduplication and a retention cap.
class ReportSink {
public:
  explicit ReportSink(size_t MaxReports) : MaxReports(MaxReports) {}

  /// Records \p Report unless an identical (kind, site, granule) report was
  /// already seen. \returns true if the report was newly retained.
  bool report(const ConflictReport &Report);

  std::vector<ConflictReport> takeReports();
  std::vector<ConflictReport> getReports() const;
  size_t getNumReports() const;

  /// Total violations observed, including deduplicated repeats.
  uint64_t getTotalViolations() const { return TotalViolations; }

  /// Total reports of \p K observed, including deduplicated repeats —
  /// the stats endpoint's sharc_stall_reports_total reads the
  /// StallTimeout bucket.
  uint64_t getTotalOfKind(ReportKind K) const {
    std::lock_guard<std::mutex> Lock(Mutex);
    return TotalByKind[static_cast<size_t>(K) % NumReportKinds];
  }

  /// When non-null, every report() call (including deduplicated repeats)
  /// is also published as an obs Conflict event.
  void setObs(obs::Sink *Sink) { Obs = Sink; }

  /// Retain at most \p N deduplicated reports per ReportKind (the guard
  /// layer's Continue/Quarantine cap). 0 = unlimited.
  void setMaxPerKind(size_t N) { MaxPerKind = N; }

  void clear();

private:
  size_t MaxReports;
  size_t MaxPerKind = 0;
  obs::Sink *Obs = nullptr;
  mutable std::mutex Mutex;
  std::vector<ConflictReport> Reports;
  std::unordered_set<uint64_t> Seen;
  uint64_t TotalViolations = 0;
  uint64_t TotalByKind[NumReportKinds] = {};
  size_t RetainedPerKind[NumReportKinds] = {};
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_REPORT_H
