//===-- rt/ThreadRegistry.cpp ---------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/ThreadRegistry.h"

#include "rt/Guard.h"

#include <cassert>

using namespace sharc::rt;

ThreadRegistry::ThreadRegistry(unsigned MaxThreads) : MaxThreads(MaxThreads) {
  Live.resize(MaxThreads);
}

ThreadRegistry::~ThreadRegistry() = default;

ThreadState *ThreadRegistry::registerThread() {
  if (guard::faultThreadReg())
    guard::fatalInternal(
        "thread registration failed (injected fault); %u of %u ids in use",
        getNumLive(), MaxThreads);
  std::lock_guard<std::mutex> Lock(Mutex);
  for (unsigned I = 0; I != MaxThreads; ++I) {
    if (Live[I])
      continue;
    auto State = std::make_unique<ThreadState>();
    State->Tid = I + 1;
    ThreadState *Result = State.get();
    Live[I] = std::move(State);
    unsigned NumLive = 0;
    for (const auto &S : Live)
      if (S)
        ++NumLive;
    if (NumLive > PeakLive)
      PeakLive = NumLive;
    EverRegistered.fetch_add(1, std::memory_order_relaxed);
    return Result;
  }
  // Out of thread ids. This used to be a debug-only assert; in release
  // builds it would have returned null into code that never checks. Die
  // with a real diagnostic instead (exit 3, crash hooks flushed).
  guard::fatalInternal("thread limit exceeded: all %u ids in use; raise "
                       "RuntimeConfig::ShadowBytesPerGranule",
                       MaxThreads);
}

void ThreadRegistry::deregisterThread(ThreadState *State) {
  std::lock_guard<std::mutex> Lock(Mutex);
  assert(State && State->Tid >= 1 && State->Tid <= MaxThreads &&
         "deregistering unknown thread");
  unsigned Index = State->Tid - 1;
  assert(Live[Index].get() == State && "thread state/id mismatch");
  State->Retired = true;
  // Keep the state alive for the collector if it has pending RC log
  // entries; otherwise it can be dropped immediately.
  if (State->RcLogs[0].empty() && State->RcLogs[1].empty()) {
    Live[Index].reset();
    return;
  }
  Retired.push_back(std::move(Live[Index]));
}

void ThreadRegistry::purgeRetired() {
  std::lock_guard<std::mutex> Lock(Mutex);
  purgeRetiredUnlocked();
}

void ThreadRegistry::purgeRetiredUnlocked() {
  for (auto It = Retired.begin(); It != Retired.end();) {
    if ((*It)->RcLogs[0].empty() && (*It)->RcLogs[1].empty())
      It = Retired.erase(It);
    else
      ++It;
  }
}

unsigned ThreadRegistry::getNumLive() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  unsigned NumLive = 0;
  for (const auto &State : Live)
    if (State)
      ++NumLive;
  return NumLive;
}
