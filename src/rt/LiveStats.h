//===-- rt/LiveStats.h - Online introspection snapshots ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-live (DESIGN.md §13): the data model behind the in-process stats
/// endpoint. A LiveSnapshot is everything a scrape can see — the runtime
/// counter snapshot plus guard/watchdog state, lock contention aggregates,
/// and engine liveness — and StatsHub is the thread-safe mailbox a
/// producer (the MiniC interpreter's polling hook, or the native runtime)
/// publishes it through.
///
/// Everything in this header is header-only, mirroring the layering of
/// rt/Guard.h: the interpreter publishes LiveSnapshots without linking
/// sharc_rt; the HTTP listener itself (rt/StatsServer.h) lives inside
/// sharc_rt. The Prometheus text rendering is also here, as is the
/// metric-name mapping (forEachStatMetric) that `sharc-trace check-live`
/// uses to cross-check a scrape against a trace's final stats sample —
/// one definition, so the endpoint and the checker cannot drift apart.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_LIVESTATS_H
#define SHARC_RT_LIVESTATS_H

#include "rt/Guard.h"
#include "rt/Stats.h"

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>

namespace sharc {
namespace live {

/// One coherent view of a running (or just-finished) checked execution.
struct LiveSnapshot {
  /// The runtime counter snapshot — for a finished run this is exactly
  /// the final stats sample written into the .strc trace, which is what
  /// the acceptance check `sharc-trace check-live` pins.
  rt::StatsSnapshot Stats;

  /// Violations observed including deduplicated repeats (the counter
  /// `Stats.totalConflicts()` counts only snapshot-visible kinds).
  uint64_t TotalViolations = 0;

  /// Active guard policy and watchdog budget (0 = watchdog off).
  guard::Policy Policy = guard::Policy::Continue;
  uint64_t WatchdogMillis = 0;
  /// StallTimeout reports filed by the watchdog so far.
  uint64_t StallReports = 0;

  /// Lock wait/hold aggregates. Units are TSC cycles for the native
  /// runtime and scheduler steps for the interpreter; populated when
  /// profiling is armed, zero otherwise (the native runtime aggregates
  /// hold time only at thread retire, so its live hold view lags).
  uint64_t LockAcquires = 0;
  uint64_t LockContended = 0;
  uint64_t LockWaitUnits = 0;
  uint64_t LockHoldUnits = 0;

  /// Cast-drain queue depth: blocks logically freed but not yet released
  /// because pending Levanoni-Petrank logs may still name their counted
  /// slots (rt::Heap::getNumDeferred). Always 0 for the interpreter,
  /// whose frees are immediate.
  uint64_t CastDrainQueueDepth = 0;

  /// Engine liveness.
  uint64_t ThreadsLive = 0;
  uint64_t ThreadsSpawned = 0;
  uint64_t Steps = 0;   ///< Interpreter scheduler steps (0 for native).
  bool Running = true;  ///< False once the run has completed.
};

/// Thread-safe single-slot mailbox between one producer (the engine) and
/// any number of scrapers (the HTTP listener's handler thread). Writers
/// overwrite; readers always see the latest complete snapshot.
class StatsHub {
public:
  void update(const LiveSnapshot &S) {
    std::lock_guard<std::mutex> Lock(Mu);
    Snap = S;
    Published = true;
  }

  LiveSnapshot load() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Snap;
  }

  /// True once any snapshot has been published.
  bool hasSnapshot() const {
    std::lock_guard<std::mutex> Lock(Mu);
    return Published;
  }

private:
  mutable std::mutex Mu;
  LiveSnapshot Snap;
  bool Published = false;
};

//===----------------------------------------------------------------------===//
// Metric mapping — the single source of truth for how a StatsSnapshot
// projects onto Prometheus series. Fn signature:
//   Fn(family, labelKey, labelValue, value)
// labelKey/labelValue are nullptr for label-less series.
//===----------------------------------------------------------------------===//

template <typename FnT>
inline void forEachStatMetric(const rt::StatsSnapshot &S, FnT &&Fn) {
  // Per-kind check counts (counters).
  Fn("sharc_checks_total", "kind", "dynamic_reads", S.DynamicReads);
  Fn("sharc_checks_total", "kind", "dynamic_writes", S.DynamicWrites);
  Fn("sharc_checks_total", "kind", "lock_checks", S.LockChecks);
  Fn("sharc_checks_total", "kind", "rc_barriers", S.RcBarriers);
  Fn("sharc_checks_total", "kind", "collections", S.Collections);
  Fn("sharc_checks_total", "kind", "sharing_casts", S.SharingCasts);
  // Checked access volume (counters).
  Fn("sharc_access_bytes_total", "dir", "read", S.DynamicReadBytes);
  Fn("sharc_access_bytes_total", "dir", "write", S.DynamicWriteBytes);
  // Violation tallies (counters).
  Fn("sharc_violations_total", "kind", "read_conflict", S.ReadConflicts);
  Fn("sharc_violations_total", "kind", "write_conflict", S.WriteConflicts);
  Fn("sharc_violations_total", "kind", "lock_violation", S.LockViolations);
  Fn("sharc_violations_total", "kind", "cast_error", S.CastErrors);
  // Metadata and heap footprint (gauges).
  Fn("sharc_metadata_bytes", "kind", "shadow", S.ShadowBytes);
  Fn("sharc_metadata_bytes", "kind", "rc_table", S.RcTableBytes);
  Fn("sharc_metadata_bytes", "kind", "log", S.LogBytes);
  Fn("sharc_heap_payload_bytes", nullptr, nullptr, S.HeapPayloadBytes);
  Fn("sharc_heap_payload_peak_bytes", nullptr, nullptr,
     S.PeakHeapPayloadBytes);
}

//===----------------------------------------------------------------------===//
// Prometheus text exposition (version 0.0.4) and the JSON health document
//===----------------------------------------------------------------------===//

namespace detail {

inline void appendSample(std::string &Out, const char *Family,
                         const char *LabelKey, const char *LabelValue,
                         uint64_t Value) {
  Out += Family;
  if (LabelKey) {
    Out += '{';
    Out += LabelKey;
    Out += "=\"";
    Out += LabelValue;
    Out += "\"}";
  }
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), " %llu\n",
                static_cast<unsigned long long>(Value));
  Out += Buf;
}

inline void appendHeader(std::string &Out, const char *Family,
                         const char *Type, const char *Help) {
  Out += "# HELP ";
  Out += Family;
  Out += ' ';
  Out += Help;
  Out += "\n# TYPE ";
  Out += Family;
  Out += ' ';
  Out += Type;
  Out += '\n';
}

} // namespace detail

/// Renders \p S (plus \p Scrapes, the server's own scrape counter) as
/// Prometheus text exposition. Every value is an exact integer — no
/// floating-point formatting — so scrape-vs-trace comparisons are exact.
inline std::string renderPrometheus(const LiveSnapshot &S, uint64_t Scrapes) {
  using detail::appendHeader;
  using detail::appendSample;
  std::string Out;
  Out.reserve(2048);

  // The StatsSnapshot projection. Series come from forEachStatMetric —
  // the same mapping `sharc-trace check-live` verifies scrapes against —
  // already grouped by family, so a header is emitted on family change.
  // Families whose name ends in _total are counters, the rest gauges
  // (byte footprints shrink when memory is released).
  const char *LastFamily = "";
  forEachStatMetric(S.Stats, [&](const char *Family, const char *LabelKey,
                                 const char *LabelValue, uint64_t Value) {
    if (std::strcmp(Family, LastFamily) != 0) {
      size_t Len = std::strlen(Family);
      bool Counter = Len > 6 && std::strcmp(Family + Len - 6, "_total") == 0;
      appendHeader(Out, Family, Counter ? "counter" : "gauge",
                   "See DESIGN.md section 13 for the metric schema");
      LastFamily = Family;
    }
    appendSample(Out, Family, LabelKey, LabelValue, Value);
  });

  appendHeader(Out, "sharc_violations_seen_total", "counter",
               "Violations observed including deduplicated repeats");
  appendSample(Out, "sharc_violations_seen_total", nullptr, nullptr,
               S.TotalViolations);

  // Guard / watchdog state.
  appendHeader(Out, "sharc_guard_policy", "gauge",
               "Active violation policy (the labelled policy is 1)");
  appendSample(Out, "sharc_guard_policy", "policy",
               guard::policyName(S.Policy), 1);
  appendHeader(Out, "sharc_watchdog_budget_ms", "gauge",
               "Stall watchdog budget in milliseconds (0 = off)");
  appendSample(Out, "sharc_watchdog_budget_ms", nullptr, nullptr,
               S.WatchdogMillis);
  appendHeader(Out, "sharc_stall_reports_total", "counter",
               "StallTimeout reports filed by the watchdog");
  appendSample(Out, "sharc_stall_reports_total", nullptr, nullptr,
               S.StallReports);

  // Lock contention aggregates.
  appendHeader(Out, "sharc_lock_acquires_total", "counter",
               "Profiled lock acquisitions");
  appendSample(Out, "sharc_lock_acquires_total", nullptr, nullptr,
               S.LockAcquires);
  appendHeader(Out, "sharc_lock_contended_total", "counter",
               "Profiled lock acquisitions that had to wait");
  appendSample(Out, "sharc_lock_contended_total", nullptr, nullptr,
               S.LockContended);
  appendHeader(Out, "sharc_lock_wait_units_total", "counter",
               "Aggregate lock wait time (cycles or scheduler steps)");
  appendSample(Out, "sharc_lock_wait_units_total", nullptr, nullptr,
               S.LockWaitUnits);
  appendHeader(Out, "sharc_lock_hold_units_total", "counter",
               "Aggregate lock hold time (cycles or scheduler steps)");
  appendSample(Out, "sharc_lock_hold_units_total", nullptr, nullptr,
               S.LockHoldUnits);

  // Engine state.
  appendHeader(Out, "sharc_cast_drain_queue_depth", "gauge",
               "Deferred-free blocks awaiting the next RC collection");
  appendSample(Out, "sharc_cast_drain_queue_depth", nullptr, nullptr,
               S.CastDrainQueueDepth);
  appendHeader(Out, "sharc_threads_live", "gauge",
               "Threads currently registered/runnable");
  appendSample(Out, "sharc_threads_live", nullptr, nullptr, S.ThreadsLive);
  appendHeader(Out, "sharc_threads_spawned_total", "counter",
               "Threads ever spawned");
  appendSample(Out, "sharc_threads_spawned_total", nullptr, nullptr,
               S.ThreadsSpawned);
  appendHeader(Out, "sharc_steps_total", "counter",
               "Interpreter scheduler steps (0 for the native runtime)");
  appendSample(Out, "sharc_steps_total", nullptr, nullptr, S.Steps);
  appendHeader(Out, "sharc_run_active", "gauge",
               "1 while the checked run is in progress, 0 once finished");
  appendSample(Out, "sharc_run_active", nullptr, nullptr,
               S.Running ? 1 : 0);
  appendHeader(Out, "sharc_scrapes_total", "counter",
               "Scrapes served by this endpoint, this one included");
  appendSample(Out, "sharc_scrapes_total", nullptr, nullptr, Scrapes);
  return Out;
}

/// The JSON health document served at /health. Hand-rendered (sharc_rt
/// does not link the obs JSON writer); every string inserted is a fixed
/// token, so no escaping is needed.
inline std::string renderHealthJson(const LiveSnapshot &S, uint64_t Scrapes) {
  auto Num = [](uint64_t V) { return std::to_string(V); };
  std::string Out = "{\"schema\":\"sharc-health-v1\"";
  Out += ",\"running\":";
  Out += S.Running ? "true" : "false";
  Out += ",\"policy\":\"";
  Out += guard::policyName(S.Policy);
  Out += "\",\"watchdog_ms\":" + Num(S.WatchdogMillis);
  Out += ",\"stall_reports\":" + Num(S.StallReports);
  Out += ",\"violations_total\":" + Num(S.TotalViolations);
  Out += ",\"conflicts\":" + Num(S.Stats.totalConflicts());
  Out += ",\"dynamic_accesses\":" + Num(S.Stats.dynamicAccesses());
  Out += ",\"lock_checks\":" + Num(S.Stats.LockChecks);
  Out += ",\"sharing_casts\":" + Num(S.Stats.SharingCasts);
  Out += ",\"metadata_bytes\":" + Num(S.Stats.metadataBytes());
  Out += ",\"cast_drain_queue_depth\":" + Num(S.CastDrainQueueDepth);
  Out += ",\"threads_live\":" + Num(S.ThreadsLive);
  Out += ",\"threads_spawned\":" + Num(S.ThreadsSpawned);
  Out += ",\"steps\":" + Num(S.Steps);
  Out += ",\"scrapes\":" + Num(Scrapes);
  Out += "}\n";
  return Out;
}

} // namespace live
} // namespace sharc

#endif // SHARC_RT_LIVESTATS_H
