//===-- rt/StatsServer.h - Minimal HTTP/1.0 stats endpoint ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-live (DESIGN.md §13): the in-process introspection endpoint. A
/// StatsServer owns one background thread running a poll()-based accept
/// loop on an IPv4 listening socket and serves, per HTTP/1.0 request:
///
///   GET /metrics          -> Prometheus text exposition (version 0.0.4)
///   GET /health, /healthz -> the sharc-health-v1 JSON document
///   anything else         -> 404
///
/// Every response carries `Connection: close`; there is no keep-alive,
/// no TLS, no request body handling — the endpoint exists so `curl` or a
/// Prometheus scraper (or the in-tree httpGet client below) can watch a
/// checked run, not to be a web server. Snapshots come from a Provider
/// callback so the server needs no knowledge of which engine (native
/// runtime or MiniC interpreter) is publishing.
///
/// Cost discipline: when no --stats-addr / SHARC_STATS_ADDR is given the
/// server is never constructed and the engines' publish hooks see a null
/// StatsHub — the hot path pays one predicted branch, the same contract
/// the profiler and the obs sinks honor (gated at ≤2% in scripts/ci.sh).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_STATSSERVER_H
#define SHARC_RT_STATSSERVER_H

#include "rt/LiveStats.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>

namespace sharc {
namespace live {

/// Background HTTP/1.0 listener serving LiveSnapshots from a Provider.
class StatsServer {
public:
  using Provider = std::function<LiveSnapshot()>;

  StatsServer() = default;
  ~StatsServer() { stop(); }
  StatsServer(const StatsServer &) = delete;
  StatsServer &operator=(const StatsServer &) = delete;

  /// Binds \p Addr ("HOST:PORT", IPv4 dotted quad; port 0 asks the
  /// kernel for an ephemeral port), starts the accept thread, and
  /// returns true. On failure returns false with \p Error set and no
  /// thread running. \p P is invoked on the server thread per request.
  bool start(const std::string &Addr, Provider P, std::string &Error);

  /// Stops the accept thread and closes the socket. Idempotent.
  void stop();

  bool isRunning() const { return Running.load(std::memory_order_acquire); }

  /// The actual bound address as "HOST:PORT" — with the concrete port
  /// even when port 0 was requested. Empty before a successful start().
  const std::string &boundAddress() const { return Bound; }
  uint16_t port() const { return BoundPort; }

  /// Scrapes served so far (each /metrics or /health hit counts).
  uint64_t scrapeCount() const {
    return Scrapes.load(std::memory_order_relaxed);
  }

private:
  void serveLoop();
  void handleConnection(int Fd);

  Provider Provide;
  std::thread Thread;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopFlag{false};
  std::atomic<uint64_t> Scrapes{0};
  int ListenFd = -1;
  std::string Bound;
  uint16_t BoundPort = 0;
};

/// Tiny blocking HTTP/1.0 GET client for tests and `sharc-trace scrape`
/// — the reason the test suite needs no curl. Returns true and fills
/// \p Body with the response payload (headers stripped) on a 200;
/// otherwise returns false with \p Error set (non-200 statuses report
/// the status line).
bool httpGet(const std::string &Host, uint16_t Port, const std::string &Path,
             std::string &Body, std::string &Error);

/// Splits "HOST:PORT" into its parts; returns false on malformed input
/// (missing colon, empty host, non-numeric or out-of-range port).
bool splitHostPort(const std::string &Addr, std::string &Host,
                   uint16_t &Port, std::string &Error);

} // namespace live
} // namespace sharc

#endif // SHARC_RT_STATSSERVER_H
