//===-- rt/Annotations.h - C++ sharing-mode annotations ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The native embedding of SharC's five sharing modes for C++ programs
/// (the paper expresses them as C type qualifiers; here they are wrapper
/// templates). This is the public API the example programs and benchmark
/// workloads use:
///
///   sharc::Private<T>   - owned by one thread (dynamic owner assertion)
///   sharc::ReadOnly<T>  - readable by all, writable only at init
///   sharc::Locked<T>    - access requires the associated Mutex held
///   sharc::Racy<T>      - intentional races, accessed with relaxed atomics
///   sharc::Dynamic<T>   - run-time checked: read-only or single-accessor
///
/// plus the pieces that make mode *changes* safe:
///
///   sharc::Counted<T>   - a pointer slot whose stores are reference
///                         counted (a location the analysis would mark
///                         "may be subject to a sharing cast")
///   sharc::scastOut / scastIn - the sharing cast (null + sole-ref check)
///
/// and checked primitives for raw memory (buffers):
///
///   sharc::read(p, site) / sharc::write(p, v, site)
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_ANNOTATIONS_H
#define SHARC_RT_ANNOTATIONS_H

#include "rt/Guard.h"
#include "rt/Runtime.h"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <new>
#include <shared_mutex>
#include <thread>
#include <type_traits>
#include <utility>

namespace sharc {

using rt::AccessSite;

//===----------------------------------------------------------------------===//
// Threads and locks
//===----------------------------------------------------------------------===//

/// std::thread that registers with the SharC runtime for its lifetime.
class Thread {
public:
  Thread() = default;

  template <typename FnT, typename... ArgTs>
  explicit Thread(FnT &&Fn, ArgTs &&...Args)
      : Impl([Fn = std::forward<FnT>(Fn)](auto &&...Inner) mutable {
          rt::ScopedThreadRegistration Registration;
          Fn(std::forward<decltype(Inner)>(Inner)...);
        },
             std::forward<ArgTs>(Args)...) {}

  Thread(Thread &&) = default;
  Thread &operator=(Thread &&) = default;

  void join() { Impl.join(); }
  bool joinable() const { return Impl.joinable(); }

private:
  std::thread Impl;
};

/// Mutex whose acquire/release maintain the per-thread lock log the
/// locked-mode check consults (Section 4.2.2). When profiling is on,
/// acquires go through a timed path that measures wait cycles and
/// attributes them to the acquiring site (or the declaration site).
/// When the guard watchdog is armed (GuardConfig::WatchdogMillis or
/// SHARC_WATCHDOG_MS), acquires go through a timed path that reports a
/// stall -- naming the holder -- if the lock is not obtained within the
/// watchdog interval, then keep waiting (the watchdog diagnoses hangs,
/// it does not break them).
class Mutex {
public:
  Mutex() = default;
  /// \p Site names where the lock lives; contention with no per-acquire
  /// site falls back to it in profiles.
  explicit Mutex(const AccessSite *Site) : DeclSite(Site) {}

  void lock(const AccessSite *Site = nullptr) {
    rt::Runtime &RT = rt::Runtime::get();
    if (RT.watchdogMillis() != 0) [[unlikely]] {
      lockGuarded(RT, Site);
      return;
    }
    if (RT.profilingEnabled()) [[unlikely]] {
      lockProfiled(RT, Site);
      return;
    }
    Impl.lock();
    RT.onLockAcquire(this);
  }
  void unlock() {
    rt::Runtime::get().onLockRelease(this);
    Impl.unlock();
  }
  bool try_lock() {
    if (!Impl.try_lock())
      return false;
    rt::Runtime &RT = rt::Runtime::get();
    if (RT.watchdogMillis() != 0) [[unlikely]]
      RT.noteLockHolder(this, site(nullptr));
    if (RT.profilingEnabled()) [[unlikely]]
      RT.onLockAcquireProfiled(this, site(nullptr), 0, false);
    else
      RT.onLockAcquire(this);
    return true;
  }

private:
  const AccessSite *site(const AccessSite *S) const {
    return S ? S : DeclSite;
  }

  void lockProfiled(rt::Runtime &RT, const AccessSite *S) {
    uint64_t Start = rt::readTsc();
    bool Contended = !Impl.try_lock();
    if (Contended) {
      RT.onLockWait(this, site(S));
      Impl.lock();
    }
    RT.onLockAcquireProfiled(this, site(S),
                             Contended ? rt::readTsc() - Start : 0, Contended);
  }

  void lockGuarded(rt::Runtime &RT, const AccessSite *S) {
    if (!guard::faultLockTimeout()) {
      auto Deadline = std::chrono::steady_clock::now() +
                      std::chrono::milliseconds(RT.watchdogMillis());
      for (;;) {
        if (Impl.try_lock()) {
          RT.noteLockHolder(this, site(S));
          RT.onLockAcquire(this);
          return;
        }
        if (std::chrono::steady_clock::now() >= Deadline)
          break;
        std::this_thread::sleep_for(std::chrono::microseconds(50));
      }
    }
    // Watchdog expired (or an injected lock-timeout fault fired): report
    // the stall with holder attribution, then fall back to a plain
    // blocking acquire.
    RT.reportLockStall(this, site(S));
    Impl.lock();
    RT.noteLockHolder(this, site(S));
    RT.onLockAcquire(this);
  }

  std::mutex Impl;
  const AccessSite *DeclSite = nullptr;
};

using LockGuard = std::lock_guard<Mutex>;
using UniqueLock = std::unique_lock<Mutex>;

/// Reader-writer mutex maintaining the lock log in both modes: exclusive
/// holds land in the ordinary lock log, shared holds in the shared log.
/// Supports the rwlocked sharing mode (a Section 7 extension).
class SharedMutex {
public:
  SharedMutex() = default;
  explicit SharedMutex(const AccessSite *Site) : DeclSite(Site) {}

  void lock(const AccessSite *Site = nullptr) {
    rt::Runtime &RT = rt::Runtime::get();
    if (RT.watchdogMillis() != 0) [[unlikely]] {
      if (!guard::faultLockTimeout()) {
        auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(RT.watchdogMillis());
        for (;;) {
          if (Impl.try_lock()) {
            RT.noteLockHolder(this, site(Site));
            RT.onLockAcquire(this);
            return;
          }
          if (std::chrono::steady_clock::now() >= Deadline)
            break;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      RT.reportLockStall(this, site(Site));
      Impl.lock();
      RT.noteLockHolder(this, site(Site));
      RT.onLockAcquire(this);
      return;
    }
    if (RT.profilingEnabled()) [[unlikely]] {
      uint64_t Start = rt::readTsc();
      bool Contended = !Impl.try_lock();
      if (Contended) {
        RT.onLockWait(this, site(Site));
        Impl.lock();
      }
      RT.onLockAcquireProfiled(this, site(Site),
                               Contended ? rt::readTsc() - Start : 0,
                               Contended);
      return;
    }
    Impl.lock();
    RT.onLockAcquire(this);
  }
  void unlock() {
    rt::Runtime::get().onLockRelease(this);
    Impl.unlock();
  }
  void lock_shared(const AccessSite *Site = nullptr) {
    rt::Runtime &RT = rt::Runtime::get();
    if (RT.watchdogMillis() != 0) [[unlikely]] {
      if (!guard::faultLockTimeout()) {
        auto Deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(RT.watchdogMillis());
        for (;;) {
          if (Impl.try_lock_shared()) {
            RT.onSharedLockAcquire(this);
            return;
          }
          if (std::chrono::steady_clock::now() >= Deadline)
            break;
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
      RT.reportLockStall(this, site(Site));
      Impl.lock_shared();
      RT.onSharedLockAcquire(this);
      return;
    }
    if (RT.profilingEnabled()) [[unlikely]] {
      uint64_t Start = rt::readTsc();
      bool Contended = !Impl.try_lock_shared();
      if (Contended) {
        RT.onLockWait(this, site(Site));
        Impl.lock_shared();
      }
      RT.onSharedLockAcquireProfiled(this, site(Site),
                                     Contended ? rt::readTsc() - Start : 0,
                                     Contended);
      return;
    }
    Impl.lock_shared();
    RT.onSharedLockAcquire(this);
  }
  void unlock_shared() {
    rt::Runtime::get().onSharedLockRelease(this);
    Impl.unlock_shared();
  }

private:
  const AccessSite *site(const AccessSite *S) const {
    return S ? S : DeclSite;
  }

  std::shared_mutex Impl;
  const AccessSite *DeclSite = nullptr;
};

using SharedLockGuard = std::shared_lock<SharedMutex>;
using ExclusiveLockGuard = std::unique_lock<SharedMutex>;

/// Condition variable usable with sharc::Mutex; waiting releases and
/// reacquires through Mutex's instrumented lock/unlock.
class CondVar {
public:
  void wait(UniqueLock &Lock) { Impl.wait(Lock); }
  template <typename PredT> void wait(UniqueLock &Lock, PredT Pred) {
    Impl.wait(Lock, std::move(Pred));
  }
  void notifyOne() { Impl.notify_one(); }
  void notifyAll() { Impl.notify_all(); }

private:
  std::condition_variable_any Impl;
};

//===----------------------------------------------------------------------===//
// Checked primitive accesses (dynamic mode on raw memory)
//===----------------------------------------------------------------------===//

/// Dynamic-mode read of *Ptr: chkread then load.
template <typename T>
inline T read(const T *Ptr, const AccessSite *Site = nullptr) {
  rt::Runtime::get().checkRead(Ptr, sizeof(T), Site);
  return *Ptr;
}

/// Dynamic-mode write of *Ptr: chkwrite then store.
template <typename T>
inline void write(T *Ptr, T Value, const AccessSite *Site = nullptr) {
  rt::Runtime::get().checkWrite(Ptr, sizeof(T), Site);
  *Ptr = std::move(Value);
}

/// Dynamic-mode check of a whole range before a bulk operation (memcpy,
/// compression kernel, ...). One chk per granule, not per byte.
inline void readRange(const void *Ptr, size_t Size,
                      const AccessSite *Site = nullptr) {
  rt::Runtime::get().checkRead(Ptr, Size, Site);
}
inline void writeRange(void *Ptr, size_t Size,
                       const AccessSite *Site = nullptr) {
  rt::Runtime::get().checkWrite(Ptr, Size, Site);
}

//===----------------------------------------------------------------------===//
// Mode wrappers
//===----------------------------------------------------------------------===//

/// dynamic: every access is run-time checked to be read-only or
/// single-accessor.
template <typename T> class Dynamic {
public:
  Dynamic() : Value() {}
  explicit Dynamic(T Init) : Value(std::move(Init)) {}

  T read(const AccessSite *Site = nullptr) const {
    rt::Runtime::get().checkRead(&Value, sizeof(T), Site);
    return Value;
  }
  void write(T NewValue, const AccessSite *Site = nullptr) {
    rt::Runtime::get().checkWrite(&Value, sizeof(T), Site);
    Value = std::move(NewValue);
  }

  /// Address for aggregate operations; accesses through it must be
  /// checked by the caller (readRange/writeRange).
  T *raw() { return &Value; }
  const T *raw() const { return &Value; }

private:
  T Value;
};

/// private: owned by one thread. The paper enforces this statically; the
/// wrapper additionally asserts the owner dynamically so misannotated
/// tests fail loudly.
template <typename T> class Private {
public:
  Private() : Value() {}
  explicit Private(T Init) : Value(std::move(Init)) {}

  const T &get() const {
    checkOwner();
    return Value;
  }
  T &get() {
    checkOwner();
    return Value;
  }
  void set(T NewValue) {
    checkOwner();
    Value = std::move(NewValue);
  }

  /// Transfers ownership to the calling thread. Corresponds to a sharing
  /// cast to private; callers pair it with scastIn/scastOut on the
  /// enclosing object.
  void adopt() { Owner = rt::Runtime::get().currentThread().Tid; }

private:
  void checkOwner() const {
    unsigned Tid = rt::Runtime::get().currentThread().Tid;
    if (Owner == 0)
      Owner = Tid;
    assert(Owner == Tid && "private value touched by non-owner thread");
  }

  T Value;
  mutable unsigned Owner = 0;
};

/// readonly: writable only before publication via init(); read-only after.
template <typename T> class ReadOnly {
public:
  ReadOnly() : Value() {}
  explicit ReadOnly(T Init) : Value(std::move(Init)), Published(true) {}

  /// One-time initialization ("a readonly field in a private structure is
  /// writeable" -- init happens before the structure is shared).
  void init(T NewValue) {
    assert(!Published && "readonly value already published");
    Value = std::move(NewValue);
    Published = true;
  }

  const T &get() const { return Value; }

private:
  T Value;
  bool Published = false;
};

/// racy: intentional races. Accesses use relaxed atomics so the C++
/// program stays UB-free while modelling the paper's unchecked mode.
template <typename T> class Racy {
  static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                "racy values must be small and trivially copyable");

public:
  Racy() : Value() {}
  explicit Racy(T Init) : Value(std::move(Init)) {}

  T read() const {
    return std::atomic_ref<T>(const_cast<T &>(Value))
        .load(std::memory_order_relaxed);
  }
  void write(T NewValue) {
    std::atomic_ref<T>(Value).store(NewValue, std::memory_order_relaxed);
  }

private:
  T Value;
};

/// locked(L): access requires the associated Mutex to be held by the
/// calling thread; checked against the thread's lock log.
template <typename T> class Locked {
public:
  explicit Locked(Mutex &Lock) : Lock(&Lock), Value() {}
  Locked(Mutex &Lock, T Init) : Lock(&Lock), Value(std::move(Init)) {}

  T read(const AccessSite *Site = nullptr) const {
    rt::Runtime::get().checkLockHeld(Lock, &Value, Site);
    return Value;
  }
  void write(T NewValue, const AccessSite *Site = nullptr) {
    rt::Runtime::get().checkLockHeld(Lock, &Value, Site);
    Value = std::move(NewValue);
  }

  Mutex &getLock() const { return *Lock; }

private:
  Mutex *Lock;
  T Value;
};

/// rwlocked(L): readable while L is held shared or exclusive, writable
/// only while L is held exclusive. The paper's Section 7 names richer
/// lock support as future work; this mode covers the common
/// reader-writer-lock convention the locked mode cannot express.
template <typename T> class RwLocked {
public:
  explicit RwLocked(SharedMutex &Lock) : Lock(&Lock), Value() {}
  RwLocked(SharedMutex &Lock, T Init) : Lock(&Lock), Value(std::move(Init)) {}

  T read(const AccessSite *Site = nullptr) const {
    rt::Runtime::get().checkRwLockHeldForRead(Lock, &Value, Site);
    return Value;
  }
  void write(T NewValue, const AccessSite *Site = nullptr) {
    rt::Runtime::get().checkRwLockHeldForWrite(Lock, &Value, Site);
    Value = std::move(NewValue);
  }

  SharedMutex &getLock() const { return *Lock; }

private:
  SharedMutex *Lock;
  T Value;
};

//===----------------------------------------------------------------------===//
// Counted slots and sharing casts
//===----------------------------------------------------------------------===//

/// A pointer slot whose stores are reference counted: the static analysis
/// marks such locations "may be subject to a sharing cast" (Section 4.3).
/// Counted slots must live in stable storage (sharc heap, globals); the
/// heap defers frees so pending RC logs never read freed slots.
template <typename T> class Counted {
public:
  Counted() { rt::Runtime::get().rcInitSlot(slot()); }
  explicit Counted(T *Init) {
    rt::Runtime::get().rcInitSlot(slot());
    store(Init);
  }
  ~Counted() {
    // Release this slot's reference.
    if (load())
      rt::Runtime::get().rcStore(slot(), nullptr);
  }

  Counted(const Counted &) = delete;
  Counted &operator=(const Counted &) = delete;

  void store(T *Value, const AccessSite *Site = nullptr) {
    rt::Runtime::get().rcStore(slot(), Value, Site);
  }
  T *load() const {
    return static_cast<T *>(rt::Runtime::get().rcLoad(
        const_cast<void *const *>(slot())));
  }

  void **slot() { return reinterpret_cast<void **>(&Ptr); }
  void *const *slot() const {
    return reinterpret_cast<void *const *>(&Ptr);
  }

private:
  T *Ptr = nullptr;
};

/// Sharing cast whose source is a counted slot (e.g. a locked field cast
/// to private): nulls the slot, checks no other counted reference remains,
/// clears the object's access history. \returns the object, now in its new
/// mode; on failure the cast error has been reported and the object is
/// returned anyway so the program can continue.
template <typename T>
inline T *scastOut(Counted<T> &Slot, const AccessSite *Site = nullptr,
                   size_t ObjSize = 0) {
  return static_cast<T *>(rt::Runtime::get().scast(Slot.slot(), ObjSize, Site));
}

/// Sharing cast whose source is an (uncounted) local: nulls the local and
/// checks that no counted reference to the object exists anywhere.
template <typename T>
inline T *scastIn(T *&Local, const AccessSite *Site = nullptr,
                  size_t ObjSize = 0) {
  T *Obj = Local;
  Local = nullptr;
  rt::Runtime::get().checkCast(Obj, ObjSize, Site);
  return Obj;
}

//===----------------------------------------------------------------------===//
// Heap helpers
//===----------------------------------------------------------------------===//

/// Allocates granule-aligned checked memory (paper Section 4.5: "SharC
/// ensures that malloc allocates objects on a 16-byte boundary").
inline void *allocBytes(size_t Size) {
  return rt::Runtime::get().allocate(Size);
}
inline void freeBytes(void *Ptr) { rt::Runtime::get().deallocate(Ptr); }

/// Constructs a T in sharc-managed memory.
template <typename T, typename... ArgTs> T *alloc(ArgTs &&...Args) {
  void *Mem = rt::Runtime::get().allocate(sizeof(T));
  return new (Mem) T(std::forward<ArgTs>(Args)...);
}

/// Destroys and frees an object created with sharc::alloc.
template <typename T> void dealloc(T *Ptr) {
  if (!Ptr)
    return;
  Ptr->~T();
  rt::Runtime::get().deallocate(Ptr);
}

} // namespace sharc

#endif // SHARC_RT_ANNOTATIONS_H
