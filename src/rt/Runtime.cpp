//===-- rt/Runtime.cpp ----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Runtime.h"

#include "obs/Sink.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

using namespace sharc::rt;

namespace {

/// The global runtime instance and its generation counter.
Runtime *GlobalRuntime = nullptr;
uint64_t NextGeneration = 1;

/// Cached per-thread registration: valid only while Generation matches the
/// live runtime's.
struct ThreadCache {
  uint64_t Generation = 0;
  ThreadState *State = nullptr;
};
thread_local ThreadCache TlsCache;

/// Deferred-free backlog size that forces a collection to release memory.
constexpr size_t DeferredFreeThreshold = 1u << 14;

} // namespace

// Private constructor/destructor need access to members; defined here.
Runtime::Runtime(const RuntimeConfig &Config)
    : Config(Config), Sink(Config.MaxReports), Registry(Config.maxThreads()),
      Generation(NextGeneration++) {
  // Failure-semantics resolution (DESIGN.md §12): the legacy AbortOnError
  // flag folds into the guard policy, then SHARC_POLICY overrides both so
  // deployed binaries can switch policies without a rebuild. The global
  // policy (config-less paths like RcTable exhaustion) follows suit, and
  // SHARC_FAULT is parsed once so fault injection reaches every subsystem.
  if (this->Config.AbortOnError)
    this->Config.Guard.OnViolation = guard::Policy::Abort;
  guard::policyFromEnv(this->Config.Guard.OnViolation);
  this->Config.AbortOnError =
      this->Config.Guard.OnViolation == guard::Policy::Abort;
  guard::setGlobalPolicy(this->Config.Guard.OnViolation);
  if (const char *Env = std::getenv("SHARC_WATCHDOG_MS")) {
    char *End = nullptr;
    unsigned long long Ms = std::strtoull(Env, &End, 10);
    if (End && End != Env && *End == '\0')
      this->Config.Guard.WatchdogMillis = Ms;
  }
  guard::initFaultsFromEnv();
  Sink.setMaxPerKind(this->Config.Guard.MaxReportsPerKind);
  Shadow = std::make_unique<ShadowMemory>(this->Config, Stats, Sink);
  Rc = std::make_unique<RefCountEngine>(this->Config, Stats, Registry);
  TheHeap = std::make_unique<Heap>(this->Config, Stats, *Shadow, Sink);
  Rc->setPostCollectHook(
      [](void *Ctx) { static_cast<Heap *>(Ctx)->releaseDeferred(); },
      TheHeap.get());
  // Conflict reports reach the obs stream through the ReportSink, so
  // every detector (shadow memory, lock checks, cast checks) publishes
  // without knowing about observability.
  Sink.setObs(this->Config.Obs);
  // sharc-live (DESIGN.md §13): arm the in-process stats endpoint when
  // requested. SHARC_STATS_ADDR overrides the config field so deployed
  // binaries can be inspected without a rebuild. When neither is set
  // no thread or socket exists and every publish path stays cold.
  if (const char *Env = std::getenv("SHARC_STATS_ADDR"))
    this->Config.StatsAddr = Env;
  if (!this->Config.StatsAddr.empty()) {
    LiveServer = std::make_unique<live::StatsServer>();
    std::string Error;
    if (!LiveServer->start(
            this->Config.StatsAddr, [this] { return liveSnapshot(); },
            Error)) {
      std::fprintf(stderr, "sharc: stats endpoint disabled: %s\n",
                   Error.c_str());
      LiveServer.reset();
    }
  }
}

void Runtime::publishAccess(obs::EventKind K, const void *Addr, size_t Size,
                            unsigned Tid) {
  obs::Event Ev;
  Ev.K = K;
  Ev.Tid = Tid;
  Ev.Addr = reinterpret_cast<uintptr_t>(Addr);
  Ev.Value = static_cast<int64_t>(Size);
  Config.Obs->event(Ev);
}

void Runtime::publishEvent(obs::EventKind K, const void *Addr,
                           int64_t Value) {
  obs::Event Ev;
  Ev.K = K;
  Ev.Tid = currentThread().Tid;
  Ev.Addr = reinterpret_cast<uintptr_t>(Addr);
  Ev.Value = Value;
  Config.Obs->event(Ev);
}

Runtime::~Runtime() {
  // Quiesce the stats endpoint before any subsystem it snapshots goes
  // away (its unique_ptr would also be destroyed first, but stopping
  // here keeps the invariant explicit).
  if (LiveServer)
    LiveServer->stop();
  // Threads that registered but never deregistered (tests cycling the
  // runtime, detached workers) still owe their profile records.
  if (Config.Obs)
    Registry.forEachState([&](ThreadState &S) {
      if (S.Prof) {
        S.Prof->drainTo(*Config.Obs, S.Tid);
        S.Prof.reset();
      }
    });
}

bool Runtime::observedCheckRead(ThreadState &T, const void *Addr, size_t Size,
                                const AccessSite *Site) {
  if (T.Prof) [[unlikely]] {
    uint64_t T0 = T.Prof->begin();
    bool Ok = Shadow->checkRead(Addr, Size, T, Site);
    T.Prof->commit(Site, obs::CheckKind::DynamicRead, Size ? Size : 1, T0);
    publishAccess(obs::EventKind::Read, Addr, Size, T.Tid);
    return Ok;
  }
  bool Ok = Shadow->checkRead(Addr, Size, T, Site);
  publishAccess(obs::EventKind::Read, Addr, Size, T.Tid);
  return Ok;
}

bool Runtime::observedCheckWrite(ThreadState &T, const void *Addr, size_t Size,
                                 const AccessSite *Site) {
  if (T.Prof) [[unlikely]] {
    uint64_t T0 = T.Prof->begin();
    bool Ok = Shadow->checkWrite(Addr, Size, T, Site);
    T.Prof->commit(Site, obs::CheckKind::DynamicWrite, Size ? Size : 1, T0);
    publishAccess(obs::EventKind::Write, Addr, Size, T.Tid);
    return Ok;
  }
  bool Ok = Shadow->checkWrite(Addr, Size, T, Site);
  publishAccess(obs::EventKind::Write, Addr, Size, T.Tid);
  return Ok;
}

void Runtime::rcStoreProfiled(void **Slot, void *Value, const AccessSite *Site,
                              ThreadState &T) {
  // RcMode::None never bumps Stats.RcBarriers, so profiling nothing here
  // keeps profile totals exactly equal to the final StatsSnapshot.
  if (Config.Rc == RcMode::None) {
    Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot),
                 reinterpret_cast<uintptr_t>(Value), T);
    return;
  }
  uint64_t T0 = T.Prof->begin();
  Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot),
               reinterpret_cast<uintptr_t>(Value), T);
  T.Prof->commit(Site, obs::CheckKind::RcBarrier, sizeof(void *), T0);
}

void Runtime::init(const RuntimeConfig &Config) {
  assert(!GlobalRuntime && "runtime already initialized");
  GlobalRuntime = new Runtime(Config);
}

void Runtime::shutdown() {
  assert(GlobalRuntime && "no live runtime");
  // Implicitly deregister the calling thread if it is registered.
  if (TlsCache.Generation == GlobalRuntime->Generation && TlsCache.State)
    GlobalRuntime->deregisterCurrentThread();
  delete GlobalRuntime;
  GlobalRuntime = nullptr;
}

Runtime &Runtime::get() {
  assert(GlobalRuntime && "Runtime::init() has not been called");
  return *GlobalRuntime;
}

bool Runtime::isLive() { return GlobalRuntime != nullptr; }

ThreadState &Runtime::currentThread() {
  if (TlsCache.Generation == Generation && TlsCache.State)
    return *TlsCache.State;
  ThreadState *State = Registry.registerThread();
  if (profilingEnabled())
    State->Prof = std::make_unique<ThreadProfile>(Config.ProfileSampleShift);
  TlsCache.Generation = Generation;
  TlsCache.State = State;
  return *State;
}

void Runtime::deregisterCurrentThread() {
  if (TlsCache.Generation != Generation || !TlsCache.State)
    return;
  ThreadState *State = TlsCache.State;
  // Retiring is the drain point for the thread's profile: its records
  // land in the obs stream after all of its queued events.
  if (State->Prof && Config.Obs) {
    State->Prof->drainTo(*Config.Obs, State->Tid);
    State->Prof.reset();
  }
  // Clear this thread's reader/writer bits so a non-overlapping successor
  // reusing the id starts clean.
  Shadow->clearThreadBits(*State);
  State->HeldLocks.clear();
  State->HeldSharedLocks.clear();
  Registry.deregisterThread(State);
  TlsCache.State = nullptr;
  TlsCache.Generation = 0;
}

void Runtime::onLockAcquire(const void *Lock) {
  currentThread().HeldLocks.push_back(Lock);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockAcquire, Lock, 0);
}

void Runtime::onLockWait(const void *Lock, const AccessSite *Site) {
  if (Config.Obs) [[unlikely]] {
    obs::Event Ev;
    Ev.K = obs::EventKind::LockWait;
    Ev.Tid = currentThread().Tid;
    Ev.Addr = reinterpret_cast<uintptr_t>(Lock);
    Ev.Extra = Site && Site->Line > 0 ? uint64_t(Site->Line) : 0;
    Config.Obs->event(Ev);
  }
}

void Runtime::onLockAcquireProfiled(const void *Lock, const AccessSite *Site,
                                    uint64_t WaitCycles, bool Contended) {
  ThreadState &TS = currentThread();
  TS.HeldLocks.push_back(Lock);
  if (TS.Prof) {
    TS.Prof->lockAcquired(Lock, Site, WaitCycles, Contended);
    LiveLockAcquires.fetch_add(1, std::memory_order_relaxed);
    if (Contended)
      LiveLockContended.fetch_add(1, std::memory_order_relaxed);
    LiveLockWaitUnits.fetch_add(WaitCycles, std::memory_order_relaxed);
  }
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockAcquire, Lock, 0);
}

void Runtime::onLockRelease(const void *Lock) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]]
    LiveLockHoldUnits.fetch_add(TS.Prof->lockReleased(Lock),
                                std::memory_order_relaxed);
  if (Config.Guard.WatchdogMillis != 0) [[unlikely]] {
    std::lock_guard<std::mutex> G(GuardMutex);
    LockHolders.erase(reinterpret_cast<uintptr_t>(Lock));
  }
  auto It = std::find(TS.HeldLocks.rbegin(), TS.HeldLocks.rend(), Lock);
  assert(It != TS.HeldLocks.rend() && "releasing a lock that is not held");
  TS.HeldLocks.erase(std::next(It).base());
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockRelease, Lock, 0);
}

bool Runtime::holdsLock(const void *Lock) {
  ThreadState &TS = currentThread();
  return std::find(TS.HeldLocks.begin(), TS.HeldLocks.end(), Lock) !=
         TS.HeldLocks.end();
}

//===----------------------------------------------------------------------===//
// Stall watchdog and quarantine (sharc-guard, DESIGN.md §12)
//===----------------------------------------------------------------------===//

void Runtime::noteLockHolder(const void *Lock, const AccessSite *Site) {
  unsigned Tid = currentThread().Tid;
  std::lock_guard<std::mutex> G(GuardMutex);
  LockHolders[reinterpret_cast<uintptr_t>(Lock)] = LockHolderInfo{Tid, Site};
}

void Runtime::reportLockStall(const void *Lock, const AccessSite *Site) {
  LockHolderInfo Holder;
  {
    std::lock_guard<std::mutex> G(GuardMutex);
    auto It = LockHolders.find(reinterpret_cast<uintptr_t>(Lock));
    if (It != LockHolders.end())
      Holder = It->second;
  }
  if (Holder.Tid == 0) {
    // The holder acquired before the watchdog was armed (or through an
    // unguarded path): attribute via the per-thread lock logs.
    Registry.forEachState([&](ThreadState &S) {
      if (std::find(S.HeldLocks.begin(), S.HeldLocks.end(), Lock) !=
          S.HeldLocks.end())
        Holder.Tid = S.Tid;
    });
  }
  // The wait slice feeds the PR 3 contention tables.
  onLockWait(Lock, Site);
  ConflictReport Report;
  Report.Kind = ReportKind::StallTimeout;
  Report.Address = reinterpret_cast<uintptr_t>(Lock);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  Report.LastTid = Holder.Tid;
  Report.LastSite = Holder.Site;
  // The verdict is moot for a stall — the waiter keeps waiting either
  // way — but Policy::Abort still dies here, report printed.
  (void)guard::onViolation(Config.Guard, Report, Sink);
}

void Runtime::reportCastStall(const void *Obj, const AccessSite *Site,
                              int64_t RemainingCount) {
  ConflictReport Report;
  Report.Kind = ReportKind::StallTimeout;
  Report.Address = reinterpret_cast<uintptr_t>(Obj);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  Report.LastTid = static_cast<unsigned>(RemainingCount);
  (void)guard::onViolation(Config.Guard, Report, Sink);
}

bool Runtime::isAddrQuarantined(const void *Addr) {
  std::lock_guard<std::mutex> G(GuardMutex);
  return QuarantinedAddrs.count(reinterpret_cast<uintptr_t>(Addr)) != 0;
}

void Runtime::quarantineAddr(const void *Addr) {
  std::lock_guard<std::mutex> G(GuardMutex);
  QuarantinedAddrs.insert(reinterpret_cast<uintptr_t>(Addr));
}

bool Runtime::checkLockHeld(const void *Lock, const void *Addr,
                            const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkLockHeldImpl(Lock, Addr, Site);
    TS.Prof->commit(Site, obs::CheckKind::LockCheck, 0, T0);
    return Ok;
  }
  return checkLockHeldImpl(Lock, Addr, Site);
}

bool Runtime::checkLockHeldImpl(const void *Lock, const void *Addr,
                                const AccessSite *Site) {
  Stats.LockChecks.fetch_add(1, std::memory_order_relaxed);
  if (holdsLock(Lock))
    return true;
  if (Config.Guard.OnViolation == guard::Policy::Quarantine &&
      isAddrQuarantined(Addr))
    return true;
  Stats.LockViolations.fetch_add(1, std::memory_order_relaxed);
  ConflictReport Report;
  Report.Kind = ReportKind::LockViolation;
  Report.Address = reinterpret_cast<uintptr_t>(Addr);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  if (guard::onViolation(Config.Guard, Report, Sink) ==
      guard::Verdict::Quarantine)
    quarantineAddr(Addr);
  return false;
}

void Runtime::onSharedLockAcquire(const void *Lock) {
  currentThread().HeldSharedLocks.push_back(Lock);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockAcquire, Lock, 0);
}

void Runtime::onSharedLockAcquireProfiled(const void *Lock,
                                          const AccessSite *Site,
                                          uint64_t WaitCycles,
                                          bool Contended) {
  ThreadState &TS = currentThread();
  TS.HeldSharedLocks.push_back(Lock);
  if (TS.Prof) {
    TS.Prof->lockAcquired(Lock, Site, WaitCycles, Contended);
    LiveLockAcquires.fetch_add(1, std::memory_order_relaxed);
    if (Contended)
      LiveLockContended.fetch_add(1, std::memory_order_relaxed);
    LiveLockWaitUnits.fetch_add(WaitCycles, std::memory_order_relaxed);
  }
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockAcquire, Lock, 0);
}

void Runtime::onSharedLockRelease(const void *Lock) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]]
    LiveLockHoldUnits.fetch_add(TS.Prof->lockReleased(Lock),
                                std::memory_order_relaxed);
  auto It = std::find(TS.HeldSharedLocks.rbegin(), TS.HeldSharedLocks.rend(),
                      Lock);
  assert(It != TS.HeldSharedLocks.rend() &&
         "releasing a shared lock that is not held");
  TS.HeldSharedLocks.erase(std::next(It).base());
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockRelease, Lock, 0);
}

bool Runtime::holdsLockShared(const void *Lock) {
  ThreadState &TS = currentThread();
  return std::find(TS.HeldSharedLocks.begin(), TS.HeldSharedLocks.end(),
                   Lock) != TS.HeldSharedLocks.end();
}

bool Runtime::checkRwLockHeldForRead(const void *Lock, const void *Addr,
                                     const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkRwLockHeldForReadImpl(Lock, Addr, Site);
    TS.Prof->commit(Site, obs::CheckKind::LockCheck, 0, T0);
    return Ok;
  }
  return checkRwLockHeldForReadImpl(Lock, Addr, Site);
}

bool Runtime::checkRwLockHeldForReadImpl(const void *Lock, const void *Addr,
                                         const AccessSite *Site) {
  Stats.LockChecks.fetch_add(1, std::memory_order_relaxed);
  if (holdsLock(Lock) || holdsLockShared(Lock))
    return true;
  if (Config.Guard.OnViolation == guard::Policy::Quarantine &&
      isAddrQuarantined(Addr))
    return true;
  Stats.LockViolations.fetch_add(1, std::memory_order_relaxed);
  ConflictReport Report;
  Report.Kind = ReportKind::LockViolation;
  Report.Address = reinterpret_cast<uintptr_t>(Addr);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  if (guard::onViolation(Config.Guard, Report, Sink) ==
      guard::Verdict::Quarantine)
    quarantineAddr(Addr);
  return false;
}

bool Runtime::checkRwLockHeldForWrite(const void *Lock, const void *Addr,
                                      const AccessSite *Site) {
  // A shared hold does not license writes.
  return checkLockHeld(Lock, Addr, Site);
}

void *Runtime::scast(void **Slot, size_t ObjSize, const AccessSite *Site) {
  ThreadState &TS = currentThread();
  void *Obj = rcLoad(Slot);
  // Null-out the source so no access path with the old sharing mode
  // remains (Figure 7, line 2). The store goes through the RC barrier,
  // so profiled runs attribute it like any other counted store.
  if (TS.Prof) [[unlikely]]
    rcStoreProfiled(Slot, nullptr, Site, TS);
  else
    Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot), 0, TS);
  if (!Obj)
    return nullptr;
  checkCast(Obj, ObjSize, Site);
  return Obj;
}

bool Runtime::checkCast(void *Obj, size_t ObjSize, const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkCastImpl(Obj, ObjSize, Site);
    TS.Prof->commit(Site, obs::CheckKind::SharingCast, 0, T0);
    return Ok;
  }
  return checkCastImpl(Obj, ObjSize, Site);
}

bool Runtime::checkCastImpl(void *Obj, size_t ObjSize, const AccessSite *Site) {
  Stats.SharingCasts.fetch_add(1, std::memory_order_relaxed);
  if (!Obj)
    return true;
  ThreadState &TS = currentThread();
  // After the source has been nulled and accounted, any remaining counted
  // reference means the object is reachable under its old mode: reject.
  int64_t Count = Rc->getRefCount(reinterpret_cast<uintptr_t>(Obj), TS);
  // Watchdog: a transient handoff may still hold a counted reference in
  // another thread. Poll the count down until the drain budget expires,
  // then file a stall report before the cast verdict (DESIGN.md §12).
  if (Count > 0 && Config.Rc != RcMode::None &&
      Config.Guard.WatchdogMillis != 0) {
    auto Deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(Config.Guard.WatchdogMillis);
    while (Count > 0 && std::chrono::steady_clock::now() < Deadline) {
      std::this_thread::yield();
      Count = Rc->getRefCount(reinterpret_cast<uintptr_t>(Obj), TS);
    }
    if (Count > 0)
      reportCastStall(Obj, Site, Count);
  }
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharingCast, Obj, Count);
  if (Count > 0 && Config.Rc != RcMode::None) {
    Stats.CastErrors.fetch_add(1, std::memory_order_relaxed);
    ConflictReport Report;
    Report.Kind = ReportKind::CastError;
    Report.Address = reinterpret_cast<uintptr_t>(Obj);
    Report.WhoTid = TS.Tid;
    Report.WhoSite = Site;
    if (guard::onViolation(Config.Guard, Report, Sink) ==
        guard::Verdict::Quarantine) {
      // Demote: treat the object as racy-equivalent by forgetting its
      // access history, exactly as a successful cast would.
      size_t Size = ObjSize;
      if (Size == 0 && TheHeap->isSharcObject(Obj))
        Size = TheHeap->allocationSize(Obj);
      if (Size != 0)
        Shadow->clearRange(Obj, Size);
    }
    return false;
  }
  // The cast succeeded: clear the object's reader/writer history ("past
  // accesses by other threads no longer constitute unintended sharing").
  size_t Size = ObjSize;
  if (Size == 0 && TheHeap->isSharcObject(Obj))
    Size = TheHeap->allocationSize(Obj);
  if (Size != 0)
    Shadow->clearRange(Obj, Size);
  return true;
}

void *Runtime::allocate(size_t Size) { return TheHeap->allocate(Size); }

void Runtime::deallocate(void *Ptr) {
  TheHeap->deallocate(Ptr);
  // Bound the deferred-free backlog: a collection releases it.
  if (TheHeap->getNumDeferred() >= DeferredFreeThreshold) {
    if (Config.Rc == RcMode::LevanoniPetrank)
      Rc->collect(currentThread());
    else
      TheHeap->releaseDeferred();
  }
}

StatsSnapshot Runtime::computeStats() {
  // Fold dynamic per-thread metadata (logs) into LogBytes.
  uint64_t LogBytes = 0;
  Registry.forEachState(
      [&](ThreadState &S) { LogBytes += S.memoryFootprint(); });
  Stats.LogBytes.store(LogBytes, std::memory_order_relaxed);
  // Count the reference-count table by *touched* entries: the analog of
  // the paper's minor-pagefault measure (untouched table slots never
  // fault in).
  if (Config.Rc != RcMode::None)
    Stats.RcTableBytes.store(Rc->getTable().getNumEntries() * 16,
                             std::memory_order_relaxed);
  return Stats.snapshot();
}

StatsSnapshot Runtime::getStats() {
  StatsSnapshot Snapshot = computeStats();
  // Every stats poll doubles as a periodic sample on the event stream.
  if (Config.Obs) [[unlikely]]
    Config.Obs->stats(Snapshot);
  return Snapshot;
}

sharc::live::LiveSnapshot Runtime::liveSnapshot() {
  sharc::live::LiveSnapshot S;
  S.Stats = computeStats();
  S.TotalViolations = Sink.getTotalViolations();
  S.Policy = Config.Guard.OnViolation;
  S.WatchdogMillis = Config.Guard.WatchdogMillis;
  S.StallReports = Sink.getTotalOfKind(ReportKind::StallTimeout);
  S.LockAcquires = LiveLockAcquires.load(std::memory_order_relaxed);
  S.LockContended = LiveLockContended.load(std::memory_order_relaxed);
  S.LockWaitUnits = LiveLockWaitUnits.load(std::memory_order_relaxed);
  S.LockHoldUnits = LiveLockHoldUnits.load(std::memory_order_relaxed);
  S.CastDrainQueueDepth = TheHeap->getNumDeferred();
  S.ThreadsLive = Registry.getNumLive();
  S.ThreadsSpawned = Registry.getNumEverRegistered();
  S.Steps = 0; // Native execution has no scheduler-step clock.
  S.Running = true;
  return S;
}
