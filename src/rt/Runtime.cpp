//===-- rt/Runtime.cpp ----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Runtime.h"

#include "obs/Sink.h"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace sharc::rt;

namespace {

/// The global runtime instance and its generation counter.
Runtime *GlobalRuntime = nullptr;
uint64_t NextGeneration = 1;

/// Cached per-thread registration: valid only while Generation matches the
/// live runtime's.
struct ThreadCache {
  uint64_t Generation = 0;
  ThreadState *State = nullptr;
};
thread_local ThreadCache TlsCache;

/// Deferred-free backlog size that forces a collection to release memory.
constexpr size_t DeferredFreeThreshold = 1u << 14;

} // namespace

// Private constructor/destructor need access to members; defined here.
Runtime::Runtime(const RuntimeConfig &Config)
    : Config(Config), Sink(Config.MaxReports), Registry(Config.maxThreads()),
      Generation(NextGeneration++) {
  Shadow = std::make_unique<ShadowMemory>(this->Config, Stats, Sink);
  Rc = std::make_unique<RefCountEngine>(this->Config, Stats, Registry);
  TheHeap = std::make_unique<Heap>(this->Config, Stats, *Shadow);
  Rc->setPostCollectHook(
      [](void *Ctx) { static_cast<Heap *>(Ctx)->releaseDeferred(); },
      TheHeap.get());
  // Conflict reports reach the obs stream through the ReportSink, so
  // every detector (shadow memory, lock checks, cast checks) publishes
  // without knowing about observability.
  Sink.setObs(this->Config.Obs);
}

void Runtime::publishAccess(obs::EventKind K, const void *Addr, size_t Size,
                            unsigned Tid) {
  obs::Event Ev;
  Ev.K = K;
  Ev.Tid = Tid;
  Ev.Addr = reinterpret_cast<uintptr_t>(Addr);
  Ev.Value = static_cast<int64_t>(Size);
  Config.Obs->event(Ev);
}

void Runtime::publishEvent(obs::EventKind K, const void *Addr,
                           int64_t Value) {
  obs::Event Ev;
  Ev.K = K;
  Ev.Tid = currentThread().Tid;
  Ev.Addr = reinterpret_cast<uintptr_t>(Addr);
  Ev.Value = Value;
  Config.Obs->event(Ev);
}

Runtime::~Runtime() {
  // Threads that registered but never deregistered (tests cycling the
  // runtime, detached workers) still owe their profile records.
  if (Config.Obs)
    Registry.forEachState([&](ThreadState &S) {
      if (S.Prof) {
        S.Prof->drainTo(*Config.Obs, S.Tid);
        S.Prof.reset();
      }
    });
}

bool Runtime::observedCheckRead(ThreadState &T, const void *Addr, size_t Size,
                                const AccessSite *Site) {
  if (T.Prof) [[unlikely]] {
    uint64_t T0 = T.Prof->begin();
    bool Ok = Shadow->checkRead(Addr, Size, T, Site);
    T.Prof->commit(Site, obs::CheckKind::DynamicRead, Size ? Size : 1, T0);
    publishAccess(obs::EventKind::Read, Addr, Size, T.Tid);
    return Ok;
  }
  bool Ok = Shadow->checkRead(Addr, Size, T, Site);
  publishAccess(obs::EventKind::Read, Addr, Size, T.Tid);
  return Ok;
}

bool Runtime::observedCheckWrite(ThreadState &T, const void *Addr, size_t Size,
                                 const AccessSite *Site) {
  if (T.Prof) [[unlikely]] {
    uint64_t T0 = T.Prof->begin();
    bool Ok = Shadow->checkWrite(Addr, Size, T, Site);
    T.Prof->commit(Site, obs::CheckKind::DynamicWrite, Size ? Size : 1, T0);
    publishAccess(obs::EventKind::Write, Addr, Size, T.Tid);
    return Ok;
  }
  bool Ok = Shadow->checkWrite(Addr, Size, T, Site);
  publishAccess(obs::EventKind::Write, Addr, Size, T.Tid);
  return Ok;
}

void Runtime::rcStoreProfiled(void **Slot, void *Value, const AccessSite *Site,
                              ThreadState &T) {
  // RcMode::None never bumps Stats.RcBarriers, so profiling nothing here
  // keeps profile totals exactly equal to the final StatsSnapshot.
  if (Config.Rc == RcMode::None) {
    Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot),
                 reinterpret_cast<uintptr_t>(Value), T);
    return;
  }
  uint64_t T0 = T.Prof->begin();
  Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot),
               reinterpret_cast<uintptr_t>(Value), T);
  T.Prof->commit(Site, obs::CheckKind::RcBarrier, sizeof(void *), T0);
}

void Runtime::init(const RuntimeConfig &Config) {
  assert(!GlobalRuntime && "runtime already initialized");
  GlobalRuntime = new Runtime(Config);
}

void Runtime::shutdown() {
  assert(GlobalRuntime && "no live runtime");
  // Implicitly deregister the calling thread if it is registered.
  if (TlsCache.Generation == GlobalRuntime->Generation && TlsCache.State)
    GlobalRuntime->deregisterCurrentThread();
  delete GlobalRuntime;
  GlobalRuntime = nullptr;
}

Runtime &Runtime::get() {
  assert(GlobalRuntime && "Runtime::init() has not been called");
  return *GlobalRuntime;
}

bool Runtime::isLive() { return GlobalRuntime != nullptr; }

ThreadState &Runtime::currentThread() {
  if (TlsCache.Generation == Generation && TlsCache.State)
    return *TlsCache.State;
  ThreadState *State = Registry.registerThread();
  if (profilingEnabled())
    State->Prof = std::make_unique<ThreadProfile>(Config.ProfileSampleShift);
  TlsCache.Generation = Generation;
  TlsCache.State = State;
  return *State;
}

void Runtime::deregisterCurrentThread() {
  if (TlsCache.Generation != Generation || !TlsCache.State)
    return;
  ThreadState *State = TlsCache.State;
  // Retiring is the drain point for the thread's profile: its records
  // land in the obs stream after all of its queued events.
  if (State->Prof && Config.Obs) {
    State->Prof->drainTo(*Config.Obs, State->Tid);
    State->Prof.reset();
  }
  // Clear this thread's reader/writer bits so a non-overlapping successor
  // reusing the id starts clean.
  Shadow->clearThreadBits(*State);
  State->HeldLocks.clear();
  State->HeldSharedLocks.clear();
  Registry.deregisterThread(State);
  TlsCache.State = nullptr;
  TlsCache.Generation = 0;
}

void Runtime::onLockAcquire(const void *Lock) {
  currentThread().HeldLocks.push_back(Lock);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockAcquire, Lock, 0);
}

void Runtime::onLockWait(const void *Lock, const AccessSite *Site) {
  if (Config.Obs) [[unlikely]] {
    obs::Event Ev;
    Ev.K = obs::EventKind::LockWait;
    Ev.Tid = currentThread().Tid;
    Ev.Addr = reinterpret_cast<uintptr_t>(Lock);
    Ev.Extra = Site && Site->Line > 0 ? uint64_t(Site->Line) : 0;
    Config.Obs->event(Ev);
  }
}

void Runtime::onLockAcquireProfiled(const void *Lock, const AccessSite *Site,
                                    uint64_t WaitCycles, bool Contended) {
  ThreadState &TS = currentThread();
  TS.HeldLocks.push_back(Lock);
  if (TS.Prof)
    TS.Prof->lockAcquired(Lock, Site, WaitCycles, Contended);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockAcquire, Lock, 0);
}

void Runtime::onLockRelease(const void *Lock) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]]
    TS.Prof->lockReleased(Lock);
  auto It = std::find(TS.HeldLocks.rbegin(), TS.HeldLocks.rend(), Lock);
  assert(It != TS.HeldLocks.rend() && "releasing a lock that is not held");
  TS.HeldLocks.erase(std::next(It).base());
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::LockRelease, Lock, 0);
}

bool Runtime::holdsLock(const void *Lock) {
  ThreadState &TS = currentThread();
  return std::find(TS.HeldLocks.begin(), TS.HeldLocks.end(), Lock) !=
         TS.HeldLocks.end();
}

bool Runtime::checkLockHeld(const void *Lock, const void *Addr,
                            const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkLockHeldImpl(Lock, Addr, Site);
    TS.Prof->commit(Site, obs::CheckKind::LockCheck, 0, T0);
    return Ok;
  }
  return checkLockHeldImpl(Lock, Addr, Site);
}

bool Runtime::checkLockHeldImpl(const void *Lock, const void *Addr,
                                const AccessSite *Site) {
  Stats.LockChecks.fetch_add(1, std::memory_order_relaxed);
  if (holdsLock(Lock))
    return true;
  Stats.LockViolations.fetch_add(1, std::memory_order_relaxed);
  ConflictReport Report;
  Report.Kind = ReportKind::LockViolation;
  Report.Address = reinterpret_cast<uintptr_t>(Addr);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  Sink.report(Report);
  if (Config.AbortOnError) {
    std::fprintf(stderr, "%s", Report.format().c_str());
    std::abort();
  }
  return false;
}

void Runtime::onSharedLockAcquire(const void *Lock) {
  currentThread().HeldSharedLocks.push_back(Lock);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockAcquire, Lock, 0);
}

void Runtime::onSharedLockAcquireProfiled(const void *Lock,
                                          const AccessSite *Site,
                                          uint64_t WaitCycles,
                                          bool Contended) {
  ThreadState &TS = currentThread();
  TS.HeldSharedLocks.push_back(Lock);
  if (TS.Prof)
    TS.Prof->lockAcquired(Lock, Site, WaitCycles, Contended);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockAcquire, Lock, 0);
}

void Runtime::onSharedLockRelease(const void *Lock) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]]
    TS.Prof->lockReleased(Lock);
  auto It = std::find(TS.HeldSharedLocks.rbegin(), TS.HeldSharedLocks.rend(),
                      Lock);
  assert(It != TS.HeldSharedLocks.rend() &&
         "releasing a shared lock that is not held");
  TS.HeldSharedLocks.erase(std::next(It).base());
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharedLockRelease, Lock, 0);
}

bool Runtime::holdsLockShared(const void *Lock) {
  ThreadState &TS = currentThread();
  return std::find(TS.HeldSharedLocks.begin(), TS.HeldSharedLocks.end(),
                   Lock) != TS.HeldSharedLocks.end();
}

bool Runtime::checkRwLockHeldForRead(const void *Lock, const void *Addr,
                                     const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkRwLockHeldForReadImpl(Lock, Addr, Site);
    TS.Prof->commit(Site, obs::CheckKind::LockCheck, 0, T0);
    return Ok;
  }
  return checkRwLockHeldForReadImpl(Lock, Addr, Site);
}

bool Runtime::checkRwLockHeldForReadImpl(const void *Lock, const void *Addr,
                                         const AccessSite *Site) {
  Stats.LockChecks.fetch_add(1, std::memory_order_relaxed);
  if (holdsLock(Lock) || holdsLockShared(Lock))
    return true;
  Stats.LockViolations.fetch_add(1, std::memory_order_relaxed);
  ConflictReport Report;
  Report.Kind = ReportKind::LockViolation;
  Report.Address = reinterpret_cast<uintptr_t>(Addr);
  Report.WhoTid = currentThread().Tid;
  Report.WhoSite = Site;
  Sink.report(Report);
  if (Config.AbortOnError) {
    std::fprintf(stderr, "%s", Report.format().c_str());
    std::abort();
  }
  return false;
}

bool Runtime::checkRwLockHeldForWrite(const void *Lock, const void *Addr,
                                      const AccessSite *Site) {
  // A shared hold does not license writes.
  return checkLockHeld(Lock, Addr, Site);
}

void *Runtime::scast(void **Slot, size_t ObjSize, const AccessSite *Site) {
  ThreadState &TS = currentThread();
  void *Obj = rcLoad(Slot);
  // Null-out the source so no access path with the old sharing mode
  // remains (Figure 7, line 2). The store goes through the RC barrier,
  // so profiled runs attribute it like any other counted store.
  if (TS.Prof) [[unlikely]]
    rcStoreProfiled(Slot, nullptr, Site, TS);
  else
    Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot), 0, TS);
  if (!Obj)
    return nullptr;
  checkCast(Obj, ObjSize, Site);
  return Obj;
}

bool Runtime::checkCast(void *Obj, size_t ObjSize, const AccessSite *Site) {
  ThreadState &TS = currentThread();
  if (TS.Prof) [[unlikely]] {
    uint64_t T0 = TS.Prof->begin();
    bool Ok = checkCastImpl(Obj, ObjSize, Site);
    TS.Prof->commit(Site, obs::CheckKind::SharingCast, 0, T0);
    return Ok;
  }
  return checkCastImpl(Obj, ObjSize, Site);
}

bool Runtime::checkCastImpl(void *Obj, size_t ObjSize, const AccessSite *Site) {
  Stats.SharingCasts.fetch_add(1, std::memory_order_relaxed);
  if (!Obj)
    return true;
  ThreadState &TS = currentThread();
  // After the source has been nulled and accounted, any remaining counted
  // reference means the object is reachable under its old mode: reject.
  int64_t Count = Rc->getRefCount(reinterpret_cast<uintptr_t>(Obj), TS);
  if (Config.Obs) [[unlikely]]
    publishEvent(obs::EventKind::SharingCast, Obj, Count);
  if (Count > 0 && Config.Rc != RcMode::None) {
    Stats.CastErrors.fetch_add(1, std::memory_order_relaxed);
    ConflictReport Report;
    Report.Kind = ReportKind::CastError;
    Report.Address = reinterpret_cast<uintptr_t>(Obj);
    Report.WhoTid = TS.Tid;
    Report.WhoSite = Site;
    Sink.report(Report);
    if (Config.AbortOnError) {
      std::fprintf(stderr, "%s", Report.format().c_str());
      std::abort();
    }
    return false;
  }
  // The cast succeeded: clear the object's reader/writer history ("past
  // accesses by other threads no longer constitute unintended sharing").
  size_t Size = ObjSize;
  if (Size == 0 && TheHeap->isSharcObject(Obj))
    Size = TheHeap->allocationSize(Obj);
  if (Size != 0)
    Shadow->clearRange(Obj, Size);
  return true;
}

void *Runtime::allocate(size_t Size) { return TheHeap->allocate(Size); }

void Runtime::deallocate(void *Ptr) {
  TheHeap->deallocate(Ptr);
  // Bound the deferred-free backlog: a collection releases it.
  if (TheHeap->getNumDeferred() >= DeferredFreeThreshold) {
    if (Config.Rc == RcMode::LevanoniPetrank)
      Rc->collect(currentThread());
    else
      TheHeap->releaseDeferred();
  }
}

StatsSnapshot Runtime::getStats() {
  // Fold dynamic per-thread metadata (logs) into LogBytes.
  uint64_t LogBytes = 0;
  Registry.forEachState(
      [&](ThreadState &S) { LogBytes += S.memoryFootprint(); });
  Stats.LogBytes.store(LogBytes, std::memory_order_relaxed);
  // Count the reference-count table by *touched* entries: the analog of
  // the paper's minor-pagefault measure (untouched table slots never
  // fault in).
  if (Config.Rc != RcMode::None)
    Stats.RcTableBytes.store(Rc->getTable().getNumEntries() * 16,
                             std::memory_order_relaxed);
  StatsSnapshot Snapshot = Stats.snapshot();
  // Every stats poll doubles as a periodic sample on the event stream.
  if (Config.Obs) [[unlikely]]
    Config.Obs->stats(Snapshot);
  return Snapshot;
}
