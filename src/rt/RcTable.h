//===-- rt/RcTable.h - Reference count table --------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-capacity, insert-only, open-addressing hash table mapping a
/// pointer-sized value to its reference count. Keying counts by *value*
/// (rather than by a header inside the object) mirrors the paper's
/// observation on dillo that "bogus" integers cast to pointer type still
/// get counted; they cost table space (the paper's extra pagefaults) but
/// never crash the runtime.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_RCTABLE_H
#define SHARC_RT_RCTABLE_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace sharc {
namespace rt {

/// Concurrent value -> signed count map. Entries are never removed; a
/// count may drop to zero and later revive. If the table fills (capacity
/// is configured generously; see RuntimeConfig::RcTableCapacity) the
/// guard's global policy decides: Abort exits through fatalInternal,
/// Continue/Quarantine drop further counts with a one-shot warning.
class RcTable {
public:
  explicit RcTable(size_t Capacity);

  RcTable(const RcTable &) = delete;
  RcTable &operator=(const RcTable &) = delete;

  /// Adds \p Delta to the count for \p Value (Value must be nonzero).
  void add(uintptr_t Value, int64_t Delta);

  /// \returns the current count for \p Value, or 0 if never seen.
  int64_t get(uintptr_t Value) const;

  /// Number of distinct values ever counted.
  size_t getNumEntries() const {
    return NumEntries.load(std::memory_order_relaxed);
  }

  size_t memoryFootprint() const { return Capacity * sizeof(Entry); }

private:
  struct Entry {
    std::atomic<uintptr_t> Key{0};
    std::atomic<int64_t> Count{0};
  };

  Entry *findOrInsert(uintptr_t Value);
  const Entry *find(uintptr_t Value) const;

  size_t Capacity; ///< Power of two.
  std::unique_ptr<Entry[]> Entries;
  std::atomic<size_t> NumEntries{0};
  std::atomic<bool> WarnedFull{false};
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_RCTABLE_H
