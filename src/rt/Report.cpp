//===-- rt/Report.cpp -----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Report.h"

#include "obs/Sink.h"

#include <cstdio>
#include <functional>

using namespace sharc::rt;

static sharc::obs::ConflictKind toConflictKind(ReportKind Kind) {
  using CK = sharc::obs::ConflictKind;
  switch (Kind) {
  case ReportKind::ReadConflict:
    return CK::ReadConflict;
  case ReportKind::WriteConflict:
    return CK::WriteConflict;
  case ReportKind::LockViolation:
    return CK::LockViolation;
  case ReportKind::CastError:
    return CK::CastError;
  case ReportKind::LiveAfterCast:
    return CK::LiveAfterCast;
  case ReportKind::StallTimeout:
  case ReportKind::ResourceExhausted:
    return CK::RuntimeError;
  }
  return CK::RuntimeError;
}

static const char *kindName(ReportKind Kind) {
  switch (Kind) {
  case ReportKind::ReadConflict:
    return "read conflict";
  case ReportKind::WriteConflict:
    return "write conflict";
  case ReportKind::LockViolation:
    return "lock violation";
  case ReportKind::CastError:
    return "sharing cast error";
  case ReportKind::LiveAfterCast:
    return "live-after-cast warning";
  case ReportKind::StallTimeout:
    return "stall timeout";
  case ReportKind::ResourceExhausted:
    return "resource exhaustion";
  }
  return "conflict";
}

std::string ConflictReport::format() const {
  char Buf[512];
  std::string Out;
  std::snprintf(Buf, sizeof(Buf), "%s(0x%llx):\n", kindName(Kind),
                static_cast<unsigned long long>(Address));
  Out += Buf;
  if (WhoSite) {
    std::snprintf(Buf, sizeof(Buf), "  who(%u)  %s @ %s: %d\n", WhoTid,
                  WhoSite->LValue, WhoSite->File, WhoSite->Line);
    Out += Buf;
  } else {
    std::snprintf(Buf, sizeof(Buf), "  who(%u)\n", WhoTid);
    Out += Buf;
  }
  if (LastSite) {
    std::snprintf(Buf, sizeof(Buf), "  last(%u) %s @ %s: %d\n", LastTid,
                  LastSite->LValue, LastSite->File, LastSite->Line);
    Out += Buf;
  }
  return Out;
}

bool ReportSink::report(const ConflictReport &Report) {
  if (Obs) {
    sharc::obs::Event Ev;
    Ev.K = sharc::obs::EventKind::Conflict;
    Ev.Tid = Report.WhoTid;
    Ev.Addr = Report.Address;
    Ev.Value = static_cast<int64_t>(Report.LastTid);
    Ev.Extra = sharc::obs::makeConflictExtra(
        toConflictKind(Report.Kind),
        Report.WhoSite ? static_cast<uint32_t>(Report.WhoSite->Line) : 0,
        Report.LastSite ? static_cast<uint32_t>(Report.LastSite->Line) : 0);
    Obs->event(Ev);
  }
  std::lock_guard<std::mutex> Lock(Mutex);
  ++TotalViolations;
  ++TotalByKind[static_cast<size_t>(Report.Kind) % NumReportKinds];
  // Deduplicate on (kind, who-site, granule-ish address). Hash-combine into
  // a single key; collisions merely suppress an extra copy of a report.
  uint64_t Key = static_cast<uint64_t>(Report.Kind);
  Key = Key * 1000003u ^ std::hash<const void *>()(Report.WhoSite);
  Key = Key * 1000003u ^ std::hash<uintptr_t>()(Report.Address);
  if (!Seen.insert(Key).second)
    return false;
  if (Reports.size() >= MaxReports)
    return false;
  size_t KindIdx = static_cast<size_t>(Report.Kind) % NumReportKinds;
  if (MaxPerKind && RetainedPerKind[KindIdx] >= MaxPerKind)
    return false;
  ++RetainedPerKind[KindIdx];
  Reports.push_back(Report);
  return true;
}

std::vector<ConflictReport> ReportSink::takeReports() {
  std::lock_guard<std::mutex> Lock(Mutex);
  std::vector<ConflictReport> Out = std::move(Reports);
  Reports.clear();
  Seen.clear();
  for (size_t &N : RetainedPerKind)
    N = 0;
  return Out;
}

std::vector<ConflictReport> ReportSink::getReports() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reports;
}

size_t ReportSink::getNumReports() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Reports.size();
}

void ReportSink::clear() {
  std::lock_guard<std::mutex> Lock(Mutex);
  Reports.clear();
  Seen.clear();
  TotalViolations = 0;
  for (uint64_t &N : TotalByKind)
    N = 0;
  for (size_t &N : RetainedPerKind)
    N = 0;
}
