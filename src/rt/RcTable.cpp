//===-- rt/RcTable.cpp ----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/RcTable.h"

#include "rt/Guard.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

using namespace sharc::rt;

static size_t hashValue(uintptr_t Value) {
  uint64_t H = static_cast<uint64_t>(Value);
  H ^= H >> 33;
  H *= 0xFF51AFD7ED558CCDull;
  H ^= H >> 33;
  return static_cast<size_t>(H);
}

RcTable::RcTable(size_t Capacity) : Capacity(Capacity) {
  assert(Capacity != 0 && (Capacity & (Capacity - 1)) == 0 &&
         "capacity must be a power of two");
  Entries = std::make_unique<Entry[]>(Capacity);
}

RcTable::Entry *RcTable::findOrInsert(uintptr_t Value) {
  assert(Value != 0 && "null is never counted");
  size_t Mask = Capacity - 1;
  size_t Index = hashValue(Value) & Mask;
  for (size_t Probes = 0; Probes != Capacity; ++Probes) {
    Entry &E = Entries[Index];
    uintptr_t Key = E.Key.load(std::memory_order_acquire);
    if (Key == Value)
      return &E;
    if (Key == 0) {
      uintptr_t Expected = 0;
      if (E.Key.compare_exchange_strong(Expected, Value,
                                        std::memory_order_acq_rel)) {
        NumEntries.fetch_add(1, std::memory_order_relaxed);
        return &E;
      }
      if (Expected == Value)
        return &E;
    }
    Index = (Index + 1) & Mask;
  }
  // Capacity exhausted. There is no RuntimeConfig in reach here, so the
  // process-global guard policy decides: Abort dies through
  // guard::fatalInternal (exit 3, crash hooks flushed); Continue and
  // Quarantine degrade gracefully — the value's count is dropped (warned
  // once), which callers treat as "uncounted", the racy-equivalent state.
  if (guard::globalPolicy() == guard::Policy::Abort)
    guard::fatalInternal("reference count table full (capacity %zu, %llu "
                         "entries); raise RuntimeConfig::RcTableCapacity",
                         Capacity,
                         static_cast<unsigned long long>(getNumEntries()));
  if (!WarnedFull.exchange(true, std::memory_order_relaxed))
    std::fprintf(stderr,
                 "sharc: warning: reference count table full (capacity %zu); "
                 "further counts are dropped\n",
                 Capacity);
  return nullptr;
}

const RcTable::Entry *RcTable::find(uintptr_t Value) const {
  if (Value == 0)
    return nullptr;
  size_t Mask = Capacity - 1;
  size_t Index = hashValue(Value) & Mask;
  for (size_t Probes = 0; Probes != Capacity; ++Probes) {
    const Entry &E = Entries[Index];
    uintptr_t Key = E.Key.load(std::memory_order_acquire);
    if (Key == Value)
      return &E;
    if (Key == 0)
      return nullptr;
    Index = (Index + 1) & Mask;
  }
  return nullptr;
}

void RcTable::add(uintptr_t Value, int64_t Delta) {
  if (Entry *E = findOrInsert(Value))
    E->Count.fetch_add(Delta, std::memory_order_acq_rel);
}

int64_t RcTable::get(uintptr_t Value) const {
  const Entry *E = find(Value);
  return E ? E->Count.load(std::memory_order_acquire) : 0;
}
