//===-- rt/ThreadRegistry.h - Thread ids and per-thread state ---*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Assigns small thread ids (1..8n-1, matching the shadow-byte encoding of
/// Section 4.2.1) and owns per-thread state: the first-access log used to
/// clear a thread's shadow bits cheaply at exit, the per-thread
/// reference-counting logs of the adapted Levanoni-Petrank algorithm
/// (Section 4.3), and the held-lock log (Section 4.2.2).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_THREADREGISTRY_H
#define SHARC_RT_THREADREGISTRY_H

#include "rt/Profile.h"
#include "rt/RcLog.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace sharc {
namespace rt {

/// All per-thread runtime state. Allocated when a thread registers and
/// retained (in a retired list) after it exits until the next reference
/// count collection has drained its logs.
struct ThreadState {
  /// Small id, 1..maxThreads. Doubles as the shadow bit index.
  unsigned Tid = 0;

  /// Granule base addresses whose shadow cell this thread has set a bit in
  /// since the bit was last clear. Used to clear this thread's bits at exit
  /// ("the clearing operation is made efficient by logging the addresses of
  /// all of a thread's reads and writes on its first accesses").
  std::vector<uintptr_t> AccessLog;

  /// Double-buffered reference-count update logs, indexed by epoch.
  RcLog RcLogs[2];

  /// Nonzero (epoch+1) while the thread is inside an RC write barrier;
  /// the collector spins until no thread is mid-barrier in the old epoch.
  std::atomic<uint32_t> InBarrier{0};

  /// Addresses of locks this thread currently holds (Section 4.2.2). Lock
  /// nesting depth is small, so membership is a linear scan.
  std::vector<const void *> HeldLocks;

  /// Locks held in shared (reader) mode — the rwlocked extension of the
  /// paper's Section 7 ("more support for locks").
  std::vector<const void *> HeldSharedLocks;

  /// True once the thread has deregistered; retired states are kept until
  /// their RC logs have been collected.
  bool Retired = false;

  /// Per-site cost profile (sharc-prof). Allocated at registration when
  /// RuntimeConfig::Profile is set, null otherwise — the disabled check
  /// paths test this pointer, nothing more.
  std::unique_ptr<ThreadProfile> Prof;

  size_t memoryFootprint() const {
    return AccessLog.capacity() * sizeof(uintptr_t) +
           RcLogs[0].memoryFootprint() + RcLogs[1].memoryFootprint() +
           HeldLocks.capacity() * sizeof(void *) +
           (Prof ? Prof->tableBytes() : 0);
  }
};

/// Hands out thread ids and tracks live and retired ThreadStates. The
/// registry is owned by the Runtime; one instance per runtime lifetime.
class ThreadRegistry {
public:
  explicit ThreadRegistry(unsigned MaxThreads);
  ~ThreadRegistry();

  ThreadRegistry(const ThreadRegistry &) = delete;
  ThreadRegistry &operator=(const ThreadRegistry &) = delete;

  /// Registers the calling thread and returns its state. Asserts if more
  /// than MaxThreads threads are simultaneously live (the paper's encoding
  /// supports 8n-1 concurrent threads).
  ThreadState *registerThread();

  /// Marks \p State retired and frees its id for reuse. The state object
  /// itself stays alive until purgeRetired() (called after a collection).
  void deregisterThread(ThreadState *State);

  /// Invokes \p Fn on every live and retired ThreadState, holding the
  /// structural lock for the duration.
  template <typename FnT> void forEachState(FnT Fn) {
    std::lock_guard<std::mutex> Lock(Mutex);
    forEachStateUnlocked(Fn);
  }

  /// Takes the structural lock, preventing register/deregister/purge until
  /// the returned lock is released. The RC collector holds this for a whole
  /// collection so the thread set stays consistent across its passes.
  std::unique_lock<std::mutex> lockStructure() {
    return std::unique_lock<std::mutex>(Mutex);
  }

  /// Iteration usable while the caller holds lockStructure().
  template <typename FnT> void forEachStateUnlocked(FnT Fn) {
    for (auto &State : Live)
      if (State)
        Fn(*State);
    for (auto &State : Retired)
      Fn(*State);
  }

  /// Frees retired states whose logs have been drained by the collector.
  void purgeRetired();

  /// purgeRetired() for callers already holding lockStructure().
  void purgeRetiredUnlocked();

  unsigned getMaxThreads() const { return MaxThreads; }
  unsigned getNumLive() const;
  /// High-water mark of simultaneously registered threads.
  unsigned getPeakLive() const { return PeakLive; }
  /// Total registrations over the registry's lifetime (ids reused or
  /// not) — the stats endpoint's sharc_threads_spawned_total.
  uint64_t getNumEverRegistered() const {
    return EverRegistered.load(std::memory_order_relaxed);
  }

private:
  unsigned MaxThreads;
  mutable std::mutex Mutex;
  /// Index = tid - 1. Null when the id is free.
  std::vector<std::unique_ptr<ThreadState>> Live;
  std::vector<std::unique_ptr<ThreadState>> Retired;
  unsigned PeakLive = 0;
  std::atomic<uint64_t> EverRegistered{0};
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_THREADREGISTRY_H
