//===-- rt/RefCount.h - Sharing-cast reference counting ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reference counting for sharing casts (Sections 4.2.3 and 4.3). Counted
/// references are pointer values stored in designated *slots* (struct
/// fields and globals the static analysis finds may be subject to a
/// sharing cast; local variables are covered by the type system and are
/// not counted — see DESIGN.md). Three engines share one interface:
///
///  - None: no counting (uninstrumented baseline for ablations).
///  - Atomic: every counted store atomically decrements the old value's
///    count and increments the new value's. This is the naive scheme the
///    paper measured at "over 60%" overhead.
///  - LevanoniPetrank: the paper's adaptation of Levanoni & Petrank's
///    concurrent algorithm. Mutators append (slot, old-value) records to
///    per-thread unsynchronized logs, at most once per slot per epoch
///    (dirty bits). A thread that needs a count becomes the collector: it
///    flips the epoch, waits for threads mid-barrier on the old epoch to
///    drain (no stop-the-world), processes old logs (decrement overwritten
///    values; increment each slot's current value, unless the slot was
///    dirtied again in the live epoch, in which case the value recorded in
///    the live logs is incremented instead), and clears the old dirty bits.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_REFCOUNT_H
#define SHARC_RT_REFCOUNT_H

#include "rt/Config.h"
#include "rt/DirtyTable.h"
#include "rt/RcTable.h"
#include "rt/Stats.h"
#include "rt/ThreadRegistry.h"

#include <atomic>
#include <mutex>

namespace sharc {
namespace rt {

/// The reference-counting engine. One instance per Runtime.
class RefCountEngine {
public:
  RefCountEngine(const RuntimeConfig &Config, RuntimeStats &Stats,
                 ThreadRegistry &Registry);

  RefCountEngine(const RefCountEngine &) = delete;
  RefCountEngine &operator=(const RefCountEngine &) = delete;

  /// Initializes a counted slot to null without logging (there is no
  /// previous value to account for). Must be called before the first
  /// storePtr through the slot.
  static void initSlot(uintptr_t *Slot) {
    std::atomic_ref<uintptr_t>(*Slot).store(0, std::memory_order_relaxed);
  }

  /// The counted-store write barrier: *Slot = New, with the engine's
  /// bookkeeping. Slot must be 8-byte aligned and must remain readable
  /// until the next collection (the sharc heap defers frees accordingly).
  void storePtr(uintptr_t *Slot, uintptr_t New, ThreadState &TS);

  /// Plain counted load.
  static uintptr_t loadPtr(const uintptr_t *Slot) {
    return std::atomic_ref<uintptr_t>(*const_cast<uintptr_t *>(Slot))
        .load(std::memory_order_acquire);
  }

  /// \returns the number of counted references to \p Value. Under the
  /// LevanoniPetrank engine this performs a collection first, so the
  /// result reflects all barriers that completed before the call.
  int64_t getRefCount(uintptr_t Value, ThreadState &TS);

  /// Runs one collection cycle (LevanoniPetrank only; no-op otherwise).
  void collect(ThreadState &TS);

  RcMode getMode() const { return Config.Rc; }
  const RcTable &getTable() const { return Table; }

  /// Registers a callback run at the end of each collection while the
  /// collector lock is still held; the heap uses this to release deferred
  /// frees (slots inside freed objects must stay readable until the logs
  /// mentioning them have been processed).
  void setPostCollectHook(void (*Hook)(void *), void *Ctx) {
    PostCollectHook = Hook;
    PostCollectCtx = Ctx;
  }

private:
  void storeLevanoniPetrank(uintptr_t *Slot, uintptr_t New, ThreadState &TS);
  void collectLocked();

  const RuntimeConfig &Config;
  RuntimeStats &Stats;
  ThreadRegistry &Registry;
  RcTable Table;
  DirtyTable Dirty;
  std::atomic<uint32_t> Epoch{0};
  std::mutex CollectorMutex;
  void (*PostCollectHook)(void *) = nullptr;
  void *PostCollectCtx = nullptr;
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_REFCOUNT_H
