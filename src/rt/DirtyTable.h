//===-- rt/DirtyTable.h - Per-slot epoch dirty bits -------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tracks, per reference slot and per epoch, whether the slot has already
/// been logged this epoch ("dirty"). The paper keeps "two arrays of dirty
/// bits"; we key by slot address in a sharded hash map so slots anywhere in
/// memory (heap fields, globals) can be counted without registration.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_DIRTYTABLE_H
#define SHARC_RT_DIRTYTABLE_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace sharc {
namespace rt {

/// Sharded slot -> {dirty-in-epoch-0, dirty-in-epoch-1} map.
class DirtyTable {
  static constexpr size_t NumShards = 64;

public:
  /// Marks \p Slot dirty in \p Epoch. \returns true if it was already
  /// dirty (i.e. the caller must not log it again).
  bool testAndSet(uintptr_t Slot, unsigned Epoch) {
    Shard &S = shardFor(Slot);
    std::lock_guard<std::mutex> Lock(S.Mutex);
    uint8_t &Bits = S.Map[Slot];
    uint8_t Bit = uint8_t(1) << Epoch;
    bool WasDirty = (Bits & Bit) != 0;
    Bits |= Bit;
    S.Size.store(S.Map.size(), std::memory_order_release);
    return WasDirty;
  }

  /// \returns true if \p Slot is dirty in \p Epoch.
  bool isDirty(uintptr_t Slot, unsigned Epoch) const {
    const Shard &S = shardFor(Slot);
    if (S.Size.load(std::memory_order_acquire) == 0)
      return false;
    std::lock_guard<std::mutex> Lock(S.Mutex);
    auto It = S.Map.find(Slot);
    return It != S.Map.end() && (It->second & (uint8_t(1) << Epoch)) != 0;
  }

  /// Clears every slot's dirty bit for \p Epoch (collector only). Empty
  /// shards are skipped without taking their locks, keeping frequent
  /// collections (one per sharing cast) cheap.
  void clearEpoch(unsigned Epoch) {
    uint8_t Bit = uint8_t(1) << Epoch;
    for (Shard &S : Shards) {
      if (S.Size.load(std::memory_order_acquire) == 0)
        continue;
      std::lock_guard<std::mutex> Lock(S.Mutex);
      for (auto It = S.Map.begin(); It != S.Map.end();) {
        It->second &= ~Bit;
        if (It->second == 0)
          It = S.Map.erase(It);
        else
          ++It;
      }
      S.Size.store(S.Map.size(), std::memory_order_release);
    }
  }

  size_t memoryFootprint() const {
    size_t Entries = 0;
    for (const Shard &S : Shards) {
      std::lock_guard<std::mutex> Lock(S.Mutex);
      Entries += S.Map.size();
    }
    // Rough per-entry cost of an unordered_map node.
    return Entries * (sizeof(uintptr_t) + sizeof(uint8_t) + 3 * sizeof(void *));
  }

private:
  struct Shard {
    mutable std::mutex Mutex;
    std::unordered_map<uintptr_t, uint8_t> Map;
    std::atomic<size_t> Size{0};
  };

  Shard &shardFor(uintptr_t Slot) {
    return Shards[(Slot >> 3) % NumShards];
  }
  const Shard &shardFor(uintptr_t Slot) const {
    return Shards[(Slot >> 3) % NumShards];
  }

  Shard Shards[NumShards];
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_DIRTYTABLE_H
