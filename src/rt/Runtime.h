//===-- rt/Runtime.h - SharC runtime facade ---------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Runtime ties the runtime subsystems together and is the single
/// entry point instrumented code (and the annotation wrappers in
/// rt/Annotations.h) calls into:
///
///   - dynamic-mode access checks (ShadowMemory, Section 4.2.1)
///   - locked-mode lock-held checks (per-thread lock logs, Section 4.2.2)
///   - sharing casts (null-out + sole-reference check, Section 4.2.3)
///   - counted pointer stores (RefCountEngine, Section 4.3)
///   - a granule-aligned heap with deferred frees
///
/// Lifecycle: Runtime::init(config) creates the global instance;
/// Runtime::shutdown() destroys it (tests cycle it per fixture). Threads
/// are registered automatically on first use or explicitly via
/// ScopedThreadRegistration, and must deregister before the ids run out
/// (sharc::Thread in Annotations.h handles this).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_RUNTIME_H
#define SHARC_RT_RUNTIME_H

#include "obs/Event.h"
#include "rt/AccessSite.h"
#include "rt/Config.h"
#include "rt/Guard.h"
#include "rt/Heap.h"
#include "rt/RefCount.h"
#include "rt/Report.h"
#include "rt/ShadowMemory.h"
#include "rt/Stats.h"
#include "rt/StatsServer.h"
#include "rt/ThreadRegistry.h"

#include <atomic>

#include <map>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace sharc {
namespace rt {

/// The global SharC runtime.
class Runtime {
public:
  /// Creates the global runtime with \p Config. Asserts if one is already
  /// live.
  static void init(const RuntimeConfig &Config = RuntimeConfig());

  /// Destroys the global runtime. Outstanding registered threads must have
  /// deregistered (except the calling thread, which is deregistered
  /// implicitly).
  static void shutdown();

  /// \returns the live global runtime; asserts if none.
  static Runtime &get();

  static bool isLive();

  //===--------------------------------------------------------------------===
  // Threads
  //===--------------------------------------------------------------------===

  /// \returns this thread's state, registering it on first use.
  ThreadState &currentThread();

  /// Deregisters the calling thread: clears its shadow bits and releases
  /// its id for reuse.
  void deregisterCurrentThread();

  //===--------------------------------------------------------------------===
  // Dynamic-mode checks
  //===--------------------------------------------------------------------===

  // The disabled fast path is one predicted branch, profiling included:
  // ThreadState::Prof is only tested on the cold observed path, which
  // is also where profiled runs time the shadow check (rt/Profile.h).
  bool checkRead(const void *Addr, size_t Size, const AccessSite *Site) {
    ThreadState &T = currentThread();
    if (Config.Obs) [[unlikely]]
      return observedCheckRead(T, Addr, Size, Site);
    return Shadow->checkRead(Addr, Size, T, Site);
  }
  bool checkWrite(const void *Addr, size_t Size, const AccessSite *Site) {
    ThreadState &T = currentThread();
    if (Config.Obs) [[unlikely]]
      return observedCheckWrite(T, Addr, Size, Site);
    return Shadow->checkWrite(Addr, Size, T, Site);
  }

  //===--------------------------------------------------------------------===
  // Locked-mode checks
  //===--------------------------------------------------------------------===

  /// Records that the current thread acquired the lock at \p Lock.
  void onLockAcquire(const void *Lock);

  /// Records that the current thread released the lock at \p Lock.
  void onLockRelease(const void *Lock);

  /// True when per-site cost profiling is on (sharc::Mutex switches to
  /// its timed acquire path). Profiling requires an obs sink to drain
  /// into; without one the flag is ignored.
  bool profilingEnabled() const { return Config.Profile && Config.Obs; }

  /// Profiling-only: announces that the current thread is about to
  /// block on \p Lock (publishes a LockWait event for wait slices in
  /// the Chrome export; Extra carries the acquirer's line).
  void onLockWait(const void *Lock, const AccessSite *Site = nullptr);

  /// onLockAcquire plus contention accounting: \p WaitCycles of TSC
  /// time was spent before the lock was obtained, \p Site names the
  /// acquirer (null falls back to the lock's declaration site, if the
  /// caller tracked one).
  void onLockAcquireProfiled(const void *Lock, const AccessSite *Site,
                             uint64_t WaitCycles, bool Contended);
  void onSharedLockAcquireProfiled(const void *Lock, const AccessSite *Site,
                                   uint64_t WaitCycles, bool Contended);

  /// \returns true if the current thread holds \p Lock.
  bool holdsLock(const void *Lock);

  //===--------------------------------------------------------------------===
  // Stall watchdog (sharc-guard, DESIGN.md §12)
  //===--------------------------------------------------------------------===

  /// Non-zero when timed lock acquisition / cast-drain waits are armed;
  /// sharc::Mutex switches to its guarded acquire path.
  uint64_t watchdogMillis() const { return Config.Guard.WatchdogMillis; }

  /// Records the current thread as the holder of \p Lock with its
  /// acquisition site, so a later stall report can name it. Called only
  /// from the watchdog-armed acquire path (cold).
  void noteLockHolder(const void *Lock, const AccessSite *Site);

  /// Files a StallTimeout report for a lock wait that exceeded the
  /// watchdog budget: who = the waiter at \p Site, last = the recorded
  /// holder and its acquisition site. Applies the violation policy
  /// (under Policy::Abort this does not return).
  void reportLockStall(const void *Lock, const AccessSite *Site);

  /// Same, for a sharing-cast refcount drain that never reached zero.
  void reportCastStall(const void *Obj, const AccessSite *Site,
                       int64_t RemainingCount);

  /// Checks that \p Lock is held for an access to \p Addr, filing a
  /// LockViolation report if not.
  bool checkLockHeld(const void *Lock, const void *Addr,
                     const AccessSite *Site);

  //===--------------------------------------------------------------------===
  // Reader-writer locked mode (the Section 7 "more support for locks"
  // extension): rwlocked(L) cells are readable under a shared or
  // exclusive hold of L and writable only under an exclusive hold.
  //===--------------------------------------------------------------------===

  void onSharedLockAcquire(const void *Lock);
  void onSharedLockRelease(const void *Lock);
  bool holdsLockShared(const void *Lock);

  /// Read intent on an rwlocked cell: shared or exclusive hold suffices.
  bool checkRwLockHeldForRead(const void *Lock, const void *Addr,
                              const AccessSite *Site);
  /// Write intent on an rwlocked cell: an exclusive hold is required.
  bool checkRwLockHeldForWrite(const void *Lock, const void *Addr,
                               const AccessSite *Site);

  //===--------------------------------------------------------------------===
  // Reference counting and sharing casts
  //===--------------------------------------------------------------------===

  /// Initializes a counted slot to null (no previous value accounted).
  void rcInitSlot(void **Slot) {
    RefCountEngine::initSlot(reinterpret_cast<uintptr_t *>(Slot));
  }

  /// Counted pointer store: *Slot = Value with RC bookkeeping. \p Site
  /// attributes the barrier cost when profiling; null is fine.
  void rcStore(void **Slot, void *Value, const AccessSite *Site = nullptr) {
    ThreadState &T = currentThread();
    if (T.Prof) [[unlikely]] {
      rcStoreProfiled(Slot, Value, Site, T);
      return;
    }
    Rc->storePtr(reinterpret_cast<uintptr_t *>(Slot),
                 reinterpret_cast<uintptr_t>(Value), T);
  }

  /// Counted pointer load.
  void *rcLoad(void *const *Slot) const {
    return reinterpret_cast<void *>(RefCountEngine::loadPtr(
        reinterpret_cast<const uintptr_t *>(Slot)));
  }

  /// \returns the number of counted references to \p Value; performs a
  /// collection first under the Levanoni-Petrank engine.
  int64_t refCount(const void *Value) {
    return Rc->getRefCount(reinterpret_cast<uintptr_t>(Value),
                           currentThread());
  }

  /// The sharing cast (Figure 7): nulls *Slot, then checks that no other
  /// counted reference to the object remains; on failure files a CastError
  /// report. On success clears the object's reader/writer sets so past
  /// accesses under the old mode are forgotten. \p ObjSize may be 0 for
  /// sharc-heap objects (looked up from the allocation header).
  /// \returns the object pointer (the cast's value), or the pointer
  /// unchanged with a report filed if the check fails.
  void *scast(void **Slot, size_t ObjSize, const AccessSite *Site);

  /// The sole-reference check of a sharing cast, for sources that are
  /// uncounted locals (the type system covers locals; the runtime only
  /// counts stored references). The caller must already have nulled its
  /// local. \returns true if no counted reference to \p Obj remains; files
  /// a CastError report otherwise. On success clears the object's
  /// reader/writer sets.
  bool checkCast(void *Obj, size_t ObjSize, const AccessSite *Site);

  //===--------------------------------------------------------------------===
  // Heap
  //===--------------------------------------------------------------------===

  void *allocate(size_t Size);
  void deallocate(void *Ptr);
  size_t allocationSize(const void *Ptr) const {
    return TheHeap->allocationSize(Ptr);
  }

  //===--------------------------------------------------------------------===
  // Introspection
  //===--------------------------------------------------------------------===

  const RuntimeConfig &getConfig() const { return Config; }
  StatsSnapshot getStats();
  ReportSink &getReports() { return Sink; }
  ShadowMemory &getShadow() { return *Shadow; }
  RefCountEngine &getRc() { return *Rc; }
  ThreadRegistry &getRegistry() { return Registry; }

  /// sharc-live (DESIGN.md §13): one coherent snapshot for the stats
  /// endpoint. Safe to call from the server thread — it never registers
  /// the caller as a checked thread and never publishes to the obs sink
  /// (scrapes must not perturb the trace under observation).
  live::LiveSnapshot liveSnapshot();

  /// The endpoint, when Config.StatsAddr / SHARC_STATS_ADDR armed one
  /// at init; null otherwise. Tests read boundAddress() off it.
  live::StatsServer *getLiveServer() { return LiveServer.get(); }

private:
  explicit Runtime(const RuntimeConfig &Config);
  ~Runtime();

  /// Out-of-line cold path: forwards one access event to Config.Obs.
  void publishAccess(obs::EventKind K, const void *Addr, size_t Size,
                     unsigned Tid);
  /// Same, for lock transitions and sharing casts.
  void publishEvent(obs::EventKind K, const void *Addr, int64_t Value);

  /// Cold observed paths: profiling (when ThreadState::Prof is live)
  /// plus event publication, in program order.
  bool observedCheckRead(ThreadState &T, const void *Addr, size_t Size,
                         const AccessSite *Site);
  bool observedCheckWrite(ThreadState &T, const void *Addr, size_t Size,
                          const AccessSite *Site);
  void rcStoreProfiled(void **Slot, void *Value, const AccessSite *Site,
                       ThreadState &T);
  bool checkLockHeldImpl(const void *Lock, const void *Addr,
                         const AccessSite *Site);
  bool checkRwLockHeldForReadImpl(const void *Lock, const void *Addr,
                                  const AccessSite *Site);
  bool checkCastImpl(void *Obj, size_t ObjSize, const AccessSite *Site);

  /// Quarantine bookkeeping for lock-check violations (shadow-granule
  /// quarantine lives in ShadowMemory). Both are consulted only under
  /// Policy::Quarantine, behind one predictable config-byte compare.
  bool isAddrQuarantined(const void *Addr);
  void quarantineAddr(const void *Addr);

  /// Folds per-thread metadata into the counters and snapshots them,
  /// without the obs stats-sample side effect of getStats() — what the
  /// scrape path uses so scraping never perturbs the trace.
  StatsSnapshot computeStats();

  RuntimeConfig Config;
  RuntimeStats Stats;
  ReportSink Sink;
  ThreadRegistry Registry;
  std::unique_ptr<ShadowMemory> Shadow;
  std::unique_ptr<RefCountEngine> Rc;
  std::unique_ptr<Heap> TheHeap;
  /// Guard-layer cold state: quarantined lock-check addresses and, when
  /// the watchdog is armed, who holds which lock (for stall reports).
  std::mutex GuardMutex;
  std::unordered_set<uintptr_t> QuarantinedAddrs;
  struct LockHolderInfo {
    unsigned Tid = 0;
    const AccessSite *Site = nullptr;
  };
  std::map<uintptr_t, LockHolderInfo> LockHolders;
  /// Monotonically increasing instance id; lets the thread-local state
  /// cache detect a runtime that was shut down and re-initialized.
  uint64_t Generation;
  /// Live lock contention aggregates for the stats endpoint, bumped on
  /// the profiled (cold) lock paths only — the unprofiled fast path
  /// touches none of these.
  std::atomic<uint64_t> LiveLockAcquires{0};
  std::atomic<uint64_t> LiveLockContended{0};
  std::atomic<uint64_t> LiveLockWaitUnits{0};
  std::atomic<uint64_t> LiveLockHoldUnits{0};
  /// Declared last so it is destroyed first: the server thread reads
  /// the members above via liveSnapshot() until stop() joins it.
  std::unique_ptr<live::StatsServer> LiveServer;
};

/// RAII registration of the calling thread with the global runtime.
class ScopedThreadRegistration {
public:
  ScopedThreadRegistration() { (void)Runtime::get().currentThread(); }
  ~ScopedThreadRegistration() {
    if (Runtime::isLive())
      Runtime::get().deregisterCurrentThread();
  }
  ScopedThreadRegistration(const ScopedThreadRegistration &) = delete;
  ScopedThreadRegistration &
  operator=(const ScopedThreadRegistration &) = delete;
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_RUNTIME_H
