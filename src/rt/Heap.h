//===-- rt/Heap.h - Granule-aligned checked heap ----------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharc-managed heap. Allocations are aligned to the shadow granule
/// ("SharC ensures that malloc allocates objects on a 16-byte boundary" --
/// Section 4.5), carry a size header so free() can clear the whole object's
/// reader/writer sets, and are *deferred-freed*: the underlying memory is
/// not returned to the system until the next reference-count collection,
/// because counted slots inside a freed object may still be named by
/// pending Levanoni-Petrank log entries that the collector will read.
/// (This mirrors Heapsafe-style delayed frees from the authors' prior
/// work, which SharC builds on.)
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_HEAP_H
#define SHARC_RT_HEAP_H

#include "rt/Config.h"
#include "rt/Report.h"
#include "rt/Stats.h"

#include <cstddef>
#include <mutex>
#include <vector>

namespace sharc {
namespace rt {

class ShadowMemory;

/// Granule-aligned allocator with size headers and deferred frees.
class Heap {
public:
  Heap(const RuntimeConfig &Config, RuntimeStats &Stats, ShadowMemory &Shadow,
       ReportSink &Sink);
  ~Heap();

  Heap(const Heap &) = delete;
  Heap &operator=(const Heap &) = delete;

  /// Allocates \p Size bytes aligned to the granule size. Never returns
  /// null: OOM files a ResourceExhausted report and dies through
  /// guard::fatalInternal (exit 3, crash hooks flushed).
  void *allocate(size_t Size);

  /// Logically frees \p Ptr: clears its shadow state immediately and
  /// queues the block; physical release happens at releaseDeferred().
  void deallocate(void *Ptr);

  /// \returns the requested size of a live allocation.
  size_t allocationSize(const void *Ptr) const;

  /// \returns true if \p Ptr is the payload of a live sharc allocation.
  bool isSharcObject(const void *Ptr) const;

  /// Returns all logically-freed blocks to the system. Called from the
  /// reference-count engine's post-collection hook.
  void releaseDeferred();

  /// Number of blocks awaiting physical release; the Runtime triggers a
  /// collection when this grows too large.
  size_t getNumDeferred() const;

private:
  struct Header;
  Header *headerFor(const void *Payload) const;

  const RuntimeConfig &Config;
  RuntimeStats &Stats;
  ShadowMemory &Shadow;
  ReportSink &Sink;
  size_t HeaderBytes;

  mutable std::mutex Mutex;
  std::vector<void *> Deferred;
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_HEAP_H
