//===-- rt/Profile.h - Per-thread site-cost profiling -----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharc-prof runtime half (DESIGN.md §11): a per-thread site-stats
/// table keyed by AccessSite*, counting every profiled check (count,
/// bytes) and timing a 1-in-2^k sample of them with the TSC, plus
/// per-lock wait/hold accounting with acquirer-site attribution.
///
/// Each ThreadProfile is owned and mutated by exactly one thread — the
/// table is lock-free by construction, not by atomics. It is drained
/// into obs SiteProfile/LockProfile/SelfOverhead records when the
/// thread retires (Runtime::deregisterCurrentThread) or the runtime
/// shuts down. The profiler's own cost is tracked alongside and leaves
/// in the SelfOverhead record, so the instrumentation is
/// self-accounting.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_PROFILE_H
#define SHARC_RT_PROFILE_H

#include "obs/ProfileRecord.h"
#include "rt/AccessSite.h"

#include <cstdint>
#include <vector>

#if defined(__x86_64__) || defined(__i386__)
#include <x86intrin.h>
#else
#include <chrono>
#endif

namespace sharc {
namespace obs {
class Sink;
} // namespace obs

namespace rt {

/// Cheap monotonic cycle counter. TSC on x86, the virtual counter on
/// aarch64, a steady_clock fallback elsewhere. Only deltas are
/// meaningful, and only within one thread.
inline uint64_t readTsc() {
#if defined(__x86_64__) || defined(__i386__)
  return __rdtsc();
#elif defined(__aarch64__)
  uint64_t V;
  asm volatile("mrs %0, cntvct_el0" : "=r"(V));
  return V;
#else
  return static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
#endif
}

class ThreadProfile {
public:
  /// One in 2^SampleShift profiled operations is TSC-timed.
  explicit ThreadProfile(unsigned SampleShift)
      : SampleMask((uint64_t(1) << SampleShift) - 1) {
    Slots.resize(64);
  }

  /// Starts one profiled operation. \returns the start timestamp when
  /// this operation is in the timing sample, 0 otherwise.
  uint64_t begin() {
    ++Ops;
    return (Ops & SampleMask) == 0 ? readTsc() : 0;
  }

  /// Finishes the operation begun by the matching begin(): bumps the
  /// (Site, Kind) slot and, for sampled operations, attributes the
  /// checked work to the site and the bookkeeping to the profiler
  /// itself.
  void commit(const AccessSite *Site, obs::CheckKind Kind, uint64_t Bytes,
              uint64_t Begin) {
    uint64_t Mid = Begin ? readTsc() : 0;
    Slot &S = findSlot(Site, Kind);
    ++S.Count;
    S.Bytes += Bytes;
    if (Begin) {
      S.Cycles += Mid - Begin;
      ++S.Samples;
      ++SelfSamples;
      SelfCycles += readTsc() - Mid;
    }
  }

  /// Lock bookkeeping, called from Runtime::onLock*Profiled.
  void lockAcquired(const void *Lock, const AccessSite *Site,
                    uint64_t WaitCycles, bool Contended);
  /// \returns the hold duration in cycles (0 when no matching hold was
  /// tracked) so the caller can feed live contention aggregates.
  uint64_t lockReleased(const void *Lock);

  /// Emits every populated slot plus one SelfOverhead record to Sink,
  /// then clears the table (drains are idempotent per epoch of data).
  void drainTo(obs::Sink &Sink, uint32_t Tid);

  size_t tableBytes() const {
    return Slots.capacity() * sizeof(Slot) +
           LockStats.capacity() * sizeof(LockSlot) +
           Holds.capacity() * sizeof(Hold);
  }

  uint64_t opCount() const { return Ops; }

private:
  struct Slot {
    const AccessSite *Site = nullptr;
    uint8_t Kind = 0;
    bool Used = false;
    uint64_t Count = 0;
    uint64_t Bytes = 0;
    uint64_t Cycles = 0;
    uint64_t Samples = 0;
  };

  struct LockSlot {
    const void *Lock = nullptr;
    const AccessSite *Site = nullptr;
    uint64_t Acquires = 0;
    uint64_t Contended = 0;
    uint64_t WaitCycles = 0;
    uint64_t HoldCycles = 0;
    uint64_t WaitHist[obs::NumHistBuckets] = {};
    uint64_t HoldHist[obs::NumHistBuckets] = {};
  };

  struct Hold {
    const void *Lock = nullptr;
    uint64_t Start = 0;
    size_t Idx = 0; // into LockStats
  };

  Slot &findSlot(const AccessSite *Site, obs::CheckKind Kind);
  void grow();
  size_t findLock(const void *Lock, const AccessSite *Site);

  // Open-addressed, power-of-two sized, keyed by (Site, Kind).
  std::vector<Slot> Slots;
  size_t UsedSlots = 0;

  // Locks per thread are few; linear scans beat hashing here.
  std::vector<LockSlot> LockStats;
  std::vector<Hold> Holds;

  uint64_t SampleMask;
  uint64_t Ops = 0;         // profiled operations seen
  uint64_t SelfCycles = 0;  // profiler bookkeeping cost (sampled)
  uint64_t SelfSamples = 0; // ops contributing to SelfCycles
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_PROFILE_H
