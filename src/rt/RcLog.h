//===-- rt/RcLog.h - Per-thread reference update logs -----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-thread, mostly-unsynchronized update log at the heart of the
/// adapted Levanoni-Petrank algorithm (Section 4.3). A log records, for
/// the first write to each slot in an epoch, the slot address and the value
/// it held before the write.
///
/// The log is a linked list of fixed-size chunks so that entries never
/// move: the owning thread appends with only a release store of the size
/// counter, and the collector may concurrently scan the *live* epoch's log
/// (needed for the "dirty bit set again" case) without locking.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_RCLOG_H
#define SHARC_RT_RCLOG_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace sharc {
namespace rt {

/// One logged reference update: the slot written and its previous value.
struct RcLogEntry {
  uintptr_t Slot = 0;
  uintptr_t Old = 0;
};

/// Append-only chunked log. push() may only be called by the owning
/// thread; forEach()/findOldFor() may be called concurrently by the
/// collector; clear() may only be called by the collector after the epoch
/// handshake guarantees the owner will not append to this log again.
class RcLog {
  static constexpr size_t ChunkSize = 256;

  struct Chunk {
    RcLogEntry Entries[ChunkSize];
    std::atomic<Chunk *> Next{nullptr};
  };

public:
  RcLog() = default;
  ~RcLog() { freeChunks(); }

  RcLog(const RcLog &) = delete;
  RcLog &operator=(const RcLog &) = delete;

  /// Appends an entry (owner thread only).
  void push(uintptr_t Slot, uintptr_t Old) {
    size_t N = Size.load(std::memory_order_relaxed);
    if (!Head) {
      Head = new Chunk();
      Tail = Head;
    } else if (N % ChunkSize == 0 && N != 0) {
      Chunk *NewChunk = new Chunk();
      Tail->Next.store(NewChunk, std::memory_order_release);
      Tail = NewChunk;
    }
    Tail->Entries[N % ChunkSize] = RcLogEntry{Slot, Old};
    Size.store(N + 1, std::memory_order_release);
  }

  bool empty() const { return Size.load(std::memory_order_acquire) == 0; }

  size_t size() const { return Size.load(std::memory_order_acquire); }

  /// Invokes Fn(Entry) for every entry present at call time. Safe against
  /// a concurrently appending owner.
  template <typename FnT> void forEach(FnT Fn) const {
    size_t N = Size.load(std::memory_order_acquire);
    const Chunk *C = Head;
    for (size_t I = 0; I < N; ++I) {
      if (I != 0 && I % ChunkSize == 0)
        C = C->Next.load(std::memory_order_acquire);
      Fn(C->Entries[I % ChunkSize]);
    }
  }

  /// \returns the Old value of the first entry for \p Slot, through
  /// \p Found; false if no entry mentions the slot.
  bool findOldFor(uintptr_t Slot, uintptr_t &Found) const {
    bool Hit = false;
    forEach([&](const RcLogEntry &E) {
      if (!Hit && E.Slot == Slot) {
        Found = E.Old;
        Hit = true;
      }
    });
    return Hit;
  }

  /// Drops all entries and returns chunks for reuse (collector only, after
  /// the epoch handshake).
  void clear() {
    Size.store(0, std::memory_order_release);
    // Keep the first chunk to avoid churn; free the rest.
    if (Head) {
      Chunk *C = Head->Next.exchange(nullptr, std::memory_order_acq_rel);
      while (C) {
        Chunk *Next = C->Next.load(std::memory_order_relaxed);
        delete C;
        C = Next;
      }
      Tail = Head;
    }
  }

  size_t memoryFootprint() const {
    size_t Bytes = 0;
    for (const Chunk *C = Head; C; C = C->Next.load(std::memory_order_acquire))
      Bytes += sizeof(Chunk);
    return Bytes;
  }

private:
  void freeChunks() {
    Chunk *C = Head;
    while (C) {
      Chunk *Next = C->Next.load(std::memory_order_relaxed);
      delete C;
      C = Next;
    }
    Head = Tail = nullptr;
  }

  Chunk *Head = nullptr;
  Chunk *Tail = nullptr;
  std::atomic<size_t> Size{0};
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_RCLOG_H
