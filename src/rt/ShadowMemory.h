//===-- rt/ShadowMemory.h - Reader/writer-set shadow memory -----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Section 4.2.1 of the paper: for every 2^GranuleShift bytes of
/// application memory the runtime keeps N shadow bytes encoding the granule's
/// reader and writer sets:
///
///   - bit 0 set: a single thread is reading *and writing* the granule;
///     the writer is the unique thread whose bit is also set.
///   - bit k set (k >= 1): thread with id k is reading the granule, and
///     writing it if bit 0 is also set.
///
/// With N shadow bytes, up to 8N-1 threads are supported. Checks and
/// updates are a single compare-exchange on the shadow word, mirroring the
/// paper's use of cmpxchg. A thread's first access to a granule logs the
/// granule address so the thread's bits can be cleared cheaply when it
/// exits ("SharC does not consider it a race for two threads to access the
/// same location if their execution does not overlap").
///
/// Shadow is organized as a lock-free chained hash table of pages covering
/// 4 KiB of application address space each, so heap, globals, and stack can
/// all be checked without registration.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_SHADOWMEMORY_H
#define SHARC_RT_SHADOWMEMORY_H

#include "rt/AccessSite.h"
#include "rt/Config.h"
#include "rt/Guard.h"
#include "rt/Report.h"
#include "rt/Stats.h"
#include "rt/ThreadRegistry.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>

namespace sharc {
namespace rt {

/// The shadow-memory race checker. One instance per Runtime.
class ShadowMemory {
public:
  ShadowMemory(const RuntimeConfig &Config, RuntimeStats &Stats,
               ReportSink &Sink);
  ~ShadowMemory();

  ShadowMemory(const ShadowMemory &) = delete;
  ShadowMemory &operator=(const ShadowMemory &) = delete;

  /// chkread: verifies no *other* thread has written [Addr, Addr+Size) in
  /// this granule's current reader/writer sets, then records this thread as
  /// a reader. \returns false (after filing a report) on conflict; the
  /// access is still claimed so execution can continue.
  bool checkRead(const void *Addr, size_t Size, ThreadState &TS,
                 const AccessSite *Site);

  /// chkwrite: verifies no other thread has read or written the range, then
  /// records this thread as the writer.
  bool checkWrite(const void *Addr, size_t Size, ThreadState &TS,
                  const AccessSite *Site);

  /// Clears all reader/writer sets for [Addr, Addr+Size). Called when heap
  /// memory is freed and when a sharing cast changes an object's mode
  /// ("after a cast, past accesses by other threads no longer constitute
  /// unintended sharing").
  void clearRange(const void *Addr, size_t Size);

  /// Clears this thread's bits from every granule it touched, using its
  /// first-access log; called at thread exit.
  void clearThreadBits(ThreadState &TS);

  /// \returns the raw shadow word for the granule containing \p Addr, or 0
  /// if no shadow page exists yet. For tests.
  uint64_t peekWord(const void *Addr) const;

  unsigned granuleSize() const { return 1u << Config.GranuleShift; }

private:
  struct DiagCell;
  struct Page;

  Page *lookupPage(uintptr_t PageBase) const;
  Page *getOrCreatePage(uintptr_t PageBase);

  template <typename WordT>
  bool checkAccessImpl(uintptr_t Addr, size_t Size, bool IsWrite,
                       ThreadState &TS, const AccessSite *Site);
  template <typename WordT> void clearRangeImpl(uintptr_t Addr, size_t Size);
  template <typename WordT> void clearThreadBitsImpl(ThreadState &TS);

  void reportConflict(bool IsWrite, uintptr_t Addr, ThreadState &TS,
                      const AccessSite *Site, Page *P, size_t GranuleIndex);

  /// Quarantine (guard::Policy::Quarantine only): granules demoted to
  /// racy-equivalent stop firing. Consulted exclusively on the conflict
  /// (cold) path, behind a config-byte compare.
  bool isGranuleQuarantined(uintptr_t GranuleAddr);
  void quarantineGranule(uintptr_t GranuleAddr);

  const RuntimeConfig &Config;
  RuntimeStats &Stats;
  ReportSink &Sink;

  static constexpr unsigned PageShift = 12;
  static constexpr size_t PageBytes = size_t(1) << PageShift;
  static constexpr size_t NumBuckets = size_t(1) << 16;

  size_t GranulesPerPage;
  std::unique_ptr<std::atomic<Page *>[]> Buckets;
  std::mutex QuarantineMutex;
  std::unordered_set<uintptr_t> QuarantinedGranules;
};

} // namespace rt
} // namespace sharc

#endif // SHARC_RT_SHADOWMEMORY_H
