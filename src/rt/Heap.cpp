//===-- rt/Heap.cpp -------------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/Heap.h"

#include "rt/Guard.h"
#include "rt/ShadowMemory.h"

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>

using namespace sharc::rt;

namespace {
constexpr uint64_t HeaderMagicLive = 0x5368617243214C56ull;  // "SharC!LV"
constexpr uint64_t HeaderMagicFreed = 0x5368617243214652ull; // "SharC!FR"
} // namespace

/// Placed immediately before the payload; the payload stays granule
/// aligned because HeaderBytes is a multiple of the granule size.
struct Heap::Header {
  uint64_t Magic;
  uint64_t Size;
};

Heap::Heap(const RuntimeConfig &Config, RuntimeStats &Stats,
           ShadowMemory &Shadow, ReportSink &Sink)
    : Config(Config), Stats(Stats), Shadow(Shadow), Sink(Sink) {
  size_t Granule = Config.granuleSize();
  HeaderBytes = sizeof(Header);
  if (HeaderBytes % Granule != 0)
    HeaderBytes += Granule - HeaderBytes % Granule;
}

Heap::~Heap() { releaseDeferred(); }

Heap::Header *Heap::headerFor(const void *Payload) const {
  return reinterpret_cast<Header *>(
      reinterpret_cast<uintptr_t>(Payload) - HeaderBytes);
}

void *Heap::allocate(size_t Size) {
  size_t Granule = Config.granuleSize();
  size_t Payload = (Size + Granule - 1) & ~(Granule - 1);
  if (Payload == 0)
    Payload = Granule;
  void *Raw = guard::faultTickOom()
                  ? nullptr
                  : std::aligned_alloc(Granule < 16 ? 16 : Granule,
                                       HeaderBytes + Payload);
  if (!Raw) {
    // Route through the guard so the failure is both visible in the
    // report stream (with size/thread diagnostics) and crash-safe: the
    // hooks flush live traces before the process exits with status 3.
    ConflictReport Report;
    Report.Kind = ReportKind::ResourceExhausted;
    Report.Address = Size;
    Sink.report(Report);
    guard::fatalInternal(
        "out of memory allocating %zu bytes (%zu with header/rounding); "
        "heap payload in use: %llu bytes",
        Size, HeaderBytes + Payload,
        static_cast<unsigned long long>(Stats.snapshot().HeapPayloadBytes));
  }
  auto *H = static_cast<Header *>(Raw);
  H->Magic = HeaderMagicLive;
  H->Size = Size;
  Stats.addHeapPayload(static_cast<int64_t>(Payload));
  return static_cast<char *>(Raw) + HeaderBytes;
}

void Heap::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  Header *H = headerFor(Ptr);
  assert(H->Magic == HeaderMagicLive && "bad or double free");
  size_t Granule = Config.granuleSize();
  size_t Payload = (H->Size + Granule - 1) & ~(Granule - 1);
  if (Payload == 0)
    Payload = Granule;
  // "When heap memory is deallocated with free(), it is no longer
  // considered to be accessed by any thread, and all of its bits are
  // cleared."
  Shadow.clearRange(Ptr, H->Size ? H->Size : 1);
  H->Magic = HeaderMagicFreed;
  Stats.addHeapPayload(-static_cast<int64_t>(Payload));
  std::lock_guard<std::mutex> Lock(Mutex);
  Deferred.push_back(H);
}

size_t Heap::allocationSize(const void *Ptr) const {
  const Header *H = headerFor(Ptr);
  assert(H->Magic == HeaderMagicLive && "not a live sharc allocation");
  return H->Size;
}

bool Heap::isSharcObject(const void *Ptr) const {
  if (!Ptr)
    return false;
  uintptr_t P = reinterpret_cast<uintptr_t>(Ptr);
  if (P < HeaderBytes || P % Config.granuleSize() != 0)
    return false;
  // Reading headerFor(Ptr) is only safe for pointers that are actually in
  // sharc-heap blocks; callers use this as a best-effort classifier for
  // pointers they believe they allocated here.
  return headerFor(Ptr)->Magic == HeaderMagicLive;
}

void Heap::releaseDeferred() {
  std::vector<void *> ToFree;
  {
    std::lock_guard<std::mutex> Lock(Mutex);
    ToFree.swap(Deferred);
  }
  for (void *Raw : ToFree)
    std::free(Raw);
}

size_t Heap::getNumDeferred() const {
  std::lock_guard<std::mutex> Lock(Mutex);
  return Deferred.size();
}
