//===-- rt/Guard.h - Failure policies and fault injection -------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-guard (DESIGN.md §12): one failure-semantics layer shared by the
/// native runtime, the MiniC interpreter, and the sharcc driver.
///
///   - Policy selects what happens on a sharing violation: `abort` is the
///     paper's fail-fast semantics, `continue` records (with dedup and a
///     per-kind cap) and lets the access proceed, `quarantine` additionally
///     demotes the offending granule to a racy-equivalent state so one bad
///     site does not re-fire forever.
///   - GuardConfig carries the policy plus the stall watchdog; it is
///     embedded in rt::RuntimeConfig and mirrored by interp::InterpOptions.
///   - Fault injection (SHARC_FAULT=) forces rare failure paths — OOM,
///     thread-registration failure, torn trace writes, lock timeouts — so
///     tests can pin how the system degrades.
///
/// The enum/parse layer is header-only: the interpreter uses it without
/// linking sharc_rt. The process-global pieces (crash hooks, fault
/// counters, the central onViolation dispatcher) live in Guard.cpp inside
/// sharc_rt and are used by the runtime, the driver, and the fuzzer.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RT_GUARD_H
#define SHARC_RT_GUARD_H

#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace sharc {
namespace rt {
struct ConflictReport;
class ReportSink;
} // namespace rt

namespace guard {

/// What to do when a sharing-strategy violation is detected.
enum class Policy : uint8_t {
  Abort,      ///< Print the report and die (the paper's semantics).
  Continue,   ///< Record (dedup + per-kind cap) and permit the access.
  Quarantine, ///< Continue, but demote the granule to racy-equivalent.
};

inline const char *policyName(Policy P) {
  switch (P) {
  case Policy::Abort:
    return "abort";
  case Policy::Continue:
    return "continue";
  case Policy::Quarantine:
    return "quarantine";
  }
  return "?";
}

/// Parses "abort" / "continue" / "quarantine". \returns false on anything
/// else (Out is untouched).
inline bool parsePolicy(const char *Text, Policy &Out) {
  if (!Text)
    return false;
  if (std::strcmp(Text, "abort") == 0) {
    Out = Policy::Abort;
    return true;
  }
  if (std::strcmp(Text, "continue") == 0) {
    Out = Policy::Continue;
    return true;
  }
  if (std::strcmp(Text, "quarantine") == 0) {
    Out = Policy::Quarantine;
    return true;
  }
  return false;
}

/// Reads SHARC_POLICY. \returns true and sets \p Out when the variable is
/// present and valid; false (Out untouched) when unset or malformed.
inline bool policyFromEnv(Policy &Out) {
  return parsePolicy(std::getenv("SHARC_POLICY"), Out);
}

/// Failure-semantics knobs, embedded in rt::RuntimeConfig. The defaults
/// reproduce the library's historical behaviour exactly: violations are
/// recorded and execution continues, with no per-kind cap and no
/// watchdog. (The sharcc driver defaults to Policy::Abort instead — the
/// paper-faithful fail-fast semantics — via --on-violation/SHARC_POLICY.)
struct GuardConfig {
  Policy OnViolation = Policy::Continue;
  /// Under Continue/Quarantine, retain at most this many deduplicated
  /// reports per violation kind. 0 = unlimited (historical behaviour).
  size_t MaxReportsPerKind = 0;
  /// Stall watchdog for blocking lock acquisitions and sharing-cast
  /// refcount drains, in milliseconds. 0 = off.
  uint64_t WatchdogMillis = 0;
};

/// What the caller of onViolation must do with the offending access.
enum class Verdict : uint8_t {
  Proceed,    ///< Access permitted; keep the normal claim semantics.
  Quarantine, ///< Access permitted; demote the granule's shadow state.
};

//===----------------------------------------------------------------------===//
// sharc_rt-only pieces (Guard.cpp). Declarations are harmless to include
// from the interpreter; using them requires linking sharc_rt.
//===----------------------------------------------------------------------===//

/// The central violation dispatcher: publishes \p Report through \p Sink
/// (obs Conflict event + dedup + retention), then applies the policy.
/// Under Policy::Abort this prints the report and never returns.
Verdict onViolation(const GuardConfig &Config, const rt::ConflictReport &Report,
                    rt::ReportSink &Sink);

/// Process-global policy for failure paths that have no RuntimeConfig in
/// reach (RcTable capacity exhaustion). Defaults to Abort — the historical
/// behaviour of those paths. Runtime::init() aligns it with the runtime's
/// effective policy.
void setGlobalPolicy(Policy P);
Policy globalPolicy();

//===----------------------------------------------------------------------===//
// Fault injection (SHARC_FAULT=)
//===----------------------------------------------------------------------===//

/// Parsed SHARC_FAULT specification. Comma-separated directives:
///   oom:N           the Nth runtime allocation fails (1-based)
///   thread-reg      the next thread registration fails
///   torn-write:K    trace files are truncated to K bytes on write
///   lock-timeout    the next watchdog-armed lock acquisition times out
///   crash:N         raise SIGSEGV at interpreter step N (driver-side)
///
/// Serve-level chaos faults (sharc-storm, DESIGN.md §17) — injected
/// through the serve transport and pipeline threads, reachable both via
/// SHARC_FAULT and via `sharc-serve --chaos=`:
///   conn-reset:N    every Nth transport submission is rejected with a
///                   simulated connection reset (the client retries)
///   slow-peer:U     the transport delays every accept batch by U
///                   microseconds (a slow network peer)
///   worker-stall[:M] each worker sleeps M ms (default 5) every 64th
///                   request it handles — a periodic stalling worker
///   worker-crash[:K] worker 0 dies (exits its loop) after handling K
///                   requests (default 200)
///   logger-wedge[:M] the logger wedges for M ms (default 50) on its
///                   first record, backing up the log ring
struct FaultConfig {
  uint64_t OomAtAlloc = 0;
  bool FailThreadReg = false;
  uint64_t TornWriteBytes = 0;
  bool HasTornWrite = false;
  bool LockTimeout = false;
  uint64_t CrashAtStep = 0;
  uint64_t ConnResetEvery = 0;    ///< conn-reset:N (0 = off)
  uint64_t SlowPeerMicros = 0;    ///< slow-peer:U (0 = off)
  uint64_t WorkerStallMillis = 0; ///< worker-stall[:M] (0 = off)
  uint64_t WorkerCrashAfter = 0;  ///< worker-crash[:K] (0 = off)
  uint64_t LoggerWedgeMillis = 0; ///< logger-wedge[:M] (0 = off)

  /// True when any serve-level chaos directive is armed — sharc-serve
  /// arms its resilience layer (admission control, retries) whenever a
  /// chaos plan is active, so injected faults are shed/retried instead
  /// of wedging the pipeline.
  bool anyServeFault() const {
    return ConnResetEvery || SlowPeerMicros || WorkerStallMillis ||
           WorkerCrashAfter || LoggerWedgeMillis;
  }
};

/// Parses \p Spec. \returns false (with a diagnostic in \p Error) on
/// malformed input.
bool parseFaults(const char *Spec, FaultConfig &Out, std::string &Error);

/// Installs \p F as the active fault plan and re-arms the countdowns.
void setFaults(const FaultConfig &F);
const FaultConfig &faults();

/// Parses SHARC_FAULT once per process (no-op when unset; malformed specs
/// are a fatalInternal — a mistyped fault plan must not silently pass).
void initFaultsFromEnv();

/// One allocation tick. \returns true when this allocation must fail
/// (consumes the oom:N countdown).
bool faultTickOom();
/// \returns true when thread registration must fail (consumes the fault).
bool faultThreadReg();
/// \returns true when a watchdog-armed lock wait must report a timeout
/// immediately (consumes the fault).
bool faultLockTimeout();

//===----------------------------------------------------------------------===//
// Crash-safe observability
//===----------------------------------------------------------------------===//

/// Hooks run (once, first-signal-wins) when the process dies abnormally:
/// from a fatal signal, from an abort-policy violation, or from
/// fatalInternal. Typical use: flush live trace rings and append the
/// .strc AbnormalEnd record.
using CrashHook = void (*)(int Signal, void *Ctx);
void addCrashHook(CrashHook Fn, void *Ctx);

/// Installs handlers for SIGSEGV/SIGBUS/SIGFPE/SIGILL/SIGABRT that run
/// the crash hooks, restore the default disposition, and re-raise so the
/// process still dies by the original signal. Idempotent.
void installCrashHandlers();

/// Runs the registered crash hooks at most once process-wide. \p Signal
/// is 0 for policy/internal deaths.
void runCrashHooks(int Signal);

/// Internal/fault-injected error: prints "sharc: fatal: ..." to stderr,
/// runs the crash hooks, and exits with status 3 (the sharcc exit-code
/// contract for internal errors).
[[noreturn]] void fatalInternal(const char *Fmt, ...);

} // namespace guard
} // namespace sharc

#endif // SHARC_RT_GUARD_H
