//===-- rt/StatsServer.cpp - Minimal HTTP/1.0 stats endpoint --------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "rt/StatsServer.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

namespace sharc {
namespace live {

bool splitHostPort(const std::string &Addr, std::string &Host,
                   uint16_t &Port, std::string &Error) {
  size_t Colon = Addr.rfind(':');
  if (Colon == std::string::npos || Colon == 0) {
    Error = "stats address must be HOST:PORT, got '" + Addr + "'";
    return false;
  }
  Host = Addr.substr(0, Colon);
  std::string PortStr = Addr.substr(Colon + 1);
  if (PortStr.empty() ||
      PortStr.find_first_not_of("0123456789") != std::string::npos) {
    Error = "stats address has a non-numeric port: '" + Addr + "'";
    return false;
  }
  unsigned long V = std::strtoul(PortStr.c_str(), nullptr, 10);
  if (V > 65535) {
    Error = "stats address port out of range: '" + Addr + "'";
    return false;
  }
  Port = static_cast<uint16_t>(V);
  return true;
}

bool StatsServer::start(const std::string &Addr, Provider P,
                        std::string &Error) {
  if (Running.load(std::memory_order_acquire)) {
    Error = "stats server already running";
    return false;
  }
  std::string Host;
  uint16_t Port = 0;
  if (!splitHostPort(Addr, Host, Port, Error))
    return false;

  sockaddr_in Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Sa.sin_addr) != 1) {
    Error = "stats address host is not an IPv4 address: '" + Host + "'";
    return false;
  }

  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  int One = 1;
  ::setsockopt(Fd, SOL_SOCKET, SO_REUSEADDR, &One, sizeof(One));
  if (::bind(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0) {
    Error = "bind " + Addr + ": " + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  if (::listen(Fd, 16) != 0) {
    Error = std::string("listen: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }

  // Report the concrete port (meaningful when port 0 was requested).
  sockaddr_in Got;
  socklen_t GotLen = sizeof(Got);
  if (::getsockname(Fd, reinterpret_cast<sockaddr *>(&Got), &GotLen) != 0) {
    Error = std::string("getsockname: ") + std::strerror(errno);
    ::close(Fd);
    return false;
  }
  char HostBuf[INET_ADDRSTRLEN] = {0};
  inet_ntop(AF_INET, &Got.sin_addr, HostBuf, sizeof(HostBuf));
  BoundPort = ntohs(Got.sin_port);
  Bound = std::string(HostBuf) + ":" + std::to_string(BoundPort);

  Provide = std::move(P);
  ListenFd = Fd;
  StopFlag.store(false, std::memory_order_release);
  Running.store(true, std::memory_order_release);
  Thread = std::thread([this] { serveLoop(); });
  return true;
}

void StatsServer::stop() {
  if (!Running.load(std::memory_order_acquire))
    return;
  StopFlag.store(true, std::memory_order_release);
  if (Thread.joinable())
    Thread.join();
  if (ListenFd >= 0) {
    ::close(ListenFd);
    ListenFd = -1;
  }
  Running.store(false, std::memory_order_release);
}

void StatsServer::serveLoop() {
  // A 100ms poll timeout bounds how long stop() waits for the thread.
  while (!StopFlag.load(std::memory_order_acquire)) {
    pollfd Pfd;
    Pfd.fd = ListenFd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    int N = ::poll(&Pfd, 1, 100);
    if (N <= 0)
      continue;
    int Conn = ::accept(ListenFd, nullptr, nullptr);
    if (Conn < 0)
      continue;
    handleConnection(Conn);
    ::close(Conn);
  }
}

namespace {

void sendAll(int Fd, const std::string &Data) {
  size_t Off = 0;
  while (Off < Data.size()) {
    ssize_t N = ::send(Fd, Data.data() + Off, Data.size() - Off, MSG_NOSIGNAL);
    if (N <= 0)
      return;
    Off += static_cast<size_t>(N);
  }
}

void sendResponse(int Fd, const char *Status, const char *ContentType,
                  const std::string &Body) {
  std::string R = "HTTP/1.0 ";
  R += Status;
  R += "\r\nContent-Type: ";
  R += ContentType;
  R += "\r\nContent-Length: " + std::to_string(Body.size());
  R += "\r\nConnection: close\r\n\r\n";
  R += Body;
  sendAll(Fd, R);
}

} // namespace

void StatsServer::handleConnection(int Fd) {
  // Read until the end of the request headers (or 1KiB, whichever comes
  // first) — only the request line matters to us. A short poll deadline
  // keeps a stuck client from wedging the serve loop.
  std::string Req;
  char Buf[512];
  for (int Rounds = 0; Rounds < 16; ++Rounds) {
    pollfd Pfd;
    Pfd.fd = Fd;
    Pfd.events = POLLIN;
    Pfd.revents = 0;
    if (::poll(&Pfd, 1, 500) <= 0)
      break;
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Req.append(Buf, static_cast<size_t>(N));
    if (Req.find("\r\n\r\n") != std::string::npos ||
        Req.find("\n\n") != std::string::npos || Req.size() >= 1024)
      break;
  }

  size_t Eol = Req.find_first_of("\r\n");
  std::string Line = Eol == std::string::npos ? Req : Req.substr(0, Eol);
  size_t Sp1 = Line.find(' ');
  size_t Sp2 = Line.find(' ', Sp1 == std::string::npos ? 0 : Sp1 + 1);
  std::string Method =
      Sp1 == std::string::npos ? std::string() : Line.substr(0, Sp1);
  std::string Path = (Sp1 == std::string::npos || Sp2 == std::string::npos)
                         ? std::string()
                         : Line.substr(Sp1 + 1, Sp2 - Sp1 - 1);

  if (Method != "GET") {
    sendResponse(Fd, "405 Method Not Allowed", "text/plain; charset=utf-8",
                 "only GET is supported\n");
    return;
  }
  if (Path == "/metrics") {
    uint64_t N = Scrapes.fetch_add(1, std::memory_order_relaxed) + 1;
    sendResponse(Fd, "200 OK", "text/plain; version=0.0.4; charset=utf-8",
                 renderPrometheus(Provide(), N));
    return;
  }
  if (Path == "/health" || Path == "/healthz") {
    uint64_t N = Scrapes.fetch_add(1, std::memory_order_relaxed) + 1;
    sendResponse(Fd, "200 OK", "application/json; charset=utf-8",
                 renderHealthJson(Provide(), N));
    return;
  }
  sendResponse(Fd, "404 Not Found", "text/plain; charset=utf-8",
               "unknown path; try /metrics or /health\n");
}

bool httpGet(const std::string &Host, uint16_t Port, const std::string &Path,
             std::string &Body, std::string &Error) {
  int Fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (Fd < 0) {
    Error = std::string("socket: ") + std::strerror(errno);
    return false;
  }
  sockaddr_in Sa;
  std::memset(&Sa, 0, sizeof(Sa));
  Sa.sin_family = AF_INET;
  Sa.sin_port = htons(Port);
  if (inet_pton(AF_INET, Host.c_str(), &Sa.sin_addr) != 1) {
    Error = "not an IPv4 address: '" + Host + "'";
    ::close(Fd);
    return false;
  }
  if (::connect(Fd, reinterpret_cast<sockaddr *>(&Sa), sizeof(Sa)) != 0) {
    Error = "connect " + Host + ":" + std::to_string(Port) + ": " +
            std::strerror(errno);
    ::close(Fd);
    return false;
  }
  std::string Req = "GET " + Path + " HTTP/1.0\r\nHost: " + Host +
                    "\r\nConnection: close\r\n\r\n";
  sendAll(Fd, Req);

  std::string Resp;
  char Buf[4096];
  for (;;) {
    ssize_t N = ::recv(Fd, Buf, sizeof(Buf), 0);
    if (N <= 0)
      break;
    Resp.append(Buf, static_cast<size_t>(N));
  }
  ::close(Fd);

  size_t HdrEnd = Resp.find("\r\n\r\n");
  size_t BodyOff = HdrEnd == std::string::npos ? std::string::npos : HdrEnd + 4;
  if (BodyOff == std::string::npos) {
    HdrEnd = Resp.find("\n\n");
    BodyOff = HdrEnd == std::string::npos ? std::string::npos : HdrEnd + 2;
  }
  if (BodyOff == std::string::npos) {
    Error = "malformed HTTP response (no header terminator)";
    return false;
  }
  size_t Eol = Resp.find_first_of("\r\n");
  std::string Status = Resp.substr(0, Eol);
  if (Status.find(" 200") == std::string::npos) {
    Error = "HTTP status: " + Status;
    return false;
  }
  Body = Resp.substr(BodyOff);
  return true;
}

} // namespace live
} // namespace sharc
