//===-- racedet/VectorClock.h - Happens-before detector ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A vector-clock happens-before race detector in the style of the
/// "improvements to the lockset algorithm" the paper's Section 6.2
/// surveys (Choi et al., RaceTrack, FastTrack): threads carry vector
/// clocks, lock release/acquire edges transfer them, and each location
/// keeps its last-write epoch plus a read vector; an access that is not
/// ordered after the conflicting one is a race.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RACEDET_VECTORCLOCK_H
#define SHARC_RACEDET_VECTORCLOCK_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sharc {
namespace racedet {

/// A grow-on-demand vector clock.
class VectorClock {
public:
  uint64_t get(unsigned Tid) const {
    return Tid < Clocks.size() ? Clocks[Tid] : 0;
  }
  void set(unsigned Tid, uint64_t Value) {
    if (Tid >= Clocks.size())
      Clocks.resize(Tid + 1, 0);
    Clocks[Tid] = Value;
  }
  void joinWith(const VectorClock &Other) {
    if (Other.Clocks.size() > Clocks.size())
      Clocks.resize(Other.Clocks.size(), 0);
    for (size_t I = 0; I != Other.Clocks.size(); ++I)
      Clocks[I] = std::max(Clocks[I], Other.Clocks[I]);
  }
  /// \returns true if this clock is pointwise <= Other.
  bool leq(const VectorClock &Other) const {
    for (size_t I = 0; I != Clocks.size(); ++I)
      if (Clocks[I] > Other.get(static_cast<unsigned>(I)))
        return false;
    return true;
  }
  size_t size() const { return Clocks.size(); }

private:
  std::vector<uint64_t> Clocks;
};

/// The happens-before detector over 8-byte granules.
class HappensBeforeDetector {
  static constexpr unsigned NumShards = 64;
  static constexpr unsigned GranuleShift = 3;

public:
  void onLockAcquire(const void *Lock);
  void onLockRelease(const void *Lock);

  void onRead(const void *Addr, size_t Size) {
    onAccess(Addr, Size, /*IsWrite=*/false);
  }
  void onWrite(void *Addr, size_t Size) { onAccess(Addr, Size, true); }

  /// Must be called by each participating thread before its first access
  /// and after it finishes, so per-thread clocks are set up/retired.
  void threadBegin();

  uint64_t getNumRaces() const {
    return Races.load(std::memory_order_relaxed);
  }
  uint64_t getNumChecks() const {
    return Checks.load(std::memory_order_relaxed);
  }

  /// \returns the sorted set of granules reported racy, for the
  /// differential fuzz oracle.
  std::vector<uintptr_t> racyGranules();

  /// Forgets the calling thread's clock for this detector. Pooled replay
  /// threads must call this before the instance dies; clocks are keyed
  /// by detector address, so a later instance at the same address would
  /// otherwise inherit a stale clock.
  void threadRetire();

  size_t memoryFootprint() const;

  /// Per-thread clock state (public so the thread_local registry that
  /// keys it by detector instance can name it).
  struct ThreadClock {
    VectorClock Clock;
    unsigned Tid = 0;
  };

private:
  struct Epoch {
    unsigned Tid = 0;
    uint64_t Clock = 0;
  };
  struct Cell {
    Epoch LastWrite;
    VectorClock Reads;
    bool Reported = false;
  };
  struct Shard {
    std::mutex Mutex;
    std::unordered_map<uintptr_t, Cell> Cells;
  };

  void onAccess(const void *Addr, size_t Size, bool IsWrite);
  ThreadClock &myClock();

  Shard Shards[NumShards];
  std::mutex LockMutex;
  std::unordered_map<const void *, VectorClock> LockClocks;
  std::atomic<uint64_t> Races{0};
  std::atomic<uint64_t> Checks{0};
};

} // namespace racedet
} // namespace sharc

#endif // SHARC_RACEDET_VECTORCLOCK_H
