//===-- racedet/Eraser.h - Lockset race detector ----------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An Eraser-style dynamic lockset detector (Savage et al., SOSP'97),
/// implemented as the comparison baseline for the paper's Section 6.2
/// claim that lockset monitoring of *every* access costs 10x-30x while
/// SharC's mode-directed checking stays within a few percent.
///
/// Per 8-byte shadow cell the detector tracks the Eraser state machine --
/// Virgin, Exclusive(t), Shared, SharedModified -- and the candidate
/// lockset C(v), refined by intersection with the accessing thread's held
/// locks; an empty C(v) in SharedModified reports a race.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RACEDET_ERASER_H
#define SHARC_RACEDET_ERASER_H

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace sharc {
namespace racedet {

/// Thread registration shared by the baseline detectors.
class DetectorThreads {
public:
  /// Small id of the calling thread, assigned on first use.
  static unsigned currentTid();

private:
  static std::atomic<unsigned> NextTid;
};

/// The Eraser lockset algorithm over 8-byte granules.
class EraserDetector {
  static constexpr unsigned NumShards = 64;
  static constexpr unsigned GranuleShift = 3;

public:
  /// Locks are identified by small ids (bits in a 64-bit set).
  void onLockAcquire(const void *Lock);
  void onLockRelease(const void *Lock);

  void onRead(const void *Addr, size_t Size) {
    onAccess(Addr, Size, /*IsWrite=*/false);
  }
  void onWrite(void *Addr, size_t Size) { onAccess(Addr, Size, true); }

  uint64_t getNumRaces() const {
    return Races.load(std::memory_order_relaxed);
  }
  uint64_t getNumChecks() const {
    return Checks.load(std::memory_order_relaxed);
  }

  /// \returns the sorted set of granules this detector has reported racy
  /// (SharedModified with an empty candidate set). The differential fuzz
  /// oracle compares this against an independent replay.
  std::vector<uintptr_t> racyGranules();

  /// Forgets the calling thread's held-lock state for this detector.
  /// Pooled replay threads must call this before the instance dies;
  /// per-thread state is keyed by detector address, so a later instance
  /// at the same address would otherwise inherit stale locks.
  void threadRetire();

  /// Approximate metadata footprint, for memory-overhead comparisons.
  size_t memoryFootprint() const;

private:
  enum class State : uint8_t { Virgin, Exclusive, Shared, SharedModified };

  struct Cell {
    State St = State::Virgin;
    unsigned Owner = 0;
    uint64_t LockSet = ~uint64_t(0); ///< Candidate set C(v).
    bool Reported = false;
  };

  struct Shard {
    std::mutex Mutex;
    std::unordered_map<uintptr_t, Cell> Cells;
  };

  void onAccess(const void *Addr, size_t Size, bool IsWrite);
  unsigned lockId(const void *Lock);
  uint64_t heldLockSet() const;

  Shard Shards[NumShards];
  std::mutex LockIdMutex;
  std::unordered_map<const void *, unsigned> LockIds;
  std::atomic<uint64_t> Races{0};
  std::atomic<uint64_t> Checks{0};
};

} // namespace racedet
} // namespace sharc

#endif // SHARC_RACEDET_ERASER_H
