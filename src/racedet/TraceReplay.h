//===-- racedet/TraceReplay.h - Deterministic trace replay ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays a recorded schedule trace against the production race
/// detectors. Both detectors key their per-thread state (held locksets,
/// vector clocks) off real OS threads, so a trace with N simulated
/// threads is driven by N pooled worker threads taking turns through a
/// sequence turnstile: events apply strictly in trace order, each on the
/// worker owning its simulated tid. The pool persists across replays so
/// detector thread ids stay bounded over thousands of fuzz iterations.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_RACEDET_TRACEREPLAY_H
#define SHARC_RACEDET_TRACEREPLAY_H

#include "racedet/Eraser.h"
#include "racedet/VectorClock.h"

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace sharc {
namespace racedet {

/// One event of a replayable schedule trace. Addresses are in detector
/// space (callers scale interpreter cell indices so one cell maps to one
/// 8-byte granule).
struct ReplayEvent {
  enum class Kind : uint8_t {
    Read,        ///< onRead(Addr, 1)
    Write,       ///< onWrite(Addr, 1)
    LockAcquire, ///< onLockAcquire(Addr)
    LockRelease, ///< onLockRelease(Addr)
    ThreadStart, ///< threadBegin(); when Addr != 0 it is a spawn token
                 ///< the child acquires+releases to join the parent's
                 ///< release edge without polluting Eraser locksets.
    ThreadExit,  ///< no detector call; marks the tid quiescent
  };
  Kind K = Kind::Read;
  unsigned Tid = 0; ///< Simulated thread id (dense, starting near 1).
  uint64_t Addr = 0;
};

/// A persistent pool of worker threads that replays traces against a
/// pair of detectors. replay() is fully synchronous and deterministic:
/// events are applied one at a time, in order, on the worker bound to
/// the event's simulated tid. After the last event each participating
/// worker retires its per-thread detector state, so detector instances
/// may be destroyed (and their heap addresses reused) between replays.
class ReplayPool {
public:
  ReplayPool() = default;
  ~ReplayPool();

  ReplayPool(const ReplayPool &) = delete;
  ReplayPool &operator=(const ReplayPool &) = delete;

  void replay(const std::vector<ReplayEvent> &Events, EraserDetector &Eraser,
              HappensBeforeDetector &Hb);

private:
  void workerMain(unsigned Slot);
  void applyLocked(const ReplayEvent &Ev);

  std::mutex Mutex;
  std::condition_variable Cond;
  const std::vector<ReplayEvent> *Events = nullptr;
  EraserDetector *Eraser = nullptr;
  HappensBeforeDetector *Hb = nullptr;
  size_t Cursor = 0;
  uint64_t Generation = 0;
  bool ShuttingDown = false;
  std::vector<std::thread> Workers;
  std::vector<unsigned> SlotTid; ///< Tid a slot serves this generation.
  unsigned Active = 0;
  unsigned Finished = 0;
};

} // namespace racedet
} // namespace sharc

#endif // SHARC_RACEDET_TRACEREPLAY_H
