//===-- racedet/VectorClock.cpp -------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "racedet/VectorClock.h"

#include "racedet/Eraser.h"

#include <algorithm>

using namespace sharc;
using namespace sharc::racedet;

namespace {
/// Per-thread clock, per detector instance.
thread_local std::unordered_map<const HappensBeforeDetector *,
                                HappensBeforeDetector::ThreadClock>
    Clocks;
} // namespace

HappensBeforeDetector::ThreadClock &HappensBeforeDetector::myClock() {
  ThreadClock &TC = Clocks[this];
  if (TC.Tid == 0) {
    TC.Tid = DetectorThreads::currentTid();
    TC.Clock.set(TC.Tid, 1);
  }
  return TC;
}

void HappensBeforeDetector::threadBegin() { (void)myClock(); }

void HappensBeforeDetector::onLockAcquire(const void *Lock) {
  ThreadClock &TC = myClock();
  std::lock_guard<std::mutex> Guard(LockMutex);
  TC.Clock.joinWith(LockClocks[Lock]);
}

void HappensBeforeDetector::onLockRelease(const void *Lock) {
  ThreadClock &TC = myClock();
  std::lock_guard<std::mutex> Guard(LockMutex);
  LockClocks[Lock] = TC.Clock;
  // Advance this thread's component: later events are not ordered before
  // the release.
  TC.Clock.set(TC.Tid, TC.Clock.get(TC.Tid) + 1);
}

void HappensBeforeDetector::onAccess(const void *Addr, size_t Size,
                                     bool IsWrite) {
  ThreadClock &TC = myClock();
  uintptr_t Begin = reinterpret_cast<uintptr_t>(Addr) >> GranuleShift;
  uintptr_t End =
      (reinterpret_cast<uintptr_t>(Addr) + (Size ? Size : 1) - 1) >>
      GranuleShift;
  for (uintptr_t G = Begin; G <= End; ++G) {
    Checks.fetch_add(1, std::memory_order_relaxed);
    Shard &S = Shards[(G * 0x9E3779B97F4A7C15ull) >> 58];
    std::lock_guard<std::mutex> Guard(S.Mutex);
    Cell &C = S.Cells[G];
    bool Race = false;
    // The last write must happen-before this access.
    if (C.LastWrite.Clock != 0 && C.LastWrite.Tid != TC.Tid &&
        C.LastWrite.Clock > TC.Clock.get(C.LastWrite.Tid))
      Race = true;
    if (IsWrite) {
      // All previous reads must happen-before a write.
      if (!C.Reads.leq(TC.Clock))
        Race = true;
      C.LastWrite = Epoch{TC.Tid, TC.Clock.get(TC.Tid)};
      C.Reads = VectorClock();
    } else {
      C.Reads.set(TC.Tid, TC.Clock.get(TC.Tid));
    }
    if (Race && !C.Reported) {
      C.Reported = true;
      Races.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<uintptr_t> HappensBeforeDetector::racyGranules() {
  std::vector<uintptr_t> Out;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.Mutex);
    for (const auto &[G, C] : S.Cells)
      if (C.Reported)
        Out.push_back(G);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void HappensBeforeDetector::threadRetire() { Clocks.erase(this); }

size_t HappensBeforeDetector::memoryFootprint() const {
  size_t Bytes = 0;
  for (const Shard &S : Shards) {
    for (const auto &[G, C] : S.Cells)
      Bytes += sizeof(Cell) + C.Reads.size() * sizeof(uint64_t) +
               sizeof(uintptr_t) + 3 * sizeof(void *);
  }
  return Bytes;
}
