//===-- racedet/Eraser.cpp ------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "racedet/Eraser.h"

#include <algorithm>

using namespace sharc;
using namespace sharc::racedet;

std::atomic<unsigned> DetectorThreads::NextTid{1};

unsigned DetectorThreads::currentTid() {
  thread_local unsigned Tid = NextTid.fetch_add(1);
  return Tid;
}

namespace {
/// Per-thread held-lock bitmask, per detector instance.
thread_local std::unordered_map<const void *, uint64_t> HeldMasks;
} // namespace

unsigned EraserDetector::lockId(const void *Lock) {
  std::lock_guard<std::mutex> Guard(LockIdMutex);
  auto [It, Inserted] = LockIds.emplace(Lock, LockIds.size());
  (void)Inserted;
  return It->second % 64;
}

uint64_t EraserDetector::heldLockSet() const {
  auto It = HeldMasks.find(this);
  return It == HeldMasks.end() ? 0 : It->second;
}

void EraserDetector::onLockAcquire(const void *Lock) {
  HeldMasks[this] |= uint64_t(1) << lockId(Lock);
}

void EraserDetector::onLockRelease(const void *Lock) {
  HeldMasks[this] &= ~(uint64_t(1) << lockId(Lock));
}

void EraserDetector::onAccess(const void *Addr, size_t Size, bool IsWrite) {
  unsigned Tid = DetectorThreads::currentTid();
  uint64_t Held = heldLockSet();
  uintptr_t Begin = reinterpret_cast<uintptr_t>(Addr) >> GranuleShift;
  uintptr_t End =
      (reinterpret_cast<uintptr_t>(Addr) + (Size ? Size : 1) - 1) >>
      GranuleShift;
  for (uintptr_t G = Begin; G <= End; ++G) {
    Checks.fetch_add(1, std::memory_order_relaxed);
    Shard &S = Shards[(G * 0x9E3779B97F4A7C15ull) >> 58];
    std::lock_guard<std::mutex> Guard(S.Mutex);
    Cell &C = S.Cells[G];
    switch (C.St) {
    case State::Virgin:
      C.St = State::Exclusive;
      C.Owner = Tid;
      break;
    case State::Exclusive:
      if (C.Owner == Tid)
        break;
      // First access by a second thread: enter the shared states and
      // initialize the candidate set from the current locks.
      C.LockSet = Held;
      C.St = IsWrite ? State::SharedModified : State::Shared;
      break;
    case State::Shared:
      C.LockSet &= Held;
      if (IsWrite)
        C.St = State::SharedModified;
      // Eraser refines but does not report in the read-shared state.
      break;
    case State::SharedModified:
      C.LockSet &= Held;
      break;
    }
    if (C.St == State::SharedModified && C.LockSet == 0 && !C.Reported) {
      C.Reported = true;
      Races.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

std::vector<uintptr_t> EraserDetector::racyGranules() {
  std::vector<uintptr_t> Out;
  for (Shard &S : Shards) {
    std::lock_guard<std::mutex> Guard(S.Mutex);
    for (const auto &[G, C] : S.Cells)
      if (C.Reported)
        Out.push_back(G);
  }
  std::sort(Out.begin(), Out.end());
  return Out;
}

void EraserDetector::threadRetire() { HeldMasks.erase(this); }

size_t EraserDetector::memoryFootprint() const {
  size_t Cells = 0;
  for (const Shard &S : Shards)
    Cells += S.Cells.size();
  return Cells * (sizeof(Cell) + sizeof(uintptr_t) + 3 * sizeof(void *));
}
