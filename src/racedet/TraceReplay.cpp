//===-- racedet/TraceReplay.cpp -------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "racedet/TraceReplay.h"

#include <algorithm>

using namespace sharc;
using namespace sharc::racedet;

ReplayPool::~ReplayPool() {
  {
    std::lock_guard<std::mutex> Guard(Mutex);
    ShuttingDown = true;
  }
  Cond.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ReplayPool::applyLocked(const ReplayEvent &Ev) {
  void *Addr = reinterpret_cast<void *>(static_cast<uintptr_t>(Ev.Addr));
  switch (Ev.K) {
  case ReplayEvent::Kind::Read:
    Eraser->onRead(Addr, 1);
    Hb->onRead(Addr, 1);
    return;
  case ReplayEvent::Kind::Write:
    Eraser->onWrite(Addr, 1);
    Hb->onWrite(Addr, 1);
    return;
  case ReplayEvent::Kind::LockAcquire:
    Eraser->onLockAcquire(Addr);
    Hb->onLockAcquire(Addr);
    return;
  case ReplayEvent::Kind::LockRelease:
    Eraser->onLockRelease(Addr);
    Hb->onLockRelease(Addr);
    return;
  case ReplayEvent::Kind::ThreadStart:
    Hb->threadBegin();
    if (Ev.Addr != 0) {
      // Join the parent's spawn edge: acquire the token (transfers the
      // parent's clock) and release it immediately so it never sits in
      // this thread's Eraser lockset.
      Eraser->onLockAcquire(Addr);
      Hb->onLockAcquire(Addr);
      Eraser->onLockRelease(Addr);
      Hb->onLockRelease(Addr);
    }
    return;
  case ReplayEvent::Kind::ThreadExit:
    return;
  }
}

void ReplayPool::workerMain(unsigned Slot) {
  std::unique_lock<std::mutex> Lock(Mutex);
  uint64_t SeenGeneration = 0;
  for (;;) {
    Cond.wait(Lock, [&] {
      return ShuttingDown ||
             (Generation != SeenGeneration && SlotTid[Slot] != 0);
    });
    if (ShuttingDown)
      return;
    SeenGeneration = Generation;
    unsigned MyTid = SlotTid[Slot];
    for (;;) {
      Cond.wait(Lock, [&] {
        return Cursor >= Events->size() || (*Events)[Cursor].Tid == MyTid;
      });
      if (Cursor >= Events->size())
        break;
      applyLocked((*Events)[Cursor]);
      ++Cursor;
      Cond.notify_all();
    }
    // Retire per-thread detector state before the instances can die.
    Eraser->threadRetire();
    Hb->threadRetire();
    ++Finished;
    Cond.notify_all();
  }
}

void ReplayPool::replay(const std::vector<ReplayEvent> &Trace,
                        EraserDetector &E, HappensBeforeDetector &H) {
  // Bind each distinct tid, in first-seen order, to a pool slot.
  std::vector<unsigned> Tids;
  for (const ReplayEvent &Ev : Trace)
    if (std::find(Tids.begin(), Tids.end(), Ev.Tid) == Tids.end())
      Tids.push_back(Ev.Tid);
  if (Tids.empty())
    return;

  std::unique_lock<std::mutex> Lock(Mutex);
  if (SlotTid.size() < Tids.size())
    SlotTid.resize(Tids.size(), 0);
  while (Workers.size() < Tids.size()) {
    unsigned Slot = static_cast<unsigned>(Workers.size());
    Workers.emplace_back([this, Slot] { workerMain(Slot); });
  }
  Events = &Trace;
  Eraser = &E;
  Hb = &H;
  Cursor = 0;
  Active = static_cast<unsigned>(Tids.size());
  Finished = 0;
  for (size_t I = 0; I != SlotTid.size(); ++I)
    SlotTid[I] = I < Tids.size() ? Tids[I] : 0;
  ++Generation;
  Cond.notify_all();
  Cond.wait(Lock, [&] { return Finished == Active; });
  Events = nullptr;
  Eraser = nullptr;
  Hb = nullptr;
  std::fill(SlotTid.begin(), SlotTid.end(), 0u);
}
