//===-- minic/Printer.cpp -------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Printer.h"

using namespace sharc;
using namespace sharc::minic;

namespace {

class ProgramPrinter {
public:
  std::string print(const Program &Prog) {
    for (const StructDecl *S : Prog.Structs) {
      if (!S->IsDefined)
        continue;
      line("struct " + S->Name + "(q) {");
      Indent += 2;
      for (const VarDecl *Field : S->Fields)
        line(printDecl(Field) + ";");
      Indent -= 2;
      line("};");
      line("");
    }
    for (const VarDecl *G : Prog.Globals)
      line(printDecl(G) + ";");
    if (!Prog.Globals.empty())
      line("");
    for (const FuncDecl *F : Prog.Funcs) {
      if (F->IsBuiltin || !F->Body)
        continue;
      std::string Sig = typeToString(F->RetType) + " " + F->Name + "(";
      for (size_t I = 0; I != F->Params.size(); ++I) {
        if (I)
          Sig += ", ";
        Sig += printDecl(F->Params[I]);
      }
      Sig += ")";
      line(Sig + " {");
      Indent += 2;
      printStmtList(F->Body->Body);
      Indent -= 2;
      line("}");
      line("");
    }
    return std::move(Out);
  }

private:
  void line(const std::string &Text) {
    if (!Text.empty())
      Out.append(static_cast<size_t>(Indent), ' ');
    Out += Text;
    Out += '\n';
  }

  void printStmtList(const std::vector<Stmt *> &Body) {
    for (const Stmt *S : Body)
      printStmt(S);
  }

  void printStmt(const Stmt *S) {
    if (!S)
      return;
    switch (S->Kind) {
    case StmtKind::Block: {
      line("{");
      Indent += 2;
      printStmtList(cast<BlockStmt>(S)->Body);
      Indent -= 2;
      line("}");
      return;
    }
    case StmtKind::If: {
      auto *If = cast<IfStmt>(S);
      line("if (" + If->Cond->spelling() + ")");
      Indent += 2;
      printStmt(If->Then);
      Indent -= 2;
      if (If->Else) {
        line("else");
        Indent += 2;
        printStmt(If->Else);
        Indent -= 2;
      }
      return;
    }
    case StmtKind::While: {
      auto *While = cast<WhileStmt>(S);
      line("while (" + While->Cond->spelling() + ")");
      Indent += 2;
      printStmt(While->Body);
      Indent -= 2;
      return;
    }
    case StmtKind::For: {
      auto *For = cast<ForStmt>(S);
      std::string Head = "for (";
      if (auto *Decl = dyn_cast<DeclStmt>(For->Init)) {
        Head += printDecl(Decl->Var);
        if (Decl->Init)
          Head += " = " + Decl->Init->spelling();
      } else if (auto *ES = dyn_cast<ExprStmt>(For->Init)) {
        Head += ES->E->spelling();
      }
      Head += "; ";
      if (For->Cond)
        Head += For->Cond->spelling();
      Head += "; ";
      if (For->Step)
        Head += For->Step->spelling();
      Head += ")";
      line(Head);
      Indent += 2;
      printStmt(For->Body);
      Indent -= 2;
      return;
    }
    case StmtKind::Return: {
      auto *Ret = cast<ReturnStmt>(S);
      line(Ret->Value ? "return " + Ret->Value->spelling() + ";"
                      : "return;");
      return;
    }
    case StmtKind::ExprStmt:
      line(cast<ExprStmt>(S)->E->spelling() + ";");
      return;
    case StmtKind::DeclStmt: {
      auto *Decl = cast<DeclStmt>(S);
      std::string Text = printDecl(Decl->Var);
      if (Decl->Init)
        Text += " = " + Decl->Init->spelling();
      line(Text + ";");
      return;
    }
    case StmtKind::Spawn: {
      auto *Spawn = cast<SpawnStmt>(S);
      line("spawn " + Spawn->CalleeName + "(" +
           (Spawn->Arg ? Spawn->Arg->spelling() : "") + ");");
      return;
    }
    case StmtKind::Free:
      line("free(" + cast<FreeStmt>(S)->Ptr->spelling() + ");");
      return;
    case StmtKind::Break:
      line("break;");
      return;
    case StmtKind::Continue:
      line("continue;");
      return;
    }
  }

  std::string Out;
  int Indent = 0;
};

} // namespace

std::string sharc::minic::printDecl(const VarDecl *Var) {
  const TypeNode *T = Var->DeclType;
  // Function pointer: ret (*q name)(params).
  if (T->isPointer() && T->Pointee && T->Pointee->isFunc()) {
    const TypeNode *Fn = T->Pointee;
    std::string S = typeToString(Fn->Ret) + " (*";
    if (T->Q.M != Mode::Unspec) {
      S += modeName(T->Q.M);
      S += " ";
    }
    S += Var->Name + ")(";
    for (size_t I = 0; I != Fn->Params.size(); ++I) {
      if (I)
        S += ", ";
      S += typeToString(Fn->Params[I]);
    }
    S += ")";
    return S;
  }
  // Array: elem-type name[N].
  if (T->isArray()) {
    std::string S = typeToString(T->Pointee) + " " + Var->Name + "[";
    if (T->ArraySize)
      S += std::to_string(T->ArraySize);
    S += "]";
    return S;
  }
  return typeToString(T) + " " + Var->Name;
}

std::string sharc::minic::printProgram(const Program &Prog) {
  ProgramPrinter Printer;
  return Printer.print(Prog);
}
