//===-- minic/Parser.cpp --------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Parser.h"

using namespace sharc;
using namespace sharc::minic;

Parser::Parser(const SourceManager &SM, FileId File, DiagnosticEngine &Diags)
    : SM(SM), Diags(Diags), Lex(SM, File, Diags) {
  Tok = Lex.next();
}

Token Parser::consume() {
  Token Current = Tok;
  Tok = Lex.next();
  return Current;
}

bool Parser::accept(TokenKind Kind) {
  if (!check(Kind))
    return false;
  consume();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (accept(Kind))
    return true;
  Diags.error(Tok.Loc, std::string("expected ") + tokenKindName(Kind) +
                           " " + Context + ", found " +
                           tokenKindName(Tok.Kind));
  return false;
}

void Parser::skipToRecoveryPoint() {
  while (!check(TokenKind::Eof) && !check(TokenKind::Semi) &&
         !check(TokenKind::RBrace))
    consume();
  accept(TokenKind::Semi);
}

//===----------------------------------------------------------------------===//
// Types
//===----------------------------------------------------------------------===//

bool Parser::startsType() const {
  if (Tok.isTypeKeyword())
    return true;
  if (Tok.Kind == TokenKind::Identifier)
    return Typedefs.count(std::string(Tok.Text)) != 0;
  return false;
}

Qual Parser::parseQualifiers() {
  Qual Q;
  while (Tok.isQualifierKeyword()) {
    Token QualTok = consume();
    if (Q.M != Mode::Unspec)
      Diags.error(QualTok.Loc, "multiple sharing qualifiers on one type");
    Q.Explicit = true;
    switch (QualTok.Kind) {
    case TokenKind::KwPrivate:
      Q.M = Mode::Private;
      break;
    case TokenKind::KwReadonly:
      Q.M = Mode::ReadOnly;
      break;
    case TokenKind::KwRacy:
      Q.M = Mode::Racy;
      break;
    case TokenKind::KwDynamic:
      Q.M = Mode::Dynamic;
      break;
    case TokenKind::KwLocked: {
      Q.M = Mode::Locked;
      expect(TokenKind::LParen, "after 'locked'");
      Q.LockExpr = parseExpr();
      expect(TokenKind::RParen, "after locked(...) expression");
      break;
    }
    case TokenKind::KwRwLocked: {
      Q.M = Mode::RwLocked;
      expect(TokenKind::LParen, "after 'rwlocked'");
      Q.LockExpr = parseExpr();
      expect(TokenKind::RParen, "after rwlocked(...) expression");
      break;
    }
    default:
      break;
    }
  }
  return Q;
}

void Parser::applyQual(TypeNode *T, const Qual &Q) {
  if (Q.M == Mode::Unspec)
    return;
  if (T->Q.M != Mode::Unspec) {
    Diags.error(T->Loc, "conflicting sharing qualifiers on one type");
    return;
  }
  T->Q = Q;
}

TypeNode *Parser::parseBaseType() {
  SourceLoc Loc = Tok.Loc;
  ASTContext &Ctx = Prog->Context;
  switch (Tok.Kind) {
  case TokenKind::KwInt:
    consume();
    return Ctx.makeType(TypeKind::Int, Loc);
  case TokenKind::KwChar:
    consume();
    return Ctx.makeType(TypeKind::Char, Loc);
  case TokenKind::KwBool:
    consume();
    return Ctx.makeType(TypeKind::Bool, Loc);
  case TokenKind::KwVoid:
    consume();
    return Ctx.makeType(TypeKind::Void, Loc);
  case TokenKind::KwMutex:
    consume();
    return Ctx.makeType(TypeKind::Mutex, Loc);
  case TokenKind::KwCond:
    consume();
    return Ctx.makeType(TypeKind::Cond, Loc);
  case TokenKind::KwStruct: {
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected struct name");
      return Ctx.makeType(TypeKind::Int, Loc);
    }
    std::string Name(consume().Text);
    StructDecl *S = Prog->findStruct(Name);
    if (!S) {
      // Forward reference: create an undefined struct.
      S = Ctx.makeStruct(Name, Loc);
      Prog->Structs.push_back(S);
    }
    TypeNode *T = Ctx.makeType(TypeKind::Struct, Loc);
    T->Struct = S;
    return T;
  }
  case TokenKind::Identifier: {
    auto It = Typedefs.find(std::string(Tok.Text));
    if (It != Typedefs.end()) {
      consume();
      // Fresh nodes per occurrence so inference treats each use
      // independently.
      TypeNode *T = Ctx.cloneType(It->second);
      T->Loc = Loc;
      return T;
    }
    break;
  }
  default:
    break;
  }
  Diags.error(Tok.Loc, std::string("expected a type, found ") +
                           tokenKindName(Tok.Kind));
  return Ctx.makeType(TypeKind::Int, Loc);
}

TypeNode *Parser::parseType() {
  TypeNode *T = parseBaseType();
  applyQual(T, parseQualifiers());
  while (accept(TokenKind::Star)) {
    TypeNode *Ptr = Prog->Context.makeType(TypeKind::Pointer, T->Loc);
    Ptr->Pointee = T;
    applyQual(Ptr, parseQualifiers());
    T = Ptr;
  }
  return T;
}

std::vector<VarDecl *> Parser::parseParamList() {
  std::vector<VarDecl *> Params;
  if (check(TokenKind::RParen))
    return Params;
  // Allow (void).
  if (check(TokenKind::KwVoid)) {
    // Could be `void` alone or `void *x`; peek via parseType.
    TypeNode *T = parseType();
    if (check(TokenKind::RParen) && T->Kind == TypeKind::Void)
      return Params;
    std::string Name;
    SourceLoc Loc = Tok.Loc;
    if (check(TokenKind::Identifier))
      Name = std::string(consume().Text);
    Params.push_back(Prog->Context.makeVar(std::move(Name), T,
                                           StorageKind::Param, Loc));
    if (!accept(TokenKind::Comma))
      return Params;
  }
  do {
    TypeNode *T = parseType();
    std::string Name;
    SourceLoc Loc = Tok.Loc;
    if (check(TokenKind::Identifier))
      Name = std::string(consume().Text);
    Params.push_back(Prog->Context.makeVar(std::move(Name), T,
                                           StorageKind::Param, Loc));
  } while (accept(TokenKind::Comma));
  return Params;
}

TypeNode *Parser::parseFuncPointerSuffix(TypeNode *RetType, std::string &Name,
                                         Qual &PtrQual) {
  // Already consumed: '(' '*'. Grammar: qual* name ')' '(' params ')'
  PtrQual = parseQualifiers();
  if (check(TokenKind::Identifier))
    Name = std::string(consume().Text);
  expect(TokenKind::RParen, "after function pointer name");
  expect(TokenKind::LParen, "to start function pointer parameters");
  TypeNode *Func = Prog->Context.makeType(TypeKind::Func, RetType->Loc);
  Func->Ret = RetType;
  std::vector<VarDecl *> Params = parseParamList();
  for (VarDecl *Param : Params)
    Func->Params.push_back(Param->DeclType);
  expect(TokenKind::RParen, "after function pointer parameters");
  TypeNode *Ptr = Prog->Context.makeType(TypeKind::Pointer, RetType->Loc);
  Ptr->Pointee = Func;
  Ptr->Q = PtrQual;
  return Ptr;
}

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  Prog = std::make_unique<Program>();
  pushScope(); // global scope
  declareBuiltins();
  while (!check(TokenKind::Eof))
    parseTopLevel();
  resolveProgram();
  popScope();
  return std::move(Prog);
}

void Parser::parseTopLevel() {
  if (check(TokenKind::KwTypedef)) {
    parseTypedef();
    return;
  }
  if (check(TokenKind::KwStruct)) {
    // Could be `struct S { ... };` (definition) or `struct S x;` (decl).
    // Disambiguate by looking ahead: we cheat by parsing the base type and
    // checking for '{'.
    SourceLoc Loc = Tok.Loc;
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected struct name");
      skipToRecoveryPoint();
      return;
    }
    std::string Name(consume().Text);
    StructDecl *S = Prog->findStruct(Name);
    if (!S) {
      S = Prog->Context.makeStruct(Name, Loc);
      Prog->Structs.push_back(S);
    }
    if (check(TokenKind::LBrace)) {
      parseStructBody(S);
      expect(TokenKind::Semi, "after struct definition");
      return;
    }
    // Variable of struct type: continue the declarator.
    TypeNode *T = Prog->Context.makeType(TypeKind::Struct, Loc);
    T->Struct = S;
    applyQual(T, parseQualifiers());
    while (accept(TokenKind::Star)) {
      TypeNode *Ptr = Prog->Context.makeType(TypeKind::Pointer, Loc);
      Ptr->Pointee = T;
      applyQual(Ptr, parseQualifiers());
      T = Ptr;
    }
    if (!check(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected declarator name");
      skipToRecoveryPoint();
      return;
    }
    std::string VarName(consume().Text);
    if (check(TokenKind::LParen)) {
      consume();
      parseFunctionRest(T, std::move(VarName), Loc);
      return;
    }
    if (accept(TokenKind::LBracket)) {
      TypeNode *Arr = Prog->Context.makeType(TypeKind::Array, Loc);
      Arr->Pointee = T;
      if (check(TokenKind::IntLiteral))
        Arr->ArraySize = consume().IntValue;
      expect(TokenKind::RBracket, "after array size");
      T = Arr;
    }
    VarDecl *G =
        Prog->Context.makeVar(std::move(VarName), T, StorageKind::Global, Loc);
    Prog->Globals.push_back(G);
    declare(G);
    expect(TokenKind::Semi, "after global declaration");
    return;
  }
  parseVarOrFunc();
}

/// Resolves NameExprs appearing in locked(...) qualifiers of a struct's
/// field types against sibling fields ("lock is an expression or structure
/// field for the address of a lock").
static void resolveLockExprsInType(TypeNode *T, StructDecl *S) {
  if (!T)
    return;
  if (T->Q.M == Mode::Locked || T->Q.M == Mode::RwLocked) {
    if (auto *Name = dyn_cast<NameExpr>(T->Q.LockExpr)) {
      if (!Name->Var && !Name->Func)
        if (VarDecl *Field = S->findField(Name->Name))
          Name->Var = Field;
    }
  }
  resolveLockExprsInType(T->Pointee, S);
  resolveLockExprsInType(T->Ret, S);
  for (TypeNode *Param : T->Params)
    resolveLockExprsInType(Param, S);
}

void Parser::parseStructBody(StructDecl *S) {
  expect(TokenKind::LBrace, "to start struct body");
  if (S->IsDefined)
    Diags.error(Tok.Loc, "struct '" + S->Name + "' redefined");
  S->IsDefined = true;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    TypeNode *T = parseType();
    std::string Name;
    SourceLoc Loc = Tok.Loc;
    if (accept(TokenKind::LParen)) {
      // Function-pointer field: ret (*name)(params)
      if (!expect(TokenKind::Star, "in function pointer field")) {
        skipToRecoveryPoint();
        continue;
      }
      Qual PtrQual;
      T = parseFuncPointerSuffix(T, Name, PtrQual);
    } else if (check(TokenKind::Identifier)) {
      Name = std::string(consume().Text);
      if (accept(TokenKind::LBracket)) {
        TypeNode *Arr = Prog->Context.makeType(TypeKind::Array, Loc);
        Arr->Pointee = T;
        if (check(TokenKind::IntLiteral))
          Arr->ArraySize = consume().IntValue;
        expect(TokenKind::RBracket, "after array size");
        T = Arr;
      }
    } else {
      Diags.error(Tok.Loc, "expected field name");
      skipToRecoveryPoint();
      continue;
    }
    VarDecl *Field =
        Prog->Context.makeVar(std::move(Name), T, StorageKind::Field, Loc);
    Field->Parent = S;
    Field->FieldIndex = static_cast<unsigned>(S->Fields.size());
    S->Fields.push_back(Field);
    expect(TokenKind::Semi, "after struct field");
  }
  expect(TokenKind::RBrace, "to end struct body");
  for (VarDecl *Field : S->Fields)
    resolveLockExprsInType(Field->DeclType, S);
}

void Parser::parseTypedef() {
  consume(); // typedef
  if (check(TokenKind::KwStruct)) {
    SourceLoc Loc = Tok.Loc;
    consume();
    std::string StructName;
    if (check(TokenKind::Identifier))
      StructName = std::string(consume().Text);
    StructDecl *S = nullptr;
    if (!StructName.empty())
      S = Prog->findStruct(StructName);
    if (!S) {
      S = Prog->Context.makeStruct(
          StructName.empty() ? "<anon>" : StructName, Loc);
      Prog->Structs.push_back(S);
    }
    if (check(TokenKind::LBrace))
      parseStructBody(S);
    if (!check(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected typedef alias name");
      skipToRecoveryPoint();
      return;
    }
    std::string Alias(consume().Text);
    TypeNode *T = Prog->Context.makeType(TypeKind::Struct, Loc);
    T->Struct = S;
    Typedefs[Alias] = T;
    expect(TokenKind::Semi, "after typedef");
    return;
  }
  TypeNode *T = parseType();
  if (!check(TokenKind::Identifier)) {
    Diags.error(Tok.Loc, "expected typedef alias name");
    skipToRecoveryPoint();
    return;
  }
  std::string Alias(consume().Text);
  Typedefs[Alias] = T;
  expect(TokenKind::Semi, "after typedef");
}

void Parser::parseVarOrFunc() {
  SourceLoc Loc = Tok.Loc;
  if (!startsType()) {
    Diags.error(Tok.Loc, std::string("expected a declaration, found ") +
                             tokenKindName(Tok.Kind));
    consume();
    skipToRecoveryPoint();
    return;
  }
  TypeNode *T = parseType();
  if (!check(TokenKind::Identifier)) {
    Diags.error(Tok.Loc, "expected declarator name");
    skipToRecoveryPoint();
    return;
  }
  std::string Name(consume().Text);
  if (accept(TokenKind::LParen)) {
    parseFunctionRest(T, std::move(Name), Loc);
    return;
  }
  if (accept(TokenKind::LBracket)) {
    TypeNode *Arr = Prog->Context.makeType(TypeKind::Array, Loc);
    Arr->Pointee = T;
    if (check(TokenKind::IntLiteral))
      Arr->ArraySize = consume().IntValue;
    expect(TokenKind::RBracket, "after array size");
    T = Arr;
  }
  VarDecl *G = Prog->Context.makeVar(std::move(Name), T, StorageKind::Global,
                                     Loc);
  Prog->Globals.push_back(G);
  declare(G);
  expect(TokenKind::Semi, "after global declaration");
}

void Parser::parseFunctionRest(TypeNode *RetType, std::string Name,
                               SourceLoc Loc) {
  FuncDecl *F = Prog->findFunc(Name);
  if (F && F->Body) {
    Diags.error(Loc, "function '" + Name + "' redefined");
    F = nullptr;
  }
  if (!F) {
    F = Prog->Context.makeFunc(Name, Loc);
    Prog->Funcs.push_back(F);
  }
  F->RetType = RetType;
  pushScope();
  F->Params = parseParamList();
  expect(TokenKind::RParen, "after parameter list");
  // Build the function's type node (used for function pointers).
  TypeNode *FT = Prog->Context.makeType(TypeKind::Func, Loc);
  FT->Ret = RetType;
  for (VarDecl *Param : F->Params)
    FT->Params.push_back(Param->DeclType);
  F->FuncType = FT;
  if (accept(TokenKind::Semi)) {
    popScope();
    return; // prototype
  }
  for (VarDecl *Param : F->Params)
    declare(Param);
  F->Body = parseBlock();
  popScope();
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

BlockStmt *Parser::parseBlock() {
  SourceLoc Loc = Tok.Loc;
  expect(TokenKind::LBrace, "to start block");
  pushScope();
  std::vector<Stmt *> Body;
  while (!check(TokenKind::RBrace) && !check(TokenKind::Eof)) {
    Stmt *S = parseStmt();
    if (S)
      Body.push_back(S);
  }
  expect(TokenKind::RBrace, "to end block");
  popScope();
  return Prog->Context.makeStmt<BlockStmt>(std::move(Body), Loc);
}

Stmt *Parser::parseStmt() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::LBrace:
    return parseBlock();
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor: {
    consume();
    expect(TokenKind::LParen, "after 'for'");
    Stmt *Init = nullptr;
    if (!accept(TokenKind::Semi)) {
      if (startsType()) {
        Init = parseDeclStmt(); // consumes its ';'
      } else {
        Expr *InitExpr = parseExpr();
        Init = Prog->Context.makeStmt<ExprStmt>(InitExpr, Loc);
        expect(TokenKind::Semi, "after for-initializer");
      }
    }
    Expr *Cond = nullptr;
    if (!check(TokenKind::Semi))
      Cond = parseExpr();
    expect(TokenKind::Semi, "after for-condition");
    Expr *Step = nullptr;
    if (!check(TokenKind::RParen))
      Step = parseExpr();
    expect(TokenKind::RParen, "after for-step");
    Stmt *Body = parseStmt();
    return Prog->Context.makeStmt<ForStmt>(Init, Cond, Step, Body, Loc);
  }
  case TokenKind::KwReturn: {
    consume();
    Expr *Value = nullptr;
    if (!check(TokenKind::Semi))
      Value = parseExpr();
    expect(TokenKind::Semi, "after return");
    return Prog->Context.makeStmt<ReturnStmt>(Value, Loc);
  }
  case TokenKind::KwBreak:
    consume();
    expect(TokenKind::Semi, "after break");
    return Prog->Context.makeStmt<BreakStmt>(Loc);
  case TokenKind::KwContinue:
    consume();
    expect(TokenKind::Semi, "after continue");
    return Prog->Context.makeStmt<ContinueStmt>(Loc);
  case TokenKind::KwSpawn: {
    consume();
    if (!check(TokenKind::Identifier)) {
      Diags.error(Tok.Loc, "expected thread function name after 'spawn'");
      skipToRecoveryPoint();
      return nullptr;
    }
    std::string Callee(consume().Text);
    expect(TokenKind::LParen, "after spawn callee");
    Expr *Arg = nullptr;
    if (!check(TokenKind::RParen))
      Arg = parseExpr();
    expect(TokenKind::RParen, "after spawn argument");
    expect(TokenKind::Semi, "after spawn statement");
    auto *S = Prog->Context.makeStmt<SpawnStmt>(std::move(Callee), Arg, Loc);
    PendingSpawns.push_back(S);
    return S;
  }
  case TokenKind::KwFree: {
    consume();
    expect(TokenKind::LParen, "after free");
    Expr *Ptr = parseExpr();
    expect(TokenKind::RParen, "after free argument");
    expect(TokenKind::Semi, "after free statement");
    return Prog->Context.makeStmt<FreeStmt>(Ptr, Loc);
  }
  default:
    break;
  }
  if (startsType())
    return parseDeclStmt();
  Expr *E = parseExpr();
  expect(TokenKind::Semi, "after expression statement");
  return Prog->Context.makeStmt<ExprStmt>(E, Loc);
}

Stmt *Parser::parseIf() {
  SourceLoc Loc = Tok.Loc;
  consume();
  expect(TokenKind::LParen, "after 'if'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after if condition");
  Stmt *Then = parseStmt();
  Stmt *Else = nullptr;
  if (accept(TokenKind::KwElse))
    Else = parseStmt();
  return Prog->Context.makeStmt<IfStmt>(Cond, Then, Else, Loc);
}

Stmt *Parser::parseWhile() {
  SourceLoc Loc = Tok.Loc;
  consume();
  expect(TokenKind::LParen, "after 'while'");
  Expr *Cond = parseExpr();
  expect(TokenKind::RParen, "after while condition");
  Stmt *Body = parseStmt();
  return Prog->Context.makeStmt<WhileStmt>(Cond, Body, Loc);
}

Stmt *Parser::parseDeclStmt() {
  SourceLoc Loc = Tok.Loc;
  TypeNode *T = parseType();
  std::string Name;
  if (accept(TokenKind::LParen)) {
    // Local function pointer: ret (*name)(params)
    expect(TokenKind::Star, "in function pointer declarator");
    Qual PtrQual;
    T = parseFuncPointerSuffix(T, Name, PtrQual);
  } else if (check(TokenKind::Identifier)) {
    Name = std::string(consume().Text);
    if (accept(TokenKind::LBracket)) {
      TypeNode *Arr = Prog->Context.makeType(TypeKind::Array, Loc);
      Arr->Pointee = T;
      if (check(TokenKind::IntLiteral))
        Arr->ArraySize = consume().IntValue;
      expect(TokenKind::RBracket, "after array size");
      T = Arr;
    }
  } else {
    Diags.error(Tok.Loc, "expected local variable name");
    skipToRecoveryPoint();
    return nullptr;
  }
  VarDecl *Var =
      Prog->Context.makeVar(std::move(Name), T, StorageKind::Local, Loc);
  declare(Var);
  Expr *Init = nullptr;
  if (accept(TokenKind::Assign))
    Init = parseAssign();
  expect(TokenKind::Semi, "after declaration");
  return Prog->Context.makeStmt<DeclStmt>(Var, Init, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

Expr *Parser::parseExpr() { return parseAssign(); }

Expr *Parser::parseAssign() {
  Expr *Lhs = parseBinary(0);
  if (check(TokenKind::Assign)) {
    SourceLoc Loc = consume().Loc;
    Expr *Rhs = parseAssign();
    return Prog->Context.makeExpr<AssignExpr>(Lhs, Rhs, Loc);
  }
  return Lhs;
}

namespace {
struct BinOpInfo {
  TokenKind Kind;
  BinaryOp Op;
  int Prec;
};
} // namespace

static const BinOpInfo BinOps[] = {
    {TokenKind::PipePipe, BinaryOp::Or, 1},
    {TokenKind::AmpAmp, BinaryOp::And, 2},
    {TokenKind::EqEq, BinaryOp::Eq, 3},
    {TokenKind::NotEq, BinaryOp::Ne, 3},
    {TokenKind::Less, BinaryOp::Lt, 4},
    {TokenKind::LessEq, BinaryOp::Le, 4},
    {TokenKind::Greater, BinaryOp::Gt, 4},
    {TokenKind::GreaterEq, BinaryOp::Ge, 4},
    {TokenKind::Plus, BinaryOp::Add, 5},
    {TokenKind::Minus, BinaryOp::Sub, 5},
    {TokenKind::Star, BinaryOp::Mul, 6},
    {TokenKind::Slash, BinaryOp::Div, 6},
    {TokenKind::Percent, BinaryOp::Rem, 6},
};

static const BinOpInfo *findBinOp(TokenKind Kind) {
  for (const BinOpInfo &Info : BinOps)
    if (Info.Kind == Kind)
      return &Info;
  return nullptr;
}

Expr *Parser::parseBinary(int MinPrec) {
  Expr *Lhs = parseUnary();
  while (true) {
    const BinOpInfo *Info = findBinOp(Tok.Kind);
    if (!Info || Info->Prec < MinPrec)
      return Lhs;
    SourceLoc Loc = consume().Loc;
    Expr *Rhs = parseBinary(Info->Prec + 1);
    Lhs = Prog->Context.makeExpr<BinaryExpr>(Info->Op, Lhs, Rhs, Loc);
  }
}

Expr *Parser::parseUnary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::Star:
    consume();
    return Prog->Context.makeExpr<UnaryExpr>(UnaryOp::Deref, parseUnary(),
                                             Loc);
  case TokenKind::Amp:
    consume();
    return Prog->Context.makeExpr<UnaryExpr>(UnaryOp::AddrOf, parseUnary(),
                                             Loc);
  case TokenKind::Bang:
    consume();
    return Prog->Context.makeExpr<UnaryExpr>(UnaryOp::Not, parseUnary(), Loc);
  case TokenKind::Minus:
    consume();
    return Prog->Context.makeExpr<UnaryExpr>(UnaryOp::Neg, parseUnary(), Loc);
  default:
    return parsePostfix();
  }
}

Expr *Parser::parsePostfix() {
  Expr *E = parsePrimary();
  while (true) {
    SourceLoc Loc = Tok.Loc;
    if (accept(TokenKind::Dot)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(Tok.Loc, "expected field name after '.'");
        return E;
      }
      E = Prog->Context.makeExpr<MemberExpr>(E, std::string(consume().Text),
                                             /*IsArrow=*/false, Loc);
    } else if (accept(TokenKind::Arrow)) {
      if (!check(TokenKind::Identifier)) {
        Diags.error(Tok.Loc, "expected field name after '->'");
        return E;
      }
      E = Prog->Context.makeExpr<MemberExpr>(E, std::string(consume().Text),
                                             /*IsArrow=*/true, Loc);
    } else if (accept(TokenKind::LBracket)) {
      Expr *Idx = parseExpr();
      expect(TokenKind::RBracket, "after index");
      E = Prog->Context.makeExpr<IndexExpr>(E, Idx, Loc);
    } else if (accept(TokenKind::LParen)) {
      std::vector<Expr *> Args;
      if (!check(TokenKind::RParen)) {
        do {
          Args.push_back(parseAssign());
        } while (accept(TokenKind::Comma));
      }
      expect(TokenKind::RParen, "after call arguments");
      E = Prog->Context.makeExpr<CallExpr>(E, std::move(Args), Loc);
    } else {
      return E;
    }
  }
}

Expr *Parser::parsePrimary() {
  SourceLoc Loc = Tok.Loc;
  switch (Tok.Kind) {
  case TokenKind::IntLiteral: {
    Token T = consume();
    return Prog->Context.makeExpr<IntLitExpr>(T.IntValue, Loc);
  }
  case TokenKind::CharLiteral: {
    Token T = consume();
    return Prog->Context.makeExpr<IntLitExpr>(T.IntValue, Loc);
  }
  case TokenKind::StringLiteral: {
    Token T = consume();
    // Decode escapes; strip quotes.
    std::string Decoded;
    std::string_view Raw = T.Text.substr(1, T.Text.size() - 2);
    for (size_t I = 0; I != Raw.size(); ++I) {
      if (Raw[I] == '\\' && I + 1 != Raw.size()) {
        ++I;
        char C = Raw[I];
        Decoded += C == 'n' ? '\n' : C == 't' ? '\t' : C == '0' ? '\0' : C;
      } else {
        Decoded += Raw[I];
      }
    }
    return Prog->Context.makeExpr<StrLitExpr>(std::move(Decoded), Loc);
  }
  case TokenKind::KwTrue:
    consume();
    return Prog->Context.makeExpr<BoolLitExpr>(true, Loc);
  case TokenKind::KwFalse:
    consume();
    return Prog->Context.makeExpr<BoolLitExpr>(false, Loc);
  case TokenKind::KwNull:
    consume();
    return Prog->Context.makeExpr<NullLitExpr>(Loc);
  case TokenKind::KwScast: {
    consume();
    expect(TokenKind::LParen, "after SCAST");
    TypeNode *Target = parseType();
    expect(TokenKind::Comma, "between SCAST type and expression");
    Expr *Src = parseExpr();
    expect(TokenKind::RParen, "after SCAST");
    return Prog->Context.makeExpr<ScastExpr>(Target, Src, Loc);
  }
  case TokenKind::KwNew: {
    consume();
    TypeNode *Elem = parseType();
    Expr *Count = nullptr;
    if (accept(TokenKind::LBracket)) {
      Count = parseExpr();
      expect(TokenKind::RBracket, "after new[] count");
    }
    return Prog->Context.makeExpr<NewExpr>(Elem, Count, Loc);
  }
  case TokenKind::KwSizeof: {
    consume();
    expect(TokenKind::LParen, "after sizeof");
    TypeNode *T = parseType();
    expect(TokenKind::RParen, "after sizeof type");
    return Prog->Context.makeExpr<SizeofExpr>(T, Loc);
  }
  case TokenKind::Identifier: {
    Token T = consume();
    auto *Name = Prog->Context.makeExpr<NameExpr>(std::string(T.Text), Loc);
    if (VarDecl *Var = lookup(Name->Name))
      Name->Var = Var;
    else
      PendingNames.push_back(Name);
    return Name;
  }
  case TokenKind::LParen: {
    consume();
    Expr *E = parseExpr();
    expect(TokenKind::RParen, "after parenthesized expression");
    return E;
  }
  default:
    Diags.error(Loc, std::string("expected an expression, found ") +
                         tokenKindName(Tok.Kind));
    consume();
    return Prog->Context.makeExpr<IntLitExpr>(0, Loc);
  }
}

//===----------------------------------------------------------------------===//
// Scopes, resolution, builtins
//===----------------------------------------------------------------------===//

void Parser::declare(VarDecl *Var) {
  if (Var->Name.empty())
    return;
  auto &Scope = Scopes.back();
  if (!Scope.emplace(Var->Name, Var).second)
    Diags.error(Var->Loc, "redeclaration of '" + Var->Name + "'");
}

VarDecl *Parser::lookup(const std::string &Name) const {
  for (auto It = Scopes.rbegin(); It != Scopes.rend(); ++It) {
    auto Found = It->find(Name);
    if (Found != It->end())
      return Found->second;
  }
  return nullptr;
}

void Parser::resolveProgram() {
  for (NameExpr *Name : PendingNames) {
    if (Name->Var)
      continue;
    if (FuncDecl *F = Prog->findFunc(Name->Name)) {
      Name->Func = F;
      continue;
    }
    if (VarDecl *G = Prog->findGlobal(Name->Name)) {
      Name->Var = G;
      continue;
    }
    Diags.error(Name->Loc, "use of undeclared identifier '" + Name->Name +
                               "'");
  }
  for (SpawnStmt *Spawn : PendingSpawns) {
    Spawn->Callee = Prog->findFunc(Spawn->CalleeName);
    if (!Spawn->Callee)
      Diags.error(Spawn->Loc, "spawn of undeclared function '" +
                                  Spawn->CalleeName + "'");
  }
  for (StructDecl *S : Prog->Structs)
    if (!S->IsDefined)
      Diags.error(S->Loc, "struct '" + S->Name + "' used but never defined");
}

void Parser::declareBuiltins() {
  ASTContext &Ctx = Prog->Context;
  auto MakeBuiltin = [&](const char *Name,
                         std::vector<TypeNode *> ParamTypes,
                         std::vector<ParamSummary> Summaries) {
    FuncDecl *F = Ctx.makeFunc(Name, SourceLoc());
    F->IsBuiltin = true;
    F->RetType = Ctx.makeType(TypeKind::Void);
    for (size_t I = 0; I != ParamTypes.size(); ++I) {
      VarDecl *Param = Ctx.makeVar("arg" + std::to_string(I), ParamTypes[I],
                                   StorageKind::Param, SourceLoc());
      F->Params.push_back(Param);
    }
    F->Summaries = std::move(Summaries);
    TypeNode *FT = Ctx.makeType(TypeKind::Func);
    FT->Ret = F->RetType;
    for (VarDecl *Param : F->Params)
      FT->Params.push_back(Param->DeclType);
    F->FuncType = FT;
    Prog->Funcs.push_back(F);
  };

  auto RacyPtr = [&](TypeKind Kind) {
    TypeNode *Base = Ctx.makeType(Kind);
    Base->Q.M = Mode::Racy;
    TypeNode *Ptr = Ctx.makeType(TypeKind::Pointer);
    Ptr->Pointee = Base;
    return Ptr;
  };

  // The pthread-flavoured builtins; mutex/cond internals are racy by
  // nature (Section 4.1). Summaries mark their pointees read+written so
  // any sharing mode except locked may be passed (Section 4.4).
  MakeBuiltin("mutex_lock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});
  MakeBuiltin("mutex_unlock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});
  MakeBuiltin("cond_wait", {RacyPtr(TypeKind::Cond), RacyPtr(TypeKind::Mutex)},
              {{true, true}, {true, true}});
  MakeBuiltin("cond_signal", {RacyPtr(TypeKind::Cond)}, {{true, true}});
  MakeBuiltin("cond_broadcast", {RacyPtr(TypeKind::Cond)}, {{true, true}});

  // Reader-writer lock builtins (Section 7 extension). RW locks reuse the
  // inherently racy mutex type.
  MakeBuiltin("rwlock_rdlock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});
  MakeBuiltin("rwlock_rdunlock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});
  MakeBuiltin("rwlock_wrlock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});
  MakeBuiltin("rwlock_wrunlock", {RacyPtr(TypeKind::Mutex)}, {{true, true}});

  // print_int(int): no pointer arguments.
  {
    FuncDecl *F = Ctx.makeFunc("print_int", SourceLoc());
    F->IsBuiltin = true;
    F->RetType = Ctx.makeType(TypeKind::Void);
    F->Params.push_back(Ctx.makeVar("value", Ctx.makeType(TypeKind::Int),
                                    StorageKind::Param, SourceLoc()));
    F->Summaries = {{false, false}};
    TypeNode *FT = Ctx.makeType(TypeKind::Func);
    FT->Ret = F->RetType;
    FT->Params.push_back(F->Params[0]->DeclType);
    F->FuncType = FT;
    Prog->Funcs.push_back(F);
  }

  // print_str(char readonly *): reads its pointee.
  {
    FuncDecl *F = Ctx.makeFunc("print_str", SourceLoc());
    F->IsBuiltin = true;
    F->RetType = Ctx.makeType(TypeKind::Void);
    TypeNode *Char = Ctx.makeType(TypeKind::Char);
    TypeNode *Ptr = Ctx.makeType(TypeKind::Pointer);
    Ptr->Pointee = Char;
    F->Params.push_back(
        Ctx.makeVar("str", Ptr, StorageKind::Param, SourceLoc()));
    F->Summaries = {{true, false}};
    TypeNode *FT = Ctx.makeType(TypeKind::Func);
    FT->Ret = F->RetType;
    FT->Params.push_back(Ptr);
    F->FuncType = FT;
    Prog->Funcs.push_back(F);
  }
}
