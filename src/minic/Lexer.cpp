//===-- minic/Lexer.cpp ---------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Lexer.h"

#include <cctype>
#include <unordered_map>

using namespace sharc;
using namespace sharc::minic;

const char *sharc::minic::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Star:
    return "'*'";
  case TokenKind::Amp:
    return "'&'";
  case TokenKind::Plus:
    return "'+'";
  case TokenKind::Minus:
    return "'-'";
  case TokenKind::Slash:
    return "'/'";
  case TokenKind::Percent:
    return "'%'";
  case TokenKind::Assign:
    return "'='";
  case TokenKind::EqEq:
    return "'=='";
  case TokenKind::NotEq:
    return "'!='";
  case TokenKind::Less:
    return "'<'";
  case TokenKind::LessEq:
    return "'<='";
  case TokenKind::Greater:
    return "'>'";
  case TokenKind::GreaterEq:
    return "'>='";
  case TokenKind::AmpAmp:
    return "'&&'";
  case TokenKind::PipePipe:
    return "'||'";
  case TokenKind::Bang:
    return "'!'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Arrow:
    return "'->'";
  case TokenKind::KwInt:
    return "'int'";
  case TokenKind::KwChar:
    return "'char'";
  case TokenKind::KwVoid:
    return "'void'";
  case TokenKind::KwBool:
    return "'bool'";
  case TokenKind::KwMutex:
    return "'mutex'";
  case TokenKind::KwCond:
    return "'cond'";
  case TokenKind::KwStruct:
    return "'struct'";
  case TokenKind::KwTypedef:
    return "'typedef'";
  case TokenKind::KwPrivate:
    return "'private'";
  case TokenKind::KwReadonly:
    return "'readonly'";
  case TokenKind::KwLocked:
    return "'locked'";
  case TokenKind::KwRwLocked:
    return "'rwlocked'";
  case TokenKind::KwRacy:
    return "'racy'";
  case TokenKind::KwDynamic:
    return "'dynamic'";
  case TokenKind::KwIf:
    return "'if'";
  case TokenKind::KwElse:
    return "'else'";
  case TokenKind::KwWhile:
    return "'while'";
  case TokenKind::KwFor:
    return "'for'";
  case TokenKind::KwReturn:
    return "'return'";
  case TokenKind::KwBreak:
    return "'break'";
  case TokenKind::KwContinue:
    return "'continue'";
  case TokenKind::KwSpawn:
    return "'spawn'";
  case TokenKind::KwNew:
    return "'new'";
  case TokenKind::KwFree:
    return "'free'";
  case TokenKind::KwScast:
    return "'SCAST'";
  case TokenKind::KwSizeof:
    return "'sizeof'";
  case TokenKind::KwNull:
    return "'null'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::CharLiteral:
    return "character literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::Eof:
    return "end of file";
  case TokenKind::Error:
    return "invalid token";
  }
  return "token";
}

Lexer::Lexer(const SourceManager &SM, FileId File, DiagnosticEngine &Diags)
    : SM(SM), File(File), Diags(Diags), Text(SM.getText(File)) {}

char Lexer::peek(unsigned Ahead) const {
  return Pos + Ahead < Text.size() ? Text[Pos + Ahead] : '\0';
}

char Lexer::advance() {
  char C = Text[Pos++];
  if (C == '\n') {
    ++Line;
    Col = 1;
  } else {
    ++Col;
  }
  return C;
}

bool Lexer::match(char Expected) {
  if (peek() != Expected)
    return false;
  advance();
  return true;
}

SourceLoc Lexer::currentLoc() const { return SourceLoc(File, Line, Col); }

void Lexer::skipWhitespaceAndComments() {
  while (Pos < Text.size()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r' || C == '\n') {
      advance();
      continue;
    }
    if (C == '/' && peek(1) == '/') {
      while (Pos < Text.size() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '/' && peek(1) == '*') {
      SourceLoc Start = currentLoc();
      advance();
      advance();
      while (Pos < Text.size() && !(peek() == '*' && peek(1) == '/'))
        advance();
      if (Pos >= Text.size()) {
        Diags.error(Start, "unterminated block comment");
        return;
      }
      advance();
      advance();
      continue;
    }
    return;
  }
}

Token Lexer::makeToken(TokenKind Kind, size_t Begin, SourceLoc Loc) {
  Token Tok;
  Tok.Kind = Kind;
  Tok.Loc = Loc;
  Tok.Text = Text.substr(Begin, Pos - Begin);
  return Tok;
}

Token Lexer::lexIdentifierOrKeyword(size_t Begin, SourceLoc Loc) {
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  std::string_view Spelling = Text.substr(Begin, Pos - Begin);

  static const std::unordered_map<std::string_view, TokenKind> Keywords = {
      {"int", TokenKind::KwInt},         {"char", TokenKind::KwChar},
      {"void", TokenKind::KwVoid},       {"bool", TokenKind::KwBool},
      {"mutex", TokenKind::KwMutex},     {"cond", TokenKind::KwCond},
      {"struct", TokenKind::KwStruct},   {"typedef", TokenKind::KwTypedef},
      {"private", TokenKind::KwPrivate}, {"readonly", TokenKind::KwReadonly},
      {"locked", TokenKind::KwLocked},   {"racy", TokenKind::KwRacy},
      {"rwlocked", TokenKind::KwRwLocked},
      {"dynamic", TokenKind::KwDynamic}, {"if", TokenKind::KwIf},
      {"else", TokenKind::KwElse},       {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},         {"return", TokenKind::KwReturn},
      {"break", TokenKind::KwBreak},     {"continue", TokenKind::KwContinue},
      {"spawn", TokenKind::KwSpawn},     {"new", TokenKind::KwNew},
      {"free", TokenKind::KwFree},       {"SCAST", TokenKind::KwScast},
      {"sizeof", TokenKind::KwSizeof},   {"null", TokenKind::KwNull},
      {"NULL", TokenKind::KwNull},       {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  auto It = Keywords.find(Spelling);
  Token Tok = makeToken(It == Keywords.end() ? TokenKind::Identifier
                                             : It->second,
                        Begin, Loc);
  return Tok;
}

Token Lexer::lexNumber(size_t Begin, SourceLoc Loc) {
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  Token Tok = makeToken(TokenKind::IntLiteral, Begin, Loc);
  int64_t Value = 0;
  for (char C : Tok.Text)
    Value = Value * 10 + (C - '0');
  Tok.IntValue = Value;
  return Tok;
}

static int decodeEscape(char C) {
  switch (C) {
  case 'n':
    return '\n';
  case 't':
    return '\t';
  case 'r':
    return '\r';
  case '0':
    return '\0';
  case '\\':
    return '\\';
  case '\'':
    return '\'';
  case '"':
    return '"';
  default:
    return C;
  }
}

Token Lexer::lexCharLiteral(size_t Begin, SourceLoc Loc) {
  int64_t Value = 0;
  if (peek() == '\\') {
    advance();
    Value = decodeEscape(advance());
  } else if (Pos < Text.size()) {
    Value = advance();
  }
  if (!match('\'')) {
    Diags.error(Loc, "unterminated character literal");
    return makeToken(TokenKind::Error, Begin, Loc);
  }
  Token Tok = makeToken(TokenKind::CharLiteral, Begin, Loc);
  Tok.IntValue = Value;
  return Tok;
}

Token Lexer::lexStringLiteral(size_t Begin, SourceLoc Loc) {
  while (Pos < Text.size() && peek() != '"') {
    if (peek() == '\\')
      advance();
    advance();
  }
  if (!match('"')) {
    Diags.error(Loc, "unterminated string literal");
    return makeToken(TokenKind::Error, Begin, Loc);
  }
  return makeToken(TokenKind::StringLiteral, Begin, Loc);
}

Token Lexer::next() {
  skipWhitespaceAndComments();
  SourceLoc Loc = currentLoc();
  size_t Begin = Pos;
  if (Pos >= Text.size())
    return makeToken(TokenKind::Eof, Begin, Loc);

  char C = advance();
  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword(Begin, Loc);
  if (std::isdigit(static_cast<unsigned char>(C)))
    return lexNumber(Begin, Loc);

  switch (C) {
  case '(':
    return makeToken(TokenKind::LParen, Begin, Loc);
  case ')':
    return makeToken(TokenKind::RParen, Begin, Loc);
  case '{':
    return makeToken(TokenKind::LBrace, Begin, Loc);
  case '}':
    return makeToken(TokenKind::RBrace, Begin, Loc);
  case '[':
    return makeToken(TokenKind::LBracket, Begin, Loc);
  case ']':
    return makeToken(TokenKind::RBracket, Begin, Loc);
  case ';':
    return makeToken(TokenKind::Semi, Begin, Loc);
  case ',':
    return makeToken(TokenKind::Comma, Begin, Loc);
  case '*':
    return makeToken(TokenKind::Star, Begin, Loc);
  case '+':
    return makeToken(TokenKind::Plus, Begin, Loc);
  case '%':
    return makeToken(TokenKind::Percent, Begin, Loc);
  case '.':
    return makeToken(TokenKind::Dot, Begin, Loc);
  case '/':
    return makeToken(TokenKind::Slash, Begin, Loc);
  case '&':
    return makeToken(match('&') ? TokenKind::AmpAmp : TokenKind::Amp, Begin,
                     Loc);
  case '|':
    if (match('|'))
      return makeToken(TokenKind::PipePipe, Begin, Loc);
    break;
  case '!':
    return makeToken(match('=') ? TokenKind::NotEq : TokenKind::Bang, Begin,
                     Loc);
  case '=':
    return makeToken(match('=') ? TokenKind::EqEq : TokenKind::Assign, Begin,
                     Loc);
  case '<':
    return makeToken(match('=') ? TokenKind::LessEq : TokenKind::Less, Begin,
                     Loc);
  case '>':
    return makeToken(match('=') ? TokenKind::GreaterEq : TokenKind::Greater,
                     Begin, Loc);
  case '-':
    if (match('>'))
      return makeToken(TokenKind::Arrow, Begin, Loc);
    return makeToken(TokenKind::Minus, Begin, Loc);
  case '\'':
    return lexCharLiteral(Begin, Loc);
  case '"':
    return lexStringLiteral(Begin, Loc);
  default:
    break;
  }
  Diags.error(Loc, std::string("unexpected character '") + C + "'");
  return makeToken(TokenKind::Error, Begin, Loc);
}
