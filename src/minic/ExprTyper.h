//===-- minic/ExprTyper.h - Shape typing for expressions --------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Computes Expr::ExprType for every expression in a program: the *shape*
/// level of typing (pointers, structs, fields), shared by the sharing
/// analysis (which needs type positions to attach qualifier variables to)
/// and the static checker (which validates qualifiers on top).
///
/// Where possible an expression's type IS the TypeNode of the cell it
/// denotes (variable decl types, field decl types, pointee nodes), so that
/// qualifier constraints generated against expression types directly
/// constrain the underlying declarations.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_EXPRTYPER_H
#define SHARC_MINIC_EXPRTYPER_H

#include "minic/AST.h"
#include "support/Diagnostics.h"

namespace sharc {
namespace minic {

/// Fills in ExprType for all expressions of a program. Reports shape
/// errors (dereferencing a non-pointer, unknown fields, call arity
/// mismatches) through the DiagnosticEngine.
class ExprTyper {
public:
  ExprTyper(Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  /// Types the whole program. \returns true if no shape errors occurred.
  bool run();

  /// Types a single expression (used recursively and by tests).
  TypeNode *typeExpr(Expr *E);

private:
  void typeStmt(Stmt *S, FuncDecl *F);

  TypeNode *freshInt(SourceLoc Loc);
  TypeNode *freshBool(SourceLoc Loc);

  Program &Prog;
  DiagnosticEngine &Diags;
};

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_EXPRTYPER_H
