//===-- minic/Type.cpp ----------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/Type.h"

#include "minic/AST.h"

using namespace sharc;
using namespace sharc::minic;

const char *sharc::minic::modeName(Mode M) {
  switch (M) {
  case Mode::Unspec:
    return "";
  case Mode::Private:
    return "private";
  case Mode::ReadOnly:
    return "readonly";
  case Mode::Locked:
    return "locked";
  case Mode::RwLocked:
    return "rwlocked";
  case Mode::Racy:
    return "racy";
  case Mode::Dynamic:
    return "dynamic";
  case Mode::Poly:
    return "q";
  }
  return "";
}

const char *sharc::minic::binaryOpSpelling(BinaryOp Op) {
  switch (Op) {
  case BinaryOp::Add:
    return "+";
  case BinaryOp::Sub:
    return "-";
  case BinaryOp::Mul:
    return "*";
  case BinaryOp::Div:
    return "/";
  case BinaryOp::Rem:
    return "%";
  case BinaryOp::Eq:
    return "==";
  case BinaryOp::Ne:
    return "!=";
  case BinaryOp::Lt:
    return "<";
  case BinaryOp::Le:
    return "<=";
  case BinaryOp::Gt:
    return ">";
  case BinaryOp::Ge:
    return ">=";
  case BinaryOp::And:
    return "&&";
  case BinaryOp::Or:
    return "||";
  }
  return "?";
}

bool sharc::minic::sameShape(const TypeNode *A, const TypeNode *B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind)
    return false;
  switch (A->Kind) {
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Bool:
  case TypeKind::Void:
  case TypeKind::Mutex:
  case TypeKind::Cond:
    return true;
  case TypeKind::Pointer:
    return sameShape(A->Pointee, B->Pointee);
  case TypeKind::Array:
    return A->ArraySize == B->ArraySize && sameShape(A->Pointee, B->Pointee);
  case TypeKind::Struct:
    return A->Struct == B->Struct;
  case TypeKind::Func: {
    if (A->Params.size() != B->Params.size())
      return false;
    if (!sameShape(A->Ret, B->Ret))
      return false;
    for (size_t I = 0; I != A->Params.size(); ++I)
      if (!sameShape(A->Params[I], B->Params[I]))
        return false;
    return true;
  }
  }
  return false;
}

/// \returns the declaration a lock expression ultimately names: a lock
/// variable for locked(m), the lock *field* for locked(mut) inside a
/// struct or locked(s->mut) at a use site. Field locks compare by field
/// identity because both spellings denote "the mut field of the guarded
/// instance".
static const VarDecl *lockIdentity(const Expr *Lock) {
  if (auto *Name = dyn_cast<NameExpr>(Lock))
    return Name->Var;
  if (auto *Member = dyn_cast<MemberExpr>(Lock))
    return Member->Field;
  return nullptr;
}

static bool sameLockExpr(const Expr *A, const Expr *B) {
  if (A == B)
    return true;
  if (!A || !B)
    return false;
  const VarDecl *IdA = lockIdentity(A);
  const VarDecl *IdB = lockIdentity(B);
  if (IdA && IdB)
    return IdA == IdB;
  // Fall back to spelling for compound lock expressions.
  return A->spelling() == B->spelling();
}

static bool sameQual(const Qual &A, const Qual &B) {
  if (A.M != B.M)
    return false;
  if (A.M == Mode::Locked || A.M == Mode::RwLocked)
    return sameLockExpr(A.LockExpr, B.LockExpr);
  return true;
}

bool sharc::minic::sameTypeAndQuals(const TypeNode *A, const TypeNode *B) {
  if (A == B)
    return true;
  if (!A || !B || A->Kind != B->Kind || !sameQual(A->Q, B->Q))
    return false;
  switch (A->Kind) {
  case TypeKind::Int:
  case TypeKind::Char:
  case TypeKind::Bool:
  case TypeKind::Void:
  case TypeKind::Mutex:
  case TypeKind::Cond:
    return true;
  case TypeKind::Pointer:
    return sameTypeAndQuals(A->Pointee, B->Pointee);
  case TypeKind::Array:
    return A->ArraySize == B->ArraySize &&
           sameTypeAndQuals(A->Pointee, B->Pointee);
  case TypeKind::Struct:
    return A->Struct == B->Struct;
  case TypeKind::Func: {
    if (A->Params.size() != B->Params.size())
      return false;
    if (!sameTypeAndQuals(A->Ret, B->Ret))
      return false;
    for (size_t I = 0; I != A->Params.size(); ++I)
      if (!sameTypeAndQuals(A->Params[I], B->Params[I]))
        return false;
    return true;
  }
  }
  return false;
}

static std::string qualToString(const Qual &Q) {
  if (Q.M == Mode::Unspec)
    return "";
  if (Q.M == Mode::Locked || Q.M == Mode::RwLocked) {
    std::string S = modeName(Q.M);
    S += "(";
    S += Q.LockExpr ? Q.LockExpr->spelling() : "?";
    S += ")";
    return S;
  }
  return modeName(Q.M);
}

static std::string baseName(const TypeNode *T) {
  switch (T->Kind) {
  case TypeKind::Int:
    return "int";
  case TypeKind::Char:
    return "char";
  case TypeKind::Bool:
    return "bool";
  case TypeKind::Void:
    return "void";
  case TypeKind::Mutex:
    return "mutex";
  case TypeKind::Cond:
    return "cond";
  case TypeKind::Struct:
    return "struct " + (T->Struct ? T->Struct->Name : std::string("?"));
  default:
    return "?";
  }
}

std::string sharc::minic::typeToString(const TypeNode *T) {
  if (!T)
    return "<null-type>";
  switch (T->Kind) {
  case TypeKind::Pointer: {
    std::string S = typeToString(T->Pointee);
    S += " *";
    std::string Q = qualToString(T->Q);
    if (!Q.empty()) {
      S += Q;
    }
    return S;
  }
  case TypeKind::Array: {
    std::string S = typeToString(T->Pointee);
    S += "[";
    if (T->ArraySize)
      S += std::to_string(T->ArraySize);
    S += "]";
    return S;
  }
  case TypeKind::Func: {
    std::string S = typeToString(T->Ret) + " (*)(";
    for (size_t I = 0; I != T->Params.size(); ++I) {
      if (I)
        S += ", ";
      S += typeToString(T->Params[I]);
    }
    return S + ")";
  }
  default: {
    std::string S = baseName(T);
    std::string Q = qualToString(T->Q);
    if (!Q.empty()) {
      S += " ";
      S += Q;
    }
    return S;
  }
  }
}

TypeNode *ASTContext::cloneType(const TypeNode *T) {
  if (!T)
    return nullptr;
  TypeNode *Copy = makeType(T->Kind, T->Loc);
  Copy->Q = T->Q;
  Copy->ArraySize = T->ArraySize;
  Copy->Struct = T->Struct;
  Copy->Pointee = cloneType(T->Pointee);
  Copy->Ret = cloneType(T->Ret);
  for (const TypeNode *Param : T->Params)
    Copy->Params.push_back(cloneType(Param));
  return Copy;
}
