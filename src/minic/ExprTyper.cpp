//===-- minic/ExprTyper.cpp -----------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "minic/ExprTyper.h"

using namespace sharc;
using namespace sharc::minic;

TypeNode *ExprTyper::freshInt(SourceLoc Loc) {
  return Prog.Context.makeType(TypeKind::Int, Loc);
}

TypeNode *ExprTyper::freshBool(SourceLoc Loc) {
  return Prog.Context.makeType(TypeKind::Bool, Loc);
}

bool ExprTyper::run() {
  unsigned ErrorsBefore = Diags.getNumErrors();
  for (FuncDecl *F : Prog.Funcs)
    if (F->Body)
      typeStmt(F->Body, F);
  // Lock expressions live inside type qualifiers; type them too so field
  // references resolve (locked(s->mut) must know which field mut is).
  Prog.Context.forEachType([&](TypeNode *T) {
    if ((T->Q.M == Mode::Locked || T->Q.M == Mode::RwLocked) &&
        T->Q.LockExpr)
      typeExpr(T->Q.LockExpr);
  });
  return Diags.getNumErrors() == ErrorsBefore;
}

void ExprTyper::typeStmt(Stmt *S, FuncDecl *F) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block:
    for (Stmt *Child : cast<BlockStmt>(S)->Body)
      typeStmt(Child, F);
    return;
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    typeExpr(If->Cond);
    typeStmt(If->Then, F);
    typeStmt(If->Else, F);
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    typeExpr(While->Cond);
    typeStmt(While->Body, F);
    return;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    typeStmt(For->Init, F);
    if (For->Cond)
      typeExpr(For->Cond);
    if (For->Step)
      typeExpr(For->Step);
    typeStmt(For->Body, F);
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value)
      typeExpr(Ret->Value);
    return;
  }
  case StmtKind::ExprStmt:
    typeExpr(cast<ExprStmt>(S)->E);
    return;
  case StmtKind::DeclStmt: {
    auto *Decl = cast<DeclStmt>(S);
    if (Decl->Init)
      typeExpr(Decl->Init);
    return;
  }
  case StmtKind::Spawn: {
    auto *Spawn = cast<SpawnStmt>(S);
    if (Spawn->Arg)
      typeExpr(Spawn->Arg);
    if (Spawn->Callee && Spawn->Arg && Spawn->Callee->Params.empty())
      Diags.error(Spawn->Loc, "spawned function '" + Spawn->CalleeName +
                                  "' takes no argument");
    return;
  }
  case StmtKind::Free:
    typeExpr(cast<FreeStmt>(S)->Ptr);
    return;
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

TypeNode *ExprTyper::typeExpr(Expr *E) {
  if (!E)
    return nullptr;
  if (E->ExprType)
    return E->ExprType;

  switch (E->Kind) {
  case ExprKind::IntLit:
    E->ExprType = freshInt(E->Loc);
    break;
  case ExprKind::BoolLit:
    E->ExprType = freshBool(E->Loc);
    break;
  case ExprKind::NullLit: {
    // null has type "pointer to void"; assignment checking special-cases
    // null so the pointee qualifier is unconstrained.
    TypeNode *Ptr = Prog.Context.makeType(TypeKind::Pointer, E->Loc);
    Ptr->Pointee = Prog.Context.makeType(TypeKind::Void, E->Loc);
    E->ExprType = Ptr;
    break;
  }
  case ExprKind::StrLit: {
    // String literals are readonly character arrays.
    TypeNode *Char = Prog.Context.makeType(TypeKind::Char, E->Loc);
    Char->Q.M = Mode::ReadOnly;
    TypeNode *Ptr = Prog.Context.makeType(TypeKind::Pointer, E->Loc);
    Ptr->Pointee = Char;
    E->ExprType = Ptr;
    break;
  }
  case ExprKind::Name: {
    auto *Name = cast<NameExpr>(E);
    if (Name->Var) {
      E->ExprType = Name->Var->DeclType;
    } else if (Name->Func) {
      E->ExprType = Name->Func->FuncType;
    } else {
      E->ExprType = freshInt(E->Loc); // error recovery
    }
    break;
  }
  case ExprKind::Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    TypeNode *Sub = typeExpr(Unary->Sub);
    switch (Unary->Op) {
    case UnaryOp::Deref:
      if (Sub && Sub->isPointer()) {
        E->ExprType = Sub->Pointee;
      } else {
        Diags.error(E->Loc, "cannot dereference non-pointer value");
        E->ExprType = freshInt(E->Loc);
      }
      break;
    case UnaryOp::AddrOf: {
      TypeNode *Ptr = Prog.Context.makeType(TypeKind::Pointer, E->Loc);
      Ptr->Pointee = Sub;
      E->ExprType = Ptr;
      break;
    }
    case UnaryOp::Not:
      E->ExprType = freshBool(E->Loc);
      break;
    case UnaryOp::Neg:
      E->ExprType = freshInt(E->Loc);
      break;
    }
    break;
  }
  case ExprKind::Binary: {
    auto *Binary = cast<BinaryExpr>(E);
    TypeNode *Lhs = typeExpr(Binary->Lhs);
    typeExpr(Binary->Rhs);
    switch (Binary->Op) {
    case BinaryOp::Eq:
    case BinaryOp::Ne:
    case BinaryOp::Lt:
    case BinaryOp::Le:
    case BinaryOp::Gt:
    case BinaryOp::Ge:
    case BinaryOp::And:
    case BinaryOp::Or:
      E->ExprType = freshBool(E->Loc);
      break;
    default:
      // Pointer arithmetic keeps the pointer type.
      if (Lhs && Lhs->isPointer())
        E->ExprType = Lhs;
      else
        E->ExprType = freshInt(E->Loc);
      break;
    }
    break;
  }
  case ExprKind::Assign: {
    auto *Assign = cast<AssignExpr>(E);
    TypeNode *Lhs = typeExpr(Assign->Lhs);
    typeExpr(Assign->Rhs);
    E->ExprType = Lhs;
    break;
  }
  case ExprKind::Call: {
    auto *Call = cast<CallExpr>(E);
    TypeNode *Callee = typeExpr(Call->Callee);
    for (Expr *Arg : Call->Args)
      typeExpr(Arg);
    TypeNode *FuncType = nullptr;
    if (Callee && Callee->isFunc())
      FuncType = Callee;
    else if (Callee && Callee->isPointer() && Callee->Pointee &&
             Callee->Pointee->isFunc())
      FuncType = Callee->Pointee;
    if (!FuncType) {
      Diags.error(E->Loc, "called value is not a function");
      E->ExprType = freshInt(E->Loc);
      break;
    }
    if (FuncType->Params.size() != Call->Args.size())
      Diags.error(E->Loc,
                  "call argument count mismatch: expected " +
                      std::to_string(FuncType->Params.size()) + ", got " +
                      std::to_string(Call->Args.size()));
    E->ExprType = FuncType->Ret;
    break;
  }
  case ExprKind::Member: {
    auto *Member = cast<MemberExpr>(E);
    TypeNode *Base = typeExpr(Member->Base);
    const TypeNode *StructTy = nullptr;
    if (Member->IsArrow) {
      if (Base && Base->isPointer() && Base->Pointee &&
          Base->Pointee->isStruct())
        StructTy = Base->Pointee;
      else
        Diags.error(E->Loc, "'->' applied to non-struct-pointer");
    } else {
      if (Base && Base->isStruct())
        StructTy = Base;
      else
        Diags.error(E->Loc, "'.' applied to non-struct value");
    }
    if (StructTy && StructTy->Struct) {
      Member->Field = StructTy->Struct->findField(Member->FieldName);
      if (!Member->Field)
        Diags.error(E->Loc, "no field '" + Member->FieldName +
                                "' in struct '" + StructTy->Struct->Name +
                                "'");
    }
    E->ExprType =
        Member->Field ? Member->Field->DeclType : freshInt(E->Loc);
    break;
  }
  case ExprKind::Index: {
    auto *Index = cast<IndexExpr>(E);
    TypeNode *Base = typeExpr(Index->Base);
    typeExpr(Index->Idx);
    if (Base && (Base->isPointer() || Base->isArray())) {
      E->ExprType = Base->Pointee;
    } else {
      Diags.error(E->Loc, "subscripted value is not a pointer or array");
      E->ExprType = freshInt(E->Loc);
    }
    break;
  }
  case ExprKind::Scast: {
    auto *Scast = cast<ScastExpr>(E);
    typeExpr(Scast->Src);
    E->ExprType = Scast->TargetType;
    break;
  }
  case ExprKind::New: {
    auto *New = cast<NewExpr>(E);
    if (New->Count)
      typeExpr(New->Count);
    TypeNode *Ptr = Prog.Context.makeType(TypeKind::Pointer, E->Loc);
    Ptr->Pointee = New->ElemType;
    E->ExprType = Ptr;
    break;
  }
  case ExprKind::Sizeof:
    E->ExprType = freshInt(E->Loc);
    break;
  }
  return E->ExprType;
}
