//===-- minic/Lexer.h - MiniC lexer -----------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for MiniC. Produces Tokens over a SourceManager
/// buffer; supports //- and /* */-style comments.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_LEXER_H
#define SHARC_MINIC_LEXER_H

#include "minic/Token.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <string_view>

namespace sharc {
namespace minic {

/// Single-pass lexer with one token of lookahead managed by the parser.
class Lexer {
public:
  Lexer(const SourceManager &SM, FileId File, DiagnosticEngine &Diags);

  /// Lexes and returns the next token.
  Token next();

private:
  char peek(unsigned Ahead = 0) const;
  char advance();
  bool match(char Expected);
  void skipWhitespaceAndComments();
  SourceLoc currentLoc() const;

  Token makeToken(TokenKind Kind, size_t Begin, SourceLoc Loc);
  Token lexIdentifierOrKeyword(size_t Begin, SourceLoc Loc);
  Token lexNumber(size_t Begin, SourceLoc Loc);
  Token lexCharLiteral(size_t Begin, SourceLoc Loc);
  Token lexStringLiteral(size_t Begin, SourceLoc Loc);

  const SourceManager &SM;
  FileId File;
  DiagnosticEngine &Diags;
  std::string_view Text;
  size_t Pos = 0;
  uint32_t Line = 1;
  uint32_t Col = 1;
};

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_LEXER_H
