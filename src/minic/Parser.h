//===-- minic/Parser.h - MiniC parser ---------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser for MiniC. Produces a Program whose names are
/// resolved (locals during the parse; forward-referenced functions and
/// globals in a post-pass) and whose types carry the user's explicit
/// sharing-mode qualifiers; unannotated positions stay Mode::Unspec for
/// the inference pass.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_PARSER_H
#define SHARC_MINIC_PARSER_H

#include "minic/AST.h"
#include "minic/Lexer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace sharc {
namespace minic {

/// Parses one MiniC file into a Program. Errors are reported through the
/// DiagnosticEngine; the parser recovers at statement/declaration
/// boundaries so multiple errors surface in one run.
class Parser {
public:
  Parser(const SourceManager &SM, FileId File, DiagnosticEngine &Diags);

  /// Parses the whole file. \returns the program, or null if parsing
  /// failed hard; check Diags for errors either way.
  std::unique_ptr<Program> parseProgram();

private:
  //===--- token plumbing -------------------------------------------------===
  const Token &peek() const { return Tok; }
  Token consume();
  bool check(TokenKind Kind) const { return Tok.Kind == Kind; }
  bool accept(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void skipToRecoveryPoint();

  //===--- types ----------------------------------------------------------===
  bool startsType() const;
  TypeNode *parseType();
  TypeNode *parseBaseType();
  Qual parseQualifiers();
  void applyQual(TypeNode *T, const Qual &Q);
  TypeNode *parseFuncPointerSuffix(TypeNode *RetType, std::string &Name,
                                   Qual &PtrQual);
  std::vector<VarDecl *> parseParamList();

  //===--- declarations ---------------------------------------------------===
  void parseTopLevel();
  void parseStructBody(StructDecl *S);
  void parseStructDecl();
  void parseTypedef();
  void parseVarOrFunc();
  void parseFunctionRest(TypeNode *RetType, std::string Name, SourceLoc Loc);

  //===--- statements -----------------------------------------------------===
  Stmt *parseStmt();
  BlockStmt *parseBlock();
  Stmt *parseIf();
  Stmt *parseWhile();
  Stmt *parseDeclStmt();

  //===--- expressions ----------------------------------------------------===
  Expr *parseExpr();
  Expr *parseAssign();
  Expr *parseBinary(int MinPrec);
  Expr *parseUnary();
  Expr *parsePostfix();
  Expr *parsePrimary();

  //===--- scopes and resolution ------------------------------------------===
  void pushScope() { Scopes.emplace_back(); }
  void popScope() { Scopes.pop_back(); }
  void declare(VarDecl *Var);
  VarDecl *lookup(const std::string &Name) const;
  void resolveProgram();
  void declareBuiltins();

  const SourceManager &SM;
  DiagnosticEngine &Diags;
  Lexer Lex;
  Token Tok;

  std::unique_ptr<Program> Prog;
  std::vector<std::map<std::string, VarDecl *>> Scopes;
  std::map<std::string, TypeNode *> Typedefs; ///< alias -> template type
  /// Name expressions and spawns that could not be resolved in place.
  std::vector<NameExpr *> PendingNames;
  std::vector<SpawnStmt *> PendingSpawns;
};

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_PARSER_H
