//===-- minic/Type.h - MiniC types with sharing qualifiers ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MiniC type representation. Unlike a conventional compiler, type nodes
/// are *not* interned: every syntactic occurrence of a type gets its own
/// TypeNode so the sharing analysis can attach an inferred qualifier to
/// each position independently (the paper's flow-insensitive CQual-style
/// analysis assigns a qualifier variable per type position).
///
/// A TypeNode's qualifier describes the memory cells of that type:
/// in `int dynamic * private p`, the pointer cell p is private and the
/// pointed-to int cells are dynamic.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_TYPE_H
#define SHARC_MINIC_TYPE_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sharc {
namespace minic {

class Expr;
class StructDecl;

/// The five user-visible sharing modes plus Unspec (no annotation yet) and
/// Poly (a struct field inheriting its instance's qualifier, the paper's
/// qualifier variable `q`).
enum class Mode : uint8_t {
  Unspec,
  Private,
  ReadOnly,
  Locked,
  /// Reader-writer locked: readable under a shared or exclusive hold of
  /// the named lock, writable only under an exclusive hold (the paper's
  /// Section 7 "more support for locks" extension).
  RwLocked,
  Racy,
  Dynamic,
  Poly,
};

const char *modeName(Mode M);

/// A sharing qualifier: a mode, the lock expression for Locked, and
/// whether the user wrote it (vs. the analysis inferring it).
struct Qual {
  Mode M = Mode::Unspec;
  Expr *LockExpr = nullptr;
  bool Explicit = false;
};

enum class TypeKind : uint8_t {
  Int,
  Char,
  Bool,
  Void,
  Mutex, ///< pthread-style mutex; inherently racy (Section 4.1).
  Cond,  ///< pthread-style condition variable; inherently racy.
  Pointer,
  Array,
  Struct,
  Func,
};

/// One type occurrence. Allocated by ASTContext; referenced by raw
/// pointer everywhere.
class TypeNode {
public:
  TypeKind Kind = TypeKind::Int;
  Qual Q;
  SourceLoc Loc;

  /// Pointer pointee or array element.
  TypeNode *Pointee = nullptr;
  /// Array element count (0 for unsized).
  int64_t ArraySize = 0;
  /// Struct definition for TypeKind::Struct.
  StructDecl *Struct = nullptr;
  /// Function return / parameter types for TypeKind::Func.
  TypeNode *Ret = nullptr;
  std::vector<TypeNode *> Params;

  bool isInteger() const {
    return Kind == TypeKind::Int || Kind == TypeKind::Char ||
           Kind == TypeKind::Bool;
  }
  bool isPointer() const { return Kind == TypeKind::Pointer; }
  bool isVoid() const { return Kind == TypeKind::Void; }
  bool isStruct() const { return Kind == TypeKind::Struct; }
  bool isArray() const { return Kind == TypeKind::Array; }
  bool isFunc() const { return Kind == TypeKind::Func; }
  bool isRacyByNature() const {
    return Kind == TypeKind::Mutex || Kind == TypeKind::Cond;
  }

  /// The effective mode: the explicit or inferred qualifier.
  Mode mode() const { return Q.M; }
};

/// \returns true if \p A and \p B have the same shape (kinds, struct
/// identity, arity) ignoring qualifiers.
bool sameShape(const TypeNode *A, const TypeNode *B);

/// \returns true if \p A and \p B are identical including qualifiers at
/// every level (lock expressions compared by syntactic root identity).
bool sameTypeAndQuals(const TypeNode *A, const TypeNode *B);

/// Renders the type with its qualifiers, e.g.
/// "char locked(mut) * locked(mut)". Used by the driver to show inferred
/// annotations (paper Figure 2) and by tests.
std::string typeToString(const TypeNode *T);

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_TYPE_H
