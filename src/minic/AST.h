//===-- minic/AST.h - MiniC abstract syntax tree ----------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST for MiniC: expressions, statements, declarations, and the
/// ASTContext arena that owns every node. Nodes use LLVM-style kind tags
/// with classof() for dyn_cast-style dispatch via llvm-free helpers
/// (sharc::minic::isa/cast/dyn_cast below).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_AST_H
#define SHARC_MINIC_AST_H

#include "minic/Type.h"
#include "support/SourceLoc.h"

#include <cassert>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace sharc {
namespace minic {

class Decl;
class VarDecl;
class FuncDecl;
class StructDecl;
class Stmt;
class Expr;

//===----------------------------------------------------------------------===//
// Lightweight isa/cast/dyn_cast (LLVM-style, no RTTI)
//===----------------------------------------------------------------------===//

template <typename ToT, typename FromT> bool isa(const FromT *Node) {
  return ToT::classof(Node);
}

template <typename ToT, typename FromT> ToT *cast(FromT *Node) {
  assert(Node && ToT::classof(Node) && "cast to wrong node kind");
  return static_cast<ToT *>(Node);
}

template <typename ToT, typename FromT> const ToT *cast(const FromT *Node) {
  assert(Node && ToT::classof(Node) && "cast to wrong node kind");
  return static_cast<const ToT *>(Node);
}

template <typename ToT, typename FromT> ToT *dyn_cast(FromT *Node) {
  return Node && ToT::classof(Node) ? static_cast<ToT *>(Node) : nullptr;
}

template <typename ToT, typename FromT>
const ToT *dyn_cast(const FromT *Node) {
  return Node && ToT::classof(Node) ? static_cast<const ToT *>(Node)
                                    : nullptr;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind : uint8_t {
  IntLit,
  BoolLit,
  StrLit,
  NullLit,
  Name,
  Unary,
  Binary,
  Assign,
  Call,
  Member,
  Index,
  Scast,
  New,
  Sizeof,
};

/// Base class for expressions. ExprType is filled by the checker; for
/// l-value expressions it is the TypeNode of the referenced cell.
class Expr {
public:
  const ExprKind Kind;
  SourceLoc Loc;
  TypeNode *ExprType = nullptr;

  explicit Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Expr() = default;

  /// Renders the expression's source spelling for reports ("S->sdata").
  virtual std::string spelling() const = 0;
};

class IntLitExpr : public Expr {
public:
  int64_t Value;
  IntLitExpr(int64_t Value, SourceLoc Loc)
      : Expr(ExprKind::IntLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::IntLit; }
  std::string spelling() const override { return std::to_string(Value); }
};

class BoolLitExpr : public Expr {
public:
  bool Value;
  BoolLitExpr(bool Value, SourceLoc Loc)
      : Expr(ExprKind::BoolLit, Loc), Value(Value) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::BoolLit; }
  std::string spelling() const override { return Value ? "true" : "false"; }
};

class StrLitExpr : public Expr {
public:
  std::string Value; ///< Decoded contents.
  StrLitExpr(std::string Value, SourceLoc Loc)
      : Expr(ExprKind::StrLit, Loc), Value(std::move(Value)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::StrLit; }
  std::string spelling() const override { return "\"" + Value + "\""; }
};

class NullLitExpr : public Expr {
public:
  explicit NullLitExpr(SourceLoc Loc) : Expr(ExprKind::NullLit, Loc) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::NullLit; }
  std::string spelling() const override { return "null"; }
};

/// Reference to a variable or function by name. Var/Func is resolved
/// during parsing (locals/globals) or by the post-parse resolver
/// (forward-referenced functions).
class NameExpr : public Expr {
public:
  std::string Name;
  VarDecl *Var = nullptr;
  FuncDecl *Func = nullptr;
  NameExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::Name, Loc), Name(std::move(Name)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Name; }
  std::string spelling() const override { return Name; }
};

enum class UnaryOp : uint8_t { Deref, AddrOf, Not, Neg };

class UnaryExpr : public Expr {
public:
  UnaryOp Op;
  Expr *Sub;
  UnaryExpr(UnaryOp Op, Expr *Sub, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Sub(Sub) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Unary; }
  std::string spelling() const override {
    const char *OpStr = Op == UnaryOp::Deref    ? "*"
                        : Op == UnaryOp::AddrOf ? "&"
                        : Op == UnaryOp::Not    ? "!"
                                                : "-";
    return std::string(OpStr) + Sub->spelling();
  }
};

enum class BinaryOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,
  Rem,
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  And,
  Or,
};

const char *binaryOpSpelling(BinaryOp Op);

class BinaryExpr : public Expr {
public:
  BinaryOp Op;
  Expr *Lhs;
  Expr *Rhs;
  BinaryExpr(BinaryOp Op, Expr *Lhs, Expr *Rhs, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Binary; }
  std::string spelling() const override {
    return Lhs->spelling() + " " + binaryOpSpelling(Op) + " " +
           Rhs->spelling();
  }
};

class AssignExpr : public Expr {
public:
  Expr *Lhs;
  Expr *Rhs;
  AssignExpr(Expr *Lhs, Expr *Rhs, SourceLoc Loc)
      : Expr(ExprKind::Assign, Loc), Lhs(Lhs), Rhs(Rhs) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Assign; }
  std::string spelling() const override {
    return Lhs->spelling() + " = " + Rhs->spelling();
  }
};

class CallExpr : public Expr {
public:
  Expr *Callee;
  std::vector<Expr *> Args;
  CallExpr(Expr *Callee, std::vector<Expr *> Args, SourceLoc Loc)
      : Expr(ExprKind::Call, Loc), Callee(Callee), Args(std::move(Args)) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Call; }
  std::string spelling() const override {
    std::string S = Callee->spelling() + "(";
    for (size_t I = 0; I != Args.size(); ++I) {
      if (I)
        S += ", ";
      S += Args[I]->spelling();
    }
    return S + ")";
  }
};

class MemberExpr : public Expr {
public:
  Expr *Base;
  std::string FieldName;
  bool IsArrow;
  VarDecl *Field = nullptr; ///< Resolved by the checker/parser.
  MemberExpr(Expr *Base, std::string FieldName, bool IsArrow, SourceLoc Loc)
      : Expr(ExprKind::Member, Loc), Base(Base),
        FieldName(std::move(FieldName)), IsArrow(IsArrow) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Member; }
  std::string spelling() const override {
    return Base->spelling() + (IsArrow ? "->" : ".") + FieldName;
  }
};

class IndexExpr : public Expr {
public:
  Expr *Base;
  Expr *Idx;
  IndexExpr(Expr *Base, Expr *Idx, SourceLoc Loc)
      : Expr(ExprKind::Index, Loc), Base(Base), Idx(Idx) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Index; }
  std::string spelling() const override {
    return Base->spelling() + "[" + Idx->spelling() + "]";
  }
};

/// SCAST(type, lvalue): the sharing cast. Nulls the source l-value and
/// checks the object has no other references (Sections 2 and 4.2.3).
class ScastExpr : public Expr {
public:
  TypeNode *TargetType;
  Expr *Src;
  ScastExpr(TypeNode *TargetType, Expr *Src, SourceLoc Loc)
      : Expr(ExprKind::Scast, Loc), TargetType(TargetType), Src(Src) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Scast; }
  std::string spelling() const override {
    return "SCAST(" + typeToString(TargetType) + ", " + Src->spelling() + ")";
  }
};

/// new T or new T[n]: heap allocation (stands in for C's malloc, which the
/// paper assumes is 16-byte aligned).
class NewExpr : public Expr {
public:
  TypeNode *ElemType;
  Expr *Count; ///< Null for a single object.
  NewExpr(TypeNode *ElemType, Expr *Count, SourceLoc Loc)
      : Expr(ExprKind::New, Loc), ElemType(ElemType), Count(Count) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::New; }
  std::string spelling() const override {
    std::string S = "new " + typeToString(ElemType);
    if (Count)
      S += "[" + Count->spelling() + "]";
    return S;
  }
};

class SizeofExpr : public Expr {
public:
  TypeNode *OfType;
  SizeofExpr(TypeNode *OfType, SourceLoc Loc)
      : Expr(ExprKind::Sizeof, Loc), OfType(OfType) {}
  static bool classof(const Expr *E) { return E->Kind == ExprKind::Sizeof; }
  std::string spelling() const override {
    return "sizeof(" + typeToString(OfType) + ")";
  }
};

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind : uint8_t {
  Block,
  If,
  While,
  For,
  Return,
  ExprStmt,
  DeclStmt,
  Spawn,
  Free,
  Break,
  Continue,
};

class Stmt {
public:
  const StmtKind Kind;
  SourceLoc Loc;
  explicit Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}
  virtual ~Stmt() = default;
};

class BlockStmt : public Stmt {
public:
  std::vector<Stmt *> Body;
  BlockStmt(std::vector<Stmt *> Body, SourceLoc Loc)
      : Stmt(StmtKind::Block, Loc), Body(std::move(Body)) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Block; }
};

class IfStmt : public Stmt {
public:
  Expr *Cond;
  Stmt *Then;
  Stmt *Else; ///< May be null.
  IfStmt(Expr *Cond, Stmt *Then, Stmt *Else, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Cond(Cond), Then(Then), Else(Else) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::If; }
};

class WhileStmt : public Stmt {
public:
  Expr *Cond;
  Stmt *Body;
  WhileStmt(Expr *Cond, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(Cond), Body(Body) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::While; }
};

/// for (init; cond; step) body -- init is a declaration or expression
/// statement (or null); cond/step may be null.
class ForStmt : public Stmt {
public:
  Stmt *Init; ///< DeclStmt or ExprStmt, may be null.
  Expr *Cond; ///< May be null (infinite loop).
  Expr *Step; ///< May be null.
  Stmt *Body;
  ForStmt(Stmt *Init, Expr *Cond, Expr *Step, Stmt *Body, SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Init(Init), Cond(Cond), Step(Step),
        Body(Body) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::For; }
};

class ReturnStmt : public Stmt {
public:
  Expr *Value; ///< May be null.
  ReturnStmt(Expr *Value, SourceLoc Loc)
      : Stmt(StmtKind::Return, Loc), Value(Value) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Return; }
};

class ExprStmt : public Stmt {
public:
  Expr *E;
  ExprStmt(Expr *E, SourceLoc Loc) : Stmt(StmtKind::ExprStmt, Loc), E(E) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::ExprStmt; }
};

class DeclStmt : public Stmt {
public:
  VarDecl *Var;
  Expr *Init; ///< May be null.
  DeclStmt(VarDecl *Var, Expr *Init, SourceLoc Loc)
      : Stmt(StmtKind::DeclStmt, Loc), Var(Var), Init(Init) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::DeclStmt; }
};

/// spawn f(arg);  — creates a thread running f. f's formal seeds the
/// sharing analysis as inherently shared.
class SpawnStmt : public Stmt {
public:
  std::string CalleeName;
  FuncDecl *Callee = nullptr; ///< Resolved post-parse.
  Expr *Arg;                  ///< May be null for zero-arg thread functions.
  SpawnStmt(std::string CalleeName, Expr *Arg, SourceLoc Loc)
      : Stmt(StmtKind::Spawn, Loc), CalleeName(std::move(CalleeName)),
        Arg(Arg) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Spawn; }
};

class FreeStmt : public Stmt {
public:
  Expr *Ptr;
  FreeStmt(Expr *Ptr, SourceLoc Loc) : Stmt(StmtKind::Free, Loc), Ptr(Ptr) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Free; }
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Break; }
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
  static bool classof(const Stmt *S) { return S->Kind == StmtKind::Continue; }
};

//===----------------------------------------------------------------------===//
// Declarations
//===----------------------------------------------------------------------===//

enum class StorageKind : uint8_t { Global, Local, Param, Field };

class VarDecl {
public:
  std::string Name;
  TypeNode *DeclType;
  StorageKind Storage;
  SourceLoc Loc;
  /// For fields: index within the struct.
  unsigned FieldIndex = 0;
  /// Owning struct for fields.
  StructDecl *Parent = nullptr;

  VarDecl(std::string Name, TypeNode *DeclType, StorageKind Storage,
          SourceLoc Loc)
      : Name(std::move(Name)), DeclType(DeclType), Storage(Storage),
        Loc(Loc) {}
};

class StructDecl {
public:
  std::string Name;
  std::vector<VarDecl *> Fields;
  SourceLoc Loc;
  bool IsDefined = false;

  VarDecl *findField(std::string_view FieldName) const {
    for (VarDecl *Field : Fields)
      if (Field->Name == FieldName)
        return Field;
    return nullptr;
  }
};

/// Read/write summary for a builtin parameter (Section 4.4: trusted
/// annotations summarizing library calls let non-private actuals pass).
struct ParamSummary {
  bool ReadsPointee = false;
  bool WritesPointee = false;
};

class FuncDecl {
public:
  std::string Name;
  TypeNode *RetType = nullptr;
  std::vector<VarDecl *> Params;
  BlockStmt *Body = nullptr; ///< Null for builtins.
  SourceLoc Loc;
  bool IsBuiltin = false;
  std::vector<ParamSummary> Summaries; ///< Builtin-only, indexed by param.
  TypeNode *FuncType = nullptr;        ///< TypeKind::Func view of this decl.
};

//===----------------------------------------------------------------------===//
// ASTContext and Program
//===----------------------------------------------------------------------===//

/// Owns every AST node, type node, and declaration of one program.
class ASTContext {
public:
  template <typename NodeT, typename... ArgTs> NodeT *makeExpr(ArgTs &&...Args) {
    auto Node = std::make_unique<NodeT>(std::forward<ArgTs>(Args)...);
    NodeT *Raw = Node.get();
    Exprs.push_back(std::move(Node));
    return Raw;
  }

  template <typename NodeT, typename... ArgTs> NodeT *makeStmt(ArgTs &&...Args) {
    auto Node = std::make_unique<NodeT>(std::forward<ArgTs>(Args)...);
    NodeT *Raw = Node.get();
    Stmts.push_back(std::move(Node));
    return Raw;
  }

  TypeNode *makeType(TypeKind Kind, SourceLoc Loc = SourceLoc()) {
    auto Node = std::make_unique<TypeNode>();
    Node->Kind = Kind;
    Node->Loc = Loc;
    TypeNode *Raw = Node.get();
    Types.push_back(std::move(Node));
    return Raw;
  }

  /// Deep-copies a type tree (fresh nodes, same struct references). Used
  /// when one syntactic type describes several positions that must infer
  /// independently.
  TypeNode *cloneType(const TypeNode *T);

  VarDecl *makeVar(std::string Name, TypeNode *DeclType, StorageKind Storage,
                   SourceLoc Loc) {
    auto Node =
        std::make_unique<VarDecl>(std::move(Name), DeclType, Storage, Loc);
    VarDecl *Raw = Node.get();
    Vars.push_back(std::move(Node));
    return Raw;
  }

  StructDecl *makeStruct(std::string Name, SourceLoc Loc) {
    auto Node = std::make_unique<StructDecl>();
    Node->Name = std::move(Name);
    Node->Loc = Loc;
    StructDecl *Raw = Node.get();
    Structs.push_back(std::move(Node));
    return Raw;
  }

  FuncDecl *makeFunc(std::string Name, SourceLoc Loc) {
    auto Node = std::make_unique<FuncDecl>();
    Node->Name = std::move(Name);
    Node->Loc = Loc;
    FuncDecl *Raw = Node.get();
    Funcs.push_back(std::move(Node));
    return Raw;
  }

  /// Visits every TypeNode ever created (used by the sharing analysis's
  /// final resolution pass). Indexed iteration so visitors may create new
  /// types while running; the new types are visited too.
  template <typename FnT> void forEachType(FnT Fn) {
    for (size_t I = 0; I < Types.size(); ++I)
      Fn(Types[I].get());
  }

private:
  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<TypeNode>> Types;
  std::vector<std::unique_ptr<VarDecl>> Vars;
  std::vector<std::unique_ptr<StructDecl>> Structs;
  std::vector<std::unique_ptr<FuncDecl>> Funcs;
};

/// A parsed MiniC translation unit.
class Program {
public:
  ASTContext Context;
  std::vector<StructDecl *> Structs;
  std::vector<VarDecl *> Globals;
  std::vector<FuncDecl *> Funcs;

  FuncDecl *findFunc(std::string_view Name) const {
    for (FuncDecl *F : Funcs)
      if (F->Name == Name)
        return F;
    return nullptr;
  }
  VarDecl *findGlobal(std::string_view Name) const {
    for (VarDecl *G : Globals)
      if (G->Name == Name)
        return G;
    return nullptr;
  }
  StructDecl *findStruct(std::string_view Name) const {
    for (StructDecl *S : Structs)
      if (S->Name == Name)
        return S;
    return nullptr;
  }
};

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_AST_H
