//===-- minic/Token.h - MiniC tokens ----------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds for MiniC, the C-like input language of the checker. The
/// sharing-mode qualifiers of the paper's Section 2 are keywords.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_TOKEN_H
#define SHARC_MINIC_TOKEN_H

#include "support/SourceLoc.h"

#include <cstdint>
#include <string_view>

namespace sharc {
namespace minic {

enum class TokenKind : uint8_t {
  // Punctuation and operators.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Semi,
  Comma,
  Star,
  Amp,
  Plus,
  Minus,
  Slash,
  Percent,
  Assign,
  EqEq,
  NotEq,
  Less,
  LessEq,
  Greater,
  GreaterEq,
  AmpAmp,
  PipePipe,
  Bang,
  Dot,
  Arrow,

  // Keywords: types.
  KwInt,
  KwChar,
  KwVoid,
  KwBool,
  KwMutex,
  KwCond,
  KwStruct,
  KwTypedef,

  // Keywords: sharing-mode qualifiers (paper Section 2).
  KwPrivate,
  KwReadonly,
  KwLocked,
  KwRwLocked,
  KwRacy,
  KwDynamic,

  // Keywords: statements and expressions.
  KwIf,
  KwElse,
  KwWhile,
  KwFor,
  KwReturn,
  KwBreak,
  KwContinue,
  KwSpawn,
  KwNew,
  KwFree,
  KwScast,
  KwSizeof,
  KwNull,
  KwTrue,
  KwFalse,

  // Literals and identifiers.
  Identifier,
  IntLiteral,
  CharLiteral,
  StringLiteral,

  Eof,
  Error,
};

/// \returns a human-readable spelling for diagnostics.
const char *tokenKindName(TokenKind Kind);

/// One lexed token. Text views into the SourceManager buffer.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string_view Text;
  int64_t IntValue = 0; ///< For IntLiteral and CharLiteral.

  bool is(TokenKind K) const { return Kind == K; }
  bool isQualifierKeyword() const {
    return Kind == TokenKind::KwPrivate || Kind == TokenKind::KwReadonly ||
           Kind == TokenKind::KwLocked || Kind == TokenKind::KwRwLocked ||
           Kind == TokenKind::KwRacy || Kind == TokenKind::KwDynamic;
  }
  bool isTypeKeyword() const {
    return Kind == TokenKind::KwInt || Kind == TokenKind::KwChar ||
           Kind == TokenKind::KwVoid || Kind == TokenKind::KwBool ||
           Kind == TokenKind::KwMutex || Kind == TokenKind::KwCond ||
           Kind == TokenKind::KwStruct;
  }
};

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_TOKEN_H
