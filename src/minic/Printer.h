//===-- minic/Printer.h - Annotated program printer -------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a (possibly inference-annotated) program back to MiniC source,
/// with every sharing qualifier spelled out. This is how the driver shows
/// the user what the analysis decided (the paper's Figure 2: "the stage
/// structure, with the annotations inferred by SharC").
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_MINIC_PRINTER_H
#define SHARC_MINIC_PRINTER_H

#include "minic/AST.h"

#include <string>

namespace sharc {
namespace minic {

/// Renders one declaration "type name" with qualifiers (field/variable
/// position, handling arrays and function pointers).
std::string printDecl(const VarDecl *Var);

/// Renders the whole program: structs, globals, and functions with
/// annotated locals and bodies.
std::string printProgram(const Program &Prog);

} // namespace minic
} // namespace sharc

#endif // SHARC_MINIC_PRINTER_H
