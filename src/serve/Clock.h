//===-- serve/Clock.h - Timing primitives for sharc-serve -------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Two clocks with distinct jobs:
///
///   - nanosSince(Epoch): wall time on the steady clock, shared by the
///     load generator (arrival schedule) and the server (completion
///     stamps) so latency = completion - scheduled arrival measures the
///     whole open-loop queueing delay, coordinated omission included.
///   - threadCpuNanos(): per-thread CPU time. Handler service time is
///     accounted on this clock so the armed-vs-disabled overhead gate
///     measures the code, not whoever the scheduler ran in between.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_CLOCK_H
#define SHARC_SERVE_CLOCK_H

#include <chrono>
#include <cstdint>
#include <ctime>

namespace sharc {
namespace serve {

using SteadyClock = std::chrono::steady_clock;

inline uint64_t nanosSince(SteadyClock::time_point Epoch) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          SteadyClock::now() - Epoch)
          .count());
}

/// CPU time consumed by the calling thread, in nanoseconds.
inline uint64_t threadCpuNanos() {
  timespec Ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &Ts);
  return static_cast<uint64_t>(Ts.tv_sec) * 1000000000ull +
         static_cast<uint64_t>(Ts.tv_nsec);
}

/// Burns \p Nanos of CPU time on the calling thread (the simulated
/// backend work of a request handler). Spinning on the thread clock
/// rather than the wall clock makes every request cost the same CPU
/// whether or not the thread was preempted mid-spin, which is what lets
/// a 2% overhead gate hold on a loaded CI machine.
inline void spinThreadCpu(uint64_t Nanos) {
  if (Nanos == 0)
    return;
  uint64_t End = threadCpuNanos() + Nanos;
  while (threadCpuNanos() < End) {
  }
}

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_CLOCK_H
