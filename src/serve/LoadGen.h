//===-- serve/LoadGen.h - Open-loop Poisson load generator ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load generation: a Poisson arrival schedule is built up
/// front from a seed (deterministic — same seed, same schedule, same
/// request mix), then replayed against the transport on the wall clock.
/// "Open loop" means arrivals are NEVER throttled by the server: a
/// request is submitted at (or as soon as possible after) its scheduled
/// time whether or not the server has kept up, and latency is measured
/// from the SCHEDULED arrival — the standard defence against
/// coordinated omission, where a stalled server would otherwise pause
/// the clock on exactly the requests that would have seen the stall.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_LOADGEN_H
#define SHARC_SERVE_LOADGEN_H

#include "serve/Clock.h"
#include "serve/Transport.h"

#include <functional>
#include <vector>

namespace sharc {
namespace serve {

struct LoadConfig {
  uint64_t Clients = 100000;       ///< Distinct simulated clients.
  uint64_t RequestsPerClient = 1;  ///< Connections per client.
  uint64_t RatePerSec = 50000;     ///< Aggregate Poisson arrival rate.
  uint64_t Seed = 1;
  uint32_t PayloadBytes = 256;
  unsigned GetPct = 60; ///< % of OpGet; then PutPct of OpPut; rest OpWork.
  unsigned PutPct = 30;

  uint64_t totalRequests() const { return Clients * RequestsPerClient; }
};

struct Arrival {
  uint64_t AtNanos = 0; ///< Scheduled arrival, relative to the run epoch.
  uint64_t Client = 0;
  uint8_t Kind = OpGet;

  bool operator==(const Arrival &) const = default;
};

/// Builds the full arrival schedule: exponential inter-arrival gaps at
/// C.RatePerSec (Poisson process), clients assigned round-robin so every
/// client appears exactly RequestsPerClient times, op mix drawn from the
/// same seeded stream. Pure function of C.
std::vector<Arrival> buildSchedule(const LoadConfig &C);

struct LoadResult {
  uint64_t Offered = 0;   ///< Requests submitted to the transport.
  uint64_t SpanNs = 0;    ///< Last scheduled arrival time.
  uint64_t ElapsedNs = 0; ///< Wall time of the offering loop.
  uint64_t MaxLagNs = 0;  ///< Worst (actual - scheduled) submit delay.
};

/// Replays \p Schedule against \p Net on the wall clock starting at
/// \p Epoch. Payload bytes are generated deterministically from C.Seed
/// and the request index. \p Midpoint (if set) runs once after half the
/// schedule has been offered — sharc-serve uses it to scrape the live
/// /metrics endpoint mid-run.
LoadResult runOpenLoop(Transport &Net, const std::vector<Arrival> &Schedule,
                       const LoadConfig &C, SteadyClock::time_point Epoch,
                       const std::function<void()> &Midpoint = {});

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_LOADGEN_H
