//===-- serve/LoadGen.h - Open-loop Poisson load generator ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Open-loop load generation: a Poisson arrival schedule is built up
/// front from a seed (deterministic — same seed, same schedule, same
/// request mix), then replayed against the transport on the wall clock.
/// "Open loop" means arrivals are NEVER throttled by the server: a
/// request is submitted at (or as soon as possible after) its scheduled
/// time whether or not the server has kept up, and latency is measured
/// from the SCHEDULED arrival — the standard defence against
/// coordinated omission, where a stalled server would otherwise pause
/// the clock on exactly the requests that would have seen the stall.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_LOADGEN_H
#define SHARC_SERVE_LOADGEN_H

#include "serve/Clock.h"
#include "serve/Transport.h"

#include <functional>
#include <vector>

namespace sharc {
namespace serve {

struct LoadConfig {
  uint64_t Clients = 100000;       ///< Distinct simulated clients.
  uint64_t RequestsPerClient = 1;  ///< Connections per client.
  uint64_t RatePerSec = 50000;     ///< Aggregate Poisson arrival rate.
  uint64_t Seed = 1;
  uint32_t PayloadBytes = 256;
  unsigned GetPct = 60; ///< % of OpGet; then PutPct of OpPut; rest OpWork.
  unsigned PutPct = 30;

  //===---- sharc-storm: client-side resilience ----------------------===//

  /// Arms reject polling, retries, and the drain phase. Off (the
  /// default) keeps the pre-storm offering loop byte for byte: the
  /// reject channel is never even read.
  bool Resilient = false;
  /// Re-submission budget per rejected request (0 = rejects drop).
  uint64_t RetryMax = 3;
  /// Backoff before the first retry; doubles per attempt up to the cap,
  /// plus deterministic jitter drawn from (Seed, Seq, attempt) — so a
  /// rerun with the same seed replays the same retry schedule.
  uint64_t RetryBackoffNs = 200000;     ///< 200us base.
  uint64_t RetryBackoffCapNs = 5000000; ///< 5ms cap.
  /// Client-side request timeout measured from the ORIGINAL scheduled
  /// arrival (0 = none): a reject seen past it is dropped, not retried
  /// — the client hung up, retrying would be coordinated omission in
  /// reverse.
  uint64_t RequestTimeoutNs = 0;
  /// Drain-phase quiet window: after the last scheduled arrival the
  /// loop keeps polling rejects and flushing due retries until the
  /// transport is empty AND the reject channel stays silent this long.
  uint64_t DrainGraceNs = 20000000; ///< 20ms.

  uint64_t totalRequests() const { return Clients * RequestsPerClient; }
};

struct Arrival {
  uint64_t AtNanos = 0; ///< Scheduled arrival, relative to the run epoch.
  uint64_t Client = 0;
  uint8_t Kind = OpGet;

  bool operator==(const Arrival &) const = default;
};

/// Builds the full arrival schedule: exponential inter-arrival gaps at
/// C.RatePerSec (Poisson process), clients assigned round-robin so every
/// client appears exactly RequestsPerClient times, op mix drawn from the
/// same seeded stream. Pure function of C.
std::vector<Arrival> buildSchedule(const LoadConfig &C);

struct LoadResult {
  uint64_t Offered = 0;   ///< Distinct requests offered (retries excluded).
  uint64_t SpanNs = 0;    ///< Last scheduled arrival time.
  uint64_t ElapsedNs = 0; ///< Wall time of the offering loop.
  uint64_t MaxLagNs = 0;  ///< Worst (actual - scheduled) submit delay.
  /// sharc-storm client-side resilience accounting (0 when off). Every
  /// distinct request ends exactly one way — completed on the server,
  /// timed out on the server, or Dropped here — which is the identity
  /// sharc-serve checks instead of strict completed == offered.
  uint64_t Retries = 0;  ///< Re-submissions after a reject (not Offered).
  uint64_t Dropped = 0;  ///< Abandoned: retry budget or client timeout.
  uint64_t ShedSeen = 0; ///< Admission-control rejects observed.
  uint64_t ResetSeen = 0; ///< Injected conn-reset rejects observed.
};

/// Deterministic wire bytes for request \p Seq: a pure function of
/// (Seed, Seq) — NOT of submit order or timing — so orig and sharc runs
/// agree byte for byte AND a retry re-offers exactly the bytes the
/// original submission carried.
void fillPayload(std::vector<uint8_t> &Payload, uint64_t Seed, uint64_t Seq,
                 uint32_t Bytes);

/// Replays \p Schedule against \p Net on the wall clock starting at
/// \p Epoch. Payload bytes are generated deterministically from C.Seed
/// and the request index. \p Midpoint (if set) runs once after half the
/// schedule has been offered — sharc-serve uses it to scrape the live
/// /metrics endpoint mid-run.
LoadResult runOpenLoop(Transport &Net, const std::vector<Arrival> &Schedule,
                       const LoadConfig &C, SteadyClock::time_point Epoch,
                       const std::function<void()> &Midpoint = {});

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_LOADGEN_H
