//===-- serve/Histogram.h - Log-linear latency histogram --------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-footprint log-linear histogram for latency recording: 32
/// sub-buckets per power of two, giving a worst-case relative error of
/// 1/32 (~3%) at any magnitude, over the full uint64_t range. Recording
/// is a few ALU ops and one array increment — cheap enough for the
/// per-request hot path — and histograms merge by bucket addition, so
/// each worker records into a private histogram and the server folds
/// them after the join (no shared state on the hot path).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_HISTOGRAM_H
#define SHARC_SERVE_HISTOGRAM_H

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>

namespace sharc {
namespace serve {

class Histogram {
public:
  static constexpr unsigned SubBits = 5;
  static constexpr unsigned SubCount = 1u << SubBits;
  // Largest shift is 64 - SubBits - 1; bucket layout below yields
  // (Shift + 1) * SubCount + Sub < (64 - SubBits) * SubCount.
  static constexpr unsigned BucketCount = (64 - SubBits) * SubCount;

  void record(uint64_t Value) {
    ++Buckets[bucketOf(Value)];
    ++Total;
    Max = std::max(Max, Value);
  }

  void merge(const Histogram &Other) {
    for (unsigned I = 0; I != BucketCount; ++I)
      Buckets[I] += Other.Buckets[I];
    Total += Other.Total;
    Max = std::max(Max, Other.Max);
  }

  uint64_t count() const { return Total; }
  uint64_t max() const { return Max; }

  /// Value at quantile \p Q in [0, 1]: the upper edge of the bucket
  /// holding the ceil(Q * count)-th sample (conservative — never reports
  /// a percentile below the true one by more than the bucket width).
  uint64_t percentile(double Q) const {
    if (Total == 0)
      return 0;
    if (Q < 0)
      Q = 0;
    if (Q > 1)
      Q = 1;
    uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Total));
    if (Rank == 0)
      Rank = 1;
    uint64_t Seen = 0;
    for (unsigned I = 0; I != BucketCount; ++I) {
      Seen += Buckets[I];
      if (Seen >= Rank)
        return std::min(upperEdge(I), Max);
    }
    return Max;
  }

private:
  /// Values below SubCount get exact unit buckets; above, the top SubBits
  /// bits after the leading one select a sub-bucket within the octave.
  static unsigned bucketOf(uint64_t Value) {
    if (Value < SubCount)
      return static_cast<unsigned>(Value);
    unsigned Msb = 63 - static_cast<unsigned>(std::countl_zero(Value));
    unsigned Shift = Msb - SubBits;
    unsigned Sub = static_cast<unsigned>((Value >> Shift) & (SubCount - 1));
    return (Shift + 1) * SubCount + Sub;
  }

  static uint64_t upperEdge(unsigned Index) {
    if (Index < SubCount)
      return Index;
    unsigned Shift = Index / SubCount - 1;
    uint64_t Sub = Index % SubCount;
    uint64_t Low = (static_cast<uint64_t>(SubCount) + Sub) << Shift;
    return Low + ((uint64_t(1) << Shift) - 1);
  }

  std::array<uint64_t, BucketCount> Buckets{};
  uint64_t Total = 0;
  uint64_t Max = 0;
};

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_HISTOGRAM_H
