//===-- serve/ServeMain.cpp - The sharc-serve driver ----------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-serve: the high-traffic scenario driver (DESIGN.md §15). Runs
/// the annotated request server (or the uninstrumented baseline with
/// --unchecked) under an open-loop Poisson load, reports throughput and
/// p50/p99/p999 latency, optionally serves the live /metrics endpoint
/// mid-run (--stats-addr, scraped once at the schedule midpoint and
/// folded into the JSON), and writes a sharc-bench-v1 report with a
/// "serve" section (--json).
///
/// Exit status follows the pinned sharcc contract: 0 clean (violations
/// permitted by continue/quarantine included); 1 violations under the
/// abort policy; 2 usage or output I/O errors; 3 internal errors.
///
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"
#include "serve/Server.h"

#include "BenchUtil.h"
#include "obs/Collector.h"
#include "obs/Json.h"
#include "obs/TraceFile.h"
#include "rt/Runtime.h"
#include "rt/StatsServer.h"

#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace sharc;
using namespace sharc::serve;

namespace {

struct ServeOptions {
  LoadConfig Load;
  ServeParams Params;
  bool Unchecked = false;
  bool Quiet = false;
  std::string StatsAddr;
  std::string JsonPath;
  std::string TracePath;
  guard::Policy OnViolation = guard::Policy::Abort;
  bool PolicyExplicit = false; ///< --on-violation given (beats env).
};

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: sharc-serve [options]\n"
      "\n"
      "The high-traffic scenario: an annotated multi-threaded request\n"
      "server (acceptor / worker pool / logger; session cache, connection\n"
      "table and stats carry SharC sharing modes) driven by an open-loop\n"
      "Poisson load generator. See DESIGN.md section 15.\n"
      "\n"
      "load:\n"
      "  --clients N          distinct simulated clients (default 100000)\n"
      "  --reqs-per-client N  connections per client (default 1)\n"
      "  --rate N             aggregate arrival rate, req/s (default 50000)\n"
      "  --payload N          request payload bytes (default 256)\n"
      "  --seed N             schedule + payload seed (default 1)\n"
      "server:\n"
      "  --workers N          worker threads (default 2, max 12)\n"
      "  --service-us N       simulated backend CPU per request (default 20)\n"
      "  --unchecked          run the uninstrumented baseline (orig)\n"
      "  --inject-race[=N]    skip the session-cache lock on every Nth\n"
      "                       request (default 64) — the serve_guard bug\n"
      "  --inject-stall[=N]   spin 2ms inside the session-shard lock on\n"
      "                       every Nth request (default 64) — a tail-\n"
      "                       latency bug for `sharc-trace requests`\n"
      "  --on-violation=P     abort|continue|quarantine (default abort;\n"
      "                       SHARC_POLICY overrides the default)\n"
      "  --stats-addr H:P     serve live /metrics; scraped at the schedule\n"
      "                       midpoint into the report (port 0 = ephemeral)\n"
      "output:\n"
      "  --json FILE          write a sharc-bench-v1 report (serve section\n"
      "                       included; `sharc-trace check-bench` clean)\n"
      "  --trace-out FILE     write a v4 .strc with request spans for every\n"
      "                       pipeline stage (analyze with `sharc-trace\n"
      "                       requests`); with repetitions the last rep's\n"
      "                       trace is the one kept (default off)\n"
      "  --quiet              suppress the text summary\n"
      "  --help               this text\n"
      "\n"
      "SHARC_BENCH_REPS (env) repeats the run, keeping the rep with the\n"
      "least handler CPU (default 3).\n"
      "\n"
      "exit status: 0 clean (violations permitted by continue/quarantine\n"
      "included); 1 violations under the abort policy; 2 usage or output\n"
      "I/O errors; 3 internal errors\n");
}

/// Strict unsigned parse: all digits, no sign, no trailing garbage.
bool parseU64Arg(const char *Flag, const char *Text, uint64_t &Out) {
  const char *End = Text + std::strlen(Text);
  auto [Ptr, Ec] = std::from_chars(Text, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Text == End) {
    std::fprintf(stderr,
                 "sharc-serve: %s expects an unsigned integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

/// "--flag VALUE" or "--flag=VALUE" (same contract as sharcc).
bool matchValueFlag(const char *Flag, int Argc, char **Argv, int &I,
                    const char *&Value) {
  const char *Arg = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] != '\0')
    return false;
  Value = I + 1 < Argc ? Argv[++I] : nullptr;
  return true;
}

bool needValue(const char *Flag, const char *Value) {
  if (Value)
    return true;
  std::fprintf(stderr, "sharc-serve: %s needs a value\n", Flag);
  return false;
}

/// 0 = parsed; 1 = --help (exit 0); 2 = usage error.
int parseArgs(int Argc, char **Argv, ServeOptions &Opt) {
  if (const char *Env = std::getenv("SHARC_POLICY")) {
    if (!guard::parsePolicy(Env, Opt.OnViolation)) {
      std::fprintf(stderr,
                   "sharc-serve: SHARC_POLICY must be abort, continue, or "
                   "quarantine; got '%s'\n",
                   Env);
      return 2;
    }
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Value = nullptr;
    uint64_t Num = 0;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 1;
    } else if (matchValueFlag("--clients", Argc, Argv, I, Value)) {
      if (!needValue("--clients", Value) ||
          !parseU64Arg("--clients", Value, Opt.Load.Clients))
        return 2;
    } else if (matchValueFlag("--reqs-per-client", Argc, Argv, I, Value)) {
      if (!needValue("--reqs-per-client", Value) ||
          !parseU64Arg("--reqs-per-client", Value,
                       Opt.Load.RequestsPerClient))
        return 2;
    } else if (matchValueFlag("--rate", Argc, Argv, I, Value)) {
      if (!needValue("--rate", Value) ||
          !parseU64Arg("--rate", Value, Opt.Load.RatePerSec))
        return 2;
    } else if (matchValueFlag("--payload", Argc, Argv, I, Value)) {
      if (!needValue("--payload", Value) ||
          !parseU64Arg("--payload", Value, Num))
        return 2;
      if (Num > (1u << 20)) {
        std::fprintf(stderr, "sharc-serve: --payload is capped at 1 MiB\n");
        return 2;
      }
      Opt.Load.PayloadBytes = static_cast<uint32_t>(Num);
    } else if (matchValueFlag("--seed", Argc, Argv, I, Value)) {
      if (!needValue("--seed", Value) ||
          !parseU64Arg("--seed", Value, Opt.Load.Seed))
        return 2;
    } else if (matchValueFlag("--workers", Argc, Argv, I, Value)) {
      if (!needValue("--workers", Value) ||
          !parseU64Arg("--workers", Value, Num))
        return 2;
      // Thread budget: main + acceptor + workers + logger must fit the
      // 2-shadow-byte runtime's 15 thread ids.
      if (Num < 1 || Num > 12) {
        std::fprintf(stderr, "sharc-serve: --workers must be 1..12\n");
        return 2;
      }
      Opt.Params.Workers = static_cast<unsigned>(Num);
    } else if (matchValueFlag("--service-us", Argc, Argv, I, Value)) {
      if (!needValue("--service-us", Value) ||
          !parseU64Arg("--service-us", Value, Num))
        return 2;
      Opt.Params.ServiceNanos = Num * 1000;
    } else if (Arg == "--inject-race") {
      Opt.Params.InjectRaceEvery = 64;
    } else if (std::strncmp(Argv[I], "--inject-race=", 14) == 0) {
      if (!parseU64Arg("--inject-race", Argv[I] + 14,
                       Opt.Params.InjectRaceEvery))
        return 2;
      if (Opt.Params.InjectRaceEvery == 0) {
        std::fprintf(stderr, "sharc-serve: --inject-race period must be "
                             "nonzero\n");
        return 2;
      }
    } else if (Arg == "--inject-stall") {
      Opt.Params.InjectStallEvery = 64;
    } else if (std::strncmp(Argv[I], "--inject-stall=", 15) == 0) {
      if (!parseU64Arg("--inject-stall", Argv[I] + 15,
                       Opt.Params.InjectStallEvery))
        return 2;
      if (Opt.Params.InjectStallEvery == 0) {
        std::fprintf(stderr, "sharc-serve: --inject-stall period must be "
                             "nonzero\n");
        return 2;
      }
    } else if (matchValueFlag("--on-violation", Argc, Argv, I, Value)) {
      if (!needValue("--on-violation", Value))
        return 2;
      if (!guard::parsePolicy(Value, Opt.OnViolation)) {
        std::fprintf(stderr,
                     "sharc-serve: --on-violation must be abort, continue, "
                     "or quarantine; got '%s'\n",
                     Value);
        return 2;
      }
      Opt.PolicyExplicit = true;
    } else if (matchValueFlag("--stats-addr", Argc, Argv, I, Value)) {
      if (!needValue("--stats-addr", Value))
        return 2;
      std::string Host, AddrError;
      uint16_t Port = 0;
      if (!live::splitHostPort(Value, Host, Port, AddrError)) {
        std::fprintf(stderr,
                     "sharc-serve: --stats-addr expects HOST:PORT (%s), "
                     "got '%s'\n",
                     AddrError.c_str(), Value);
        return 2;
      }
      Opt.StatsAddr = Value;
    } else if (matchValueFlag("--json", Argc, Argv, I, Value)) {
      if (!needValue("--json", Value))
        return 2;
      Opt.JsonPath = Value;
    } else if (matchValueFlag("--trace-out", Argc, Argv, I, Value)) {
      if (!needValue("--trace-out", Value))
        return 2;
      Opt.TracePath = Value;
    } else if (Arg == "--unchecked") {
      Opt.Unchecked = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else {
      std::fprintf(stderr, "sharc-serve: unknown argument '%s'\n",
                   Arg.c_str());
      printUsage(stderr);
      return 2;
    }
  }
  if (Opt.Load.Clients == 0 || Opt.Load.RequestsPerClient == 0 ||
      Opt.Load.RatePerSec == 0) {
    std::fprintf(stderr, "sharc-serve: --clients, --reqs-per-client and "
                         "--rate must be nonzero\n");
    return 2;
  }
  if (Opt.Unchecked && !Opt.StatsAddr.empty()) {
    std::fprintf(stderr, "sharc-serve: note: --stats-addr is served by the "
                         "SharC runtime; ignored with --unchecked\n");
    Opt.StatsAddr.clear();
  }
  return 0;
}

/// What one measured repetition produced.
struct RunOutcome {
  ServeStats Stats;
  LoadResult Load;
  uint64_t WallNs = 0;
  uint64_t Violations = 0;
  bool ScrapeOk = false;
  uint64_t ScrapeSeries = 0;
  uint64_t ScrapeBytes = 0;
  uint64_t ScrapesServed = 0;
  bool TraceFailed = false; ///< --trace-out could not be written.
  uint64_t TraceRecords = 0;
};

/// Counts Prometheus series (non-comment, non-empty lines) in a scrape.
uint64_t promSeries(const std::string &Body) {
  uint64_t N = 0;
  bool AtLineStart = true;
  for (size_t I = 0; I != Body.size(); ++I) {
    if (AtLineStart && Body[I] != '#' && Body[I] != '\n')
      ++N;
    AtLineStart = Body[I] == '\n';
  }
  return N;
}

template <typename P>
RunOutcome runOnce(const ServeOptions &Opt,
                   const std::vector<Arrival> &Schedule) {
  RunOutcome Out;
  // Span tracing: every pipeline thread publishes into the lock-free
  // per-thread rings; the writer serialises at drain time. The ring is
  // sized so the ci.sh overhead-gate run never fills one mid-handler —
  // a producer-side drain would bill varint encoding to handler CPU.
  obs::TraceWriter Trace;
  std::unique_ptr<obs::Collector> Col;
  if (!Opt.TracePath.empty())
    Col = std::make_unique<obs::Collector>(Trace, 1u << 16);
  if (P::Checked) {
    rt::RuntimeConfig RC;
    // 2 shadow bytes per granule: 15 thread ids, enough for main +
    // acceptor + 12 workers + logger.
    RC.ShadowBytesPerGranule = 2;
    RC.Guard.OnViolation = Opt.OnViolation;
    RC.StatsAddr = Opt.StatsAddr;
    // With tracing armed the runtime's own events (lock transitions,
    // casts, conflicts) interleave with the spans in one stream, and
    // profiling fills the site tables `sharc-trace requests` joins
    // check-cost attribution from.
    RC.Obs = Col.get();
    RC.Profile = Col != nullptr;
    rt::Runtime::init(RC);
  }
  {
    SimTransport Net;
    SteadyClock::time_point Epoch = SteadyClock::now();
    Server<P> Srv(Opt.Params, Net, Epoch);
    Srv.setTrace(Col.get());
    Srv.start();

    std::function<void()> Midpoint;
    if (P::Checked && !Opt.StatsAddr.empty()) {
      if (live::StatsServer *LS = rt::Runtime::get().getLiveServer()) {
        if (!Opt.Quiet)
          std::fprintf(stderr, "sharc-serve: stats: listening on %s\n",
                       LS->boundAddress().c_str());
        uint16_t Port = LS->port();
        Midpoint = [&Out, Port] {
          std::string Body, Error;
          if (live::httpGet("127.0.0.1", Port, "/metrics", Body, Error)) {
            Out.ScrapeOk = true;
            Out.ScrapeSeries = promSeries(Body);
            Out.ScrapeBytes = Body.size();
          }
        };
      }
    }

    Out.Load = runOpenLoop(Net, Schedule, Opt.Load, Epoch, Midpoint);
    Srv.stop();
    Out.WallNs = nanosSince(Epoch);
    Out.Stats = Srv.takeStats();
    if (P::Checked && Out.ScrapeOk)
      if (live::StatsServer *LS = rt::Runtime::get().getLiveServer())
        Out.ScrapesServed = LS->scrapeCount();
  }
  if (P::Checked) {
    Out.Violations = rt::Runtime::get().getStats().totalConflicts();
    rt::Runtime::shutdown();
  }
  if (Col) {
    // The runtime's shutdown has published its final records; drain
    // every ring and seal the file.
    Col->flush();
    std::string Error;
    if (!Trace.writeToFile(Opt.TracePath, Error)) {
      std::fprintf(stderr, "sharc-serve: %s\n", Error.c_str());
      Out.TraceFailed = true;
    }
    Out.TraceRecords = Trace.recordCount();
  }
  return Out;
}

double toUs(uint64_t Ns) { return static_cast<double>(Ns) / 1000.0; }

int writeReport(const ServeOptions &Opt, const char *Mode,
                const RunOutcome &R) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-bench-v1");
  W.key("bench");
  // A spans-armed run is its own benchmark configuration: compare-runs
  // groups series by this name, and traced runs must trend against
  // traced history, not dilute the untraced series.
  W.value(Opt.TracePath.empty() ? "sharc_serve" : "sharc_serve_spans");
  W.key("scale");
  W.value(static_cast<uint64_t>(bench::scale()));
  W.key("reps");
  W.value(static_cast<uint64_t>(bench::reps()));
  bench::writeHostJson(W);
  // The run configuration and the mid-run /metrics scrape; obs/Json.cpp
  // validates this section when present.
  W.key("serve");
  W.beginObject();
  W.key("clients");
  W.value(Opt.Load.Clients);
  W.key("reqs_per_client");
  W.value(Opt.Load.RequestsPerClient);
  W.key("target_rate_rps");
  W.value(Opt.Load.RatePerSec);
  W.key("payload_bytes");
  W.value(static_cast<uint64_t>(Opt.Load.PayloadBytes));
  W.key("workers");
  W.value(static_cast<uint64_t>(Opt.Params.Workers));
  W.key("service_us");
  W.value(Opt.Params.ServiceNanos / 1000);
  W.key("seed");
  W.value(Opt.Load.Seed);
  W.key("checked");
  W.value(static_cast<uint64_t>(Opt.Unchecked ? 0 : 1));
  if (R.ScrapeOk) {
    W.key("scrape");
    W.beginObject();
    W.key("mid_run");
    W.value(static_cast<uint64_t>(1));
    W.key("series");
    W.value(R.ScrapeSeries);
    W.key("bytes");
    W.value(R.ScrapeBytes);
    W.key("scrapes_served");
    W.value(R.ScrapesServed);
    W.endObject();
  }
  // Per-stage latency percentiles (always collected; see ServeStats).
  // compare-runs lifts each stage into a "stages/<name>" pseudo-row so
  // the per-stage tail is trended exactly like the top-level rows.
  W.key("stages");
  W.beginObject();
  for (unsigned K = 0; K != obs::NumSpanStages; ++K) {
    const Histogram &H = R.Stats.StageNs[K];
    if (H.count() == 0)
      continue;
    W.key(obs::spanStageName(static_cast<obs::SpanStage>(K)));
    W.beginObject();
    W.key("count");
    W.value(static_cast<double>(H.count()));
    W.key("p50_us");
    W.value(toUs(H.percentile(0.50)));
    W.key("p99_us");
    W.value(toUs(H.percentile(0.99)));
    W.key("p999_us");
    W.value(toUs(H.percentile(0.999)));
    W.key("max_us");
    W.value(toUs(H.max()));
    W.endObject();
  }
  W.endObject();
  W.endObject();
  W.key("rows");
  W.beginArray();
  {
    // Mode-specific row name so check-overhead never compares wall time
    // of a schedule-bound open-loop run (that gates nothing); the
    // latency percentiles in here are what compare-runs trends. A
    // spans-armed run gets its own name for the same reason: the span
    // tracing overhead gate must compare only the shared "service" row
    // (thread-CPU), never the open-loop wall clock.
    W.beginObject();
    W.key("name");
    W.value(std::string(Mode) + (Opt.TracePath.empty() ? "" : "-spans") +
            "/run");
    W.key("metrics");
    W.beginObject();
    W.key("real_ns");
    W.value(static_cast<double>(R.WallNs));
    W.key("requests");
    W.value(static_cast<double>(R.Stats.Completed));
    W.key("offered");
    W.value(static_cast<double>(R.Load.Offered));
    W.key("errors");
    W.value(static_cast<double>(R.Stats.Errors));
    W.key("throughput_rps");
    W.value(R.WallNs ? 1e9 * static_cast<double>(R.Stats.Completed) /
                           static_cast<double>(R.WallNs)
                     : 0.0);
    W.key("p50_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.50)));
    W.key("p99_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.99)));
    W.key("p999_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.999)));
    W.key("max_us");
    W.value(toUs(R.Stats.LatencyNs.max()));
    W.key("max_lag_us");
    W.value(toUs(R.Load.MaxLagNs));
    W.key("peak_inflight");
    W.value(static_cast<double>(R.Stats.PeakInflight));
    W.key("session_hits");
    W.value(static_cast<double>(R.Stats.SessionHits));
    W.key("session_misses");
    W.value(static_cast<double>(R.Stats.SessionMisses));
    W.key("bytes_in");
    W.value(static_cast<double>(R.Stats.BytesIn));
    W.key("bytes_out");
    W.value(static_cast<double>(R.Stats.BytesOut));
    W.key("violations");
    W.value(static_cast<double>(R.Violations));
    W.endObject();
    W.endObject();
  }
  {
    // Shared-name row carrying the handler CPU time: this is what the
    // ci.sh armed-vs-disabled gate compares at 2% between an --unchecked
    // report and a checked one (thread-CPU accounted, so scheduler noise
    // on a loaded CI host cancels out).
    W.beginObject();
    W.key("name");
    W.value("service");
    W.key("metrics");
    W.beginObject();
    W.key("service_ns");
    W.value(static_cast<double>(R.Stats.ServiceNs));
    W.key("service_ns_per_req");
    W.value(R.Stats.Completed
                ? static_cast<double>(R.Stats.ServiceNs) /
                      static_cast<double>(R.Stats.Completed)
                : 0.0);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();

  std::string Text = W.take();
  Text.push_back('\n');
  std::FILE *F = std::fopen(Opt.JsonPath.c_str(), "wb");
  bool Ok = F && std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  if (F && std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::fprintf(stderr, "sharc-serve: cannot write '%s'\n",
                 Opt.JsonPath.c_str());
    return 2;
  }
  return 0;
}

/// Abort-policy violations die via std::abort (SIGABRT); map that death
/// to the contract's exit 1 so `sharc-serve --on-violation=abort` is
/// scriptable the same way sharcc is. Internal errors bypass SIGABRT
/// (guard::fatalInternal uses _Exit(3)), so exit 3 stays intact.
extern "C" void abortPolicyExit(int) { std::_Exit(1); }

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opt;
  int Parse = parseArgs(Argc, Argv, Opt);
  if (Parse == 1)
    return 0;
  if (Parse != 0)
    return Parse;

  // Runtime::init lets SHARC_POLICY override its config (so deployed
  // binaries can switch policies without a rebuild); an explicit
  // --on-violation must beat the environment, so republish the flag's
  // choice before any init.
  if (Opt.PolicyExplicit)
    setenv("SHARC_POLICY", guard::policyName(Opt.OnViolation), 1);

  if (!Opt.Unchecked && Opt.OnViolation == guard::Policy::Abort)
    std::signal(SIGABRT, abortPolicyExit);

  const char *Mode = Opt.Unchecked ? "orig" : "sharc";
  std::vector<Arrival> Schedule = buildSchedule(Opt.Load);

  // min-of-reps on handler CPU: the noise-robust statistic for the
  // fixed-work part of the run (wall time is schedule-bound by design).
  unsigned Reps = bench::reps();
  if (Reps == 0)
    Reps = 1;
  RunOutcome Best;
  bool Have = false;
  uint64_t TraceRecords = 0; ///< From the last rep — the file kept on disk.
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    RunOutcome R = Opt.Unchecked ? runOnce<UncheckedPolicy>(Opt, Schedule)
                                 : runOnce<SharcPolicy>(Opt, Schedule);
    if (R.TraceFailed)
      return 2;
    TraceRecords = R.TraceRecords;
    if (R.Stats.Completed != R.Load.Offered) {
      std::fprintf(stderr,
                   "sharc-serve: internal: offered %llu but completed %llu\n",
                   static_cast<unsigned long long>(R.Load.Offered),
                   static_cast<unsigned long long>(R.Stats.Completed));
      return 3;
    }
    if (!Have || R.Stats.ServiceNs < Best.Stats.ServiceNs) {
      // Keep the scrape from whichever rep produced one.
      if (Have && !R.ScrapeOk && Best.ScrapeOk) {
        RunOutcome Keep = Best;
        Best = R;
        Best.ScrapeOk = Keep.ScrapeOk;
        Best.ScrapeSeries = Keep.ScrapeSeries;
        Best.ScrapeBytes = Keep.ScrapeBytes;
        Best.ScrapesServed = Keep.ScrapesServed;
      } else {
        Best = R;
      }
      Have = true;
    }
  }

  if (!Opt.Quiet) {
    const ServeStats &S = Best.Stats;
    std::printf("sharc-serve: mode=%s clients=%llu reqs=%llu rate=%llu "
                "workers=%u service=%lluus\n",
                Mode, static_cast<unsigned long long>(Opt.Load.Clients),
                static_cast<unsigned long long>(Opt.Load.totalRequests()),
                static_cast<unsigned long long>(Opt.Load.RatePerSec),
                Opt.Params.Workers,
                static_cast<unsigned long long>(Opt.Params.ServiceNanos /
                                                1000));
    std::printf("sharc-serve: offered %llu completed %llu errors %llu in "
                "%.2fs (%.0f rps), peak inflight ~%llu\n",
                static_cast<unsigned long long>(Best.Load.Offered),
                static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Errors),
                static_cast<double>(Best.WallNs) / 1e9,
                Best.WallNs ? 1e9 * static_cast<double>(S.Completed) /
                                  static_cast<double>(Best.WallNs)
                            : 0.0,
                static_cast<unsigned long long>(S.PeakInflight));
    std::printf("sharc-serve: latency p50 %.1fus p99 %.1fus p999 %.1fus "
                "max %.1fus (max submit lag %.1fus)\n",
                toUs(S.LatencyNs.percentile(0.50)),
                toUs(S.LatencyNs.percentile(0.99)),
                toUs(S.LatencyNs.percentile(0.999)), toUs(S.LatencyNs.max()),
                toUs(Best.Load.MaxLagNs));
    std::printf("sharc-serve: handler cpu %.3fs (%.1fus/req), sessions "
                "%llu hit / %llu miss, checksum %016llx\n",
                static_cast<double>(S.ServiceNs) / 1e9,
                S.Completed ? static_cast<double>(S.ServiceNs) /
                                  static_cast<double>(S.Completed) / 1000.0
                            : 0.0,
                static_cast<unsigned long long>(S.SessionHits),
                static_cast<unsigned long long>(S.SessionMisses),
                static_cast<unsigned long long>(S.Checksum));
    if (Best.ScrapeOk)
      std::printf("sharc-serve: live scrape at midpoint: %llu series, "
                  "%llu bytes\n",
                  static_cast<unsigned long long>(Best.ScrapeSeries),
                  static_cast<unsigned long long>(Best.ScrapeBytes));
    if (!Opt.Unchecked)
      std::printf("sharc-serve: %llu violations (policy %s)\n",
                  static_cast<unsigned long long>(Best.Violations),
                  guard::policyName(Opt.OnViolation));
    if (!Opt.TracePath.empty())
      std::printf("sharc-serve: trace: wrote %s (%llu records)\n",
                  Opt.TracePath.c_str(),
                  static_cast<unsigned long long>(TraceRecords));
  }

  if (!Opt.JsonPath.empty())
    if (int Status = writeReport(Opt, Mode, Best))
      return Status;
  // Violations under continue/quarantine exit 0 by contract (the abort
  // policy never reaches here — the SIGABRT handler exited 1).
  return 0;
}
