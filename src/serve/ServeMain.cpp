//===-- serve/ServeMain.cpp - The sharc-serve driver ----------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharc-serve: the high-traffic scenario driver (DESIGN.md §15). Runs
/// the annotated request server (or the uninstrumented baseline with
/// --unchecked) under an open-loop Poisson load, reports throughput and
/// p50/p99/p999 latency, optionally serves the live /metrics endpoint
/// mid-run (--stats-addr, scraped once at the schedule midpoint and
/// folded into the JSON), and writes a sharc-bench-v1 report with a
/// "serve" section (--json).
///
/// Exit status follows the pinned sharcc contract: 0 clean (violations
/// permitted by continue/quarantine included); 1 violations under the
/// abort policy; 2 usage or output I/O errors; 3 internal errors.
///
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"
#include "serve/Server.h"

#include "BenchUtil.h"
#include "obs/Collector.h"
#include "obs/Json.h"
#include "obs/TraceFile.h"
#include "rt/Guard.h"
#include "rt/Runtime.h"
#include "rt/StatsServer.h"

#include <charconv>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

using namespace sharc;
using namespace sharc::serve;

namespace {

struct ServeOptions {
  LoadConfig Load;
  ServeParams Params;
  bool Unchecked = false;
  bool Quiet = false;
  std::string StatsAddr;
  std::string JsonPath;
  std::string TracePath;
  guard::Policy OnViolation = guard::Policy::Abort;
  bool PolicyExplicit = false; ///< --on-violation given (beats env).
  guard::FaultConfig Chaos;    ///< --chaos / SHARC_FAULT serve faults.
  bool ChaosGiven = false;     ///< --chaos given (beats env).
};

void printUsage(std::FILE *Out) {
  std::fprintf(
      Out,
      "usage: sharc-serve [options]\n"
      "\n"
      "The high-traffic scenario: an annotated multi-threaded request\n"
      "server (acceptor / worker pool / logger; session cache, connection\n"
      "table and stats carry SharC sharing modes) driven by an open-loop\n"
      "Poisson load generator. See DESIGN.md section 15.\n"
      "\n"
      "load:\n"
      "  --clients N          distinct simulated clients (default 100000)\n"
      "  --reqs-per-client N  connections per client (default 1)\n"
      "  --rate N             aggregate arrival rate, req/s (default 50000)\n"
      "  --payload N          request payload bytes (default 256)\n"
      "  --seed N             schedule + payload seed (default 1)\n"
      "server:\n"
      "  --workers N          worker threads (default 2, max 12)\n"
      "  --service-us N       simulated backend CPU per request (default 20)\n"
      "  --unchecked          run the uninstrumented baseline (orig)\n"
      "  --inject-race[=N]    skip the session-cache lock on every Nth\n"
      "                       request (default 64) — the serve_guard bug\n"
      "  --inject-stall[=N]   spin 2ms inside the session-shard lock on\n"
      "                       every Nth request (default 64) — a tail-\n"
      "                       latency bug for `sharc-trace requests`\n"
      "  --on-violation=P     abort|continue|quarantine (default abort;\n"
      "                       SHARC_POLICY overrides the default)\n"
      "  --stats-addr H:P     serve live /metrics; scraped at the schedule\n"
      "                       midpoint into the report (port 0 = ephemeral)\n"
      "resilience (sharc-storm; any of these arms the layer — shedding,\n"
      "deadline drops, degraded mode, client retries with backoff — and\n"
      "the serve.resilience report block; see DESIGN.md section 17):\n"
      "  --max-inflight N     admission cap on live connections; at the\n"
      "                       cap new connections are shed with a typed\n"
      "                       rejection (default 0 = ring-bounded only)\n"
      "  --deadline-ms N      per-request budget from scheduled arrival:\n"
      "                       stale requests are shed at admission and\n"
      "                       dropped at dequeue (default 0 = none)\n"
      "  --chaos SPEC         comma-separated fault plan (the SHARC_FAULT\n"
      "                       grammar): conn-reset:N, slow-peer:U,\n"
      "                       worker-stall[:M] (default 5ms), \n"
      "                       worker-crash[:K] (default 200),\n"
      "                       logger-wedge[:M] (default 50ms); the env\n"
      "                       var arms the same plan when --chaos absent\n"
      "output:\n"
      "  --json FILE          write a sharc-bench-v1 report (serve section\n"
      "                       included; `sharc-trace check-bench` clean)\n"
      "  --trace-out FILE     write a v4 .strc with request spans for every\n"
      "                       pipeline stage (analyze with `sharc-trace\n"
      "                       requests`); with repetitions the last rep's\n"
      "                       trace is the one kept (default off)\n"
      "  --quiet              suppress the text summary\n"
      "  --help               this text\n"
      "\n"
      "SHARC_BENCH_REPS (env) repeats the run, keeping the rep with the\n"
      "least handler CPU (default 3).\n"
      "\n"
      "exit status: 0 clean (violations permitted by continue/quarantine\n"
      "included); 1 violations under the abort policy; 2 usage or output\n"
      "I/O errors; 3 internal errors\n");
}

/// Strict unsigned parse: all digits, no sign, no trailing garbage.
bool parseU64Arg(const char *Flag, const char *Text, uint64_t &Out) {
  const char *End = Text + std::strlen(Text);
  auto [Ptr, Ec] = std::from_chars(Text, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Text == End) {
    std::fprintf(stderr,
                 "sharc-serve: %s expects an unsigned integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

/// "--flag VALUE" or "--flag=VALUE" (same contract as sharcc).
bool matchValueFlag(const char *Flag, int Argc, char **Argv, int &I,
                    const char *&Value) {
  const char *Arg = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] != '\0')
    return false;
  Value = I + 1 < Argc ? Argv[++I] : nullptr;
  return true;
}

bool needValue(const char *Flag, const char *Value) {
  if (Value)
    return true;
  std::fprintf(stderr, "sharc-serve: %s needs a value\n", Flag);
  return false;
}

/// Optional-period flags: "--flag" (bare, uses \p Default), "--flag=N",
/// or "--flag N". The period must be positive in BOTH value spellings —
/// a 0 period means "never", which is what omitting the flag says — and
/// the space form only consumes a following argument that looks numeric,
/// so "--inject-race --quiet" still parses.
bool parsePeriodFlag(const char *Flag, int Argc, char **Argv, int &I,
                     uint64_t Default, uint64_t &Out) {
  const char *Arg = Argv[I];
  size_t Len = std::strlen(Flag);
  const char *Value = nullptr;
  if (Arg[Len] == '=') {
    Value = Arg + Len + 1;
  } else if (I + 1 < Argc && Argv[I + 1][0] >= '0' && Argv[I + 1][0] <= '9') {
    Value = Argv[++I];
  } else {
    Out = Default;
    return true;
  }
  if (!parseU64Arg(Flag, Value, Out))
    return false;
  if (Out == 0) {
    std::fprintf(stderr,
                 "sharc-serve: %s expects a positive period, got 0 "
                 "(omit the flag to disable the injection)\n",
                 Flag);
    return false;
  }
  return true;
}

/// 0 = parsed; 1 = --help (exit 0); 2 = usage error.
int parseArgs(int Argc, char **Argv, ServeOptions &Opt) {
  if (const char *Env = std::getenv("SHARC_POLICY")) {
    if (!guard::parsePolicy(Env, Opt.OnViolation)) {
      std::fprintf(stderr,
                   "sharc-serve: SHARC_POLICY must be abort, continue, or "
                   "quarantine; got '%s'\n",
                   Env);
      return 2;
    }
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Value = nullptr;
    uint64_t Num = 0;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 1;
    } else if (matchValueFlag("--clients", Argc, Argv, I, Value)) {
      if (!needValue("--clients", Value) ||
          !parseU64Arg("--clients", Value, Opt.Load.Clients))
        return 2;
    } else if (matchValueFlag("--reqs-per-client", Argc, Argv, I, Value)) {
      if (!needValue("--reqs-per-client", Value) ||
          !parseU64Arg("--reqs-per-client", Value,
                       Opt.Load.RequestsPerClient))
        return 2;
    } else if (matchValueFlag("--rate", Argc, Argv, I, Value)) {
      if (!needValue("--rate", Value) ||
          !parseU64Arg("--rate", Value, Opt.Load.RatePerSec))
        return 2;
    } else if (matchValueFlag("--payload", Argc, Argv, I, Value)) {
      if (!needValue("--payload", Value) ||
          !parseU64Arg("--payload", Value, Num))
        return 2;
      if (Num > (1u << 20)) {
        std::fprintf(stderr, "sharc-serve: --payload is capped at 1 MiB\n");
        return 2;
      }
      Opt.Load.PayloadBytes = static_cast<uint32_t>(Num);
    } else if (matchValueFlag("--seed", Argc, Argv, I, Value)) {
      if (!needValue("--seed", Value) ||
          !parseU64Arg("--seed", Value, Opt.Load.Seed))
        return 2;
    } else if (matchValueFlag("--workers", Argc, Argv, I, Value)) {
      if (!needValue("--workers", Value) ||
          !parseU64Arg("--workers", Value, Num))
        return 2;
      // Thread budget: main + acceptor + workers + logger must fit the
      // 2-shadow-byte runtime's 15 thread ids.
      if (Num < 1 || Num > 12) {
        std::fprintf(stderr, "sharc-serve: --workers must be 1..12\n");
        return 2;
      }
      Opt.Params.Workers = static_cast<unsigned>(Num);
    } else if (matchValueFlag("--service-us", Argc, Argv, I, Value)) {
      if (!needValue("--service-us", Value) ||
          !parseU64Arg("--service-us", Value, Num))
        return 2;
      Opt.Params.ServiceNanos = Num * 1000;
    } else if (Arg == "--inject-race" ||
               std::strncmp(Argv[I], "--inject-race=", 14) == 0) {
      if (!parsePeriodFlag("--inject-race", Argc, Argv, I, 64,
                           Opt.Params.InjectRaceEvery))
        return 2;
    } else if (Arg == "--inject-stall" ||
               std::strncmp(Argv[I], "--inject-stall=", 15) == 0) {
      if (!parsePeriodFlag("--inject-stall", Argc, Argv, I, 64,
                           Opt.Params.InjectStallEvery))
        return 2;
    } else if (matchValueFlag("--max-inflight", Argc, Argv, I, Value)) {
      if (!needValue("--max-inflight", Value) ||
          !parseU64Arg("--max-inflight", Value, Opt.Params.MaxInflight))
        return 2;
      if (Opt.Params.MaxInflight == 0) {
        std::fprintf(stderr, "sharc-serve: --max-inflight must be positive "
                             "(omit the flag for ring-bounded admission)\n");
        return 2;
      }
    } else if (matchValueFlag("--deadline-ms", Argc, Argv, I, Value)) {
      if (!needValue("--deadline-ms", Value) ||
          !parseU64Arg("--deadline-ms", Value, Num))
        return 2;
      if (Num == 0 || Num > 3600000) {
        std::fprintf(stderr, "sharc-serve: --deadline-ms must be in "
                             "1..3600000\n");
        return 2;
      }
      Opt.Params.DeadlineNanos = Num * 1000000;
    } else if (matchValueFlag("--chaos", Argc, Argv, I, Value)) {
      if (!needValue("--chaos", Value))
        return 2;
      std::string FaultError;
      if (!guard::parseFaults(Value, Opt.Chaos, FaultError)) {
        std::fprintf(stderr, "sharc-serve: --chaos: %s\n",
                     FaultError.c_str());
        return 2;
      }
      Opt.ChaosGiven = true;
    } else if (matchValueFlag("--on-violation", Argc, Argv, I, Value)) {
      if (!needValue("--on-violation", Value))
        return 2;
      if (!guard::parsePolicy(Value, Opt.OnViolation)) {
        std::fprintf(stderr,
                     "sharc-serve: --on-violation must be abort, continue, "
                     "or quarantine; got '%s'\n",
                     Value);
        return 2;
      }
      Opt.PolicyExplicit = true;
    } else if (matchValueFlag("--stats-addr", Argc, Argv, I, Value)) {
      if (!needValue("--stats-addr", Value))
        return 2;
      std::string Host, AddrError;
      uint16_t Port = 0;
      if (!live::splitHostPort(Value, Host, Port, AddrError)) {
        std::fprintf(stderr,
                     "sharc-serve: --stats-addr expects HOST:PORT (%s), "
                     "got '%s'\n",
                     AddrError.c_str(), Value);
        return 2;
      }
      Opt.StatsAddr = Value;
    } else if (matchValueFlag("--json", Argc, Argv, I, Value)) {
      if (!needValue("--json", Value))
        return 2;
      Opt.JsonPath = Value;
    } else if (matchValueFlag("--trace-out", Argc, Argv, I, Value)) {
      if (!needValue("--trace-out", Value))
        return 2;
      Opt.TracePath = Value;
    } else if (Arg == "--unchecked") {
      Opt.Unchecked = true;
    } else if (Arg == "--quiet") {
      Opt.Quiet = true;
    } else {
      std::fprintf(stderr, "sharc-serve: unknown argument '%s'\n",
                   Arg.c_str());
      printUsage(stderr);
      return 2;
    }
  }
  if (Opt.Load.Clients == 0 || Opt.Load.RequestsPerClient == 0 ||
      Opt.Load.RatePerSec == 0) {
    std::fprintf(stderr, "sharc-serve: --clients, --reqs-per-client and "
                         "--rate must be nonzero\n");
    return 2;
  }
  if (Opt.Unchecked && !Opt.StatsAddr.empty()) {
    std::fprintf(stderr, "sharc-serve: note: --stats-addr is served by the "
                         "SharC runtime; ignored with --unchecked\n");
    Opt.StatsAddr.clear();
  }

  // A SHARC_FAULT plan arms the same serve faults as --chaos (the flag
  // wins); a malformed env spec is a usage error here, not a silent
  // pass, mirroring the fatalInternal the runtime would raise later.
  if (!Opt.ChaosGiven) {
    if (const char *Env = std::getenv("SHARC_FAULT")) {
      std::string FaultError;
      if (!guard::parseFaults(Env, Opt.Chaos, FaultError)) {
        std::fprintf(stderr, "sharc-serve: bad SHARC_FAULT spec: %s\n",
                     FaultError.c_str());
        return 2;
      }
    }
  }
  if (Opt.Chaos.WorkerCrashAfter != 0 && Opt.Params.Workers < 2) {
    std::fprintf(stderr, "sharc-serve: worker-crash needs --workers >= 2 "
                         "(the survivors must drain the ring)\n");
    return 2;
  }

  // Arm the resilience layer: any overload knob or serve-level chaos
  // fault switches the server to shed-don't-block admission and the
  // client to reject polling + retries — and the accounting identity
  // from strict completed == offered to
  // completed + timed-out + dropped == offered.
  Opt.Params.WorkerStallNanos = Opt.Chaos.WorkerStallMillis * 1000000;
  Opt.Params.WorkerCrashAfter = Opt.Chaos.WorkerCrashAfter;
  Opt.Params.LoggerWedgeNanos = Opt.Chaos.LoggerWedgeMillis * 1000000;
  bool Armed = Opt.Params.MaxInflight != 0 || Opt.Params.DeadlineNanos != 0 ||
               Opt.Chaos.anyServeFault();
  Opt.Params.Resilient = Armed;
  Opt.Load.Resilient = Armed;
  // The client hangs up one deadline past the server's own budget:
  // retrying a request the server would only shed again is wasted wire.
  if (Opt.Params.DeadlineNanos != 0)
    Opt.Load.RequestTimeoutNs = 4 * Opt.Params.DeadlineNanos;
  // A slow peer delays rejects by up to one accept-batch stall; the
  // drain phase's quiet window must outwait it.
  if (Opt.Chaos.SlowPeerMicros != 0) {
    uint64_t Stall = 2 * Opt.Chaos.SlowPeerMicros * 1000;
    if (Stall > Opt.Load.DrainGraceNs)
      Opt.Load.DrainGraceNs = Stall;
  }
  return 0;
}

/// What one measured repetition produced.
struct RunOutcome {
  ServeStats Stats;
  LoadResult Load;
  uint64_t WallNs = 0;
  uint64_t Violations = 0;
  bool ScrapeOk = false;
  uint64_t ScrapeSeries = 0;
  uint64_t ScrapeBytes = 0;
  uint64_t ScrapesServed = 0;
  bool TraceFailed = false; ///< --trace-out could not be written.
  uint64_t TraceRecords = 0;
};

// Crash-safe tracing (mirrors sharcc): while a traced run is in flight
// these point at the live writer, and the registered crash hook appends
// an abnormal-end record and flushes the buffer to disk — so a chaos
// run that dies under the abort policy (or a fatalInternal) still
// leaves a parseable .strc behind. sharc-serve deliberately does NOT
// install the signal-based crash handlers: their SIGABRT re-raise would
// defeat the abortPolicyExit mapping to exit 1. The hooks run anyway on
// every in-tree death path — guard::onViolation runs them before
// std::abort, fatalInternal before _Exit(3), abortPolicyExit as a belt.
obs::TraceWriter *LiveTrace = nullptr;
std::string LiveTracePath;
uint8_t LivePolicy = 0;

void crashFlushTrace(int Signal, void *) {
  if (!LiveTrace || LiveTracePath.empty())
    return;
  LiveTrace->finishAbnormal(static_cast<uint32_t>(Signal), LivePolicy);
  std::string IgnoredError;
  LiveTrace->writeToFile(LiveTracePath, IgnoredError);
}

/// Counts Prometheus series (non-comment, non-empty lines) in a scrape.
uint64_t promSeries(const std::string &Body) {
  uint64_t N = 0;
  bool AtLineStart = true;
  for (size_t I = 0; I != Body.size(); ++I) {
    if (AtLineStart && Body[I] != '#' && Body[I] != '\n')
      ++N;
    AtLineStart = Body[I] == '\n';
  }
  return N;
}

template <typename P>
RunOutcome runOnce(const ServeOptions &Opt,
                   const std::vector<Arrival> &Schedule) {
  RunOutcome Out;
  // Span tracing: every pipeline thread publishes into the lock-free
  // per-thread rings; the writer serialises at drain time. The ring is
  // sized so the ci.sh overhead-gate run never fills one mid-handler —
  // a producer-side drain would bill varint encoding to handler CPU.
  obs::TraceWriter Trace;
  std::unique_ptr<obs::Collector> Col;
  if (!Opt.TracePath.empty()) {
    Col = std::make_unique<obs::Collector>(Trace, 1u << 16);
    // Arm the crash-safe flush for this rep's writer. The hook itself
    // registers once per process (the hook table is append-only).
    LiveTrace = &Trace;
    LiveTracePath = Opt.TracePath;
    LivePolicy = static_cast<uint8_t>(Opt.OnViolation);
    static bool HookRegistered = false;
    if (!HookRegistered) {
      HookRegistered = true;
      guard::addCrashHook(crashFlushTrace, nullptr);
    }
  }
  if (P::Checked) {
    rt::RuntimeConfig RC;
    // 2 shadow bytes per granule: 15 thread ids, enough for main +
    // acceptor + 12 workers + logger.
    RC.ShadowBytesPerGranule = 2;
    RC.Guard.OnViolation = Opt.OnViolation;
    RC.StatsAddr = Opt.StatsAddr;
    // With tracing armed the runtime's own events (lock transitions,
    // casts, conflicts) interleave with the spans in one stream, and
    // profiling fills the site tables `sharc-trace requests` joins
    // check-cost attribution from.
    RC.Obs = Col.get();
    RC.Profile = Col != nullptr;
    rt::Runtime::init(RC);
  }
  {
    SimTransport Net;
    // Network-side chaos lives in the transport, outside the checked
    // program — where a flaky NIC or a slow peer would.
    Net.setConnResetEvery(Opt.Chaos.ConnResetEvery);
    Net.setSlowPeerMicros(Opt.Chaos.SlowPeerMicros);
    SteadyClock::time_point Epoch = SteadyClock::now();
    Server<P> Srv(Opt.Params, Net, Epoch);
    Srv.setTrace(Col.get());
    Srv.start();

    std::function<void()> Midpoint;
    if (P::Checked && !Opt.StatsAddr.empty()) {
      if (live::StatsServer *LS = rt::Runtime::get().getLiveServer()) {
        if (!Opt.Quiet)
          std::fprintf(stderr, "sharc-serve: stats: listening on %s\n",
                       LS->boundAddress().c_str());
        uint16_t Port = LS->port();
        Midpoint = [&Out, Port] {
          std::string Body, Error;
          if (live::httpGet("127.0.0.1", Port, "/metrics", Body, Error)) {
            Out.ScrapeOk = true;
            Out.ScrapeSeries = promSeries(Body);
            Out.ScrapeBytes = Body.size();
          }
        };
      }
    }

    Out.Load = runOpenLoop(Net, Schedule, Opt.Load, Epoch, Midpoint);
    Srv.stop();
    Out.WallNs = nanosSince(Epoch);
    Out.Stats = Srv.takeStats();
    if (P::Checked && Out.ScrapeOk)
      if (live::StatsServer *LS = rt::Runtime::get().getLiveServer())
        Out.ScrapesServed = LS->scrapeCount();
  }
  if (P::Checked) {
    Out.Violations = rt::Runtime::get().getStats().totalConflicts();
    rt::Runtime::shutdown();
  }
  if (Col) {
    // The runtime's shutdown has published its final records; drain
    // every ring and seal the file. Disarm the crash flush first: from
    // here the normal write owns the file.
    LiveTrace = nullptr;
    Col->flush();
    std::string Error;
    if (!Trace.writeToFile(Opt.TracePath, Error)) {
      std::fprintf(stderr, "sharc-serve: %s\n", Error.c_str());
      Out.TraceFailed = true;
    }
    Out.TraceRecords = Trace.recordCount();
  }
  return Out;
}

double toUs(uint64_t Ns) { return static_cast<double>(Ns) / 1000.0; }

int writeReport(const ServeOptions &Opt, const char *Mode,
                const RunOutcome &R) {
  obs::JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-bench-v1");
  W.key("bench");
  // A spans-armed run is its own benchmark configuration: compare-runs
  // groups series by this name, and traced runs must trend against
  // traced history, not dilute the untraced series.
  W.value(Opt.TracePath.empty() ? "sharc_serve" : "sharc_serve_spans");
  W.key("scale");
  W.value(static_cast<uint64_t>(bench::scale()));
  W.key("reps");
  W.value(static_cast<uint64_t>(bench::reps()));
  bench::writeHostJson(W);
  // The run configuration and the mid-run /metrics scrape; obs/Json.cpp
  // validates this section when present.
  W.key("serve");
  W.beginObject();
  W.key("clients");
  W.value(Opt.Load.Clients);
  W.key("reqs_per_client");
  W.value(Opt.Load.RequestsPerClient);
  W.key("target_rate_rps");
  W.value(Opt.Load.RatePerSec);
  W.key("payload_bytes");
  W.value(static_cast<uint64_t>(Opt.Load.PayloadBytes));
  W.key("workers");
  W.value(static_cast<uint64_t>(Opt.Params.Workers));
  W.key("service_us");
  W.value(Opt.Params.ServiceNanos / 1000);
  W.key("seed");
  W.value(Opt.Load.Seed);
  W.key("checked");
  W.value(static_cast<uint64_t>(Opt.Unchecked ? 0 : 1));
  if (R.ScrapeOk) {
    W.key("scrape");
    W.beginObject();
    W.key("mid_run");
    W.value(static_cast<uint64_t>(1));
    W.key("series");
    W.value(R.ScrapeSeries);
    W.key("bytes");
    W.value(R.ScrapeBytes);
    W.key("scrapes_served");
    W.value(R.ScrapesServed);
    W.endObject();
  }
  if (Opt.Params.Resilient) {
    // sharc-storm resilience block: the overload / chaos story in
    // numbers. compare-runs lifts it into a "resilience" pseudo-row so
    // shed rates and time-to-recover trend across commits like any
    // other metric.
    W.key("resilience");
    W.beginObject();
    W.key("shed");
    W.value(R.Stats.Shed);
    W.key("timed_out");
    W.value(R.Stats.TimedOut);
    W.key("retries");
    W.value(R.Load.Retries);
    W.key("dropped");
    W.value(R.Load.Dropped);
    W.key("conn_resets");
    W.value(R.Load.ResetSeen);
    W.key("log_shed");
    W.value(R.Stats.LogShed);
    W.key("faults_injected");
    W.value(R.Stats.FaultsInjected);
    W.key("recoveries");
    W.value(R.Stats.Recoveries);
    W.key("degraded_ms");
    W.value(static_cast<double>(R.Stats.DegradedNs) / 1e6);
    W.key("ttr_p50_us");
    W.value(toUs(R.Stats.RecoveryNs.percentile(0.50)));
    W.key("ttr_p99_us");
    W.value(toUs(R.Stats.RecoveryNs.percentile(0.99)));
    W.key("ttr_max_us");
    W.value(toUs(R.Stats.RecoveryNs.max()));
    W.endObject();
  }
  // Per-stage latency percentiles (always collected; see ServeStats).
  // compare-runs lifts each stage into a "stages/<name>" pseudo-row so
  // the per-stage tail is trended exactly like the top-level rows.
  W.key("stages");
  W.beginObject();
  for (unsigned K = 0; K != obs::NumSpanStages; ++K) {
    const Histogram &H = R.Stats.StageNs[K];
    if (H.count() == 0)
      continue;
    W.key(obs::spanStageName(static_cast<obs::SpanStage>(K)));
    W.beginObject();
    W.key("count");
    W.value(static_cast<double>(H.count()));
    W.key("p50_us");
    W.value(toUs(H.percentile(0.50)));
    W.key("p99_us");
    W.value(toUs(H.percentile(0.99)));
    W.key("p999_us");
    W.value(toUs(H.percentile(0.999)));
    W.key("max_us");
    W.value(toUs(H.max()));
    W.endObject();
  }
  W.endObject();
  W.endObject();
  W.key("rows");
  W.beginArray();
  {
    // Mode-specific row name so check-overhead never compares wall time
    // of a schedule-bound open-loop run (that gates nothing); the
    // latency percentiles in here are what compare-runs trends. A
    // spans-armed run gets its own name for the same reason: the span
    // tracing overhead gate must compare only the shared "service" row
    // (thread-CPU), never the open-loop wall clock.
    W.beginObject();
    W.key("name");
    W.value(std::string(Mode) + (Opt.TracePath.empty() ? "" : "-spans") +
            "/run");
    W.key("metrics");
    W.beginObject();
    W.key("real_ns");
    W.value(static_cast<double>(R.WallNs));
    W.key("requests");
    W.value(static_cast<double>(R.Stats.Completed));
    W.key("offered");
    W.value(static_cast<double>(R.Load.Offered));
    W.key("errors");
    W.value(static_cast<double>(R.Stats.Errors));
    W.key("throughput_rps");
    W.value(R.WallNs ? 1e9 * static_cast<double>(R.Stats.Completed) /
                           static_cast<double>(R.WallNs)
                     : 0.0);
    W.key("p50_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.50)));
    W.key("p99_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.99)));
    W.key("p999_us");
    W.value(toUs(R.Stats.LatencyNs.percentile(0.999)));
    W.key("max_us");
    W.value(toUs(R.Stats.LatencyNs.max()));
    W.key("max_lag_us");
    W.value(toUs(R.Load.MaxLagNs));
    W.key("peak_inflight");
    W.value(static_cast<double>(R.Stats.PeakInflight));
    W.key("session_hits");
    W.value(static_cast<double>(R.Stats.SessionHits));
    W.key("session_misses");
    W.value(static_cast<double>(R.Stats.SessionMisses));
    W.key("bytes_in");
    W.value(static_cast<double>(R.Stats.BytesIn));
    W.key("bytes_out");
    W.value(static_cast<double>(R.Stats.BytesOut));
    W.key("violations");
    W.value(static_cast<double>(R.Violations));
    W.endObject();
    W.endObject();
  }
  {
    // Shared-name row carrying the handler CPU time: this is what the
    // ci.sh armed-vs-disabled gate compares at 2% between an --unchecked
    // report and a checked one (thread-CPU accounted, so scheduler noise
    // on a loaded CI host cancels out).
    W.beginObject();
    W.key("name");
    W.value("service");
    W.key("metrics");
    W.beginObject();
    W.key("service_ns");
    W.value(static_cast<double>(R.Stats.ServiceNs));
    W.key("service_ns_per_req");
    W.value(R.Stats.Completed
                ? static_cast<double>(R.Stats.ServiceNs) /
                      static_cast<double>(R.Stats.Completed)
                : 0.0);
    W.endObject();
    W.endObject();
  }
  W.endArray();
  W.endObject();

  std::string Text = W.take();
  Text.push_back('\n');
  std::FILE *F = std::fopen(Opt.JsonPath.c_str(), "wb");
  bool Ok = F && std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  if (F && std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    std::fprintf(stderr, "sharc-serve: cannot write '%s'\n",
                 Opt.JsonPath.c_str());
    return 2;
  }
  return 0;
}

/// Abort-policy violations die via std::abort (SIGABRT); map that death
/// to the contract's exit 1 so `sharc-serve --on-violation=abort` is
/// scriptable the same way sharcc is. Internal errors bypass SIGABRT
/// (guard::fatalInternal uses _Exit(3)), so exit 3 stays intact. The
/// crash hooks have normally run already (guard::onViolation runs them
/// before std::abort); the call here is an idempotent belt for any
/// other SIGABRT source, so a traced chaos run still flushes its .strc.
extern "C" void abortPolicyExit(int) {
  guard::runCrashHooks(0);
  std::_Exit(1);
}

} // namespace

int main(int Argc, char **Argv) {
  ServeOptions Opt;
  int Parse = parseArgs(Argc, Argv, Opt);
  if (Parse == 1)
    return 0;
  if (Parse != 0)
    return Parse;

  // Runtime::init lets SHARC_POLICY override its config (so deployed
  // binaries can switch policies without a rebuild); an explicit
  // --on-violation must beat the environment, so republish the flag's
  // choice before any init.
  if (Opt.PolicyExplicit)
    setenv("SHARC_POLICY", guard::policyName(Opt.OnViolation), 1);

  if (!Opt.Unchecked && Opt.OnViolation == guard::Policy::Abort)
    std::signal(SIGABRT, abortPolicyExit);

  const char *Mode = Opt.Unchecked ? "orig" : "sharc";
  std::vector<Arrival> Schedule = buildSchedule(Opt.Load);

  // min-of-reps on handler CPU: the noise-robust statistic for the
  // fixed-work part of the run (wall time is schedule-bound by design).
  unsigned Reps = bench::reps();
  if (Reps == 0)
    Reps = 1;
  RunOutcome Best;
  bool Have = false;
  uint64_t TraceRecords = 0; ///< From the last rep — the file kept on disk.
  for (unsigned Rep = 0; Rep != Reps; ++Rep) {
    RunOutcome R = Opt.Unchecked ? runOnce<UncheckedPolicy>(Opt, Schedule)
                                 : runOnce<SharcPolicy>(Opt, Schedule);
    if (R.TraceFailed)
      return 2;
    TraceRecords = R.TraceRecords;
    // Conservation of requests. Resilient runs complete, time out on
    // the server, or drop on the client — nothing may vanish; strict
    // runs must complete everything, exactly as before sharc-storm.
    uint64_t Accounted =
        R.Stats.Completed + R.Stats.TimedOut + R.Load.Dropped;
    if (Opt.Params.Resilient ? Accounted != R.Load.Offered
                             : R.Stats.Completed != R.Load.Offered) {
      std::fprintf(stderr,
                   "sharc-serve: internal: offered %llu but completed %llu "
                   "+ timed-out %llu + dropped %llu\n",
                   static_cast<unsigned long long>(R.Load.Offered),
                   static_cast<unsigned long long>(R.Stats.Completed),
                   static_cast<unsigned long long>(R.Stats.TimedOut),
                   static_cast<unsigned long long>(R.Load.Dropped));
      return 3;
    }
    if (!Have || R.Stats.ServiceNs < Best.Stats.ServiceNs) {
      // Keep the scrape from whichever rep produced one.
      if (Have && !R.ScrapeOk && Best.ScrapeOk) {
        RunOutcome Keep = Best;
        Best = R;
        Best.ScrapeOk = Keep.ScrapeOk;
        Best.ScrapeSeries = Keep.ScrapeSeries;
        Best.ScrapeBytes = Keep.ScrapeBytes;
        Best.ScrapesServed = Keep.ScrapesServed;
      } else {
        Best = R;
      }
      Have = true;
    }
  }

  if (!Opt.Quiet) {
    const ServeStats &S = Best.Stats;
    std::printf("sharc-serve: mode=%s clients=%llu reqs=%llu rate=%llu "
                "workers=%u service=%lluus\n",
                Mode, static_cast<unsigned long long>(Opt.Load.Clients),
                static_cast<unsigned long long>(Opt.Load.totalRequests()),
                static_cast<unsigned long long>(Opt.Load.RatePerSec),
                Opt.Params.Workers,
                static_cast<unsigned long long>(Opt.Params.ServiceNanos /
                                                1000));
    std::printf("sharc-serve: offered %llu completed %llu errors %llu in "
                "%.2fs (%.0f rps), peak inflight ~%llu\n",
                static_cast<unsigned long long>(Best.Load.Offered),
                static_cast<unsigned long long>(S.Completed),
                static_cast<unsigned long long>(S.Errors),
                static_cast<double>(Best.WallNs) / 1e9,
                Best.WallNs ? 1e9 * static_cast<double>(S.Completed) /
                                  static_cast<double>(Best.WallNs)
                            : 0.0,
                static_cast<unsigned long long>(S.PeakInflight));
    std::printf("sharc-serve: latency p50 %.1fus p99 %.1fus p999 %.1fus "
                "max %.1fus (max submit lag %.1fus)\n",
                toUs(S.LatencyNs.percentile(0.50)),
                toUs(S.LatencyNs.percentile(0.99)),
                toUs(S.LatencyNs.percentile(0.999)), toUs(S.LatencyNs.max()),
                toUs(Best.Load.MaxLagNs));
    std::printf("sharc-serve: handler cpu %.3fs (%.1fus/req), sessions "
                "%llu hit / %llu miss, checksum %016llx\n",
                static_cast<double>(S.ServiceNs) / 1e9,
                S.Completed ? static_cast<double>(S.ServiceNs) /
                                  static_cast<double>(S.Completed) / 1000.0
                            : 0.0,
                static_cast<unsigned long long>(S.SessionHits),
                static_cast<unsigned long long>(S.SessionMisses),
                static_cast<unsigned long long>(S.Checksum));
    if (Opt.Params.Resilient)
      std::printf("sharc-serve: resilience: shed %llu timed-out %llu "
                  "retries %llu dropped %llu resets %llu log-shed %llu "
                  "faults %llu recoveries %llu (ttr p99 %.1fms, degraded "
                  "%.1fms)\n",
                  static_cast<unsigned long long>(S.Shed),
                  static_cast<unsigned long long>(S.TimedOut),
                  static_cast<unsigned long long>(Best.Load.Retries),
                  static_cast<unsigned long long>(Best.Load.Dropped),
                  static_cast<unsigned long long>(Best.Load.ResetSeen),
                  static_cast<unsigned long long>(S.LogShed),
                  static_cast<unsigned long long>(S.FaultsInjected),
                  static_cast<unsigned long long>(S.Recoveries),
                  static_cast<double>(S.RecoveryNs.percentile(0.99)) / 1e6,
                  static_cast<double>(S.DegradedNs) / 1e6);
    if (Best.ScrapeOk)
      std::printf("sharc-serve: live scrape at midpoint: %llu series, "
                  "%llu bytes\n",
                  static_cast<unsigned long long>(Best.ScrapeSeries),
                  static_cast<unsigned long long>(Best.ScrapeBytes));
    if (!Opt.Unchecked)
      std::printf("sharc-serve: %llu violations (policy %s)\n",
                  static_cast<unsigned long long>(Best.Violations),
                  guard::policyName(Opt.OnViolation));
    if (!Opt.TracePath.empty())
      std::printf("sharc-serve: trace: wrote %s (%llu records)\n",
                  Opt.TracePath.c_str(),
                  static_cast<unsigned long long>(TraceRecords));
  }

  if (!Opt.JsonPath.empty())
    if (int Status = writeReport(Opt, Mode, Best))
      return Status;
  // Violations under continue/quarantine exit 0 by contract (the abort
  // policy never reaches here — the SIGABRT handler exited 1).
  return 0;
}
