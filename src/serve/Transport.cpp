//===-- serve/Transport.cpp - Simulated-socket transport ------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

#include <chrono>
#include <thread>

namespace sharc {
namespace serve {

Transport::~Transport() = default;

void SimTransport::submit(SimRequest &&Req) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Submitted;
    if (ConnResetEvery != 0 && Submitted % ConnResetEvery == 0) {
      // Chaos: the "network" drops this connection on the floor and the
      // client sees a reset — it never reaches the accept queue.
      ++Resets;
      ++Rejected;
      Rejects.push_back(Reject{Req.Client, Req.Seq, Req.Kind, Req.ArrivalNs,
                               RejectReason::ConnReset});
      return;
    }
    Queue.push_back(std::move(Req));
  }
  NotEmpty.notify_one();
}

size_t SimTransport::acceptBatch(std::vector<SimRequest> &Out, size_t Max) {
  Out.clear();
  uint64_t Delay;
  {
    std::unique_lock<std::mutex> Lock(Mu);
    NotEmpty.wait(Lock, [&] { return !Queue.empty() || Closed; });
    size_t N = std::min(Max, Queue.size());
    for (size_t I = 0; I != N; ++I) {
      Out.push_back(std::move(Queue.front()));
      Queue.pop_front();
    }
    Delay = Out.empty() ? 0 : SlowPeerMicros;
  }
  if (Delay)
    // Chaos slow-peer: the batch dribbles in late, so the accept queue
    // backs up exactly as it would behind a slow network peer.
    std::this_thread::sleep_for(std::chrono::microseconds(Delay));
  return Out.size();
}

void SimTransport::reject(const Reject &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  ++Rejected;
  Rejects.push_back(R);
}

size_t SimTransport::takeRejects(std::vector<Reject> &Out) {
  Out.clear();
  std::lock_guard<std::mutex> Lock(Mu);
  while (!Rejects.empty()) {
    Out.push_back(Rejects.front());
    Rejects.pop_front();
  }
  return Out.size();
}

void SimTransport::closeIngress() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  NotEmpty.notify_all();
}

uint64_t SimTransport::submitted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Submitted;
}

size_t SimTransport::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Queue.size();
}

uint64_t SimTransport::rejected() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Rejected;
}

uint64_t SimTransport::connResets() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Resets;
}

} // namespace serve
} // namespace sharc
