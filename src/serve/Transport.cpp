//===-- serve/Transport.cpp - Simulated-socket transport ------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Transport.h"

namespace sharc {
namespace serve {

Transport::~Transport() = default;

void SimTransport::submit(SimRequest &&Req) {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Queue.push_back(std::move(Req));
    ++Submitted;
  }
  NotEmpty.notify_one();
}

size_t SimTransport::acceptBatch(std::vector<SimRequest> &Out, size_t Max) {
  Out.clear();
  std::unique_lock<std::mutex> Lock(Mu);
  NotEmpty.wait(Lock, [&] { return !Queue.empty() || Closed; });
  size_t N = std::min(Max, Queue.size());
  for (size_t I = 0; I != N; ++I) {
    Out.push_back(std::move(Queue.front()));
    Queue.pop_front();
  }
  return N;
}

void SimTransport::closeIngress() {
  {
    std::lock_guard<std::mutex> Lock(Mu);
    Closed = true;
  }
  NotEmpty.notify_all();
}

uint64_t SimTransport::submitted() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Submitted;
}

size_t SimTransport::pending() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Queue.size();
}

} // namespace serve
} // namespace sharc
