//===-- serve/LoadGen.cpp - Open-loop Poisson load generator --------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

namespace sharc {
namespace serve {

namespace {

struct XorShift64Star {
  uint64_t State;
  explicit XorShift64Star(uint64_t Seed)
      : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
  /// Uniform in (0, 1] — never 0, so -log stays finite.
  double unitOpen() {
    return 1.0 - static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// A retry waiting out its backoff. Min-heap by DueNs.
struct PendingRetry {
  uint64_t DueNs = 0;
  uint32_t Attempt = 0;
  Reject R;
  bool operator>(const PendingRetry &O) const { return DueNs > O.DueNs; }
};

} // namespace

void fillPayload(std::vector<uint8_t> &Payload, uint64_t Seed, uint64_t Seq,
                 uint32_t Bytes) {
  Payload.resize(Bytes);
  XorShift64Star Rng(splitmix64(Seed ^ 0xbadc0ffee0ddf00dull) ^
                     splitmix64(Seq + 1));
  uint64_t Word = 0;
  for (size_t B = 0; B != Payload.size(); ++B) {
    if (B % 8 == 0)
      Word = Rng.next();
    Payload[B] = static_cast<uint8_t>(Word >> ((B % 8) * 8));
  }
}

std::vector<Arrival> buildSchedule(const LoadConfig &C) {
  std::vector<Arrival> Schedule;
  uint64_t Total = C.totalRequests();
  Schedule.reserve(Total);
  XorShift64Star Rng(C.Seed);
  double GapScale = 1e9 / static_cast<double>(C.RatePerSec ? C.RatePerSec : 1);
  double At = 0;
  for (uint64_t I = 0; I != Total; ++I) {
    At += -std::log(Rng.unitOpen()) * GapScale;
    Arrival A;
    A.AtNanos = static_cast<uint64_t>(At);
    A.Client = I % (C.Clients ? C.Clients : 1);
    unsigned Mix = static_cast<unsigned>(Rng.next() % 100);
    A.Kind = Mix < C.GetPct          ? OpGet
             : Mix < C.GetPct + C.PutPct ? OpPut
                                         : OpWork;
    Schedule.push_back(A);
  }
  return Schedule;
}

LoadResult runOpenLoop(Transport &Net, const std::vector<Arrival> &Schedule,
                       const LoadConfig &C, SteadyClock::time_point Epoch,
                       const std::function<void()> &Midpoint) {
  LoadResult Result;
  std::vector<uint8_t> Payload;
  size_t Half = Schedule.size() / 2;

  // Client-side resilience state (sharc-storm): a min-heap of retries
  // waiting out their backoff, and per-request attempt counts. All of
  // it dormant — not even a reject poll — when C.Resilient is off.
  std::vector<PendingRetry> Heap;
  std::unordered_map<uint64_t, uint32_t> Attempts;
  std::vector<Reject> Rejects;

  auto submitReq = [&](uint64_t Client, uint64_t Seq, uint8_t Kind,
                       uint64_t ArrivalNs) {
    fillPayload(Payload, C.Seed, Seq, C.PayloadBytes);
    SimRequest Req;
    Req.Client = Client;
    Req.Seq = Seq;
    Req.Kind = Kind;
    // A retry keeps the ORIGINAL scheduled arrival: server-side latency
    // stays measured from when the request should have started, so
    // retries can't launder queueing delay out of the tail.
    Req.ArrivalNs = ArrivalNs;
    Req.Payload = Payload;
    // Never blocks: the transport queue is unbounded, like a client
    // population that doesn't care how busy the server is.
    Net.submit(std::move(Req));
  };

  // Capped exponential backoff with deterministic jitter: the jitter is
  // a pure function of (Seed, Seq, attempt), so the same seed replays
  // the exact same retry schedule.
  auto backoffNs = [&](uint64_t Seq, uint32_t Attempt) {
    uint64_t Shift = Attempt > 0 ? Attempt - 1 : 0;
    uint64_t Delay = Shift >= 20 ? C.RetryBackoffCapNs
                                 : std::min(C.RetryBackoffNs << Shift,
                                            C.RetryBackoffCapNs);
    uint64_t Jitter =
        splitmix64(C.Seed ^ splitmix64(Seq) ^ Attempt) % (Delay / 4 + 1);
    return Delay + Jitter;
  };

  // Drains the reject channel, deciding retry-or-drop per reject.
  auto pollRejects = [&](uint64_t NowNs) -> size_t {
    size_t N = Net.takeRejects(Rejects);
    for (const Reject &R : Rejects) {
      if (R.Reason == RejectReason::Shed)
        ++Result.ShedSeen;
      else
        ++Result.ResetSeen;
      uint32_t Attempt = ++Attempts[R.Seq];
      bool ClientGaveUp = C.RequestTimeoutNs != 0 && NowNs > R.ArrivalNs &&
                          NowNs - R.ArrivalNs > C.RequestTimeoutNs;
      if (Attempt > C.RetryMax || ClientGaveUp) {
        ++Result.Dropped;
        Attempts.erase(R.Seq);
        continue;
      }
      Heap.push_back(PendingRetry{NowNs + backoffNs(R.Seq, Attempt),
                                  Attempt, R});
      std::push_heap(Heap.begin(), Heap.end(), std::greater<>());
    }
    return N;
  };

  // Re-submits every retry whose backoff has expired.
  auto flushDueRetries = [&](uint64_t NowNs) -> size_t {
    size_t N = 0;
    while (!Heap.empty() && Heap.front().DueNs <= NowNs) {
      std::pop_heap(Heap.begin(), Heap.end(), std::greater<>());
      PendingRetry P = Heap.back();
      Heap.pop_back();
      submitReq(P.R.Client, P.R.Seq, P.R.Kind, P.R.ArrivalNs);
      ++Result.Retries;
      ++N;
    }
    return N;
  };

  for (size_t I = 0; I != Schedule.size(); ++I) {
    const Arrival &A = Schedule[I];
    auto Target = Epoch + std::chrono::nanoseconds(A.AtNanos);
    auto Now = SteadyClock::now();
    if (Now < Target) {
      // Coarse sleep to within ~200us of the target, then spin: arrival
      // precision matters for tail-latency numbers, but a pure spin at
      // low rates would monopolise a CPU the workers need.
      if (Target - Now > std::chrono::microseconds(400))
        std::this_thread::sleep_until(Target -
                                      std::chrono::microseconds(200));
      while ((Now = SteadyClock::now()) < Target) {
      }
    }
    uint64_t NowNs = nanosSince(Epoch);
    uint64_t Lag = NowNs > A.AtNanos ? NowNs - A.AtNanos : 0;
    if (Lag > Result.MaxLagNs)
      Result.MaxLagNs = Lag;

    submitReq(A.Client, I, A.Kind, A.AtNanos);
    ++Result.Offered;

    if (C.Resilient) {
      pollRejects(NowNs);
      flushDueRetries(NowNs);
    }

    if (I + 1 == Half && Midpoint)
      Midpoint();
  }
  Result.SpanNs = Schedule.empty() ? 0 : Schedule.back().AtNanos;

  if (C.Resilient) {
    // Drain phase: the offering is done, but rejects may still be in
    // flight and retries still owed. Keep polling until the transport
    // is empty, no retry is pending, and the reject channel has stayed
    // quiet for the grace window — every distinct request is then
    // either inside the server or accounted for in Dropped.
    uint64_t Quiet = nanosSince(Epoch);
    for (;;) {
      uint64_t NowNs = nanosSince(Epoch);
      size_t Activity = pollRejects(NowNs) + flushDueRetries(NowNs);
      if (Activity != 0 || Net.pending() != 0)
        Quiet = NowNs;
      if (Heap.empty() && NowNs - Quiet >= C.DrainGraceNs)
        break;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  Result.ElapsedNs = nanosSince(Epoch);
  return Result;
}

} // namespace serve
} // namespace sharc
