//===-- serve/LoadGen.cpp - Open-loop Poisson load generator --------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/LoadGen.h"

#include <cmath>
#include <thread>

namespace sharc {
namespace serve {

namespace {

struct XorShift64Star {
  uint64_t State;
  explicit XorShift64Star(uint64_t Seed)
      : State(Seed ? Seed : 0x9e3779b97f4a7c15ull) {}
  uint64_t next() {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    return State * 0x2545f4914f6cdd1dull;
  }
  /// Uniform in (0, 1] — never 0, so -log stays finite.
  double unitOpen() {
    return 1.0 - static_cast<double>(next() >> 11) * 0x1.0p-53;
  }
};

} // namespace

std::vector<Arrival> buildSchedule(const LoadConfig &C) {
  std::vector<Arrival> Schedule;
  uint64_t Total = C.totalRequests();
  Schedule.reserve(Total);
  XorShift64Star Rng(C.Seed);
  double GapScale = 1e9 / static_cast<double>(C.RatePerSec ? C.RatePerSec : 1);
  double At = 0;
  for (uint64_t I = 0; I != Total; ++I) {
    At += -std::log(Rng.unitOpen()) * GapScale;
    Arrival A;
    A.AtNanos = static_cast<uint64_t>(At);
    A.Client = I % (C.Clients ? C.Clients : 1);
    unsigned Mix = static_cast<unsigned>(Rng.next() % 100);
    A.Kind = Mix < C.GetPct          ? OpGet
             : Mix < C.GetPct + C.PutPct ? OpPut
                                         : OpWork;
    Schedule.push_back(A);
  }
  return Schedule;
}

LoadResult runOpenLoop(Transport &Net, const std::vector<Arrival> &Schedule,
                       const LoadConfig &C, SteadyClock::time_point Epoch,
                       const std::function<void()> &Midpoint) {
  LoadResult Result;
  XorShift64Star PayloadRng(C.Seed ^ 0xbadc0ffee0ddf00dull);
  std::vector<uint8_t> Payload;
  size_t Half = Schedule.size() / 2;
  for (size_t I = 0; I != Schedule.size(); ++I) {
    const Arrival &A = Schedule[I];
    auto Target = Epoch + std::chrono::nanoseconds(A.AtNanos);
    auto Now = SteadyClock::now();
    if (Now < Target) {
      // Coarse sleep to within ~200us of the target, then spin: arrival
      // precision matters for tail-latency numbers, but a pure spin at
      // low rates would monopolise a CPU the workers need.
      if (Target - Now > std::chrono::microseconds(400))
        std::this_thread::sleep_until(Target -
                                      std::chrono::microseconds(200));
      while ((Now = SteadyClock::now()) < Target) {
      }
    }
    uint64_t Lag = nanosSince(Epoch);
    Lag = Lag > A.AtNanos ? Lag - A.AtNanos : 0;
    if (Lag > Result.MaxLagNs)
      Result.MaxLagNs = Lag;

    // Deterministic wire bytes: a pure function of the seed and request
    // index (NOT of submit timing), so orig and sharc runs agree.
    Payload.resize(C.PayloadBytes);
    uint64_t Word = 0;
    for (size_t B = 0; B != Payload.size(); ++B) {
      if (B % 8 == 0)
        Word = PayloadRng.next();
      Payload[B] = static_cast<uint8_t>(Word >> ((B % 8) * 8));
    }
    SimRequest Req;
    Req.Client = A.Client;
    Req.Seq = I;
    Req.Kind = A.Kind;
    Req.ArrivalNs = A.AtNanos;
    Req.Payload = Payload;
    // Never blocks: the transport queue is unbounded, like a client
    // population that doesn't care how busy the server is.
    Net.submit(std::move(Req));
    ++Result.Offered;

    if (I + 1 == Half && Midpoint)
      Midpoint();
  }
  Result.SpanNs = Schedule.empty() ? 0 : Schedule.back().AtNanos;
  Result.ElapsedNs = nanosSince(Epoch);
  return Result;
}

} // namespace serve
} // namespace sharc
