//===-- serve/Transport.h - Simulated-socket request ingress ----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boundary between the load generator ("the network") and the
/// server's acceptor thread. One interface so a kernel-socket transport
/// can slot in later; the in-tree implementation is a simulated socket
/// queue, which keeps CI free of privileged networking while preserving
/// the property the open-loop harness depends on: submit() NEVER blocks,
/// exactly as a busy kernel accept backlog never slows remote clients
/// down — they just queue.
///
/// The transport models the kernel/NIC side of the system and is
/// deliberately built from plain std:: primitives, not the annotated
/// API: it is outside the checked program, the same way the kernel is
/// outside a SharC-compiled process. Checking starts at the acceptor,
/// the first thread that touches request data inside the server.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_TRANSPORT_H
#define SHARC_SERVE_TRANSPORT_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace sharc {
namespace serve {

/// Request operations, a small mix so the session cache sees both
/// lookups and updates.
enum Op : uint8_t {
  OpGet = 0,  ///< Read the client's session value.
  OpPut = 1,  ///< Update the client's session value.
  OpWork = 2, ///< Compute-only (no session write).
  OpKinds = 3,
};

/// One simulated client connection carrying one request.
struct SimRequest {
  uint64_t Client = 0;   ///< Simulated client id (session key).
  uint64_t Seq = 0;      ///< Global request index (connection id).
  uint8_t Kind = OpGet;  ///< One of Op.
  uint64_t ArrivalNs = 0; ///< Scheduled arrival, relative to the run epoch.
  std::vector<uint8_t> Payload;
};

class Transport {
public:
  virtual ~Transport();

  /// Delivers a request from the load generator. Never blocks.
  virtual void submit(SimRequest &&Req) = 0;

  /// Moves up to \p Max pending requests into \p Out (cleared first).
  /// Blocks while the queue is empty; returns 0 only once the ingress is
  /// closed AND drained.
  virtual size_t acceptBatch(std::vector<SimRequest> &Out, size_t Max) = 0;

  /// No more submissions will arrive; acceptBatch drains then returns 0.
  virtual void closeIngress() = 0;

  virtual uint64_t submitted() const = 0;
  /// Requests accepted by nobody yet (queue depth).
  virtual size_t pending() const = 0;
};

/// The simulated-socket transport: an unbounded MPSC queue.
class SimTransport final : public Transport {
public:
  void submit(SimRequest &&Req) override;
  size_t acceptBatch(std::vector<SimRequest> &Out, size_t Max) override;
  void closeIngress() override;
  uint64_t submitted() const override;
  size_t pending() const override;

private:
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<SimRequest> Queue;
  uint64_t Submitted = 0;
  bool Closed = false;
};

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_TRANSPORT_H
