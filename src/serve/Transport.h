//===-- serve/Transport.h - Simulated-socket request ingress ----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The boundary between the load generator ("the network") and the
/// server's acceptor thread. One interface so a kernel-socket transport
/// can slot in later; the in-tree implementation is a simulated socket
/// queue, which keeps CI free of privileged networking while preserving
/// the property the open-loop harness depends on: submit() NEVER blocks,
/// exactly as a busy kernel accept backlog never slows remote clients
/// down — they just queue.
///
/// The transport models the kernel/NIC side of the system and is
/// deliberately built from plain std:: primitives, not the annotated
/// API: it is outside the checked program, the same way the kernel is
/// outside a SharC-compiled process. Checking starts at the acceptor,
/// the first thread that touches request data inside the server.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_TRANSPORT_H
#define SHARC_SERVE_TRANSPORT_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

namespace sharc {
namespace serve {

/// Request operations, a small mix so the session cache sees both
/// lookups and updates.
enum Op : uint8_t {
  OpGet = 0,  ///< Read the client's session value.
  OpPut = 1,  ///< Update the client's session value.
  OpWork = 2, ///< Compute-only (no session write).
  OpKinds = 3,
};

/// One simulated client connection carrying one request.
struct SimRequest {
  uint64_t Client = 0;   ///< Simulated client id (session key).
  uint64_t Seq = 0;      ///< Global request index (connection id).
  uint8_t Kind = OpGet;  ///< One of Op.
  uint64_t ArrivalNs = 0; ///< Scheduled arrival, relative to the run epoch.
  std::vector<uint8_t> Payload;
};

/// Why a submission bounced back to the client (sharc-storm).
enum class RejectReason : uint8_t {
  Shed = 0,      ///< server admission control shed it (overload)
  ConnReset = 1, ///< injected connection reset (chaos conn-reset:N)
};

/// The typed backpressure signal: a rejected submission, delivered back
/// through the transport so the client can retry with backoff. Carries
/// everything the client needs to re-submit (payload bytes are
/// regenerated deterministically from the seed and Seq).
struct Reject {
  uint64_t Client = 0;
  uint64_t Seq = 0;
  uint8_t Kind = OpGet;
  uint64_t ArrivalNs = 0; ///< The ORIGINAL scheduled arrival.
  RejectReason Reason = RejectReason::Shed;
};

class Transport {
public:
  virtual ~Transport();

  /// Delivers a request from the load generator. Never blocks.
  virtual void submit(SimRequest &&Req) = 0;

  /// Moves up to \p Max pending requests into \p Out (cleared first).
  /// Blocks while the queue is empty; returns 0 only once the ingress is
  /// closed AND drained.
  virtual size_t acceptBatch(std::vector<SimRequest> &Out, size_t Max) = 0;

  /// Server-side push-back: a rejected connection travels back to the
  /// client. Never blocks (the reject channel is unbounded, like RSTs
  /// on the wire).
  virtual void reject(const Reject &R) = 0;

  /// Client-side drain of the reject channel: moves every queued reject
  /// into \p Out (cleared first). Non-blocking.
  virtual size_t takeRejects(std::vector<Reject> &Out) = 0;

  /// No more submissions will arrive; acceptBatch drains then returns 0.
  virtual void closeIngress() = 0;

  virtual uint64_t submitted() const = 0;
  /// Requests accepted by nobody yet (queue depth).
  virtual size_t pending() const = 0;
  /// Rejects pushed so far (shed + injected resets).
  virtual uint64_t rejected() const = 0;
};

/// The simulated-socket transport: an unbounded MPSC queue plus the
/// reject back-channel. The chaos knobs model network-side faults —
/// they live here, outside the checked program, exactly where a flaky
/// NIC or a slow peer would.
class SimTransport final : public Transport {
public:
  void submit(SimRequest &&Req) override;
  size_t acceptBatch(std::vector<SimRequest> &Out, size_t Max) override;
  void reject(const Reject &R) override;
  size_t takeRejects(std::vector<Reject> &Out) override;
  void closeIngress() override;
  uint64_t submitted() const override;
  size_t pending() const override;
  uint64_t rejected() const override;

  /// Chaos conn-reset:N — every Nth submission (counting retries) is
  /// bounced with RejectReason::ConnReset instead of queueing (0 = off).
  void setConnResetEvery(uint64_t N) { ConnResetEvery = N; }
  /// Chaos slow-peer:U — every accept batch is delayed by U
  /// microseconds before it is handed to the acceptor (0 = off).
  void setSlowPeerMicros(uint64_t U) { SlowPeerMicros = U; }
  /// Injected connection resets so far.
  uint64_t connResets() const;

private:
  mutable std::mutex Mu;
  std::condition_variable NotEmpty;
  std::deque<SimRequest> Queue;
  std::deque<Reject> Rejects;
  uint64_t Submitted = 0;
  uint64_t Rejected = 0;
  uint64_t Resets = 0;
  uint64_t ConnResetEvery = 0;
  uint64_t SlowPeerMicros = 0;
  bool Closed = false;
};

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_TRANSPORT_H
