//===-- serve/Server.h - Annotated multi-threaded request server *- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharc-serve request server: one acceptor thread pulling simulated
/// connections off a Transport, a worker pool, and a logger thread,
/// templated over workloads::Policy so the identical source runs as the
/// uninstrumented baseline (UncheckedPolicy, "orig") and the annotated
/// build (SharcPolicy) — which is how the armed-vs-disabled overhead
/// gate and the orig/sharc checksum equivalence tests work.
///
/// Thread / sharing-mode map (DESIGN.md §15 renders the full table):
///
///   published run config   readonly   init() before threads start
///   live counters          racy       monitoring-grade, scraped by
///                                     /metrics; increments may race
///   session cache cells    locked     per-shard mutex; Value/Hits
///   connection table gauge locked     per-shard mutex; open-conn count
///   request connections    counted +  acceptor fills privately, casts
///                          dynamic    into the ingress ring; worker
///                                     casts out, payload accesses are
///                                     dynamic-checked ranges
///   log records            counted    worker -> logger hand-off
///   per-worker aggregates  private    adopted by the worker, handed
///                                     back to the collector after join
///
/// The hand-off rings are bounded, so back-pressure exists INSIDE the
/// server (acceptor blocks when workers fall behind) but never reaches
/// the open-loop load generator — the transport queue is unbounded,
/// like a remote client population that doesn't slow down just because
/// the server is busy.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_SERVER_H
#define SHARC_SERVE_SERVER_H

#include "obs/Sink.h"
#include "serve/Clock.h"
#include "serve/Histogram.h"
#include "serve/Transport.h"
#include "workloads/Policy.h"

#include <cstring>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

namespace sharc {
namespace serve {

struct ServeParams {
  unsigned Workers = 2;
  unsigned SessionShardCount = 64; ///< Power of two.
  unsigned ConnShardCount = 64;    ///< Power of two.
  size_t RingCapacity = 1024;      ///< Ingress / log hand-off ring depth.
  uint64_t ServiceNanos = 20000;   ///< Simulated backend CPU per request.
  uint64_t CipherKey = 0x243f6a8885a308d3ull;
  /// serve_guard's deliberate bug: every Nth request updates its session
  /// cell WITHOUT taking the shard lock (0 = off). Under SharcPolicy the
  /// locked-mode check catches each first offence deterministically.
  uint64_t InjectRaceEvery = 0;
  /// sharc-span's injected tail pathology: every Nth request spins for
  /// InjectStallNanos INSIDE its session-shard lock section (0 = off),
  /// so requests behind the same shard pile up in lock-wait and the
  /// tail report must attribute them to the stalling holder.
  uint64_t InjectStallEvery = 0;
  uint64_t InjectStallNanos = 2000000;

  //===---- sharc-storm: overload protection (DESIGN.md §17) ----------===//

  /// Master switch for the robustness layer. Off (the default) keeps
  /// the pre-storm pipeline byte for byte: blocking ring pushes, no
  /// admission checks, strict completed==offered accounting. Armed by
  /// sharc-serve whenever --max-inflight, --deadline-ms, or a chaos
  /// plan is given.
  bool Resilient = false;
  /// Admission cap on live connections (0 = bounded only by the ring):
  /// at or above it, new connections are shed with a typed rejection.
  uint64_t MaxInflight = 0;
  /// Per-request deadline budget from scheduled arrival (0 = none).
  /// Checked at admission (stale arrivals are shed before any alloc)
  /// and again at worker dequeue (stale queue residents are dropped
  /// with a counted timeout instead of burning handler CPU).
  uint64_t DeadlineNanos = 0;

  //===---- sharc-storm: chaos faults (guard::FaultConfig mirrors) ----===//

  /// worker-stall: each worker sleeps this long (0 = off) every
  /// WorkerStallEvery-th request it handles. A sleep, not a CPU spin,
  /// so handler thread-CPU — the overhead-gate statistic — is honest.
  uint64_t WorkerStallNanos = 0;
  uint64_t WorkerStallEvery = 64;
  /// worker-crash: worker 0 exits its loop after this many requests
  /// (0 = off). Always at a request boundary — a crashed worker never
  /// strands a connection it owns.
  uint64_t WorkerCrashAfter = 0;
  /// logger-wedge: the logger sleeps this long on its first record
  /// (0 = off), backing the log ring up against the workers.
  uint64_t LoggerWedgeNanos = 0;

  /// Ring watermarks for the degradation ladder, as depth thresholds
  /// derived from RingCapacity: enter degraded mode at High, exit (and
  /// count a recovery) at Low.
  size_t highWatermark() const { return RingCapacity - RingCapacity / 4; }
  size_t lowWatermark() const { return RingCapacity / 4; }
};

/// Post-run aggregate, folded from the per-thread private states.
struct ServeStats {
  uint64_t Accepted = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t SessionHits = 0;
  uint64_t SessionMisses = 0;
  uint64_t PeakInflight = 0; ///< Racy gauge: approximate by design.
  uint64_t ServiceNs = 0;    ///< Thread-CPU time inside handlers.
  uint64_t LogRecords = 0;
  uint64_t OpCounts[OpKinds] = {};
  uint64_t Checksum = 0; ///< Order-independent; orig == sharc.
  /// sharc-storm resilience counters (all 0 when the layer is off).
  uint64_t Shed = 0;           ///< Connections refused by admission control.
  uint64_t TimedOut = 0;       ///< Admitted, then dropped on a blown deadline.
  uint64_t LogShed = 0;        ///< Log records shed under degraded mode.
  uint64_t Recoveries = 0;     ///< Degraded episodes that ended.
  uint64_t DegradedNs = 0;     ///< Total wall time spent degraded.
  uint64_t FaultsInjected = 0; ///< Chaos faults that actually fired.
  Histogram RecoveryNs;        ///< Time-to-recover per degraded episode.
  Histogram LatencyNs;
  /// Per-pipeline-stage durations (obs::SpanStage order), folded from
  /// the role that measures each stage; always collected (the clock
  /// reads ride along with the ones the latency path already does), so
  /// the bench report's serve.stages section exists with or without a
  /// span trace.
  Histogram StageNs[obs::NumSpanStages];
};

/// One in-flight connection. Filled privately by the acceptor, then
/// ownership moves to a worker via the counted ingress ring; the payload
/// is dynamic-checked raw memory (readRange/writeRange) allocated INLINE
/// after the struct — a sharing cast clears the access history of the
/// whole heap allocation, so keeping header and payload in one
/// allocation is what makes the acceptor->worker hand-off cover both.
template <typename P> struct Connection {
  uint64_t Client = 0;
  uint64_t Seq = 0;
  uint8_t Kind = OpGet;
  uint64_t ArrivalNs = 0;
  uint64_t EnqueueNs = 0; ///< When the acceptor pushed it into the ring.
  uint32_t PayloadSize = 0;

  uint8_t *payload() { return reinterpret_cast<uint8_t *>(this + 1); }
};

/// Completion record, worker -> logger via the counted log ring.
struct LogRecord {
  uint64_t Client = 0;
  uint8_t Kind = OpGet;
  uint64_t LatencyNs = 0;
  uint32_t Bytes = 0;
  uint64_t Seq = 0;       ///< Request id, for the request's span tree.
  uint64_t EnqueueNs = 0; ///< When the worker pushed it into the ring.
};

/// Bounded MPMC hand-off ring whose cells are counted pointer slots:
/// every push/pop is a sharing cast, so a connection's access history is
/// cleared exactly when ownership moves between threads — the paper's
/// "ownership transfer through a queue" pattern (cf. StunnelWorkload).
template <typename P, typename T> class HandoffRing {
public:
  explicit HandoffRing(size_t Capacity) : Cap(Capacity) {
    // Cells hold counted slots and must live in stable storage (the
    // policy heap defers frees past pending RC logs).
    Cells = static_cast<Cell *>(P::alloc(sizeof(Cell) * Cap));
    for (size_t I = 0; I != Cap; ++I)
      new (&Cells[I]) Cell();
  }
  ~HandoffRing() {
    for (size_t I = 0; I != Cap; ++I)
      Cells[I].~Cell();
    P::dealloc(Cells);
  }

  HandoffRing(const HandoffRing &) = delete;
  HandoffRing &operator=(const HandoffRing &) = delete;

  void push(T *Item, const rt::AccessSite *Site) {
    typename P::UniqueLock Lock(Mu);
    NotFull.wait(Lock, [&] { return Count < Cap; });
    Cells[Tail % Cap].Slot.store(P::castIn(Item, Site));
    ++Tail;
    ++Count;
    NotEmpty.notifyOne();
  }

  /// Non-blocking push: false when the ring is full — the typed
  /// backpressure signal the sharc-storm admission layer sheds on
  /// instead of queueing unboundedly. The sharing cast happens only on
  /// success, so a refused item's access history is untouched and the
  /// caller still owns it.
  bool tryPush(T *Item, const rt::AccessSite *Site) {
    typename P::UniqueLock Lock(Mu);
    if (Count >= Cap)
      return false;
    Cells[Tail % Cap].Slot.store(P::castIn(Item, Site));
    ++Tail;
    ++Count;
    NotEmpty.notifyOne();
    return true;
  }

  /// Instantaneous occupancy — the backpressure gauge the degradation
  /// ladder watches. Monitoring-grade: the value is stale the moment
  /// the lock drops, which is fine for watermark decisions.
  size_t depth() {
    typename P::UniqueLock Lock(Mu);
    return Count;
  }

  size_t capacity() const { return Cap; }

  /// Null once the ring is closed and drained.
  T *pop(const rt::AccessSite *Site) {
    typename P::UniqueLock Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Count > 0 || Closed; });
    if (Count == 0)
      return nullptr;
    T *Item = Cells[Head % Cap].Slot.castOut(Site);
    ++Head;
    --Count;
    NotFull.notifyOne();
    return Item;
  }

  void close() {
    {
      typename P::LockGuard Lock(Mu);
      Closed = true;
    }
    NotEmpty.notifyAll();
  }

private:
  struct Cell {
    typename P::template Counted<T> Slot;
  };

  typename P::Mutex Mu;
  typename P::CondVar NotEmpty;
  typename P::CondVar NotFull;
  Cell *Cells = nullptr;
  size_t Cap;
  size_t Head = 0;
  size_t Tail = 0;
  size_t Count = 0;
  bool Closed = false;
};

/// Session cache entry: locked-mode cells bound to the shard mutex.
template <typename P> struct Session {
  typename P::template Locked<uint64_t> Value;
  typename P::template Locked<uint64_t> Hits;
  explicit Session(typename P::Mutex &Lock) : Value(Lock, 0), Hits(Lock, 0) {}
};

template <typename P> struct SessionShard {
  typename P::Mutex Lock;
  /// Guarded by Lock. The map is container metadata; the checked cells
  /// are the Session fields it points at.
  std::unordered_map<uint64_t, Session<P> *> Map;
};

/// Connection-table shard: an id -> connection index plus a locked-mode
/// open-connection gauge.
template <typename P> struct ConnShard {
  typename P::Mutex Lock;
  typename P::template Locked<uint64_t> Open;
  /// Guarded by Lock; values are weak references (ownership flows
  /// through the ingress ring, not the table).
  std::unordered_map<uint64_t, Connection<P> *> Map;
  ConnShard() : Open(Lock, 0) {}
};

/// Per-worker private aggregate (latency histogram included): adopted by
/// the worker at start, handed back to the stats collector after join.
struct WorkerLocal {
  Histogram LatencyNs;
  uint64_t ServiceNs = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Checksum = 0;
  uint64_t SessionHits = 0;
  uint64_t SessionMisses = 0;
  uint64_t BytesOut = 0;
  uint64_t TimedOut = 0;       ///< Dequeued past their deadline, dropped.
  uint64_t LogShed = 0;        ///< Log records shed (degraded / ring full).
  uint64_t FaultsInjected = 0; ///< worker-stall / worker-crash fired.
  uint64_t Handled = 0;        ///< All dequeues (chaos period counter).
  uint64_t OpCounts[OpKinds] = {};
  /// RingWait / Handler / LockWait / LockHold slots used.
  Histogram StageNs[obs::NumSpanStages];
};

struct AcceptorLocal {
  uint64_t Accepted = 0;
  uint64_t BytesIn = 0;
  uint64_t Shed = 0;       ///< Refused admissions (ring full / inflight cap).
  uint64_t Recoveries = 0; ///< Degraded episodes closed.
  uint64_t DegradedNs = 0; ///< Total wall time degraded.
  Histogram RecoveryNs;    ///< Per-episode time to recover.
  /// Accept slot used.
  Histogram StageNs[obs::NumSpanStages];
};

struct LoggerLocal {
  uint64_t Records = 0;
  uint64_t Bytes = 0;
  uint64_t FaultsInjected = 0; ///< logger-wedge fired.
  uint64_t OpCounts[OpKinds] = {};
  /// LogWait / Logger slots used.
  Histogram StageNs[obs::NumSpanStages];
};

template <typename P> class Server {
public:
  Server(const ServeParams &Params, Transport &Net,
         SteadyClock::time_point Epoch);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Arms request-span emission (sharc-span, DESIGN.md §16): every
  /// pipeline stage boundary publishes a SpanRecord to \p S, which must
  /// be thread-safe (obs::Collector) and outlive the server. Call
  /// before start(); null (the default) costs one predictable branch
  /// per boundary. Span Tids are pipeline ROLE ids — acceptor 1,
  /// workers 2..W+1, logger W+2 — not runtime thread ids, so the span
  /// tree is stable across scheduler placements.
  void setTrace(obs::Sink *S) { Trace = S; }

  /// Spawns acceptor + workers + logger.
  void start();

  /// Closes the transport ingress, drains everything in flight, joins
  /// all threads, and quiesces the instrumentation. Idempotent.
  void stop();

  /// Folds the per-thread private aggregates; call after stop().
  ServeStats takeStats();

  /// Live (racy, approximate) progress counters for /metrics-style
  /// observation while the run is in flight.
  uint64_t liveAccepted() const { return AcceptedLive.read(); }
  uint64_t liveCompleted() const { return CompletedLive.read(); }
  uint64_t liveShed() const { return ShedLive.read(); }
  bool liveDegraded() const { return DegradedLive.read() != 0; }

private:
  /// Pipeline role ids used as span Tids.
  static constexpr uint32_t AcceptorRole = 1;
  static constexpr uint32_t FirstWorkerRole = 2;

  void acceptorMain();
  void workerMain(unsigned Index);
  void loggerMain();

  Connection<P> *makeConnection(SimRequest &&Req, AcceptorLocal &Local);
  /// Admission control (sharc-storm): true when \p Req must be shed —
  /// deadline already blown, inflight cap reached, or the ingress ring
  /// is full (checked by the caller via tryPush).
  bool mustShed(const SimRequest &Req, uint64_t NowNs);
  /// Sheds \p Req: counted rejection back through the transport plus an
  /// Accept span pair carrying the shed outcome. No allocation, no
  /// conn-table entry, no sharing cast — shedding is cheap by design.
  void shedConnection(const SimRequest &Req, AcceptorLocal &Local);
  /// Drops an admitted-but-stale connection at dequeue (deadline blown
  /// while queued): teardown plus a Handler span pair carrying the
  /// timed-out outcome.
  void dropTimedOut(Connection<P> *Conn, WorkerLocal &Local, uint32_t Role);
  void teardownConnection(Connection<P> *Conn);
  void handle(Connection<P> *Conn, WorkerLocal &Local, uint32_t Role);
  Session<P> *findOrCreateSession(SessionShard<P> &Shard, uint64_t Key,
                                  WorkerLocal &Local);

  void emitSpan(uint32_t Role, uint64_t Req, obs::SpanStage Stage,
                bool Begin, uint64_t TimeNs, uint64_t Arg = 0) {
    if (Trace)
      Trace->span({Role, Req, Stage, Begin, TimeNs, Arg});
  }

  Transport &Net;
  SteadyClock::time_point Epoch;
  obs::Sink *Trace = nullptr;

  /// readonly: published once, before start() spawns any thread.
  typename P::template ReadOnly<ServeParams> Config;

  /// racy: live monitoring counters; update races are intentional and
  /// the values are approximate (exact counts come from the private
  /// per-thread aggregates after the run).
  typename P::template Racy<uint64_t> AcceptedLive;
  typename P::template Racy<uint64_t> CompletedLive;
  typename P::template Racy<uint64_t> InflightLive;
  typename P::template Racy<uint64_t> PeakInflightLive;
  /// Degraded-mode flag (sharc-storm): set by the acceptor at the ring
  /// high watermark, cleared at the low watermark. Racy on purpose —
  /// workers poll it to shed logger work, and reading a one-update-
  /// stale value merely sheds (or keeps) one more log record.
  typename P::template Racy<uint64_t> DegradedLive;
  typename P::template Racy<uint64_t> ShedLive;

  std::unique_ptr<SessionShard<P>[]> Sessions;
  std::unique_ptr<ConnShard<P>[]> Conns;
  std::unique_ptr<HandoffRing<P, Connection<P>>> Ingress;
  std::unique_ptr<HandoffRing<P, LogRecord>> LogRing;

  std::unique_ptr<typename P::template Private<WorkerLocal>[]> WorkerStates;
  typename P::template Private<AcceptorLocal> AcceptorState;
  typename P::template Private<LoggerLocal> LoggerState;

  std::vector<typename P::Thread> Threads;
  bool Stopped = false;
};

using workloads::SharcPolicy;
using workloads::UncheckedPolicy;

extern template class Server<UncheckedPolicy>;
extern template class Server<SharcPolicy>;

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_SERVER_H
