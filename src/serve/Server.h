//===-- serve/Server.h - Annotated multi-threaded request server *- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The sharc-serve request server: one acceptor thread pulling simulated
/// connections off a Transport, a worker pool, and a logger thread,
/// templated over workloads::Policy so the identical source runs as the
/// uninstrumented baseline (UncheckedPolicy, "orig") and the annotated
/// build (SharcPolicy) — which is how the armed-vs-disabled overhead
/// gate and the orig/sharc checksum equivalence tests work.
///
/// Thread / sharing-mode map (DESIGN.md §15 renders the full table):
///
///   published run config   readonly   init() before threads start
///   live counters          racy       monitoring-grade, scraped by
///                                     /metrics; increments may race
///   session cache cells    locked     per-shard mutex; Value/Hits
///   connection table gauge locked     per-shard mutex; open-conn count
///   request connections    counted +  acceptor fills privately, casts
///                          dynamic    into the ingress ring; worker
///                                     casts out, payload accesses are
///                                     dynamic-checked ranges
///   log records            counted    worker -> logger hand-off
///   per-worker aggregates  private    adopted by the worker, handed
///                                     back to the collector after join
///
/// The hand-off rings are bounded, so back-pressure exists INSIDE the
/// server (acceptor blocks when workers fall behind) but never reaches
/// the open-loop load generator — the transport queue is unbounded,
/// like a remote client population that doesn't slow down just because
/// the server is busy.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SERVE_SERVER_H
#define SHARC_SERVE_SERVER_H

#include "obs/Sink.h"
#include "serve/Clock.h"
#include "serve/Histogram.h"
#include "serve/Transport.h"
#include "workloads/Policy.h"

#include <cstring>
#include <memory>
#include <new>
#include <unordered_map>
#include <vector>

namespace sharc {
namespace serve {

struct ServeParams {
  unsigned Workers = 2;
  unsigned SessionShardCount = 64; ///< Power of two.
  unsigned ConnShardCount = 64;    ///< Power of two.
  size_t RingCapacity = 1024;      ///< Ingress / log hand-off ring depth.
  uint64_t ServiceNanos = 20000;   ///< Simulated backend CPU per request.
  uint64_t CipherKey = 0x243f6a8885a308d3ull;
  /// serve_guard's deliberate bug: every Nth request updates its session
  /// cell WITHOUT taking the shard lock (0 = off). Under SharcPolicy the
  /// locked-mode check catches each first offence deterministically.
  uint64_t InjectRaceEvery = 0;
  /// sharc-span's injected tail pathology: every Nth request spins for
  /// InjectStallNanos INSIDE its session-shard lock section (0 = off),
  /// so requests behind the same shard pile up in lock-wait and the
  /// tail report must attribute them to the stalling holder.
  uint64_t InjectStallEvery = 0;
  uint64_t InjectStallNanos = 2000000;
};

/// Post-run aggregate, folded from the per-thread private states.
struct ServeStats {
  uint64_t Accepted = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t BytesIn = 0;
  uint64_t BytesOut = 0;
  uint64_t SessionHits = 0;
  uint64_t SessionMisses = 0;
  uint64_t PeakInflight = 0; ///< Racy gauge: approximate by design.
  uint64_t ServiceNs = 0;    ///< Thread-CPU time inside handlers.
  uint64_t LogRecords = 0;
  uint64_t OpCounts[OpKinds] = {};
  uint64_t Checksum = 0; ///< Order-independent; orig == sharc.
  Histogram LatencyNs;
  /// Per-pipeline-stage durations (obs::SpanStage order), folded from
  /// the role that measures each stage; always collected (the clock
  /// reads ride along with the ones the latency path already does), so
  /// the bench report's serve.stages section exists with or without a
  /// span trace.
  Histogram StageNs[obs::NumSpanStages];
};

/// One in-flight connection. Filled privately by the acceptor, then
/// ownership moves to a worker via the counted ingress ring; the payload
/// is dynamic-checked raw memory (readRange/writeRange) allocated INLINE
/// after the struct — a sharing cast clears the access history of the
/// whole heap allocation, so keeping header and payload in one
/// allocation is what makes the acceptor->worker hand-off cover both.
template <typename P> struct Connection {
  uint64_t Client = 0;
  uint64_t Seq = 0;
  uint8_t Kind = OpGet;
  uint64_t ArrivalNs = 0;
  uint64_t EnqueueNs = 0; ///< When the acceptor pushed it into the ring.
  uint32_t PayloadSize = 0;

  uint8_t *payload() { return reinterpret_cast<uint8_t *>(this + 1); }
};

/// Completion record, worker -> logger via the counted log ring.
struct LogRecord {
  uint64_t Client = 0;
  uint8_t Kind = OpGet;
  uint64_t LatencyNs = 0;
  uint32_t Bytes = 0;
  uint64_t Seq = 0;       ///< Request id, for the request's span tree.
  uint64_t EnqueueNs = 0; ///< When the worker pushed it into the ring.
};

/// Bounded MPMC hand-off ring whose cells are counted pointer slots:
/// every push/pop is a sharing cast, so a connection's access history is
/// cleared exactly when ownership moves between threads — the paper's
/// "ownership transfer through a queue" pattern (cf. StunnelWorkload).
template <typename P, typename T> class HandoffRing {
public:
  explicit HandoffRing(size_t Capacity) : Cap(Capacity) {
    // Cells hold counted slots and must live in stable storage (the
    // policy heap defers frees past pending RC logs).
    Cells = static_cast<Cell *>(P::alloc(sizeof(Cell) * Cap));
    for (size_t I = 0; I != Cap; ++I)
      new (&Cells[I]) Cell();
  }
  ~HandoffRing() {
    for (size_t I = 0; I != Cap; ++I)
      Cells[I].~Cell();
    P::dealloc(Cells);
  }

  HandoffRing(const HandoffRing &) = delete;
  HandoffRing &operator=(const HandoffRing &) = delete;

  void push(T *Item, const rt::AccessSite *Site) {
    typename P::UniqueLock Lock(Mu);
    NotFull.wait(Lock, [&] { return Count < Cap; });
    Cells[Tail % Cap].Slot.store(P::castIn(Item, Site));
    ++Tail;
    ++Count;
    NotEmpty.notifyOne();
  }

  /// Null once the ring is closed and drained.
  T *pop(const rt::AccessSite *Site) {
    typename P::UniqueLock Lock(Mu);
    NotEmpty.wait(Lock, [&] { return Count > 0 || Closed; });
    if (Count == 0)
      return nullptr;
    T *Item = Cells[Head % Cap].Slot.castOut(Site);
    ++Head;
    --Count;
    NotFull.notifyOne();
    return Item;
  }

  void close() {
    {
      typename P::LockGuard Lock(Mu);
      Closed = true;
    }
    NotEmpty.notifyAll();
  }

private:
  struct Cell {
    typename P::template Counted<T> Slot;
  };

  typename P::Mutex Mu;
  typename P::CondVar NotEmpty;
  typename P::CondVar NotFull;
  Cell *Cells = nullptr;
  size_t Cap;
  size_t Head = 0;
  size_t Tail = 0;
  size_t Count = 0;
  bool Closed = false;
};

/// Session cache entry: locked-mode cells bound to the shard mutex.
template <typename P> struct Session {
  typename P::template Locked<uint64_t> Value;
  typename P::template Locked<uint64_t> Hits;
  explicit Session(typename P::Mutex &Lock) : Value(Lock, 0), Hits(Lock, 0) {}
};

template <typename P> struct SessionShard {
  typename P::Mutex Lock;
  /// Guarded by Lock. The map is container metadata; the checked cells
  /// are the Session fields it points at.
  std::unordered_map<uint64_t, Session<P> *> Map;
};

/// Connection-table shard: an id -> connection index plus a locked-mode
/// open-connection gauge.
template <typename P> struct ConnShard {
  typename P::Mutex Lock;
  typename P::template Locked<uint64_t> Open;
  /// Guarded by Lock; values are weak references (ownership flows
  /// through the ingress ring, not the table).
  std::unordered_map<uint64_t, Connection<P> *> Map;
  ConnShard() : Open(Lock, 0) {}
};

/// Per-worker private aggregate (latency histogram included): adopted by
/// the worker at start, handed back to the stats collector after join.
struct WorkerLocal {
  Histogram LatencyNs;
  uint64_t ServiceNs = 0;
  uint64_t Completed = 0;
  uint64_t Errors = 0;
  uint64_t Checksum = 0;
  uint64_t SessionHits = 0;
  uint64_t SessionMisses = 0;
  uint64_t BytesOut = 0;
  uint64_t OpCounts[OpKinds] = {};
  /// RingWait / Handler / LockWait / LockHold slots used.
  Histogram StageNs[obs::NumSpanStages];
};

struct AcceptorLocal {
  uint64_t Accepted = 0;
  uint64_t BytesIn = 0;
  /// Accept slot used.
  Histogram StageNs[obs::NumSpanStages];
};

struct LoggerLocal {
  uint64_t Records = 0;
  uint64_t Bytes = 0;
  uint64_t OpCounts[OpKinds] = {};
  /// LogWait / Logger slots used.
  Histogram StageNs[obs::NumSpanStages];
};

template <typename P> class Server {
public:
  Server(const ServeParams &Params, Transport &Net,
         SteadyClock::time_point Epoch);
  ~Server();

  Server(const Server &) = delete;
  Server &operator=(const Server &) = delete;

  /// Arms request-span emission (sharc-span, DESIGN.md §16): every
  /// pipeline stage boundary publishes a SpanRecord to \p S, which must
  /// be thread-safe (obs::Collector) and outlive the server. Call
  /// before start(); null (the default) costs one predictable branch
  /// per boundary. Span Tids are pipeline ROLE ids — acceptor 1,
  /// workers 2..W+1, logger W+2 — not runtime thread ids, so the span
  /// tree is stable across scheduler placements.
  void setTrace(obs::Sink *S) { Trace = S; }

  /// Spawns acceptor + workers + logger.
  void start();

  /// Closes the transport ingress, drains everything in flight, joins
  /// all threads, and quiesces the instrumentation. Idempotent.
  void stop();

  /// Folds the per-thread private aggregates; call after stop().
  ServeStats takeStats();

  /// Live (racy, approximate) progress counters for /metrics-style
  /// observation while the run is in flight.
  uint64_t liveAccepted() const { return AcceptedLive.read(); }
  uint64_t liveCompleted() const { return CompletedLive.read(); }

private:
  /// Pipeline role ids used as span Tids.
  static constexpr uint32_t AcceptorRole = 1;
  static constexpr uint32_t FirstWorkerRole = 2;

  void acceptorMain();
  void workerMain(unsigned Index);
  void loggerMain();

  Connection<P> *makeConnection(SimRequest &&Req, AcceptorLocal &Local);
  void handle(Connection<P> *Conn, WorkerLocal &Local, uint32_t Role);
  Session<P> *findOrCreateSession(SessionShard<P> &Shard, uint64_t Key,
                                  WorkerLocal &Local);

  void emitSpan(uint32_t Role, uint64_t Req, obs::SpanStage Stage,
                bool Begin, uint64_t TimeNs, uint64_t Arg = 0) {
    if (Trace)
      Trace->span({Role, Req, Stage, Begin, TimeNs, Arg});
  }

  Transport &Net;
  SteadyClock::time_point Epoch;
  obs::Sink *Trace = nullptr;

  /// readonly: published once, before start() spawns any thread.
  typename P::template ReadOnly<ServeParams> Config;

  /// racy: live monitoring counters; update races are intentional and
  /// the values are approximate (exact counts come from the private
  /// per-thread aggregates after the run).
  typename P::template Racy<uint64_t> AcceptedLive;
  typename P::template Racy<uint64_t> CompletedLive;
  typename P::template Racy<uint64_t> InflightLive;
  typename P::template Racy<uint64_t> PeakInflightLive;

  std::unique_ptr<SessionShard<P>[]> Sessions;
  std::unique_ptr<ConnShard<P>[]> Conns;
  std::unique_ptr<HandoffRing<P, Connection<P>>> Ingress;
  std::unique_ptr<HandoffRing<P, LogRecord>> LogRing;

  std::unique_ptr<typename P::template Private<WorkerLocal>[]> WorkerStates;
  typename P::template Private<AcceptorLocal> AcceptorState;
  typename P::template Private<LoggerLocal> LoggerState;

  std::vector<typename P::Thread> Threads;
  bool Stopped = false;
};

using workloads::SharcPolicy;
using workloads::UncheckedPolicy;

extern template class Server<UncheckedPolicy>;
extern template class Server<SharcPolicy>;

} // namespace serve
} // namespace sharc

#endif // SHARC_SERVE_SERVER_H
