//===-- serve/Server.cpp - Annotated request server -----------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "serve/Server.h"

#include "rt/AccessSite.h"

#include <chrono>
#include <thread>

namespace sharc {
namespace serve {

namespace {

uint64_t fnv1a(const uint8_t *Data, size_t Size) {
  uint64_t H = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Size; ++I) {
    H ^= Data[I];
    H *= 0x100000001b3ull;
  }
  return H;
}

uint64_t splitmix64(uint64_t X) {
  X += 0x9e3779b97f4a7c15ull;
  X = (X ^ (X >> 30)) * 0xbf58476d1ce4e5b9ull;
  X = (X ^ (X >> 27)) * 0x94d049bb133111ebull;
  return X ^ (X >> 31);
}

/// Deterministic response transform: a keyed xorshift64* keystream XORed
/// over the payload. Pure function of (Key, Seq, payload), so the orig
/// and sharc servers produce bit-identical responses and the folded
/// checksum is an equivalence oracle between the two builds.
void cipher(uint64_t Key, uint64_t Seq, uint8_t *Data, size_t Size) {
  uint64_t S = splitmix64(Key ^ splitmix64(Seq + 1));
  for (size_t I = 0; I != Size; ++I) {
    if (I % 8 == 0) {
      S ^= S << 13;
      S ^= S >> 7;
      S ^= S << 17;
    }
    Data[I] ^= static_cast<uint8_t>(S >> ((I % 8) * 8));
  }
}

} // namespace

template <typename P>
Server<P>::Server(const ServeParams &Params, Transport &Net,
                  SteadyClock::time_point Epoch)
    : Net(Net), Epoch(Epoch) {
  Config.init(Params);
  Sessions = std::make_unique<SessionShard<P>[]>(Params.SessionShardCount);
  Conns = std::make_unique<ConnShard<P>[]>(Params.ConnShardCount);
  Ingress =
      std::make_unique<HandoffRing<P, Connection<P>>>(Params.RingCapacity);
  LogRing = std::make_unique<HandoffRing<P, LogRecord>>(Params.RingCapacity);
  WorkerStates = std::make_unique<typename P::template Private<WorkerLocal>[]>(
      Params.Workers);
}

template <typename P> Server<P>::~Server() {
  stop();
  const ServeParams &C = Config.get();
  // Post-drain the connection tables are empty; free leftovers anyway so
  // an aborted run doesn't leak.
  for (unsigned I = 0; I != C.ConnShardCount; ++I)
    for (auto &[Id, Conn] : Conns[I].Map)
      P::dealloc(Conn);
  for (unsigned I = 0; I != C.SessionShardCount; ++I)
    for (auto &[Key, S] : Sessions[I].Map) {
      S->~Session();
      P::dealloc(S);
    }
}

template <typename P> void Server<P>::start() {
  const ServeParams &C = Config.get();
  Threads.emplace_back(typename P::Thread([this] { acceptorMain(); }));
  for (unsigned I = 0; I != C.Workers; ++I)
    Threads.emplace_back(typename P::Thread([this, I] { workerMain(I); }));
  Threads.emplace_back(typename P::Thread([this] { loggerMain(); }));
}

template <typename P> void Server<P>::stop() {
  if (Stopped || Threads.empty())
    return;
  Stopped = true;
  const ServeParams &C = Config.get();
  Net.closeIngress();
  // The acceptor drains the transport, then closes the ingress ring; the
  // workers drain the ring, then exit; only then may the log ring close.
  Threads[0].join();
  for (unsigned I = 0; I != C.Workers; ++I)
    Threads[1 + I].join();
  LogRing->close();
  Threads[1 + C.Workers].join();
  // Drain pending RC logs naming the ring slots before any of their
  // storage can be destroyed.
  P::quiesce();
}

template <typename P>
Connection<P> *Server<P>::makeConnection(SimRequest &&Req,
                                         AcceptorLocal &Local) {
  uint64_t AcceptB = nanosSince(Epoch);
  emitSpan(AcceptorRole, Req.Seq, obs::SpanStage::Accept, true, AcceptB,
           Req.Client);
  auto *Conn = static_cast<Connection<P> *>(
      P::alloc(sizeof(Connection<P>) + Req.Payload.size()));
  new (Conn) Connection<P>();
  Conn->Client = Req.Client;
  Conn->Seq = Req.Seq;
  Conn->Kind = Req.Kind;
  Conn->ArrivalNs = Req.ArrivalNs;
  Conn->PayloadSize = static_cast<uint32_t>(Req.Payload.size());
  // Copy the wire bytes into checked memory: the acceptor is the sole
  // accessor until the sharing cast into the ingress ring.
  P::writeRange(Conn->payload(), Conn->PayloadSize,
                SHARC_SITE("conn->payload"));
  if (Conn->PayloadSize)
    std::memcpy(Conn->payload(), Req.Payload.data(), Conn->PayloadSize);

  const ServeParams &C = Config.get();
  ConnShard<P> &Shard = Conns[Conn->Seq & (C.ConnShardCount - 1)];
  {
    typename P::LockGuard Lock(Shard.Lock);
    Shard.Map.emplace(Conn->Seq, Conn);
    Shard.Open.write(Shard.Open.read(SHARC_SITE("connshard->open")) + 1,
                     SHARC_SITE("connshard->open"));
  }

  ++Local.Accepted;
  Local.BytesIn += Conn->PayloadSize;
  AcceptedLive.write(AcceptedLive.read() + 1);
  uint64_t Inflight = InflightLive.read() + 1;
  InflightLive.write(Inflight);
  if (Inflight > PeakInflightLive.read())
    PeakInflightLive.write(Inflight);
  uint64_t AcceptE = nanosSince(Epoch);
  Local.StageNs[unsigned(obs::SpanStage::Accept)].record(AcceptE - AcceptB);
  emitSpan(AcceptorRole, Conn->Seq, obs::SpanStage::Accept, false, AcceptE);
  return Conn;
}

template <typename P>
bool Server<P>::mustShed(const SimRequest &Req, uint64_t NowNs) {
  const ServeParams &C = Config.get();
  // Deadline already blown while sitting in the accept queue: admitting
  // it would only burn a worker on a request the client gave up on.
  if (C.DeadlineNanos != 0 && NowNs > Req.ArrivalNs &&
      NowNs - Req.ArrivalNs > C.DeadlineNanos)
    return true;
  if (C.MaxInflight != 0 && InflightLive.read() >= C.MaxInflight)
    return true;
  // The full ring is the typed backpressure signal: shed instead of
  // blocking. The acceptor is the ring's only producer, so a below-
  // capacity depth here guarantees the subsequent push cannot block.
  return Ingress->depth() >= Ingress->capacity();
}

template <typename P>
void Server<P>::shedConnection(const SimRequest &Req, AcceptorLocal &Local) {
  // The Accept span pair still exists — a shed request has a (tiny)
  // span tree whose Accept end carries the shed outcome, so the tail
  // report can name it instead of losing it. No allocation, no conn-
  // table entry, no sharing cast: shedding is cheap by design.
  uint64_t B = nanosSince(Epoch);
  emitSpan(AcceptorRole, Req.Seq, obs::SpanStage::Accept, true, B,
           Req.Client);
  Net.reject(Reject{Req.Client, Req.Seq, Req.Kind, Req.ArrivalNs,
                    RejectReason::Shed});
  ++Local.Shed;
  ShedLive.write(ShedLive.read() + 1);
  emitSpan(AcceptorRole, Req.Seq, obs::SpanStage::Accept, false,
           nanosSince(Epoch), obs::OutcomeShed);
}

template <typename P> void Server<P>::acceptorMain() {
  AcceptorState.adopt();
  AcceptorLocal &Local = AcceptorState.get();
  const ServeParams &C = Config.get();
  std::vector<SimRequest> Batch;
  // Degradation-ladder episode state (sharc-storm): nonzero while the
  // ring last crossed the high watermark without coming back down.
  uint64_t EpisodeB = 0;
  auto CloseEpisode = [&](uint64_t NowNs) {
    uint64_t Dur = NowNs > EpisodeB ? NowNs - EpisodeB : 0;
    Local.RecoveryNs.record(Dur);
    Local.DegradedNs += Dur;
    ++Local.Recoveries;
    EpisodeB = 0;
    DegradedLive.write(0);
  };
  auto Ladder = [&] {
    size_t Depth = Ingress->depth();
    if (EpisodeB == 0 && Depth >= C.highWatermark()) {
      EpisodeB = nanosSince(Epoch);
      DegradedLive.write(1);
    } else if (EpisodeB != 0 && Depth <= C.lowWatermark()) {
      CloseEpisode(nanosSince(Epoch));
    }
  };
  while (Net.acceptBatch(Batch, 256) != 0)
    for (SimRequest &Req : Batch) {
      if (C.Resilient) {
        if (mustShed(Req, nanosSince(Epoch))) {
          shedConnection(Req, Local);
          Ladder();
          continue;
        }
      }
      Connection<P> *Conn = makeConnection(std::move(Req), Local);
      // RingWait opens on the acceptor and closes on whichever worker
      // dequeues the connection — the span crosses the ownership cast.
      Conn->EnqueueNs = nanosSince(Epoch);
      emitSpan(AcceptorRole, Conn->Seq, obs::SpanStage::RingWait, true,
               Conn->EnqueueNs);
      Ingress->push(Conn, SHARC_SITE("conn (acceptor -> worker)"));
      if (C.Resilient)
        Ladder();
    }
  // An episode still open when the load stops ends here: the drain IS
  // the recovery, and counting it keeps overload runs honest about how
  // long they spent degraded.
  if (EpisodeB != 0)
    CloseEpisode(nanosSince(Epoch));
  Ingress->close();
}

template <typename P>
Session<P> *Server<P>::findOrCreateSession(SessionShard<P> &Shard,
                                           uint64_t Key, WorkerLocal &Local) {
  auto It = Shard.Map.find(Key);
  if (It != Shard.Map.end()) {
    ++Local.SessionHits;
    return It->second;
  }
  ++Local.SessionMisses;
  auto *S = static_cast<Session<P> *>(P::alloc(sizeof(Session<P>)));
  new (S) Session<P>(Shard.Lock);
  Shard.Map.emplace(Key, S);
  return S;
}

template <typename P> void Server<P>::teardownConnection(Connection<P> *Conn) {
  const ServeParams &C = Config.get();
  uint64_t Seq = Conn->Seq;
  ConnShard<P> &CS = Conns[Seq & (C.ConnShardCount - 1)];
  {
    typename P::LockGuard Lock(CS.Lock);
    CS.Map.erase(Seq);
    CS.Open.write(CS.Open.read(SHARC_SITE("connshard->open")) - 1,
                  SHARC_SITE("connshard->open"));
  }
  InflightLive.write(InflightLive.read() - 1);
  P::dealloc(Conn);
}

template <typename P>
void Server<P>::dropTimedOut(Connection<P> *Conn, WorkerLocal &Local,
                             uint32_t Role) {
  uint64_t Seq = Conn->Seq;
  uint8_t Kind = Conn->Kind;
  // The request's RingWait still ends and a (degenerate) Handler span
  // still opens: the span tree records WHERE the budget died — in the
  // ring — and the Handler end carries the timed-out outcome.
  uint64_t Now = nanosSince(Epoch);
  Local.StageNs[unsigned(obs::SpanStage::RingWait)].record(
      Now > Conn->EnqueueNs ? Now - Conn->EnqueueNs : 0);
  emitSpan(Role, Seq, obs::SpanStage::RingWait, false, Now);
  emitSpan(Role, Seq, obs::SpanStage::Handler, true, Now, Kind);
  teardownConnection(Conn);
  ++Local.TimedOut;
  emitSpan(Role, Seq, obs::SpanStage::Handler, false, nanosSince(Epoch),
           obs::OutcomeTimedOut);
}

template <typename P>
void Server<P>::handle(Connection<P> *Conn, WorkerLocal &Local,
                       uint32_t Role) {
  const ServeParams &C = Config.get();
  uint64_t Seq = Conn->Seq;
  uint64_t Cpu0 = threadCpuNanos();

  // The request's RingWait ends (and its Handler begins) the moment the
  // worker takes over.
  uint64_t HandlerB = nanosSince(Epoch);
  Local.StageNs[unsigned(obs::SpanStage::RingWait)].record(
      HandlerB > Conn->EnqueueNs ? HandlerB - Conn->EnqueueNs : 0);
  emitSpan(Role, Seq, obs::SpanStage::RingWait, false, HandlerB);
  emitSpan(Role, Seq, obs::SpanStage::Handler, true, HandlerB, Conn->Kind);

  // Request in: dynamic-checked bulk read of the payload.
  P::readRange(Conn->payload(), Conn->PayloadSize,
               SHARC_SITE("conn->payload"));
  uint64_t Sum = fnv1a(Conn->payload(), Conn->PayloadSize);

  // Session cache: locked-mode cells under the shard mutex. LockWait
  // covers the acquisition, LockHold the critical section; both carry
  // the shard lock's address so the tail report can match a victim's
  // wait against the holder's overlapping hold.
  SessionShard<P> &Shard = Sessions[Conn->Client & (C.SessionShardCount - 1)];
  uint64_t LockId = reinterpret_cast<uintptr_t>(&Shard.Lock);
  Session<P> *S;
  uint64_t HoldB;
  uint64_t WaitB = nanosSince(Epoch);
  emitSpan(Role, Seq, obs::SpanStage::LockWait, true, WaitB, LockId);
  {
    typename P::LockGuard Lock(Shard.Lock);
    HoldB = nanosSince(Epoch);
    Local.StageNs[unsigned(obs::SpanStage::LockWait)].record(HoldB - WaitB);
    emitSpan(Role, Seq, obs::SpanStage::LockWait, false, HoldB, LockId);
    emitSpan(Role, Seq, obs::SpanStage::LockHold, true, HoldB, LockId);
    S = findOrCreateSession(Shard, Conn->Client, Local);
    uint64_t Cur = S->Value.read(SHARC_SITE("session->value"));
    if (Conn->Kind == OpPut)
      S->Value.write(Cur ^ Sum, SHARC_SITE("session->value"));
    S->Hits.write(S->Hits.read(SHARC_SITE("session->hits")) + 1,
                  SHARC_SITE("session->hits"));
    if (C.InjectStallEvery != 0 && Seq % C.InjectStallEvery == 0)
      // sharc-span's injected tail pathology: burn CPU while holding
      // the shard lock, so same-shard requests queue up behind it.
      spinThreadCpu(C.InjectStallNanos);
  }
  uint64_t HoldE = nanosSince(Epoch);
  Local.StageNs[unsigned(obs::SpanStage::LockHold)].record(HoldE - HoldB);
  emitSpan(Role, Seq, obs::SpanStage::LockHold, false, HoldE, LockId);
  if (C.InjectRaceEvery != 0 && Seq % C.InjectRaceEvery == 0)
    // serve_guard's deliberate bug: a session update that skips the
    // shard lock. The locked-mode check fires deterministically.
    S->Value.write(Sum, SHARC_SITE("session->value [lock skipped]"));

  // Simulated backend work, then the response transform over the payload
  // (dynamic-checked bulk write; the worker owns the connection since
  // the cast, so this is single-accessor clean).
  spinThreadCpu(C.ServiceNanos);
  P::writeRange(Conn->payload(), Conn->PayloadSize,
                SHARC_SITE("conn->payload"));
  cipher(C.CipherKey, Seq, Conn->payload(), Conn->PayloadSize);
  Local.Checksum ^= fnv1a(Conn->payload(), Conn->PayloadSize);

  uint64_t Done = nanosSince(Epoch);
  uint64_t Latency = Done > Conn->ArrivalNs ? Done - Conn->ArrivalNs : 0;
  Local.LatencyNs.record(Latency);
  ++Local.Completed;
  ++Local.OpCounts[Conn->Kind % OpKinds];
  Local.BytesOut += Conn->PayloadSize;
  CompletedLive.write(CompletedLive.read() + 1);

  // Completion record to the logger (counted hand-off). LogWait opens
  // here and closes when the logger dequeues the record — like
  // RingWait, the span crosses the ownership cast. Under sharc-storm
  // the degradation ladder sheds this work FIRST: while degraded the
  // record is never allocated, and a full log ring drops it instead of
  // blocking the worker — logger work dies before handler work does.
  if (!C.Resilient) {
    auto *Rec = static_cast<LogRecord *>(P::alloc(sizeof(LogRecord)));
    uint64_t LogB = nanosSince(Epoch);
    new (Rec)
        LogRecord{Conn->Client, Conn->Kind, Latency, Conn->PayloadSize, Seq,
                  LogB};
    emitSpan(Role, Seq, obs::SpanStage::LogWait, true, LogB);
    LogRing->push(Rec, SHARC_SITE("log record (worker -> logger)"));
  } else if (DegradedLive.read() != 0) {
    ++Local.LogShed;
  } else {
    auto *Rec = static_cast<LogRecord *>(P::alloc(sizeof(LogRecord)));
    uint64_t LogB = nanosSince(Epoch);
    new (Rec)
        LogRecord{Conn->Client, Conn->Kind, Latency, Conn->PayloadSize, Seq,
                  LogB};
    // The begin record is emitted only on success (after the cast, with
    // the pre-push timestamp): a shed record must not leave a dangling
    // LogWait in the span tree.
    if (LogRing->tryPush(Rec, SHARC_SITE("log record (worker -> logger)"))) {
      emitSpan(Role, Seq, obs::SpanStage::LogWait, true, LogB);
    } else {
      ++Local.LogShed;
      P::dealloc(Rec);
    }
  }

  // Connection teardown.
  teardownConnection(Conn);

  uint64_t HandlerE = nanosSince(Epoch);
  Local.StageNs[unsigned(obs::SpanStage::Handler)].record(HandlerE -
                                                          HandlerB);
  emitSpan(Role, Seq, obs::SpanStage::Handler, false, HandlerE);
  Local.ServiceNs += threadCpuNanos() - Cpu0;
}

template <typename P> void Server<P>::workerMain(unsigned Index) {
  WorkerStates[Index].adopt();
  WorkerLocal &Local = WorkerStates[Index].get();
  const ServeParams &C = Config.get();
  uint32_t Role = FirstWorkerRole + Index;
  while (Connection<P> *Conn =
             Ingress->pop(SHARC_SITE("conn (acceptor -> worker)"))) {
    ++Local.Handled;
    if (C.Resilient && C.DeadlineNanos != 0) {
      uint64_t Now = nanosSince(Epoch);
      if (Now > Conn->ArrivalNs && Now - Conn->ArrivalNs > C.DeadlineNanos) {
        // The deadline died while the connection sat in the ring: drop
        // it with a counted timeout instead of burning handler CPU.
        dropTimedOut(Conn, Local, Role);
        continue;
      }
    }
    handle(Conn, Local, Role);
    if (C.WorkerStallNanos != 0 && C.WorkerStallEvery != 0 &&
        Local.Handled % C.WorkerStallEvery == 0) {
      // Chaos worker-stall: a sleep, not a spin, so handler thread-CPU
      // (the overhead-gate statistic) stays honest. Between requests,
      // so the stall never inflates a Handler span.
      ++Local.FaultsInjected;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(C.WorkerStallNanos));
    }
    if (C.WorkerCrashAfter != 0 && Index == 0 &&
        Local.Handled >= C.WorkerCrashAfter) {
      // Chaos worker-crash: worker 0 leaves the pool at a request
      // boundary — it never strands a connection it owns; the rest of
      // the pool absorbs the load.
      ++Local.FaultsInjected;
      break;
    }
  }
}

template <typename P> void Server<P>::loggerMain() {
  LoggerState.adopt();
  LoggerLocal &Local = LoggerState.get();
  const ServeParams &C = Config.get();
  uint32_t Role = FirstWorkerRole + C.Workers;
  bool Wedged = false;
  while (LogRecord *Rec =
             LogRing->pop(SHARC_SITE("log record (worker -> logger)"))) {
    if (C.LoggerWedgeNanos != 0 && !Wedged) {
      // Chaos logger-wedge: one long stall on the first record, backing
      // the log ring up against the workers. Sleeping after the pop but
      // before the LogWait timestamp charges the wedge to the stage
      // where its victims actually wait.
      Wedged = true;
      ++Local.FaultsInjected;
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(C.LoggerWedgeNanos));
    }
    uint64_t Pop = nanosSince(Epoch);
    Local.StageNs[unsigned(obs::SpanStage::LogWait)].record(
        Pop > Rec->EnqueueNs ? Pop - Rec->EnqueueNs : 0);
    emitSpan(Role, Rec->Seq, obs::SpanStage::LogWait, false, Pop);
    emitSpan(Role, Rec->Seq, obs::SpanStage::Logger, true, Pop);
    ++Local.Records;
    Local.Bytes += Rec->Bytes;
    ++Local.OpCounts[Rec->Kind % OpKinds];
    uint64_t Seq = Rec->Seq;
    P::dealloc(Rec);
    uint64_t Done = nanosSince(Epoch);
    Local.StageNs[unsigned(obs::SpanStage::Logger)].record(Done - Pop);
    emitSpan(Role, Seq, obs::SpanStage::Logger, false, Done);
  }
}

template <typename P> ServeStats Server<P>::takeStats() {
  ServeStats Out;
  const ServeParams &C = Config.get();

  // The worker/acceptor/logger threads are joined: adopting their
  // private aggregates is the legitimate ownership transfer back to the
  // collector.
  AcceptorState.adopt();
  Out.Accepted = AcceptorState.get().Accepted;
  Out.BytesIn = AcceptorState.get().BytesIn;
  Out.Shed = AcceptorState.get().Shed;
  Out.Recoveries = AcceptorState.get().Recoveries;
  Out.DegradedNs = AcceptorState.get().DegradedNs;
  Out.RecoveryNs.merge(AcceptorState.get().RecoveryNs);
  for (unsigned K = 0; K != obs::NumSpanStages; ++K)
    Out.StageNs[K].merge(AcceptorState.get().StageNs[K]);
  for (unsigned I = 0; I != C.Workers; ++I) {
    WorkerStates[I].adopt();
    const WorkerLocal &W = WorkerStates[I].get();
    Out.Completed += W.Completed;
    Out.Errors += W.Errors;
    Out.ServiceNs += W.ServiceNs;
    Out.Checksum ^= W.Checksum;
    Out.SessionHits += W.SessionHits;
    Out.SessionMisses += W.SessionMisses;
    Out.BytesOut += W.BytesOut;
    Out.TimedOut += W.TimedOut;
    Out.LogShed += W.LogShed;
    Out.FaultsInjected += W.FaultsInjected;
    for (unsigned K = 0; K != OpKinds; ++K)
      Out.OpCounts[K] += W.OpCounts[K];
    Out.LatencyNs.merge(W.LatencyNs);
    for (unsigned K = 0; K != obs::NumSpanStages; ++K)
      Out.StageNs[K].merge(W.StageNs[K]);
  }
  LoggerState.adopt();
  Out.LogRecords = LoggerState.get().Records;
  Out.FaultsInjected += LoggerState.get().FaultsInjected;
  for (unsigned K = 0; K != obs::NumSpanStages; ++K)
    Out.StageNs[K].merge(LoggerState.get().StageNs[K]);
  Out.PeakInflight = PeakInflightLive.read();

  // Fold the final session values in: XOR of all OpPut sums regardless
  // of scheduling order, so it is part of the orig/sharc equivalence
  // checksum. Locked-mode reads, so take each shard lock.
  for (unsigned I = 0; I != C.SessionShardCount; ++I) {
    typename P::LockGuard Lock(Sessions[I].Lock);
    for (auto &[Key, S] : Sessions[I].Map)
      Out.Checksum ^= S->Value.read(SHARC_SITE("session->value"));
  }
  return Out;
}

template class Server<UncheckedPolicy>;
template class Server<SharcPolicy>;

} // namespace serve
} // namespace sharc
