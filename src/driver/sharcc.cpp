//===-- driver/sharcc.cpp - The SharC compiler driver ---------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharcc: parse a MiniC program, infer sharing-mode annotations, check
/// the program statically, instrument it, and (optionally) run it under
/// the checked interpreter.
///
///   sharcc file.mc                 check and run
///   sharcc --infer file.mc         print inferred annotations (Figure 2)
///   sharcc --check file.mc         static checking only
///   sharcc --run file.mc           run (after checking)
///   sharcc --explore[=B] file.mc   enumerate schedules (sharc-explore)
///   options: --seed N --fail-stop --entry NAME --max-steps N --quiet
///            --trace-out FILE --metrics-out FILE --profile
///            --on-violation abort|continue|quarantine
///            --explore-budget N --witness-out FILE
///            --replay-witness FILE
///
/// Exit status (pinned by tests/exit_codes.sh and tests/explore_cli.sh):
///   0  clean — including completed runs whose violations were permitted
///      by --on-violation=continue/quarantine, and explorations that
///      enumerated every inequivalent schedule without a violation
///   1  static errors, or runtime violations under the (default) abort
///      policy, or a run that deadlocked / ran out of steps, or any
///      violating interleaving found by --explore
///   2  usage (malformed flags, SHARC_POLICY, or a witness that fails
///      to parse / diverges from the program) and output I/O errors
///   3  internal errors and injected faults (SHARC_FAULT)
///   4  --explore gave up (schedule/step budget exhausted, or the
///      preemption bound cut branches) without finding a violation:
///      inconclusive, never silently reported as clean
///
//===----------------------------------------------------------------------===//

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "interp/Explore.h"
#include "interp/Interp.h"
#include "interp/Schedule.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "obs/Json.h"
#include "obs/MetricsJson.h"
#include "obs/TraceFile.h"
#include "rt/Guard.h"
#include "rt/LiveStats.h"
#include "rt/StatsServer.h"

#include <algorithm>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

using namespace sharc;

namespace {

struct DriverOptions {
  std::string InputPath;
  bool Infer = false;
  bool CheckOnly = false;
  bool Run = false;
  bool Quiet = false;
  std::string TraceOut;   ///< --trace-out: binary .strc event trace.
  std::string MetricsOut; ///< --metrics-out: sharc-metrics-v1 JSON.
  std::string StatsAddr;  ///< --stats-addr: HOST:PORT live endpoint.
  uint64_t StatsLingerMs = 0;   ///< --stats-linger-ms: serve after run.
  uint64_t StatsPollSteps = 1024; ///< --stats-poll-steps: publish rate.
  bool MaxStepsSet = false;     ///< --max-steps given explicitly.
  bool Explore = false;         ///< --explore: enumerate schedules.
  uint64_t ExploreBound = ~0ull; ///< --explore=B preemption bound.
  uint64_t ExploreBudget = 1u << 16; ///< --explore-budget: executions.
  std::string WitnessOut;     ///< --witness-out: first violating witness.
  std::string ReplayWitness;  ///< --replay-witness: replay this file.
  interp::InterpOptions Interp;
};

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: sharcc [--infer|--check|--run] [--seed N] [--fail-stop]\n"
      "              [--entry NAME] [--max-steps N] [--quiet]\n"
      "              [--trace-out FILE] [--metrics-out FILE] [--profile]\n"
      "              [--on-violation abort|continue|quarantine]\n"
      "              [--stats-addr HOST:PORT] [--stats-linger-ms N]\n"
      "              [--stats-poll-steps N]\n"
      "              [--explore[=B]] [--explore-budget N]\n"
      "              [--witness-out FILE] [--replay-witness FILE]\n"
      "              file.mc\n"
      "\n"
      "modes (default: --run):\n"
      "  --infer            print the program with inferred annotations\n"
      "  --check            static checking only\n"
      "  --run              run under the checked interpreter\n"
      "\n"
      "exploration (sharc-explore):\n"
      "  --explore[=B]      enumerate every inequivalent thread schedule\n"
      "                     (DPOR + sleep sets); with =B, allow at most B\n"
      "                     preemptions per schedule (bounded search is\n"
      "                     incomplete and flagged loudly)\n"
      "  --explore-budget N give up after N executions (default 65536);\n"
      "                     exhaustion exits 4, never a silent 0\n"
      "  --witness-out FILE write the first violating schedule as a\n"
      "                     replayable witness (requires --explore)\n"
      "  --replay-witness F re-run the exact schedule recorded in F;\n"
      "                     a witness that fails to parse or diverges\n"
      "                     from the program exits 2\n"
      "\n"
      "run options:\n"
      "  --seed N           scheduler seed (default 1)\n"
      "  --max-steps N      step budget before reporting livelock\n"
      "  --fail-stop        stop a thread at its first violation\n"
      "  --entry NAME       entry function (default main)\n"
      "  --quiet            suppress the summary line\n"
      "  --on-violation P   what a sharing violation does (default abort):\n"
      "                     abort      stop the run at the first violation\n"
      "                     continue   record (dedup + cap) and keep going\n"
      "                     quarantine continue, and demote the offending\n"
      "                                location so it stops re-firing\n"
      "                     (the SHARC_POLICY env var sets the default;\n"
      "                     the flag wins)\n"
      "  --trace-out FILE   record the run as a binary .strc event trace\n"
      "                     (analyze with sharc-trace); flushed with an\n"
      "                     abnormal-end record if the run dies\n"
      "  --metrics-out FILE write run statistics as sharc-metrics-v1 JSON\n"
      "  --profile          record per-site check costs and lock\n"
      "                     contention into the trace (requires\n"
      "                     --trace-out; analyze with sharc-trace profile)\n"
      "  --stats-addr A     serve live Prometheus metrics (/metrics) and\n"
      "                     a JSON health document (/health) on HOST:PORT\n"
      "                     while the run is in flight (sharc-live; port\n"
      "                     0 picks a free port, printed on stderr)\n"
      "  --stats-linger-ms N keep serving N ms after the run finishes so\n"
      "                     a scraper can read the final counters\n"
      "  --stats-poll-steps N publish a fresh snapshot every N scheduler\n"
      "                     steps (default 1024; 0 = every step)\n"
      "\n"
      "environment: SHARC_POLICY=abort|continue|quarantine sets the\n"
      "default violation policy; SHARC_STATS_ADDR=HOST:PORT arms the\n"
      "stats endpoint (--stats-addr wins); SHARC_FAULT=oom:N,thread-reg,\n"
      "torn-write:K,lock-timeout,crash:N injects rare failures (tests).\n"
      "\n"
      "exit status: 0 clean (violations permitted by continue/quarantine\n"
      "included); 1 static errors or violations under the abort policy;\n"
      "2 usage or output I/O errors; 3 internal or fault-injected errors;\n"
      "4 exploration gave up (budget/bound) without finding a violation\n");
}

/// Strict unsigned parse for numeric flags: the whole argument must be
/// digits (std::from_chars, base 10), no trailing garbage, no sign.
bool parseU64Arg(const char *Flag, const char *Text, uint64_t &Out) {
  const char *End = Text + std::strlen(Text);
  auto [Ptr, Ec] = std::from_chars(Text, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Text == End) {
    std::fprintf(stderr, "sharcc: %s expects an unsigned integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

/// Matches a value-taking flag in either spelling, "--flag VALUE" or
/// "--flag=VALUE". \returns true when Argv[I] is \p Flag; \p Value then
/// points at the flag's argument, or is null when the argument is
/// missing (the caller reports usage). Advances \p I past a separate
/// value argument.
bool matchValueFlag(const char *Flag, int Argc, char **Argv, int &I,
                    const char *&Value) {
  const char *Arg = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] != '\0')
    return false; // a longer flag sharing this prefix
  Value = I + 1 < Argc ? Argv[++I] : nullptr;
  return true;
}

/// 0 = parsed; 1 = parsed and exit 0 requested (--help); 2 = usage error.
int parseArgs(int Argc, char **Argv, DriverOptions &Options) {
  // The paper's fail-fast semantics is sharcc's default; SHARC_POLICY
  // overrides it, an explicit --on-violation overrides both.
  Options.Interp.Guard.OnViolation = guard::Policy::Abort;
  if (const char *Env = std::getenv("SHARC_POLICY")) {
    if (!guard::parsePolicy(Env, Options.Interp.Guard.OnViolation)) {
      std::fprintf(stderr,
                   "sharcc: SHARC_POLICY must be abort, continue, or "
                   "quarantine; got '%s'\n",
                   Env);
      return 2;
    }
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Value = nullptr;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 1;
    } else if (matchValueFlag("--on-violation", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --on-violation needs a policy\n");
        return 2;
      }
      if (!guard::parsePolicy(Value, Options.Interp.Guard.OnViolation)) {
        std::fprintf(stderr,
                     "sharcc: --on-violation must be abort, continue, or "
                     "quarantine; got '%s'\n",
                     Value);
        return 2;
      }
    } else if (Arg == "--infer") {
      Options.Infer = true;
    } else if (Arg == "--check") {
      Options.CheckOnly = true;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--fail-stop") {
      Options.Interp.FailStop = true;
    } else if (Arg == "--quiet") {
      Options.Quiet = true;
    } else if (Arg == "--profile") {
      Options.Interp.Profile = true;
    } else if (matchValueFlag("--seed", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --seed needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--seed", Value, Options.Interp.Seed))
        return 2;
    } else if (matchValueFlag("--max-steps", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --max-steps needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--max-steps", Value, Options.Interp.MaxSteps))
        return 2;
      Options.MaxStepsSet = true;
    } else if (matchValueFlag("--entry", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --entry needs a value\n");
        return 2;
      }
      Options.Interp.EntryPoint = Value;
    } else if (matchValueFlag("--trace-out", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --trace-out needs a file\n");
        return 2;
      }
      Options.TraceOut = Value;
    } else if (matchValueFlag("--metrics-out", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --metrics-out needs a file\n");
        return 2;
      }
      Options.MetricsOut = Value;
    } else if (matchValueFlag("--stats-addr", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --stats-addr needs HOST:PORT\n");
        return 2;
      }
      Options.StatsAddr = Value;
    } else if (matchValueFlag("--stats-linger-ms", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --stats-linger-ms needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--stats-linger-ms", Value, Options.StatsLingerMs))
        return 2;
    } else if (matchValueFlag("--stats-poll-steps", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --stats-poll-steps needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--stats-poll-steps", Value, Options.StatsPollSteps))
        return 2;
    } else if (Arg == "--explore") {
      Options.Explore = true;
    } else if (Arg.rfind("--explore=", 0) == 0) {
      // --explore=B: value attached only; "--explore B" would swallow
      // the input file, so the separate-argument spelling is not
      // offered for this flag.
      Options.Explore = true;
      if (!parseU64Arg("--explore", Arg.c_str() + std::strlen("--explore="),
                       Options.ExploreBound))
        return 2;
    } else if (matchValueFlag("--explore-budget", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --explore-budget needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--explore-budget", Value, Options.ExploreBudget))
        return 2;
      if (Options.ExploreBudget == 0) {
        std::fprintf(stderr, "sharcc: --explore-budget must be nonzero\n");
        return 2;
      }
    } else if (matchValueFlag("--witness-out", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --witness-out needs a file\n");
        return 2;
      }
      Options.WitnessOut = Value;
    } else if (matchValueFlag("--replay-witness", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --replay-witness needs a file\n");
        return 2;
      }
      Options.ReplayWitness = Value;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "sharcc: unknown option '%s'\n", Arg.c_str());
      return 2;
    } else if (Options.InputPath.empty()) {
      Options.InputPath = Arg;
    } else {
      std::fprintf(stderr, "sharcc: multiple input files\n");
      return 2;
    }
  }
  if (Options.InputPath.empty()) {
    std::fprintf(stderr, "sharcc: no input file\n");
    return 2;
  }
  if (!Options.Infer && !Options.CheckOnly && !Options.Run)
    Options.Run = true; // default: check and run
  if ((Options.Infer || Options.CheckOnly) &&
      (!Options.TraceOut.empty() || !Options.MetricsOut.empty())) {
    std::fprintf(stderr,
                 "sharcc: --trace-out/--metrics-out require a run mode\n");
    return 2;
  }
  if ((Options.Infer || Options.CheckOnly) && !Options.StatsAddr.empty()) {
    std::fprintf(stderr, "sharcc: --stats-addr requires a run mode\n");
    return 2;
  }
  if (Options.Interp.Profile &&
      (Options.Infer || Options.CheckOnly || Options.TraceOut.empty())) {
    std::fprintf(stderr,
                 "sharcc: --profile requires a run mode and --trace-out\n");
    return 2;
  }
  if (Options.Explore && (Options.Infer || Options.CheckOnly)) {
    std::fprintf(stderr, "sharcc: --explore requires a run mode\n");
    return 2;
  }
  if (Options.Explore &&
      (!Options.TraceOut.empty() || Options.Interp.Profile ||
       !Options.StatsAddr.empty())) {
    std::fprintf(stderr,
                 "sharcc: --explore is incompatible with --trace-out, "
                 "--profile, and --stats-addr\n");
    return 2;
  }
  if (Options.Explore && !Options.ReplayWitness.empty()) {
    std::fprintf(stderr,
                 "sharcc: --explore and --replay-witness are exclusive\n");
    return 2;
  }
  if (!Options.WitnessOut.empty() && !Options.Explore) {
    std::fprintf(stderr, "sharcc: --witness-out requires --explore\n");
    return 2;
  }
  if (!Options.ReplayWitness.empty() &&
      (Options.Infer || Options.CheckOnly)) {
    std::fprintf(stderr, "sharcc: --replay-witness requires a run mode\n");
    return 2;
  }
  return 0;
}

/// Writes the sharc-metrics-v1 document for a completed run.
std::string renderMetrics(const DriverOptions &Options,
                          const interp::InterpResult &Result) {
  using interp::Violation;
  obs::JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-metrics-v1");
  W.key("source");
  W.value(Options.InputPath);
  W.key("seed");
  W.value(Options.Interp.Seed);
  W.key("entry");
  W.value(Options.Interp.EntryPoint);
  W.key("fail_stop");
  W.value(Options.Interp.FailStop);
  W.key("completed");
  W.value(Result.Completed);
  W.key("deadlocked");
  W.value(Result.Deadlocked);
  W.key("out_of_steps");
  W.value(Result.OutOfSteps);
  W.key("steps");
  W.value(Result.Stats.Steps);
  W.key("threads_spawned");
  W.value(Result.Stats.ThreadsSpawned);
  W.key("accesses");
  W.value(Result.Stats.TotalAccesses);
  W.key("reads");
  W.value(Result.Stats.Reads);
  W.key("writes");
  W.value(Result.Stats.Writes);
  W.key("dynamic_checks");
  W.value(Result.Stats.DynamicChecks);
  W.key("lock_checks");
  W.value(Result.Stats.LockChecks);
  W.key("sharing_casts");
  W.value(Result.Stats.SharingCasts);
  W.key("violations");
  W.beginObject();
  W.key("total");
  W.value(static_cast<uint64_t>(Result.Violations.size()));
  W.key("read_conflicts");
  W.value(Result.count(Violation::Kind::ReadConflict));
  W.key("write_conflicts");
  W.value(Result.count(Violation::Kind::WriteConflict));
  W.key("lock_violations");
  W.value(Result.count(Violation::Kind::LockViolation));
  W.key("cast_errors");
  W.value(Result.count(Violation::Kind::CastError));
  W.key("runtime_errors");
  W.value(Result.count(Violation::Kind::RuntimeError));
  W.endObject();
  W.key("stats");
  appendStatsJson(W, interp::toStatsSnapshot(Result));
  W.endObject();
  std::string Out = W.take();
  Out.push_back('\n');
  return Out;
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

bool readTextFile(const std::string &Path, std::string &Out) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F)
    return false;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

/// Runs `--explore`: enumerate schedules, report the verdict classes,
/// write the witness/metrics artifacts, and map the outcome onto the
/// exit-code contract (0 complete+clean, 1 violation, 2 I/O, 3
/// internal, 4 gave up empty-handed).
int runExplore(const DriverOptions &Options, minic::Program &Prog,
               const checker::Checker &Check, const std::string &FileName) {
  interp::ExploreOptions EO;
  EO.PreemptionBound = static_cast<unsigned>(
      std::min<uint64_t>(Options.ExploreBound, ~0u));
  EO.MaxRuns = Options.ExploreBudget;
  // The interpreter's generous default step budget is meant for one
  // run; cap each explored schedule unless --max-steps asked otherwise.
  if (Options.MaxStepsSet)
    EO.MaxStepsPerRun = Options.Interp.MaxSteps;
  EO.EntryPoint = Options.Interp.EntryPoint;

  interp::ExploreResult ER =
      interp::explore(Prog, Check.getInstrumentation(), EO);

  if (ER.anyViolation()) {
    std::printf("%s", ER.FirstViolation.Output.c_str());
    for (const interp::Violation &V : ER.FirstViolation.Violations)
      std::fprintf(stderr, "%s", V.format(FileName).c_str());
  }

  if (!Options.WitnessOut.empty()) {
    if (ER.anyViolation()) {
      if (!writeTextFile(Options.WitnessOut,
                         ER.Witnesses.front().second.serialize())) {
        std::fprintf(stderr, "sharcc: cannot write '%s'\n",
                     Options.WitnessOut.c_str());
        return 2;
      }
    } else if (!Options.Quiet) {
      std::fprintf(stderr,
                   "sharcc: explore: no violating schedule; '%s' not "
                   "written\n",
                   Options.WitnessOut.c_str());
    }
  }

  if (!Options.MetricsOut.empty()) {
    obs::ExploreCounters C;
    C.SchedulesRun = ER.Stats.Runs;
    C.SleepPruned = ER.Stats.SleepBlocked;
    C.BoundedRuns = ER.Stats.BoundedRuns;
    C.DporPruned = ER.Stats.BranchesPruned;
    C.PreemptPruned = ER.Stats.PreemptPruned;
    C.StepsTotal = ER.Stats.StepsTotal;
    C.MaxDepth = ER.Stats.MaxDepth;
    C.VerdictClasses = ER.Verdicts.size();
    C.ViolatingClasses = ER.Witnesses.size();
    C.BoundHit = ER.Stats.BoundHit;
    C.BudgetExhausted = ER.Stats.BudgetExhausted;
    C.Complete = ER.complete();
    if (!writeTextFile(Options.MetricsOut, obs::exploreToJson(C))) {
      std::fprintf(stderr, "sharcc: cannot write '%s'\n",
                   Options.MetricsOut.c_str());
      return 2;
    }
  }

  if (!Options.Quiet) {
    std::string Verdicts;
    for (const interp::ExploreVerdict &V : ER.Verdicts) {
      if (!Verdicts.empty())
        Verdicts += ", ";
      Verdicts += V.describe();
    }
    std::fprintf(
        stderr,
        "sharcc: explore: %llu schedules (%llu sleep-set cut, %llu "
        "bound cut), %llu branches pruned, max depth %llu, %llu steps\n",
        static_cast<unsigned long long>(ER.Stats.Runs),
        static_cast<unsigned long long>(ER.Stats.SleepBlocked),
        static_cast<unsigned long long>(ER.Stats.BoundedRuns),
        static_cast<unsigned long long>(ER.Stats.BranchesPruned),
        static_cast<unsigned long long>(ER.Stats.MaxDepth),
        static_cast<unsigned long long>(ER.Stats.StepsTotal));
    std::fprintf(stderr, "sharcc: explore: verdicts: %s\n",
                 Verdicts.empty() ? "(none)" : Verdicts.c_str());
  }

  // Incompleteness is never silent: these lines print even under
  // --quiet, and the exit code stays distinct from "clean".
  if (ER.Stats.InternalError && !ER.anyViolation()) {
    std::fprintf(stderr,
                 "sharcc: explore: internal error: a replayed prefix "
                 "diverged; results are not trustworthy\n");
    return 3;
  }
  if (!ER.complete())
    std::fprintf(stderr,
                 "sharcc: explore: WARNING: exploration incomplete (%s); "
                 "the absence of violations proves nothing\n",
                 ER.Stats.InternalError ? "internal divergence"
                 : ER.Stats.BudgetExhausted
                     ? "schedule/step budget exhausted"
                     : "preemption bound cut branches");

  if (ER.anyViolation())
    return 1;
  return ER.complete() ? 0 : 4;
}

// Crash-safe tracing: while a traced run is in flight these point at the
// live writer, and the registered crash hook appends an abnormal-end
// record and flushes the buffer to disk, so `sharc-trace summarize`
// reconstructs the dying run instead of reporting a truncated file.
obs::TraceWriter *LiveTrace = nullptr;
std::string LiveTracePath;
uint8_t LivePolicy = 0;

void crashFlushTrace(int Signal, void *) {
  if (!LiveTrace || LiveTracePath.empty())
    return;
  LiveTrace->finishAbnormal(static_cast<uint32_t>(Signal), LivePolicy);
  std::string IgnoredError;
  LiveTrace->writeToFile(LiveTracePath, IgnoredError);
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Options;
  switch (parseArgs(Argc, Argv, Options)) {
  case 0:
    break;
  case 1:
    return 0; // --help
  default:
    printUsage(stderr);
    return 2;
  }

  SourceManager SM;
  std::string Error;
  FileId File = SM.addFile(Options.InputPath, Error);
  if (File == InvalidFileId) {
    std::fprintf(stderr, "sharcc: %s\n", Error.c_str());
    return 2;
  }

  DiagnosticEngine Diags(SM);
  minic::Parser Parser(SM, File, Diags);
  auto Prog = Parser.parseProgram();
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  minic::ExprTyper Typer(*Prog, Diags);
  if (!Typer.run()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  analysis::SharingAnalysis Analysis(*Prog, Diags);
  bool AnalysisOk = Analysis.run();

  if (Options.Infer) {
    std::printf("%s", minic::printProgram(*Prog).c_str());
    if (!AnalysisOk) {
      std::fprintf(stderr, "%s", Diags.render().c_str());
      return 1;
    }
    return 0;
  }
  if (!AnalysisOk) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  checker::Checker Check(*Prog, Diags);
  bool CheckOk = Check.run();
  if (!CheckOk || Diags.getNumWarnings() != 0)
    std::fprintf(stderr, "%s", Diags.render().c_str());
  if (!CheckOk)
    return 1;

  if (Options.CheckOnly) {
    if (!Options.Quiet) {
      const auto &Instr = Check.getInstrumentation();
      std::printf("check: ok (%zu runtime checks at %zu sites)\n",
                  Instr.getNumChecks(), Instr.getNumInstrumentedSites());
    }
    return 0;
  }

  if (Options.Explore)
    return runExplore(Options, *Prog, Check,
                      std::string(SM.getFileName(File)));

  // Replay a recorded witness: the run follows the file decision for
  // decision, and any divergence is a hard error (exit 2), not a guess.
  interp::Witness ReplayW;
  std::unique_ptr<interp::ReplaySchedule> Replay;
  if (!Options.ReplayWitness.empty()) {
    std::string Text, WitnessError;
    if (!readTextFile(Options.ReplayWitness, Text)) {
      std::fprintf(stderr, "sharcc: cannot read '%s'\n",
                   Options.ReplayWitness.c_str());
      return 2;
    }
    if (!ReplayW.parse(Text, WitnessError)) {
      std::fprintf(stderr, "sharcc: bad witness '%s': %s\n",
                   Options.ReplayWitness.c_str(), WitnessError.c_str());
      return 2;
    }
    Replay = std::make_unique<interp::ReplaySchedule>(ReplayW);
    Options.Interp.Sched = Replay.get();
  }

  // Fault injection (SHARC_FAULT=): a malformed spec is a fatalInternal
  // (exit 3) — a mistyped fault plan must not silently pass.
  guard::initFaultsFromEnv();
  Options.Interp.CrashAtStep = guard::faults().CrashAtStep;

  obs::TraceWriter Trace;
  if (guard::faults().HasTornWrite)
    Trace.setFaultTruncate(guard::faults().TornWriteBytes);
  if (!Options.TraceOut.empty()) {
    Options.Interp.Sink = &Trace;
    // Arm the crash-safe flush path before any interpreted code runs.
    LiveTrace = &Trace;
    LiveTracePath = Options.TraceOut;
    LivePolicy = static_cast<uint8_t>(Options.Interp.Guard.OnViolation);
    guard::installCrashHandlers();
    guard::addCrashHook(crashFlushTrace, nullptr);
  }
  if (Options.Interp.Profile)
    Options.Interp.SourceName = std::string(SM.getFileName(File));

  // sharc-live (DESIGN.md §13): arm the stats endpoint before any
  // interpreted code runs so a scraper can watch the run in flight.
  // SHARC_STATS_ADDR arms it without a flag; --stats-addr wins.
  if (Options.StatsAddr.empty())
    if (const char *Env = std::getenv("SHARC_STATS_ADDR"))
      Options.StatsAddr = Env;
  live::StatsHub StatsHub;
  std::unique_ptr<live::StatsServer> StatsServer;
  if (!Options.StatsAddr.empty()) {
    StatsServer = std::make_unique<live::StatsServer>();
    std::string StatsError;
    if (!StatsServer->start(
            Options.StatsAddr, [&StatsHub] { return StatsHub.load(); },
            StatsError)) {
      std::fprintf(stderr, "sharcc: %s\n", StatsError.c_str());
      return 2;
    }
    // Port 0 requests an ephemeral port; tests and tools read the
    // concrete one off this line.
    std::fprintf(stderr, "sharcc: stats: listening on %s\n",
                 StatsServer->boundAddress().c_str());
    // Seed the hub so a scrape that lands before the first poll sees
    // the armed policy rather than a default-constructed snapshot.
    live::LiveSnapshot First;
    First.Policy = Options.Interp.Guard.OnViolation;
    First.WatchdogMillis = Options.Interp.Guard.WatchdogMillis;
    StatsHub.update(First);
    Options.Interp.Live = &StatsHub;
    Options.Interp.LivePollSteps = Options.StatsPollSteps;
  }

  interp::Interp Interp(*Prog, Check.getInstrumentation());
  interp::InterpResult Result = Interp.run(Options.Interp);
  std::printf("%s", Result.Output.c_str());

  std::string FileName(SM.getFileName(File));
  for (const interp::Violation &V : Result.Violations)
    std::fprintf(stderr, "%s", V.format(FileName).c_str());

  if (Replay && (Replay->diverged() || Result.ScheduleAborted)) {
    std::fprintf(stderr, "sharcc: witness replay diverged: %s\n",
                 Replay->divergence().c_str());
    return 2;
  }

  if (StatsServer) {
    // Publish the final snapshot through the same mapping that writes
    // the trace's closing stats sample (toStatsSnapshot), so a scrape
    // after sharc_run_active drops to 0 matches the trace exactly.
    live::LiveSnapshot Final = StatsHub.load();
    Final.Stats = interp::toStatsSnapshot(Result);
    Final.TotalViolations = Result.TotalViolations;
    Final.Policy = Options.Interp.Guard.OnViolation;
    Final.WatchdogMillis = Options.Interp.Guard.WatchdogMillis;
    Final.ThreadsLive = 0;
    Final.ThreadsSpawned = Result.Stats.ThreadsSpawned;
    Final.Steps = Result.Stats.Steps;
    Final.Running = false;
    StatsHub.update(Final);
  }

  if (!Options.TraceOut.empty()) {
    // Close the trace with a final stats sample so `sharc-trace metrics`
    // and the summary's footer see the run's counters.
    Trace.stats(interp::toStatsSnapshot(Result));
    std::string TraceError;
    if (!Trace.writeToFile(Options.TraceOut, TraceError)) {
      // The run itself is complete; disarm the crash hook so the torn /
      // failed image is not overwritten on the way out.
      LiveTrace = nullptr;
      if (guard::faults().HasTornWrite)
        guard::fatalInternal("%s", TraceError.c_str());
      std::fprintf(stderr, "sharcc: %s\n", TraceError.c_str());
      return 2;
    }
    LiveTrace = nullptr;
  }
  if (!Options.MetricsOut.empty() &&
      !writeTextFile(Options.MetricsOut, renderMetrics(Options, Result))) {
    std::fprintf(stderr, "sharcc: cannot write '%s'\n",
                 Options.MetricsOut.c_str());
    return 2;
  }

  if (!Options.Quiet) {
    double DynPct =
        Result.Stats.TotalAccesses
            ? 100.0 * static_cast<double>(Result.Stats.DynamicChecks) /
                  static_cast<double>(Result.Stats.TotalAccesses)
            : 0.0;
    std::fprintf(stderr,
                 "sharcc: %llu steps, %llu threads, %llu accesses "
                 "(%.1f%% dynamic), %llu lock checks, %llu casts, "
                 "%zu violations\n",
                 static_cast<unsigned long long>(Result.Stats.Steps),
                 static_cast<unsigned long long>(Result.Stats.ThreadsSpawned),
                 static_cast<unsigned long long>(Result.Stats.TotalAccesses),
                 DynPct,
                 static_cast<unsigned long long>(Result.Stats.LockChecks),
                 static_cast<unsigned long long>(Result.Stats.SharingCasts),
                 static_cast<size_t>(Result.TotalViolations));
  }

  // Exit-code contract: under the abort policy any violation is fatal
  // (the paper's semantics); under continue/quarantine a run that made
  // it to completion exits 0 even if violations were recorded, and only
  // engine-level failures (deadlock, livelock, fail-stop threads)
  // remain fatal.
  int ExitCode = 0;
  if (Result.PolicyHalted)
    ExitCode = 1;
  else if (Options.Interp.Guard.OnViolation == guard::Policy::Abort &&
           Result.TotalViolations != 0)
    ExitCode = 1;
  else if (Result.Deadlocked || Result.OutOfSteps || !Result.Completed)
    ExitCode = 1;

  if (StatsServer && Options.StatsLingerMs != 0)
    // Hold the endpoint open so a scraper can read the final counters
    // (the run is over; sharc_run_active now reads 0).
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Options.StatsLingerMs));
  return ExitCode;
}
