//===-- driver/sharcc.cpp - The SharC compiler driver ---------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharcc: parse a MiniC program, infer sharing-mode annotations, check
/// the program statically, instrument it, and (optionally) run it under
/// the checked interpreter.
///
///   sharcc file.mc                 check and run
///   sharcc --infer file.mc         print inferred annotations (Figure 2)
///   sharcc --check file.mc         static checking only
///   sharcc --run file.mc           run (after checking)
///   options: --seed N --fail-stop --entry NAME --max-steps N --quiet
///
/// Exit status: 0 clean; 1 static errors or runtime violations; 2 usage.
///
//===----------------------------------------------------------------------===//

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "interp/Interp.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "minic/Printer.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

using namespace sharc;

namespace {

struct DriverOptions {
  std::string InputPath;
  bool Infer = false;
  bool CheckOnly = false;
  bool Run = false;
  bool Quiet = false;
  interp::InterpOptions Interp;
};

void printUsage() {
  std::fprintf(
      stderr,
      "usage: sharcc [--infer|--check|--run] [--seed N] [--fail-stop]\n"
      "              [--entry NAME] [--max-steps N] [--quiet] file.mc\n");
}

bool parseArgs(int Argc, char **Argv, DriverOptions &Options) {
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    if (Arg == "--infer") {
      Options.Infer = true;
    } else if (Arg == "--check") {
      Options.CheckOnly = true;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--fail-stop") {
      Options.Interp.FailStop = true;
    } else if (Arg == "--quiet") {
      Options.Quiet = true;
    } else if (Arg == "--seed" && I + 1 < Argc) {
      Options.Interp.Seed = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--max-steps" && I + 1 < Argc) {
      Options.Interp.MaxSteps = std::strtoull(Argv[++I], nullptr, 10);
    } else if (Arg == "--entry" && I + 1 < Argc) {
      Options.Interp.EntryPoint = Argv[++I];
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "sharcc: unknown option '%s'\n", Arg.c_str());
      return false;
    } else if (Options.InputPath.empty()) {
      Options.InputPath = Arg;
    } else {
      std::fprintf(stderr, "sharcc: multiple input files\n");
      return false;
    }
  }
  if (Options.InputPath.empty()) {
    std::fprintf(stderr, "sharcc: no input file\n");
    return false;
  }
  if (!Options.Infer && !Options.CheckOnly && !Options.Run)
    Options.Run = true; // default: check and run
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Options;
  if (!parseArgs(Argc, Argv, Options)) {
    printUsage();
    return 2;
  }

  SourceManager SM;
  std::string Error;
  FileId File = SM.addFile(Options.InputPath, Error);
  if (File == InvalidFileId) {
    std::fprintf(stderr, "sharcc: %s\n", Error.c_str());
    return 2;
  }

  DiagnosticEngine Diags(SM);
  minic::Parser Parser(SM, File, Diags);
  auto Prog = Parser.parseProgram();
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  minic::ExprTyper Typer(*Prog, Diags);
  if (!Typer.run()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  analysis::SharingAnalysis Analysis(*Prog, Diags);
  bool AnalysisOk = Analysis.run();

  if (Options.Infer) {
    std::printf("%s", minic::printProgram(*Prog).c_str());
    if (!AnalysisOk) {
      std::fprintf(stderr, "%s", Diags.render().c_str());
      return 1;
    }
    return 0;
  }
  if (!AnalysisOk) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  checker::Checker Check(*Prog, Diags);
  bool CheckOk = Check.run();
  if (!CheckOk || Diags.getNumWarnings() != 0)
    std::fprintf(stderr, "%s", Diags.render().c_str());
  if (!CheckOk)
    return 1;

  if (Options.CheckOnly) {
    if (!Options.Quiet) {
      const auto &Instr = Check.getInstrumentation();
      std::printf("check: ok (%zu runtime checks at %zu sites)\n",
                  Instr.getNumChecks(), Instr.getNumInstrumentedSites());
    }
    return 0;
  }

  interp::Interp Interp(*Prog, Check.getInstrumentation());
  interp::InterpResult Result = Interp.run(Options.Interp);
  std::printf("%s", Result.Output.c_str());

  std::string FileName(SM.getFileName(File));
  for (const interp::Violation &V : Result.Violations)
    std::fprintf(stderr, "%s", V.format(FileName).c_str());

  if (!Options.Quiet) {
    double DynPct =
        Result.Stats.TotalAccesses
            ? 100.0 * static_cast<double>(Result.Stats.DynamicChecks) /
                  static_cast<double>(Result.Stats.TotalAccesses)
            : 0.0;
    std::fprintf(stderr,
                 "sharcc: %llu steps, %llu threads, %llu accesses "
                 "(%.1f%% dynamic), %llu lock checks, %llu casts, "
                 "%zu violations\n",
                 static_cast<unsigned long long>(Result.Stats.Steps),
                 static_cast<unsigned long long>(Result.Stats.ThreadsSpawned),
                 static_cast<unsigned long long>(Result.Stats.TotalAccesses),
                 DynPct,
                 static_cast<unsigned long long>(Result.Stats.LockChecks),
                 static_cast<unsigned long long>(Result.Stats.SharingCasts),
                 Result.Violations.size());
  }

  if (!Result.Violations.empty())
    return 1;
  if (Result.Deadlocked || Result.OutOfSteps || !Result.Completed)
    return 1;
  return 0;
}
