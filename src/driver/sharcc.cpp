//===-- driver/sharcc.cpp - The SharC compiler driver ---------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// sharcc: parse a MiniC program, infer sharing-mode annotations, check
/// the program statically, instrument it, and (optionally) run it under
/// the checked interpreter.
///
///   sharcc file.mc                 check and run
///   sharcc --infer file.mc         print inferred annotations (Figure 2)
///   sharcc --check file.mc         static checking only
///   sharcc --run file.mc           run (after checking)
///   options: --seed N --fail-stop --entry NAME --max-steps N --quiet
///            --trace-out FILE --metrics-out FILE --profile
///            --on-violation abort|continue|quarantine
///
/// Exit status (pinned by tests/exit_codes.sh):
///   0  clean — including completed runs whose violations were permitted
///      by --on-violation=continue/quarantine
///   1  static errors, or runtime violations under the (default) abort
///      policy, or a run that deadlocked / ran out of steps
///   2  usage (malformed flags or SHARC_POLICY) and output I/O errors
///   3  internal errors and injected faults (SHARC_FAULT)
///
//===----------------------------------------------------------------------===//

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "interp/Interp.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "obs/Json.h"
#include "obs/MetricsJson.h"
#include "obs/TraceFile.h"
#include "rt/Guard.h"
#include "rt/LiveStats.h"
#include "rt/StatsServer.h"

#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>

using namespace sharc;

namespace {

struct DriverOptions {
  std::string InputPath;
  bool Infer = false;
  bool CheckOnly = false;
  bool Run = false;
  bool Quiet = false;
  std::string TraceOut;   ///< --trace-out: binary .strc event trace.
  std::string MetricsOut; ///< --metrics-out: sharc-metrics-v1 JSON.
  std::string StatsAddr;  ///< --stats-addr: HOST:PORT live endpoint.
  uint64_t StatsLingerMs = 0;   ///< --stats-linger-ms: serve after run.
  uint64_t StatsPollSteps = 1024; ///< --stats-poll-steps: publish rate.
  interp::InterpOptions Interp;
};

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: sharcc [--infer|--check|--run] [--seed N] [--fail-stop]\n"
      "              [--entry NAME] [--max-steps N] [--quiet]\n"
      "              [--trace-out FILE] [--metrics-out FILE] [--profile]\n"
      "              [--on-violation abort|continue|quarantine]\n"
      "              [--stats-addr HOST:PORT] [--stats-linger-ms N]\n"
      "              [--stats-poll-steps N]\n"
      "              file.mc\n"
      "\n"
      "modes (default: --run):\n"
      "  --infer            print the program with inferred annotations\n"
      "  --check            static checking only\n"
      "  --run              run under the checked interpreter\n"
      "\n"
      "run options:\n"
      "  --seed N           scheduler seed (default 1)\n"
      "  --max-steps N      step budget before reporting livelock\n"
      "  --fail-stop        stop a thread at its first violation\n"
      "  --entry NAME       entry function (default main)\n"
      "  --quiet            suppress the summary line\n"
      "  --on-violation P   what a sharing violation does (default abort):\n"
      "                     abort      stop the run at the first violation\n"
      "                     continue   record (dedup + cap) and keep going\n"
      "                     quarantine continue, and demote the offending\n"
      "                                location so it stops re-firing\n"
      "                     (the SHARC_POLICY env var sets the default;\n"
      "                     the flag wins)\n"
      "  --trace-out FILE   record the run as a binary .strc event trace\n"
      "                     (analyze with sharc-trace); flushed with an\n"
      "                     abnormal-end record if the run dies\n"
      "  --metrics-out FILE write run statistics as sharc-metrics-v1 JSON\n"
      "  --profile          record per-site check costs and lock\n"
      "                     contention into the trace (requires\n"
      "                     --trace-out; analyze with sharc-trace profile)\n"
      "  --stats-addr A     serve live Prometheus metrics (/metrics) and\n"
      "                     a JSON health document (/health) on HOST:PORT\n"
      "                     while the run is in flight (sharc-live; port\n"
      "                     0 picks a free port, printed on stderr)\n"
      "  --stats-linger-ms N keep serving N ms after the run finishes so\n"
      "                     a scraper can read the final counters\n"
      "  --stats-poll-steps N publish a fresh snapshot every N scheduler\n"
      "                     steps (default 1024; 0 = every step)\n"
      "\n"
      "environment: SHARC_POLICY=abort|continue|quarantine sets the\n"
      "default violation policy; SHARC_STATS_ADDR=HOST:PORT arms the\n"
      "stats endpoint (--stats-addr wins); SHARC_FAULT=oom:N,thread-reg,\n"
      "torn-write:K,lock-timeout,crash:N injects rare failures (tests).\n"
      "\n"
      "exit status: 0 clean (violations permitted by continue/quarantine\n"
      "included); 1 static errors or violations under the abort policy;\n"
      "2 usage or output I/O errors; 3 internal or fault-injected errors\n");
}

/// Strict unsigned parse for numeric flags: the whole argument must be
/// digits (std::from_chars, base 10), no trailing garbage, no sign.
bool parseU64Arg(const char *Flag, const char *Text, uint64_t &Out) {
  const char *End = Text + std::strlen(Text);
  auto [Ptr, Ec] = std::from_chars(Text, End, Out, 10);
  if (Ec != std::errc() || Ptr != End || Text == End) {
    std::fprintf(stderr, "sharcc: %s expects an unsigned integer, got '%s'\n",
                 Flag, Text);
    return false;
  }
  return true;
}

/// Matches a value-taking flag in either spelling, "--flag VALUE" or
/// "--flag=VALUE". \returns true when Argv[I] is \p Flag; \p Value then
/// points at the flag's argument, or is null when the argument is
/// missing (the caller reports usage). Advances \p I past a separate
/// value argument.
bool matchValueFlag(const char *Flag, int Argc, char **Argv, int &I,
                    const char *&Value) {
  const char *Arg = Argv[I];
  size_t Len = std::strlen(Flag);
  if (std::strncmp(Arg, Flag, Len) != 0)
    return false;
  if (Arg[Len] == '=') {
    Value = Arg + Len + 1;
    return true;
  }
  if (Arg[Len] != '\0')
    return false; // a longer flag sharing this prefix
  Value = I + 1 < Argc ? Argv[++I] : nullptr;
  return true;
}

/// 0 = parsed; 1 = parsed and exit 0 requested (--help); 2 = usage error.
int parseArgs(int Argc, char **Argv, DriverOptions &Options) {
  // The paper's fail-fast semantics is sharcc's default; SHARC_POLICY
  // overrides it, an explicit --on-violation overrides both.
  Options.Interp.Guard.OnViolation = guard::Policy::Abort;
  if (const char *Env = std::getenv("SHARC_POLICY")) {
    if (!guard::parsePolicy(Env, Options.Interp.Guard.OnViolation)) {
      std::fprintf(stderr,
                   "sharcc: SHARC_POLICY must be abort, continue, or "
                   "quarantine; got '%s'\n",
                   Env);
      return 2;
    }
  }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    const char *Value = nullptr;
    if (Arg == "--help" || Arg == "-h") {
      printUsage(stdout);
      return 1;
    } else if (matchValueFlag("--on-violation", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --on-violation needs a policy\n");
        return 2;
      }
      if (!guard::parsePolicy(Value, Options.Interp.Guard.OnViolation)) {
        std::fprintf(stderr,
                     "sharcc: --on-violation must be abort, continue, or "
                     "quarantine; got '%s'\n",
                     Value);
        return 2;
      }
    } else if (Arg == "--infer") {
      Options.Infer = true;
    } else if (Arg == "--check") {
      Options.CheckOnly = true;
    } else if (Arg == "--run") {
      Options.Run = true;
    } else if (Arg == "--fail-stop") {
      Options.Interp.FailStop = true;
    } else if (Arg == "--quiet") {
      Options.Quiet = true;
    } else if (Arg == "--profile") {
      Options.Interp.Profile = true;
    } else if (matchValueFlag("--seed", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --seed needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--seed", Value, Options.Interp.Seed))
        return 2;
    } else if (matchValueFlag("--max-steps", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --max-steps needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--max-steps", Value, Options.Interp.MaxSteps))
        return 2;
    } else if (matchValueFlag("--entry", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --entry needs a value\n");
        return 2;
      }
      Options.Interp.EntryPoint = Value;
    } else if (matchValueFlag("--trace-out", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --trace-out needs a file\n");
        return 2;
      }
      Options.TraceOut = Value;
    } else if (matchValueFlag("--metrics-out", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --metrics-out needs a file\n");
        return 2;
      }
      Options.MetricsOut = Value;
    } else if (matchValueFlag("--stats-addr", Argc, Argv, I, Value)) {
      if (!Value || !*Value) {
        std::fprintf(stderr, "sharcc: --stats-addr needs HOST:PORT\n");
        return 2;
      }
      Options.StatsAddr = Value;
    } else if (matchValueFlag("--stats-linger-ms", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --stats-linger-ms needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--stats-linger-ms", Value, Options.StatsLingerMs))
        return 2;
    } else if (matchValueFlag("--stats-poll-steps", Argc, Argv, I, Value)) {
      if (!Value) {
        std::fprintf(stderr, "sharcc: --stats-poll-steps needs a value\n");
        return 2;
      }
      if (!parseU64Arg("--stats-poll-steps", Value, Options.StatsPollSteps))
        return 2;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "sharcc: unknown option '%s'\n", Arg.c_str());
      return 2;
    } else if (Options.InputPath.empty()) {
      Options.InputPath = Arg;
    } else {
      std::fprintf(stderr, "sharcc: multiple input files\n");
      return 2;
    }
  }
  if (Options.InputPath.empty()) {
    std::fprintf(stderr, "sharcc: no input file\n");
    return 2;
  }
  if (!Options.Infer && !Options.CheckOnly && !Options.Run)
    Options.Run = true; // default: check and run
  if ((Options.Infer || Options.CheckOnly) &&
      (!Options.TraceOut.empty() || !Options.MetricsOut.empty())) {
    std::fprintf(stderr,
                 "sharcc: --trace-out/--metrics-out require a run mode\n");
    return 2;
  }
  if ((Options.Infer || Options.CheckOnly) && !Options.StatsAddr.empty()) {
    std::fprintf(stderr, "sharcc: --stats-addr requires a run mode\n");
    return 2;
  }
  if (Options.Interp.Profile &&
      (Options.Infer || Options.CheckOnly || Options.TraceOut.empty())) {
    std::fprintf(stderr,
                 "sharcc: --profile requires a run mode and --trace-out\n");
    return 2;
  }
  return 0;
}

/// Writes the sharc-metrics-v1 document for a completed run.
std::string renderMetrics(const DriverOptions &Options,
                          const interp::InterpResult &Result) {
  using interp::Violation;
  obs::JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-metrics-v1");
  W.key("source");
  W.value(Options.InputPath);
  W.key("seed");
  W.value(Options.Interp.Seed);
  W.key("entry");
  W.value(Options.Interp.EntryPoint);
  W.key("fail_stop");
  W.value(Options.Interp.FailStop);
  W.key("completed");
  W.value(Result.Completed);
  W.key("deadlocked");
  W.value(Result.Deadlocked);
  W.key("out_of_steps");
  W.value(Result.OutOfSteps);
  W.key("steps");
  W.value(Result.Stats.Steps);
  W.key("threads_spawned");
  W.value(Result.Stats.ThreadsSpawned);
  W.key("accesses");
  W.value(Result.Stats.TotalAccesses);
  W.key("reads");
  W.value(Result.Stats.Reads);
  W.key("writes");
  W.value(Result.Stats.Writes);
  W.key("dynamic_checks");
  W.value(Result.Stats.DynamicChecks);
  W.key("lock_checks");
  W.value(Result.Stats.LockChecks);
  W.key("sharing_casts");
  W.value(Result.Stats.SharingCasts);
  W.key("violations");
  W.beginObject();
  W.key("total");
  W.value(static_cast<uint64_t>(Result.Violations.size()));
  W.key("read_conflicts");
  W.value(Result.count(Violation::Kind::ReadConflict));
  W.key("write_conflicts");
  W.value(Result.count(Violation::Kind::WriteConflict));
  W.key("lock_violations");
  W.value(Result.count(Violation::Kind::LockViolation));
  W.key("cast_errors");
  W.value(Result.count(Violation::Kind::CastError));
  W.key("runtime_errors");
  W.value(Result.count(Violation::Kind::RuntimeError));
  W.endObject();
  W.key("stats");
  appendStatsJson(W, interp::toStatsSnapshot(Result));
  W.endObject();
  std::string Out = W.take();
  Out.push_back('\n');
  return Out;
}

bool writeTextFile(const std::string &Path, const std::string &Text) {
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F)
    return false;
  bool Ok = std::fwrite(Text.data(), 1, Text.size(), F) == Text.size();
  if (std::fclose(F) != 0)
    Ok = false;
  return Ok;
}

// Crash-safe tracing: while a traced run is in flight these point at the
// live writer, and the registered crash hook appends an abnormal-end
// record and flushes the buffer to disk, so `sharc-trace summarize`
// reconstructs the dying run instead of reporting a truncated file.
obs::TraceWriter *LiveTrace = nullptr;
std::string LiveTracePath;
uint8_t LivePolicy = 0;

void crashFlushTrace(int Signal, void *) {
  if (!LiveTrace || LiveTracePath.empty())
    return;
  LiveTrace->finishAbnormal(static_cast<uint32_t>(Signal), LivePolicy);
  std::string IgnoredError;
  LiveTrace->writeToFile(LiveTracePath, IgnoredError);
}

} // namespace

int main(int Argc, char **Argv) {
  DriverOptions Options;
  switch (parseArgs(Argc, Argv, Options)) {
  case 0:
    break;
  case 1:
    return 0; // --help
  default:
    printUsage(stderr);
    return 2;
  }

  SourceManager SM;
  std::string Error;
  FileId File = SM.addFile(Options.InputPath, Error);
  if (File == InvalidFileId) {
    std::fprintf(stderr, "sharcc: %s\n", Error.c_str());
    return 2;
  }

  DiagnosticEngine Diags(SM);
  minic::Parser Parser(SM, File, Diags);
  auto Prog = Parser.parseProgram();
  if (Diags.hasErrors()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  minic::ExprTyper Typer(*Prog, Diags);
  if (!Typer.run()) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  analysis::SharingAnalysis Analysis(*Prog, Diags);
  bool AnalysisOk = Analysis.run();

  if (Options.Infer) {
    std::printf("%s", minic::printProgram(*Prog).c_str());
    if (!AnalysisOk) {
      std::fprintf(stderr, "%s", Diags.render().c_str());
      return 1;
    }
    return 0;
  }
  if (!AnalysisOk) {
    std::fprintf(stderr, "%s", Diags.render().c_str());
    return 1;
  }

  checker::Checker Check(*Prog, Diags);
  bool CheckOk = Check.run();
  if (!CheckOk || Diags.getNumWarnings() != 0)
    std::fprintf(stderr, "%s", Diags.render().c_str());
  if (!CheckOk)
    return 1;

  if (Options.CheckOnly) {
    if (!Options.Quiet) {
      const auto &Instr = Check.getInstrumentation();
      std::printf("check: ok (%zu runtime checks at %zu sites)\n",
                  Instr.getNumChecks(), Instr.getNumInstrumentedSites());
    }
    return 0;
  }

  // Fault injection (SHARC_FAULT=): a malformed spec is a fatalInternal
  // (exit 3) — a mistyped fault plan must not silently pass.
  guard::initFaultsFromEnv();
  Options.Interp.CrashAtStep = guard::faults().CrashAtStep;

  obs::TraceWriter Trace;
  if (guard::faults().HasTornWrite)
    Trace.setFaultTruncate(guard::faults().TornWriteBytes);
  if (!Options.TraceOut.empty()) {
    Options.Interp.Sink = &Trace;
    // Arm the crash-safe flush path before any interpreted code runs.
    LiveTrace = &Trace;
    LiveTracePath = Options.TraceOut;
    LivePolicy = static_cast<uint8_t>(Options.Interp.Guard.OnViolation);
    guard::installCrashHandlers();
    guard::addCrashHook(crashFlushTrace, nullptr);
  }
  if (Options.Interp.Profile)
    Options.Interp.SourceName = std::string(SM.getFileName(File));

  // sharc-live (DESIGN.md §13): arm the stats endpoint before any
  // interpreted code runs so a scraper can watch the run in flight.
  // SHARC_STATS_ADDR arms it without a flag; --stats-addr wins.
  if (Options.StatsAddr.empty())
    if (const char *Env = std::getenv("SHARC_STATS_ADDR"))
      Options.StatsAddr = Env;
  live::StatsHub StatsHub;
  std::unique_ptr<live::StatsServer> StatsServer;
  if (!Options.StatsAddr.empty()) {
    StatsServer = std::make_unique<live::StatsServer>();
    std::string StatsError;
    if (!StatsServer->start(
            Options.StatsAddr, [&StatsHub] { return StatsHub.load(); },
            StatsError)) {
      std::fprintf(stderr, "sharcc: %s\n", StatsError.c_str());
      return 2;
    }
    // Port 0 requests an ephemeral port; tests and tools read the
    // concrete one off this line.
    std::fprintf(stderr, "sharcc: stats: listening on %s\n",
                 StatsServer->boundAddress().c_str());
    // Seed the hub so a scrape that lands before the first poll sees
    // the armed policy rather than a default-constructed snapshot.
    live::LiveSnapshot First;
    First.Policy = Options.Interp.Guard.OnViolation;
    First.WatchdogMillis = Options.Interp.Guard.WatchdogMillis;
    StatsHub.update(First);
    Options.Interp.Live = &StatsHub;
    Options.Interp.LivePollSteps = Options.StatsPollSteps;
  }

  interp::Interp Interp(*Prog, Check.getInstrumentation());
  interp::InterpResult Result = Interp.run(Options.Interp);
  std::printf("%s", Result.Output.c_str());

  std::string FileName(SM.getFileName(File));
  for (const interp::Violation &V : Result.Violations)
    std::fprintf(stderr, "%s", V.format(FileName).c_str());

  if (StatsServer) {
    // Publish the final snapshot through the same mapping that writes
    // the trace's closing stats sample (toStatsSnapshot), so a scrape
    // after sharc_run_active drops to 0 matches the trace exactly.
    live::LiveSnapshot Final = StatsHub.load();
    Final.Stats = interp::toStatsSnapshot(Result);
    Final.TotalViolations = Result.TotalViolations;
    Final.Policy = Options.Interp.Guard.OnViolation;
    Final.WatchdogMillis = Options.Interp.Guard.WatchdogMillis;
    Final.ThreadsLive = 0;
    Final.ThreadsSpawned = Result.Stats.ThreadsSpawned;
    Final.Steps = Result.Stats.Steps;
    Final.Running = false;
    StatsHub.update(Final);
  }

  if (!Options.TraceOut.empty()) {
    // Close the trace with a final stats sample so `sharc-trace metrics`
    // and the summary's footer see the run's counters.
    Trace.stats(interp::toStatsSnapshot(Result));
    std::string TraceError;
    if (!Trace.writeToFile(Options.TraceOut, TraceError)) {
      // The run itself is complete; disarm the crash hook so the torn /
      // failed image is not overwritten on the way out.
      LiveTrace = nullptr;
      if (guard::faults().HasTornWrite)
        guard::fatalInternal("%s", TraceError.c_str());
      std::fprintf(stderr, "sharcc: %s\n", TraceError.c_str());
      return 2;
    }
    LiveTrace = nullptr;
  }
  if (!Options.MetricsOut.empty() &&
      !writeTextFile(Options.MetricsOut, renderMetrics(Options, Result))) {
    std::fprintf(stderr, "sharcc: cannot write '%s'\n",
                 Options.MetricsOut.c_str());
    return 2;
  }

  if (!Options.Quiet) {
    double DynPct =
        Result.Stats.TotalAccesses
            ? 100.0 * static_cast<double>(Result.Stats.DynamicChecks) /
                  static_cast<double>(Result.Stats.TotalAccesses)
            : 0.0;
    std::fprintf(stderr,
                 "sharcc: %llu steps, %llu threads, %llu accesses "
                 "(%.1f%% dynamic), %llu lock checks, %llu casts, "
                 "%zu violations\n",
                 static_cast<unsigned long long>(Result.Stats.Steps),
                 static_cast<unsigned long long>(Result.Stats.ThreadsSpawned),
                 static_cast<unsigned long long>(Result.Stats.TotalAccesses),
                 DynPct,
                 static_cast<unsigned long long>(Result.Stats.LockChecks),
                 static_cast<unsigned long long>(Result.Stats.SharingCasts),
                 static_cast<size_t>(Result.TotalViolations));
  }

  // Exit-code contract: under the abort policy any violation is fatal
  // (the paper's semantics); under continue/quarantine a run that made
  // it to completion exits 0 even if violations were recorded, and only
  // engine-level failures (deadlock, livelock, fail-stop threads)
  // remain fatal.
  int ExitCode = 0;
  if (Result.PolicyHalted)
    ExitCode = 1;
  else if (Options.Interp.Guard.OnViolation == guard::Policy::Abort &&
           Result.TotalViolations != 0)
    ExitCode = 1;
  else if (Result.Deadlocked || Result.OutOfSteps || !Result.Completed)
    ExitCode = 1;

  if (StatsServer && Options.StatsLingerMs != 0)
    // Hold the endpoint open so a scraper can read the final counters
    // (the run is over; sharc_run_active now reads 0).
    std::this_thread::sleep_for(
        std::chrono::milliseconds(Options.StatsLingerMs));
  return ExitCode;
}
