//===-- workloads/Fft.cpp -------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Fft.h"

#include <cassert>
#include <cmath>

using namespace sharc;
using namespace sharc::workloads;

void sharc::workloads::fftInPlace(Complex *Data, size_t Size, bool Inverse) {
  assert(Size != 0 && (Size & (Size - 1)) == 0 &&
         "FFT size must be a power of two");
  // Bit-reversal permutation.
  for (size_t I = 1, J = 0; I != Size; ++I) {
    size_t Bit = Size >> 1;
    for (; J & Bit; Bit >>= 1)
      J ^= Bit;
    J ^= Bit;
    if (I < J)
      std::swap(Data[I], Data[J]);
  }
  const double Pi = 3.14159265358979323846;
  for (size_t Len = 2; Len <= Size; Len <<= 1) {
    double Angle = 2 * Pi / static_cast<double>(Len) * (Inverse ? 1 : -1);
    Complex Root(std::cos(Angle), std::sin(Angle));
    for (size_t I = 0; I < Size; I += Len) {
      Complex W(1);
      for (size_t J = 0; J != Len / 2; ++J) {
        Complex U = Data[I + J];
        Complex V = Data[I + J + Len / 2] * W;
        Data[I + J] = U + V;
        Data[I + J + Len / 2] = U - V;
        W *= Root;
      }
    }
  }
  if (Inverse)
    for (size_t I = 0; I != Size; ++I)
      Data[I] /= static_cast<double>(Size);
}

void sharc::workloads::fftInPlace(std::vector<Complex> &Data, bool Inverse) {
  fftInPlace(Data.data(), Data.size(), Inverse);
}

double sharc::workloads::maxAbsDiff(const std::vector<Complex> &A,
                                    const std::vector<Complex> &B) {
  assert(A.size() == B.size());
  double Max = 0;
  for (size_t I = 0; I != A.size(); ++I)
    Max = std::max(Max, std::abs(A[I] - B[I]));
  return Max;
}
