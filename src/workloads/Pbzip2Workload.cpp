//===-- workloads/Pbzip2Workload.cpp --------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Pbzip2Workload.h"

#include "workloads/Compressor.h"
#include "workloads/TextCorpus.h"

#include <cassert>
#include <new>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

/// A block moving through the pipeline. Blocks are handed between the
/// reader, the workers, and the writer with sharing casts; while owned
/// they are private and (de)compressed without checks.
struct Block {
  uint32_t Index = 0;
  ByteVec Data;
};

template <typename P> struct PipelineState {
  typename P::Mutex Mut;
  typename P::CondVar Ready;
  /// One counted slot per in-flight block position (a bounded queue).
  static constexpr unsigned QueueDepth = 4;
  typename P::template Counted<Block> InSlots[QueueDepth];
  typename P::template Counted<Block> OutSlots[QueueDepth];
  typename P::template Locked<unsigned> NextIn;   ///< next block to take
  typename P::template Locked<unsigned> ProducedIn;
  typename P::template Locked<unsigned> ConsumedOut;
  unsigned TotalBlocks = 0;
  bool Decompress = false;

  PipelineState()
      : NextIn(Mut, 0u), ProducedIn(Mut, 0u), ConsumedOut(Mut, 0u) {}
};

template <typename P> Block *makeBlock(uint32_t Index, ByteVec Data) {
  void *Mem = P::alloc(sizeof(Block));
  Block *B = new (Mem) Block();
  B->Index = Index;
  B->Data = std::move(Data);
  return B;
}

template <typename P> void destroyBlock(Block *B) {
  B->~Block();
  P::dealloc(B);
}

/// Worker: take ownership of an input block, compress it privately, hand
/// the result to the writer.
template <typename P> void compressorBody(PipelineState<P> *State) {
  while (true) {
    Block *Mine = nullptr;
    unsigned Slot = 0;
    {
      typename P::UniqueLock Lock(State->Mut);
      while (true) {
        unsigned Next = State->NextIn.read(SHARC_SITE("state->nextIn"));
        if (Next >= State->TotalBlocks)
          return;
        unsigned Produced =
            State->ProducedIn.read(SHARC_SITE("state->producedIn"));
        if (Next < Produced) {
          Slot = Next % PipelineState<P>::QueueDepth;
          State->NextIn.write(Next + 1, SHARC_SITE("state->nextIn"));
          // Ownership transfer out of the shared queue slot.
          Mine = State->InSlots[Slot].castOut(SHARC_SITE("inSlots[slot]"));
          State->Ready.notifyAll();
          break;
        }
        State->Ready.wait(Lock);
      }
    }
    // Private (de)compression: no checks while we own the block.
    ByteVec Transformed = State->Decompress ? decompressBlock(Mine->Data)
                                            : compressBlock(Mine->Data);
    uint32_t Index = Mine->Index;
    Mine->Data = std::move(Transformed);

    {
      typename P::UniqueLock Lock(State->Mut);
      unsigned OutSlot = Index % PipelineState<P>::QueueDepth;
      // Deposit only when the block is within the writer's window, so a
      // fast worker cannot place block N+Depth in the slot the writer is
      // still expecting block N in.
      while (State->ConsumedOut.read(SHARC_SITE("state->consumedOut")) +
                 PipelineState<P>::QueueDepth <=
             Index)
        State->Ready.wait(Lock);
      Block *Transfer = Mine;
      Mine = nullptr;
      State->OutSlots[OutSlot].store(
          P::castIn(Transfer, SHARC_SITE("mine")));
      State->Ready.notifyAll();
    }
  }
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runPbzip2(const Pbzip2Config &Config) {
  // The "file": deterministic pseudo-text blocks.
  std::vector<CorpusFile> Input =
      makeCorpus(Config.NumBlocks, Config.BlockBytes, "block", Config.Seed);


  // The state holds counted slots, which pending reference-count logs may
  // name until the next collection: allocate it from the policy heap (the
  // sharc heap defers physical frees past the next collection).
  void *StateMem = P::alloc(sizeof(PipelineState<P>));
  auto *State = new (StateMem) PipelineState<P>();
  State->TotalBlocks = Config.NumBlocks;
  State->Decompress = Config.Decompress;

  // In decompression mode the "file" is the compressed stream: transform
  // the pseudo-text blocks up front (reader-side work, untimed relative
  // to the workers' decompression).
  if (Config.Decompress)
    for (CorpusFile &File : Input)
      File.Contents = compressBlock(File.Contents);

  std::vector<typename P::Thread> Workers;
  for (unsigned I = 0; I != Config.NumWorkers; ++I)
    Workers.emplace_back([State] { compressorBody<P>(State); });

  // Reader role (this thread): create private blocks and feed the queue.
  unsigned Fed = 0;
  uint64_t CompressedBytes = 0;
  uint64_t Hash = 0xcbf29ce484222325ull;
  unsigned Collected = 0;
  std::vector<ByteVec> CollectedBlocks(Config.Verify ? Config.NumBlocks : 0);

  while (Collected < Config.NumBlocks) {
    {
      typename P::UniqueLock Lock(State->Mut);
      // Feed while there is queue room.
      while (Fed < Config.NumBlocks &&
             State->ProducedIn.read(SHARC_SITE("state->producedIn")) <
                 State->NextIn.read(SHARC_SITE("state->nextIn")) +
                     PipelineState<P>::QueueDepth) {
        unsigned Slot = Fed % PipelineState<P>::QueueDepth;
        if (State->InSlots[Slot].load() != nullptr)
          break;
        Block *B = makeBlock<P>(Fed, Input[Fed].Contents);
        State->InSlots[Slot].store(P::castIn(B, SHARC_SITE("b")));
        ++Fed;
        unsigned Produced =
            State->ProducedIn.read(SHARC_SITE("state->producedIn"));
        State->ProducedIn.write(Produced + 1,
                                SHARC_SITE("state->producedIn"));
        State->Ready.notifyAll();
      }
      // Collect finished blocks in order (writer role).
      while (true) {
        unsigned Done =
            State->ConsumedOut.read(SHARC_SITE("state->consumedOut"));
        unsigned OutSlot = Done % PipelineState<P>::QueueDepth;
        if (Done >= Config.NumBlocks ||
            State->OutSlots[OutSlot].load() == nullptr)
          break;
        Block *Out =
            State->OutSlots[OutSlot].castOut(SHARC_SITE("outSlots[slot]"));
        State->ConsumedOut.write(Done + 1,
                                 SHARC_SITE("state->consumedOut"));
        State->Ready.notifyAll();
        // Private again: fold into the output stream.
        CompressedBytes += Out->Data.size();
        for (uint8_t Byte : Out->Data) {
          Hash ^= Byte;
          Hash *= 0x100000001b3ull;
        }
        if (Config.Verify)
          CollectedBlocks[Out->Index] = Out->Data;
        destroyBlock<P>(Out);
        ++Collected;
      }
      if (Collected >= Config.NumBlocks)
        break;
      State->Ready.wait(Lock);
    }
  }
  for (auto &T : Workers)
    T.join();

  if (Config.Verify) {
    for (unsigned I = 0; I != Config.NumBlocks; ++I) {
      ByteVec Restored = Config.Decompress
                             ? compressBlock(CollectedBlocks[I])
                             : decompressBlock(CollectedBlocks[I]);
      assert(Restored == Input[I].Contents && "round trip failed");
      (void)Restored;
    }
  }

  WorkloadResult Result;
  Result.Checksum = Hash;
  Result.WorkUnits = static_cast<uint64_t>(Config.NumBlocks) *
                     Config.BlockBytes;
  // The compression kernel touches each input byte many times (BWT sort,
  // MTF, RLE, Huffman); 30x is a measured-order estimate used only as the
  // %dynamic denominator.
  Result.TotalMemoryAccessesEstimate = Result.WorkUnits * 30;
  Result.PeakPayloadBytesEstimate =
      Result.WorkUnits + PipelineState<P>::QueueDepth * Config.BlockBytes;
  Result.MaxThreads = Config.NumWorkers + 2; // reader + writer + workers
  Result.Annotations = 10; // paper's pbzip2 row
  Result.OtherChanges = 36;
  Result.Checksum ^= CompressedBytes << 1;
  State->~PipelineState();
  P::dealloc(State);
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runPbzip2<UncheckedPolicy>(const Pbzip2Config &);
template WorkloadResult
sharc::workloads::runPbzip2<SharcPolicy>(const Pbzip2Config &);
