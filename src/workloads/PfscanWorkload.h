//===-- workloads/PfscanWorkload.h - Parallel file scan ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pfscan benchmark: "a tool that spawns multiple threads for
/// searching through files ... one thread finds all the paths that must
/// be searched, and an arbitrary number of threads take paths off of a
/// shared queue protected with a mutex and search files at those paths."
///
/// In the SharC port the queue state is locked(mut), the match counter is
/// locked(mut), and file contents -- shared between the enumerator and
/// the workers -- are inferred dynamic, so the scanning reads dominate
/// the dynamic access count (the paper reports 80% dynamic accesses).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_PFSCANWORKLOAD_H
#define SHARC_WORKLOADS_PFSCANWORKLOAD_H

#include "workloads/Policy.h"

#include <string>

namespace sharc {
namespace workloads {

struct PfscanConfig {
  unsigned NumWorkers = 2;
  unsigned NumFiles = 48;
  size_t BytesPerFile = 16384;
  std::string Needle = "etaoin";
  uint64_t Seed = 42;
};

template <typename PolicyT>
WorkloadResult runPfscan(const PfscanConfig &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_PFSCANWORKLOAD_H
