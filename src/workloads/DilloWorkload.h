//===-- workloads/DilloWorkload.h - DNS lookup thread pool ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dillo benchmark: the browser "uses threads to hide the latency of
/// DNS lookup. It keeps a shared queue of the outstanding requests. Four
/// worker threads read requests from the queue and initiate calls to
/// gethostbyname." The DNS server is simulated (DESIGN.md).
///
/// SharC port: the request queue is locked; request objects transfer
/// ownership to workers with sharing casts ("several functions called
/// from the worker threads assume that they own request data, so the
/// arguments to these functions were annotated private"). The paper's
/// high memory overhead came from integers stored in pointer-typed slots
/// being reference counted; the workload reproduces that by storing each
/// resolved address into a counted slot as a bogus pointer.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_DILLOWORKLOAD_H
#define SHARC_WORKLOADS_DILLOWORKLOAD_H

#include "workloads/Policy.h"

namespace sharc {
namespace workloads {

struct DilloConfig {
  unsigned NumWorkers = 4;
  unsigned NumRequests = 96;
  uint64_t LatencyNanos = 30000; ///< Simulated DNS round trip.
  uint64_t Seed = 7;
};

template <typename PolicyT> WorkloadResult runDillo(const DilloConfig &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_DILLOWORKLOAD_H
