//===-- workloads/FftwWorkload.h - Threaded random FFTs ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fftw benchmark: "32 random FFTs ... computes by dividing arrays
/// among a fixed number of worker threads. Ownership of arrays is
/// transferred to each thread, and then reclaimed when the threads are
/// finished. The functions that compute over the partial arrays assume
/// that they own that memory, so it was only necessary to annotate those
/// arguments as private."
///
/// SharC port: each job's array slice moves into a worker through a
/// counted slot with a sharing cast, is transformed privately, and is
/// cast back to the coordinator.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_FFTWWORKLOAD_H
#define SHARC_WORKLOADS_FFTWWORKLOAD_H

#include "workloads/Policy.h"

namespace sharc {
namespace workloads {

struct FftwConfig {
  unsigned NumWorkers = 3;
  unsigned NumTransforms = 32;
  size_t TransformSize = 2048; ///< Power of two.
  uint64_t Seed = 99;
};

template <typename PolicyT> WorkloadResult runFftw(const FftwConfig &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_FFTWWORKLOAD_H
