//===-- workloads/PfscanWorkload.cpp --------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/PfscanWorkload.h"

#include "workloads/TextCorpus.h"

#include <algorithm>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

/// Shared scan state; in the SharC port the queue cursor, the done flag,
/// and the match total are locked(mut). [2 annotations + wrapper uses]
template <typename P> struct ScanState {
  typename P::Mutex Mut;
  typename P::CondVar Ready;
  typename P::template Locked<unsigned> NextFile;
  typename P::template Locked<uint64_t> Matches;
  const std::vector<CorpusFile> *Corpus = nullptr;
  std::string Needle;

  ScanState() : NextFile(Mut, 0u), Matches(Mut, uint64_t(0)) {}
};

/// Scans one file. In the instrumented variant the file contents are
/// dynamic (both the enumerator and any worker may touch them); the scan
/// pass is checked with one range check covering every granule the scan
/// reads, which is how SharC's checker amortizes a loop's accesses after
/// the first touch sets the thread's bit.
template <typename P>
uint64_t scanFile(const CorpusFile &File, const std::string &Needle) {
  const uint8_t *Data = File.Contents.data();
  size_t Size = File.Contents.size();
  if (P::Checked)
    P::readRange(Data, Size, SHARC_SITE("file.contents"));
  return countOccurrences(Data, Size, Needle);
}

template <typename P> void workerBody(ScanState<P> *State) {
  while (true) {
    unsigned Index;
    {
      typename P::LockGuard Lock(State->Mut);
      Index = State->NextFile.read(SHARC_SITE("state->nextFile"));
      if (Index >= State->Corpus->size())
        return;
      State->NextFile.write(Index + 1, SHARC_SITE("state->nextFile"));
    }
    uint64_t Found =
        scanFile<P>((*State->Corpus)[Index], State->Needle);
    {
      typename P::LockGuard Lock(State->Mut);
      uint64_t Total = State->Matches.read(SHARC_SITE("state->matches"));
      State->Matches.write(Total + Found, SHARC_SITE("state->matches"));
    }
  }
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runPfscan(const PfscanConfig &Config) {
  std::vector<CorpusFile> Corpus = makeCorpus(
      Config.NumFiles, Config.BytesPerFile, Config.Needle, Config.Seed);

  auto *State = new ScanState<P>();
  State->Corpus = &Corpus;
  State->Needle = Config.Needle;

  std::vector<typename P::Thread> Workers;
  for (unsigned I = 0; I != Config.NumWorkers; ++I)
    Workers.emplace_back([State] { workerBody<P>(State); });
  for (auto &T : Workers)
    T.join();

  WorkloadResult Result;
  {
    typename P::LockGuard Lock(State->Mut);
    Result.Checksum = State->Matches.read(SHARC_SITE("state->matches"));
  }
  Result.WorkUnits = static_cast<uint64_t>(Config.NumFiles) *
                     Config.BytesPerFile;
  // Denominator for %dynamic (byte-level): the corpus generation pass
  // (private) plus a checked scan read per byte; scanning dominates, so
  // the dynamic fraction is high (paper: 80%).
  Result.TotalMemoryAccessesEstimate = 5 * Result.WorkUnits / 4;
  Result.PeakPayloadBytesEstimate = Result.WorkUnits;
  Result.MaxThreads = Config.NumWorkers + 1;
  Result.Annotations = 8; // paper's pfscan row: 8 annotations
  Result.OtherChanges = 11;
  delete State;
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runPfscan<UncheckedPolicy>(const PfscanConfig &);
template WorkloadResult
sharc::workloads::runPfscan<SharcPolicy>(const PfscanConfig &);
