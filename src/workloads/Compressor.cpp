//===-- workloads/Compressor.cpp ------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/Compressor.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

using namespace sharc;
using namespace sharc::workloads;

//===----------------------------------------------------------------------===//
// BWT
//===----------------------------------------------------------------------===//

ByteVec sharc::workloads::bwtForward(const ByteVec &Input,
                                     uint32_t &PrimaryIndex) {
  size_t N = Input.size();
  PrimaryIndex = 0;
  if (N == 0)
    return {};

  // Suffix (rotation) sorting by prefix doubling over cyclic indices.
  std::vector<uint32_t> Order(N), Rank(N), NewRank(N);
  std::iota(Order.begin(), Order.end(), 0);
  for (size_t I = 0; I != N; ++I)
    Rank[I] = Input[I];
  for (size_t K = 1;; K *= 2) {
    auto Cmp = [&](uint32_t A, uint32_t B) {
      if (Rank[A] != Rank[B])
        return Rank[A] < Rank[B];
      uint32_t RA = Rank[(A + K) % N];
      uint32_t RB = Rank[(B + K) % N];
      return RA < RB;
    };
    std::sort(Order.begin(), Order.end(), Cmp);
    NewRank[Order[0]] = 0;
    for (size_t I = 1; I != N; ++I)
      NewRank[Order[I]] =
          NewRank[Order[I - 1]] + (Cmp(Order[I - 1], Order[I]) ? 1 : 0);
    Rank.swap(NewRank);
    if (Rank[Order[N - 1]] == N - 1)
      break;
  }

  ByteVec Out(N);
  for (size_t I = 0; I != N; ++I) {
    uint32_t Rot = Order[I];
    if (Rot == 0)
      PrimaryIndex = static_cast<uint32_t>(I);
    Out[I] = Input[(Rot + N - 1) % N];
  }
  return Out;
}

ByteVec sharc::workloads::bwtInverse(const ByteVec &Bwt,
                                     uint32_t PrimaryIndex) {
  size_t N = Bwt.size();
  if (N == 0)
    return {};
  // LF mapping: Next[i] = position in Bwt of the predecessor row.
  std::vector<uint32_t> Count(257, 0);
  for (uint8_t B : Bwt)
    ++Count[B + 1];
  for (size_t I = 1; I != 257; ++I)
    Count[I] += Count[I - 1];
  std::vector<uint32_t> Next(N);
  for (size_t I = 0; I != N; ++I)
    Next[Count[Bwt[I]]++] = static_cast<uint32_t>(I);

  ByteVec Out(N);
  uint32_t P = Next[PrimaryIndex];
  for (size_t I = 0; I != N; ++I) {
    Out[I] = Bwt[P];
    P = Next[P];
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Move-to-front
//===----------------------------------------------------------------------===//

ByteVec sharc::workloads::mtfForward(const ByteVec &Input) {
  uint8_t Table[256];
  for (unsigned I = 0; I != 256; ++I)
    Table[I] = static_cast<uint8_t>(I);
  ByteVec Out;
  Out.reserve(Input.size());
  for (uint8_t B : Input) {
    unsigned Pos = 0;
    while (Table[Pos] != B)
      ++Pos;
    Out.push_back(static_cast<uint8_t>(Pos));
    for (unsigned I = Pos; I != 0; --I)
      Table[I] = Table[I - 1];
    Table[0] = B;
  }
  return Out;
}

ByteVec sharc::workloads::mtfInverse(const ByteVec &Input) {
  uint8_t Table[256];
  for (unsigned I = 0; I != 256; ++I)
    Table[I] = static_cast<uint8_t>(I);
  ByteVec Out;
  Out.reserve(Input.size());
  for (uint8_t Pos : Input) {
    uint8_t B = Table[Pos];
    Out.push_back(B);
    for (unsigned I = Pos; I != 0; --I)
      Table[I] = Table[I - 1];
    Table[0] = B;
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// RLE
//===----------------------------------------------------------------------===//

ByteVec sharc::workloads::rleCompress(const ByteVec &Input) {
  ByteVec Out;
  Out.reserve(Input.size() + 16);
  size_t I = 0;
  while (I < Input.size()) {
    uint8_t B = Input[I];
    size_t Run = 1;
    while (I + Run < Input.size() && Input[I + Run] == B && Run < 257)
      ++Run;
    if (Run >= 2) {
      // Pair of equal bytes announces a run; the next byte is the count of
      // *additional* repeats (0..255).
      Out.push_back(B);
      Out.push_back(B);
      Out.push_back(static_cast<uint8_t>(Run - 2));
    } else {
      Out.push_back(B);
    }
    I += Run;
  }
  return Out;
}

ByteVec sharc::workloads::rleDecompress(const ByteVec &Input) {
  ByteVec Out;
  Out.reserve(Input.size());
  size_t I = 0;
  while (I < Input.size()) {
    uint8_t B = Input[I++];
    if (I < Input.size() && Input[I] == B) {
      ++I;
      assert(I < Input.size() && "truncated RLE run");
      unsigned Extra = Input[I++];
      Out.insert(Out.end(), 2 + Extra, B);
    } else {
      Out.push_back(B);
    }
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Canonical Huffman
//===----------------------------------------------------------------------===//

namespace {

/// Computes canonical code lengths (<= 32) for the 256 byte symbols from
/// frequencies, via the standard two-queue Huffman construction.
void huffmanCodeLengths(const std::vector<uint64_t> &Freq,
                        std::vector<uint8_t> &Lengths) {
  struct Node {
    uint64_t Weight;
    int Left, Right; // -1 for leaves
    int Symbol;
  };
  std::vector<Node> Nodes;
  using QE = std::pair<uint64_t, int>; // (weight, node index)
  std::priority_queue<QE, std::vector<QE>, std::greater<QE>> Queue;
  for (int S = 0; S != 256; ++S)
    if (Freq[S]) {
      Nodes.push_back(Node{Freq[S], -1, -1, S});
      Queue.push({Freq[S], static_cast<int>(Nodes.size()) - 1});
    }
  Lengths.assign(256, 0);
  if (Nodes.empty())
    return;
  if (Nodes.size() == 1) {
    Lengths[Nodes[0].Symbol] = 1;
    return;
  }
  while (Queue.size() > 1) {
    auto [WA, A] = Queue.top();
    Queue.pop();
    auto [WB, B] = Queue.top();
    Queue.pop();
    Nodes.push_back(Node{WA + WB, A, B, -1});
    Queue.push({WA + WB, static_cast<int>(Nodes.size()) - 1});
  }
  // Depth-first assignment of depths.
  struct StackEntry {
    int Node;
    uint8_t Depth;
  };
  std::vector<StackEntry> Stack{{Queue.top().second, 0}};
  while (!Stack.empty()) {
    auto [N, Depth] = Stack.back();
    Stack.pop_back();
    const Node &Nd = Nodes[N];
    if (Nd.Symbol >= 0) {
      Lengths[Nd.Symbol] = Depth == 0 ? 1 : Depth;
      continue;
    }
    Stack.push_back({Nd.Left, static_cast<uint8_t>(Depth + 1)});
    Stack.push_back({Nd.Right, static_cast<uint8_t>(Depth + 1)});
  }
}

/// Builds canonical codes from lengths: symbols sorted by (length,
/// symbol) receive consecutive code values.
void canonicalCodes(const std::vector<uint8_t> &Lengths,
                    std::vector<uint32_t> &Codes) {
  Codes.assign(256, 0);
  std::vector<int> Symbols;
  for (int S = 0; S != 256; ++S)
    if (Lengths[S])
      Symbols.push_back(S);
  std::sort(Symbols.begin(), Symbols.end(), [&](int A, int B) {
    if (Lengths[A] != Lengths[B])
      return Lengths[A] < Lengths[B];
    return A < B;
  });
  uint32_t Code = 0;
  uint8_t PrevLen = 0;
  for (int S : Symbols) {
    Code <<= (Lengths[S] - PrevLen);
    Codes[S] = Code;
    ++Code;
    PrevLen = Lengths[S];
  }
}

class BitWriter {
public:
  explicit BitWriter(ByteVec &Out) : Out(Out) {}
  void put(uint32_t Code, uint8_t NumBits) {
    for (int I = NumBits - 1; I >= 0; --I) {
      Acc = (Acc << 1) | ((Code >> I) & 1);
      if (++Used == 8) {
        Out.push_back(Acc);
        Acc = 0;
        Used = 0;
      }
    }
  }
  void flush() {
    if (Used) {
      Out.push_back(static_cast<uint8_t>(Acc << (8 - Used)));
      Used = 0;
      Acc = 0;
    }
  }

private:
  ByteVec &Out;
  uint8_t Acc = 0;
  unsigned Used = 0;
};

class BitReader {
public:
  BitReader(const uint8_t *Data, size_t Size) : Data(Data), Size(Size) {}
  int getBit() {
    if (Pos >= Size)
      return -1;
    int Bit = (Data[Pos] >> (7 - Used)) & 1;
    if (++Used == 8) {
      Used = 0;
      ++Pos;
    }
    return Bit;
  }

private:
  const uint8_t *Data;
  size_t Size;
  size_t Pos = 0;
  unsigned Used = 0;
};

void putU32(ByteVec &Out, uint32_t V) {
  Out.push_back(static_cast<uint8_t>(V));
  Out.push_back(static_cast<uint8_t>(V >> 8));
  Out.push_back(static_cast<uint8_t>(V >> 16));
  Out.push_back(static_cast<uint8_t>(V >> 24));
}

uint32_t getU32(const ByteVec &In, size_t Offset) {
  return static_cast<uint32_t>(In[Offset]) |
         (static_cast<uint32_t>(In[Offset + 1]) << 8) |
         (static_cast<uint32_t>(In[Offset + 2]) << 16) |
         (static_cast<uint32_t>(In[Offset + 3]) << 24);
}

} // namespace

ByteVec sharc::workloads::huffmanCompress(const ByteVec &Input) {
  ByteVec Out;
  putU32(Out, static_cast<uint32_t>(Input.size()));
  if (Input.empty())
    return Out;

  std::vector<uint64_t> Freq(256, 0);
  for (uint8_t B : Input)
    ++Freq[B];
  std::vector<uint8_t> Lengths;
  huffmanCodeLengths(Freq, Lengths);
  std::vector<uint32_t> Codes;
  canonicalCodes(Lengths, Codes);

  Out.insert(Out.end(), Lengths.begin(), Lengths.end());
  BitWriter Writer(Out);
  for (uint8_t B : Input)
    Writer.put(Codes[B], Lengths[B]);
  Writer.flush();
  return Out;
}

ByteVec sharc::workloads::huffmanDecompress(const ByteVec &Input) {
  assert(Input.size() >= 4 && "truncated huffman stream");
  uint32_t N = getU32(Input, 0);
  ByteVec Out;
  if (N == 0)
    return Out;
  Out.reserve(N);
  std::vector<uint8_t> Lengths(Input.begin() + 4, Input.begin() + 4 + 256);
  std::vector<uint32_t> Codes;
  canonicalCodes(Lengths, Codes);

  // Decode bit-by-bit against the canonical code table (adequate for a
  // benchmark substrate; a table-driven decoder is an optimization).
  struct Entry {
    uint32_t Code;
    uint8_t Len;
    uint8_t Symbol;
  };
  std::vector<Entry> Table;
  for (int S = 0; S != 256; ++S)
    if (Lengths[S])
      Table.push_back(
          {Codes[S], Lengths[S], static_cast<uint8_t>(S)});
  std::sort(Table.begin(), Table.end(), [](const Entry &A, const Entry &B) {
    if (A.Len != B.Len)
      return A.Len < B.Len;
    return A.Code < B.Code;
  });

  BitReader Reader(Input.data() + 4 + 256, Input.size() - 4 - 256);
  uint32_t Acc = 0;
  uint8_t AccLen = 0;
  size_t TableIndex = 0;
  while (Out.size() < N) {
    int Bit = Reader.getBit();
    assert(Bit >= 0 && "truncated huffman payload");
    Acc = (Acc << 1) | static_cast<uint32_t>(Bit);
    ++AccLen;
    // Advance to entries of this length and look for a match.
    while (TableIndex < Table.size() && Table[TableIndex].Len < AccLen)
      ++TableIndex;
    for (size_t I = TableIndex;
         I < Table.size() && Table[I].Len == AccLen; ++I) {
      if (Table[I].Code == Acc) {
        Out.push_back(Table[I].Symbol);
        Acc = 0;
        AccLen = 0;
        TableIndex = 0;
        break;
      }
    }
    assert(AccLen <= 32 && "no huffman code matched");
  }
  return Out;
}

//===----------------------------------------------------------------------===//
// Whole pipeline
//===----------------------------------------------------------------------===//

ByteVec sharc::workloads::compressBlock(const ByteVec &Input) {
  uint32_t PrimaryIndex = 0;
  ByteVec Stage = bwtForward(Input, PrimaryIndex);
  Stage = mtfForward(Stage);
  Stage = rleCompress(Stage);
  Stage = huffmanCompress(Stage);
  ByteVec Out;
  putU32(Out, PrimaryIndex);
  Out.insert(Out.end(), Stage.begin(), Stage.end());
  return Out;
}

ByteVec sharc::workloads::decompressBlock(const ByteVec &Compressed) {
  assert(Compressed.size() >= 4 && "truncated block");
  uint32_t PrimaryIndex = getU32(Compressed, 0);
  ByteVec Stage(Compressed.begin() + 4, Compressed.end());
  Stage = huffmanDecompress(Stage);
  Stage = rleDecompress(Stage);
  Stage = mtfInverse(Stage);
  return bwtInverse(Stage, PrimaryIndex);
}
