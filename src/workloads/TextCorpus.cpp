//===-- workloads/TextCorpus.cpp ------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/TextCorpus.h"

using namespace sharc;
using namespace sharc::workloads;

namespace {

uint64_t nextRandom(uint64_t &State) {
  State ^= State >> 12;
  State ^= State << 25;
  State ^= State >> 27;
  return State * 0x2545F4914F6CDD1Dull;
}

} // namespace

std::vector<CorpusFile>
sharc::workloads::makeCorpus(unsigned NumFiles, size_t BytesPerFile,
                             const std::string &Needle, uint64_t Seed) {
  static const char Alphabet[] =
      "abcdefghijklmnopqrstuvwxyz      \n\netaoin shrdlu";
  constexpr size_t AlphabetSize = sizeof(Alphabet) - 1;

  std::vector<CorpusFile> Corpus;
  Corpus.reserve(NumFiles);
  uint64_t State = Seed ? Seed : 1;
  for (unsigned F = 0; F != NumFiles; ++F) {
    CorpusFile File;
    File.Path = "corpus/dir" + std::to_string(F % 7) + "/file" +
                std::to_string(F) + ".txt";
    File.Contents.reserve(BytesPerFile + Needle.size());
    while (File.Contents.size() < BytesPerFile) {
      uint64_t R = nextRandom(State);
      // Occasionally plant the needle (about one per 4 KiB).
      if ((R & 0xFFF) < 1 && !Needle.empty()) {
        File.Contents.insert(File.Contents.end(), Needle.begin(),
                             Needle.end());
        continue;
      }
      File.Contents.push_back(
          static_cast<uint8_t>(Alphabet[R % AlphabetSize]));
    }
    Corpus.push_back(std::move(File));
  }
  return Corpus;
}

uint64_t sharc::workloads::countOccurrences(const uint8_t *Data, size_t Size,
                                            const std::string &Needle) {
  size_t M = Needle.size();
  if (M == 0 || Size < M)
    return 0;
  // Boyer-Moore-Horspool bad-character shifts.
  size_t Shift[256];
  for (size_t I = 0; I != 256; ++I)
    Shift[I] = M;
  for (size_t I = 0; I + 1 < M; ++I)
    Shift[static_cast<uint8_t>(Needle[I])] = M - 1 - I;

  uint64_t Count = 0;
  size_t Pos = 0;
  while (Pos + M <= Size) {
    size_t I = M;
    while (I != 0 && Data[Pos + I - 1] == static_cast<uint8_t>(Needle[I - 1]))
      --I;
    if (I == 0)
      ++Count;
    Pos += Shift[Data[Pos + M - 1]];
  }
  return Count;
}
