//===-- workloads/SimServices.cpp -----------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/SimServices.h"

#include <chrono>

using namespace sharc;
using namespace sharc::workloads;

void sharc::workloads::spinFor(uint64_t Nanos) {
  if (Nanos == 0)
    return;
  auto Deadline =
      std::chrono::steady_clock::now() + std::chrono::nanoseconds(Nanos);
  while (std::chrono::steady_clock::now() < Deadline)
    ;
}

uint8_t SimNet::byteAt(uint64_t Resource, uint64_t Offset) {
  uint64_t H = Resource * 0x9E3779B97F4A7C15ull + Offset;
  H ^= H >> 33;
  H *= 0xFF51AFD7ED558CCDull;
  H ^= H >> 29;
  return static_cast<uint8_t>(H);
}

void SimNet::fetch(uint64_t Resource, uint64_t Offset, uint8_t *Out,
                   size_t Len) const {
  spinFor(LatencyNanos);
  for (size_t I = 0; I != Len; ++I)
    Out[I] = byteAt(Resource, Offset + I);
}

uint32_t sharc::workloads::simDnsResolve(const std::string &Hostname,
                                         uint64_t LatencyNanos) {
  spinFor(LatencyNanos);
  uint64_t H = 0xcbf29ce484222325ull;
  for (char C : Hostname) {
    H ^= static_cast<unsigned char>(C);
    H *= 0x100000001b3ull;
  }
  // Keep it in private address space for flavour: 10.x.y.z.
  return 0x0A000000u | static_cast<uint32_t>(H & 0x00FFFFFF);
}

void StreamCipher::apply(uint8_t *Data, size_t Len) {
  for (size_t I = 0; I != Len; ++I) {
    State ^= State >> 12;
    State ^= State << 25;
    State ^= State >> 27;
    Data[I] ^= static_cast<uint8_t>((State * 0x2545F4914F6CDD1Dull) >> 56);
  }
}
