//===-- workloads/StunnelWorkload.cpp -------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/StunnelWorkload.h"

#include "workloads/SimServices.h"

#include <new>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

/// One encrypted message in flight; owned by exactly one side at a time.
struct Message {
  std::vector<uint8_t> Payload;
};

/// A single-slot duplex "socket" between one client and its server
/// thread.
template <typename P> struct Connection {
  typename P::Mutex Mut;
  typename P::CondVar Ready;
  typename P::template Counted<Message> ClientToServer;
  typename P::template Counted<Message> ServerToClient;
  unsigned Id = 0;
  unsigned NumMessages = 0;
  size_t MessageBytes = 0;
  uint64_t Key = 0;
  uint64_t ClientChecksum = 0;
};

template <typename P> void serverBody(Connection<P> *Conn) {
  StreamCipher Decrypt(Conn->Key + Conn->Id);
  StreamCipher Encrypt(Conn->Key + Conn->Id + 1000);
  for (unsigned M = 0; M != Conn->NumMessages; ++M) {
    Message *Msg = nullptr;
    {
      typename P::UniqueLock Lock(Conn->Mut);
      Conn->Ready.wait(
          Lock, [&] { return Conn->ClientToServer.load() != nullptr; });
      Msg = Conn->ClientToServer.castOut(SHARC_SITE("conn->c2s"));
      Conn->Ready.notifyAll();
    }
    // Private: decrypt, "process" (echo), re-encrypt for the way back.
    Decrypt.apply(Msg->Payload.data(), Msg->Payload.size());
    Encrypt.apply(Msg->Payload.data(), Msg->Payload.size());
    {
      typename P::UniqueLock Lock(Conn->Mut);
      Conn->Ready.wait(
          Lock, [&] { return Conn->ServerToClient.load() == nullptr; });
      Message *Transfer = Msg;
      Msg = nullptr;
      Conn->ServerToClient.store(P::castIn(Transfer, SHARC_SITE("msg")));
      Conn->Ready.notifyAll();
    }
  }
}

template <typename P> void clientBody(Connection<P> *Conn) {
  StreamCipher Encrypt(Conn->Key + Conn->Id);
  StreamCipher Decrypt(Conn->Key + Conn->Id + 1000);
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (unsigned M = 0; M != Conn->NumMessages; ++M) {
    void *Mem = P::alloc(sizeof(Message));
    Message *Msg = new (Mem) Message();
    Msg->Payload.resize(Conn->MessageBytes);
    for (size_t I = 0; I != Msg->Payload.size(); ++I)
      Msg->Payload[I] = static_cast<uint8_t>(I + M + Conn->Id);
    Encrypt.apply(Msg->Payload.data(), Msg->Payload.size());
    {
      typename P::UniqueLock Lock(Conn->Mut);
      Conn->Ready.wait(
          Lock, [&] { return Conn->ClientToServer.load() == nullptr; });
      Message *Transfer = Msg;
      Msg = nullptr;
      Conn->ClientToServer.store(P::castIn(Transfer, SHARC_SITE("msg")));
      Conn->Ready.notifyAll();
    }
    Message *Reply = nullptr;
    {
      typename P::UniqueLock Lock(Conn->Mut);
      Conn->Ready.wait(
          Lock, [&] { return Conn->ServerToClient.load() != nullptr; });
      Reply = Conn->ServerToClient.castOut(SHARC_SITE("conn->s2c"));
      Conn->Ready.notifyAll();
    }
    Decrypt.apply(Reply->Payload.data(), Reply->Payload.size());
    for (uint8_t Byte : Reply->Payload) {
      Hash ^= Byte;
      Hash *= 0x100000001b3ull;
    }
    Reply->~Message();
    P::dealloc(Reply);
  }
  Conn->ClientChecksum = Hash;
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runStunnel(const StunnelConfig &Config) {
  // Main initializes each connection's data before spawning its threads
  // (the paper: "the main thread initializes data for each client thread
  // before spawning them").
  std::vector<Connection<P> *> Connections;
  for (unsigned C = 0; C != Config.NumClients; ++C) {
    void *Mem = P::alloc(sizeof(Connection<P>));
    auto *Conn = new (Mem) Connection<P>();
    Conn->Id = C;
    Conn->NumMessages = Config.MessagesPerClient;
    Conn->MessageBytes = Config.MessageBytes;
    Conn->Key = Config.Key;
    Connections.push_back(Conn);
  }

  std::vector<typename P::Thread> Threads;
  for (auto *Conn : Connections) {
    Threads.emplace_back([Conn] { serverBody<P>(Conn); });
    Threads.emplace_back([Conn] { clientBody<P>(Conn); });
  }
  for (auto &T : Threads)
    T.join();

  WorkloadResult Result;
  for (auto *Conn : Connections) {
    Result.Checksum ^= Conn->ClientChecksum;
    Conn->~Connection();
    P::dealloc(Conn);
  }
  Result.WorkUnits = static_cast<uint64_t>(Config.NumClients) *
                     Config.MessagesPerClient * Config.MessageBytes;
  // Each byte is generated, encrypted, decrypted, re-encrypted, decrypted
  // and folded: ~6 passes.
  Result.TotalMemoryAccessesEstimate = Result.WorkUnits * 6;
  Result.PeakPayloadBytesEstimate =
      static_cast<uint64_t>(Config.NumClients) *
      (2 * Config.MessageBytes + sizeof(Connection<UncheckedPolicy>));
  Result.MaxThreads = 2 * Config.NumClients + 1; // paper row: 3 concurrent
  Result.Annotations = 20; // paper's stunnel row
  Result.OtherChanges = 22;
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runStunnel<UncheckedPolicy>(const StunnelConfig &);
template WorkloadResult
sharc::workloads::runStunnel<SharcPolicy>(const StunnelConfig &);
