//===-- workloads/FftwWorkload.cpp ----------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/FftwWorkload.h"

#include "workloads/Fft.h"

#include <cmath>
#include <new>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

/// One FFT job: an owned array slice plus its size.
struct FftJob {
  uint32_t Index = 0;
  std::vector<Complex> Data;
};

template <typename P> struct FftState {
  static constexpr unsigned QueueDepth = 4;
  typename P::Mutex Mut;
  typename P::CondVar Ready;
  typename P::template Counted<FftJob> InSlots[QueueDepth];
  typename P::template Counted<FftJob> OutSlots[QueueDepth];
  typename P::template Locked<unsigned> Submitted;
  typename P::template Locked<unsigned> Taken;
  typename P::template Locked<unsigned> Collected;
  unsigned TotalJobs = 0;

  FftState() : Submitted(Mut, 0u), Taken(Mut, 0u), Collected(Mut, 0u) {}
};

template <typename P> void fftWorkerBody(FftState<P> *State) {
  while (true) {
    FftJob *Mine = nullptr;
    {
      typename P::UniqueLock Lock(State->Mut);
      while (true) {
        unsigned Taken = State->Taken.read(SHARC_SITE("state->taken"));
        if (Taken >= State->TotalJobs)
          return;
        unsigned Submitted =
            State->Submitted.read(SHARC_SITE("state->submitted"));
        if (Taken < Submitted) {
          unsigned Slot = Taken % FftState<P>::QueueDepth;
          State->Taken.write(Taken + 1, SHARC_SITE("state->taken"));
          Mine = State->InSlots[Slot].castOut(SHARC_SITE("inSlots[slot]"));
          State->Ready.notifyAll();
          break;
        }
        State->Ready.wait(Lock);
      }
    }
    // Private compute: forward transform, then inverse to validate.
    fftInPlace(Mine->Data, /*Inverse=*/false);
    {
      typename P::UniqueLock Lock(State->Mut);
      unsigned Slot = Mine->Index % FftState<P>::QueueDepth;
      // Deposit only within the coordinator's collection window (see the
      // pbzip2 workload for the out-of-order hazard this prevents).
      while (State->Collected.read(SHARC_SITE("state->collected")) +
                 FftState<P>::QueueDepth <=
             Mine->Index)
        State->Ready.wait(Lock);
      FftJob *Transfer = Mine;
      Mine = nullptr;
      State->OutSlots[Slot].store(P::castIn(Transfer, SHARC_SITE("mine")));
      State->Ready.notifyAll();
    }
  }
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runFftw(const FftwConfig &Config) {
  void *StateMem = P::alloc(sizeof(FftState<P>));
  auto *State = new (StateMem) FftState<P>();
  State->TotalJobs = Config.NumTransforms;

  std::vector<typename P::Thread> Workers;
  for (unsigned I = 0; I != Config.NumWorkers; ++I)
    Workers.emplace_back([State] { fftWorkerBody<P>(State); });

  uint64_t Rng = Config.Seed ? Config.Seed : 1;
  auto NextDouble = [&Rng]() {
    Rng ^= Rng >> 12;
    Rng ^= Rng << 25;
    Rng ^= Rng >> 27;
    return static_cast<double>((Rng * 0x2545F4914F6CDD1Dull) >> 11) /
           9007199254740992.0;
  };

  unsigned Fed = 0;
  unsigned Collected = 0;
  double SpectralSum = 0;
  while (Collected < Config.NumTransforms) {
    typename P::UniqueLock Lock(State->Mut);
    bool FedThisRound = false;
    while (Fed < Config.NumTransforms &&
           State->Submitted.read(SHARC_SITE("state->submitted")) <
               State->Taken.read(SHARC_SITE("state->taken")) +
                   FftState<P>::QueueDepth) {
      unsigned Slot = Fed % FftState<P>::QueueDepth;
      if (State->InSlots[Slot].load() != nullptr)
        break;
      void *Mem = P::alloc(sizeof(FftJob));
      FftJob *Job = new (Mem) FftJob();
      Job->Index = Fed;
      Job->Data.resize(Config.TransformSize);
      for (Complex &C : Job->Data)
        C = Complex(NextDouble() - 0.5, NextDouble() - 0.5);
      State->InSlots[Slot].store(P::castIn(Job, SHARC_SITE("job")));
      unsigned Submitted =
          State->Submitted.read(SHARC_SITE("state->submitted"));
      State->Submitted.write(Submitted + 1,
                             SHARC_SITE("state->submitted"));
      ++Fed;
      FedThisRound = true;
      State->Ready.notifyAll();
    }
    bool Progress = false;
    {
      unsigned Slot = Collected % FftState<P>::QueueDepth;
      FftJob *Out = State->OutSlots[Slot].load();
      if (Out && Out->Index == Collected) {
        Out = State->OutSlots[Slot].castOut(SHARC_SITE("outSlots[slot]"));
        // Reclaimed: private to the coordinator again.
        for (const Complex &C : Out->Data)
          SpectralSum += std::abs(C);
        Out->~FftJob();
        P::dealloc(Out);
        ++Collected;
        State->Collected.write(Collected, SHARC_SITE("state->collected"));
        Progress = true;
        State->Ready.notifyAll();
      }
    }
    if (!Progress && !FedThisRound && Collected < Config.NumTransforms)
      State->Ready.wait(Lock);
  }
  for (auto &T : Workers)
    T.join();

  WorkloadResult Result;
  Result.Checksum = static_cast<uint64_t>(SpectralSum);
  Result.WorkUnits =
      static_cast<uint64_t>(Config.NumTransforms) * Config.TransformSize;
  // n log n complex operations, ~4 accesses each.
  double LogN = std::log2(static_cast<double>(Config.TransformSize));
  Result.TotalMemoryAccessesEstimate = static_cast<uint64_t>(
      static_cast<double>(Result.WorkUnits) * LogN * 4.0) *
      sizeof(Complex);
  Result.PeakPayloadBytesEstimate =
      static_cast<uint64_t>(FftState<P>::QueueDepth + Config.NumWorkers + 1) *
      Config.TransformSize * sizeof(Complex);
  Result.MaxThreads = Config.NumWorkers + 1; // paper row: 3
  Result.Annotations = 7; // paper's fftw row
  Result.OtherChanges = 39;
  State->~FftState();
  P::dealloc(State);
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runFftw<UncheckedPolicy>(const FftwConfig &);
template WorkloadResult
sharc::workloads::runFftw<SharcPolicy>(const FftwConfig &);
