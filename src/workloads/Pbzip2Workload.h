//===-- workloads/Pbzip2Workload.h - Parallel block compression -*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pbzip2 benchmark: "a parallel implementation of the block-based
/// bzip2 compression algorithm ... threads for file I/O, and an arbitrary
/// number of threads for (de)compressing data blocks, which the
/// file-reader thread arranges into a shared queue. The functions that
/// perform the (de)compression assume they have ownership of the blocks,
/// and so we annotate their arguments as private."
///
/// SharC port: the block queue slots are counted (ownership moves with
/// sharing casts), queue indices are locked, and the compression kernel
/// runs on private blocks with no checks.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_PBZIP2WORKLOAD_H
#define SHARC_WORKLOADS_PBZIP2WORKLOAD_H

#include "workloads/Policy.h"

namespace sharc {
namespace workloads {

struct Pbzip2Config {
  unsigned NumWorkers = 3;
  unsigned NumBlocks = 12;
  size_t BlockBytes = 8192;
  uint64_t Seed = 1234;
  bool Verify = false;     ///< Round-trip decompress and compare (tests).
  bool Decompress = false; ///< Run the decompression pipeline: blocks are
                           ///< pre-compressed by the reader role and the
                           ///< workers decompress (the paper's pbzip2 has
                           ///< threads for both directions).
};

template <typename PolicyT>
WorkloadResult runPbzip2(const Pbzip2Config &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_PBZIP2WORKLOAD_H
