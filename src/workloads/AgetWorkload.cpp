//===-- workloads/AgetWorkload.cpp ----------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/AgetWorkload.h"

#include "workloads/SimServices.h"

#include <algorithm>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

template <typename P> struct DownloadState {
  typename P::Mutex Mut;
  typename P::template Locked<uint64_t> BytesDone;
  uint8_t *Output = nullptr;
  const SimNet *Net = nullptr;
  uint64_t ResourceId = 0;

  DownloadState() : BytesDone(Mut, uint64_t(0)) {}
};

template <typename P>
void downloaderBody(DownloadState<P> *State, size_t Begin, size_t End,
                    size_t ChunkBytes) {
  std::vector<uint8_t> Chunk(ChunkBytes);
  for (size_t Offset = Begin; Offset < End; Offset += ChunkBytes) {
    size_t Len = std::min(ChunkBytes, End - Offset);
    // Fetch into a private chunk buffer (network latency applies), then
    // publish into the shared (dynamic) output buffer under one checked
    // range write.
    State->Net->fetch(State->ResourceId, Offset, Chunk.data(), Len);
    if (P::Checked)
      P::writeRange(State->Output + Offset, Len, SHARC_SITE("output[off]"));
    std::copy(Chunk.begin(), Chunk.begin() + static_cast<long>(Len),
              State->Output + Offset);
    typename P::LockGuard Lock(State->Mut);
    uint64_t Done = State->BytesDone.read(SHARC_SITE("state->bytesDone"));
    State->BytesDone.write(Done + Len, SHARC_SITE("state->bytesDone"));
  }
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runAget(const AgetConfig &Config) {
  SimNet Net(Config.LatencyNanos);
  auto *State = new DownloadState<P>();
  State->Net = &Net;
  State->ResourceId = Config.ResourceId;
  State->Output = static_cast<uint8_t *>(P::alloc(Config.TotalBytes));

  size_t PerThread =
      (Config.TotalBytes + Config.NumThreads - 1) / Config.NumThreads;
  std::vector<typename P::Thread> Threads;
  for (unsigned I = 0; I != Config.NumThreads; ++I) {
    size_t Begin = static_cast<size_t>(I) * PerThread;
    size_t End = std::min(Config.TotalBytes, Begin + PerThread);
    if (Begin >= End)
      break;
    Threads.emplace_back([State, Begin, End, &Config] {
      downloaderBody<P>(State, Begin, End, Config.ChunkBytes);
    });
  }
  for (auto &T : Threads)
    T.join();

  // FNV checksum of the downloaded file.
  uint64_t Hash = 0xcbf29ce484222325ull;
  for (size_t I = 0; I != Config.TotalBytes; ++I) {
    Hash ^= State->Output[I];
    Hash *= 0x100000001b3ull;
  }

  WorkloadResult Result;
  Result.Checksum = Hash;
  Result.WorkUnits = Config.TotalBytes;
  // fetch fill (w), publish copy (r+w), checksum (r), and per-chunk
  // bookkeeping: ~12 byte-accesses per downloaded byte (the protocol and
  // buffer handling around each transfer dwarf the publish itself, as in
  // the real aget); the checked publish writes are the dynamic share.
  Result.TotalMemoryAccessesEstimate = 12 * Config.TotalBytes;
  Result.PeakPayloadBytesEstimate =
      Config.TotalBytes + Config.NumThreads * Config.ChunkBytes;
  Result.MaxThreads = Config.NumThreads + 1;
  Result.Annotations = 7; // paper's aget row
  Result.OtherChanges = 7;
  P::dealloc(State->Output);
  delete State;
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runAget<UncheckedPolicy>(const AgetConfig &);
template WorkloadResult
sharc::workloads::runAget<SharcPolicy>(const AgetConfig &);
