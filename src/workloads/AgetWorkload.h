//===-- workloads/AgetWorkload.h - Download accelerator ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aget benchmark: "a download accelerator. It spawns several threads
/// that each download pieces of a file." The network is simulated with
/// deterministic latency-bound fetches (DESIGN.md substitution); like the
/// paper's run, the workload is network bound and the instrumentation
/// overhead should vanish in the noise.
///
/// SharC port: the output buffer is shared between downloader threads
/// (disjoint regions) and is inferred dynamic; the progress counter is
/// locked. [wrapper uses mirror the paper's 7 annotations]
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_AGETWORKLOAD_H
#define SHARC_WORKLOADS_AGETWORKLOAD_H

#include "workloads/Policy.h"

namespace sharc {
namespace workloads {

struct AgetConfig {
  unsigned NumThreads = 4;
  uint64_t ResourceId = 7;
  size_t TotalBytes = 1u << 20;
  size_t ChunkBytes = 8192;
  uint64_t LatencyNanos = 50000; ///< Per-fetch simulated network latency.
};

template <typename PolicyT> WorkloadResult runAget(const AgetConfig &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_AGETWORKLOAD_H
