//===-- workloads/SimServices.h - Simulated external services ---*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Simulated stand-ins for the external resources the paper's benchmarks
/// depended on (documented as substitutions in DESIGN.md):
///
///   - SimNet: the network aget downloaded a kernel tarball from. Serves
///     deterministic bytes per (resource, offset) after a configurable
///     busy-wait latency, so the workload stays network-*shaped* (latency
///     bound) without a real network.
///   - simDnsResolve: the DNS server dillo queried via gethostbyname.
///   - StreamCipher: the OpenSSL cipher stunnel wrapped connections in; a
///     keystream cipher with the same in-place byte-transform shape.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_SIMSERVICES_H
#define SHARC_WORKLOADS_SIMSERVICES_H

#include <cstddef>
#include <cstdint>
#include <string>

namespace sharc {
namespace workloads {

/// Deterministic latency-bound byte server.
class SimNet {
public:
  /// \param LatencyNanos busy-wait applied to every fetch call.
  explicit SimNet(uint64_t LatencyNanos) : LatencyNanos(LatencyNanos) {}

  /// Fills [Out, Out+Len) with the bytes of \p Resource at \p Offset.
  void fetch(uint64_t Resource, uint64_t Offset, uint8_t *Out,
             size_t Len) const;

  /// The byte the server holds at a position (for verification).
  static uint8_t byteAt(uint64_t Resource, uint64_t Offset);

private:
  uint64_t LatencyNanos;
};

/// Resolves a hostname to an IPv4-ish address after \p LatencyNanos of
/// simulated lookup latency.
uint32_t simDnsResolve(const std::string &Hostname, uint64_t LatencyNanos);

/// Busy-waits for approximately \p Nanos nanoseconds (monotonic clock);
/// used to model latency without descheduling on 1-core CI boxes.
void spinFor(uint64_t Nanos);

/// Symmetric keystream cipher (xorshift64* keystream).
class StreamCipher {
public:
  explicit StreamCipher(uint64_t Key) : State(Key ? Key : 0x9E3779B9) {}

  /// Encrypts or decrypts (same operation) in place.
  void apply(uint8_t *Data, size_t Len);

private:
  uint64_t State;
};

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_SIMSERVICES_H
