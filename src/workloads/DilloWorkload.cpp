//===-- workloads/DilloWorkload.cpp ---------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "workloads/DilloWorkload.h"

#include "workloads/SimServices.h"

#include <cstdio>
#include <cstring>
#include <new>
#include <string>
#include <vector>

using namespace sharc;
using namespace sharc::workloads;

namespace {

/// One DNS request; owned by whichever side currently processes it. The
/// hostname is stored inline so the whole request lives in checked heap
/// memory (freeing it clears its shadow state).
struct Request {
  char Hostname[40] = {};
  uint32_t Address = 0;
  bool Resolved = false;
};

template <typename P> struct ResolverState {
  static constexpr unsigned QueueDepth = 8;
  typename P::Mutex Mut;
  typename P::CondVar Ready;
  typename P::template Counted<Request> Pending[QueueDepth];
  typename P::template Locked<unsigned> Submitted;
  typename P::template Locked<unsigned> Taken;
  typename P::template Locked<unsigned> Done;
  typename P::template Locked<uint64_t> AddressSum;
  /// The paper's dillo quirk: integers cast to pointer type flow into
  /// counted slots, so every distinct address value lands in the
  /// reference-count table ("these bogus pointers are never dereferenced,
  /// but we incur [memory overhead] when their reference counts are
  /// adjusted").
  typename P::template Counted<void> LastAddressBogus;
  unsigned TotalRequests = 0;
  uint64_t LatencyNanos = 0;

  ResolverState()
      : Submitted(Mut, 0u), Taken(Mut, 0u), Done(Mut, 0u),
        AddressSum(Mut, uint64_t(0)) {}
};

template <typename P> void resolverBody(ResolverState<P> *State) {
  while (true) {
    Request *Mine = nullptr;
    {
      typename P::UniqueLock Lock(State->Mut);
      while (true) {
        unsigned Taken = State->Taken.read(SHARC_SITE("state->taken"));
        if (Taken >= State->TotalRequests)
          return;
        unsigned Submitted =
            State->Submitted.read(SHARC_SITE("state->submitted"));
        if (Taken < Submitted) {
          unsigned Slot = Taken % ResolverState<P>::QueueDepth;
          State->Taken.write(Taken + 1, SHARC_SITE("state->taken"));
          Mine = State->Pending[Slot].castOut(SHARC_SITE("pending[slot]"));
          State->Ready.notifyAll();
          break;
        }
        State->Ready.wait(Lock);
      }
    }
    // Request processing: in the paper's port the request structures
    // stayed in the inferred dynamic mode (only the handler arguments were
    // annotated private), so the hostname bytes and result fields are
    // checked dynamically here.
    if (P::Checked) {
      P::readRange(Mine->Hostname, sizeof(Mine->Hostname),
                   SHARC_SITE("req->hostname"));
      P::writeRange(&Mine->Address, sizeof(Mine->Address),
                    SHARC_SITE("req->address"));
      P::writeRange(&Mine->Resolved, sizeof(Mine->Resolved),
                    SHARC_SITE("req->resolved"));
    }
    Mine->Address =
        simDnsResolve(std::string(Mine->Hostname), State->LatencyNanos);
    Mine->Resolved = true;
    {
      typename P::UniqueLock Lock(State->Mut);
      uint64_t Sum = State->AddressSum.read(SHARC_SITE("state->sum"));
      State->AddressSum.write(Sum + Mine->Address,
                              SHARC_SITE("state->sum"));
      // Bogus-pointer store: the integer address in a counted slot.
      State->LastAddressBogus.store(
          reinterpret_cast<void *>(static_cast<uintptr_t>(Mine->Address)));
      unsigned Done = State->Done.read(SHARC_SITE("state->done"));
      State->Done.write(Done + 1, SHARC_SITE("state->done"));
      State->Ready.notifyAll();
    }
    Mine->~Request();
    P::dealloc(Mine);
  }
}

} // namespace

template <typename P>
WorkloadResult sharc::workloads::runDillo(const DilloConfig &Config) {
  void *StateMem = P::alloc(sizeof(ResolverState<P>));
  auto *State = new (StateMem) ResolverState<P>();
  State->TotalRequests = Config.NumRequests;
  State->LatencyNanos = Config.LatencyNanos;

  std::vector<typename P::Thread> Workers;
  for (unsigned I = 0; I != Config.NumWorkers; ++I)
    Workers.emplace_back([State] { resolverBody<P>(State); });

  // Browser role: submit hostnames as page parsing "discovers" them.
  uint64_t Rng = Config.Seed ? Config.Seed : 1;
  for (unsigned R = 0; R != Config.NumRequests; ++R) {
    Rng = Rng * 6364136223846793005ull + 1442695040888963407ull;
    void *Mem = P::alloc(sizeof(Request));
    Request *Req = new (Mem) Request();
    std::snprintf(Req->Hostname, sizeof(Req->Hostname),
                  "host%u.example.com",
                  static_cast<unsigned>(Rng % 1000));
    typename P::UniqueLock Lock(State->Mut);
    State->Ready.wait(Lock, [&] {
      unsigned Submitted =
          State->Submitted.read(SHARC_SITE("state->submitted"));
      unsigned Taken = State->Taken.read(SHARC_SITE("state->taken"));
      return Submitted - Taken < ResolverState<P>::QueueDepth;
    });
    unsigned Submitted =
        State->Submitted.read(SHARC_SITE("state->submitted"));
    unsigned Slot = Submitted % ResolverState<P>::QueueDepth;
    State->Pending[Slot].store(P::castIn(Req, SHARC_SITE("req")));
    State->Submitted.write(Submitted + 1, SHARC_SITE("state->submitted"));
    State->Ready.notifyAll();
  }
  // Wait for completion.
  {
    typename P::UniqueLock Lock(State->Mut);
    State->Ready.wait(Lock, [&] {
      return State->Done.read(SHARC_SITE("state->done")) ==
             Config.NumRequests;
    });
  }
  for (auto &T : Workers)
    T.join();

  WorkloadResult Result;
  {
    typename P::LockGuard Lock(State->Mut);
    Result.Checksum = State->AddressSum.read(SHARC_SITE("state->sum"));
  }
  Result.WorkUnits = Config.NumRequests;
  // Hostname construction (~24B write + read) plus the checked resolve
  // accesses: roughly a third of the byte-accesses are dynamic
  // (paper: 31.7%).
  Result.TotalMemoryAccessesEstimate =
      static_cast<uint64_t>(Config.NumRequests) * 96;
  Result.PeakPayloadBytesEstimate =
      static_cast<uint64_t>(Config.NumRequests) * sizeof(Request);
  Result.MaxThreads = Config.NumWorkers + 1; // paper row: 4
  Result.Annotations = 8; // paper's dillo row
  Result.OtherChanges = 8;
  State->LastAddressBogus.store(nullptr);
  State->~ResolverState();
  P::dealloc(State);
  P::quiesce();
  return Result;
}

template WorkloadResult
sharc::workloads::runDillo<UncheckedPolicy>(const DilloConfig &);
template WorkloadResult
sharc::workloads::runDillo<SharcPolicy>(const DilloConfig &);
