//===-- workloads/Fft.h - Radix-2 FFT ---------------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An iterative radix-2 Cooley-Tukey FFT over complex doubles: the
/// substrate for the fftw benchmark workload ("32 random FFTs", computed
/// by dividing arrays among worker threads).
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_FFT_H
#define SHARC_WORKLOADS_FFT_H

#include <complex>
#include <cstddef>
#include <vector>

namespace sharc {
namespace workloads {

using Complex = std::complex<double>;

/// In-place FFT; Size must be a power of two. Inverse = true applies the
/// inverse transform including the 1/N scaling.
void fftInPlace(Complex *Data, size_t Size, bool Inverse);

/// Convenience overload.
void fftInPlace(std::vector<Complex> &Data, bool Inverse);

/// \returns the maximum absolute element difference, used by tests to
/// verify round trips.
double maxAbsDiff(const std::vector<Complex> &A,
                  const std::vector<Complex> &B);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_FFT_H
