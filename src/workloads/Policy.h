//===-- workloads/Policy.h - Instrumentation policies -----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Each benchmark workload is written once, templated over a Policy that
/// supplies threads, locks, condition variables, heap, checked accesses,
/// counted pointer slots, and sharing casts:
///
///   - UncheckedPolicy: plain std:: primitives and raw accesses. This is
///     the paper's "Orig." column.
///   - SharcPolicy: sharc::Thread/Mutex/CondVar, the sharc heap, dynamic
///     checks, counted slots and SCASTs. This is the "SharC" column.
///
/// The annotation API used by SharcPolicy is the same public API the
/// examples use (rt/Annotations.h); benchmarks count their uses of it for
/// Table 1's "Annots." column.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_POLICY_H
#define SHARC_WORKLOADS_POLICY_H

#include "rt/Sharc.h"

#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <type_traits>

namespace sharc {
namespace workloads {

/// The uninstrumented baseline: no checks, no metadata.
struct UncheckedPolicy {
  static constexpr bool Checked = false;
  static const char *name() { return "orig"; }

  using Thread = std::thread;
  using Mutex = std::mutex;
  using UniqueLock = std::unique_lock<std::mutex>;
  using LockGuard = std::lock_guard<std::mutex>;
  class CondVar {
  public:
    void wait(UniqueLock &Lock) { Impl.wait(Lock); }
    template <typename PredT> void wait(UniqueLock &Lock, PredT Pred) {
      Impl.wait(Lock, std::move(Pred));
    }
    void notifyOne() { Impl.notify_one(); }
    void notifyAll() { Impl.notify_all(); }

  private:
    std::condition_variable Impl;
  };

  static void *alloc(size_t Size) { return std::malloc(Size); }
  static void dealloc(void *Ptr) { std::free(Ptr); }

  template <typename T> static T read(const T *Ptr, const AccessSite *) {
    return *Ptr;
  }
  template <typename T>
  static void write(T *Ptr, T Value, const AccessSite *) {
    *Ptr = Value;
  }
  static void readRange(const void *, size_t, const AccessSite *) {}
  static void writeRange(void *, size_t, const AccessSite *) {}

  /// A counted pointer slot: plain pointer in the baseline.
  template <typename T> class Counted {
  public:
    void store(T *Value) { Ptr = Value; }
    T *load() const { return Ptr; }
    /// Sharing cast out of the slot: take and null.
    T *castOut(const AccessSite *) {
      T *Value = Ptr;
      Ptr = nullptr;
      return Value;
    }

  private:
    T *Ptr = nullptr;
  };

  template <typename T> static T *castIn(T *&Local, const AccessSite *) {
    T *Value = Local;
    Local = nullptr;
    return Value;
  }

  /// A lock-protected cell: plain in the baseline.
  template <typename T> class Locked {
  public:
    explicit Locked(Mutex &) {}
    Locked(Mutex &, T Init) : Value(std::move(Init)) {}
    T read(const AccessSite *) const { return Value; }
    void write(T NewValue, const AccessSite *) {
      Value = std::move(NewValue);
    }

  private:
    T Value{};
  };

  /// A thread-owned value: plain in the baseline (the checked variant
  /// asserts the owner; adopt() marks an ownership transfer).
  template <typename T> class Private {
  public:
    Private() : Value() {}
    explicit Private(T Init) : Value(std::move(Init)) {}
    const T &get() const { return Value; }
    T &get() { return Value; }
    void set(T NewValue) { Value = std::move(NewValue); }
    void adopt() {}

  private:
    T Value;
  };

  /// An init-once value: plain in the baseline.
  template <typename T> class ReadOnly {
  public:
    ReadOnly() : Value() {}
    void init(T NewValue) { Value = std::move(NewValue); }
    const T &get() const { return Value; }

  private:
    T Value;
  };

  /// An intentionally racy cell. The baseline also uses relaxed atomics —
  /// same machine cost as a plain access on every mainstream target, and
  /// the "orig" column stays UB-free C++.
  template <typename T> class Racy {
    static_assert(std::is_trivially_copyable_v<T> && sizeof(T) <= 8,
                  "racy values must be small and trivially copyable");

  public:
    Racy() : Value() {}
    explicit Racy(T Init) : Value(Init) {}
    T read() const {
      return std::atomic_ref<T>(const_cast<T &>(Value))
          .load(std::memory_order_relaxed);
    }
    void write(T NewValue) {
      std::atomic_ref<T>(Value).store(NewValue, std::memory_order_relaxed);
    }

  private:
    T Value;
  };

  /// Drains instrumentation state at the end of a run (no-op here).
  static void quiesce() {}
};

/// The SharC-instrumented variant.
struct SharcPolicy {
  static constexpr bool Checked = true;
  static const char *name() { return "sharc"; }

  using Thread = sharc::Thread;
  using Mutex = sharc::Mutex;
  using UniqueLock = sharc::UniqueLock;
  using LockGuard = sharc::LockGuard;
  using CondVar = sharc::CondVar;

  static void *alloc(size_t Size) { return sharc::allocBytes(Size); }
  static void dealloc(void *Ptr) { sharc::freeBytes(Ptr); }

  template <typename T> static T read(const T *Ptr, const AccessSite *Site) {
    return sharc::read(Ptr, Site);
  }
  template <typename T>
  static void write(T *Ptr, T Value, const AccessSite *Site) {
    sharc::write(Ptr, std::move(Value), Site);
  }
  static void readRange(const void *Ptr, size_t Size,
                        const AccessSite *Site) {
    sharc::readRange(Ptr, Size, Site);
  }
  static void writeRange(void *Ptr, size_t Size, const AccessSite *Site) {
    sharc::writeRange(Ptr, Size, Site);
  }

  template <typename T> class Counted {
  public:
    void store(T *Value) { Slot.store(Value); }
    T *load() const { return Slot.load(); }
    T *castOut(const AccessSite *Site) {
      return sharc::scastOut(Slot, Site);
    }

  private:
    sharc::Counted<T> Slot;
  };

  template <typename T> static T *castIn(T *&Local, const AccessSite *Site) {
    return sharc::scastIn(Local, Site);
  }

  template <typename T> using Locked = sharc::Locked<T>;
  template <typename T> using Private = sharc::Private<T>;
  template <typename T> using ReadOnly = sharc::ReadOnly<T>;
  template <typename T> using Racy = sharc::Racy<T>;

  /// Runs a reference-count collection so that pending Levanoni-Petrank
  /// logs naming a workload's counted slots are drained before the slots'
  /// storage is destroyed.
  static void quiesce() {
    rt::Runtime &RT = rt::Runtime::get();
    RT.getRc().collect(RT.currentThread());
  }
};

/// Common result record every workload returns; the bench harness turns
/// these into Table 1 rows.
struct WorkloadResult {
  uint64_t Checksum = 0;   ///< For validating orig and sharc agree.
  uint64_t WorkUnits = 0;  ///< Workload-specific unit (bytes, requests...).
  uint64_t TotalMemoryAccessesEstimate = 0; ///< Denominator for %dynamic
                                            ///< (byte-level accesses).
  uint64_t PeakPayloadBytesEstimate = 0;    ///< Denominator for memory
                                            ///< overhead (the paper's
                                            ///< pagefault baseline).
  unsigned MaxThreads = 0; ///< Table 1 "Threads" column.
  unsigned Annotations = 0; ///< Wrapper/cast uses in the SharC port.
  unsigned OtherChanges = 0; ///< Non-annotation changes in the port.
};

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_POLICY_H
