//===-- workloads/Compressor.h - Block compressor ---------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A real block compressor in the style of bzip2 -- the substrate for the
/// pbzip2 benchmark workload. Pipeline per block:
///
///   BWT (cyclic suffix sorting by prefix doubling)
///   -> move-to-front
///   -> run-length encoding
///   -> canonical Huffman coding
///
/// All functions are pure over byte vectors: blocks are *private* to the
/// compressing thread (exactly the paper's annotation for pbzip2's
/// (de)compression functions), so the kernel itself carries no checks in
/// either policy.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_COMPRESSOR_H
#define SHARC_WORKLOADS_COMPRESSOR_H

#include <cstdint>
#include <vector>

namespace sharc {
namespace workloads {

using ByteVec = std::vector<uint8_t>;

/// Burrows-Wheeler transform of \p Input (cyclic rotations).
/// \param [out] PrimaryIndex row of the original string in sorted order.
ByteVec bwtForward(const ByteVec &Input, uint32_t &PrimaryIndex);

/// Inverse BWT.
ByteVec bwtInverse(const ByteVec &Bwt, uint32_t PrimaryIndex);

/// Move-to-front coding and its inverse.
ByteVec mtfForward(const ByteVec &Input);
ByteVec mtfInverse(const ByteVec &Input);

/// Byte-run RLE: a repeated byte pair is followed by an extra-run count.
ByteVec rleCompress(const ByteVec &Input);
ByteVec rleDecompress(const ByteVec &Input);

/// Canonical Huffman coding. The encoded form carries a 256-entry code
/// length header.
ByteVec huffmanCompress(const ByteVec &Input);
ByteVec huffmanDecompress(const ByteVec &Input);

/// Whole-pipeline block compression (BWT+MTF+RLE+Huffman with a small
/// header) and decompression.
ByteVec compressBlock(const ByteVec &Input);
ByteVec decompressBlock(const ByteVec &Compressed);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_COMPRESSOR_H
