//===-- workloads/TextCorpus.h - Synthetic file tree ------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The pfscan benchmark substrate: a deterministic in-memory file tree of
/// pseudo-text (the paper searched the author's home directory, held in
/// the OS buffer cache -- an in-memory corpus reproduces exactly that
/// steady state), plus Boyer-Moore-Horspool substring search.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_TEXTCORPUS_H
#define SHARC_WORKLOADS_TEXTCORPUS_H

#include <cstdint>
#include <string>
#include <vector>

namespace sharc {
namespace workloads {

/// One synthetic file.
struct CorpusFile {
  std::string Path;
  std::vector<uint8_t> Contents;
};

/// Deterministically generates \p NumFiles pseudo-text files of about
/// \p BytesPerFile bytes each, with the needle planted at a seeded subset
/// of positions so searches have verifiable hit counts.
std::vector<CorpusFile> makeCorpus(unsigned NumFiles, size_t BytesPerFile,
                                   const std::string &Needle, uint64_t Seed);

/// Boyer-Moore-Horspool count of occurrences of \p Needle in
/// [Data, Data+Size).
uint64_t countOccurrences(const uint8_t *Data, size_t Size,
                          const std::string &Needle);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_TEXTCORPUS_H
