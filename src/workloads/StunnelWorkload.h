//===-- workloads/StunnelWorkload.h - Encrypted echo server -----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The stunnel benchmark: "a tool that allows the encryption of arbitrary
/// TCP connections. It creates a thread for each client that it serves.
/// The main thread initializes data for each client thread before
/// spawning them. ... encrypting three simultaneous connections to a
/// simple echo server with each client sending and receiving 500
/// messages."
///
/// Substrate (DESIGN.md substitution): in-memory duplex channels stand in
/// for TCP sockets and a keystream cipher stands in for OpenSSL. SharC
/// port: per-client state is initialized private and published with a
/// sharing cast before the client thread is spawned; messages transfer
/// ownership through counted mailbox slots; global connection counters
/// are locked.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_WORKLOADS_STUNNELWORKLOAD_H
#define SHARC_WORKLOADS_STUNNELWORKLOAD_H

#include "workloads/Policy.h"

namespace sharc {
namespace workloads {

struct StunnelConfig {
  unsigned NumClients = 3;
  unsigned MessagesPerClient = 100;
  size_t MessageBytes = 256;
  uint64_t Key = 0xfeedface;
};

template <typename PolicyT>
WorkloadResult runStunnel(const StunnelConfig &Config);

} // namespace workloads
} // namespace sharc

#endif // SHARC_WORKLOADS_STUNNELWORKLOAD_H
