//===-- checker/Checker.h - SharC static semantics --------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static checker: Figure 4's typing judgments extended to full MiniC.
/// Runs after qualifier inference, verifies well-formedness, and emits the
/// runtime checks the dynamic semantics execute:
///
///   - REF-CTOR: a non-private reference must not point to private cells.
///   - Assignment/call/return compatibility: sub-top-level qualifiers must
///     match exactly; mismatches that a sharing cast could fix produce a
///     "suggest SCAST(...)" note (SharC suggests casts, it does not insert
///     them, since nulling the source may break the program).
///   - readonly cells are writable only when they are fields of a private
///     instance (the initialization exception of Section 2).
///   - Sharing casts may only change the outermost referent qualifier
///     ("you cannot cast from ref(dynamic ref(dynamic int)) to
///     ref(private ref(private int))").
///   - Lock expressions must be verifiably constant: unmodified locals or
///     readonly values.
///   - dynamic accesses get chkread/chkwrite; locked accesses get
///     lock-held checks, with struct-qualifier polymorphism resolved at
///     each access (a Poly field takes its instance's mode).
///   - A warning is emitted when a pointer local is definitely used after
///     being nulled by a sharing cast.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_CHECKER_CHECKER_H
#define SHARC_CHECKER_CHECKER_H

#include "checker/Instrumentation.h"
#include "minic/AST.h"
#include "support/Diagnostics.h"

#include <set>

namespace sharc {
namespace checker {

/// Effective sharing mode of an l-value occurrence, with the lock
/// expression and its instance base when the mode is Locked.
struct EffectiveMode {
  minic::Mode M = minic::Mode::Private;
  minic::Expr *LockExpr = nullptr;
  minic::Expr *LockBase = nullptr;
};

/// Runs the static semantics over an inference-annotated program.
class Checker {
public:
  Checker(minic::Program &Prog, DiagnosticEngine &Diags)
      : Prog(Prog), Diags(Diags) {}

  /// Checks the program and fills the instrumentation map.
  /// \returns true if no errors were reported.
  bool run();

  const Instrumentation &getInstrumentation() const { return Instr; }

  /// Computes the effective mode of an l-value (public for tests and the
  /// interpreter's diagnostics).
  EffectiveMode effectiveMode(minic::Expr *LValue);

private:
  void checkWellFormedType(const minic::TypeNode *T, SourceLoc Loc);
  void checkFunc(minic::FuncDecl *F);
  void checkStmt(minic::Stmt *S);
  /// Visits an expression in rvalue context: attaches read checks to
  /// l-value nodes and recurses.
  void checkExpr(minic::Expr *E);
  /// Visits an l-value used for its location only (address-of, dot-access
  /// base, assignment target): checks the base path, not the final cell.
  void visitLValuePath(minic::Expr *LV);
  /// Visits an assignment target: write check on the final cell, read
  /// checks on the base path.
  void checkLValueWrite(minic::Expr *LV, SourceLoc Loc);
  void checkAssignCompat(minic::TypeNode *Lhs, minic::TypeNode *Rhs,
                         minic::Expr *RhsExpr, SourceLoc Loc,
                         const char *What);
  void checkScast(minic::ScastExpr *Scast);
  void checkLockExprConstant(minic::Expr *Lock, SourceLoc Loc);
  void checkLiveAfterCast(minic::BlockStmt *Block);
  void attachAccessCheck(minic::Expr *LValue, bool IsWrite, SourceLoc Loc);

  /// \returns true if \p Var cannot be treated as an unmodified local for
  /// lock-constancy purposes: a parameter that is reassigned, or a local
  /// assigned more than once (one assignment is its initialization).
  bool isLocalModified(const minic::VarDecl *Var) const;

  minic::Program &Prog;
  DiagnosticEngine &Diags;
  Instrumentation Instr;
  minic::FuncDecl *CurrentFunc = nullptr;
  /// Number of assignments to each local/param in the current function
  /// (including declaration initializers and SCAST null-outs).
  std::map<const minic::VarDecl *, unsigned> AssignCounts;
};

} // namespace checker
} // namespace sharc

#endif // SHARC_CHECKER_CHECKER_H
