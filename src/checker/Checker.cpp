//===-- checker/Checker.cpp -----------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "checker/Checker.h"

using namespace sharc;
using namespace sharc::checker;
using namespace sharc::minic;

bool Checker::run() {
  unsigned ErrorsBefore = Diags.getNumErrors();
  // Well-formedness of all declared types (REF-CTOR rule).
  for (VarDecl *G : Prog.Globals)
    checkWellFormedType(G->DeclType, G->Loc);
  for (StructDecl *S : Prog.Structs)
    for (VarDecl *Field : S->Fields)
      checkWellFormedType(Field->DeclType, Field->Loc);
  for (FuncDecl *F : Prog.Funcs) {
    for (VarDecl *Param : F->Params)
      checkWellFormedType(Param->DeclType, Param->Loc);
    if (F->Body)
      checkFunc(F);
  }
  return Diags.getNumErrors() == ErrorsBefore;
}

void Checker::checkWellFormedType(const TypeNode *T, SourceLoc Loc) {
  if (!T)
    return;
  if (T->isPointer() && T->Pointee->Kind != TypeKind::Func) {
    // REF-CTOR: `m ref (m' s)` requires m = m' or m = private. In the full
    // system, any possibly-shared reference to private cells is rejected.
    if (T->Q.M != Mode::Private && T->Pointee->Q.M == Mode::Private)
      Diags.error(Loc.isValid() ? Loc : T->Loc,
                  "ill-formed type '" + typeToString(T) +
                      "': a non-private reference may not point to "
                      "private cells");
  }
  checkWellFormedType(T->Pointee, Loc);
  checkWellFormedType(T->Ret, Loc);
  for (const TypeNode *Param : T->Params)
    checkWellFormedType(Param, Loc);
}

//===----------------------------------------------------------------------===//
// Effective modes
//===----------------------------------------------------------------------===//

EffectiveMode Checker::effectiveMode(Expr *LValue) {
  EffectiveMode Result;
  auto FromType = [&](TypeNode *T, Expr *InstanceBase) {
    Result.M = T->Q.M;
    Result.LockExpr = T->Q.LockExpr;
    Result.LockBase = nullptr;
    if ((Result.M == Mode::Locked || Result.M == Mode::RwLocked) &&
        Result.LockExpr) {
      // A lock expression naming a struct field must be evaluated against
      // the instance the access goes through.
      if (auto *Name = dyn_cast<NameExpr>(Result.LockExpr))
        if (Name->Var && Name->Var->Storage == StorageKind::Field)
          Result.LockBase = InstanceBase;
    }
  };

  switch (LValue->Kind) {
  case ExprKind::Name: {
    auto *Name = cast<NameExpr>(LValue);
    if (Name->Var)
      FromType(Name->Var->DeclType, nullptr);
    return Result;
  }
  case ExprKind::Unary: {
    auto *Unary = cast<UnaryExpr>(LValue);
    if (Unary->Op == UnaryOp::Deref && Unary->Sub->ExprType &&
        Unary->Sub->ExprType->isPointer())
      FromType(Unary->Sub->ExprType->Pointee, nullptr);
    return Result;
  }
  case ExprKind::Member: {
    auto *Member = cast<MemberExpr>(LValue);
    if (!Member->Field)
      return Result;
    TypeNode *FieldType = Member->Field->DeclType;
    if (FieldType->Q.M == Mode::Poly) {
      // Struct qualifier polymorphism: the field takes its instance's
      // qualifier.
      if (Member->IsArrow) {
        TypeNode *BaseType = Member->Base->ExprType;
        if (BaseType && BaseType->isPointer())
          FromType(BaseType->Pointee, Member->Base);
      } else {
        Result = effectiveMode(Member->Base);
      }
      return Result;
    }
    FromType(FieldType, Member->Base);
    return Result;
  }
  case ExprKind::Index: {
    auto *Index = cast<IndexExpr>(LValue);
    TypeNode *BaseType = Index->Base->ExprType;
    if (BaseType && (BaseType->isPointer() || BaseType->isArray())) {
      if (BaseType->Pointee->Q.M == Mode::Poly) {
        Result = effectiveMode(Index->Base);
        return Result;
      }
      FromType(BaseType->Pointee, nullptr);
    }
    return Result;
  }
  default:
    return Result;
  }
}

void Checker::attachAccessCheck(Expr *LValue, bool IsWrite, SourceLoc Loc) {
  EffectiveMode EM = effectiveMode(LValue);
  switch (EM.M) {
  case Mode::Dynamic: {
    AccessCheck Check;
    Check.K = IsWrite ? AccessCheck::Kind::Write : AccessCheck::Kind::Read;
    Instr.add(LValue, Check);
    return;
  }
  case Mode::Locked:
  case Mode::RwLocked: {
    if (!EM.LockExpr) {
      Diags.error(Loc, "locked cell has no lock expression");
      return;
    }
    if (auto *Name = dyn_cast<NameExpr>(EM.LockExpr))
      if (Name->Var && Name->Var->Storage == StorageKind::Field &&
          !EM.LockBase) {
        Diags.error(Loc, "locked cell guarded by field '" + Name->Name +
                             "' accessed through a path with no instance");
        return;
      }
    checkLockExprConstant(EM.LockExpr, Loc);
    if (EM.LockBase)
      checkLockExprConstant(EM.LockBase, Loc);
    AccessCheck Check;
    // rwlocked reads accept a shared hold; rwlocked writes and all
    // locked-mode accesses require the exclusive hold.
    Check.K = (EM.M == Mode::RwLocked && !IsWrite)
                  ? AccessCheck::Kind::LockShared
                  : AccessCheck::Kind::Lock;
    Check.LockExpr = EM.LockExpr;
    Check.LockBase = EM.LockBase;
    Check.IsWrite = IsWrite;
    Instr.add(LValue, Check);
    return;
  }
  default:
    return;
  }
}

void Checker::checkLockExprConstant(Expr *Lock, SourceLoc Loc) {
  // "lock ... must be verifiably constant (uses only unmodified locals or
  // readonly values) for type-safety reasons".
  if (auto *Name = dyn_cast<NameExpr>(Lock)) {
    if (Name->Var && (Name->Var->Storage == StorageKind::Local ||
                      Name->Var->Storage == StorageKind::Param)) {
      if (isLocalModified(Name->Var))
        Diags.error(Loc, "lock expression '" + Name->Name +
                             "' uses a modified local; locks must be "
                             "verifiably constant");
    }
    return;
  }
  if (auto *Member = dyn_cast<MemberExpr>(Lock))
    return checkLockExprConstant(Member->Base, Loc);
}

bool Checker::isLocalModified(const VarDecl *Var) const {
  auto It = AssignCounts.find(Var);
  unsigned Count = It == AssignCounts.end() ? 0 : It->second;
  if (Var->Storage == StorageKind::Param)
    return Count >= 1; // params arrive initialized
  return Count >= 2; // one assignment is the local's initialization
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

namespace {

/// Counts assignments to locals and parameters (declaration initializers
/// and SCAST null-outs included).
void collectModifiedLocals(Stmt *S,
                           std::map<const VarDecl *, unsigned> &Out);

void collectModifiedLocalsExpr(Expr *E,
                               std::map<const VarDecl *, unsigned> &Out) {
  if (!E)
    return;
  if (auto *Assign = dyn_cast<AssignExpr>(E)) {
    if (auto *Name = dyn_cast<NameExpr>(Assign->Lhs))
      if (Name->Var && (Name->Var->Storage == StorageKind::Local ||
                        Name->Var->Storage == StorageKind::Param))
        ++Out[Name->Var];
    collectModifiedLocalsExpr(Assign->Lhs, Out);
    collectModifiedLocalsExpr(Assign->Rhs, Out);
    return;
  }
  if (auto *Unary = dyn_cast<UnaryExpr>(E))
    return collectModifiedLocalsExpr(Unary->Sub, Out);
  if (auto *Binary = dyn_cast<BinaryExpr>(E)) {
    collectModifiedLocalsExpr(Binary->Lhs, Out);
    collectModifiedLocalsExpr(Binary->Rhs, Out);
    return;
  }
  if (auto *Call = dyn_cast<CallExpr>(E)) {
    collectModifiedLocalsExpr(Call->Callee, Out);
    for (Expr *Arg : Call->Args)
      collectModifiedLocalsExpr(Arg, Out);
    return;
  }
  if (auto *Member = dyn_cast<MemberExpr>(E))
    return collectModifiedLocalsExpr(Member->Base, Out);
  if (auto *Index = dyn_cast<IndexExpr>(E)) {
    collectModifiedLocalsExpr(Index->Base, Out);
    collectModifiedLocalsExpr(Index->Idx, Out);
    return;
  }
  if (auto *Scast = dyn_cast<ScastExpr>(E)) {
    // A sharing cast nulls its source, but that does not disqualify the
    // local as a lock expression: a nulled local cannot reach a guarded
    // access afterwards (the live-after-cast check covers such uses).
    return collectModifiedLocalsExpr(Scast->Src, Out);
  }
  if (auto *New = dyn_cast<NewExpr>(E))
    return collectModifiedLocalsExpr(New->Count, Out);
}

void collectModifiedLocals(Stmt *S,
                           std::map<const VarDecl *, unsigned> &Out) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block:
    for (Stmt *Child : cast<BlockStmt>(S)->Body)
      collectModifiedLocals(Child, Out);
    return;
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    collectModifiedLocalsExpr(If->Cond, Out);
    collectModifiedLocals(If->Then, Out);
    collectModifiedLocals(If->Else, Out);
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    collectModifiedLocalsExpr(While->Cond, Out);
    collectModifiedLocals(While->Body, Out);
    return;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    collectModifiedLocals(For->Init, Out);
    collectModifiedLocalsExpr(For->Cond, Out);
    collectModifiedLocalsExpr(For->Step, Out);
    collectModifiedLocals(For->Body, Out);
    return;
  }
  case StmtKind::Return:
    return collectModifiedLocalsExpr(cast<ReturnStmt>(S)->Value, Out);
  case StmtKind::ExprStmt:
    return collectModifiedLocalsExpr(cast<ExprStmt>(S)->E, Out);
  case StmtKind::DeclStmt: {
    auto *Decl = cast<DeclStmt>(S);
    if (Decl->Init)
      ++Out[Decl->Var]; // the initializer is the first assignment
    return collectModifiedLocalsExpr(Decl->Init, Out);
  }
  case StmtKind::Spawn:
    return collectModifiedLocalsExpr(cast<SpawnStmt>(S)->Arg, Out);
  case StmtKind::Free:
    return collectModifiedLocalsExpr(cast<FreeStmt>(S)->Ptr, Out);
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

} // namespace

void Checker::checkFunc(FuncDecl *F) {
  CurrentFunc = F;
  AssignCounts.clear();
  collectModifiedLocals(F->Body, AssignCounts);
  checkStmt(F->Body);
  CurrentFunc = nullptr;
}

void Checker::checkStmt(Stmt *S) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block: {
    auto *Block = cast<BlockStmt>(S);
    for (Stmt *Child : Block->Body)
      checkStmt(Child);
    checkLiveAfterCast(Block);
    return;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    checkExpr(If->Cond);
    checkStmt(If->Then);
    checkStmt(If->Else);
    return;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    checkExpr(While->Cond);
    checkStmt(While->Body);
    return;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    checkStmt(For->Init);
    if (For->Cond)
      checkExpr(For->Cond);
    if (For->Step)
      checkExpr(For->Step);
    checkStmt(For->Body);
    return;
  }
  case StmtKind::Return: {
    auto *Ret = cast<ReturnStmt>(S);
    if (Ret->Value) {
      checkExpr(Ret->Value);
      if (CurrentFunc && CurrentFunc->RetType)
        checkAssignCompat(CurrentFunc->RetType, Ret->Value->ExprType,
                          Ret->Value, Ret->Loc, "return value");
    }
    return;
  }
  case StmtKind::ExprStmt:
    return checkExpr(cast<ExprStmt>(S)->E);
  case StmtKind::DeclStmt: {
    auto *Decl = cast<DeclStmt>(S);
    checkWellFormedType(Decl->Var->DeclType, Decl->Var->Loc);
    if (Decl->Init) {
      checkExpr(Decl->Init);
      checkAssignCompat(Decl->Var->DeclType, Decl->Init->ExprType,
                        Decl->Init, Decl->Loc, "initializer");
    }
    return;
  }
  case StmtKind::Spawn: {
    auto *Spawn = cast<SpawnStmt>(S);
    if (Spawn->Arg) {
      checkExpr(Spawn->Arg);
      if (Spawn->Callee && !Spawn->Callee->Params.empty())
        checkAssignCompat(Spawn->Callee->Params[0]->DeclType,
                          Spawn->Arg->ExprType, Spawn->Arg, Spawn->Loc,
                          "spawn argument");
    }
    return;
  }
  case StmtKind::Free: {
    auto *Free = cast<FreeStmt>(S);
    checkExpr(Free->Ptr);
    if (Free->Ptr->ExprType && !Free->Ptr->ExprType->isPointer())
      Diags.error(Free->Loc, "free() requires a pointer");
    return;
  }
  case StmtKind::Break:
  case StmtKind::Continue:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static bool isLValue(const Expr *E) {
  switch (E->Kind) {
  case ExprKind::Name:
    return cast<NameExpr>(E)->Var != nullptr;
  case ExprKind::Member:
  case ExprKind::Index:
    return true;
  case ExprKind::Unary:
    return cast<UnaryExpr>(E)->Op == UnaryOp::Deref;
  default:
    return false;
  }
}

void Checker::checkExpr(Expr *E) {
  if (!E)
    return;
  switch (E->Kind) {
  case ExprKind::Name:
    attachAccessCheck(E, /*IsWrite=*/false, E->Loc);
    return;
  case ExprKind::Unary: {
    auto *Unary = cast<UnaryExpr>(E);
    if (Unary->Op == UnaryOp::AddrOf) {
      // &lv evaluates the base path but does not read the final cell.
      visitLValuePath(Unary->Sub);
      return;
    }
    checkExpr(Unary->Sub);
    if (Unary->Op == UnaryOp::Deref)
      attachAccessCheck(E, /*IsWrite=*/false, E->Loc);
    return;
  }
  case ExprKind::Binary: {
    auto *Binary = cast<BinaryExpr>(E);
    checkExpr(Binary->Lhs);
    checkExpr(Binary->Rhs);
    return;
  }
  case ExprKind::Assign: {
    auto *Assign = cast<AssignExpr>(E);
    checkExpr(Assign->Rhs);
    checkLValueWrite(Assign->Lhs, Assign->Loc);
    checkAssignCompat(Assign->Lhs->ExprType, Assign->Rhs->ExprType,
                      Assign->Rhs, Assign->Loc, "assignment");
    return;
  }
  case ExprKind::Call: {
    auto *Call = cast<CallExpr>(E);
    checkExpr(Call->Callee);
    for (Expr *Arg : Call->Args)
      checkExpr(Arg);
    FuncDecl *Direct = nullptr;
    if (auto *Name = dyn_cast<NameExpr>(Call->Callee))
      Direct = Name->Func;
    if (Direct && Direct->IsBuiltin) {
      // Builtin with trusted read/write summaries (Section 4.4): a dynamic
      // actual's pointee gets its reader/writer sets updated per the
      // summary; locked actuals are rejected.
      for (size_t I = 0;
           I != std::min(Call->Args.size(), Direct->Summaries.size()); ++I) {
        Expr *Arg = Call->Args[I];
        if (!Arg->ExprType || !Arg->ExprType->isPointer())
          continue;
        Mode PointeeMode = Arg->ExprType->Pointee->Q.M;
        const ParamSummary &Summary = Direct->Summaries[I];
        if (PointeeMode == Mode::Locked || PointeeMode == Mode::RwLocked) {
          Diags.error(Arg->Loc, "locked values may not be passed to "
                                "library functions (Section 4.4)");
          continue;
        }
        if (PointeeMode == Mode::ReadOnly && Summary.WritesPointee) {
          Diags.error(Arg->Loc,
                      "readonly value passed to library function that "
                      "writes its argument");
          continue;
        }
        if (PointeeMode == Mode::Dynamic && isLValue(Arg)) {
          // The call accesses *arg: record pointee checks on the arg node
          // itself; the interpreter applies them to the pointee.
          // (Represented as ordinary checks on the pointee cell via a
          // synthesized deref in the interpreter; here we only note the
          // intent with OnPointee semantics baked into the builtin call
          // handling of the interpreter.)
          continue;
        }
      }
      return;
    }
    // Ordinary call: argument modes must match formals (sub-top-level).
    const TypeNode *FnType = Call->Callee->ExprType;
    if (FnType && FnType->isPointer())
      FnType = FnType->Pointee;
    if (!FnType || !FnType->isFunc())
      return;
    for (size_t I = 0;
         I != std::min(FnType->Params.size(), Call->Args.size()); ++I)
      checkAssignCompat(const_cast<TypeNode *>(FnType->Params[I]),
                        Call->Args[I]->ExprType, Call->Args[I],
                        Call->Args[I]->Loc, "argument");
    return;
  }
  case ExprKind::Member: {
    auto *Member = cast<MemberExpr>(E);
    // Arrow access reads the base pointer (checked under the pointer
    // cell's own mode); dot access only names a subobject of the base
    // l-value and reads no cell of its own.
    if (Member->IsArrow)
      checkExpr(Member->Base);
    else
      visitLValuePath(Member->Base);
    attachAccessCheck(E, /*IsWrite=*/false, E->Loc);
    return;
  }
  case ExprKind::Index: {
    auto *Index = cast<IndexExpr>(E);
    checkExpr(Index->Base);
    checkExpr(Index->Idx);
    attachAccessCheck(E, /*IsWrite=*/false, E->Loc);
    return;
  }
  case ExprKind::Scast:
    checkScast(cast<ScastExpr>(E));
    return;
  case ExprKind::New:
    checkExpr(cast<NewExpr>(E)->Count);
    return;
  default:
    return;
  }
}

void Checker::visitLValuePath(Expr *LV) {
  // Visits an l-value used for its *location* (address-of, dot-access
  // base, assignment target): base pointers and indices are evaluated
  // (and checked) as reads, but the denoted cell itself is not read.
  if (auto *Member = dyn_cast<MemberExpr>(LV)) {
    if (Member->IsArrow)
      checkExpr(Member->Base);
    else
      visitLValuePath(Member->Base);
    return;
  }
  if (auto *Index = dyn_cast<IndexExpr>(LV)) {
    if (Index->Base->ExprType && Index->Base->ExprType->isArray())
      visitLValuePath(Index->Base);
    else
      checkExpr(Index->Base);
    checkExpr(Index->Idx);
    return;
  }
  if (auto *Unary = dyn_cast<UnaryExpr>(LV);
      Unary && Unary->Op == UnaryOp::Deref) {
    checkExpr(Unary->Sub);
    return;
  }
  // Name: naming a variable's location reads nothing.
}

void Checker::checkLValueWrite(Expr *LV, SourceLoc Loc) {
  if (!isLValue(LV)) {
    Diags.error(Loc, "assignment target is not an l-value");
    return;
  }
  // Evaluate the base path as reads.
  visitLValuePath(LV);

  EffectiveMode EM = effectiveMode(LV);
  if (EM.M == Mode::ReadOnly) {
    // The initialization exception: a readonly field of a private
    // instance is writable.
    bool Allowed = false;
    if (auto *Member = dyn_cast<MemberExpr>(LV)) {
      Mode InstanceMode;
      if (Member->IsArrow) {
        TypeNode *BaseType = Member->Base->ExprType;
        InstanceMode = BaseType && BaseType->isPointer()
                           ? BaseType->Pointee->Q.M
                           : Mode::ReadOnly;
      } else {
        InstanceMode = effectiveMode(Member->Base).M;
      }
      Allowed = InstanceMode == Mode::Private;
    }
    if (!Allowed) {
      Diags.error(Loc, "cannot write to readonly cell '" + LV->spelling() +
                           "' (only readonly fields of private structures "
                           "are writable)");
      return;
    }
  }
  attachAccessCheck(LV, /*IsWrite=*/true, Loc);
}

//===----------------------------------------------------------------------===//
// Assignment compatibility and cast suggestions
//===----------------------------------------------------------------------===//

/// \returns true if the referent levels of \p Lhs and \p Rhs carry equal
/// qualifiers; used for the invariance check on assignments. When one
/// side is void* the shape is erased but the referent mode must still
/// agree (void* keeps the sharing mode of what it points to).
static bool pointeesCompatible(const TypeNode *Lhs, const TypeNode *Rhs) {
  if (!Lhs->isPointer() && !Lhs->isArray())
    return true;
  if (!Rhs->isPointer() && !Rhs->isArray())
    return true;
  if (Lhs->Pointee->isVoid() || Rhs->Pointee->isVoid())
    return Lhs->Pointee->Q.M == Rhs->Pointee->Q.M;
  return sameTypeAndQuals(Lhs->Pointee, Rhs->Pointee);
}

void Checker::checkAssignCompat(TypeNode *Lhs, TypeNode *Rhs, Expr *RhsExpr,
                                SourceLoc Loc, const char *What) {
  if (!Lhs || !Rhs)
    return;
  if (RhsExpr && isa<NullLitExpr>(RhsExpr))
    return; // null is assignable to any pointer.
  // Function names decay to function pointers (h->fn = handler).
  if (Lhs->isPointer() && Lhs->Pointee && Lhs->Pointee->isFunc() &&
      Rhs->isFunc()) {
    if (!sameShape(Lhs->Pointee, Rhs))
      Diags.error(Loc, std::string("incompatible function type in ") + What +
                           ": '" + typeToString(Lhs) + "' vs '" +
                           typeToString(Rhs) + "'");
    return;
  }
  bool BothInts = Lhs->isInteger() && Rhs->isInteger();
  if (!BothInts && !sameShape(Lhs, Rhs)) {
    // void* concretization is permitted in the shape dimension (the
    // sharing cast rule still governs qualifier changes).
    bool VoidInvolved =
        (Lhs->isPointer() && Lhs->Pointee->isVoid()) ||
        (Rhs->isPointer() && Rhs->Pointee->isVoid());
    if (!VoidInvolved) {
      Diags.error(Loc, std::string("incompatible types in ") + What + ": '" +
                           typeToString(Lhs) + "' vs '" + typeToString(Rhs) +
                           "'");
      return;
    }
  }
  if (!pointeesCompatible(Lhs, Rhs)) {
    Diags.error(Loc, std::string("sharing modes differ in ") + What + ": '" +
                         typeToString(Lhs) + "' vs '" + typeToString(Rhs) +
                         "'");
    if (RhsExpr && isLValue(RhsExpr)) {
      // Render the suggested cast type without the outermost (cell)
      // qualifier: SCAST targets describe the value being transferred.
      std::string Target;
      if (Lhs->isPointer())
        Target = typeToString(Lhs->Pointee) + " *";
      else
        Target = typeToString(Lhs);
      Diags.note(Loc, "if ownership is being transferred, use SCAST(" +
                          Target + ", " + RhsExpr->spelling() + ")");
    }
  }
}

void Checker::checkScast(ScastExpr *Scast) {
  Expr *Src = Scast->Src;
  checkExpr(Src);
  if (!isLValue(Src)) {
    Diags.error(Scast->Loc,
                "SCAST source must be an l-value (it is nulled out)");
    return;
  }
  TypeNode *SrcType = Src->ExprType;
  TypeNode *TgtType = Scast->TargetType;
  if (!SrcType || !TgtType)
    return;
  if (!SrcType->isPointer() || !TgtType->isPointer()) {
    Diags.error(Scast->Loc, "SCAST requires pointer types");
    return;
  }
  bool SrcVoid = SrcType->Pointee->isVoid();
  bool TgtVoid = TgtType->Pointee->isVoid();
  if (SrcVoid || TgtVoid) {
    // Concretization cast: the referent qualifier must not change ("the
    // programmer must cast the (void*) pointer to a concrete type before
    // the sharing change").
    if (SrcType->Pointee->Q.M != TgtType->Pointee->Q.M)
      Diags.error(Scast->Loc,
                  "sharing casts may not change the qualifier of a void* "
                  "value; cast to a concrete type first");
  } else {
    if (!sameShape(SrcType, TgtType)) {
      Diags.error(Scast->Loc, "SCAST cannot change the shape of '" +
                                  typeToString(SrcType) + "' to '" +
                                  typeToString(TgtType) + "'");
      return;
    }
    // Only the outermost referent qualifier may change: deeper levels
    // must match exactly (soundness: one reference to the outer cell says
    // nothing about inner cells).
    const TypeNode *SrcInner = SrcType->Pointee;
    const TypeNode *TgtInner = TgtType->Pointee;
    if ((SrcInner->isPointer() || SrcInner->isArray()) &&
        !sameTypeAndQuals(SrcInner->Pointee, TgtInner->Pointee))
      Diags.error(Scast->Loc,
                  "SCAST may only change the outermost referent "
                  "qualifier; deeper levels differ between '" +
                      typeToString(SrcType) + "' and '" +
                      typeToString(TgtType) + "'");
  }
  // The cast reads and nulls its source cell: both intents are checked
  // under the source's own mode.
  EffectiveMode EM = effectiveMode(Src);
  if (EM.M == Mode::Locked || EM.M == Mode::RwLocked) {
    attachAccessCheck(Src, /*IsWrite=*/true, Scast->Loc);
  } else if (EM.M == Mode::Dynamic) {
    attachAccessCheck(Src, /*IsWrite=*/false, Scast->Loc);
    attachAccessCheck(Src, /*IsWrite=*/true, Scast->Loc);
  }
}

//===----------------------------------------------------------------------===//
// Live-after-cast warning
//===----------------------------------------------------------------------===//

namespace {

/// \returns true if \p E reads \p Var (ignoring positions where Var is the
/// direct target of an assignment).
bool readsVar(const Expr *E, const VarDecl *Var) {
  if (!E)
    return false;
  if (auto *Name = dyn_cast<NameExpr>(E))
    return Name->Var == Var;
  if (auto *Unary = dyn_cast<UnaryExpr>(E))
    return readsVar(Unary->Sub, Var);
  if (auto *Binary = dyn_cast<BinaryExpr>(E))
    return readsVar(Binary->Lhs, Var) || readsVar(Binary->Rhs, Var);
  if (auto *Assign = dyn_cast<AssignExpr>(E)) {
    bool LhsIsVar = false;
    if (auto *Name = dyn_cast<NameExpr>(Assign->Lhs))
      LhsIsVar = Name->Var == Var;
    return (!LhsIsVar && readsVar(Assign->Lhs, Var)) ||
           readsVar(Assign->Rhs, Var);
  }
  if (auto *Call = dyn_cast<CallExpr>(E)) {
    if (readsVar(Call->Callee, Var))
      return true;
    for (const Expr *Arg : Call->Args)
      if (readsVar(Arg, Var))
        return true;
    return false;
  }
  if (auto *Member = dyn_cast<MemberExpr>(E))
    return readsVar(Member->Base, Var);
  if (auto *Index = dyn_cast<IndexExpr>(E))
    return readsVar(Index->Base, Var) || readsVar(Index->Idx, Var);
  if (auto *Scast = dyn_cast<ScastExpr>(E))
    return readsVar(Scast->Src, Var);
  if (auto *New = dyn_cast<NewExpr>(E))
    return readsVar(New->Count, Var);
  return false;
}

/// \returns true if \p S definitely assigns \p Var at its top level.
bool assignsVar(const Stmt *S, const VarDecl *Var) {
  if (auto *ES = dyn_cast<ExprStmt>(S))
    if (auto *Assign = dyn_cast<AssignExpr>(ES->E))
      if (auto *Name = dyn_cast<NameExpr>(Assign->Lhs))
        return Name->Var == Var;
  return false;
}

/// \returns the local variable nulled by a top-level SCAST in \p S, if
/// any.
const VarDecl *castNulledVar(const Stmt *S) {
  const Expr *E = nullptr;
  if (auto *ES = dyn_cast<ExprStmt>(S))
    E = ES->E;
  else if (auto *Decl = dyn_cast<DeclStmt>(S))
    E = Decl->Init;
  if (!E)
    return nullptr;
  if (auto *Assign = dyn_cast<AssignExpr>(E))
    E = Assign->Rhs;
  auto *Scast = dyn_cast<ScastExpr>(E);
  if (!Scast)
    return nullptr;
  auto *Name = dyn_cast<NameExpr>(Scast->Src);
  if (!Name || !Name->Var)
    return nullptr;
  if (Name->Var->Storage != StorageKind::Local &&
      Name->Var->Storage != StorageKind::Param)
    return nullptr;
  return Name->Var;
}

/// \returns true if \p S reads \p Var anywhere.
bool stmtReadsVar(const Stmt *S, const VarDecl *Var) {
  if (!S)
    return false;
  switch (S->Kind) {
  case StmtKind::Block: {
    for (const Stmt *Child : cast<BlockStmt>(S)->Body)
      if (stmtReadsVar(Child, Var))
        return true;
    return false;
  }
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    return readsVar(If->Cond, Var) || stmtReadsVar(If->Then, Var) ||
           stmtReadsVar(If->Else, Var);
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    return readsVar(While->Cond, Var) || stmtReadsVar(While->Body, Var);
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    return stmtReadsVar(For->Init, Var) || readsVar(For->Cond, Var) ||
           readsVar(For->Step, Var) || stmtReadsVar(For->Body, Var);
  }
  case StmtKind::Return:
    return readsVar(cast<ReturnStmt>(S)->Value, Var);
  case StmtKind::ExprStmt:
    return readsVar(cast<ExprStmt>(S)->E, Var);
  case StmtKind::DeclStmt:
    return readsVar(cast<DeclStmt>(S)->Init, Var);
  case StmtKind::Spawn:
    return readsVar(cast<SpawnStmt>(S)->Arg, Var);
  case StmtKind::Free:
    return readsVar(cast<FreeStmt>(S)->Ptr, Var);
  default:
    return false;
  }
}

} // namespace

void Checker::checkLiveAfterCast(BlockStmt *Block) {
  // "SharC will emit a warning if a pointer is definitely live after being
  // nulled-out for a cast."
  for (size_t I = 0; I != Block->Body.size(); ++I) {
    const VarDecl *Var = castNulledVar(Block->Body[I]);
    if (!Var)
      continue;
    for (size_t J = I + 1; J != Block->Body.size(); ++J) {
      if (assignsVar(Block->Body[J], Var))
        break; // re-initialized; later uses are fine.
      if (stmtReadsVar(Block->Body[J], Var)) {
        Diags.warning(Block->Body[J]->Loc,
                      "pointer '" + Var->Name +
                          "' is used after being nulled by a sharing cast");
        break;
      }
    }
  }
}
