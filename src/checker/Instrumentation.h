//===-- checker/Instrumentation.h - Inserted runtime checks -----*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static checker's output: for every l-value occurrence that needs a
/// runtime check (Figure 4's `when` guards), an AccessCheck record keyed
/// by the expression node. The interpreter executes these as the
/// operational semantics' chkread/chkwrite (Figure 6) and the lock-held
/// check of Section 4.2.2. Sharing casts (oneref) are intrinsic to
/// ScastExpr and are not recorded here.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_CHECKER_INSTRUMENTATION_H
#define SHARC_CHECKER_INSTRUMENTATION_H

#include "minic/AST.h"

#include <map>
#include <vector>

namespace sharc {
namespace checker {

/// One runtime check attached to an l-value occurrence.
struct AccessCheck {
  enum class Kind : uint8_t {
    Read,       ///< chkread of the denoted cell (dynamic mode)
    Write,      ///< chkwrite of the denoted cell (dynamic mode)
    Lock,       ///< exclusive lock-held check (locked mode; rwlocked writes)
    LockShared, ///< shared-or-exclusive hold check (rwlocked reads)
  };
  Kind K = Kind::Read;

  /// For Lock checks: the lock expression. When it names a struct field
  /// (locked(mut) inside the struct), LockBase is the instance expression
  /// to evaluate first; otherwise LockExpr is evaluated directly.
  minic::Expr *LockExpr = nullptr;
  minic::Expr *LockBase = nullptr;
  /// For Lock checks triggered by writes, both read and write intents
  /// share one lock check; IsWrite is informational.
  bool IsWrite = false;
};

/// All checks for one program, keyed by l-value occurrence.
class Instrumentation {
public:
  void add(const minic::Expr *LValue, AccessCheck Check) {
    Checks[LValue].push_back(Check);
  }

  const std::vector<AccessCheck> *checksFor(const minic::Expr *LValue) const {
    auto It = Checks.find(LValue);
    return It == Checks.end() ? nullptr : &It->second;
  }

  size_t getNumChecks() const {
    size_t N = 0;
    for (const auto &[E, List] : Checks)
      N += List.size();
    return N;
  }

  size_t getNumInstrumentedSites() const { return Checks.size(); }

  /// Counts checks of one kind, for tests and the driver's summary.
  size_t countKind(AccessCheck::Kind K) const {
    size_t N = 0;
    for (const auto &[E, List] : Checks)
      for (const AccessCheck &C : List)
        if (C.K == K)
          ++N;
    return N;
  }

private:
  std::map<const minic::Expr *, std::vector<AccessCheck>> Checks;
};

} // namespace checker
} // namespace sharc

#endif // SHARC_CHECKER_INSTRUMENTATION_H
