//===-- fuzz/RefDetectors.h - Reference race detectors ----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent single-threaded reimplementations of the Eraser lockset
/// algorithm and the vector-clock happens-before algorithm, replayed
/// directly over an interpreter schedule trace. The differential oracle
/// compares the production detectors (driven through the multithreaded
/// ReplayPool) against these: any divergence on the racy-granule set is
/// a bug in one side.
///
/// This is deliberately a *production-vs-reference* comparison, not a
/// naive "Eraser must report everything vector clocks report": Eraser
/// has inherent, algorithmic false negatives (a cell written once and
/// then read by another thread stays in the read-Shared state; the
/// candidate lockset is initialized, not intersected, at the
/// Exclusive->Shared transition), so cross-algorithm set inclusion does
/// not hold even for correct implementations. The cross-algorithm gap
/// is still computed and reported as a diagnostic.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_FUZZ_REFDETECTORS_H
#define SHARC_FUZZ_REFDETECTORS_H

#include "interp/Interp.h"

#include <cstdint>
#include <vector>

namespace sharc {
namespace fuzz {

/// Racy cells (interpreter cell addresses / spawn tokens) each reference
/// algorithm reports for a trace, sorted ascending.
struct RefRaceResult {
  std::vector<uint64_t> EraserRacy;
  std::vector<uint64_t> HbRacy;
};

/// Replays \p Trace through both reference algorithms.
RefRaceResult referenceRaces(const std::vector<interp::TraceEvent> &Trace);

} // namespace fuzz
} // namespace sharc

#endif // SHARC_FUZZ_REFDETECTORS_H
