//===-- fuzz/ProgramGen.h - Random MiniC program generator ------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Generates random well-typed multithreaded MiniC programs for the
/// differential fuzzing oracles. Generated programs exercise all five
/// sharing modes (private, readonly, locked, racy, dynamic — plus
/// unannotated globals left to inference), structs and arrays, mutexes,
/// rwlocks, condition variables, spawn/join idioms, and sharing casts.
///
/// The generator maintains static validity by construction: lock
/// expressions are address-of-global mutexes (verifiably constant),
/// readonly data is never written, locks are acquired in a fixed order
/// (deadlock freedom), loops are bounded, and pointer-transfer code
/// follows the proven pipeline/scast templates from examples/minic.
/// Programs may still race or violate lock disciplines at runtime — the
/// oracles treat recorded violations as legal outcomes and compare
/// *behaviour* across components, not absence of violations.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_FUZZ_PROGRAMGEN_H
#define SHARC_FUZZ_PROGRAMGEN_H

#include <cstdint>
#include <string>

namespace sharc {
namespace fuzz {

/// Generator size profile. Normal is the historical shape (its output
/// is byte-identical to the single-argument entry point). Small keeps
/// the schedule space tractable for sharc-explore's exhaustive oracle:
/// no spin-wait joins (a `while (done0 < N) { }` loop multiplies the
/// interleaving count without adding behaviours), no pipeline
/// template, at most two spawns, and tighter loop and statement
/// bounds.
enum class GenSize : uint8_t {
  Normal,
  Small,
};

/// \returns the source text of a random MiniC program. Deterministic:
/// the same (seed, size) always yields byte-identical source.
std::string generateProgram(uint64_t Seed, GenSize Size);

/// Historical entry point: the Normal profile.
std::string generateProgram(uint64_t Seed);

} // namespace fuzz
} // namespace sharc

#endif // SHARC_FUZZ_PROGRAMGEN_H
