//===-- fuzz/Rng.h - Deterministic PRNG for fuzzing -------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SplitMix64, used for every random choice the fuzzer makes. The
/// standard library distributions are implementation-defined, so the
/// fuzzer never touches them: identical seeds must yield identical
/// programs and identical reports on every platform.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_FUZZ_RNG_H
#define SHARC_FUZZ_RNG_H

#include <cstdint>

namespace sharc {
namespace fuzz {

inline uint64_t splitMix64(uint64_t &State) {
  uint64_t Z = (State += 0x9E3779B97F4A7C15ull);
  Z = (Z ^ (Z >> 30)) * 0xBF58476D1CE4E5B9ull;
  Z = (Z ^ (Z >> 27)) * 0x94D049BB133111EBull;
  return Z ^ (Z >> 31);
}

class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed ? Seed : 0x9E3779B97F4A7C15ull) {}

  uint64_t next() { return splitMix64(State); }

  /// Uniform value in [0, N). N == 0 returns 0.
  unsigned range(unsigned N) {
    return N ? static_cast<unsigned>(next() % N) : 0;
  }

  /// Uniform value in [Lo, Hi] (inclusive).
  unsigned between(unsigned Lo, unsigned Hi) {
    return Lo + range(Hi - Lo + 1);
  }

  /// True with probability Pct/100.
  bool chance(unsigned Pct) { return range(100) < Pct; }

private:
  uint64_t State;
};

} // namespace fuzz
} // namespace sharc

#endif // SHARC_FUZZ_RNG_H
