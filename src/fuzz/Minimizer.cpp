//===-- fuzz/Minimizer.cpp ------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"

#include "analysis/SharingAnalysis.h"
#include "fuzz/Oracle.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "minic/Printer.h"

#include <memory>
#include <vector>

using namespace sharc;
using namespace sharc::minic;

namespace {

/// A deletable unit: one slot of some statement or declaration list.
struct Site {
  enum class Kind : uint8_t { BlockStmt, Global, Struct, Func };
  Kind K = Kind::BlockStmt;
  BlockStmt *Block = nullptr; ///< BlockStmt sites.
  size_t Index = 0;
};

void collectBlocks(Stmt *S, std::vector<BlockStmt *> &Blocks) {
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block: {
    auto *B = static_cast<BlockStmt *>(S);
    Blocks.push_back(B);
    for (Stmt *Child : B->Body)
      collectBlocks(Child, Blocks);
    break;
  }
  case StmtKind::If: {
    auto *If = static_cast<IfStmt *>(S);
    collectBlocks(If->Then, Blocks);
    collectBlocks(If->Else, Blocks);
    break;
  }
  case StmtKind::While:
    collectBlocks(static_cast<WhileStmt *>(S)->Body, Blocks);
    break;
  case StmtKind::For:
    collectBlocks(static_cast<ForStmt *>(S)->Body, Blocks);
    break;
  default:
    break;
  }
}

std::vector<Site> collectSites(Program &Prog) {
  std::vector<Site> Sites;
  // Statements first: most deletions that matter are inside bodies, and
  // removing a statement is the least disruptive shrink.
  std::vector<BlockStmt *> Blocks;
  for (FuncDecl *F : Prog.Funcs)
    if (!F->IsBuiltin && F->Body)
      collectBlocks(F->Body, Blocks);
  for (BlockStmt *B : Blocks)
    for (size_t I = 0; I < B->Body.size(); ++I)
      Sites.push_back({Site::Kind::BlockStmt, B, I});
  for (size_t I = 0; I < Prog.Funcs.size(); ++I)
    if (!Prog.Funcs[I]->IsBuiltin && Prog.Funcs[I]->Name != "main")
      Sites.push_back({Site::Kind::Func, nullptr, I});
  for (size_t I = 0; I < Prog.Globals.size(); ++I)
    Sites.push_back({Site::Kind::Global, nullptr, I});
  for (size_t I = 0; I < Prog.Structs.size(); ++I)
    Sites.push_back({Site::Kind::Struct, nullptr, I});
  return Sites;
}

/// Applies the deletion, prints, and restores the list. The AST was
/// inference-annotated before mutation, so the print carries qualifiers;
/// stripPolyMarkers makes it reparseable.
template <typename T>
std::string printWithout(Program &Prog, std::vector<T> &List, size_t Index) {
  T Saved = List[Index];
  List.erase(List.begin() + Index);
  std::string Text = fuzz::stripPolyMarkers(printProgram(Prog));
  List.insert(List.begin() + Index, Saved);
  return Text;
}

} // namespace

std::string sharc::fuzz::minimizeSource(
    const std::string &Source,
    const std::function<bool(const std::string &)> &StillFails,
    unsigned MaxCandidates) {
  std::string Best = Source;
  unsigned Budget = MaxCandidates;
  bool Progress = true;

  while (Progress && Budget > 0) {
    Progress = false;

    // Re-front-end the current best so deletions operate on a fresh,
    // annotated AST. If it stops compiling (e.g. the failure itself is a
    // front-end bug), structural shrinking is impossible; stop.
    SourceManager SM;
    FileId File = SM.addBuffer("min.mc", Best);
    DiagnosticEngine Diags(SM);
    Parser P(SM, File, Diags);
    std::unique_ptr<Program> Prog = P.parseProgram();
    if (Diags.hasErrors())
      break;
    ExprTyper Typer(*Prog, Diags);
    if (!Typer.run())
      break;
    analysis::SharingAnalysis SA(*Prog, Diags);
    if (!SA.run())
      break;

    for (const Site &S : collectSites(*Prog)) {
      if (Budget == 0)
        break;
      std::string Candidate;
      switch (S.K) {
      case Site::Kind::BlockStmt:
        Candidate = printWithout(*Prog, S.Block->Body, S.Index);
        break;
      case Site::Kind::Func:
        Candidate = printWithout(*Prog, Prog->Funcs, S.Index);
        break;
      case Site::Kind::Global:
        Candidate = printWithout(*Prog, Prog->Globals, S.Index);
        break;
      case Site::Kind::Struct:
        Candidate = printWithout(*Prog, Prog->Structs, S.Index);
        break;
      }
      --Budget;
      if (Candidate.size() < Best.size() && StillFails(Candidate)) {
        Best = Candidate;
        Progress = true;
        break; // Sites are stale; re-enumerate from the new best.
      }
    }
  }
  return Best;
}
