//===-- fuzz/Minimizer.h - Failing-program shrinker -------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Greedy delta-debugging over MiniC programs: repeatedly deletes one
/// statement, global, struct, or function at a time, keeping a deletion
/// whenever the caller's predicate says the shrunk program still fails
/// the same way. Candidates that no longer compile are rejected by the
/// predicate naturally (the oracle classifies them as a different
/// failure kind), so the minimizer needs no validity analysis of its own.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_FUZZ_MINIMIZER_H
#define SHARC_FUZZ_MINIMIZER_H

#include <functional>
#include <string>

namespace sharc {
namespace fuzz {

/// Shrinks \p Source while \p StillFails holds on the candidate. The
/// predicate must be deterministic. \p MaxCandidates bounds the number
/// of predicate evaluations. \returns the smallest failing source found
/// (at worst \p Source itself).
std::string
minimizeSource(const std::string &Source,
               const std::function<bool(const std::string &)> &StillFails,
               unsigned MaxCandidates = 2000);

} // namespace fuzz
} // namespace sharc

#endif // SHARC_FUZZ_MINIMIZER_H
