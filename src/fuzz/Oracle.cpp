//===-- fuzz/Oracle.cpp ---------------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/Oracle.h"

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "fuzz/RefDetectors.h"
#include "fuzz/Rng.h"
#include "interp/Explore.h"
#include "interp/Interp.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "minic/Printer.h"
#include "obs/Summary.h"
#include "obs/TraceFile.h"
#include "obs/TraceTail.h"
#include "rt/Guard.h"
#include "rt/RefCount.h"
#include "rt/Report.h"
#include "rt/Stats.h"
#include "rt/ThreadRegistry.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <tuple>

using namespace sharc;
using namespace sharc::fuzz;
using interp::TraceEvent;

const char *sharc::fuzz::failureKindName(FailureKind K) {
  switch (K) {
  case FailureKind::None:
    return "none";
  case FailureKind::ParseError:
    return "parse-error";
  case FailureKind::TypeError:
    return "type-error";
  case FailureKind::RoundTrip:
    return "round-trip";
  case FailureKind::Determinism:
    return "determinism";
  case FailureKind::EraserMismatch:
    return "eraser-mismatch";
  case FailureKind::HbMismatch:
    return "hb-mismatch";
  case FailureKind::RcMismatch:
    return "rc-mismatch";
  case FailureKind::TraceMismatch:
    return "trace-mismatch";
  case FailureKind::PolicyMismatch:
    return "policy-mismatch";
  case FailureKind::TailMismatch:
    return "tail-mismatch";
  case FailureKind::ExploreMismatch:
    return "explore-mismatch";
  }
  return "unknown";
}

std::string sharc::fuzz::stripPolyMarkers(const std::string &Printed) {
  std::string Source;
  for (size_t I = 0; I < Printed.size(); ++I) {
    if (Printed.compare(I, 3, "(q)") == 0) {
      I += 2;
      continue;
    }
    if (Printed.compare(I, 2, "*q") == 0) {
      Source += '*';
      ++I;
      continue;
    }
    Source += Printed[I];
  }
  return Source;
}

namespace {

/// FNV-1a accumulator; everything the oracles compare flows through one
/// of these so identical campaigns produce identical report digests.
struct Digest {
  uint64_t H = 0xCBF29CE484222325ull;

  void bytes(const void *P, size_t N) {
    const unsigned char *B = static_cast<const unsigned char *>(P);
    for (size_t I = 0; I < N; ++I) {
      H ^= B[I];
      H *= 0x100000001B3ull;
    }
  }
  void str(const std::string &S) {
    u64(S.size());
    bytes(S.data(), S.size());
  }
  void u64(uint64_t V) { bytes(&V, sizeof(V)); }
};

/// One front-end pipeline over a source buffer. Owns everything the AST
/// points into.
struct Frontend {
  SourceManager SM;
  std::unique_ptr<DiagnosticEngine> Diags;
  std::unique_ptr<minic::Program> Prog;
  bool Parsed = false;
  bool Typed = false;
  bool Analyzed = false;

  explicit Frontend(const std::string &Source) {
    FileId File = SM.addBuffer("fuzz.mc", Source);
    Diags = std::make_unique<DiagnosticEngine>(SM);
    minic::Parser P(SM, File, *Diags);
    Prog = P.parseProgram();
    if (Diags->hasErrors())
      return;
    Parsed = true;
    minic::ExprTyper Typer(*Prog, *Diags);
    if (!Typer.run())
      return;
    Typed = true;
    analysis::SharingAnalysis SA(*Prog, *Diags);
    if (!SA.run())
      return;
    Analyzed = true;
  }
};

/// Lowers an interpreter trace into detector replay events, scaling cell
/// addresses so one interpreter cell is one 8-byte detector granule.
/// Spawn tokens become synthetic locks: the parent releases the token
/// (SpawnEdge), the child acquires+releases it inside its ThreadStart.
std::vector<racedet::ReplayEvent>
toReplayEvents(const std::vector<TraceEvent> &Trace) {
  std::vector<racedet::ReplayEvent> Out;
  Out.reserve(Trace.size());
  using RK = racedet::ReplayEvent::Kind;
  for (const TraceEvent &Ev : Trace) {
    switch (Ev.K) {
    case TraceEvent::Kind::Read:
      Out.push_back({RK::Read, Ev.Tid, Ev.Addr << 3});
      break;
    case TraceEvent::Kind::Write:
      Out.push_back({RK::Write, Ev.Tid, Ev.Addr << 3});
      break;
    case TraceEvent::Kind::LockAcquire:
      Out.push_back({RK::LockAcquire, Ev.Tid, Ev.Addr << 3});
      break;
    case TraceEvent::Kind::LockRelease:
      Out.push_back({RK::LockRelease, Ev.Tid, Ev.Addr << 3});
      break;
    case TraceEvent::Kind::SpawnEdge:
      Out.push_back({RK::LockRelease, Ev.Tid, Ev.Addr << 3});
      break;
    case TraceEvent::Kind::ThreadStart:
      Out.push_back({RK::ThreadStart, Ev.Tid, Ev.Addr ? Ev.Addr << 3 : 0});
      break;
    case TraceEvent::Kind::ThreadExit:
      Out.push_back({RK::ThreadExit, Ev.Tid, 0});
      break;
    case TraceEvent::Kind::PtrStore:
    case TraceEvent::Kind::CastQuery:
      break; // Reference counting only; invisible to the detectors.
    }
  }
  return Out;
}

std::string joinAddrs(const std::vector<uint64_t> &V, size_t Max = 8) {
  std::ostringstream OS;
  for (size_t I = 0; I < V.size() && I < Max; ++I)
    OS << (I ? "," : "") << V[I];
  if (V.size() > Max)
    OS << ",...(" << V.size() << " total)";
  return OS.str();
}

/// Set difference A \ B for sorted vectors.
std::vector<uint64_t> minus(const std::vector<uint64_t> &A,
                            const std::vector<uint64_t> &B) {
  std::vector<uint64_t> Out;
  std::set_difference(A.begin(), A.end(), B.begin(), B.end(),
                      std::back_inserter(Out));
  return Out;
}

void digestRun(Digest &D, const interp::InterpResult &R,
               const std::vector<TraceEvent> &Trace) {
  D.u64(R.Completed);
  D.u64(R.Deadlocked);
  D.u64(R.OutOfSteps);
  D.str(R.Output);
  D.u64(R.Stats.Steps);
  D.u64(R.Stats.TotalAccesses);
  D.u64(R.Stats.DynamicChecks);
  D.u64(R.Stats.LockChecks);
  D.u64(R.Stats.SharingCasts);
  D.u64(R.Stats.ThreadsSpawned);
  D.u64(R.Violations.size());
  for (const interp::Violation &V : R.Violations)
    D.str(V.format("fuzz.mc"));
  D.u64(Trace.size());
  for (const TraceEvent &Ev : Trace) {
    D.u64(static_cast<uint64_t>(Ev.K));
    D.u64(Ev.Tid);
    D.u64(Ev.Addr);
    D.u64(static_cast<uint64_t>(Ev.Value));
  }
}

/// Replays the trace's pointer-slot stores through one RC engine and
/// collects the count it reports at each sharing-cast query.
std::vector<int64_t> replayRc(rt::RcMode Mode,
                              const std::vector<TraceEvent> &Trace,
                              size_t ArenaSize) {
  rt::RuntimeConfig Config;
  Config.Rc = Mode;
  Config.RcTableCapacity = 1u << 16;
  Config.ShadowBytesPerGranule = 8; // 63 simulated threads.
  rt::RuntimeStats Stats;
  rt::ThreadRegistry Registry(Config.maxThreads());
  rt::RefCountEngine Engine(Config, Stats, Registry);

  std::vector<uintptr_t> Arena(ArenaSize, 0);
  std::map<unsigned, rt::ThreadState *> States;
  auto stateFor = [&](unsigned Tid) -> rt::ThreadState & {
    auto It = States.find(Tid);
    if (It == States.end())
      It = States.emplace(Tid, Registry.registerThread()).first;
    return *It->second;
  };

  std::vector<int64_t> Counts;
  for (const TraceEvent &Ev : Trace) {
    if (Ev.K == TraceEvent::Kind::PtrStore)
      Engine.storePtr(&Arena[Ev.Addr], static_cast<uintptr_t>(Ev.Value),
                      stateFor(Ev.Tid));
    else if (Ev.K == TraceEvent::Kind::CastQuery)
      Counts.push_back(
          Engine.getRefCount(static_cast<uintptr_t>(Ev.Addr),
                             stateFor(Ev.Tid)));
  }
  return Counts;
}

/// Oracle 5: parse back the bytes the TraceWriter collected alongside
/// run \p R and check them against the legacy trace vector, the
/// violation list, and the aggregate stats. Returns an empty string on
/// agreement, a description of the first disagreement otherwise.
std::string checkTraceRoundTrip(obs::TraceWriter &Writer,
                                const interp::InterpResult &R,
                                const std::vector<TraceEvent> &Trace) {
  rt::StatsSnapshot Snapshot = interp::toStatsSnapshot(R);
  Writer.stats(Snapshot);

  obs::TraceData Data;
  std::string Error;
  if (!obs::parseTrace(Writer.buffer(), Data, Error))
    return "serialised trace does not parse back: " + Error;

  std::ostringstream OS;
  size_t Legacy = 0;
  uint64_t Conflicts = 0;
  for (size_t I = 0; I < Data.Events.size(); ++I) {
    const obs::Event &Ev = Data.Events[I];
    if (Ev.K == obs::EventKind::Conflict) {
      ++Conflicts;
      continue;
    }
    if (Ev.K > obs::LastInterpKind) {
      OS << "unexpected " << obs::eventKindName(Ev.K) << " event at record "
         << I;
      return OS.str();
    }
    if (Legacy == Trace.size()) {
      OS << "parsed trace has extra " << obs::eventKindName(Ev.K)
         << " event at record " << I;
      return OS.str();
    }
    const TraceEvent &Want = Trace[Legacy++];
    if (static_cast<obs::EventKind>(Want.K) != Ev.K || Want.Tid != Ev.Tid ||
        Want.Addr != Ev.Addr || Want.Value != Ev.Value) {
      OS << "record " << I << " (" << obs::eventKindName(Ev.K)
         << " tid " << Ev.Tid << " addr " << Ev.Addr
         << ") differs from legacy trace event " << (Legacy - 1);
      return OS.str();
    }
  }
  if (Legacy != Trace.size()) {
    OS << "parsed trace carries " << Legacy << " schedule events, legacy "
       << "trace has " << Trace.size();
    return OS.str();
  }
  if (Conflicts != R.Violations.size()) {
    OS << Conflicts << " conflict records for " << R.Violations.size()
       << " violations";
    return OS.str();
  }

  obs::TraceSummary Sum = obs::summarize(Data);
  uint64_t Accesses =
      Sum.CountByKind[static_cast<size_t>(obs::EventKind::Read)] +
      Sum.CountByKind[static_cast<size_t>(obs::EventKind::Write)];
  if (Accesses != R.Stats.TotalAccesses) {
    OS << "summary counts " << Accesses << " accesses, run reports "
       << R.Stats.TotalAccesses;
    return OS.str();
  }
  uint64_t Starts =
      Sum.CountByKind[static_cast<size_t>(obs::EventKind::ThreadStart)];
  // ThreadsSpawned counts every spawnThread call (the entry thread too),
  // and each one emits exactly one ThreadStart.
  if (Starts != R.Stats.ThreadsSpawned) {
    OS << Starts << " thread-start records for " << R.Stats.ThreadsSpawned
       << " spawned threads";
    return OS.str();
  }
  if (Data.Samples.size() != 1 || Data.Samples.back() != Snapshot)
    return "final stats sample does not round-trip";
  return std::string();
}

/// Compares the tail parser's decoded TraceData against a batch parse of
/// the same bytes. Empty string on agreement.
std::string diffTailData(const obs::TraceData &Tail,
                         const obs::TraceData &Batch) {
  std::ostringstream OS;
  if (Tail.Events.size() != Batch.Events.size()) {
    OS << "tail decoded " << Tail.Events.size() << " events, batch "
       << Batch.Events.size();
    return OS.str();
  }
  for (size_t I = 0; I < Tail.Events.size(); ++I) {
    const obs::Event &A = Tail.Events[I], &B = Batch.Events[I];
    if (A.K != B.K || A.Tid != B.Tid || A.Addr != B.Addr ||
        A.Value != B.Value || A.Extra != B.Extra) {
      OS << "event " << I << " differs between tail and batch parse";
      return OS.str();
    }
  }
  if (Tail.Samples.size() != Batch.Samples.size() ||
      Tail.SamplePos != Batch.SamplePos) {
    OS << "stats sample placement differs between tail and batch parse";
    return OS.str();
  }
  for (size_t I = 0; I < Tail.Samples.size(); ++I)
    if (Tail.Samples[I] != Batch.Samples[I]) {
      OS << "stats sample " << I << " differs between tail and batch parse";
      return OS.str();
    }
  return std::string();
}

/// Oracle 7: the incremental TailParser must agree with the batch parser
/// on the whole trace and on every prefix of it. The byte-by-byte feed
/// walks the tail parser through every prefix state in one O(n) pass;
/// batch prefix parses are sampled (bounded count) since each costs a
/// full reparse. Returns an empty string on agreement.
std::string checkTailAgreement(const std::string &Bytes,
                               const obs::TraceData &Batch) {
  std::ostringstream OS;

  // (a) Whole-buffer push: one shot.
  {
    obs::TailParser P;
    P.push(Bytes);
    if (!P.done())
      return "tail parser not done on a complete trace: " + P.diagnosis();
    if (std::string D = diffTailData(P.data(), Batch); !D.empty())
      return "whole-buffer push: " + D;
  }

  // (b) Byte-by-byte feed: the tail parser visits every prefix of the
  // stream as an intermediate state and must still land on the batch
  // result. Chunked for very large traces (same coverage per chunk
  // boundary, bounded cost).
  {
    obs::TailParser P;
    size_t Chunk = Bytes.size() <= (256u << 10) ? 1 : 251;
    for (size_t I = 0; I < Bytes.size() && !P.corrupt(); I += Chunk)
      P.push(std::string_view(Bytes).substr(I, Chunk));
    if (!P.done())
      return "incremental tail parse not done: " + P.diagnosis();
    if (std::string D = diffTailData(P.data(), Batch); !D.empty())
      return "incremental feed: " + D;
  }

  // (c) Sampled proper prefixes: the tail parser's diagnosis for a
  // truncated stream must be the batch parser's error for the same
  // bytes, and both must have decoded the same record prefix. The
  // sample set covers the header boundary, evenly spaced interior
  // cuts, and the last bytes (which truncate the end record).
  std::vector<size_t> Cuts;
  for (size_t L = 0; L <= 13 && L < Bytes.size(); ++L)
    Cuts.push_back(L);
  for (size_t K = 1; K <= 16; ++K)
    Cuts.push_back(Bytes.size() * K / 17);
  for (size_t Back = 1; Back <= 3 && Back < Bytes.size(); ++Back)
    Cuts.push_back(Bytes.size() - Back);
  for (size_t L : Cuts) {
    if (L >= Bytes.size())
      continue;
    std::string_view Prefix(Bytes.data(), L);
    obs::TraceData PData;
    std::string BatchError;
    if (obs::parseTrace(Prefix, PData, BatchError)) {
      OS << "batch parser accepted a " << L << "-byte proper prefix";
      return OS.str();
    }
    obs::TailParser P;
    P.push(Prefix);
    if (P.done()) {
      OS << "tail parser finished on a " << L << "-byte proper prefix";
      return OS.str();
    }
    if (P.diagnosis() != BatchError) {
      OS << "prefix " << L << ": tail diagnosis \"" << P.diagnosis()
         << "\" != batch error \"" << BatchError << "\"";
      return OS.str();
    }
    if (std::string D = diffTailData(P.data(), PData); !D.empty()) {
      OS << "prefix " << L << ": " << D;
      return OS.str();
    }
  }
  return std::string();
}

/// Oracle 6: the guard layer must agree across engines and policies.
/// \p R1 is the base run under Policy::Continue with no cap — the full
/// violation multiset. Returns an empty string on agreement.
std::string checkPolicyAgreement(interp::Interp &Interp,
                                 const interp::InterpOptions &BaseOpts,
                                 const interp::InterpResult &R1, Digest &D) {
  std::ostringstream OS;

  // (a) Replay the interpreter's violations through the rt runtime's
  // central dispatcher under `continue`: the two engines must agree on
  // the total violation count, and the dispatcher must permit every
  // access. RuntimeError violations (null deref, deadlock, livelock)
  // have no rt report kind and are excluded on both sides.
  rt::ReportSink Sink(/*MaxReports=*/1u << 20);
  guard::GuardConfig Cont; // Policy::Continue, no cap: the rt default.
  uint64_t Replayed = 0;
  for (const interp::Violation &V : R1.Violations) {
    rt::ReportKind RK = rt::ReportKind::ReadConflict;
    switch (V.K) {
    case interp::Violation::Kind::ReadConflict:
      RK = rt::ReportKind::ReadConflict;
      break;
    case interp::Violation::Kind::WriteConflict:
      RK = rt::ReportKind::WriteConflict;
      break;
    case interp::Violation::Kind::LockViolation:
      RK = rt::ReportKind::LockViolation;
      break;
    case interp::Violation::Kind::CastError:
      RK = rt::ReportKind::CastError;
      break;
    case interp::Violation::Kind::RuntimeError:
      continue;
    }
    rt::ConflictReport Rep;
    Rep.Kind = RK;
    Rep.Address = static_cast<uintptr_t>(V.Address);
    Rep.WhoTid = V.WhoTid;
    Rep.LastTid = V.LastTid;
    if (guard::onViolation(Cont, Rep, Sink) != guard::Verdict::Proceed)
      return "rt dispatcher blocked an access under continue policy";
    ++Replayed;
  }
  if (Sink.getTotalViolations() != Replayed) {
    OS << "rt dispatcher counted " << Sink.getTotalViolations()
       << " violations, interpreter reported " << Replayed;
    return OS.str();
  }

  // (b) The same schedule under `quarantine` must run to the same end
  // with the same output; demoting cells can only suppress re-fires, so
  // its violation multiset is contained in the continue run's.
  interp::InterpOptions QOpts = BaseOpts;
  QOpts.Trace = nullptr;
  QOpts.Sink = nullptr;
  QOpts.Guard.OnViolation = guard::Policy::Quarantine;
  interp::InterpResult Q = Interp.run(QOpts);
  if (Q.Output != R1.Output)
    return "quarantine run produced different output";
  if (Q.Completed != R1.Completed || Q.Deadlocked != R1.Deadlocked ||
      Q.OutOfSteps != R1.OutOfSteps || Q.Stats.Steps != R1.Stats.Steps) {
    OS << "quarantine run ended differently (completed " << Q.Completed
       << "/" << R1.Completed << ", steps " << Q.Stats.Steps << "/"
       << R1.Stats.Steps << ")";
    return OS.str();
  }
  if (Q.TotalViolations > R1.TotalViolations) {
    OS << "quarantine run reported " << Q.TotalViolations
       << " violations, continue run only " << R1.TotalViolations;
    return OS.str();
  }
  std::multiset<std::tuple<uint8_t, uint64_t, uint32_t>> ContSet;
  for (const interp::Violation &V : R1.Violations)
    ContSet.insert({static_cast<uint8_t>(V.K), V.Address, V.WhoLine});
  for (const interp::Violation &V : Q.Violations) {
    auto It = ContSet.find({static_cast<uint8_t>(V.K), V.Address, V.WhoLine});
    if (It == ContSet.end()) {
      OS << "quarantine run reported a violation the continue run did not"
         << " (addr " << V.Address << " line " << V.WhoLine << ")";
      return OS.str();
    }
    ContSet.erase(It);
  }

  // (c) A per-kind-capped continue run must not change execution or the
  // total count — the cap governs retention only.
  interp::InterpOptions COpts = BaseOpts;
  COpts.Trace = nullptr;
  COpts.Sink = nullptr;
  COpts.Guard.MaxReportsPerKind = 1;
  interp::InterpResult C = Interp.run(COpts);
  if (C.Output != R1.Output || C.TotalViolations != R1.TotalViolations) {
    OS << "capped run diverged (total " << C.TotalViolations << "/"
       << R1.TotalViolations << ")";
    return OS.str();
  }
  if (C.Violations.size() > 5) { // one per interp violation kind
    OS << "capped run retained " << C.Violations.size()
       << " reports with a per-kind cap of 1";
    return OS.str();
  }

  D.u64(Sink.getTotalViolations());
  D.u64(Q.TotalViolations);
  D.u64(C.Violations.size());
  return std::string();
}

} // namespace

OracleOutcome sharc::fuzz::runOracles(const std::string &Source,
                                      const OracleConfig &Cfg,
                                      racedet::ReplayPool &Pool) {
  OracleOutcome Out;
  Digest D;
  D.str(Source);

  // --- Front end. Parse/type failures break the generator's contract. ---
  Frontend Front(Source);
  if (!Front.Parsed) {
    Out.Failure = FailureKind::ParseError;
    Out.Detail = Front.Diags->render();
    return Out;
  }
  if (!Front.Typed) {
    Out.Failure = FailureKind::TypeError;
    Out.Detail = Front.Diags->render();
    return Out;
  }
  if (!Front.Analyzed) {
    Out.AnalysisRejected = true;
    Out.Detail = Front.Diags->render();
    Out.Digest = D.H;
    return Out;
  }

  // --- Oracle 1: print -> reparse -> reprint fixpoint. ---
  std::string FirstPrint = minic::printProgram(*Front.Prog);
  D.str(FirstPrint);
  {
    Frontend Again(stripPolyMarkers(FirstPrint));
    if (!Again.Analyzed) {
      Out.Failure = FailureKind::RoundTrip;
      Out.Detail = "printed program no longer compiles:\n" +
                   Again.Diags->render();
      return Out;
    }
    std::string SecondPrint = minic::printProgram(*Again.Prog);
    if (SecondPrint != FirstPrint) {
      Out.Failure = FailureKind::RoundTrip;
      Out.Detail = "reprint differs from first print";
      return Out;
    }
  }

  // --- Static checker; a rejection here is a recorded skip. ---
  checker::Checker Check(*Front.Prog, *Front.Diags);
  if (!Check.run()) {
    Out.CheckerRejected = true;
    Out.Detail = Front.Diags->render();
    Out.Digest = D.H;
    return Out;
  }

  // --- Schedule exploration: oracles 2-4 per scheduler seed. ---
  interp::Interp Interp(*Front.Prog, Check.getInstrumentation());
  std::vector<std::pair<uint64_t, interp::ExploreVerdict>> RandomVerdicts;
  uint64_t RandMaxSteps = 0;
  uint64_t RandMaxThreads = 0;
  for (unsigned K = 0; K < Cfg.Schedules; ++K) {
    uint64_t SeedState = Cfg.Seed + 1000003ull * K;
    uint64_t Seed = splitMix64(SeedState);
    if (!Seed)
      Seed = 1;

    std::vector<TraceEvent> Trace, Trace2;
    obs::TraceWriter Writer;
    interp::InterpOptions Opts;
    Opts.Seed = Seed;
    Opts.MaxSteps = Cfg.MaxSteps;
    Opts.Guard.OnViolation = Cfg.Policy;
    Opts.Trace = &Trace;
    Opts.Sink = &Writer; // oracle 5 watches the first run
    interp::InterpResult R1 = Interp.run(Opts);
    Opts.Trace = &Trace2;
    Opts.Sink = nullptr;
    interp::InterpResult R2 = Interp.run(Opts);
    ++Out.SchedulesRun;
    Out.ViolationsSeen += R1.Violations.size();

    // Oracle 2: bitwise determinism per seed.
    Digest D1, D2;
    digestRun(D1, R1, Trace);
    digestRun(D2, R2, Trace2);
    if (D1.H != D2.H || Trace != Trace2) {
      Out.Failure = FailureKind::Determinism;
      std::ostringstream OS;
      OS << "seed " << Seed << ": two runs differ (digest " << D1.H << " vs "
         << D2.H << ", trace " << Trace.size() << " vs " << Trace2.size()
         << " events)";
      Out.Detail = OS.str();
      return Out;
    }
    D.u64(Seed);
    D.u64(D1.H);
    RandomVerdicts.emplace_back(Seed, interp::classifyResult(R1));
    RandMaxSteps = std::max<uint64_t>(RandMaxSteps, R1.Stats.Steps);
    RandMaxThreads =
        std::max<uint64_t>(RandMaxThreads, R1.Stats.ThreadsSpawned);

    // Oracle 5: the binary trace round-trip must reproduce the run.
    if (std::string Mismatch = checkTraceRoundTrip(Writer, R1, Trace);
        !Mismatch.empty()) {
      Out.Failure = FailureKind::TraceMismatch;
      std::ostringstream OS;
      OS << "seed " << Seed << ": " << Mismatch;
      Out.Detail = OS.str();
      return Out;
    }

    // Oracle 7: the incremental tail parser must agree with the batch
    // parser on this trace and all of its prefixes. Reuses oracle 5's
    // serialised bytes; a fresh batch parse gives the comparison
    // baseline (checkTraceRoundTrip validated it already).
    {
      obs::TraceData Batch;
      std::string Error;
      if (!obs::parseTrace(Writer.buffer(), Batch, Error)) {
        Out.Failure = FailureKind::TailMismatch;
        Out.Detail = "finished trace does not batch-parse: " + Error;
        return Out;
      }
      if (std::string Mismatch = checkTailAgreement(Writer.buffer(), Batch);
          !Mismatch.empty()) {
        Out.Failure = FailureKind::TailMismatch;
        std::ostringstream OS;
        OS << "seed " << Seed << ": " << Mismatch;
        Out.Detail = OS.str();
        return Out;
      }
    }

    // Oracle 6: policy agreement across engines. First schedule only
    // (the checks re-run the interpreter twice), and only when the base
    // runs use `continue` — the oracle needs their full violation
    // multiset as its reference.
    if (K == 0 && Cfg.Policy == guard::Policy::Continue) {
      interp::InterpOptions Base;
      Base.Seed = Seed;
      Base.MaxSteps = Cfg.MaxSteps;
      if (std::string Mismatch = checkPolicyAgreement(Interp, Base, R1, D);
          !Mismatch.empty()) {
        Out.Failure = FailureKind::PolicyMismatch;
        std::ostringstream OS;
        OS << "seed " << Seed << ": " << Mismatch;
        Out.Detail = OS.str();
        return Out;
      }
      ++Out.PolicyChecks;
    }

    if (Trace.size() > Cfg.MaxTraceEvents) {
      ++Out.TraceSkips;
      ++Out.RcSkips;
      continue;
    }

    // Oracle 3: production detectors vs reference replays.
    RefRaceResult Ref = referenceRaces(Trace);
    {
      racedet::EraserDetector Eraser;
      racedet::HappensBeforeDetector Hb;
      Pool.replay(toReplayEvents(Trace), Eraser, Hb);

      std::vector<uint64_t> ProdEraser, ProdHb;
      for (uintptr_t G : Eraser.racyGranules())
        ProdEraser.push_back(G);
      for (uintptr_t G : Hb.racyGranules())
        ProdHb.push_back(G);

      if (ProdEraser != Ref.EraserRacy) {
        Out.Failure = FailureKind::EraserMismatch;
        std::ostringstream OS;
        OS << "seed " << Seed << ": production-only=["
           << joinAddrs(minus(ProdEraser, Ref.EraserRacy))
           << "] reference-only=["
           << joinAddrs(minus(Ref.EraserRacy, ProdEraser)) << "]";
        Out.Detail = OS.str();
        return Out;
      }
      if (ProdHb != Ref.HbRacy) {
        Out.Failure = FailureKind::HbMismatch;
        std::ostringstream OS;
        OS << "seed " << Seed << ": production-only=["
           << joinAddrs(minus(ProdHb, Ref.HbRacy)) << "] reference-only=["
           << joinAddrs(minus(Ref.HbRacy, ProdHb)) << "]";
        Out.Detail = OS.str();
        return Out;
      }
      std::vector<uint64_t> Agreed;
      std::set_intersection(Ref.EraserRacy.begin(), Ref.EraserRacy.end(),
                            Ref.HbRacy.begin(), Ref.HbRacy.end(),
                            std::back_inserter(Agreed));
      Out.RacyCells += Agreed.size();
      Out.EraserOnlyRacy += minus(Ref.EraserRacy, Ref.HbRacy).size();
      Out.HbOnlyRacy += minus(Ref.HbRacy, Ref.EraserRacy).size();
      for (uint64_t G : Ref.EraserRacy)
        D.u64(G);
      for (uint64_t G : Ref.HbRacy)
        D.u64(G ^ 0x5555555555555555ull);
    }

    // Oracle 4: RC engine agreement at every sharing-cast query.
    {
      std::set<unsigned> RcTids;
      std::vector<int64_t> Expected;
      uint64_t MaxSlot = 0;
      bool HasPtrEvents = false;
      for (const TraceEvent &Ev : Trace) {
        if (Ev.K == TraceEvent::Kind::PtrStore) {
          RcTids.insert(Ev.Tid);
          MaxSlot = std::max(MaxSlot, Ev.Addr);
          HasPtrEvents = true;
        } else if (Ev.K == TraceEvent::Kind::CastQuery) {
          RcTids.insert(Ev.Tid);
          Expected.push_back(Ev.Value);
          HasPtrEvents = true;
        }
      }
      if (!HasPtrEvents)
        continue;
      if (RcTids.size() > 63) {
        ++Out.RcSkips;
        continue;
      }
      std::vector<int64_t> Atomic =
          replayRc(rt::RcMode::Atomic, Trace, MaxSlot + 1);
      std::vector<int64_t> Lp =
          replayRc(rt::RcMode::LevanoniPetrank, Trace, MaxSlot + 1);
      if (Atomic != Expected || Lp != Expected) {
        Out.Failure = FailureKind::RcMismatch;
        std::ostringstream OS;
        OS << "seed " << Seed << ": counts at casts interp=[";
        for (size_t I = 0; I < Expected.size(); ++I)
          OS << (I ? "," : "") << Expected[I];
        OS << "] atomic=[";
        for (size_t I = 0; I < Atomic.size(); ++I)
          OS << (I ? "," : "") << Atomic[I];
        OS << "] lp=[";
        for (size_t I = 0; I < Lp.size(); ++I)
          OS << (I ? "," : "") << Lp[I];
        OS << "]";
        Out.Detail = OS.str();
        return Out;
      }
      for (int64_t C : Expected)
        D.u64(static_cast<uint64_t>(C));
    }
  }

  // --- Oracle 8: exploration agreement. A random schedule is one
  // interleaving, so when sharc-explore enumerates the program's
  // schedule space completely, every random verdict must be among the
  // explored verdict classes. Gated on all random runs being small
  // (the schedule space grows exponentially in steps and threads, and
  // every random interleaving must fit under the exploration's per-run
  // step cap for containment to be sound) and on Policy::Continue, the
  // policy explore's internal runs use; anything gated out or over
  // budget is a recorded skip, never a silent pass.
  if (Cfg.Explore && Cfg.Policy == guard::Policy::Continue &&
      RandMaxSteps <= 400 && RandMaxThreads <= 4) {
    interp::ExploreOptions EO;
    EO.MaxRuns = 2048;
    // Keep individual schedules shallow: the DPOR update is quadratic
    // in run depth, and a spin-wait interleaving can otherwise burn the
    // whole interpreter step budget in one run. A program whose first
    // run took <= 400 steps completes well within this; spinning
    // schedules get cut into an OutOfSteps class, which only ever adds
    // classes to the explored set (the containment check stays sound).
    EO.MaxStepsPerRun = 4096;
    EO.MaxTotalSteps = 1u << 18;
    interp::ExploreResult ER =
        interp::explore(*Front.Prog, Check.getInstrumentation(), EO);
    if (ER.Stats.InternalError) {
      Out.Failure = FailureKind::ExploreMismatch;
      Out.Detail = "exploration diverged on a replayed prefix "
                   "(scheduler determinism bug)";
      return Out;
    }
    if (!ER.complete()) {
      ++Out.ExploreSkips;
    } else {
      ++Out.ExploreChecks;
      Out.SchedulesExplored += ER.Stats.Runs;
      for (const auto &SV : RandomVerdicts) {
        if (!ER.verdictSeen(SV.second)) {
          Out.Failure = FailureKind::ExploreMismatch;
          std::ostringstream OS;
          OS << "seed " << SV.first << ": random-schedule verdict '"
             << SV.second.describe() << "' not among the "
             << ER.Verdicts.size() << " exhaustively explored classes";
          Out.Detail = OS.str();
          return Out;
        }
      }
      for (const interp::ExploreVerdict &V : ER.Verdicts) {
        D.u64(V.KindsMask);
        D.u64((V.Deadlocked ? 1u : 0u) | (V.OutOfSteps ? 2u : 0u) |
              (V.Completed ? 4u : 0u));
      }
      D.u64(ER.Stats.Runs);
    }
  } else if (Cfg.Explore) {
    ++Out.ExploreSkips;
  }

  Out.Digest = D.H;
  return Out;
}
