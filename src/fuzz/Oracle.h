//===-- fuzz/Oracle.h - Differential fuzzing oracles ------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential oracles sharc-fuzz runs over each generated program:
///
///   1. Round-trip: parse -> infer -> print -> reparse -> reprint must be
///      a fixpoint (byte-identical second print).
///   2. Determinism: two interpreter runs with the same scheduler seed
///      must produce identical results, output, stats, and traces.
///   3. Detector agreement: the production Eraser and vector-clock
///      detectors, driven through the multithreaded ReplayPool, must
///      report exactly the racy cells that independent single-threaded
///      reference implementations report for the same trace.
///   4. Reference-count agreement: replaying the trace's pointer-slot
///      stores through the Atomic and Levanoni-Petrank engines must
///      reproduce the interpreter's oneref count at every sharing cast,
///      and both engines must agree with each other.
///   5. Trace round-trip: serialising the run through the obs
///      TraceWriter and parsing the bytes back must reproduce the legacy
///      schedule trace event-for-event, carry one Conflict record per
///      violation, agree with the run's aggregate stats, and end with a
///      final StatsSnapshot sample equal to toStatsSnapshot(run).
///   6. Policy agreement (first schedule): the guard layer must behave
///      identically across engines. Replaying the run's violations
///      through the rt dispatcher under `continue` must preserve the
///      total count; re-running the schedule under `quarantine` must
///      produce the same output and completion with a violation multiset
///      contained in the continue run's; a per-kind-capped run must keep
///      the total while retaining at most cap-per-kind reports.
///   7. Tail agreement: feeding the serialised trace to the incremental
///      TailParser — whole, and again byte-by-byte so every prefix is a
///      parser state — must reproduce the batch parse exactly (records,
///      events, stats samples, diagnosis), and on sampled proper
///      prefixes the tail diagnosis must equal the batch parse error
///      for the same bytes.
///   8. Exploration agreement: when the program's schedule space is
///      small enough for sharc-explore to enumerate completely, every
///      random-schedule verdict (violation kinds, deadlock, step
///      exhaustion) must appear among the exhaustively explored verdict
///      classes — a random schedule is one interleaving, so exhaustive
///      enumeration must have seen its behaviour. Programs whose
///      exploration exhausts its budget are recorded as skips.
///
/// Parse/type failures on generated programs are generator-contract
/// violations and count as failures. Analysis or checker rejections are
/// recorded as skips (the generator aims for static validity but the
/// oracles must not mask checker evolution). Runtime violations,
/// deadlocks, and step exhaustion are legal program outcomes.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_FUZZ_ORACLE_H
#define SHARC_FUZZ_ORACLE_H

#include "racedet/TraceReplay.h"
#include "rt/Guard.h"

#include <cstdint>
#include <string>

namespace sharc {
namespace fuzz {

enum class FailureKind : uint8_t {
  None,
  ParseError,     ///< Generated program failed to parse.
  TypeError,      ///< Generated program failed expression typing.
  RoundTrip,      ///< Print->reparse->reprint not a fixpoint.
  Determinism,    ///< Same seed, different run.
  EraserMismatch, ///< Production Eraser != reference lockset replay.
  HbMismatch,     ///< Production vector clocks != reference HB replay.
  RcMismatch,     ///< Atomic / Levanoni-Petrank / interpreter counts differ.
  TraceMismatch,  ///< obs trace round-trip disagrees with the run.
  PolicyMismatch, ///< Guard policies disagree across engines or runs.
  TailMismatch,   ///< Incremental tail parse disagrees with batch parse.
  ExploreMismatch, ///< Random verdict outside the explored verdict set.
};

const char *failureKindName(FailureKind K);

struct OracleConfig {
  uint64_t Seed = 1;       ///< Base scheduler seed.
  unsigned Schedules = 4;  ///< Distinct scheduler seeds to explore.
  uint64_t MaxSteps = 1u << 17;
  size_t MaxTraceEvents = 400000; ///< Replay cutoff per schedule.
  /// Violation policy for the base interpreter runs (sharc-fuzz --policy
  /// or SHARC_POLICY). The policy-agreement oracle needs the continue
  /// run's full violation multiset as its reference, so it only fires
  /// when this is Policy::Continue (the default).
  guard::Policy Policy = guard::Policy::Continue;
  /// Run the exploration-agreement oracle (oracle 8). It gates itself
  /// on small first runs and also requires Policy::Continue (the
  /// policy explore's internal runs use).
  bool Explore = true;
};

/// Everything one program's oracle run produced. All fields (including
/// Detail and Digest) are deterministic functions of (source, config).
struct OracleOutcome {
  FailureKind Failure = FailureKind::None;
  std::string Detail; ///< Human-readable failure description.

  bool AnalysisRejected = false; ///< Sharing inference refused the program.
  bool CheckerRejected = false;  ///< Static checker refused the program.
  unsigned SchedulesRun = 0;
  unsigned TraceSkips = 0; ///< Schedules whose trace exceeded the cutoff.
  unsigned RcSkips = 0;    ///< Schedules skipped by the RC oracle.
  unsigned PolicyChecks = 0; ///< Schedules the policy oracle covered.
  unsigned ExploreChecks = 0; ///< Programs oracle 8 fully enumerated.
  unsigned ExploreSkips = 0;  ///< Programs oracle 8 gated out or gave
                              ///< up on (budget, big first run, policy).
  uint64_t SchedulesExplored = 0; ///< Exhaustive runs across programs.

  uint64_t ViolationsSeen = 0; ///< Runtime violations across schedules.
  uint64_t RacyCells = 0;      ///< Cells the detectors agreed are racy.
  /// Cross-algorithm diagnostics (expected to be nonzero sometimes;
  /// Eraser has algorithmic false negatives relative to happens-before).
  uint64_t EraserOnlyRacy = 0;
  uint64_t HbOnlyRacy = 0;

  uint64_t Digest = 0; ///< FNV-1a over every compared artifact.

  bool failed() const { return Failure != FailureKind::None; }
};

/// Runs every oracle over \p Source. \p Pool is reused across calls so
/// detector thread ids stay bounded over a whole fuzzing campaign.
OracleOutcome runOracles(const std::string &Source, const OracleConfig &Cfg,
                         racedet::ReplayPool &Pool);

/// Reverses the printer's poly-qualifier markers ("(q)" on struct tags,
/// "*q" on pointer declarators) so printed programs can be reparsed.
std::string stripPolyMarkers(const std::string &Printed);

} // namespace fuzz
} // namespace sharc

#endif // SHARC_FUZZ_ORACLE_H
