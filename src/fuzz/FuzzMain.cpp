//===-- fuzz/FuzzMain.cpp - sharc-fuzz driver -----------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The differential fuzzing driver. Three modes:
///
///   sharc-fuzz --count N --schedules K --seed S
///       Generate N random programs and run every oracle over K scheduler
///       seeds each. The report is a deterministic function of the flags:
///       re-running the same campaign must print byte-identical output.
///
///   sharc-fuzz --replay FILE | --replay-dir DIR
///       Re-run the oracles over saved corpus programs (regression mode;
///       corpus entries document bugs that have been fixed, so they must
///       pass).
///
///   Failures are summarized one per line; with --corpus-dir the failing
///   program (minimized when --minimize is given) is written there as a
///   reproducer with a header recording seeds and the failure kind.
///
/// Exit codes follow sharcc: 0 clean, 1 oracle failures, 2 usage errors.
///
//===----------------------------------------------------------------------===//

#include "fuzz/Minimizer.h"
#include "fuzz/Oracle.h"
#include "fuzz/ProgramGen.h"
#include "fuzz/Rng.h"
#include "racedet/TraceReplay.h"
#include "rt/Guard.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace sharc;
using namespace sharc::fuzz;

namespace {

struct FuzzOptions {
  uint64_t Count = 50;
  unsigned Schedules = 4;
  uint64_t Seed = 1;
  uint64_t MaxSteps = 1u << 17;
  guard::Policy Policy = guard::Policy::Continue;
  GenSize Size = GenSize::Normal; ///< --gen-size: generator profile.
  std::string CorpusDir;
  std::string ReplayFile;
  std::string ReplayDir;
  bool Minimize = false;
  bool Quiet = false;
};

int usage(const char *Argv0) {
  std::cerr
      << "usage: " << Argv0 << " [options]\n"
      << "  --count N       programs to generate (default 50)\n"
      << "  --schedules K   scheduler seeds per program (default 4)\n"
      << "  --seed S        campaign base seed (default 1)\n"
      << "  --max-steps N   interpreter step budget per run\n"
      << "  --policy P      violation policy for the base runs: abort,\n"
      << "                  continue (default), quarantine; SHARC_POLICY\n"
      << "                  sets the same knob, the flag wins\n"
      << "  --gen-size P    generator profile: normal (default) or small\n"
      << "                  (explore-friendly programs: no spin joins,\n"
      << "                  fewer spawns, tighter loops — most of them\n"
      << "                  fit the exploration oracle's budget)\n"
      << "  --corpus-dir D  write failing programs to D as reproducers\n"
      << "  --replay FILE   re-run the oracles over one saved program\n"
      << "  --replay-dir D  re-run the oracles over every .mc file in D\n"
      << "  --minimize      shrink failures before reporting/saving\n"
      << "  --quiet         only print failures and the summary\n";
  return 2;
}

bool parseU64(const char *S, uint64_t &Out) {
  char *End = nullptr;
  unsigned long long V = std::strtoull(S, &End, 10);
  if (!End || *End != '\0')
    return false;
  Out = V;
  return true;
}

/// State shared by generate and replay modes.
struct Campaign {
  FuzzOptions Opts;
  racedet::ReplayPool Pool;
  uint64_t Failures = 0;
  uint64_t Programs = 0;
  uint64_t SchedulesRun = 0;
  uint64_t AnalysisRejected = 0;
  uint64_t CheckerRejected = 0;
  uint64_t TraceSkips = 0;
  uint64_t RcSkips = 0;
  uint64_t PolicyChecks = 0;
  uint64_t ExploreChecks = 0;
  uint64_t ExploreSkips = 0;
  uint64_t SchedulesExplored = 0;
  uint64_t ViolationsSeen = 0;
  uint64_t RacyCells = 0;
  uint64_t EraserOnlyRacy = 0;
  uint64_t HbOnlyRacy = 0;
  uint64_t CampaignDigest = 0xCBF29CE484222325ull;

  OracleConfig oracleConfig(uint64_t OracleSeed) const {
    OracleConfig Cfg;
    Cfg.Seed = OracleSeed;
    Cfg.Schedules = Opts.Schedules;
    Cfg.MaxSteps = Opts.MaxSteps;
    Cfg.Policy = Opts.Policy;
    return Cfg;
  }

  void absorb(const OracleOutcome &Out) {
    ++Programs;
    SchedulesRun += Out.SchedulesRun;
    AnalysisRejected += Out.AnalysisRejected ? 1 : 0;
    CheckerRejected += Out.CheckerRejected ? 1 : 0;
    TraceSkips += Out.TraceSkips;
    RcSkips += Out.RcSkips;
    PolicyChecks += Out.PolicyChecks;
    ExploreChecks += Out.ExploreChecks;
    ExploreSkips += Out.ExploreSkips;
    SchedulesExplored += Out.SchedulesExplored;
    ViolationsSeen += Out.ViolationsSeen;
    RacyCells += Out.RacyCells;
    EraserOnlyRacy += Out.EraserOnlyRacy;
    HbOnlyRacy += Out.HbOnlyRacy;
    CampaignDigest ^= Out.Digest;
    CampaignDigest *= 0x100000001B3ull;
  }

  /// Re-runs the oracle checking for the same failure kind; the
  /// minimizer's predicate.
  bool failsSameWay(const std::string &Candidate, FailureKind Kind,
                    uint64_t OracleSeed) {
    OracleOutcome Out = runOracles(Candidate, oracleConfig(OracleSeed), Pool);
    return Out.Failure == Kind;
  }

  void reportFailure(const std::string &Source, const OracleOutcome &Out,
                     uint64_t GenSeed, uint64_t OracleSeed,
                     const std::string &Origin) {
    ++Failures;
    std::cout << "FAIL " << Origin << " kind=" << failureKindName(Out.Failure)
              << " oracle-seed=" << OracleSeed << "\n  " << Out.Detail
              << "\n";

    std::string Repro = Source;
    if (Opts.Minimize) {
      Repro = minimizeSource(Source, [&](const std::string &C) {
        return failsSameWay(C, Out.Failure, OracleSeed);
      });
      std::cout << "  minimized " << Source.size() << " -> " << Repro.size()
                << " bytes, " << std::count(Repro.begin(), Repro.end(), '\n')
                << " lines\n";
    }
    if (!Opts.CorpusDir.empty()) {
      std::error_code Ec;
      std::filesystem::create_directories(Opts.CorpusDir, Ec);
      std::ostringstream Name;
      Name << "fail-" << failureKindName(Out.Failure) << "-seed" << GenSeed
           << ".mc";
      std::filesystem::path Path =
          std::filesystem::path(Opts.CorpusDir) / Name.str();
      std::ofstream Of(Path);
      Of << "/* sharc-fuzz reproducer\n"
         << " * kind: " << failureKindName(Out.Failure) << "\n"
         << " * gen-seed: " << GenSeed << "\n"
         << " * oracle-seed: " << OracleSeed << "\n"
         << " * schedules: " << Opts.Schedules << "\n"
         << " * detail: " << Out.Detail << "\n"
         << " */\n"
         << Repro;
      std::cout << "  saved " << Path.string() << "\n";
    } else if (Opts.Minimize) {
      std::cout << "---- reproducer ----\n" << Repro << "--------------------\n";
    }
  }

  void summary() const {
    std::cout << "sharc-fuzz: " << Programs << " programs, " << SchedulesRun
              << " schedules, " << Failures << " failures\n"
              << "  skips: analysis=" << AnalysisRejected
              << " checker=" << CheckerRejected << " trace=" << TraceSkips
              << " rc=" << RcSkips << "\n"
              << "  policy=" << guard::policyName(Opts.Policy)
              << " policy-checks=" << PolicyChecks << "\n"
              << "  explore-checks=" << ExploreChecks
              << " explore-skips=" << ExploreSkips
              << " explored-schedules=" << SchedulesExplored << "\n"
              << "  runtime violations=" << ViolationsSeen
              << " racy-cells=" << RacyCells
              << " eraser-only=" << EraserOnlyRacy
              << " hb-only=" << HbOnlyRacy << "\n"
              << "  digest=" << CampaignDigest << "\n";
  }
};

int runGenerate(Campaign &C) {
  for (uint64_t I = 0; I < C.Opts.Count; ++I) {
    uint64_t State = C.Opts.Seed + I;
    uint64_t GenSeed = splitMix64(State);
    uint64_t OracleSeed = splitMix64(State);
    std::string Source = generateProgram(GenSeed, C.Opts.Size);
    OracleOutcome Out = runOracles(Source, C.oracleConfig(OracleSeed), C.Pool);
    C.absorb(Out);
    if (Out.failed()) {
      std::ostringstream Origin;
      Origin << "prog=" << I << " gen-seed=" << GenSeed;
      C.reportFailure(Source, Out, GenSeed, OracleSeed, Origin.str());
    } else if (!C.Opts.Quiet) {
      std::cout << "ok prog=" << I << " gen-seed=" << GenSeed
                << " schedules=" << Out.SchedulesRun
                << " violations=" << Out.ViolationsSeen
                << " racy=" << Out.RacyCells
                << (Out.AnalysisRejected
                        ? " (analysis-rejected)"
                        : Out.CheckerRejected ? " (checker-rejected)" : "")
                << "\n";
    }
  }
  C.summary();
  return C.Failures ? 1 : 0;
}

int replayOne(Campaign &C, const std::filesystem::path &Path) {
  std::ifstream In(Path);
  if (!In) {
    std::cerr << "sharc-fuzz: cannot read " << Path.string() << "\n";
    return 2;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  OracleOutcome Out =
      runOracles(Buf.str(), C.oracleConfig(C.Opts.Seed), C.Pool);
  C.absorb(Out);
  if (Out.failed())
    C.reportFailure(Buf.str(), Out, /*GenSeed=*/0, C.Opts.Seed,
                    "file=" + Path.filename().string());
  else if (!C.Opts.Quiet)
    std::cout << "ok file=" << Path.filename().string()
              << " schedules=" << Out.SchedulesRun << "\n";
  return 0;
}

int runReplay(Campaign &C) {
  if (!C.Opts.ReplayFile.empty()) {
    int Rc = replayOne(C, C.Opts.ReplayFile);
    if (Rc)
      return Rc;
  } else {
    std::error_code Ec;
    std::filesystem::directory_iterator It(C.Opts.ReplayDir, Ec);
    if (Ec) {
      std::cerr << "sharc-fuzz: cannot read directory " << C.Opts.ReplayDir
                << "\n";
      return 2;
    }
    std::vector<std::filesystem::path> Files;
    for (const auto &Entry : It)
      if (Entry.path().extension() == ".mc")
        Files.push_back(Entry.path());
    std::sort(Files.begin(), Files.end());
    for (const auto &Path : Files) {
      int Rc = replayOne(C, Path);
      if (Rc)
        return Rc;
    }
  }
  C.summary();
  return C.Failures ? 1 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  Campaign C;
  FuzzOptions &Opts = C.Opts;
  // SHARC_POLICY selects the base-run policy like it does for sharcc;
  // an explicit --policy flag (parsed later) wins.
  if (const char *Env = std::getenv("SHARC_POLICY"))
    if (!guard::parsePolicy(Env, Opts.Policy)) {
      std::cerr << "sharc-fuzz: bad SHARC_POLICY '" << Env
                << "' (want abort, continue, or quarantine)\n";
      return 2;
    }
  for (int I = 1; I < Argc; ++I) {
    std::string Arg = Argv[I];
    auto needValue = [&]() -> const char * {
      return I + 1 < Argc ? Argv[++I] : nullptr;
    };
    if (Arg == "--count") {
      const char *V = needValue();
      if (!V || !parseU64(V, Opts.Count))
        return usage(Argv[0]);
    } else if (Arg == "--schedules") {
      uint64_t K;
      const char *V = needValue();
      if (!V || !parseU64(V, K) || K == 0 || K > 1024)
        return usage(Argv[0]);
      Opts.Schedules = static_cast<unsigned>(K);
    } else if (Arg == "--seed") {
      const char *V = needValue();
      if (!V || !parseU64(V, Opts.Seed))
        return usage(Argv[0]);
    } else if (Arg == "--max-steps") {
      const char *V = needValue();
      if (!V || !parseU64(V, Opts.MaxSteps) || Opts.MaxSteps == 0)
        return usage(Argv[0]);
    } else if (Arg == "--policy") {
      const char *V = needValue();
      if (!V || !guard::parsePolicy(V, Opts.Policy))
        return usage(Argv[0]);
    } else if (Arg == "--gen-size") {
      const char *V = needValue();
      if (V && std::string(V) == "normal")
        Opts.Size = GenSize::Normal;
      else if (V && std::string(V) == "small")
        Opts.Size = GenSize::Small;
      else
        return usage(Argv[0]);
    } else if (Arg == "--corpus-dir") {
      const char *V = needValue();
      if (!V)
        return usage(Argv[0]);
      Opts.CorpusDir = V;
    } else if (Arg == "--replay") {
      const char *V = needValue();
      if (!V)
        return usage(Argv[0]);
      Opts.ReplayFile = V;
    } else if (Arg == "--replay-dir") {
      const char *V = needValue();
      if (!V)
        return usage(Argv[0]);
      Opts.ReplayDir = V;
    } else if (Arg == "--minimize") {
      Opts.Minimize = true;
    } else if (Arg == "--quiet") {
      Opts.Quiet = true;
    } else {
      std::cerr << "sharc-fuzz: unknown option '" << Arg << "'\n";
      return usage(Argv[0]);
    }
  }
  if (!Opts.ReplayFile.empty() && !Opts.ReplayDir.empty())
    return usage(Argv[0]);

  if (!Opts.ReplayFile.empty() || !Opts.ReplayDir.empty())
    return runReplay(C);
  return runGenerate(C);
}
