//===-- fuzz/RefDetectors.cpp ---------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "fuzz/RefDetectors.h"

#include <algorithm>
#include <map>

using namespace sharc;
using namespace sharc::fuzz;
using interp::TraceEvent;

namespace {

/// A map-backed vector clock (independent of racedet::VectorClock on
/// purpose: the reference must not share code with what it checks).
struct RefClock {
  std::map<unsigned, uint64_t> C;

  uint64_t get(unsigned Tid) const {
    auto It = C.find(Tid);
    return It == C.end() ? 0 : It->second;
  }
  void set(unsigned Tid, uint64_t V) { C[Tid] = V; }
  void joinWith(const RefClock &O) {
    for (const auto &[Tid, V] : O.C)
      if (V > get(Tid))
        C[Tid] = V;
  }
  bool leq(const RefClock &O) const {
    for (const auto &[Tid, V] : C)
      if (V > O.get(Tid))
        return false;
    return true;
  }
};

/// Reference Eraser: the SOSP'97 state machine, mirroring the production
/// detector's semantics (64 lock-id slots assigned in first-seen order,
/// candidate set initialized at the Exclusive->Shared transition,
/// reports in SharedModified with an empty set).
class RefEraser {
public:
  void acquire(unsigned Tid, uint64_t Lock) { held(Tid) |= bit(Lock); }
  void release(unsigned Tid, uint64_t Lock) { held(Tid) &= ~bit(Lock); }

  void access(unsigned Tid, uint64_t Addr, bool IsWrite) {
    uint64_t Held = held(Tid);
    Cell &C = Cells[Addr];
    switch (C.St) {
    case State::Virgin:
      C.St = State::Exclusive;
      C.Owner = Tid;
      break;
    case State::Exclusive:
      if (C.Owner == Tid)
        break;
      C.LockSet = Held;
      C.St = IsWrite ? State::SharedModified : State::Shared;
      break;
    case State::Shared:
      C.LockSet &= Held;
      if (IsWrite)
        C.St = State::SharedModified;
      break;
    case State::SharedModified:
      C.LockSet &= Held;
      break;
    }
    if (C.St == State::SharedModified && C.LockSet == 0)
      C.Reported = true;
  }

  std::vector<uint64_t> racy() const {
    std::vector<uint64_t> Out;
    for (const auto &[Addr, C] : Cells)
      if (C.Reported)
        Out.push_back(Addr);
    std::sort(Out.begin(), Out.end());
    return Out;
  }

private:
  enum class State : uint8_t { Virgin, Exclusive, Shared, SharedModified };
  struct Cell {
    State St = State::Virgin;
    unsigned Owner = 0;
    uint64_t LockSet = ~uint64_t(0);
    bool Reported = false;
  };

  uint64_t &held(unsigned Tid) { return HeldMasks[Tid]; }
  uint64_t bit(uint64_t Lock) {
    auto [It, Inserted] = LockIds.emplace(Lock, LockIds.size());
    (void)Inserted;
    return uint64_t(1) << (It->second % 64);
  }

  std::map<uint64_t, size_t> LockIds;
  std::map<unsigned, uint64_t> HeldMasks;
  std::map<uint64_t, Cell> Cells;
};

/// Reference happens-before: per-thread clocks, lock release/acquire
/// edges, last-write epoch plus read clock per cell.
class RefHb {
public:
  void threadBegin(unsigned Tid) {
    RefClock &C = Clocks[Tid];
    if (C.get(Tid) == 0)
      C.set(Tid, 1);
  }
  void acquire(unsigned Tid, uint64_t Lock) {
    threadBegin(Tid);
    Clocks[Tid].joinWith(LockClocks[Lock]);
  }
  void release(unsigned Tid, uint64_t Lock) {
    threadBegin(Tid);
    RefClock &C = Clocks[Tid];
    LockClocks[Lock] = C;
    C.set(Tid, C.get(Tid) + 1);
  }
  void access(unsigned Tid, uint64_t Addr, bool IsWrite) {
    threadBegin(Tid);
    RefClock &TC = Clocks[Tid];
    Cell &C = Cells[Addr];
    bool Race = false;
    if (C.WriteClock != 0 && C.WriteTid != Tid &&
        C.WriteClock > TC.get(C.WriteTid))
      Race = true;
    if (IsWrite) {
      if (!C.Reads.leq(TC))
        Race = true;
      C.WriteTid = Tid;
      C.WriteClock = TC.get(Tid);
      C.Reads = RefClock();
    } else {
      C.Reads.set(Tid, TC.get(Tid));
    }
    if (Race)
      C.Reported = true;
  }

  std::vector<uint64_t> racy() const {
    std::vector<uint64_t> Out;
    for (const auto &[Addr, C] : Cells)
      if (C.Reported)
        Out.push_back(Addr);
    std::sort(Out.begin(), Out.end());
    return Out;
  }

private:
  struct Cell {
    unsigned WriteTid = 0;
    uint64_t WriteClock = 0;
    RefClock Reads;
    bool Reported = false;
  };
  std::map<unsigned, RefClock> Clocks;
  std::map<uint64_t, RefClock> LockClocks;
  std::map<uint64_t, Cell> Cells;
};

} // namespace

RefRaceResult sharc::fuzz::referenceRaces(
    const std::vector<TraceEvent> &Trace) {
  RefEraser E;
  RefHb H;
  for (const TraceEvent &Ev : Trace) {
    switch (Ev.K) {
    case TraceEvent::Kind::Read:
      E.access(Ev.Tid, Ev.Addr, false);
      H.access(Ev.Tid, Ev.Addr, false);
      break;
    case TraceEvent::Kind::Write:
      E.access(Ev.Tid, Ev.Addr, true);
      H.access(Ev.Tid, Ev.Addr, true);
      break;
    case TraceEvent::Kind::LockAcquire:
      E.acquire(Ev.Tid, Ev.Addr);
      H.acquire(Ev.Tid, Ev.Addr);
      break;
    case TraceEvent::Kind::LockRelease:
      E.release(Ev.Tid, Ev.Addr);
      H.release(Ev.Tid, Ev.Addr);
      break;
    case TraceEvent::Kind::SpawnEdge:
      // Parent half of the spawn edge: release the token.
      E.release(Ev.Tid, Ev.Addr);
      H.release(Ev.Tid, Ev.Addr);
      break;
    case TraceEvent::Kind::ThreadStart:
      H.threadBegin(Ev.Tid);
      if (Ev.Addr != 0) {
        E.acquire(Ev.Tid, Ev.Addr);
        H.acquire(Ev.Tid, Ev.Addr);
        E.release(Ev.Tid, Ev.Addr);
        H.release(Ev.Tid, Ev.Addr);
      }
      break;
    case TraceEvent::Kind::ThreadExit:
    case TraceEvent::Kind::PtrStore:
    case TraceEvent::Kind::CastQuery:
      break;
    }
  }
  return RefRaceResult{E.racy(), H.racy()};
}
