//===-- support/Diagnostics.cpp -------------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/Diagnostics.h"

#include "support/SourceManager.h"

using namespace sharc;

void DiagnosticEngine::add(DiagLevel Level, SourceLoc Loc,
                           std::string Message) {
  Diags.push_back(Diagnostic{Level, Loc, std::move(Message)});
  if (Level == DiagLevel::Error)
    ++NumErrors;
  else if (Level == DiagLevel::Warning)
    ++NumWarnings;
}

void DiagnosticEngine::error(SourceLoc Loc, std::string Message) {
  add(DiagLevel::Error, Loc, std::move(Message));
}

void DiagnosticEngine::warning(SourceLoc Loc, std::string Message) {
  add(DiagLevel::Warning, Loc, std::move(Message));
}

void DiagnosticEngine::note(SourceLoc Loc, std::string Message) {
  add(DiagLevel::Note, Loc, std::move(Message));
}

bool DiagnosticEngine::containsMessage(const std::string &Needle) const {
  for (const Diagnostic &D : Diags)
    if (D.Message.find(Needle) != std::string::npos)
      return true;
  return false;
}

static const char *levelName(DiagLevel Level) {
  switch (Level) {
  case DiagLevel::Note:
    return "note";
  case DiagLevel::Warning:
    return "warning";
  case DiagLevel::Error:
    return "error";
  }
  return "unknown";
}

std::string DiagnosticEngine::render() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += SM.formatLoc(D.Loc);
    Out += ": ";
    Out += levelName(D.Level);
    Out += ": ";
    Out += D.Message;
    Out += '\n';
    if (D.Loc.isValid()) {
      std::string_view Line = SM.getLine(D.Loc.File, D.Loc.Line);
      if (!Line.empty()) {
        Out += "  ";
        Out += Line;
        Out += "\n  ";
        for (uint32_t I = 1; I < D.Loc.Col; ++I)
          Out += ' ';
        Out += "^\n";
      }
    }
  }
  return Out;
}
