//===-- support/Diagnostics.h - Diagnostic engine ---------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small diagnostics engine. Every stage of the pipeline (parser,
/// inference, checker, interpreter) reports through a DiagnosticEngine so
/// tests can assert on structured diagnostics rather than scraping text.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SUPPORT_DIAGNOSTICS_H
#define SHARC_SUPPORT_DIAGNOSTICS_H

#include "support/SourceLoc.h"

#include <string>
#include <vector>

namespace sharc {

class SourceManager;

/// Severity of a diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One rendered diagnostic. Notes attach to the preceding warning/error.
struct Diagnostic {
  DiagLevel Level = DiagLevel::Error;
  SourceLoc Loc;
  std::string Message;
};

/// Collects diagnostics for a compilation. The engine stores structured
/// diagnostics; render() turns them into a human-readable listing with
/// source snippets.
class DiagnosticEngine {
public:
  explicit DiagnosticEngine(const SourceManager &SM) : SM(SM) {}

  void error(SourceLoc Loc, std::string Message);
  void warning(SourceLoc Loc, std::string Message);
  void note(SourceLoc Loc, std::string Message);

  unsigned getNumErrors() const { return NumErrors; }
  unsigned getNumWarnings() const { return NumWarnings; }
  bool hasErrors() const { return NumErrors != 0; }

  const std::vector<Diagnostic> &getDiagnostics() const { return Diags; }

  /// \returns true if any stored diagnostic message contains \p Needle.
  bool containsMessage(const std::string &Needle) const;

  /// Renders all diagnostics as "<file>:<line>:<col>: <level>: <message>"
  /// lines followed by the offending source line and a caret.
  std::string render() const;

  void clear() {
    Diags.clear();
    NumErrors = NumWarnings = 0;
  }

private:
  void add(DiagLevel Level, SourceLoc Loc, std::string Message);

  const SourceManager &SM;
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
  unsigned NumWarnings = 0;
};

} // namespace sharc

#endif // SHARC_SUPPORT_DIAGNOSTICS_H
