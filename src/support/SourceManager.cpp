//===-- support/SourceManager.cpp -----------------------------------------===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//

#include "support/SourceManager.h"

#include <cassert>
#include <cstdio>

using namespace sharc;

FileId SourceManager::addBuffer(std::string Name, std::string Text) {
  FileEntry Entry;
  Entry.Name = std::move(Name);
  Entry.Text = std::move(Text);
  Entry.LineStarts.push_back(0);
  for (size_t I = 0, E = Entry.Text.size(); I != E; ++I)
    if (Entry.Text[I] == '\n')
      Entry.LineStarts.push_back(I + 1);
  Files.push_back(std::move(Entry));
  return static_cast<FileId>(Files.size() - 1);
}

FileId SourceManager::addFile(const std::string &Path, std::string &Error) {
  FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return InvalidFileId;
  }
  std::string Text;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Text.append(Buf, N);
  std::fclose(F);
  return addBuffer(Path, std::move(Text));
}

std::string_view SourceManager::getFileName(FileId File) const {
  assert(File < Files.size() && "invalid FileId");
  return Files[File].Name;
}

std::string_view SourceManager::getText(FileId File) const {
  assert(File < Files.size() && "invalid FileId");
  return Files[File].Text;
}

std::string_view SourceManager::getLine(FileId File, uint32_t Line) const {
  if (File >= Files.size() || Line == 0)
    return {};
  const FileEntry &Entry = Files[File];
  if (Line > Entry.LineStarts.size())
    return {};
  size_t Begin = Entry.LineStarts[Line - 1];
  size_t End = Line < Entry.LineStarts.size() ? Entry.LineStarts[Line] - 1
                                              : Entry.Text.size();
  return std::string_view(Entry.Text).substr(Begin, End - Begin);
}

std::string SourceManager::formatLoc(SourceLoc Loc) const {
  if (!Loc.isValid())
    return "<unknown>";
  std::string Result(getFileName(Loc.File));
  Result += ':';
  Result += std::to_string(Loc.Line);
  Result += ':';
  Result += std::to_string(Loc.Col);
  return Result;
}
