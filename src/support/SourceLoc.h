//===-- support/SourceLoc.h - Source locations ------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lightweight source-position value types shared by the MiniC frontend,
/// the static checker, and runtime conflict reports.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SUPPORT_SOURCELOC_H
#define SHARC_SUPPORT_SOURCELOC_H

#include <cstdint>
#include <string>

namespace sharc {

/// Identifies a file registered with a SourceManager.
using FileId = uint32_t;

/// The FileId used for locations that do not come from any file (builtins,
/// synthesized nodes).
inline constexpr FileId InvalidFileId = ~0u;

/// A single position in a source file. Line and column are 1-based; a
/// default-constructed SourceLoc is invalid.
struct SourceLoc {
  FileId File = InvalidFileId;
  uint32_t Line = 0;
  uint32_t Col = 0;

  SourceLoc() = default;
  SourceLoc(FileId File, uint32_t Line, uint32_t Col)
      : File(File), Line(Line), Col(Col) {}

  bool isValid() const { return File != InvalidFileId && Line != 0; }

  friend bool operator==(const SourceLoc &A, const SourceLoc &B) {
    return A.File == B.File && A.Line == B.Line && A.Col == B.Col;
  }
  friend bool operator!=(const SourceLoc &A, const SourceLoc &B) {
    return !(A == B);
  }
};

/// A half-open [Begin, End) region of source text.
struct SourceRange {
  SourceLoc Begin;
  SourceLoc End;

  SourceRange() = default;
  explicit SourceRange(SourceLoc Loc) : Begin(Loc), End(Loc) {}
  SourceRange(SourceLoc Begin, SourceLoc End) : Begin(Begin), End(End) {}

  bool isValid() const { return Begin.isValid(); }
};

} // namespace sharc

#endif // SHARC_SUPPORT_SOURCELOC_H
