//===-- support/SourceManager.h - Owns source buffers -----------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// SourceManager owns the text of every file being compiled and resolves
/// SourceLocs back to file names and line snippets for diagnostics.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SUPPORT_SOURCEMANAGER_H
#define SHARC_SUPPORT_SOURCEMANAGER_H

#include "support/SourceLoc.h"

#include <string>
#include <string_view>
#include <vector>

namespace sharc {

/// Owns source text for the duration of a compilation and maps FileIds back
/// to names and contents. FileIds are dense indices into the managed list.
class SourceManager {
public:
  /// Registers a buffer under \p Name and returns its FileId. The text is
  /// copied into the manager.
  FileId addBuffer(std::string Name, std::string Text);

  /// Reads \p Path from disk and registers it. Returns InvalidFileId and
  /// fills \p Error if the file cannot be read.
  FileId addFile(const std::string &Path, std::string &Error);

  /// \returns the name the file was registered under.
  std::string_view getFileName(FileId File) const;

  /// \returns the full text of the file.
  std::string_view getText(FileId File) const;

  /// \returns the text of 1-based line \p Line without its newline, or an
  /// empty view if the line does not exist.
  std::string_view getLine(FileId File, uint32_t Line) const;

  /// Renders "file:line:col" for use in diagnostics and conflict reports.
  std::string formatLoc(SourceLoc Loc) const;

  unsigned getNumFiles() const { return static_cast<unsigned>(Files.size()); }

private:
  struct FileEntry {
    std::string Name;
    std::string Text;
    /// Byte offset of the start of each line; LineStarts[0] == 0.
    std::vector<size_t> LineStarts;
  };

  std::vector<FileEntry> Files;
};

} // namespace sharc

#endif // SHARC_SUPPORT_SOURCEMANAGER_H
