//===-- support/StringInterner.h - Identifier interning ---------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Interns identifier spellings so the frontend can compare names by
/// pointer and AST nodes can hold stable string_views.
///
//===----------------------------------------------------------------------===//

#ifndef SHARC_SUPPORT_STRINGINTERNER_H
#define SHARC_SUPPORT_STRINGINTERNER_H

#include <memory>
#include <string>
#include <string_view>
#include <unordered_set>

namespace sharc {

/// Owns one copy of every distinct string handed to intern(). Returned
/// views remain valid for the interner's lifetime; equal strings intern to
/// views over the same storage, so data() pointers can be compared.
class StringInterner {
public:
  std::string_view intern(std::string_view Str) {
    auto It = Pool.find(std::string(Str));
    if (It != Pool.end())
      return *It;
    auto [Inserted, DidInsert] = Pool.insert(std::string(Str));
    (void)DidInsert;
    return *Inserted;
  }

  size_t size() const { return Pool.size(); }

private:
  std::unordered_set<std::string> Pool;
};

} // namespace sharc

#endif // SHARC_SUPPORT_STRINGINTERNER_H
