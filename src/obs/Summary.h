// Trace analysis: the library behind `sharc-trace` (DESIGN.md §10).
// Everything here is pure — a decoded TraceData in, aggregate tables or
// rendered text out — so the fuzzer's fifth oracle and the CLI share
// one implementation.
#ifndef SHARC_OBS_SUMMARY_H
#define SHARC_OBS_SUMMARY_H

#include "obs/TraceFile.h"

#include <cstdint>
#include <string>
#include <vector>

namespace sharc::obs {

struct TraceSummary {
  uint64_t TotalEvents = 0;
  uint64_t CountByKind[NumEventKinds] = {};
  uint64_t ConflictsByKind[NumConflictKinds] = {};

  struct PerThread {
    uint32_t Tid = 0;
    uint64_t Reads = 0;
    uint64_t Writes = 0;
    uint64_t LockOps = 0; // acquire/release incl. shared
    uint64_t Casts = 0;   // CastQuery + SharingCast
    uint64_t Conflicts = 0;
  };
  std::vector<PerThread> Threads; // sorted by Tid

  struct LockInfo {
    uint64_t Addr = 0;
    uint64_t Acquires = 0;       // exclusive
    uint64_t SharedAcquires = 0; // rwlock read side
    uint32_t DistinctTids = 0;   // threads that ever acquired it
  };
  std::vector<LockInfo> Locks; // sorted by total acquires, descending

  struct Granule {
    uint64_t Addr = 0; // granule base (Addr >> GranuleShift << GranuleShift)
    uint64_t Accesses = 0;
  };
  std::vector<Granule> HotGranules; // top-N by accesses, descending

  struct ConflictEntry {
    size_t Pos = 0; // index into TraceData::Events
    Event Ev;
  };
  std::vector<ConflictEntry> Conflicts; // in stream order

  uint64_t conflictCount() const {
    return CountByKind[static_cast<unsigned>(EventKind::Conflict)];
  }
  uint64_t accessCount() const {
    return CountByKind[static_cast<unsigned>(EventKind::Read)] +
           CountByKind[static_cast<unsigned>(EventKind::Write)];
  }
};

/// Aggregates a decoded trace. GranuleShift groups access addresses for
/// the hot-granule table (4 matches rt::RuntimeConfig's default).
TraceSummary summarize(const TraceData &Data, unsigned GranuleShift = 4,
                       size_t TopGranules = 10);

/// Human-readable report: totals, per-thread histogram, lock-contention
/// table, hottest granules, conflict timeline, final stats sample.
std::string renderSummary(const TraceSummary &Sum, const TraceData &Data);

/// Re-emits the trace as the fuzzer's replay schedule: one event per
/// line, `<kind> <tid> <addr>`, with the exact mapping the differential
/// fuzzer applies before racedet::ReplayPool::replay (addresses scaled
/// to 8-byte detector granules, spawn edges lowered to lock releases,
/// refcount-only events dropped).
std::string renderSchedule(const TraceData &Data);

/// Every record, one line each, for debugging.
std::string renderDump(const TraceData &Data);

} // namespace sharc::obs

#endif // SHARC_OBS_SUMMARY_H
