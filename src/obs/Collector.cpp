#include "obs/Collector.h"

namespace sharc::obs {

namespace {

std::atomic<uint64_t> NextCollectorId{1};

size_t roundUpPow2(size_t N) {
  size_t P = 1;
  while (P < N)
    P <<= 1;
  return P;
}

// Thread-local cache mapping live Collector instances to this thread's
// ring. Entries for destroyed collectors are invalidated by the Id
// check (ids are never reused).
struct TlsEntry {
  const void *C;
  uint64_t Id;
  void *Ring;
};

thread_local std::vector<TlsEntry> TlsRings;

// Spans travel through the event rings packed under bit 7 of the kind
// byte (real EventKind values stop at NumEventKinds - 1 = 13, far below
// the sentinel range): K = 0x80 | Stage << 1 | Begin, Addr = Req,
// Value = TimeNs, Extra = Arg, Tid = Tid. The sentinel never escapes
// the Collector — drainLocked unpacks it back into a SpanRecord.
constexpr uint8_t SpanKindBit = 0x80;

Event packSpan(const SpanRecord &S) {
  Event Ev;
  Ev.K = static_cast<EventKind>(
      SpanKindBit | (static_cast<uint8_t>(S.Stage) << 1) | (S.Begin ? 1 : 0));
  Ev.Tid = S.Tid;
  Ev.Addr = S.Req;
  Ev.Value = static_cast<int64_t>(S.TimeNs);
  Ev.Extra = S.Arg;
  return Ev;
}

SpanRecord unpackSpan(const Event &Ev) {
  uint8_t Raw = static_cast<uint8_t>(Ev.K);
  SpanRecord S;
  S.Tid = Ev.Tid;
  S.Req = Ev.Addr;
  S.Stage = static_cast<SpanStage>((Raw & ~SpanKindBit) >> 1);
  S.Begin = (Raw & 1) != 0;
  S.TimeNs = static_cast<uint64_t>(Ev.Value);
  S.Arg = Ev.Extra;
  return S;
}

} // namespace

Collector::Collector(Sink &Downstream, size_t RingCapacity)
    : Downstream(Downstream),
      Capacity(roundUpPow2(RingCapacity < 2 ? 2 : RingCapacity)),
      Id(NextCollectorId.fetch_add(1, std::memory_order_relaxed)) {}

Collector::~Collector() { flush(); }

Collector::Ring &Collector::myRing() {
  for (const TlsEntry &E : TlsRings)
    if (E.C == this && E.Id == Id)
      return *static_cast<Ring *>(E.Ring);
  std::lock_guard<std::mutex> Lock(Mu);
  Rings.push_back(std::make_unique<Ring>(Capacity));
  Ring *R = Rings.back().get();
  TlsRings.push_back(TlsEntry{this, Id, R});
  return *R;
}

void Collector::push(const Event &Ev) {
  Ring &R = myRing();
  size_t Head = R.Head.load(std::memory_order_relaxed);
  if (Head - R.Tail.load(std::memory_order_acquire) == R.Buf.size()) {
    // Ring full: the producer drains its own ring under the collector
    // mutex. Back-pressure instead of drops keeps every record.
    std::lock_guard<std::mutex> Lock(Mu);
    drainLocked(R);
  }
  R.Buf[Head & R.Mask] = Ev;
  R.Head.store(Head + 1, std::memory_order_release);
}

void Collector::event(const Event &Ev) { push(Ev); }

void Collector::span(const SpanRecord &S) { push(packSpan(S)); }

void Collector::stats(const rt::StatsSnapshot &S) {
  std::lock_guard<std::mutex> Lock(Mu);
  // Drain first so the sample lands after this thread's queued events.
  for (auto &R : Rings)
    drainLocked(*R);
  Downstream.stats(S);
}

// Profile records arrive at thread retire — rare enough to take the
// mutex directly. Rings drain first so the records land after every
// event the retiring thread already published.
void Collector::siteProfile(const SiteProfileRecord &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &Ring : Rings)
    drainLocked(*Ring);
  Downstream.siteProfile(R);
}

void Collector::lockProfile(const LockProfileRecord &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &Ring : Rings)
    drainLocked(*Ring);
  Downstream.lockProfile(R);
}

void Collector::selfOverhead(const SelfOverheadRecord &R) {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &Ring : Rings)
    drainLocked(*Ring);
  Downstream.selfOverhead(R);
}

void Collector::flush() {
  std::lock_guard<std::mutex> Lock(Mu);
  for (auto &R : Rings)
    drainLocked(*R);
  Downstream.flush();
}

void Collector::drainLocked(Ring &R) {
  size_t Tail = R.Tail.load(std::memory_order_relaxed);
  size_t Head = R.Head.load(std::memory_order_acquire);
  while (Tail != Head) {
    const Event &Ev = R.Buf[Tail & R.Mask];
    if (static_cast<uint8_t>(Ev.K) & SpanKindBit)
      Downstream.span(unpackSpan(Ev));
    else
      Downstream.event(Ev);
    ++Tail;
  }
  R.Tail.store(Tail, std::memory_order_release);
}

size_t Collector::ringCount() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Rings.size();
}

} // namespace sharc::obs
