// Profile aggregation and the §6 annotation advisor (DESIGN.md §11).
//
// Pure functions from a decoded TraceData to aggregate tables, exactly
// like Summary.h: `sharc-trace profile` and the tests share one
// implementation. The advisor reproduces the paper's tuning loop —
// rank the sites burning dynamic-check time, then propose the cheapest
// sharing mode the observed behaviour permits. Static validation of a
// proposal (re-running the checker with the annotation applied) lives
// in the CLI, which links the front end; this layer only filters on
// dynamic evidence (single accessor, no conflicts).
#ifndef SHARC_OBS_PROFILE_H
#define SHARC_OBS_PROFILE_H

#include "obs/TraceFile.h"

#include <string>
#include <vector>

namespace sharc::obs {

struct ProfileReport {
  /// One source site × check kind, merged across threads.
  struct Site {
    std::string File;   // "" when the producer had no site descriptor
    std::string LValue;
    uint32_t Line = 0;
    CheckKind Kind = CheckKind::DynamicRead;
    uint64_t Count = 0;
    uint64_t Bytes = 0;
    uint64_t Cycles = 0;
    uint64_t Samples = 0;
    std::vector<uint32_t> Tids; // distinct accessor threads, sorted

    bool known() const { return !File.empty() || Line != 0; }

    /// Estimated total cost: sampled cycles scaled up to the full
    /// count when TSC samples exist, otherwise the raw check count
    /// (the interpreter's unit-cost model).
    uint64_t cost() const {
      return Samples ? Cycles * (double(Count) / double(Samples)) : Count;
    }
  };

  /// One lock, merged across threads and acquirer sites.
  struct Lock {
    uint64_t Lock = 0;
    uint64_t Acquires = 0;
    uint64_t Contended = 0;
    uint64_t WaitCycles = 0;
    uint64_t HoldCycles = 0;
    uint64_t WaitHist[NumHistBuckets] = {};
    uint64_t HoldHist[NumHistBuckets] = {};
    std::vector<uint32_t> Tids;

    struct Acquirer {
      std::string File;
      uint32_t Line = 0;
      uint64_t Acquires = 0;
      uint64_t WaitCycles = 0;
    };
    std::vector<Acquirer> Acquirers; // sorted by WaitCycles, descending
  };

  std::vector<Site> Sites; // sorted by cost, descending
  std::vector<Lock> Locks; // sorted by WaitCycles, descending

  // Per-kind totals; must exactly equal the run's final StatsSnapshot
  // (sharc-trace profile cross-checks and reports).
  uint64_t KindCount[NumCheckKinds] = {};
  uint64_t KindBytes[NumCheckKinds] = {};
  uint64_t KindCost[NumCheckKinds] = {};

  // Profiler self-accounting, summed over threads.
  SelfOverheadRecord Overhead;
  uint64_t OverheadRecords = 0;

  // Source lines that appear as the faulting access of a Conflict
  // event (sorted, distinct) — dynamic evidence against weakening.
  std::vector<uint32_t> ConflictLines;

  uint64_t totalCount() const;
  uint64_t dynCost() const; // DynamicRead + DynamicWrite cost
  /// Checks attributed to a concrete site / all checks, as counts.
  uint64_t attributedCount() const;
};

ProfileReport buildProfile(const TraceData &Data);

/// A proposed annotation change.
struct Suggestion {
  enum class Action {
    MakePrivate, // single-thread hot dynamic site -> `private`
    CoarsenLock, // contended lock -> widen the locked region
  };
  Action A = Action::MakePrivate;
  std::string LValue;
  std::string File;
  uint32_t Line = 0;
  double CostPct = 0; // share of the relevant cost category
  uint32_t Tid = 0;   // the sole accessor (MakePrivate)
  uint64_t Lock = 0;  // the lock (CoarsenLock)
  std::string Rationale;
};

/// The advisor rules (DESIGN.md §11.4). MinSitePct gates how hot a
/// dynamic site must be before a mode change is worth suggesting;
/// MinLockPct gates the wait-time share for lock coarsening.
std::vector<Suggestion> advise(const ProfileReport &R,
                               double MinSitePct = 5.0,
                               double MinLockPct = 25.0);

/// Human-readable report: per-kind cost table, ranked hot sites, lock
/// contention with acquirer attribution, self-overhead, attribution
/// coverage, and the exact-match cross-check against the trace's final
/// stats sample (when one is present).
std::string renderProfile(const ProfileReport &R, const TraceData &Data,
                          size_t TopSites = 20);

/// One suggestion as a stable one-line string (shared by the CLI and
/// the walkthrough docs).
std::string renderSuggestion(const Suggestion &S);

} // namespace sharc::obs

#endif // SHARC_OBS_PROFILE_H
