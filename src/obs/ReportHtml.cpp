#include "obs/ReportHtml.h"

#include "obs/Profile.h"
#include "obs/Summary.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <vector>

namespace sharc::obs {

namespace {

void esc(std::string &Out, std::string_view S) {
  for (char C : S) {
    switch (C) {
    case '&':
      Out += "&amp;";
      break;
    case '<':
      Out += "&lt;";
      break;
    case '>':
      Out += "&gt;";
      break;
    case '"':
      Out += "&quot;";
      break;
    default:
      Out += C;
    }
  }
}

std::string pct(double Part, double Whole) {
  if (Whole <= 0)
    return "0.0";
  char Buf[32];
  std::snprintf(Buf, sizeof(Buf), "%.1f", 100.0 * Part / Whole);
  return Buf;
}

const char *Css =
    "body{font:14px/1.45 system-ui,sans-serif;margin:24px;color:#222}"
    "h1{font-size:20px}h2{font-size:16px;margin-top:28px;"
    "border-bottom:1px solid #ddd;padding-bottom:4px}"
    "table{border-collapse:collapse;margin:8px 0}"
    "td,th{border:1px solid #ccc;padding:3px 8px;text-align:left;"
    "font-size:13px}th{background:#f4f4f4}"
    "pre{background:#f8f8f8;border:1px solid #e0e0e0;padding:8px;"
    "overflow-x:auto;font-size:12px}"
    ".lane{position:relative;height:18px;background:#cde6c8;"
    "margin:2px 0 8px;border:1px solid #9c9}"
    ".lane .blk{position:absolute;top:0;height:100%;background:#e06c5a}"
    ".lane .off{position:absolute;top:0;height:100%;background:#eee}"
    ".banner{background:#fff3cd;border:1px solid #e0c868;padding:8px;"
    "margin:12px 0}"
    ".muted{color:#777}";

} // namespace

std::string renderHtmlReport(const TraceData &Data, const CausalReport &Causal,
                             const std::string &Title,
                             const std::string &TruncationNote) {
  TraceSummary Sum = summarize(Data);
  ProfileReport Prof = buildProfile(Data);
  CriticalPath Path = criticalPath(Causal, Data);

  std::string H;
  H.reserve(1 << 16);
  H += "<!doctype html>\n<html lang=\"en\">\n<head>\n"
       "<meta charset=\"utf-8\">\n<title>sharc-live report: ";
  esc(H, Title);
  H += "</title>\n<style>";
  H += Css;
  H += "</style>\n</head>\n<body>\n<h1>sharc-live report: ";
  esc(H, Title);
  H += "</h1>\n";

  if (!TruncationNote.empty()) {
    H += "<div class=\"banner\">partial trace: ";
    esc(H, TruncationNote);
    H += "</div>\n";
  }
  if (Data.AbnormalEnd) {
    H += "<div class=\"banner\">abnormal end: the producing process died "
         "mid-run (signal " +
         std::to_string(Data.AbnormalSignal) +
         "); its crash hooks flushed this trace</div>\n";
  }

  // -- Summary ------------------------------------------------------
  H += "<section id=\"summary\">\n<h2>Summary</h2>\n<table>\n"
       "<tr><th>events</th><th>threads</th><th>accesses</th>"
       "<th>conflicts</th><th>blocked units</th><th>stats samples</th>"
       "</tr>\n<tr>";
  H += "<td>" + std::to_string(Sum.TotalEvents) + "</td>";
  H += "<td>" + std::to_string(Causal.Threads.size()) + "</td>";
  H += "<td>" + std::to_string(Sum.accessCount()) + "</td>";
  H += "<td>" + std::to_string(Sum.conflictCount()) + "</td>";
  H += "<td>" + std::to_string(Causal.totalBlockedUnits()) + "</td>";
  H += "<td>" + std::to_string(Data.Samples.size()) + "</td>";
  H += "</tr>\n</table>\n";
  if (!Data.Samples.empty()) {
    const rt::StatsSnapshot &S = Data.Samples.back();
    H += "<p class=\"muted\">final stats sample: " +
         std::to_string(S.dynamicAccesses()) + " dynamic accesses, " +
         std::to_string(S.totalConflicts()) + " conflicts, " +
         std::to_string(S.metadataBytes()) + " metadata bytes</p>\n";
  }
  H += "</section>\n";

  // -- Timeline -----------------------------------------------------
  // One lane per thread: grey before first / after last event, green
  // while runnable, red while blocked on another thread's lock.
  H += "<section id=\"timeline\">\n<h2>Timeline</h2>\n";
  const double N = Data.Events.empty() ? 1.0 : double(Data.Events.size());
  H += "<p class=\"muted\">clock = event stream index; 0.." +
       std::to_string(Data.Events.size()) +
       "; red = blocked waiting for a lock</p>\n";
  for (const ThreadSpan &T : Causal.Threads) {
    H += "<div>thread " + std::to_string(T.Tid) + " &mdash; run " +
         std::to_string(T.runUnits()) + ", blocked " +
         std::to_string(T.BlockedUnits) + " (" +
         pct(double(T.BlockedUnits), double(T.spanUnits())) + "%)</div>\n";
    H += "<div class=\"lane\">";
    // Off-lifetime shading.
    if (T.FirstEvent > 0)
      H += "<div class=\"off\" style=\"left:0%;width:" +
           pct(double(T.FirstEvent), N) + "%\"></div>";
    if (T.LastEvent + 1 < Data.Events.size())
      H += "<div class=\"off\" style=\"left:" +
           pct(double(T.LastEvent), N) + "%;width:" +
           pct(N - double(T.LastEvent), N) + "%\"></div>";
    for (const BlockedSpan &B : Causal.Blocked)
      if (B.Tid == T.Tid && B.blockedUnits() > 0) {
        char Buf[160];
        std::snprintf(Buf, sizeof(Buf),
                      "<div class=\"blk\" style=\"left:%s%%;width:%s%%\" "
                      "title=\"blocked %llu units on lock 0x%llx held by "
                      "thread %u\"></div>",
                      pct(double(B.ReadyAt), N).c_str(),
                      pct(double(B.blockedUnits()), N).c_str(),
                      static_cast<unsigned long long>(B.blockedUnits()),
                      static_cast<unsigned long long>(B.Lock), B.HolderTid);
        H += Buf;
      }
    H += "</div>\n";
  }
  if (!Causal.ByHolder.empty()) {
    H += "<table>\n<tr><th>lock</th><th>holder</th><th>blocked units</th>"
         "<th>waits</th><th>site</th></tr>\n";
    for (const HolderAttribution &A : Causal.ByHolder) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "0x%llx",
                    static_cast<unsigned long long>(A.Lock));
      H += "<tr><td>";
      H += Buf;
      H += "</td><td>thread " + std::to_string(A.HolderTid) + "</td><td>" +
           std::to_string(A.Units) + "</td><td>" + std::to_string(A.Waits) +
           "</td><td>";
      esc(H, A.Site.empty() ? std::string("-") : A.Site);
      H += "</td></tr>\n";
    }
    H += "</table>\n";
  } else {
    H += "<p class=\"muted\">no blocked time: no thread ever waited for "
         "another</p>\n";
  }
  H += "</section>\n";

  // -- Critical path ------------------------------------------------
  H += "<section id=\"critical-path\">\n<h2>Critical path</h2>\n<pre>";
  esc(H, renderCriticalPath(Path, Data));
  H += "</pre>\n</section>\n";

  // -- Hot sites (v2 profile records) -------------------------------
  H += "<section id=\"hot-sites\">\n<h2>Hot sites</h2>\n";
  if (Prof.Sites.empty()) {
    H += "<p class=\"muted\">no profile records in this trace (run with "
         "sharcc --profile to collect them)</p>\n";
  } else {
    H += "<table>\n<tr><th>site</th><th>lvalue</th><th>kind</th>"
         "<th>count</th><th>cost</th><th>threads</th></tr>\n";
    size_t Shown = 0;
    for (const ProfileReport::Site &S : Prof.Sites) {
      if (++Shown > 20)
        break;
      H += "<tr><td>";
      esc(H, S.known() ? S.File + ":" + std::to_string(S.Line)
                       : std::string("(unattributed)"));
      H += "</td><td>";
      esc(H, S.LValue);
      H += "</td><td>";
      esc(H, checkKindName(S.Kind));
      H += "</td><td>" + std::to_string(S.Count) + "</td><td>" +
           std::to_string(S.cost()) + "</td><td>" +
           std::to_string(S.Tids.size()) + "</td></tr>\n";
    }
    H += "</table>\n";
  }
  H += "</section>\n";

  // -- Violations ---------------------------------------------------
  H += "<section id=\"violations\">\n<h2>Violations</h2>\n";
  if (Sum.Conflicts.empty() && !Data.AbnormalEnd) {
    H += "<p class=\"muted\">none</p>\n";
  } else {
    H += "<table>\n<tr><th>stream pos</th><th>kind</th><th>thread</th>"
         "<th>addr</th><th>line</th><th>prev line</th></tr>\n";
    for (const TraceSummary::ConflictEntry &C : Sum.Conflicts) {
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), "0x%llx",
                    static_cast<unsigned long long>(C.Ev.Addr));
      H += "<tr><td>" + std::to_string(C.Pos) + "</td><td>";
      esc(H, conflictKindName(conflictKindOf(C.Ev.Extra)));
      H += "</td><td>" + std::to_string(C.Ev.Tid) + "</td><td>";
      H += Buf;
      H += "</td><td>" + std::to_string(conflictWhoLine(C.Ev.Extra)) +
           "</td><td>" + std::to_string(conflictLastLine(C.Ev.Extra)) +
           "</td></tr>\n";
    }
    H += "</table>\n";
    if (Data.AbnormalEnd) {
      H += "<p>at death the producer had seen " +
           std::to_string(Data.AbnormalTotalViolations) +
           " violation(s)";
      for (unsigned K = 0; K < NumConflictKinds; ++K)
        if (Data.AbnormalConflictCounts[K])
          H += std::string("; ") +
               conflictKindName(static_cast<ConflictKind>(K)) + ": " +
               std::to_string(Data.AbnormalConflictCounts[K]);
      H += "</p>\n";
    }
  }
  H += "</section>\n</body>\n</html>\n";
  return H;
}

bool validateHtmlReport(std::string_view Html, std::string &Error) {
  if (Html.rfind("<!doctype html>", 0) != 0) {
    Error = "missing <!doctype html> prologue";
    return false;
  }
  if (Html.find("<meta charset=\"utf-8\">") == std::string_view::npos) {
    Error = "missing UTF-8 charset declaration";
    return false;
  }
  for (const char *Id : {"id=\"summary\"", "id=\"timeline\"",
                         "id=\"critical-path\"", "id=\"hot-sites\"",
                         "id=\"violations\""})
    if (Html.find(Id) == std::string_view::npos) {
      Error = std::string("missing required section ") + Id;
      return false;
    }
  // Self-contained: no external fetches of any kind.
  for (const char *Needle : {"src=", "href=\"http", "url(", "@import"})
    if (Html.find(Needle) != std::string_view::npos) {
      Error = std::string("external reference marker '") + Needle + "'";
      return false;
    }

  // Balanced open/close for every container tag we emit. A linear scan
  // with one depth counter per tag suffices — we never emit them
  // crossing (and a crossing would still leave some counter broken).
  const char *Tags[] = {"html", "head",  "body", "section", "table",
                        "tr",   "td",    "th",   "div",     "pre",
                        "h1",   "h2",    "p",    "style",   "title"};
  for (const char *Tag : Tags) {
    std::string Open = std::string("<") + Tag;
    std::string Close = std::string("</") + Tag + ">";
    long Depth = 0;
    for (size_t I = 0; (I = Html.find('<', I)) != std::string_view::npos;
         ++I) {
      if (Html.compare(I, Close.size(), Close) == 0) {
        if (--Depth < 0) {
          Error = std::string("unbalanced </") + Tag + ">";
          return false;
        }
      } else if (Html.compare(I, Open.size(), Open) == 0) {
        // Require a delimiter so "<tr" does not match "<track" etc.
        char Next = I + Open.size() < Html.size() ? Html[I + Open.size()]
                                                  : '\0';
        if (Next == '>' || Next == ' ')
          ++Depth;
      }
    }
    if (Depth != 0) {
      Error = std::string("unbalanced <") + Tag + ">";
      return false;
    }
  }
  return true;
}

} // namespace sharc::obs
