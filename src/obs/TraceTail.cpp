#include "obs/TraceTail.h"

namespace sharc::obs {

size_t TailParser::push(std::string_view Bytes) {
  BytesSeen += Bytes.size();
  if (St == State::Corrupt)
    return 0;
  if (St == State::Done) {
    if (!Bytes.empty()) {
      St = State::Corrupt;
      Diag = "corrupt trace: trailing bytes after end record";
    }
    return 0;
  }
  Pending.append(Bytes.data(), Bytes.size());

  size_t Pos = 0;
  if (St == State::Header) {
    switch (parseTraceHeader(Pending, Pos, Version, Diag)) {
    case RecordParse::NeedMore:
      return 0; // Diag = "trace too short for header"
    case RecordParse::Corrupt:
      St = State::Corrupt;
      return 0;
    default:
      St = State::Records;
      Data.Version = Version;
      // With the header consumed and no record pending, a batch parse
      // of these exact bytes stops here.
      Diag = "truncated trace: missing end record";
      break;
    }
  }

  size_t Decoded = 0;
  while (St == State::Records) {
    std::string Err;
    RecordParse R = parseOneRecord(Pending, Pos, Data, Records, Err);
    if (R == RecordParse::Ok) {
      ++Decoded;
      continue;
    }
    if (R == RecordParse::End) {
      if (Pos != Pending.size()) {
        St = State::Corrupt;
        Diag = "corrupt trace: trailing bytes after end record";
      } else {
        St = State::Done;
        Diag.clear();
      }
      break;
    }
    if (R == RecordParse::Corrupt) {
      St = State::Corrupt;
      Diag = Err;
      break;
    }
    // NeedMore: Pos rests on the unfinished record's tag byte; stash
    // the cut message a batch parse of these bytes would report.
    Diag = Err;
    break;
  }
  Pending.erase(0, Pos);
  return Decoded;
}

} // namespace sharc::obs
