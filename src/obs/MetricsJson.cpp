#include "obs/MetricsJson.h"

namespace sharc::obs {

void appendStatsJson(JsonWriter &W, const rt::StatsSnapshot &S) {
  W.beginObject();
  W.key("dynamic_reads");
  W.value(S.DynamicReads);
  W.key("dynamic_writes");
  W.value(S.DynamicWrites);
  W.key("dynamic_read_bytes");
  W.value(S.DynamicReadBytes);
  W.key("dynamic_write_bytes");
  W.value(S.DynamicWriteBytes);
  W.key("lock_checks");
  W.value(S.LockChecks);
  W.key("rc_barriers");
  W.value(S.RcBarriers);
  W.key("collections");
  W.value(S.Collections);
  W.key("sharing_casts");
  W.value(S.SharingCasts);
  W.key("read_conflicts");
  W.value(S.ReadConflicts);
  W.key("write_conflicts");
  W.value(S.WriteConflicts);
  W.key("lock_violations");
  W.value(S.LockViolations);
  W.key("cast_errors");
  W.value(S.CastErrors);
  W.key("shadow_bytes");
  W.value(S.ShadowBytes);
  W.key("rc_table_bytes");
  W.value(S.RcTableBytes);
  W.key("log_bytes");
  W.value(S.LogBytes);
  W.key("heap_payload_bytes");
  W.value(S.HeapPayloadBytes);
  W.key("peak_heap_payload_bytes");
  W.value(S.PeakHeapPayloadBytes);
  W.key("total_conflicts");
  W.value(S.totalConflicts());
  W.key("dynamic_accesses");
  W.value(S.dynamicAccesses());
  W.key("metadata_bytes");
  W.value(S.metadataBytes());
  W.endObject();
}

std::string statsToJson(const rt::StatsSnapshot &S) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-stats-v1");
  W.key("stats");
  appendStatsJson(W, S);
  W.endObject();
  std::string Out = W.take();
  Out.push_back('\n');
  return Out;
}

void appendExploreJson(JsonWriter &W, const ExploreCounters &C) {
  W.beginObject();
  W.key("schedules_run");
  W.value(C.SchedulesRun);
  W.key("sleep_pruned");
  W.value(C.SleepPruned);
  W.key("bounded_runs");
  W.value(C.BoundedRuns);
  W.key("dpor_pruned");
  W.value(C.DporPruned);
  W.key("preempt_pruned");
  W.value(C.PreemptPruned);
  W.key("steps_total");
  W.value(C.StepsTotal);
  W.key("max_depth");
  W.value(C.MaxDepth);
  W.key("verdict_classes");
  W.value(C.VerdictClasses);
  W.key("violating_classes");
  W.value(C.ViolatingClasses);
  W.key("bound_hit");
  W.value(C.BoundHit);
  W.key("budget_exhausted");
  W.value(C.BudgetExhausted);
  W.key("complete");
  W.value(C.Complete);
  W.endObject();
}

std::string exploreToJson(const ExploreCounters &C) {
  JsonWriter W;
  W.beginObject();
  W.key("schema");
  W.value("sharc-explore-v1");
  W.key("explore");
  appendExploreJson(W, C);
  W.endObject();
  std::string Out = W.take();
  Out.push_back('\n');
  return Out;
}

} // namespace sharc::obs
