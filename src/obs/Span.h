// Request-scoped tracing spans (DESIGN.md §16).
//
// sharc-span threads one request id through the whole annotated serve
// pipeline — acceptor, ingress ring, worker handler, session-cache lock
// sections, logger — as begin/end span records. Spans ride the same
// lock-free per-thread rings as Events (obs::Collector packs them into
// a reserved sentinel range of the ring's EventKind byte, so the
// 14-kind event namespace that the fuzz trace oracle pins is never
// extended) and land in .strc v4 traces as their own record family.
//
// Span Tids are pipeline-role ids assigned by the producer (for
// sharc-serve: 1 = acceptor, 2..W+1 = workers, W+2 = logger), not
// runtime thread ids — spans are keyed by request id, and the role id
// is what the tail-anatomy report prints.
#ifndef SHARC_OBS_SPAN_H
#define SHARC_OBS_SPAN_H

#include <cstdint>

namespace sharc::obs {

/// Pipeline stages a request passes through, in pipeline order. The
/// trace parser rejects stages outside this set (like unknown check
/// kinds); adding a stage is a trace-format version bump.
enum class SpanStage : uint8_t {
  Accept = 0, ///< acceptor-side connection setup; Arg(begin) = client
              ///< id, Arg(end) = SpanOutcome
  RingWait,   ///< ingress ring residency: begin at enqueue (acceptor),
              ///< end at dequeue (worker) — across the ownership cast
  Handler,    ///< worker handler, whole; Arg(begin) = op kind
  LockWait,   ///< waiting on the session-shard lock; Arg = lock id
  LockHold,   ///< holding the session-shard lock; Arg = lock id
  LogWait,    ///< log ring residency: begin at enqueue (worker), end at
              ///< dequeue (logger) — across the second ownership cast
  Logger,     ///< logger-side record processing
};

inline constexpr unsigned NumSpanStages = 7;

/// Request outcome codes carried in end-record Args (sharc-storm,
/// DESIGN.md §17): Accept-end Arg says whether the connection was
/// admitted or shed; Handler-end Arg says whether the handler ran it or
/// dropped it on a blown deadline. Riding the Arg keeps the stage set —
/// and therefore the v4 trace format — unchanged: a pre-storm reader
/// sees the same records and simply ignores the codes. 0 everywhere is
/// the pre-storm encoding, so old traces parse as all-Ok.
enum SpanOutcome : uint8_t {
  OutcomeOk = 0,       ///< admitted / handled normally
  OutcomeShed = 1,     ///< Accept end: shed by admission control
  OutcomeTimedOut = 2, ///< Handler end: dropped, deadline budget blown
};

inline const char *spanOutcomeName(SpanOutcome O) {
  switch (O) {
  case OutcomeOk:
    return "ok";
  case OutcomeShed:
    return "shed";
  case OutcomeTimedOut:
    return "timed-out";
  }
  return "?";
}

inline const char *spanStageName(SpanStage S) {
  switch (S) {
  case SpanStage::Accept:
    return "accept";
  case SpanStage::RingWait:
    return "ring-wait";
  case SpanStage::Handler:
    return "handler";
  case SpanStage::LockWait:
    return "lock-wait";
  case SpanStage::LockHold:
    return "lock-hold";
  case SpanStage::LogWait:
    return "log-wait";
  case SpanStage::Logger:
    return "logger";
  }
  return "?";
}

/// One span boundary. A (Req, Stage) pair gets exactly one begin and
/// one end record; TimeNs is nanoseconds since the producer's epoch
/// (one epoch per run, so spans are mutually comparable within a
/// trace). Arg carries stage-specific context (see SpanStage).
struct SpanRecord {
  uint32_t Tid = 0; ///< pipeline-role id, not a runtime thread id
  uint64_t Req = 0; ///< request id, unique within the run
  SpanStage Stage = SpanStage::Accept;
  bool Begin = true;
  uint64_t TimeNs = 0;
  uint64_t Arg = 0;

  bool operator==(const SpanRecord &) const = default;
};

} // namespace sharc::obs

#endif // SHARC_OBS_SPAN_H
