// JSON export for rt::StatsSnapshot — the machine-readable face of the
// counters behind Table 1 (DESIGN.md §10).
#ifndef SHARC_OBS_METRICSJSON_H
#define SHARC_OBS_METRICSJSON_H

#include "obs/Json.h"
#include "rt/Stats.h"

#include <string>

namespace sharc::obs {

/// Writes S as a JSON object value (the writer must be positioned where
/// a value is expected, e.g. after key()).
void appendStatsJson(JsonWriter &W, const rt::StatsSnapshot &S);

/// Standalone document: the snapshot plus its derived totals.
std::string statsToJson(const rt::StatsSnapshot &S);

} // namespace sharc::obs

#endif // SHARC_OBS_METRICSJSON_H
