// JSON export for rt::StatsSnapshot — the machine-readable face of the
// counters behind Table 1 (DESIGN.md §10).
#ifndef SHARC_OBS_METRICSJSON_H
#define SHARC_OBS_METRICSJSON_H

#include "obs/Json.h"
#include "rt/Stats.h"

#include <string>

namespace sharc::obs {

/// Writes S as a JSON object value (the writer must be positioned where
/// a value is expected, e.g. after key()).
void appendStatsJson(JsonWriter &W, const rt::StatsSnapshot &S);

/// Standalone document: the snapshot plus its derived totals.
std::string statsToJson(const rt::StatsSnapshot &S);

/// Per-exploration counters for sharc-explore (DESIGN.md §14.4): how
/// many schedules ran, how many the reductions cut, and — loudly,
/// never silently — whether the enumeration was complete. Mirrors
/// interp::ExploreStats; the driver copies it over so obs stays free
/// of an interpreter dependency.
struct ExploreCounters {
  uint64_t SchedulesRun = 0;   ///< Complete schedules executed.
  uint64_t SleepPruned = 0;    ///< Executions cut by sleep sets.
  uint64_t BoundedRuns = 0;    ///< Executions cut by the preemption bound.
  uint64_t DporPruned = 0;     ///< Enabled branches DPOR never took.
  uint64_t PreemptPruned = 0;  ///< Picks over the preemption bound.
  uint64_t StepsTotal = 0;
  uint64_t MaxDepth = 0;
  uint64_t VerdictClasses = 0;
  uint64_t ViolatingClasses = 0;
  bool BoundHit = false;        ///< Bounded: incomplete by choice.
  bool BudgetExhausted = false; ///< Incomplete: budgets ran out.
  bool Complete = false;        ///< Every inequivalent schedule ran.
};

/// Writes C as a JSON object value.
void appendExploreJson(JsonWriter &W, const ExploreCounters &C);

/// Standalone "sharc-explore-v1" document.
std::string exploreToJson(const ExploreCounters &C);

} // namespace sharc::obs

#endif // SHARC_OBS_METRICSJSON_H
