// Compact, versioned binary trace format (.strc) — DESIGN.md §10, §11,
// §16.
//
// Layout:
//   8-byte magic "SHARCTRC"
//   u32 little-endian version (currently 4; version-1/2/3 traces are
//   still parsed — version 2 added the profile record tags, version 3
//   the abnormal-end record, version 4 the span records and the
//   skippable extension range below)
//   a sequence of records, each introduced by a tag byte:
//     0x01..0x0e  event record: tag = EventKind + 1, then varint Tid,
//                 varint Addr, zigzag-varint Value, varint Extra
//     0x40        stats record: the 17 StatsSnapshot counters as varints,
//                 in declaration order
//     0x41        site-profile record: varint Tid, Kind, Line, string
//                 File, string LValue, varints Count/Bytes/Cycles/Samples
//     0x42        lock-profile record: varint Tid, Lock, Line, string
//                 File, varints Acquires/Contended/WaitCycles/HoldCycles,
//                 16 wait-histogram varints, 16 hold-histogram varints
//     0x43        self-overhead record: varint Tid, Ops, Cycles,
//                 Samples, DrainCycles, TableBytes
//     0x44        abnormal-end record (v3): varint Signal (0 = policy or
//                 internal death, not a signal), varint violation policy
//                 (guard::Policy), varint total Conflict events, then
//                 NumConflictKinds varints of per-kind Conflict counts.
//                 Written by crash hooks so a dying process leaves a
//                 parseable trace that says *how* it died.
//     0x45/0x46   span begin/end record (v4): varint Tid, Req, Stage,
//                 TimeNs, Arg (DESIGN.md §16 — request-scoped pipeline
//                 spans)
//     0x60..0x7e  reserved extension records (v4): varint payload
//                 length, then that many payload bytes. Readers that do
//                 not understand the tag skip the payload and count the
//                 record, so future record families degrade to a
//                 summarize warning instead of a hard parse error.
//     0xff        end record: varint total record count (every record
//                 above, of any tag)
//   Strings are a varint length followed by raw bytes.
//   The end record is mandatory; a trace without it is reported as
//   truncated, which is how mid-write crashes and chopped files are
//   detected. A crashed run that got through its crash hooks ends with
//   abnormal-end + end records instead and parses cleanly.
//
// All varints are LEB128; signed values use zigzag. The writer buffers
// in memory (traces from bounded interpreter runs are small) and is NOT
// thread-safe on its own — multi-threaded producers go through
// obs::Collector, which serialises the downstream sink.
#ifndef SHARC_OBS_TRACEFILE_H
#define SHARC_OBS_TRACEFILE_H

#include "obs/Sink.h"

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace sharc::obs {

inline constexpr char TraceMagic[8] = {'S', 'H', 'A', 'R', 'C', 'T', 'R', 'C'};
inline constexpr uint32_t TraceVersion = 4;
inline constexpr uint32_t MinTraceVersion = 1;
inline constexpr uint8_t StatsRecordTag = 0x40;
inline constexpr uint8_t SiteProfileTag = 0x41;
inline constexpr uint8_t LockProfileTag = 0x42;
inline constexpr uint8_t SelfOverheadTag = 0x43;
inline constexpr uint8_t AbnormalEndTag = 0x44;
inline constexpr uint8_t SpanBeginTag = 0x45;
inline constexpr uint8_t SpanEndTag = 0x46;
// Length-prefixed records in this range are skipped (with a tally), not
// rejected — the forward-compatibility escape hatch for record families
// newer than this reader.
inline constexpr uint8_t ExtensionTagFirst = 0x60;
inline constexpr uint8_t ExtensionTagLast = 0x7e;
inline constexpr uint8_t EndRecordTag = 0xff;

// Appends a LEB128 varint / zigzag varint to Out.
void appendVarint(std::string &Out, uint64_t V);
void appendZigzag(std::string &Out, int64_t V);

// Reads a varint from Buf at Pos; returns false on truncation or a
// varint longer than 10 bytes.
bool readVarint(std::string_view Buf, size_t &Pos, uint64_t &Out);
bool readZigzag(std::string_view Buf, size_t &Pos, int64_t &Out);

// Length-prefixed string coding. readString rejects truncation and
// lengths over 1 MiB (no .strc string is remotely that long; the cap
// bounds allocations on corrupt input).
void appendString(std::string &Out, std::string_view S);
bool readString(std::string_view Buf, size_t &Pos, std::string &Out);

/// Serialising sink. Events and stats samples are encoded as they
/// arrive; call finish() (idempotent) to append the end record before
/// inspecting buffer() or saving.
class TraceWriter final : public Sink {
public:
  TraceWriter();

  void event(const Event &Ev) override;
  void stats(const rt::StatsSnapshot &S) override;
  void siteProfile(const SiteProfileRecord &R) override;
  void lockProfile(const LockProfileRecord &R) override;
  void selfOverhead(const SelfOverheadRecord &R) override;
  void span(const SpanRecord &S) override;

  /// Appends the end record. Further events are rejected (dropped)
  /// after this; calling it again is a no-op.
  void finish();

  /// Appends an abnormal-end record — \p Signal is the fatal signal (0
  /// for policy/internal deaths), \p Policy the active guard::Policy —
  /// followed by the ordinary end record. The violation summary inside
  /// it is tallied internally from the Conflict events this writer saw,
  /// so crash hooks need no external state. No-op once finished; safe
  /// to call from a signal context (appends to the in-memory buffer).
  void finishAbnormal(uint32_t Signal, uint8_t Policy);

  /// finish() + the encoded bytes.
  const std::string &buffer();

  /// finish() + write the encoded bytes to Path. Returns false and sets
  /// Error on I/O failure. With a torn-write fault armed
  /// (setFaultTruncate), writes only the fault's byte prefix and fails.
  bool writeToFile(const std::string &Path, std::string &Error);

  /// Arms the torn-write fault (SHARC_FAULT=torn-write:K, wired by the
  /// driver): the next writeToFile truncates the image to \p Bytes.
  void setFaultTruncate(uint64_t Bytes) {
    FaultTruncate = Bytes;
    HasFaultTruncate = true;
  }

  uint64_t recordCount() const { return Records; }

private:
  std::string Buf;
  uint64_t Records = 0;
  bool Finished = false;
  uint64_t TotalConflicts = 0;
  uint64_t ConflictCounts[NumConflictKinds] = {};
  uint64_t FaultTruncate = 0;
  bool HasFaultTruncate = false;
};

/// A fully decoded trace. SamplePos[i] is the number of events that
/// preceded Samples[i] in the record stream, so samples can be placed
/// on the event timeline (SpanPos does the same for Spans).
struct TraceData {
  /// Header version of the parsed image (set by parseTrace and the
  /// TailParser; parseOneRecord itself is version-agnostic).
  uint32_t Version = 0;
  std::vector<Event> Events;
  std::vector<rt::StatsSnapshot> Samples;
  std::vector<size_t> SamplePos;
  std::vector<SiteProfileRecord> Sites;
  std::vector<LockProfileRecord> Locks;
  std::vector<SelfOverheadRecord> Overheads;
  std::vector<SpanRecord> Spans;
  std::vector<size_t> SpanPos;
  /// Extension records (tags 0x60..0x7e) this reader skipped, and the
  /// distinct tags seen — summarize turns these into warnings.
  uint64_t SkippedUnknown = 0;
  std::vector<uint8_t> SkippedTags;
  /// Abnormal-end record (v3), present when the producing process died
  /// mid-run but its crash hooks flushed the trace.
  bool AbnormalEnd = false;
  uint32_t AbnormalSignal = 0; ///< 0 = policy/internal death.
  uint8_t AbnormalPolicy = 0;  ///< guard::Policy at death.
  uint64_t AbnormalTotalViolations = 0;
  uint64_t AbnormalConflictCounts[NumConflictKinds] = {};
};

/// Outcome of decoding one header or record from a (possibly still
/// growing) byte stream. parseTrace and the incremental TailParser are
/// both built on parseTraceHeader/parseOneRecord, so batch and tail
/// parsing agree on every byte prefix by construction — the property
/// fuzz oracle 7 (tail-vs-batch) checks.
enum class RecordParse : uint8_t {
  Ok,       ///< One record decoded; Out updated, Records incremented.
  End,      ///< The end record was decoded and its count matched.
  NeedMore, ///< Buf ends mid-record. Pos is left at the record's tag
            ///< byte so the caller can retry with more bytes; Error
            ///< holds the truncation message a batch parse reports for
            ///< this cut.
  Corrupt,  ///< Unrecoverable structural damage; Error set. More bytes
            ///< cannot fix it.
};

/// Parses the magic + version header at Pos. Ok advances Pos past the
/// header and sets Version. NeedMore means fewer than 12 bytes were
/// available (Pos unchanged); Corrupt means bad magic or an unsupported
/// version.
RecordParse parseTraceHeader(std::string_view Buf, size_t &Pos,
                             uint32_t &Version, std::string &Error);

/// Decodes the single record whose tag byte is at Pos. Ok appends the
/// decoded record to Out and increments Records. End consumes the end
/// record and verifies its declared count against Records. NeedMore
/// (including Pos == Buf.size(), the "missing end record" cut) leaves
/// Pos at the tag byte and Out untouched. Corrupt reports unknown tags,
/// unknown check kinds, and end-record count mismatches.
RecordParse parseOneRecord(std::string_view Buf, size_t &Pos, TraceData &Out,
                           uint64_t &Records, std::string &Error);

/// Decodes a complete trace image. Returns false and sets Error on bad
/// magic, unsupported version, unknown tags, truncation (including a
/// missing end record), or a record-count mismatch.
bool parseTrace(std::string_view Buf, TraceData &Out, std::string &Error);

/// Reads Path and parses it.
bool loadTraceFile(const std::string &Path, TraceData &Out,
                   std::string &Error);

} // namespace sharc::obs

#endif // SHARC_OBS_TRACEFILE_H
