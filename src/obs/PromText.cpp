#include "obs/PromText.h"

#include <cstdlib>
#include <cstring>

namespace sharc::obs {

namespace {

bool isNameStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_' ||
         C == ':';
}
bool isNameChar(char C) { return isNameStart(C) || (C >= '0' && C <= '9'); }
bool isLabelStart(char C) {
  return (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z') || C == '_';
}
bool isLabelChar(char C) { return isLabelStart(C) || (C >= '0' && C <= '9'); }

bool fail(std::string &Error, size_t LineNo, const std::string &Msg) {
  Error = "line " + std::to_string(LineNo) + ": " + Msg;
  return false;
}

/// Parses a metric name at Pos; empty on error.
std::string takeName(std::string_view Line, size_t &Pos) {
  size_t Start = Pos;
  if (Pos < Line.size() && isNameStart(Line[Pos]))
    for (++Pos; Pos < Line.size() && isNameChar(Line[Pos]); ++Pos)
      ;
  return std::string(Line.substr(Start, Pos - Start));
}

bool validValue(const std::string &Text, double &Out) {
  if (Text.empty())
    return false;
  if (Text == "+Inf" || Text == "-Inf" || Text == "NaN") {
    Out = 0;
    return true;
  }
  const char *Begin = Text.c_str();
  char *End = nullptr;
  Out = std::strtod(Begin, &End);
  return End && *End == '\0' && End != Begin;
}

} // namespace

bool parsePromText(std::string_view Text, PromDoc &Out, std::string &Error) {
  Out = PromDoc();
  // Families that already carry samples: a TYPE arriving afterwards is
  // an ordering violation.
  std::vector<std::string> Sampled;
  auto hasSampled = [&](std::string_view Name) {
    for (const std::string &S : Sampled)
      if (S == Name)
        return true;
    return false;
  };

  size_t LineNo = 0;
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t Eol = Text.find('\n', Pos);
    if (Eol == std::string_view::npos)
      return fail(Error, LineNo + 1, "missing trailing newline");
    std::string_view Line = Text.substr(Pos, Eol - Pos);
    Pos = Eol + 1;
    ++LineNo;

    if (Line.empty())
      continue;
    if (Line[0] == '#') {
      // "# HELP name text" / "# TYPE name type" / free-form comment.
      if (Line.rfind("# HELP ", 0) == 0 || Line.rfind("# TYPE ", 0) == 0) {
        bool IsType = Line[2] == 'T';
        size_t P = 7;
        std::string Name = takeName(Line, P);
        if (Name.empty())
          return fail(Error, LineNo, "bad metric name in comment line");
        if (P >= Line.size() || Line[P] != ' ')
          return fail(Error, LineNo, "missing text after metric name");
        std::string Rest(Line.substr(P + 1));
        if (IsType) {
          if (Rest != "counter" && Rest != "gauge" && Rest != "histogram" &&
              Rest != "summary" && Rest != "untyped")
            return fail(Error, LineNo, "unknown type '" + Rest + "'");
          if (hasSampled(Name))
            return fail(Error, LineNo,
                        "# TYPE for '" + Name + "' after its first sample");
          // A preceding # HELP may have created the family with an
          // empty type; a second TYPE (empty or not) is the error.
          if (PromDoc::Family *F = Out.family(Name)) {
            if (!F->Type.empty())
              return fail(Error, LineNo,
                          "duplicate # TYPE for family '" + Name + "'");
            F->Type = Rest;
          } else {
            Out.Families.push_back({Name, Rest, false});
          }
        } else {
          // HELP must precede TYPE in our exposition; tolerate either
          // order but record that help exists.
          for (PromDoc::Family &F : Out.Families)
            if (F.Name == Name)
              F.HasHelp = true;
          if (!Out.family(Name))
            Out.Families.push_back({Name, "", true});
        }
      }
      continue;
    }

    // Sample line: name[{label="value",...}] value [timestamp]
    size_t P = 0;
    PromDoc::Sample S;
    S.Name = takeName(Line, P);
    if (S.Name.empty())
      return fail(Error, LineNo, "bad metric name");
    S.Key = S.Name;
    if (P < Line.size() && Line[P] == '{') {
      S.Key += '{';
      ++P;
      bool First = true;
      while (true) {
        if (P >= Line.size())
          return fail(Error, LineNo, "unterminated label set");
        if (Line[P] == '}') {
          ++P;
          break;
        }
        if (!First) {
          if (Line[P] != ',')
            return fail(Error, LineNo, "expected ',' between labels");
          S.Key += ',';
          ++P;
        }
        First = false;
        size_t LStart = P;
        if (P < Line.size() && isLabelStart(Line[P]))
          for (++P; P < Line.size() && isLabelChar(Line[P]); ++P)
            ;
        if (P == LStart)
          return fail(Error, LineNo, "bad label name");
        S.Key.append(Line.substr(LStart, P - LStart));
        if (P + 1 >= Line.size() || Line[P] != '=' || Line[P + 1] != '"')
          return fail(Error, LineNo, "label needs =\"value\"");
        S.Key += "=\"";
        P += 2;
        while (P < Line.size() && Line[P] != '"') {
          if (Line[P] == '\\') {
            if (P + 1 >= Line.size() ||
                (Line[P + 1] != '\\' && Line[P + 1] != '"' &&
                 Line[P + 1] != 'n'))
              return fail(Error, LineNo, "bad escape in label value");
            S.Key += Line[P];
            S.Key += Line[P + 1];
            P += 2;
            continue;
          }
          S.Key += Line[P++];
        }
        if (P >= Line.size())
          return fail(Error, LineNo, "unterminated label value");
        S.Key += '"';
        ++P; // closing quote
      }
      S.Key += '}';
    }
    if (P >= Line.size() || Line[P] != ' ')
      return fail(Error, LineNo, "expected ' ' before sample value");
    ++P;
    size_t VEnd = Line.find(' ', P);
    S.ValueText = std::string(
        Line.substr(P, VEnd == std::string_view::npos ? VEnd : VEnd - P));
    if (!validValue(S.ValueText, S.Value))
      return fail(Error, LineNo, "bad sample value '" + S.ValueText + "'");
    if (VEnd != std::string_view::npos) {
      // Optional timestamp: integer milliseconds.
      std::string_view Ts = Line.substr(VEnd + 1);
      if (Ts.empty())
        return fail(Error, LineNo, "trailing space after value");
      for (char C : Ts)
        if (C < '0' || C > '9')
          return fail(Error, LineNo, "bad timestamp");
    }
    const PromDoc::Family *F = Out.family(S.Name);
    if (!F || F->Type.empty())
      return fail(Error, LineNo,
                  "sample for '" + S.Name + "' without a # TYPE line");
    if (!hasSampled(S.Name))
      Sampled.push_back(S.Name);
    Out.Samples.push_back(std::move(S));
  }
  if (Out.Samples.empty()) {
    Error = "no samples";
    return false;
  }
  return true;
}

bool checkPromMonotonic(const PromDoc &Earlier, const PromDoc &Later,
                        std::string &Error) {
  for (const PromDoc::Sample &S : Earlier.Samples) {
    const PromDoc::Family *F = Earlier.family(S.Name);
    if (!F || F->Type != "counter")
      continue;
    const PromDoc::Sample *L = Later.find(S.Key);
    if (!L) {
      Error = "counter series " + S.Key + " vanished in the later scrape";
      return false;
    }
    if (L->Value < S.Value) {
      Error = "counter " + S.Key + " went backwards: " + S.ValueText +
              " -> " + L->ValueText;
      return false;
    }
  }
  return true;
}

} // namespace sharc::obs
