#include "obs/TraceFile.h"

#include <cstdio>
#include <cstring>

namespace sharc::obs {

void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void appendZigzag(std::string &Out, int64_t V) {
  appendVarint(Out, (static_cast<uint64_t>(V) << 1) ^
                        static_cast<uint64_t>(V >> 63));
}

bool readVarint(std::string_view Buf, size_t &Pos, uint64_t &Out) {
  uint64_t V = 0;
  for (unsigned Shift = 0; Shift < 70; Shift += 7) {
    if (Pos >= Buf.size())
      return false;
    uint8_t B = static_cast<uint8_t>(Buf[Pos++]);
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80)) {
      Out = V;
      return true;
    }
  }
  return false; // over-long varint
}

bool readZigzag(std::string_view Buf, size_t &Pos, int64_t &Out) {
  uint64_t Raw;
  if (!readVarint(Buf, Pos, Raw))
    return false;
  Out = static_cast<int64_t>((Raw >> 1) ^ (~(Raw & 1) + 1));
  return true;
}

void appendString(std::string &Out, std::string_view S) {
  appendVarint(Out, S.size());
  Out.append(S.data(), S.size());
}

bool readString(std::string_view Buf, size_t &Pos, std::string &Out) {
  uint64_t Len;
  if (!readVarint(Buf, Pos, Len))
    return false;
  if (Len > (1u << 20) || Pos + Len > Buf.size())
    return false;
  Out.assign(Buf.data() + Pos, Len);
  Pos += Len;
  return true;
}

namespace {

// StatsSnapshot counters in declaration order; keep in sync with
// rt/Stats.h.
constexpr unsigned NumStatsFields = 17;

void statsToFields(const rt::StatsSnapshot &S,
                   uint64_t (&F)[NumStatsFields]) {
  uint64_t Tmp[NumStatsFields] = {
      S.DynamicReads,   S.DynamicWrites, S.DynamicReadBytes,
      S.DynamicWriteBytes, S.LockChecks, S.RcBarriers,
      S.Collections,    S.SharingCasts,  S.ReadConflicts,
      S.WriteConflicts, S.LockViolations, S.CastErrors,
      S.ShadowBytes,    S.RcTableBytes,  S.LogBytes,
      S.HeapPayloadBytes, S.PeakHeapPayloadBytes};
  std::memcpy(F, Tmp, sizeof(Tmp));
}

void fieldsToStats(const uint64_t (&F)[NumStatsFields],
                   rt::StatsSnapshot &S) {
  S.DynamicReads = F[0];
  S.DynamicWrites = F[1];
  S.DynamicReadBytes = F[2];
  S.DynamicWriteBytes = F[3];
  S.LockChecks = F[4];
  S.RcBarriers = F[5];
  S.Collections = F[6];
  S.SharingCasts = F[7];
  S.ReadConflicts = F[8];
  S.WriteConflicts = F[9];
  S.LockViolations = F[10];
  S.CastErrors = F[11];
  S.ShadowBytes = F[12];
  S.RcTableBytes = F[13];
  S.LogBytes = F[14];
  S.HeapPayloadBytes = F[15];
  S.PeakHeapPayloadBytes = F[16];
}

} // namespace

TraceWriter::TraceWriter() {
  Buf.append(TraceMagic, sizeof(TraceMagic));
  for (unsigned I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((TraceVersion >> (8 * I)) & 0xff));
}

void TraceWriter::event(const Event &Ev) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(static_cast<uint8_t>(Ev.K) + 1));
  appendVarint(Buf, Ev.Tid);
  appendVarint(Buf, Ev.Addr);
  appendZigzag(Buf, Ev.Value);
  appendVarint(Buf, Ev.Extra);
  ++Records;
  // Keep a running violation summary so finishAbnormal() can write a
  // self-contained abnormal-end record from a crash hook.
  if (Ev.K == EventKind::Conflict) {
    ++TotalConflicts;
    unsigned Kind = static_cast<unsigned>(conflictKindOf(Ev.Extra));
    if (Kind < NumConflictKinds)
      ++ConflictCounts[Kind];
  }
}

void TraceWriter::stats(const rt::StatsSnapshot &S) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(StatsRecordTag));
  uint64_t F[NumStatsFields];
  statsToFields(S, F);
  for (uint64_t V : F)
    appendVarint(Buf, V);
  ++Records;
}

void TraceWriter::siteProfile(const SiteProfileRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(SiteProfileTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, static_cast<uint8_t>(R.Kind));
  appendVarint(Buf, R.Line);
  appendString(Buf, R.File);
  appendString(Buf, R.LValue);
  appendVarint(Buf, R.Count);
  appendVarint(Buf, R.Bytes);
  appendVarint(Buf, R.Cycles);
  appendVarint(Buf, R.Samples);
  ++Records;
}

void TraceWriter::lockProfile(const LockProfileRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(LockProfileTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, R.Lock);
  appendVarint(Buf, R.Line);
  appendString(Buf, R.File);
  appendVarint(Buf, R.Acquires);
  appendVarint(Buf, R.Contended);
  appendVarint(Buf, R.WaitCycles);
  appendVarint(Buf, R.HoldCycles);
  for (uint64_t V : R.WaitHist)
    appendVarint(Buf, V);
  for (uint64_t V : R.HoldHist)
    appendVarint(Buf, V);
  ++Records;
}

void TraceWriter::span(const SpanRecord &S) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(S.Begin ? SpanBeginTag : SpanEndTag));
  appendVarint(Buf, S.Tid);
  appendVarint(Buf, S.Req);
  appendVarint(Buf, static_cast<uint8_t>(S.Stage));
  appendVarint(Buf, S.TimeNs);
  appendVarint(Buf, S.Arg);
  ++Records;
}

void TraceWriter::selfOverhead(const SelfOverheadRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(SelfOverheadTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, R.Ops);
  appendVarint(Buf, R.Cycles);
  appendVarint(Buf, R.Samples);
  appendVarint(Buf, R.DrainCycles);
  appendVarint(Buf, R.TableBytes);
  ++Records;
}

void TraceWriter::finish() {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(EndRecordTag));
  appendVarint(Buf, Records);
  Finished = true;
}

void TraceWriter::finishAbnormal(uint32_t Signal, uint8_t Policy) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(AbnormalEndTag));
  appendVarint(Buf, Signal);
  appendVarint(Buf, Policy);
  appendVarint(Buf, TotalConflicts);
  for (uint64_t C : ConflictCounts)
    appendVarint(Buf, C);
  ++Records;
  finish();
}

const std::string &TraceWriter::buffer() {
  finish();
  return Buf;
}

bool TraceWriter::writeToFile(const std::string &Path, std::string &Error) {
  finish();
  size_t ToWrite = Buf.size();
  if (HasFaultTruncate && FaultTruncate < ToWrite)
    ToWrite = static_cast<size_t>(FaultTruncate);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Buf.data(), 1, ToWrite, F) == ToWrite;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    Error = "short write to '" + Path + "'";
    return false;
  }
  if (HasFaultTruncate) {
    Error = "fault-injected torn write: wrote " + std::to_string(ToWrite) +
            " of " + std::to_string(Buf.size()) + " bytes to '" + Path + "'";
    return false;
  }
  return true;
}

namespace {

/// Field reader that, unlike the bare readVarint/readString helpers,
/// distinguishes "ran out of bytes" (more input could complete the
/// record — the incremental TailParser should wait) from structural
/// damage (over-long varint, oversize string — no amount of further
/// bytes helps). Batch parsing reports both with the same message, so
/// the distinction only affects the RecordParse outcome, never the
/// error string.
struct Cursor {
  std::string_view Buf;
  size_t Pos;
  bool Short = false; ///< hit the end of Buf mid-field
  bool Bad = false;   ///< structurally invalid field

  bool varint(uint64_t &Out) {
    uint64_t V = 0;
    for (unsigned Shift = 0; Shift < 70; Shift += 7) {
      if (Pos >= Buf.size()) {
        Short = true;
        return false;
      }
      uint8_t B = static_cast<uint8_t>(Buf[Pos++]);
      V |= static_cast<uint64_t>(B & 0x7f) << Shift;
      if (!(B & 0x80)) {
        Out = V;
        return true;
      }
    }
    Bad = true; // over-long varint
    return false;
  }

  bool zigzag(int64_t &Out) {
    uint64_t Raw;
    if (!varint(Raw))
      return false;
    Out = static_cast<int64_t>((Raw >> 1) ^ (~(Raw & 1) + 1));
    return true;
  }

  bool str(std::string &Out) {
    uint64_t Len;
    if (!varint(Len))
      return false;
    if (Len > (1u << 20)) {
      Bad = true;
      return false;
    }
    if (Pos + Len > Buf.size()) {
      Short = true;
      return false;
    }
    Out.assign(Buf.data() + Pos, Len);
    Pos += Len;
    return true;
  }
};

} // namespace

RecordParse parseTraceHeader(std::string_view Buf, size_t &Pos,
                             uint32_t &Version, std::string &Error) {
  if (Buf.size() < Pos + sizeof(TraceMagic) + 4) {
    Error = "trace too short for header";
    return RecordParse::NeedMore;
  }
  if (std::memcmp(Buf.data() + Pos, TraceMagic, sizeof(TraceMagic)) != 0) {
    Error = "bad magic (not a SharC trace)";
    return RecordParse::Corrupt;
  }
  Version = 0;
  for (unsigned I = 0; I < 4; ++I)
    Version |= static_cast<uint32_t>(static_cast<uint8_t>(
                   Buf[Pos + sizeof(TraceMagic) + I]))
               << (8 * I);
  if (Version < MinTraceVersion || Version > TraceVersion) {
    Error = "unsupported trace version " + std::to_string(Version) +
            " (supported: " + std::to_string(MinTraceVersion) + ".." +
            std::to_string(TraceVersion) + ")";
    return RecordParse::Corrupt;
  }
  Pos += sizeof(TraceMagic) + 4;
  return RecordParse::Ok;
}

RecordParse parseOneRecord(std::string_view Buf, size_t &Pos, TraceData &Out,
                           uint64_t &Records, std::string &Error) {
  const size_t Start = Pos;
  if (Pos >= Buf.size()) {
    Error = "truncated trace: missing end record";
    return RecordParse::NeedMore;
  }
  Cursor C{Buf, Pos};
  uint8_t Tag = static_cast<uint8_t>(Buf[C.Pos++]);
  // A field-read failure either needs more bytes (rewind to the tag so
  // the caller can retry) or is unfixable; the message is the one batch
  // parsing reports for a trace cut here, in both cases.
  auto Cut = [&](const char *Msg) {
    Error = Msg;
    Pos = Start;
    return C.Bad ? RecordParse::Corrupt : RecordParse::NeedMore;
  };

  if (Tag == EndRecordTag) {
    uint64_t Declared;
    if (!C.varint(Declared))
      return Cut("truncated trace: unreadable end record");
    if (Declared != Records) {
      Error = "corrupt trace: end record declares " +
              std::to_string(Declared) + " records, saw " +
              std::to_string(Records);
      Pos = Start;
      return RecordParse::Corrupt;
    }
    Pos = C.Pos;
    return RecordParse::End;
  }
  if (Tag == StatsRecordTag) {
    uint64_t F[17];
    for (uint64_t &V : F)
      if (!C.varint(V))
        return Cut("truncated trace: cut mid stats record");
    rt::StatsSnapshot S;
    fieldsToStats(F, S);
    Out.Samples.push_back(S);
    Out.SamplePos.push_back(Out.Events.size());
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == SiteProfileTag) {
    SiteProfileRecord R;
    uint64_t Tid, Kind, Line, Count, Bytes, Cycles, Samples;
    if (!C.varint(Tid) || !C.varint(Kind) || !C.varint(Line) ||
        !C.str(R.File) || !C.str(R.LValue) || !C.varint(Count) ||
        !C.varint(Bytes) || !C.varint(Cycles) || !C.varint(Samples))
      return Cut("truncated trace: cut mid site-profile record");
    if (Kind >= NumCheckKinds) {
      Error = "corrupt trace: unknown check kind " + std::to_string(Kind);
      Pos = Start;
      return RecordParse::Corrupt;
    }
    R.Tid = static_cast<uint32_t>(Tid);
    R.Kind = static_cast<CheckKind>(Kind);
    R.Line = static_cast<uint32_t>(Line);
    R.Count = Count;
    R.Bytes = Bytes;
    R.Cycles = Cycles;
    R.Samples = Samples;
    Out.Sites.push_back(std::move(R));
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == LockProfileTag) {
    LockProfileRecord R;
    uint64_t Tid, Line;
    bool Ok = C.varint(Tid) && C.varint(R.Lock) && C.varint(Line) &&
              C.str(R.File) && C.varint(R.Acquires) &&
              C.varint(R.Contended) && C.varint(R.WaitCycles) &&
              C.varint(R.HoldCycles);
    for (uint64_t &V : R.WaitHist)
      Ok = Ok && C.varint(V);
    for (uint64_t &V : R.HoldHist)
      Ok = Ok && C.varint(V);
    if (!Ok)
      return Cut("truncated trace: cut mid lock-profile record");
    R.Tid = static_cast<uint32_t>(Tid);
    R.Line = static_cast<uint32_t>(Line);
    Out.Locks.push_back(std::move(R));
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == AbnormalEndTag) {
    uint64_t Signal, Policy, Total;
    uint64_t Counts[NumConflictKinds];
    if (!C.varint(Signal) || !C.varint(Policy) || !C.varint(Total))
      return Cut("truncated trace: cut mid abnormal-end record");
    for (uint64_t &V : Counts)
      if (!C.varint(V))
        return Cut("truncated trace: cut mid abnormal-end record");
    Out.AbnormalEnd = true;
    Out.AbnormalSignal = static_cast<uint32_t>(Signal);
    Out.AbnormalPolicy = static_cast<uint8_t>(Policy);
    Out.AbnormalTotalViolations = Total;
    std::memcpy(Out.AbnormalConflictCounts, Counts, sizeof(Counts));
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == SelfOverheadTag) {
    SelfOverheadRecord R;
    uint64_t Tid;
    if (!C.varint(Tid) || !C.varint(R.Ops) || !C.varint(R.Cycles) ||
        !C.varint(R.Samples) || !C.varint(R.DrainCycles) ||
        !C.varint(R.TableBytes))
      return Cut("truncated trace: cut mid self-overhead record");
    R.Tid = static_cast<uint32_t>(Tid);
    Out.Overheads.push_back(R);
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == SpanBeginTag || Tag == SpanEndTag) {
    SpanRecord S;
    uint64_t Tid, Stage;
    if (!C.varint(Tid) || !C.varint(S.Req) || !C.varint(Stage) ||
        !C.varint(S.TimeNs) || !C.varint(S.Arg))
      return Cut("truncated trace: cut mid span record");
    if (Stage >= NumSpanStages) {
      Error = "corrupt trace: unknown span stage " + std::to_string(Stage);
      Pos = Start;
      return RecordParse::Corrupt;
    }
    S.Tid = static_cast<uint32_t>(Tid);
    S.Stage = static_cast<SpanStage>(Stage);
    S.Begin = Tag == SpanBeginTag;
    Out.Spans.push_back(S);
    Out.SpanPos.push_back(Out.Events.size());
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag >= ExtensionTagFirst && Tag <= ExtensionTagLast) {
    // A record family newer than this reader: the length prefix lets us
    // hop over the payload, count the record, and keep going.
    uint64_t Len;
    if (!C.varint(Len))
      return Cut("truncated trace: cut mid extension record");
    if (Len > (1u << 20)) {
      Error = "corrupt trace: oversized extension record";
      Pos = Start;
      return RecordParse::Corrupt;
    }
    if (C.Pos + Len > Buf.size()) {
      C.Short = true;
      return Cut("truncated trace: cut mid extension record");
    }
    C.Pos += Len;
    ++Out.SkippedUnknown;
    bool Seen = false;
    for (uint8_t T : Out.SkippedTags)
      Seen = Seen || T == Tag;
    if (!Seen)
      Out.SkippedTags.push_back(Tag);
    ++Records;
    Pos = C.Pos;
    return RecordParse::Ok;
  }
  if (Tag == 0 || Tag > NumEventKinds) {
    Error = "corrupt trace: unknown record tag " + std::to_string(Tag);
    Pos = Start;
    return RecordParse::Corrupt;
  }
  Event Ev;
  Ev.K = static_cast<EventKind>(Tag - 1);
  uint64_t Tid;
  if (!C.varint(Tid) || !C.varint(Ev.Addr) || !C.zigzag(Ev.Value) ||
      !C.varint(Ev.Extra))
    return Cut("truncated trace: cut mid event record");
  Ev.Tid = static_cast<uint32_t>(Tid);
  Out.Events.push_back(Ev);
  ++Records;
  Pos = C.Pos;
  return RecordParse::Ok;
}

bool parseTrace(std::string_view Buf, TraceData &Out, std::string &Error) {
  Out = TraceData();
  size_t Pos = 0;
  uint32_t Version = 0;
  if (parseTraceHeader(Buf, Pos, Version, Error) != RecordParse::Ok)
    return false;
  Out.Version = Version;
  uint64_t Records = 0;
  while (true) {
    switch (parseOneRecord(Buf, Pos, Out, Records, Error)) {
    case RecordParse::Ok:
      break;
    case RecordParse::End:
      if (Pos != Buf.size()) {
        Error = "corrupt trace: trailing bytes after end record";
        return false;
      }
      return true;
    case RecordParse::NeedMore:
    case RecordParse::Corrupt:
      return false; // Error already set
    }
  }
}

bool loadTraceFile(const std::string &Path, TraceData &Out,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Buf;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, N);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr) {
    Error = "read error on '" + Path + "'";
    return false;
  }
  return parseTrace(Buf, Out, Error);
}

} // namespace sharc::obs
