#include "obs/TraceFile.h"

#include <cstdio>
#include <cstring>

namespace sharc::obs {

void appendVarint(std::string &Out, uint64_t V) {
  while (V >= 0x80) {
    Out.push_back(static_cast<char>((V & 0x7f) | 0x80));
    V >>= 7;
  }
  Out.push_back(static_cast<char>(V));
}

void appendZigzag(std::string &Out, int64_t V) {
  appendVarint(Out, (static_cast<uint64_t>(V) << 1) ^
                        static_cast<uint64_t>(V >> 63));
}

bool readVarint(std::string_view Buf, size_t &Pos, uint64_t &Out) {
  uint64_t V = 0;
  for (unsigned Shift = 0; Shift < 70; Shift += 7) {
    if (Pos >= Buf.size())
      return false;
    uint8_t B = static_cast<uint8_t>(Buf[Pos++]);
    V |= static_cast<uint64_t>(B & 0x7f) << Shift;
    if (!(B & 0x80)) {
      Out = V;
      return true;
    }
  }
  return false; // over-long varint
}

bool readZigzag(std::string_view Buf, size_t &Pos, int64_t &Out) {
  uint64_t Raw;
  if (!readVarint(Buf, Pos, Raw))
    return false;
  Out = static_cast<int64_t>((Raw >> 1) ^ (~(Raw & 1) + 1));
  return true;
}

void appendString(std::string &Out, std::string_view S) {
  appendVarint(Out, S.size());
  Out.append(S.data(), S.size());
}

bool readString(std::string_view Buf, size_t &Pos, std::string &Out) {
  uint64_t Len;
  if (!readVarint(Buf, Pos, Len))
    return false;
  if (Len > (1u << 20) || Pos + Len > Buf.size())
    return false;
  Out.assign(Buf.data() + Pos, Len);
  Pos += Len;
  return true;
}

namespace {

// StatsSnapshot counters in declaration order; keep in sync with
// rt/Stats.h.
constexpr unsigned NumStatsFields = 17;

void statsToFields(const rt::StatsSnapshot &S,
                   uint64_t (&F)[NumStatsFields]) {
  uint64_t Tmp[NumStatsFields] = {
      S.DynamicReads,   S.DynamicWrites, S.DynamicReadBytes,
      S.DynamicWriteBytes, S.LockChecks, S.RcBarriers,
      S.Collections,    S.SharingCasts,  S.ReadConflicts,
      S.WriteConflicts, S.LockViolations, S.CastErrors,
      S.ShadowBytes,    S.RcTableBytes,  S.LogBytes,
      S.HeapPayloadBytes, S.PeakHeapPayloadBytes};
  std::memcpy(F, Tmp, sizeof(Tmp));
}

void fieldsToStats(const uint64_t (&F)[NumStatsFields],
                   rt::StatsSnapshot &S) {
  S.DynamicReads = F[0];
  S.DynamicWrites = F[1];
  S.DynamicReadBytes = F[2];
  S.DynamicWriteBytes = F[3];
  S.LockChecks = F[4];
  S.RcBarriers = F[5];
  S.Collections = F[6];
  S.SharingCasts = F[7];
  S.ReadConflicts = F[8];
  S.WriteConflicts = F[9];
  S.LockViolations = F[10];
  S.CastErrors = F[11];
  S.ShadowBytes = F[12];
  S.RcTableBytes = F[13];
  S.LogBytes = F[14];
  S.HeapPayloadBytes = F[15];
  S.PeakHeapPayloadBytes = F[16];
}

} // namespace

TraceWriter::TraceWriter() {
  Buf.append(TraceMagic, sizeof(TraceMagic));
  for (unsigned I = 0; I < 4; ++I)
    Buf.push_back(static_cast<char>((TraceVersion >> (8 * I)) & 0xff));
}

void TraceWriter::event(const Event &Ev) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(static_cast<uint8_t>(Ev.K) + 1));
  appendVarint(Buf, Ev.Tid);
  appendVarint(Buf, Ev.Addr);
  appendZigzag(Buf, Ev.Value);
  appendVarint(Buf, Ev.Extra);
  ++Records;
  // Keep a running violation summary so finishAbnormal() can write a
  // self-contained abnormal-end record from a crash hook.
  if (Ev.K == EventKind::Conflict) {
    ++TotalConflicts;
    unsigned Kind = static_cast<unsigned>(conflictKindOf(Ev.Extra));
    if (Kind < NumConflictKinds)
      ++ConflictCounts[Kind];
  }
}

void TraceWriter::stats(const rt::StatsSnapshot &S) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(StatsRecordTag));
  uint64_t F[NumStatsFields];
  statsToFields(S, F);
  for (uint64_t V : F)
    appendVarint(Buf, V);
  ++Records;
}

void TraceWriter::siteProfile(const SiteProfileRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(SiteProfileTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, static_cast<uint8_t>(R.Kind));
  appendVarint(Buf, R.Line);
  appendString(Buf, R.File);
  appendString(Buf, R.LValue);
  appendVarint(Buf, R.Count);
  appendVarint(Buf, R.Bytes);
  appendVarint(Buf, R.Cycles);
  appendVarint(Buf, R.Samples);
  ++Records;
}

void TraceWriter::lockProfile(const LockProfileRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(LockProfileTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, R.Lock);
  appendVarint(Buf, R.Line);
  appendString(Buf, R.File);
  appendVarint(Buf, R.Acquires);
  appendVarint(Buf, R.Contended);
  appendVarint(Buf, R.WaitCycles);
  appendVarint(Buf, R.HoldCycles);
  for (uint64_t V : R.WaitHist)
    appendVarint(Buf, V);
  for (uint64_t V : R.HoldHist)
    appendVarint(Buf, V);
  ++Records;
}

void TraceWriter::selfOverhead(const SelfOverheadRecord &R) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(SelfOverheadTag));
  appendVarint(Buf, R.Tid);
  appendVarint(Buf, R.Ops);
  appendVarint(Buf, R.Cycles);
  appendVarint(Buf, R.Samples);
  appendVarint(Buf, R.DrainCycles);
  appendVarint(Buf, R.TableBytes);
  ++Records;
}

void TraceWriter::finish() {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(EndRecordTag));
  appendVarint(Buf, Records);
  Finished = true;
}

void TraceWriter::finishAbnormal(uint32_t Signal, uint8_t Policy) {
  if (Finished)
    return;
  Buf.push_back(static_cast<char>(AbnormalEndTag));
  appendVarint(Buf, Signal);
  appendVarint(Buf, Policy);
  appendVarint(Buf, TotalConflicts);
  for (uint64_t C : ConflictCounts)
    appendVarint(Buf, C);
  ++Records;
  finish();
}

const std::string &TraceWriter::buffer() {
  finish();
  return Buf;
}

bool TraceWriter::writeToFile(const std::string &Path, std::string &Error) {
  finish();
  size_t ToWrite = Buf.size();
  if (HasFaultTruncate && FaultTruncate < ToWrite)
    ToWrite = static_cast<size_t>(FaultTruncate);
  std::FILE *F = std::fopen(Path.c_str(), "wb");
  if (!F) {
    Error = "cannot open '" + Path + "' for writing";
    return false;
  }
  bool Ok = std::fwrite(Buf.data(), 1, ToWrite, F) == ToWrite;
  if (std::fclose(F) != 0)
    Ok = false;
  if (!Ok) {
    Error = "short write to '" + Path + "'";
    return false;
  }
  if (HasFaultTruncate) {
    Error = "fault-injected torn write: wrote " + std::to_string(ToWrite) +
            " of " + std::to_string(Buf.size()) + " bytes to '" + Path + "'";
    return false;
  }
  return true;
}

bool parseTrace(std::string_view Buf, TraceData &Out, std::string &Error) {
  Out = TraceData();
  if (Buf.size() < sizeof(TraceMagic) + 4) {
    Error = "trace too short for header";
    return false;
  }
  if (std::memcmp(Buf.data(), TraceMagic, sizeof(TraceMagic)) != 0) {
    Error = "bad magic (not a SharC trace)";
    return false;
  }
  uint32_t Version = 0;
  for (unsigned I = 0; I < 4; ++I)
    Version |= static_cast<uint32_t>(
                   static_cast<uint8_t>(Buf[sizeof(TraceMagic) + I]))
               << (8 * I);
  if (Version < MinTraceVersion || Version > TraceVersion) {
    Error = "unsupported trace version " + std::to_string(Version) +
            " (supported: " + std::to_string(MinTraceVersion) + ".." +
            std::to_string(TraceVersion) + ")";
    return false;
  }

  size_t Pos = sizeof(TraceMagic) + 4;
  uint64_t Records = 0;
  while (true) {
    if (Pos >= Buf.size()) {
      Error = "truncated trace: missing end record";
      return false;
    }
    uint8_t Tag = static_cast<uint8_t>(Buf[Pos++]);
    if (Tag == EndRecordTag) {
      uint64_t Declared;
      if (!readVarint(Buf, Pos, Declared)) {
        Error = "truncated trace: unreadable end record";
        return false;
      }
      if (Declared != Records) {
        Error = "corrupt trace: end record declares " +
                std::to_string(Declared) + " records, saw " +
                std::to_string(Records);
        return false;
      }
      if (Pos != Buf.size()) {
        Error = "corrupt trace: trailing bytes after end record";
        return false;
      }
      return true;
    }
    if (Tag == StatsRecordTag) {
      uint64_t F[17];
      for (uint64_t &V : F)
        if (!readVarint(Buf, Pos, V)) {
          Error = "truncated trace: cut mid stats record";
          return false;
        }
      rt::StatsSnapshot S;
      fieldsToStats(F, S);
      Out.Samples.push_back(S);
      Out.SamplePos.push_back(Out.Events.size());
      ++Records;
      continue;
    }
    if (Tag == SiteProfileTag) {
      SiteProfileRecord R;
      uint64_t Tid, Kind, Line, Count, Bytes, Cycles, Samples;
      if (!readVarint(Buf, Pos, Tid) || !readVarint(Buf, Pos, Kind) ||
          !readVarint(Buf, Pos, Line) || !readString(Buf, Pos, R.File) ||
          !readString(Buf, Pos, R.LValue) || !readVarint(Buf, Pos, Count) ||
          !readVarint(Buf, Pos, Bytes) || !readVarint(Buf, Pos, Cycles) ||
          !readVarint(Buf, Pos, Samples)) {
        Error = "truncated trace: cut mid site-profile record";
        return false;
      }
      if (Kind >= NumCheckKinds) {
        Error = "corrupt trace: unknown check kind " + std::to_string(Kind);
        return false;
      }
      R.Tid = static_cast<uint32_t>(Tid);
      R.Kind = static_cast<CheckKind>(Kind);
      R.Line = static_cast<uint32_t>(Line);
      R.Count = Count;
      R.Bytes = Bytes;
      R.Cycles = Cycles;
      R.Samples = Samples;
      Out.Sites.push_back(std::move(R));
      ++Records;
      continue;
    }
    if (Tag == LockProfileTag) {
      LockProfileRecord R;
      uint64_t Tid, Line;
      bool Ok = readVarint(Buf, Pos, Tid) && readVarint(Buf, Pos, R.Lock) &&
                readVarint(Buf, Pos, Line) && readString(Buf, Pos, R.File) &&
                readVarint(Buf, Pos, R.Acquires) &&
                readVarint(Buf, Pos, R.Contended) &&
                readVarint(Buf, Pos, R.WaitCycles) &&
                readVarint(Buf, Pos, R.HoldCycles);
      for (uint64_t &V : R.WaitHist)
        Ok = Ok && readVarint(Buf, Pos, V);
      for (uint64_t &V : R.HoldHist)
        Ok = Ok && readVarint(Buf, Pos, V);
      if (!Ok) {
        Error = "truncated trace: cut mid lock-profile record";
        return false;
      }
      R.Tid = static_cast<uint32_t>(Tid);
      R.Line = static_cast<uint32_t>(Line);
      Out.Locks.push_back(std::move(R));
      ++Records;
      continue;
    }
    if (Tag == AbnormalEndTag) {
      uint64_t Signal, Policy, Total;
      if (!readVarint(Buf, Pos, Signal) || !readVarint(Buf, Pos, Policy) ||
          !readVarint(Buf, Pos, Total)) {
        Error = "truncated trace: cut mid abnormal-end record";
        return false;
      }
      for (uint64_t &C : Out.AbnormalConflictCounts)
        if (!readVarint(Buf, Pos, C)) {
          Error = "truncated trace: cut mid abnormal-end record";
          return false;
        }
      Out.AbnormalEnd = true;
      Out.AbnormalSignal = static_cast<uint32_t>(Signal);
      Out.AbnormalPolicy = static_cast<uint8_t>(Policy);
      Out.AbnormalTotalViolations = Total;
      ++Records;
      continue;
    }
    if (Tag == SelfOverheadTag) {
      SelfOverheadRecord R;
      uint64_t Tid;
      if (!readVarint(Buf, Pos, Tid) || !readVarint(Buf, Pos, R.Ops) ||
          !readVarint(Buf, Pos, R.Cycles) || !readVarint(Buf, Pos, R.Samples) ||
          !readVarint(Buf, Pos, R.DrainCycles) ||
          !readVarint(Buf, Pos, R.TableBytes)) {
        Error = "truncated trace: cut mid self-overhead record";
        return false;
      }
      R.Tid = static_cast<uint32_t>(Tid);
      Out.Overheads.push_back(R);
      ++Records;
      continue;
    }
    if (Tag == 0 || Tag > NumEventKinds) {
      Error = "corrupt trace: unknown record tag " + std::to_string(Tag);
      return false;
    }
    Event Ev;
    Ev.K = static_cast<EventKind>(Tag - 1);
    uint64_t Tid;
    if (!readVarint(Buf, Pos, Tid) || !readVarint(Buf, Pos, Ev.Addr) ||
        !readZigzag(Buf, Pos, Ev.Value) || !readVarint(Buf, Pos, Ev.Extra)) {
      Error = "truncated trace: cut mid event record";
      return false;
    }
    Ev.Tid = static_cast<uint32_t>(Tid);
    Out.Events.push_back(Ev);
    ++Records;
  }
}

bool loadTraceFile(const std::string &Path, TraceData &Out,
                   std::string &Error) {
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  if (!F) {
    Error = "cannot open '" + Path + "'";
    return false;
  }
  std::string Buf;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Buf.append(Chunk, N);
  bool ReadErr = std::ferror(F) != 0;
  std::fclose(F);
  if (ReadErr) {
    Error = "read error on '" + Path + "'";
    return false;
  }
  return parseTrace(Buf, Out, Error);
}

} // namespace sharc::obs
