#include "obs/Profile.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <tuple>

namespace sharc::obs {

uint64_t ProfileReport::totalCount() const {
  uint64_t N = 0;
  for (uint64_t C : KindCount)
    N += C;
  return N;
}

uint64_t ProfileReport::dynCost() const {
  return KindCost[unsigned(CheckKind::DynamicRead)] +
         KindCost[unsigned(CheckKind::DynamicWrite)];
}

uint64_t ProfileReport::attributedCount() const {
  uint64_t N = 0;
  for (const Site &S : Sites)
    if (S.known())
      N += S.Count;
  return N;
}

ProfileReport buildProfile(const TraceData &Data) {
  ProfileReport R;

  // Merge site records across threads; remember accessors.
  using SiteKey = std::tuple<std::string, uint32_t, std::string, uint8_t>;
  struct SiteAccum {
    ProfileReport::Site S;
    std::set<uint32_t> Tids;
  };
  std::map<SiteKey, SiteAccum> Sites;
  for (const SiteProfileRecord &Rec : Data.Sites) {
    SiteAccum &A = Sites[SiteKey(Rec.File, Rec.Line, Rec.LValue,
                                 uint8_t(Rec.Kind))];
    A.S.File = Rec.File;
    A.S.LValue = Rec.LValue;
    A.S.Line = Rec.Line;
    A.S.Kind = Rec.Kind;
    A.S.Count += Rec.Count;
    A.S.Bytes += Rec.Bytes;
    A.S.Cycles += Rec.Cycles;
    A.S.Samples += Rec.Samples;
    A.Tids.insert(Rec.Tid);
  }
  for (auto &[Key, A] : Sites) {
    A.S.Tids.assign(A.Tids.begin(), A.Tids.end());
    R.KindCount[unsigned(A.S.Kind)] += A.S.Count;
    R.KindBytes[unsigned(A.S.Kind)] += A.S.Bytes;
    R.KindCost[unsigned(A.S.Kind)] += A.S.cost();
    R.Sites.push_back(std::move(A.S));
  }
  std::stable_sort(R.Sites.begin(), R.Sites.end(),
                   [](const auto &A, const auto &B) {
                     return A.cost() > B.cost();
                   });

  // Merge lock records across threads, keeping per-acquirer-site
  // attribution.
  struct LockAccum {
    ProfileReport::Lock L;
    std::set<uint32_t> Tids;
    std::map<std::pair<std::string, uint32_t>, ProfileReport::Lock::Acquirer>
        Acquirers;
  };
  std::map<uint64_t, LockAccum> Locks;
  for (const LockProfileRecord &Rec : Data.Locks) {
    LockAccum &A = Locks[Rec.Lock];
    A.L.Lock = Rec.Lock;
    A.L.Acquires += Rec.Acquires;
    A.L.Contended += Rec.Contended;
    A.L.WaitCycles += Rec.WaitCycles;
    A.L.HoldCycles += Rec.HoldCycles;
    for (unsigned I = 0; I < NumHistBuckets; ++I) {
      A.L.WaitHist[I] += Rec.WaitHist[I];
      A.L.HoldHist[I] += Rec.HoldHist[I];
    }
    A.Tids.insert(Rec.Tid);
    auto &Acq = A.Acquirers[{Rec.File, Rec.Line}];
    Acq.File = Rec.File;
    Acq.Line = Rec.Line;
    Acq.Acquires += Rec.Acquires;
    Acq.WaitCycles += Rec.WaitCycles;
  }
  for (auto &[Addr, A] : Locks) {
    A.L.Tids.assign(A.Tids.begin(), A.Tids.end());
    for (auto &[Site, Acq] : A.Acquirers)
      A.L.Acquirers.push_back(Acq);
    std::stable_sort(A.L.Acquirers.begin(), A.L.Acquirers.end(),
                     [](const auto &X, const auto &Y) {
                       return X.WaitCycles > Y.WaitCycles;
                     });
    R.Locks.push_back(std::move(A.L));
  }
  std::stable_sort(R.Locks.begin(), R.Locks.end(),
                   [](const auto &A, const auto &B) {
                     return A.WaitCycles > B.WaitCycles;
                   });

  for (const SelfOverheadRecord &O : Data.Overheads) {
    R.Overhead.Ops += O.Ops;
    R.Overhead.Cycles += O.Cycles;
    R.Overhead.Samples += O.Samples;
    R.Overhead.DrainCycles += O.DrainCycles;
    R.Overhead.TableBytes += O.TableBytes;
    ++R.OverheadRecords;
  }

  std::set<uint32_t> ConflictLines;
  for (const Event &Ev : Data.Events)
    if (Ev.K == EventKind::Conflict)
      if (uint32_t Line = conflictWhoLine(Ev.Extra))
        ConflictLines.insert(Line);
  R.ConflictLines.assign(ConflictLines.begin(), ConflictLines.end());

  return R;
}

namespace {

bool isDynKind(CheckKind K) {
  return K == CheckKind::DynamicRead || K == CheckKind::DynamicWrite;
}

std::string siteLabel(const std::string &File, uint32_t Line,
                      const std::string &LValue) {
  if (File.empty() && Line == 0)
    return "<implicit>";
  std::string S = LValue.empty() ? std::string("<expr>") : LValue;
  S += " @ ";
  S += File.empty() ? "?" : File;
  S += ":" + std::to_string(Line);
  return S;
}

} // namespace

std::vector<Suggestion> advise(const ProfileReport &R, double MinSitePct,
                               double MinLockPct) {
  std::vector<Suggestion> Out;

  // Rule 1 (MakePrivate): merge the dynamic-check kinds per source
  // site; a site that carries >= MinSitePct of dynamic-check cost, was
  // only ever touched by one thread, and never faulted is paying for
  // n-readers-or-1-writer tracking it cannot need.
  struct DynSite {
    uint64_t Cost = 0;
    std::set<uint32_t> Tids;
    std::string LValue;
  };
  std::map<std::pair<std::string, uint32_t>, DynSite> DynSites;
  for (const ProfileReport::Site &S : R.Sites) {
    if (!isDynKind(S.Kind) || !S.known())
      continue;
    DynSite &D = DynSites[{S.File, S.Line}];
    D.Cost += S.cost();
    D.Tids.insert(S.Tids.begin(), S.Tids.end());
    if (D.LValue.empty())
      D.LValue = S.LValue;
  }
  uint64_t DynTotal = R.dynCost();
  for (const auto &[Key, D] : DynSites) {
    if (!DynTotal)
      break;
    double Pct = 100.0 * double(D.Cost) / double(DynTotal);
    if (Pct < MinSitePct || D.Tids.size() != 1)
      continue;
    if (std::binary_search(R.ConflictLines.begin(), R.ConflictLines.end(),
                           Key.second))
      continue;
    Suggestion S;
    S.A = Suggestion::Action::MakePrivate;
    S.LValue = D.LValue;
    S.File = Key.first;
    S.Line = Key.second;
    S.CostPct = Pct;
    S.Tid = *D.Tids.begin();
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "%.1f%% of dynamic-check cost, only ever touched by "
                  "thread %u, no conflicts",
                  Pct, S.Tid);
    S.Rationale = Buf;
    Out.push_back(std::move(S));
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const Suggestion &A, const Suggestion &B) {
                     return A.CostPct > B.CostPct;
                   });

  // Rule 2 (CoarsenLock): a lock carrying >= MinLockPct of all wait
  // time is acquired too often relative to the work done under it;
  // point at the acquirer site paying most of the wait.
  uint64_t WaitTotal = 0;
  for (const ProfileReport::Lock &L : R.Locks)
    WaitTotal += L.WaitCycles;
  for (const ProfileReport::Lock &L : R.Locks) {
    if (!WaitTotal || !L.Contended)
      continue;
    double Pct = 100.0 * double(L.WaitCycles) / double(WaitTotal);
    if (Pct < MinLockPct)
      continue;
    Suggestion S;
    S.A = Suggestion::Action::CoarsenLock;
    S.Lock = L.Lock;
    S.CostPct = Pct;
    if (!L.Acquirers.empty()) {
      S.File = L.Acquirers.front().File;
      S.Line = L.Acquirers.front().Line;
    }
    char Buf[192];
    std::snprintf(Buf, sizeof(Buf),
                  "%.1f%% of all lock wait time (%llu of %llu acquires "
                  "contended)",
                  Pct, (unsigned long long)L.Contended,
                  (unsigned long long)L.Acquires);
    S.Rationale = Buf;
    Out.push_back(std::move(S));
  }
  return Out;
}

std::string renderSuggestion(const Suggestion &S) {
  std::ostringstream OS;
  switch (S.A) {
  case Suggestion::Action::MakePrivate:
    OS << "suggest private: " << siteLabel(S.File, S.Line, S.LValue) << " ("
       << S.Rationale << ")";
    break;
  case Suggestion::Action::CoarsenLock:
    OS << "suggest coarser locked region: lock " << S.Lock;
    if (S.Line)
      OS << " under " << S.File << ":" << S.Line;
    OS << " (" << S.Rationale << ")";
    break;
  }
  return OS.str();
}

std::string renderProfile(const ProfileReport &R, const TraceData &Data,
                          size_t TopSites) {
  std::ostringstream OS;
  OS << "profile: " << Data.Sites.size() << " site records, "
     << Data.Locks.size() << " lock records, " << R.OverheadRecords
     << " threads\n";

  OS << "\ncheck cost by kind:\n";
  OS << "  kind              count      bytes  est-cost\n";
  for (unsigned K = 0; K < NumCheckKinds; ++K) {
    if (!R.KindCount[K])
      continue;
    char Line[128];
    std::snprintf(Line, sizeof(Line), "  %-12s %10llu %10llu %9llu\n",
                  checkKindName(CheckKind(K)),
                  (unsigned long long)R.KindCount[K],
                  (unsigned long long)R.KindBytes[K],
                  (unsigned long long)R.KindCost[K]);
    OS << Line;
  }

  uint64_t TotalCost = 0;
  for (uint64_t C : R.KindCost)
    TotalCost += C;
  if (!R.Sites.empty()) {
    OS << "\nhot sites (by estimated cost):\n";
    OS << "   %cost  kind             count  tids  site\n";
    size_t N = 0;
    for (const ProfileReport::Site &S : R.Sites) {
      if (++N > TopSites)
        break;
      double Pct = TotalCost ? 100.0 * double(S.cost()) / double(TotalCost)
                             : 0.0;
      char Line[96];
      std::snprintf(Line, sizeof(Line), "  %6.1f  %-12s %10llu %5zu  ", Pct,
                    checkKindName(S.Kind), (unsigned long long)S.Count,
                    S.Tids.size());
      OS << Line << siteLabel(S.File, S.Line, S.LValue) << "\n";
    }
  }

  if (!R.Locks.empty()) {
    OS << "\nlock contention:\n";
    OS << "  lock             acquires  contended       wait       hold"
          "  top acquirer\n";
    for (const ProfileReport::Lock &L : R.Locks) {
      char Line[160];
      std::snprintf(Line, sizeof(Line),
                    "  %-16llu %8llu %10llu %10llu %10llu  ",
                    (unsigned long long)L.Lock,
                    (unsigned long long)L.Acquires,
                    (unsigned long long)L.Contended,
                    (unsigned long long)L.WaitCycles,
                    (unsigned long long)L.HoldCycles);
      OS << Line;
      if (!L.Acquirers.empty() && L.Acquirers.front().Line)
        OS << L.Acquirers.front().File << ":" << L.Acquirers.front().Line;
      else
        OS << "-";
      OS << "\n";
    }
  }

  if (R.OverheadRecords) {
    OS << "\nself-overhead: " << R.Overhead.Ops << " profiled ops";
    if (R.Overhead.Samples) {
      double PerOp = double(R.Overhead.Cycles) / double(R.Overhead.Samples);
      char Buf[64];
      std::snprintf(Buf, sizeof(Buf), ", ~%.0f cycles/op sampled", PerOp);
      OS << Buf;
    }
    OS << ", drain " << R.Overhead.DrainCycles << " cycles, tables "
       << R.Overhead.TableBytes << " bytes\n";
  }

  uint64_t Total = R.totalCount();
  uint64_t Attr = R.attributedCount();
  if (Total) {
    char Buf[96];
    std::snprintf(Buf, sizeof(Buf),
                  "attribution: %llu of %llu checks at concrete sites "
                  "(%.1f%%)\n",
                  (unsigned long long)Attr, (unsigned long long)Total,
                  100.0 * double(Attr) / double(Total));
    OS << Buf;
  }

  // Exact-totals cross-check against the run's final counter sample —
  // the acceptance contract for the whole attribution pipeline.
  if (!Data.Samples.empty()) {
    const rt::StatsSnapshot &S = Data.Samples.back();
    struct {
      const char *Name;
      uint64_t Prof;
      uint64_t Stat;
    } Checks[] = {
        {"dynamic reads", R.KindCount[unsigned(CheckKind::DynamicRead)],
         S.DynamicReads},
        {"dynamic writes", R.KindCount[unsigned(CheckKind::DynamicWrite)],
         S.DynamicWrites},
        {"lock checks", R.KindCount[unsigned(CheckKind::LockCheck)],
         S.LockChecks},
        {"rc barriers", R.KindCount[unsigned(CheckKind::RcBarrier)],
         S.RcBarriers},
        {"sharing casts", R.KindCount[unsigned(CheckKind::SharingCast)],
         S.SharingCasts},
    };
    bool AllMatch = true;
    for (const auto &C : Checks)
      if (C.Prof != C.Stat) {
        AllMatch = false;
        OS << "MISMATCH: profile counts " << C.Prof << " " << C.Name
           << ", final stats sample says " << C.Stat << "\n";
      }
    if (AllMatch)
      OS << "totals: exact match with final stats sample\n";
  }

  return OS.str();
}

} // namespace sharc::obs
