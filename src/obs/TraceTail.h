// Incremental .strc parsing for `sharc-trace tail` (DESIGN.md §13).
//
// A TailParser accepts a trace as an arbitrary sequence of byte chunks
// — however a growing file happens to be read — and decodes records as
// they complete, resuming at record boundaries. It is built on the
// same parseTraceHeader/parseOneRecord primitives as the batch
// parseTrace, so for every byte prefix its decoded records and its
// diagnosis are identical to what a batch parse of exactly those bytes
// would produce. Fuzz oracle 7 (tail-vs-batch) pins that equivalence.
#ifndef SHARC_OBS_TRACETAIL_H
#define SHARC_OBS_TRACETAIL_H

#include "obs/TraceFile.h"

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace sharc::obs {

class TailParser {
public:
  enum class State : uint8_t {
    Header,  ///< fewer than the 12 header bytes seen so far
    Records, ///< header accepted; decoding records as they complete
    Done,    ///< end record seen and verified; trace is complete
    Corrupt, ///< unrecoverable damage; diagnosis() explains (sticky)
  };

  /// Feeds newly observed bytes and decodes every record they
  /// complete. Returns the number of records decoded by this call.
  /// Bytes arriving after the end record flip the parser to Corrupt
  /// ("trailing bytes"), exactly as a batch parse of the longer image
  /// would report.
  size_t push(std::string_view Bytes);

  State state() const { return St; }
  bool done() const { return St == State::Done; }
  bool corrupt() const { return St == State::Corrupt; }

  /// Everything decoded so far. Grows monotonically across push()
  /// calls; equals the batch parse's output on the same bytes.
  const TraceData &data() const { return Data; }
  uint64_t recordCount() const { return Records; }
  uint32_t version() const { return Version; }
  uint64_t bytesSeen() const { return BytesSeen; }

  /// What `parseTrace` over exactly the bytes seen so far would say:
  /// empty when it would succeed (complete trace), otherwise the
  /// identical error message (truncation cut message while waiting,
  /// corruption message once damaged).
  const std::string &diagnosis() const { return Diag; }

private:
  State St = State::Header;
  TraceData Data;
  std::string Pending; ///< unconsumed byte suffix
  uint64_t Records = 0;
  uint32_t Version = 0;
  uint64_t BytesSeen = 0;
  std::string Diag = "trace too short for header";
};

} // namespace sharc::obs

#endif // SHARC_OBS_TRACETAIL_H
