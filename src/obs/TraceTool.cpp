//===-- obs/TraceTool.cpp - sharc-trace CLI ---------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sharc-trace` — offline analysis of .strc traces recorded by
/// `sharcc --trace-out` (or any obs::TraceWriter user), plus schema
/// validation for the JSON the bench harnesses and `--metrics-out`
/// emit. The `profile` subcommand is the paper-§6 tuning loop: ranked
/// per-site check costs, lock contention, and annotation advice that —
/// when the MiniC source is available — is re-checked against the
/// static semantics before being shown. Exit codes follow sharcc's
/// contract: 0 success, 1 a check failed or the input is malformed,
/// 2 usage errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "obs/ChromeTrace.h"
#include "obs/Json.h"
#include "obs/MetricsJson.h"
#include "obs/Profile.h"
#include "obs/Summary.h"
#include "obs/TraceFile.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

using namespace sharc;

namespace {

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: sharc-trace <command> [args]\n"
      "\n"
      "commands:\n"
      "  summarize FILE.strc    totals, per-thread histogram, lock\n"
      "                         contention, hottest granules, conflict\n"
      "                         timeline\n"
      "  dump FILE.strc         every record, one per line\n"
      "  schedule FILE.strc     re-emit as the fuzzer's replay schedule\n"
      "  metrics FILE.strc      final stats sample as sharc-stats-v1 JSON\n"
      "  metrics --delta A.strc B.strc\n"
      "                         B's final sample minus A's (saturating),\n"
      "                         for before/after annotation tuning\n"
      "  profile FILE.strc [--source FILE.mc]\n"
      "                         ranked per-site check costs, lock\n"
      "                         contention, and annotation advice from a\n"
      "                         profiling run (sharcc --profile); with\n"
      "                         --source every suggestion is re-checked\n"
      "                         against the static checker\n"
      "  export-chrome FILE.strc [OUT.json]\n"
      "                         Chrome trace-event JSON for\n"
      "                         chrome://tracing / ui.perfetto.dev\n"
      "                         (stdout when OUT is omitted)\n"
      "  check-bench FILE...    validate sharc-bench-v1 JSON reports\n"
      "  check-metrics FILE...  validate sharc-metrics-v1 JSON reports\n"
      "  check-overhead A.json B.json [--max-pct P]\n"
      "                         compare two sharc-bench-v1 reports row by\n"
      "                         row; fail if any shared row regressed by\n"
      "                         more than P%% (default 2)\n"
      "  --help                 print this message\n"
      "\n"
      "exit codes: 0 success, 1 malformed input or failed check, 2 usage\n");
}

bool loadOrComplain(const char *Path, obs::TraceData &Data) {
  std::string Error;
  if (!obs::loadTraceFile(Path, Data, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  return true;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

int checkJsonFiles(int Argc, char **Argv, int First,
                   bool (*Validate)(const obs::JsonValue &, std::string &),
                   const char *What) {
  if (First >= Argc) {
    std::fprintf(stderr, "sharc-trace: %s needs at least one file\n", What);
    return 2;
  }
  int Status = 0;
  for (int I = First; I < Argc; ++I) {
    std::string Text;
    if (!readFile(Argv[I], Text)) {
      std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Argv[I]);
      Status = 1;
      continue;
    }
    obs::JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, Error) || !Validate(Doc, Error)) {
      std::fprintf(stderr, "sharc-trace: %s: %s\n", Argv[I], Error.c_str());
      Status = 1;
      continue;
    }
    std::printf("ok: %s\n", Argv[I]);
  }
  return Status;
}

//===----------------------------------------------------------------------===//
// Advisor validation: re-run the static pipeline with a suggestion applied
//===----------------------------------------------------------------------===//

/// Visits every expression (including subexpressions) reachable from the
/// program's function bodies. The AST has no generic walker — the only
/// existing traversal is ASTContext::forEachType — so the advisor brings
/// its own.
template <typename FnT> void forEachExpr(minic::Expr *E, FnT &Fn) {
  using namespace minic;
  if (!E)
    return;
  Fn(E);
  switch (E->Kind) {
  case ExprKind::Unary:
    forEachExpr(cast<UnaryExpr>(E)->Sub, Fn);
    break;
  case ExprKind::Binary:
    forEachExpr(cast<BinaryExpr>(E)->Lhs, Fn);
    forEachExpr(cast<BinaryExpr>(E)->Rhs, Fn);
    break;
  case ExprKind::Assign:
    forEachExpr(cast<AssignExpr>(E)->Lhs, Fn);
    forEachExpr(cast<AssignExpr>(E)->Rhs, Fn);
    break;
  case ExprKind::Call: {
    auto *Call = cast<CallExpr>(E);
    forEachExpr(Call->Callee, Fn);
    for (Expr *Arg : Call->Args)
      forEachExpr(Arg, Fn);
    break;
  }
  case ExprKind::Member:
    forEachExpr(cast<MemberExpr>(E)->Base, Fn);
    break;
  case ExprKind::Index:
    forEachExpr(cast<IndexExpr>(E)->Base, Fn);
    forEachExpr(cast<IndexExpr>(E)->Idx, Fn);
    break;
  case ExprKind::Scast:
    forEachExpr(cast<ScastExpr>(E)->Src, Fn);
    break;
  case ExprKind::New:
    forEachExpr(cast<NewExpr>(E)->Count, Fn);
    break;
  default:
    break;
  }
}

template <typename FnT> void forEachExprInStmt(minic::Stmt *S, FnT &Fn) {
  using namespace minic;
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->Body)
      forEachExprInStmt(Sub, Fn);
    break;
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    forEachExpr(If->Cond, Fn);
    forEachExprInStmt(If->Then, Fn);
    forEachExprInStmt(If->Else, Fn);
    break;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    forEachExpr(While->Cond, Fn);
    forEachExprInStmt(While->Body, Fn);
    break;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    forEachExprInStmt(For->Init, Fn);
    forEachExpr(For->Cond, Fn);
    forEachExpr(For->Step, Fn);
    forEachExprInStmt(For->Body, Fn);
    break;
  }
  case StmtKind::Return:
    forEachExpr(cast<ReturnStmt>(S)->Value, Fn);
    break;
  case StmtKind::ExprStmt:
    forEachExpr(cast<ExprStmt>(S)->E, Fn);
    break;
  case StmtKind::DeclStmt:
    forEachExpr(cast<DeclStmt>(S)->Init, Fn);
    break;
  case StmtKind::Spawn:
    forEachExpr(cast<SpawnStmt>(S)->Arg, Fn);
    break;
  case StmtKind::Free:
    forEachExpr(cast<FreeStmt>(S)->Ptr, Fn);
    break;
  default:
    break;
  }
}

enum class Verdict {
  Ok,           ///< applied annotation passes analysis + checker
  Rejected,     ///< static semantics reject the proposed mode
  SiteNotFound, ///< no expression matches the profile's (line, lvalue)
  SourceError,  ///< source missing or does not parse/type on its own
};

/// Statically validates one MakePrivate suggestion: re-parse the source,
/// locate the profiled expression by line and spelling, stamp `private`
/// on the type position the expression denotes (expression types ARE the
/// declaration-position TypeNodes, see ExprTyper.h), and re-run the
/// sharing analysis and checker. Each call works on a fresh AST so
/// validations cannot contaminate each other.
Verdict validateMakePrivate(const obs::Suggestion &S, const char *SourcePath,
                            std::string &Detail) {
  SourceManager SM;
  std::string Error;
  FileId File = SM.addFile(SourcePath, Error);
  if (File == InvalidFileId) {
    Detail = Error;
    return Verdict::SourceError;
  }
  DiagnosticEngine Diags(SM);
  minic::Parser Parser(SM, File, Diags);
  auto Prog = Parser.parseProgram();
  if (Diags.hasErrors()) {
    Detail = "source does not parse";
    return Verdict::SourceError;
  }
  minic::ExprTyper Typer(*Prog, Diags);
  if (!Typer.run()) {
    Detail = "source does not type-check";
    return Verdict::SourceError;
  }

  // Every expression on the suggested line whose spelling matches the
  // profiled l-value denotes the same cell; annotate them all (their
  // ExprTypes usually alias one declaration node anyway).
  std::vector<minic::TypeNode *> Positions;
  auto Match = [&](minic::Expr *E) {
    if (E->Loc.Line == S.Line && E->ExprType && E->spelling() == S.LValue)
      Positions.push_back(E->ExprType);
  };
  for (minic::FuncDecl *F : Prog->Funcs)
    forEachExprInStmt(F->Body, Match);
  if (Positions.empty()) {
    Detail = "site not found in source";
    return Verdict::SiteNotFound;
  }
  for (minic::TypeNode *T : Positions)
    T->Q = {minic::Mode::Private, nullptr, /*Explicit=*/true};

  analysis::SharingAnalysis Analysis(*Prog, Diags);
  if (!Analysis.run()) {
    Detail = "sharing analysis rejects private here";
    return Verdict::Rejected;
  }
  checker::Checker Check(*Prog, Diags);
  if (!Check.run()) {
    Detail = "checker rejects private here";
    return Verdict::Rejected;
  }
  return Verdict::Ok;
}

int cmdProfile(int Argc, char **Argv) {
  const char *TracePath = nullptr;
  const char *SourcePath = nullptr;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--source") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "sharc-trace: --source needs a file\n");
        return 2;
      }
      SourcePath = Argv[++I];
    } else if (!TracePath) {
      TracePath = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: profile takes one trace file\n");
      return 2;
    }
  }
  if (!TracePath) {
    std::fprintf(stderr,
                 "sharc-trace: profile FILE.strc [--source FILE.mc]\n");
    return 2;
  }
  obs::TraceData Data;
  if (!loadOrComplain(TracePath, Data))
    return 1;
  obs::ProfileReport R = obs::buildProfile(Data);
  std::fputs(obs::renderProfile(R, Data).c_str(), stdout);

  std::vector<obs::Suggestion> Suggestions = obs::advise(R);
  if (Suggestions.empty()) {
    std::printf("\nadvice: none (no site clears the suggestion "
                "thresholds)\n");
    return 0;
  }
  // The advisor must never suggest a mode the static semantics would
  // reject: with the source at hand, each MakePrivate proposal is
  // applied to a fresh AST and re-checked, and rejected ones are
  // withheld from the advice list (shown separately for transparency).
  std::vector<std::string> Advice, Withheld;
  for (const obs::Suggestion &S : Suggestions) {
    std::string Line = "  " + obs::renderSuggestion(S);
    if (SourcePath && S.A == obs::Suggestion::Action::MakePrivate) {
      std::string Detail;
      switch (validateMakePrivate(S, SourcePath, Detail)) {
      case Verdict::Ok:
        Advice.push_back(Line + "  [checker: ok]");
        break;
      case Verdict::Rejected:
        Withheld.push_back(Line + "  [" + Detail + "]");
        break;
      case Verdict::SiteNotFound:
      case Verdict::SourceError:
        Advice.push_back(Line + "  [checker: skipped — " + Detail + "]");
        break;
      }
    } else {
      Advice.push_back(std::move(Line));
    }
  }
  std::printf("\nadvice:%s\n", Advice.empty() ? " none survived the static"
                                                " checker" : "");
  for (const std::string &Line : Advice)
    std::printf("%s\n", Line.c_str());
  if (!Withheld.empty()) {
    std::printf("\nwithheld (static checker rejects the mode change):\n");
    for (const std::string &Line : Withheld)
      std::printf("%s\n", Line.c_str());
  }
  return 0;
}

int cmdExportChrome(int Argc, char **Argv) {
  if (Argc != 3 && Argc != 4) {
    std::fprintf(stderr,
                 "sharc-trace: export-chrome FILE.strc [OUT.json]\n");
    return 2;
  }
  obs::TraceData Data;
  if (!loadOrComplain(Argv[2], Data))
    return 1;
  std::string Json = obs::renderChromeTrace(Data);
  std::string Error;
  if (!obs::validateChromeJson(Json, Error)) {
    std::fprintf(stderr, "sharc-trace: internal error: emitted JSON "
                         "fails self-validation: %s\n",
                 Error.c_str());
    return 1;
  }
  Json.push_back('\n');
  if (Argc == 4) {
    std::FILE *F = std::fopen(Argv[3], "wb");
    bool Ok =
        F && std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
    if (F && std::fclose(F) != 0)
      Ok = false;
    if (!Ok) {
      std::fprintf(stderr, "sharc-trace: cannot write '%s'\n", Argv[3]);
      return 1;
    }
  } else {
    std::fputs(Json.c_str(), stdout);
  }
  return 0;
}

int cmdMetricsDelta(const char *PathA, const char *PathB) {
  obs::TraceData A, B;
  if (!loadOrComplain(PathA, A) || !loadOrComplain(PathB, B))
    return 1;
  if (A.Samples.empty() || B.Samples.empty()) {
    std::fprintf(stderr,
                 "sharc-trace: %s has no stats samples to diff\n",
                 A.Samples.empty() ? PathA : PathB);
    return 1;
  }
  std::fputs(
      obs::statsToJson(B.Samples.back() - A.Samples.back()).c_str(),
      stdout);
  return 0;
}

/// One bench row flattened to name -> metric map for comparison.
struct BenchRows {
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      Rows;

  const std::vector<std::pair<std::string, double>> *
  find(const std::string &Name) const {
    for (const auto &[RowName, Metrics] : Rows)
      if (RowName == Name)
        return &Metrics;
    return nullptr;
  }
};

bool loadBenchRows(const char *Path, BenchRows &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Path);
    return false;
  }
  obs::JsonValue Doc;
  std::string Error;
  if (!parseJson(Text, Doc, Error) ||
      !obs::validateBenchJson(Doc, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  for (const obs::JsonValue &Row : Doc.get("rows")->Arr) {
    std::vector<std::pair<std::string, double>> Metrics;
    for (const auto &[Key, Value] : Row.get("metrics")->Obj)
      Metrics.emplace_back(Key, Value.Num);
    Out.Rows.emplace_back(Row.get("name")->Str, std::move(Metrics));
  }
  return true;
}

/// The timing metric a row is compared on: cpu_ns for google-benchmark
/// harnesses, falling back to real_ns, then to the first metric whose
/// name suggests a duration.
const double *timingMetric(
    const std::vector<std::pair<std::string, double>> &Metrics,
    std::string &Name) {
  for (const char *Want : {"cpu_ns", "real_ns"})
    for (const auto &[Key, Value] : Metrics)
      if (Key == Want) {
        Name = Key;
        return &Value;
      }
  for (const auto &[Key, Value] : Metrics)
    if (Key.find("_ns") != std::string::npos ||
        Key.find("_sec") != std::string::npos ||
        Key.find("seconds") != std::string::npos) {
      Name = Key;
      return &Value;
    }
  return nullptr;
}

int cmdCheckOverhead(int Argc, char **Argv) {
  double MaxPct = 2.0;
  const char *PathA = nullptr, *PathB = nullptr;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--max-pct") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "sharc-trace: --max-pct needs a value\n");
        return 2;
      }
      char *End = nullptr;
      MaxPct = std::strtod(Argv[++I], &End);
      if (!End || *End != '\0' || MaxPct < 0) {
        std::fprintf(stderr,
                     "sharc-trace: --max-pct expects a number, got '%s'\n",
                     Argv[I]);
        return 2;
      }
    } else if (!PathA) {
      PathA = Argv[I];
    } else if (!PathB) {
      PathB = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: check-overhead takes two files\n");
      return 2;
    }
  }
  if (!PathA || !PathB) {
    std::fprintf(
        stderr,
        "sharc-trace: check-overhead BASE.json CAND.json [--max-pct P]\n");
    return 2;
  }
  BenchRows Base, Cand;
  if (!loadBenchRows(PathA, Base) || !loadBenchRows(PathB, Cand))
    return 1;

  int Status = 0;
  unsigned Compared = 0;
  for (const auto &[Name, BaseMetrics] : Base.Rows) {
    const auto *CandMetrics = Cand.find(Name);
    if (!CandMetrics)
      continue;
    std::string MetricName;
    const double *BaseVal = timingMetric(BaseMetrics, MetricName);
    if (!BaseVal)
      continue;
    const double *CandVal = nullptr;
    for (const auto &[Key, Value] : *CandMetrics)
      if (Key == MetricName)
        CandVal = &Value;
    if (!CandVal || *BaseVal <= 0)
      continue;
    ++Compared;
    double Pct = 100.0 * (*CandVal - *BaseVal) / *BaseVal;
    if (Pct > MaxPct) {
      std::printf("FAIL %-32s %s %.1f -> %.1f (%+.2f%% > %.2f%%)\n",
                  Name.c_str(), MetricName.c_str(), *BaseVal, *CandVal,
                  Pct, MaxPct);
      Status = 1;
    } else {
      std::printf("ok   %-32s %s %.1f -> %.1f (%+.2f%%)\n", Name.c_str(),
                  MetricName.c_str(), *BaseVal, *CandVal, Pct);
    }
  }
  if (Compared == 0) {
    std::fprintf(stderr,
                 "sharc-trace: no comparable rows between '%s' and '%s'\n",
                 PathA, PathB);
    return 1;
  }
  return Status;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(stderr);
    return 2;
  }
  std::string Cmd = Argv[1];
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    printUsage(stdout);
    return 0;
  }

  if (Cmd == "metrics" && Argc >= 3 && std::strcmp(Argv[2], "--delta") == 0) {
    if (Argc != 5) {
      std::fprintf(stderr,
                   "sharc-trace: metrics --delta takes two trace files\n");
      return 2;
    }
    return cmdMetricsDelta(Argv[3], Argv[4]);
  }

  if (Cmd == "summarize" || Cmd == "dump" || Cmd == "schedule" ||
      Cmd == "metrics") {
    if (Argc != 3) {
      std::fprintf(stderr, "sharc-trace: %s takes exactly one trace file\n",
                   Cmd.c_str());
      return 2;
    }
    obs::TraceData Data;
    if (!loadOrComplain(Argv[2], Data))
      return 1;
    if (Cmd == "summarize") {
      obs::TraceSummary Sum = obs::summarize(Data);
      std::fputs(obs::renderSummary(Sum, Data).c_str(), stdout);
    } else if (Cmd == "dump") {
      std::fputs(obs::renderDump(Data).c_str(), stdout);
    } else if (Cmd == "schedule") {
      std::fputs(obs::renderSchedule(Data).c_str(), stdout);
    } else { // metrics
      if (Data.Samples.empty()) {
        std::fprintf(stderr,
                     "sharc-trace: %s has no stats samples to export\n",
                     Argv[2]);
        return 1;
      }
      std::fputs(obs::statsToJson(Data.Samples.back()).c_str(), stdout);
    }
    return 0;
  }

  if (Cmd == "profile")
    return cmdProfile(Argc, Argv);
  if (Cmd == "export-chrome")
    return cmdExportChrome(Argc, Argv);
  if (Cmd == "check-overhead")
    return cmdCheckOverhead(Argc, Argv);

  if (Cmd == "check-bench")
    return checkJsonFiles(Argc, Argv, 2, obs::validateBenchJson,
                          "check-bench");
  if (Cmd == "check-metrics")
    return checkJsonFiles(Argc, Argv, 2, obs::validateMetricsJson,
                          "check-metrics");

  std::fprintf(stderr, "sharc-trace: unknown command '%s'\n", Cmd.c_str());
  printUsage(stderr);
  return 2;
}
