//===-- obs/TraceTool.cpp - sharc-trace CLI ---------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sharc-trace` — offline analysis of .strc traces recorded by
/// `sharcc --trace-out` (or any obs::TraceWriter user), plus schema
/// validation for the JSON the bench harnesses and `--metrics-out`
/// emit. The `profile` subcommand is the paper-§6 tuning loop: ranked
/// per-site check costs, lock contention, and annotation advice that —
/// when the MiniC source is available — is re-checked against the
/// static semantics before being shown. Exit codes follow sharcc's
/// contract: 0 success, 1 a check failed or the input is malformed,
/// 2 usage errors.
///
//===----------------------------------------------------------------------===//

#include "analysis/SharingAnalysis.h"
#include "checker/Checker.h"
#include "minic/ExprTyper.h"
#include "minic/Parser.h"
#include "obs/Causal.h"
#include "obs/ChromeTrace.h"
#include "obs/Json.h"
#include "obs/MetricsJson.h"
#include "obs/Profile.h"
#include "obs/PromText.h"
#include "obs/ReportHtml.h"
#include "obs/Summary.h"
#include "obs/TraceFile.h"
#include "obs/TraceTail.h"
#include "rt/LiveStats.h"
#include "rt/StatsServer.h"
#include "support/Diagnostics.h"
#include "support/SourceManager.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <dirent.h>
#include <memory>
#include <string>
#include <thread>
#include <vector>

using namespace sharc;

namespace {

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: sharc-trace <command> [args]\n"
      "\n"
      "trace analysis:\n"
      "  summarize FILE.strc    totals, per-thread histogram, lock\n"
      "                         contention, hottest granules, conflict\n"
      "                         timeline\n"
      "  dump FILE.strc         every record, one per line\n"
      "  schedule FILE.strc     re-emit as the fuzzer's replay schedule\n"
      "  metrics FILE.strc      final stats sample as sharc-stats-v1 JSON\n"
      "  metrics --delta A.strc B.strc\n"
      "                         B's final sample minus A's (saturating),\n"
      "                         for before/after annotation tuning\n"
      "  profile FILE.strc [--source FILE.mc]\n"
      "                         ranked per-site check costs, lock\n"
      "                         contention, and annotation advice from a\n"
      "                         profiling run (sharcc --profile); with\n"
      "                         --source every suggestion is re-checked\n"
      "                         against the static checker\n"
      "  export-chrome FILE.strc [OUT.json]\n"
      "                         Chrome trace-event JSON for\n"
      "                         chrome://tracing / ui.perfetto.dev\n"
      "                         (stdout when OUT is omitted)\n"
      "\n"
      "causal analysis (sharc-live):\n"
      "  tail FILE.strc [--poll-ms N] [--idle-ms N] [--quiet]\n"
      "                         follow a growing (or crash-truncated)\n"
      "                         trace, decoding records as they land\n"
      "  timeline FILE.strc     per-thread run/blocked timeline with\n"
      "                         blocked time attributed to lock holders\n"
      "  critical-path FILE.strc\n"
      "                         the longest dependency chain bounding\n"
      "                         the run, with per-edge cost\n"
      "  report FILE.strc [OUT.html]\n"
      "                         one self-contained HTML file: timeline,\n"
      "                         critical path, hot sites, violations\n"
      "                         (stdout when OUT is omitted)\n"
      "  requests FILE.strc [--tail P]\n"
      "                         request-span anatomy of a sharc-serve\n"
      "                         --trace-out run: per-stage latency\n"
      "                         percentiles, then the slowest P%% of\n"
      "                         requests (default 1) attributed to\n"
      "                         concrete causes — lock wait with holder,\n"
      "                         queue backlog, check cost\n"
      "\n"
      "live endpoint (sharcc --stats-addr / SHARC_STATS_ADDR):\n"
      "  scrape HOST:PORT [PATH]\n"
      "                         HTTP GET against a live stats endpoint\n"
      "                         (default PATH /metrics); no curl needed\n"
      "  check-prom FILE [FILE2]\n"
      "                         strictly validate Prometheus exposition\n"
      "                         text; with two scrapes, also check\n"
      "                         counter monotonicity\n"
      "  check-live PROM.txt FILE.strc\n"
      "                         assert a scrape's counters exactly match\n"
      "                         the trace's final stats sample\n"
      "\n"
      "schema checks and perf trajectory:\n"
      "  check-bench FILE...    validate sharc-bench-v1 JSON reports\n"
      "  check-metrics FILE...  validate sharc-metrics-v1 JSON reports\n"
      "  check-overhead A.json B.json [--max-pct P]\n"
      "                         compare two sharc-bench-v1 reports row by\n"
      "                         row; fail if any shared row regressed by\n"
      "                         more than P%% (default 2)\n"
      "  compare-runs DIR [--max-pct P]\n"
      "                         per-benchmark trend table over a\n"
      "                         directory of archived sharc-bench-v1\n"
      "                         runs (bench/history/); each row is\n"
      "                         trended on its timing metric and every\n"
      "                         latency percentile (p50/p99/p999...);\n"
      "                         fail — naming the regressed metric\n"
      "                         key(s) — when the newest run regressed\n"
      "                         the previous one by more than P%%\n"
      "                         (default 10)\n"
      "  --help                 print this message\n"
      "\n"
      "every command also accepts --help; exit codes: 0 success,\n"
      "1 malformed input or failed check, 2 usage\n");
}

/// Per-subcommand usage lines (the CLI contract: every subcommand
/// supports --help and exits 0).
struct SubcommandHelp {
  const char *Name;
  const char *Usage;
};

constexpr SubcommandHelp SubcommandHelps[] = {
    {"summarize", "sharc-trace summarize FILE.strc"},
    {"dump", "sharc-trace dump FILE.strc"},
    {"schedule", "sharc-trace schedule FILE.strc"},
    {"metrics", "sharc-trace metrics FILE.strc\n"
                "sharc-trace metrics --delta A.strc B.strc"},
    {"profile", "sharc-trace profile FILE.strc [--source FILE.mc]"},
    {"export-chrome", "sharc-trace export-chrome FILE.strc [OUT.json]"},
    {"tail",
     "sharc-trace tail FILE.strc [--poll-ms N] [--idle-ms N] [--quiet]\n"
     "  follows FILE.strc, decoding records as they are appended;\n"
     "  waits up to the idle budget (default 2000 ms) for the file to\n"
     "  appear or grow, polling every N ms (default 100). Exits 0 on a\n"
     "  complete trace, 1 when the stream ends truncated or corrupt."},
    {"timeline", "sharc-trace timeline FILE.strc"},
    {"critical-path", "sharc-trace critical-path FILE.strc"},
    {"report", "sharc-trace report FILE.strc [OUT.html]"},
    {"requests",
     "sharc-trace requests FILE.strc [--tail P]\n"
     "  reconstructs every request's span tree from a v4 trace, prints\n"
     "  per-stage latency percentiles, and attributes the slowest P%\n"
     "  (default 1) of requests to their dominant stage and a concrete\n"
     "  cause (lock wait with the holding request and lock site, ingress\n"
     "  queue backlog, logger backlog, or sharing-check cost)"},
    {"scrape", "sharc-trace scrape HOST:PORT [PATH]   (default /metrics)"},
    {"check-prom", "sharc-trace check-prom FILE [FILE2]"},
    {"check-live", "sharc-trace check-live PROM.txt FILE.strc"},
    {"check-bench", "sharc-trace check-bench FILE..."},
    {"check-metrics", "sharc-trace check-metrics FILE..."},
    {"check-overhead",
     "sharc-trace check-overhead BASE.json CAND.json [--max-pct P]"},
    {"compare-runs",
     "sharc-trace compare-runs DIR [--max-pct P]\n"
     "  trends each row's timing metric and latency percentiles over the\n"
     "  archived runs; a FAIL names every bench/row:metric that regressed"},
};

bool loadOrComplain(const char *Path, obs::TraceData &Data) {
  std::string Error;
  if (!obs::loadTraceFile(Path, Data, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  return true;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

int checkJsonFiles(int Argc, char **Argv, int First,
                   bool (*Validate)(const obs::JsonValue &, std::string &),
                   const char *What) {
  if (First >= Argc) {
    std::fprintf(stderr, "sharc-trace: %s needs at least one file\n", What);
    return 2;
  }
  int Status = 0;
  for (int I = First; I < Argc; ++I) {
    std::string Text;
    if (!readFile(Argv[I], Text)) {
      std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Argv[I]);
      Status = 1;
      continue;
    }
    obs::JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, Error) || !Validate(Doc, Error)) {
      std::fprintf(stderr, "sharc-trace: %s: %s\n", Argv[I], Error.c_str());
      Status = 1;
      continue;
    }
    std::printf("ok: %s\n", Argv[I]);
  }
  return Status;
}

//===----------------------------------------------------------------------===//
// Advisor validation: re-run the static pipeline with a suggestion applied
//===----------------------------------------------------------------------===//

/// Visits every expression (including subexpressions) reachable from the
/// program's function bodies. The AST has no generic walker — the only
/// existing traversal is ASTContext::forEachType — so the advisor brings
/// its own.
template <typename FnT> void forEachExpr(minic::Expr *E, FnT &Fn) {
  using namespace minic;
  if (!E)
    return;
  Fn(E);
  switch (E->Kind) {
  case ExprKind::Unary:
    forEachExpr(cast<UnaryExpr>(E)->Sub, Fn);
    break;
  case ExprKind::Binary:
    forEachExpr(cast<BinaryExpr>(E)->Lhs, Fn);
    forEachExpr(cast<BinaryExpr>(E)->Rhs, Fn);
    break;
  case ExprKind::Assign:
    forEachExpr(cast<AssignExpr>(E)->Lhs, Fn);
    forEachExpr(cast<AssignExpr>(E)->Rhs, Fn);
    break;
  case ExprKind::Call: {
    auto *Call = cast<CallExpr>(E);
    forEachExpr(Call->Callee, Fn);
    for (Expr *Arg : Call->Args)
      forEachExpr(Arg, Fn);
    break;
  }
  case ExprKind::Member:
    forEachExpr(cast<MemberExpr>(E)->Base, Fn);
    break;
  case ExprKind::Index:
    forEachExpr(cast<IndexExpr>(E)->Base, Fn);
    forEachExpr(cast<IndexExpr>(E)->Idx, Fn);
    break;
  case ExprKind::Scast:
    forEachExpr(cast<ScastExpr>(E)->Src, Fn);
    break;
  case ExprKind::New:
    forEachExpr(cast<NewExpr>(E)->Count, Fn);
    break;
  default:
    break;
  }
}

template <typename FnT> void forEachExprInStmt(minic::Stmt *S, FnT &Fn) {
  using namespace minic;
  if (!S)
    return;
  switch (S->Kind) {
  case StmtKind::Block:
    for (Stmt *Sub : cast<BlockStmt>(S)->Body)
      forEachExprInStmt(Sub, Fn);
    break;
  case StmtKind::If: {
    auto *If = cast<IfStmt>(S);
    forEachExpr(If->Cond, Fn);
    forEachExprInStmt(If->Then, Fn);
    forEachExprInStmt(If->Else, Fn);
    break;
  }
  case StmtKind::While: {
    auto *While = cast<WhileStmt>(S);
    forEachExpr(While->Cond, Fn);
    forEachExprInStmt(While->Body, Fn);
    break;
  }
  case StmtKind::For: {
    auto *For = cast<ForStmt>(S);
    forEachExprInStmt(For->Init, Fn);
    forEachExpr(For->Cond, Fn);
    forEachExpr(For->Step, Fn);
    forEachExprInStmt(For->Body, Fn);
    break;
  }
  case StmtKind::Return:
    forEachExpr(cast<ReturnStmt>(S)->Value, Fn);
    break;
  case StmtKind::ExprStmt:
    forEachExpr(cast<ExprStmt>(S)->E, Fn);
    break;
  case StmtKind::DeclStmt:
    forEachExpr(cast<DeclStmt>(S)->Init, Fn);
    break;
  case StmtKind::Spawn:
    forEachExpr(cast<SpawnStmt>(S)->Arg, Fn);
    break;
  case StmtKind::Free:
    forEachExpr(cast<FreeStmt>(S)->Ptr, Fn);
    break;
  default:
    break;
  }
}

enum class Verdict {
  Ok,           ///< applied annotation passes analysis + checker
  Rejected,     ///< static semantics reject the proposed mode
  SiteNotFound, ///< no expression matches the profile's (line, lvalue)
  SourceError,  ///< source missing or does not parse/type on its own
};

/// Statically validates one MakePrivate suggestion: re-parse the source,
/// locate the profiled expression by line and spelling, stamp `private`
/// on the type position the expression denotes (expression types ARE the
/// declaration-position TypeNodes, see ExprTyper.h), and re-run the
/// sharing analysis and checker. Each call works on a fresh AST so
/// validations cannot contaminate each other.
Verdict validateMakePrivate(const obs::Suggestion &S, const char *SourcePath,
                            std::string &Detail) {
  SourceManager SM;
  std::string Error;
  FileId File = SM.addFile(SourcePath, Error);
  if (File == InvalidFileId) {
    Detail = Error;
    return Verdict::SourceError;
  }
  DiagnosticEngine Diags(SM);
  minic::Parser Parser(SM, File, Diags);
  auto Prog = Parser.parseProgram();
  if (Diags.hasErrors()) {
    Detail = "source does not parse";
    return Verdict::SourceError;
  }
  minic::ExprTyper Typer(*Prog, Diags);
  if (!Typer.run()) {
    Detail = "source does not type-check";
    return Verdict::SourceError;
  }

  // Every expression on the suggested line whose spelling matches the
  // profiled l-value denotes the same cell; annotate them all (their
  // ExprTypes usually alias one declaration node anyway).
  std::vector<minic::TypeNode *> Positions;
  auto Match = [&](minic::Expr *E) {
    if (E->Loc.Line == S.Line && E->ExprType && E->spelling() == S.LValue)
      Positions.push_back(E->ExprType);
  };
  for (minic::FuncDecl *F : Prog->Funcs)
    forEachExprInStmt(F->Body, Match);
  if (Positions.empty()) {
    Detail = "site not found in source";
    return Verdict::SiteNotFound;
  }
  for (minic::TypeNode *T : Positions)
    T->Q = {minic::Mode::Private, nullptr, /*Explicit=*/true};

  analysis::SharingAnalysis Analysis(*Prog, Diags);
  if (!Analysis.run()) {
    Detail = "sharing analysis rejects private here";
    return Verdict::Rejected;
  }
  checker::Checker Check(*Prog, Diags);
  if (!Check.run()) {
    Detail = "checker rejects private here";
    return Verdict::Rejected;
  }
  return Verdict::Ok;
}

int cmdProfile(int Argc, char **Argv) {
  const char *TracePath = nullptr;
  const char *SourcePath = nullptr;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--source") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "sharc-trace: --source needs a file\n");
        return 2;
      }
      SourcePath = Argv[++I];
    } else if (!TracePath) {
      TracePath = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: profile takes one trace file\n");
      return 2;
    }
  }
  if (!TracePath) {
    std::fprintf(stderr,
                 "sharc-trace: profile FILE.strc [--source FILE.mc]\n");
    return 2;
  }
  obs::TraceData Data;
  if (!loadOrComplain(TracePath, Data))
    return 1;
  obs::ProfileReport R = obs::buildProfile(Data);
  std::fputs(obs::renderProfile(R, Data).c_str(), stdout);

  std::vector<obs::Suggestion> Suggestions = obs::advise(R);
  if (Suggestions.empty()) {
    std::printf("\nadvice: none (no site clears the suggestion "
                "thresholds)\n");
    return 0;
  }
  // The advisor must never suggest a mode the static semantics would
  // reject: with the source at hand, each MakePrivate proposal is
  // applied to a fresh AST and re-checked, and rejected ones are
  // withheld from the advice list (shown separately for transparency).
  std::vector<std::string> Advice, Withheld;
  for (const obs::Suggestion &S : Suggestions) {
    std::string Line = "  " + obs::renderSuggestion(S);
    if (SourcePath && S.A == obs::Suggestion::Action::MakePrivate) {
      std::string Detail;
      switch (validateMakePrivate(S, SourcePath, Detail)) {
      case Verdict::Ok:
        Advice.push_back(Line + "  [checker: ok]");
        break;
      case Verdict::Rejected:
        Withheld.push_back(Line + "  [" + Detail + "]");
        break;
      case Verdict::SiteNotFound:
      case Verdict::SourceError:
        Advice.push_back(Line + "  [checker: skipped — " + Detail + "]");
        break;
      }
    } else {
      Advice.push_back(std::move(Line));
    }
  }
  std::printf("\nadvice:%s\n", Advice.empty() ? " none survived the static"
                                                " checker" : "");
  for (const std::string &Line : Advice)
    std::printf("%s\n", Line.c_str());
  if (!Withheld.empty()) {
    std::printf("\nwithheld (static checker rejects the mode change):\n");
    for (const std::string &Line : Withheld)
      std::printf("%s\n", Line.c_str());
  }
  return 0;
}

int cmdExportChrome(int Argc, char **Argv) {
  if (Argc != 3 && Argc != 4) {
    std::fprintf(stderr,
                 "sharc-trace: export-chrome FILE.strc [OUT.json]\n");
    return 2;
  }
  obs::TraceData Data;
  if (!loadOrComplain(Argv[2], Data))
    return 1;
  std::string Json = obs::renderChromeTrace(Data);
  std::string Error;
  if (!obs::validateChromeJson(Json, Error)) {
    std::fprintf(stderr, "sharc-trace: internal error: emitted JSON "
                         "fails self-validation: %s\n",
                 Error.c_str());
    return 1;
  }
  Json.push_back('\n');
  if (Argc == 4) {
    std::FILE *F = std::fopen(Argv[3], "wb");
    bool Ok =
        F && std::fwrite(Json.data(), 1, Json.size(), F) == Json.size();
    if (F && std::fclose(F) != 0)
      Ok = false;
    if (!Ok) {
      std::fprintf(stderr, "sharc-trace: cannot write '%s'\n", Argv[3]);
      return 1;
    }
  } else {
    std::fputs(Json.c_str(), stdout);
  }
  return 0;
}

int cmdMetricsDelta(const char *PathA, const char *PathB) {
  obs::TraceData A, B;
  if (!loadOrComplain(PathA, A) || !loadOrComplain(PathB, B))
    return 1;
  if (A.Samples.empty() || B.Samples.empty()) {
    std::fprintf(stderr,
                 "sharc-trace: %s has no stats samples to diff\n",
                 A.Samples.empty() ? PathA : PathB);
    return 1;
  }
  std::fputs(
      obs::statsToJson(B.Samples.back() - A.Samples.back()).c_str(),
      stdout);
  return 0;
}

/// One bench row flattened to name -> metric map for comparison.
struct BenchRows {
  std::vector<std::pair<std::string,
                        std::vector<std::pair<std::string, double>>>>
      Rows;

  const std::vector<std::pair<std::string, double>> *
  find(const std::string &Name) const {
    for (const auto &[RowName, Metrics] : Rows)
      if (RowName == Name)
        return &Metrics;
    return nullptr;
  }
};

bool loadBenchRows(const char *Path, BenchRows &Out) {
  std::string Text;
  if (!readFile(Path, Text)) {
    std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Path);
    return false;
  }
  obs::JsonValue Doc;
  std::string Error;
  if (!parseJson(Text, Doc, Error) ||
      !obs::validateBenchJson(Doc, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  for (const obs::JsonValue &Row : Doc.get("rows")->Arr) {
    std::vector<std::pair<std::string, double>> Metrics;
    for (const auto &[Key, Value] : Row.get("metrics")->Obj)
      Metrics.emplace_back(Key, Value.Num);
    Out.Rows.emplace_back(Row.get("name")->Str, std::move(Metrics));
  }
  return true;
}

/// The timing metric a row is compared on: cpu_ns for google-benchmark
/// harnesses, falling back to real_ns, then to the first metric whose
/// name suggests a duration.
const double *timingMetric(
    const std::vector<std::pair<std::string, double>> &Metrics,
    std::string &Name) {
  for (const char *Want : {"cpu_ns", "real_ns"})
    for (const auto &[Key, Value] : Metrics)
      if (Key == Want) {
        Name = Key;
        return &Value;
      }
  for (const auto &[Key, Value] : Metrics)
    if (Key.find("_ns") != std::string::npos ||
        Key.find("_sec") != std::string::npos ||
        Key.find("seconds") != std::string::npos) {
      Name = Key;
      return &Value;
    }
  return nullptr;
}

/// True for latency-percentile metric keys: 'p' followed by digits, then
/// end-of-name or a unit suffix — p50, p99_us, p999_us. compare-runs
/// gates these alongside the timing metric so tail-latency regressions
/// (which leave wall time untouched in an open-loop run) still fail.
bool isPercentileMetric(const std::string &Key) {
  if (Key.size() < 2 || Key[0] != 'p')
    return false;
  size_t I = 1;
  while (I < Key.size() && Key[I] >= '0' && Key[I] <= '9')
    ++I;
  return I > 1 && (I == Key.size() || Key[I] == '_');
}

int cmdCheckOverhead(int Argc, char **Argv) {
  double MaxPct = 2.0;
  const char *PathA = nullptr, *PathB = nullptr;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--max-pct") == 0) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "sharc-trace: --max-pct needs a value\n");
        return 2;
      }
      char *End = nullptr;
      MaxPct = std::strtod(Argv[++I], &End);
      if (!End || *End != '\0' || MaxPct < 0) {
        std::fprintf(stderr,
                     "sharc-trace: --max-pct expects a number, got '%s'\n",
                     Argv[I]);
        return 2;
      }
    } else if (!PathA) {
      PathA = Argv[I];
    } else if (!PathB) {
      PathB = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: check-overhead takes two files\n");
      return 2;
    }
  }
  if (!PathA || !PathB) {
    std::fprintf(
        stderr,
        "sharc-trace: check-overhead BASE.json CAND.json [--max-pct P]\n");
    return 2;
  }
  BenchRows Base, Cand;
  if (!loadBenchRows(PathA, Base) || !loadBenchRows(PathB, Cand))
    return 1;

  int Status = 0;
  unsigned Compared = 0;
  for (const auto &[Name, BaseMetrics] : Base.Rows) {
    const auto *CandMetrics = Cand.find(Name);
    if (!CandMetrics)
      continue;
    std::string MetricName;
    const double *BaseVal = timingMetric(BaseMetrics, MetricName);
    if (!BaseVal)
      continue;
    const double *CandVal = nullptr;
    for (const auto &[Key, Value] : *CandMetrics)
      if (Key == MetricName)
        CandVal = &Value;
    if (!CandVal || *BaseVal <= 0)
      continue;
    ++Compared;
    double Pct = 100.0 * (*CandVal - *BaseVal) / *BaseVal;
    if (Pct > MaxPct) {
      std::printf("FAIL %-32s %s %.1f -> %.1f (%+.2f%% > %.2f%%)\n",
                  Name.c_str(), MetricName.c_str(), *BaseVal, *CandVal,
                  Pct, MaxPct);
      Status = 1;
    } else {
      std::printf("ok   %-32s %s %.1f -> %.1f (%+.2f%%)\n", Name.c_str(),
                  MetricName.c_str(), *BaseVal, *CandVal, Pct);
    }
  }
  if (Compared == 0) {
    std::fprintf(stderr,
                 "sharc-trace: no comparable rows between '%s' and '%s'\n",
                 PathA, PathB);
    return 1;
  }
  return Status;
}

//===----------------------------------------------------------------------===//
// sharc-live: tail / timeline / critical-path / report
//===----------------------------------------------------------------------===//

/// One decoded event in the dump line format (kept in sync with
/// renderDump so `tail` output lines match `dump` output lines).
void printEventLine(const obs::Event &Ev) {
  std::printf("%s tid=%u addr=%llu", obs::eventKindName(Ev.K), Ev.Tid,
              static_cast<unsigned long long>(Ev.Addr));
  if (Ev.Value)
    std::printf(" value=%lld", static_cast<long long>(Ev.Value));
  if (Ev.Extra) {
    if (Ev.K == obs::EventKind::Conflict)
      std::printf(" kind=%s line=%u prev-line=%u",
                  obs::conflictKindName(obs::conflictKindOf(Ev.Extra)),
                  obs::conflictWhoLine(Ev.Extra),
                  obs::conflictLastLine(Ev.Extra));
    else
      std::printf(" extra=%llu", static_cast<unsigned long long>(Ev.Extra));
  }
  std::printf("\n");
}

/// Parses "--flag N" / "--flag=N" unsigned arguments for the tail and
/// compare-runs option loops.
bool numArg(const char *Flag, int Argc, char **Argv, int &I, uint64_t &Out) {
  size_t Len = std::strlen(Flag);
  if (std::strncmp(Argv[I], Flag, Len) != 0)
    return false;
  const char *Value = nullptr;
  if (Argv[I][Len] == '=')
    Value = Argv[I] + Len + 1;
  else if (Argv[I][Len] == '\0' && I + 1 < Argc)
    Value = Argv[++I];
  else if (Argv[I][Len] != '\0')
    return false;
  if (!Value || !*Value) {
    std::fprintf(stderr, "sharc-trace: %s needs a value\n", Flag);
    std::exit(2);
  }
  char *End = nullptr;
  Out = std::strtoull(Value, &End, 10);
  if (!End || *End != '\0') {
    std::fprintf(stderr, "sharc-trace: %s expects a number, got '%s'\n",
                 Flag, Value);
    std::exit(2);
  }
  return true;
}

int cmdTail(int Argc, char **Argv) {
  const char *Path = nullptr;
  uint64_t PollMs = 100, IdleMs = 2000;
  bool Quiet = false;
  for (int I = 2; I < Argc; ++I) {
    uint64_t V;
    if (numArg("--poll-ms", Argc, Argv, I, V)) {
      PollMs = V ? V : 1;
    } else if (numArg("--idle-ms", Argc, Argv, I, V)) {
      IdleMs = V;
    } else if (std::strcmp(Argv[I], "--quiet") == 0) {
      Quiet = true;
    } else if (!Path) {
      Path = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: tail takes one trace file\n");
      return 2;
    }
  }
  if (!Path) {
    std::fprintf(stderr, "sharc-trace: tail FILE.strc [--poll-ms N] "
                         "[--idle-ms N] [--quiet]\n");
    return 2;
  }

  auto Sleep = [&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(PollMs));
  };

  // The file may not exist yet (the producer has not flushed); burn the
  // idle budget waiting for it to appear.
  std::FILE *F = nullptr;
  uint64_t Idle = 0;
  while (!(F = std::fopen(Path, "rb"))) {
    if (Idle >= IdleMs) {
      std::fprintf(stderr, "sharc-trace: cannot open '%s'\n", Path);
      return 1;
    }
    Sleep();
    Idle += PollMs;
  }

  obs::TailParser P;
  size_t PrintedEvents = 0, PrintedSamples = 0;
  auto drainPrints = [&] {
    if (Quiet)
      return;
    const obs::TraceData &D = P.data();
    while (PrintedEvents < D.Events.size() ||
           PrintedSamples < D.Samples.size()) {
      if (PrintedSamples < D.Samples.size() &&
          D.SamplePos[PrintedSamples] <= PrintedEvents) {
        const rt::StatsSnapshot &S = D.Samples[PrintedSamples];
        std::printf("stats-sample accesses=%llu conflicts=%llu "
                    "metadata-bytes=%llu\n",
                    static_cast<unsigned long long>(S.dynamicAccesses()),
                    static_cast<unsigned long long>(S.totalConflicts()),
                    static_cast<unsigned long long>(S.metadataBytes()));
        ++PrintedSamples;
        continue;
      }
      if (PrintedEvents < D.Events.size()) {
        printEventLine(D.Events[PrintedEvents]);
        ++PrintedEvents;
        continue;
      }
      break;
    }
    std::fflush(stdout);
  };

  Idle = 0;
  char Chunk[1 << 16];
  while (true) {
    size_t N = std::fread(Chunk, 1, sizeof(Chunk), F);
    if (N > 0) {
      Idle = 0;
      P.push({Chunk, N});
      drainPrints();
      if (P.done() || P.corrupt())
        break;
      continue;
    }
    if (std::ferror(F) != 0) {
      std::fprintf(stderr, "sharc-trace: read error on '%s'\n", Path);
      std::fclose(F);
      return 1;
    }
    if (P.done() || P.corrupt() || Idle >= IdleMs)
      break;
    std::clearerr(F); // EOF for now; the file may still grow
    Sleep();
    Idle += PollMs;
  }
  std::fclose(F);

  const obs::TraceData &D = P.data();
  if (P.done()) {
    std::printf("tail: complete trace: %llu records (%zu events, %zu "
                "stats samples)\n",
                static_cast<unsigned long long>(P.recordCount()),
                D.Events.size(), D.Samples.size());
    if (D.AbnormalEnd)
      std::printf("tail: abnormal end (signal %u); the producer died "
                  "mid-run but flushed its trace\n",
                  D.AbnormalSignal);
    return 0;
  }
  std::fprintf(stderr, "sharc-trace: %s: %s\n", Path,
               P.diagnosis().c_str());
  std::fprintf(stderr,
               "tail: stream ended after %llu records (%zu events); the "
               "timeline/report commands accept this prefix\n",
               static_cast<unsigned long long>(P.recordCount()),
               D.Events.size());
  return 1;
}

/// Loads a trace for causal analysis. Unlike loadOrComplain, a
/// truncated (e.g. torn-write) trace is not fatal: the decodable prefix
/// is analysed, with \p Note carrying the truncation diagnosis. Only
/// structural corruption (or an unreadable header) fails.
bool loadForCausal(const char *Path, obs::TraceData &Data,
                   std::string &Note) {
  std::string Error;
  if (obs::loadTraceFile(Path, Data, Error))
    return true;
  std::string Bytes;
  if (!readFile(Path, Bytes)) {
    std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Path);
    return false;
  }
  obs::TailParser P;
  P.push(Bytes);
  if (P.corrupt() || P.state() == obs::TailParser::State::Header) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  Data = P.data();
  Note = P.diagnosis() + "; analyzing the " +
         std::to_string(P.recordCount()) + " decoded records";
  return true;
}

int cmdTimeline(int Argc, char **Argv, bool WantCriticalPath) {
  if (Argc != 3) {
    std::fprintf(stderr, "sharc-trace: %s takes exactly one trace file\n",
                 Argv[1]);
    return 2;
  }
  obs::TraceData Data;
  std::string Note;
  if (!loadForCausal(Argv[2], Data, Note))
    return 1;
  if (!Note.empty())
    std::printf("note: %s\n", Note.c_str());
  obs::CausalReport R = obs::buildCausal(Data);
  if (WantCriticalPath) {
    obs::CriticalPath P = obs::criticalPath(R, Data);
    std::fputs(obs::renderCriticalPath(P, Data).c_str(), stdout);
  } else {
    std::fputs(obs::renderTimeline(R, Data).c_str(), stdout);
  }
  return 0;
}

int cmdReport(int Argc, char **Argv) {
  if (Argc != 3 && Argc != 4) {
    std::fprintf(stderr, "sharc-trace: report FILE.strc [OUT.html]\n");
    return 2;
  }
  obs::TraceData Data;
  std::string Note;
  if (!loadForCausal(Argv[2], Data, Note))
    return 1;
  obs::CausalReport R = obs::buildCausal(Data);
  std::string Html = obs::renderHtmlReport(Data, R, Argv[2], Note);
  std::string Error;
  if (!obs::validateHtmlReport(Html, Error)) {
    std::fprintf(stderr, "sharc-trace: internal error: emitted HTML "
                         "fails self-validation: %s\n",
                 Error.c_str());
    return 1;
  }
  if (Argc == 4) {
    std::FILE *F = std::fopen(Argv[3], "wb");
    bool Ok =
        F && std::fwrite(Html.data(), 1, Html.size(), F) == Html.size();
    if (F && std::fclose(F) != 0)
      Ok = false;
    if (!Ok) {
      std::fprintf(stderr, "sharc-trace: cannot write '%s'\n", Argv[3]);
      return 1;
    }
  } else {
    std::fputs(Html.c_str(), stdout);
  }
  return 0;
}

int cmdRequests(int Argc, char **Argv) {
  double TailPct = 1.0;
  const char *Path = nullptr;
  bool Bad = false;
  for (int I = 2; I < Argc && !Bad; ++I) {
    if (std::strcmp(Argv[I], "--tail") == 0 ||
        std::strncmp(Argv[I], "--tail=", 7) == 0) {
      const char *Value = Argv[I][6] == '=' ? Argv[I] + 7
                          : I + 1 < Argc    ? Argv[++I]
                                            : nullptr;
      char *End = nullptr;
      TailPct = Value ? std::strtod(Value, &End) : 0;
      if (!Value || !End || *End != '\0' || TailPct <= 0 || TailPct > 100) {
        std::fprintf(stderr,
                     "sharc-trace: --tail expects a percentage in (0,100]\n");
        return 2;
      }
    } else if (!Path && Argv[I][0] != '-') {
      Path = Argv[I];
    } else {
      Bad = true;
    }
  }
  if (Bad || !Path) {
    std::fprintf(stderr, "sharc-trace: requests FILE.strc [--tail P]\n");
    return 2;
  }
  obs::TraceData Data;
  std::string Note;
  if (!loadForCausal(Path, Data, Note))
    return 1;
  if (!Note.empty())
    std::printf("note: %s\n", Note.c_str());
  obs::RequestsReport R = obs::buildRequests(Data);
  if (R.Requests.empty()) {
    std::fprintf(stderr,
                 "sharc-trace: %s carries no span records — record one "
                 "with sharc-serve --trace-out (trace format v4)\n",
                 Path);
    return 1;
  }
  std::fputs(obs::renderRequests(R, Data, TailPct).c_str(), stdout);
  return 0;
}

//===----------------------------------------------------------------------===//
// Live endpoint: scrape / check-prom / check-live
//===----------------------------------------------------------------------===//

int cmdScrape(int Argc, char **Argv) {
  if (Argc != 3 && Argc != 4) {
    std::fprintf(stderr, "sharc-trace: scrape HOST:PORT [PATH]\n");
    return 2;
  }
  std::string Host, Error;
  uint16_t Port = 0;
  if (!live::splitHostPort(Argv[2], Host, Port, Error)) {
    std::fprintf(stderr, "sharc-trace: %s\n", Error.c_str());
    return 2;
  }
  std::string Body;
  if (!live::httpGet(Host, Port, Argc == 4 ? Argv[3] : "/metrics", Body,
                     Error)) {
    std::fprintf(stderr, "sharc-trace: scrape %s: %s\n", Argv[2],
                 Error.c_str());
    return 1;
  }
  std::fputs(Body.c_str(), stdout);
  return 0;
}

int cmdCheckProm(int Argc, char **Argv) {
  if (Argc != 3 && Argc != 4) {
    std::fprintf(stderr, "sharc-trace: check-prom FILE [FILE2]\n");
    return 2;
  }
  obs::PromDoc Docs[2];
  for (int I = 2; I < Argc; ++I) {
    std::string Text, Error;
    if (!readFile(Argv[I], Text)) {
      std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Argv[I]);
      return 1;
    }
    if (!obs::parsePromText(Text, Docs[I - 2], Error)) {
      std::fprintf(stderr, "sharc-trace: %s: %s\n", Argv[I], Error.c_str());
      return 1;
    }
    std::printf("ok: %s (%zu series, %zu families)\n", Argv[I],
                Docs[I - 2].Samples.size(), Docs[I - 2].Families.size());
  }
  if (Argc == 4) {
    std::string Error;
    if (!obs::checkPromMonotonic(Docs[0], Docs[1], Error)) {
      std::fprintf(stderr, "sharc-trace: %s\n", Error.c_str());
      return 1;
    }
    std::printf("ok: counters monotonic across the two scrapes\n");
  }
  return 0;
}

int cmdCheckLive(int Argc, char **Argv) {
  if (Argc != 4) {
    std::fprintf(stderr, "sharc-trace: check-live PROM.txt FILE.strc\n");
    return 2;
  }
  std::string Text, Error;
  if (!readFile(Argv[2], Text)) {
    std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Argv[2]);
    return 1;
  }
  obs::PromDoc Doc;
  if (!obs::parsePromText(Text, Doc, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Argv[2], Error.c_str());
    return 1;
  }
  obs::TraceData Data;
  if (!loadOrComplain(Argv[3], Data))
    return 1;
  if (Data.Samples.empty()) {
    std::fprintf(stderr,
                 "sharc-trace: %s has no stats samples to compare\n",
                 Argv[3]);
    return 1;
  }

  // The endpoint and this checker share one metric mapping
  // (live::forEachStatMetric), so a drift between them is impossible
  // by construction; what this verifies is the *values* — the final
  // scrape must equal the trace's final stats sample, counter by
  // counter, with exact integer rendering.
  int Status = 0;
  unsigned Checked = 0;
  live::forEachStatMetric(
      Data.Samples.back(),
      [&](const char *Family, const char *LabelKey, const char *LabelValue,
          uint64_t Value) {
        std::string Key = Family;
        if (LabelKey)
          Key += std::string("{") + LabelKey + "=\"" + LabelValue + "\"}";
        const obs::PromDoc::Sample *S = Doc.find(Key);
        if (!S) {
          std::printf("FAIL %-48s missing from the scrape\n", Key.c_str());
          Status = 1;
          return;
        }
        ++Checked;
        if (S->ValueText != std::to_string(Value)) {
          std::printf("FAIL %-48s scrape %s != trace %llu\n", Key.c_str(),
                      S->ValueText.c_str(),
                      static_cast<unsigned long long>(Value));
          Status = 1;
        }
      });
  if (Status == 0)
    std::printf("ok: %u series exactly match the trace's final stats "
                "sample\n",
                Checked);
  return Status;
}

//===----------------------------------------------------------------------===//
// compare-runs: the cross-run perf trajectory
//===----------------------------------------------------------------------===//

struct ArchivedRun {
  std::string Path;
  std::string Bench;
  std::string Rev;
  uint64_t UnixTime = 0; ///< host.unix_time; 0 in pre-ISSUE-5 archives
  BenchRows Rows;
};

bool loadArchivedRun(const std::string &Path, ArchivedRun &Out) {
  std::string Text;
  if (!readFile(Path.c_str(), Text)) {
    std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Path.c_str());
    return false;
  }
  obs::JsonValue Doc;
  std::string Error;
  if (!parseJson(Text, Doc, Error) || !obs::validateBenchJson(Doc, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path.c_str(),
                 Error.c_str());
    return false;
  }
  Out.Path = Path;
  Out.Bench = Doc.get("bench")->Str;
  const obs::JsonValue *Host = Doc.get("host");
  Out.Rev = Host->get("git_rev")->Str;
  if (const obs::JsonValue *T = Host->get("unix_time"); T && T->isNumber())
    Out.UnixTime = static_cast<uint64_t>(T->Num);
  for (const obs::JsonValue &Row : Doc.get("rows")->Arr) {
    std::vector<std::pair<std::string, double>> Metrics;
    for (const auto &[Key, Value] : Row.get("metrics")->Obj)
      Metrics.emplace_back(Key, Value.Num);
    Out.Rows.Rows.emplace_back(Row.get("name")->Str, std::move(Metrics));
  }
  // serve.stages percentiles ride along as pseudo-rows so the per-stage
  // breakdown is trended exactly like the top-level latency rows; the
  // sharc-storm serve.resilience block gets the same lift so shed rates
  // and time-to-recover trend across commits too.
  if (const obs::JsonValue *Serve = Doc.get("serve")) {
    if (const obs::JsonValue *Stages = Serve->get("stages"))
      for (const auto &[Stage, Obj] : Stages->Obj) {
        std::vector<std::pair<std::string, double>> Metrics;
        for (const auto &[Key, Value] : Obj.Obj)
          Metrics.emplace_back(Key, Value.Num);
        Out.Rows.Rows.emplace_back("stages/" + Stage, std::move(Metrics));
      }
    if (const obs::JsonValue *Res = Serve->get("resilience")) {
      std::vector<std::pair<std::string, double>> Metrics;
      for (const auto &[Key, Value] : Res->Obj) {
        // ttr_p50_us -> p50_us so the time-to-recover percentiles match
        // the percentile-metric predicate and trend like any latency
        // row; the raw counters ride along unrenamed (archived, not
        // gated — shed counts depend on the machine's momentary load).
        std::string Name =
            Key.rfind("ttr_", 0) == 0 ? Key.substr(4) : Key;
        Metrics.emplace_back(Name, Value.Num);
      }
      Out.Rows.Rows.emplace_back("resilience", std::move(Metrics));
    }
  }
  return true;
}

int cmdCompareRuns(int Argc, char **Argv) {
  double MaxPct = 10.0;
  const char *Dir = nullptr;
  for (int I = 2; I < Argc; ++I) {
    if (std::strcmp(Argv[I], "--max-pct") == 0 ||
        std::strncmp(Argv[I], "--max-pct=", 10) == 0) {
      const char *Value = Argv[I][9] == '=' ? Argv[I] + 10
                          : I + 1 < Argc    ? Argv[++I]
                                            : nullptr;
      char *End = nullptr;
      MaxPct = Value ? std::strtod(Value, &End) : -1;
      if (!Value || !End || *End != '\0' || MaxPct < 0) {
        std::fprintf(stderr, "sharc-trace: --max-pct expects a number\n");
        return 2;
      }
    } else if (!Dir) {
      Dir = Argv[I];
    } else {
      std::fprintf(stderr, "sharc-trace: compare-runs takes one "
                           "directory\n");
      return 2;
    }
  }
  if (!Dir) {
    std::fprintf(stderr, "sharc-trace: compare-runs DIR [--max-pct P]\n");
    return 2;
  }

  std::vector<std::string> Files;
  if (DIR *D = opendir(Dir)) {
    while (const dirent *E = readdir(D)) {
      std::string Name = E->d_name;
      if (Name.size() > 5 && Name.rfind(".json") == Name.size() - 5)
        Files.push_back(std::string(Dir) + "/" + Name);
    }
    closedir(D);
  } else {
    std::fprintf(stderr, "sharc-trace: cannot open directory '%s'\n", Dir);
    return 1;
  }
  if (Files.empty()) {
    std::fprintf(stderr,
                 "sharc-trace: no .json archives in '%s' — has ci.sh run "
                 "with history archiving yet?\n",
                 Dir);
    return 1;
  }
  std::sort(Files.begin(), Files.end());

  std::vector<ArchivedRun> Runs;
  for (const std::string &F : Files) {
    ArchivedRun R;
    if (!loadArchivedRun(F, R))
      return 1;
    Runs.push_back(std::move(R));
  }
  // Oldest -> newest: the embedded timestamp orders runs; name order
  // breaks ties (and orders pre-timestamp archives).
  std::stable_sort(Runs.begin(), Runs.end(),
                   [](const ArchivedRun &A, const ArchivedRun &B) {
                     return A.UnixTime < B.UnixTime;
                   });

  std::printf("comparing %zu archived run(s) in %s (oldest -> newest):\n",
              Runs.size(), Dir);
  for (const ArchivedRun &R : Runs)
    std::printf("  %-12s %s\n", R.Rev.c_str(), R.Path.c_str());

  // Per-benchmark series across runs: each row is trended on its timing
  // metric plus every latency percentile it carries (p50_us, p99_us,
  // p999_us, ... — sharc-serve's tail-latency rows), so a change that
  // keeps the mean but fattens the tail still trips the gate.
  std::printf("\n%-36s %4s %12s %12s %12s %12s  %s\n", "benchmark", "runs",
              "first", "best", "prev", "last", "last-vs-prev");
  int Status = 0;
  std::vector<std::string> Seen;
  std::vector<std::string> Regressed;
  for (const ArchivedRun &Origin : Runs) {
    for (const auto &[Name, OriginMetrics] : Origin.Rows.Rows) {
      std::string RowKey = Origin.Bench + "/" + Name;
      if (std::find(Seen.begin(), Seen.end(), RowKey) != Seen.end())
        continue;
      Seen.push_back(RowKey);
      std::vector<std::string> MetricNames;
      std::string TimingName;
      if (timingMetric(OriginMetrics, TimingName))
        MetricNames.push_back(TimingName);
      for (const auto &[K, V] : OriginMetrics)
        if (isPercentileMetric(K) && K != TimingName)
          MetricNames.push_back(K);
      for (const std::string &MetricName : MetricNames) {
        // The timing metric keeps the bare bench/name key the archives
        // have always printed; extra gated metrics are qualified.
        std::string Key = MetricName == TimingName
                              ? RowKey
                              : RowKey + ":" + MetricName;
        std::vector<double> Series;
        for (const ArchivedRun &R : Runs) {
          if (R.Bench != Origin.Bench)
            continue;
          const auto *Metrics = R.Rows.find(Name);
          if (!Metrics)
            continue;
          for (const auto &[K, V] : *Metrics)
            if (K == MetricName && V > 0)
              Series.push_back(V);
        }
        if (Series.empty())
          continue;
        double First = Series.front(), Last = Series.back();
        double Best = *std::min_element(Series.begin(), Series.end());
        if (Series.size() < 2) {
          std::printf("%-36s %4zu %12.4g %12.4g %12s %12.4g  (single run)\n",
                      Key.c_str(), Series.size(), First, Best, "-", Last);
          continue;
        }
        double Prev = Series[Series.size() - 2];
        double Pct = Prev > 0 ? 100.0 * (Last - Prev) / Prev : 0;
        bool Regress = Pct > MaxPct;
        std::printf("%-36s %4zu %12.4g %12.4g %12.4g %12.4g  %+.2f%%%s\n",
                    Key.c_str(), Series.size(), First, Best, Prev, Last, Pct,
                    Regress ? "  REGRESSION" : "");
        if (Regress) {
          Status = 1;
          Regressed.push_back(RowKey + ":" + MetricName);
        }
      }
    }
  }
  if (Status) {
    // Name the offenders: a CI log reader should not have to scan the
    // table to learn which metric moved.
    std::string List;
    for (const std::string &R : Regressed)
      List += (List.empty() ? "" : ", ") + R;
    std::printf("\nFAIL: the newest run regressed %s by more than %.1f%% "
                "over the previous run\n",
                List.c_str(), MaxPct);
  }
  return Status;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(stderr);
    return 2;
  }
  std::string Cmd = Argv[1];
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    printUsage(stdout);
    return 0;
  }

  // Every known subcommand answers `sharc-trace CMD --help` with its own
  // usage line and exit 0; an unknown subcommand still falls through to
  // the exit-2 path at the bottom.
  if (Argc >= 3 && std::strcmp(Argv[2], "--help") == 0) {
    for (const SubcommandHelp &H : SubcommandHelps) {
      if (Cmd == H.Name) {
        std::printf("usage: %s\n", H.Usage);
        return 0;
      }
    }
  }

  if (Cmd == "metrics" && Argc >= 3 && std::strcmp(Argv[2], "--delta") == 0) {
    if (Argc != 5) {
      std::fprintf(stderr,
                   "sharc-trace: metrics --delta takes two trace files\n");
      return 2;
    }
    return cmdMetricsDelta(Argv[3], Argv[4]);
  }

  if (Cmd == "summarize" || Cmd == "dump" || Cmd == "schedule" ||
      Cmd == "metrics") {
    if (Argc != 3) {
      std::fprintf(stderr, "sharc-trace: %s takes exactly one trace file\n",
                   Cmd.c_str());
      return 2;
    }
    obs::TraceData Data;
    if (!loadOrComplain(Argv[2], Data))
      return 1;
    if (Cmd == "summarize") {
      obs::TraceSummary Sum = obs::summarize(Data);
      std::fputs(obs::renderSummary(Sum, Data).c_str(), stdout);
    } else if (Cmd == "dump") {
      std::fputs(obs::renderDump(Data).c_str(), stdout);
    } else if (Cmd == "schedule") {
      std::fputs(obs::renderSchedule(Data).c_str(), stdout);
    } else { // metrics
      if (Data.Samples.empty()) {
        std::fprintf(stderr,
                     "sharc-trace: %s has no stats samples to export\n",
                     Argv[2]);
        return 1;
      }
      std::fputs(obs::statsToJson(Data.Samples.back()).c_str(), stdout);
    }
    return 0;
  }

  if (Cmd == "profile")
    return cmdProfile(Argc, Argv);
  if (Cmd == "export-chrome")
    return cmdExportChrome(Argc, Argv);
  if (Cmd == "check-overhead")
    return cmdCheckOverhead(Argc, Argv);

  if (Cmd == "tail")
    return cmdTail(Argc, Argv);
  if (Cmd == "timeline")
    return cmdTimeline(Argc, Argv, /*WantCriticalPath=*/false);
  if (Cmd == "critical-path")
    return cmdTimeline(Argc, Argv, /*WantCriticalPath=*/true);
  if (Cmd == "report")
    return cmdReport(Argc, Argv);
  if (Cmd == "requests")
    return cmdRequests(Argc, Argv);
  if (Cmd == "scrape")
    return cmdScrape(Argc, Argv);
  if (Cmd == "check-prom")
    return cmdCheckProm(Argc, Argv);
  if (Cmd == "check-live")
    return cmdCheckLive(Argc, Argv);
  if (Cmd == "compare-runs")
    return cmdCompareRuns(Argc, Argv);

  if (Cmd == "check-bench")
    return checkJsonFiles(Argc, Argv, 2, obs::validateBenchJson,
                          "check-bench");
  if (Cmd == "check-metrics")
    return checkJsonFiles(Argc, Argv, 2, obs::validateMetricsJson,
                          "check-metrics");

  std::fprintf(stderr, "sharc-trace: unknown command '%s'\n", Cmd.c_str());
  printUsage(stderr);
  return 2;
}
