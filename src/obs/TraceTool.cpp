//===-- obs/TraceTool.cpp - sharc-trace CLI ---------------------*- C++ -*-===//
//
// Part of the SharC reproduction. Distributed under the MIT license.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// `sharc-trace` — offline analysis of .strc traces recorded by
/// `sharcc --trace-out` (or any obs::TraceWriter user), plus schema
/// validation for the JSON the bench harnesses and `--metrics-out`
/// emit. Exit codes follow sharcc's contract: 0 success, 1 a check
/// failed or the input is malformed, 2 usage errors.
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "obs/MetricsJson.h"
#include "obs/Summary.h"
#include "obs/TraceFile.h"

#include <cstdio>
#include <cstring>
#include <string>

using namespace sharc;

namespace {

void printUsage(std::FILE *To) {
  std::fprintf(
      To,
      "usage: sharc-trace <command> [args]\n"
      "\n"
      "commands:\n"
      "  summarize FILE.strc    totals, per-thread histogram, lock\n"
      "                         contention, hottest granules, conflict\n"
      "                         timeline\n"
      "  dump FILE.strc         every record, one per line\n"
      "  schedule FILE.strc     re-emit as the fuzzer's replay schedule\n"
      "  metrics FILE.strc      final stats sample as sharc-stats-v1 JSON\n"
      "  check-bench FILE...    validate sharc-bench-v1 JSON reports\n"
      "  check-metrics FILE...  validate sharc-metrics-v1 JSON reports\n"
      "  --help                 print this message\n"
      "\n"
      "exit codes: 0 success, 1 malformed input or failed check, 2 usage\n");
}

bool loadOrComplain(const char *Path, obs::TraceData &Data) {
  std::string Error;
  if (!obs::loadTraceFile(Path, Data, Error)) {
    std::fprintf(stderr, "sharc-trace: %s: %s\n", Path, Error.c_str());
    return false;
  }
  return true;
}

bool readFile(const char *Path, std::string &Out) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F)
    return false;
  char Chunk[1 << 16];
  size_t N;
  while ((N = std::fread(Chunk, 1, sizeof(Chunk), F)) > 0)
    Out.append(Chunk, N);
  bool Ok = std::ferror(F) == 0;
  std::fclose(F);
  return Ok;
}

int checkJsonFiles(int Argc, char **Argv, int First,
                   bool (*Validate)(const obs::JsonValue &, std::string &),
                   const char *What) {
  if (First >= Argc) {
    std::fprintf(stderr, "sharc-trace: %s needs at least one file\n", What);
    return 2;
  }
  int Status = 0;
  for (int I = First; I < Argc; ++I) {
    std::string Text;
    if (!readFile(Argv[I], Text)) {
      std::fprintf(stderr, "sharc-trace: cannot read '%s'\n", Argv[I]);
      Status = 1;
      continue;
    }
    obs::JsonValue Doc;
    std::string Error;
    if (!parseJson(Text, Doc, Error) || !Validate(Doc, Error)) {
      std::fprintf(stderr, "sharc-trace: %s: %s\n", Argv[I], Error.c_str());
      Status = 1;
      continue;
    }
    std::printf("ok: %s\n", Argv[I]);
  }
  return Status;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 2) {
    printUsage(stderr);
    return 2;
  }
  std::string Cmd = Argv[1];
  if (Cmd == "--help" || Cmd == "-h" || Cmd == "help") {
    printUsage(stdout);
    return 0;
  }

  if (Cmd == "summarize" || Cmd == "dump" || Cmd == "schedule" ||
      Cmd == "metrics") {
    if (Argc != 3) {
      std::fprintf(stderr, "sharc-trace: %s takes exactly one trace file\n",
                   Cmd.c_str());
      return 2;
    }
    obs::TraceData Data;
    if (!loadOrComplain(Argv[2], Data))
      return 1;
    if (Cmd == "summarize") {
      obs::TraceSummary Sum = obs::summarize(Data);
      std::fputs(obs::renderSummary(Sum, Data).c_str(), stdout);
    } else if (Cmd == "dump") {
      std::fputs(obs::renderDump(Data).c_str(), stdout);
    } else if (Cmd == "schedule") {
      std::fputs(obs::renderSchedule(Data).c_str(), stdout);
    } else { // metrics
      if (Data.Samples.empty()) {
        std::fprintf(stderr,
                     "sharc-trace: %s has no stats samples to export\n",
                     Argv[2]);
        return 1;
      }
      std::fputs(obs::statsToJson(Data.Samples.back()).c_str(), stdout);
    }
    return 0;
  }

  if (Cmd == "check-bench")
    return checkJsonFiles(Argc, Argv, 2, obs::validateBenchJson,
                          "check-bench");
  if (Cmd == "check-metrics")
    return checkJsonFiles(Argc, Argv, 2, obs::validateMetricsJson,
                          "check-metrics");

  std::fprintf(stderr, "sharc-trace: unknown command '%s'\n", Cmd.c_str());
  printUsage(stderr);
  return 2;
}
