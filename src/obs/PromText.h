// Strict parser/validator for the Prometheus text exposition format
// (version 0.0.4) served by the sharc-live stats endpoint — DESIGN.md
// §13. Deliberately pickier than real Prometheus: every sample's
// family must carry a preceding `# TYPE` line, names and labels must
// match the published grammar exactly, and a family may be typed only
// once. `sharc-trace check-prom` and the endpoint tests are built on
// this; `check-live` additionally cross-checks sample values against a
// trace's final stats sample via live::forEachStatMetric.
#ifndef SHARC_OBS_PROMTEXT_H
#define SHARC_OBS_PROMTEXT_H

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace sharc::obs {

struct PromDoc {
  struct Family {
    std::string Name;
    std::string Type; ///< counter|gauge|histogram|summary|untyped
    bool HasHelp = false;
  };
  struct Sample {
    std::string Name;     ///< metric family name
    std::string Key;      ///< canonical "name{k="v",...}" identity
    std::string ValueText; ///< exact rendering, for integer-exact checks
    double Value = 0;
  };
  std::vector<Family> Families; ///< in declaration order
  std::vector<Sample> Samples;  ///< in document order

  const Family *family(std::string_view Name) const {
    for (const Family &F : Families)
      if (F.Name == Name)
        return &F;
    return nullptr;
  }
  Family *family(std::string_view Name) {
    return const_cast<Family *>(std::as_const(*this).family(Name));
  }
  const Sample *find(std::string_view Key) const {
    for (const Sample &S : Samples)
      if (S.Key == Key)
        return &S;
    return nullptr;
  }
};

/// Strict parse. Returns false and sets Error (with a line number) on
/// any grammar violation: bad metric/label names, malformed label
/// values or escapes, unparsable sample values, a `# TYPE` after the
/// family's first sample or repeated for the same family, an unknown
/// type keyword, or a sample whose family was never typed.
bool parsePromText(std::string_view Text, PromDoc &Out, std::string &Error);

/// Counter monotonicity across two scrapes of the same endpoint: every
/// counter-typed sample of Earlier must appear in Later with a value
/// >= its earlier value. Returns false and sets Error on the first
/// violation or missing series.
bool checkPromMonotonic(const PromDoc &Earlier, const PromDoc &Later,
                        std::string &Error);

} // namespace sharc::obs

#endif // SHARC_OBS_PROMTEXT_H
